package parser

import (
	"strings"
	"testing"

	"repro/internal/logic"
	"repro/internal/structure"
)

func TestParseSimpleQuery(t *testing.T) {
	q, err := ParseQuery("phi(x,y) := E(x,y)")
	if err != nil {
		t.Fatal(err)
	}
	if q.Name != "phi" || len(q.Lib) != 2 {
		t.Fatalf("query = %v", q)
	}
	if _, ok := q.F.(logic.Atom); !ok {
		t.Fatalf("formula = %T", q.F)
	}
}

func TestParseBareFormula(t *testing.T) {
	q, err := ParseQuery("E(x,y) & E(y,z)")
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Lib) != 3 {
		t.Fatalf("lib = %v, want free vars x,y,z", q.Lib)
	}
	if q.Lib[0] != "x" || q.Lib[1] != "y" || q.Lib[2] != "z" {
		t.Fatalf("lib order = %v", q.Lib)
	}
}

func TestPrecedence(t *testing.T) {
	// a & b | c & d parses as (a&b) | (c&d).
	q, err := ParseQuery("E(x,x) & F(x) | G(x) & H(x)")
	if err != nil {
		t.Fatal(err)
	}
	or, ok := q.F.(logic.Or)
	if !ok {
		t.Fatalf("top = %T, want Or", q.F)
	}
	if _, ok := or.L.(logic.And); !ok {
		t.Fatalf("left = %T, want And", or.L)
	}
}

func TestExistsScope(t *testing.T) {
	// exists u. E(x,u) & E(u,y) — the body spans the whole conjunction.
	q, err := ParseQuery("q(x,y) := exists u. E(x,u) & E(u,y)")
	if err != nil {
		t.Fatal(err)
	}
	ex, ok := q.F.(logic.Exists)
	if !ok {
		t.Fatalf("top = %T, want Exists", q.F)
	}
	if _, ok := ex.Body.(logic.And); !ok {
		t.Fatalf("body = %T, want And", ex.Body)
	}
	// ...but not past a disjunction.
	q, err = ParseQuery("q(x) := exists u. E(x,u) | E(x,x)")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := q.F.(logic.Or); !ok {
		t.Fatalf("top = %T, want Or (quantifier must not span '|')", q.F)
	}
}

func TestExistsMultiVar(t *testing.T) {
	q, err := ParseQuery("q() := exists a, b. E(a,b)")
	if err != nil {
		t.Fatal(err)
	}
	ex, ok := q.F.(logic.Exists)
	if !ok || ex.V != "a" {
		t.Fatalf("formula = %v", q.F)
	}
	if inner, ok := ex.Body.(logic.Exists); !ok || inner.V != "b" {
		t.Fatalf("inner = %v", ex.Body)
	}
}

func TestParens(t *testing.T) {
	q, err := ParseQuery("q(x) := (E(x,x) | F(x)) & G(x)")
	if err != nil {
		t.Fatal(err)
	}
	and, ok := q.F.(logic.And)
	if !ok {
		t.Fatalf("top = %T, want And", q.F)
	}
	if _, ok := and.L.(logic.Or); !ok {
		t.Fatalf("left = %T, want Or", and.L)
	}
}

func TestTrueLiteral(t *testing.T) {
	q, err := ParseQuery("q(x) := true")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := q.F.(logic.Truth); !ok {
		t.Fatalf("formula = %T", q.F)
	}
}

func TestUnicodeConnectives(t *testing.T) {
	q, err := ParseQuery("q(x,y) := E(x,y) ∧ E(y,x) ∨ E(x,x)")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := q.F.(logic.Or); !ok {
		t.Fatalf("top = %T", q.F)
	}
}

func TestComments(t *testing.T) {
	q, err := ParseQuery("q(x) := E(x,x) % trailing comment\n")
	if err != nil {
		t.Fatal(err)
	}
	if q.Name != "q" {
		t.Fatal("comment broke parse")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"q(x) :=",
		"q(x) := E(x",
		"q(x) := E()",
		"q(x) := & E(x,x)",
		"q(x) := exists . E(x,x)",
		"q(x) := E(x,x) extra",
		"q(x := E(x,x)",
		"q(x,x) := E(x,x)",         // duplicate liberal
		"q(y) := E(x,y)",           // free var not liberal
		"q(x) := exists x. E(x,x)", // liberal quantified
		"q(x) := :",
	}
	for _, src := range bad {
		if _, err := ParseQuery(src); err == nil {
			t.Errorf("ParseQuery(%q) should fail", src)
		}
	}
}

func TestParseErrorsHavePosition(t *testing.T) {
	_, err := ParseQuery("q(x) := E(x,\n  ?)")
	if err == nil {
		t.Fatal("expected error")
	}
	if !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("error lacks position: %v", err)
	}
}

func TestParseStructureInferred(t *testing.T) {
	s, err := ParseStructure(`
		% a small structure
		universe a, b, c, d.
		E(a,b). E(b,c)
		F(d).
	`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if s.Size() != 4 {
		t.Fatalf("size = %d, want 4", s.Size())
	}
	if len(s.Tuples("E")) != 2 || len(s.Tuples("F")) != 1 {
		t.Fatal("tuples wrong")
	}
	if ar, _ := s.Signature().Arity("E"); ar != 2 {
		t.Fatal("inferred arity wrong")
	}
}

func TestParseStructureAgainstSignature(t *testing.T) {
	sig := structure.MustSignature(structure.RelSym{Name: "E", Arity: 2})
	if _, err := ParseStructure("E(a,b,c).", sig); err == nil {
		t.Fatal("arity mismatch should fail")
	}
	if _, err := ParseStructure("G(a).", sig); err == nil {
		t.Fatal("unknown relation should fail")
	}
	s, err := ParseStructure("E(a,b).", sig)
	if err != nil {
		t.Fatal(err)
	}
	if !s.Signature().Equal(sig) {
		t.Fatal("signature not preserved")
	}
}

func TestParseStructureErrors(t *testing.T) {
	if _, err := ParseStructure("", nil); err == nil {
		t.Fatal("empty structure should fail validation")
	}
	if _, err := ParseStructure("E(a,b). E(c).", nil); err == nil {
		t.Fatal("inconsistent arity should fail")
	}
	if _, err := ParseStructure("E(a,b", nil); err == nil {
		t.Fatal("unterminated fact should fail")
	}
}

func TestQueryStringRoundTrip(t *testing.T) {
	srcs := []string{
		"phi(w,x,y,z) := E(x,y) & (E(w,x) | E(y,z) & E(z,z))",
		"q(x) := exists u, v. E(x,u) & E(u,v)",
		"q(x,y) := E(x,y) | E(y,x) | E(x,x)",
	}
	for _, src := range srcs {
		q1, err := ParseQuery(src)
		if err != nil {
			t.Fatal(err)
		}
		q2, err := ParseQuery(q1.String())
		if err != nil {
			t.Fatalf("reparse of %q failed: %v", q1.String(), err)
		}
		if len(q1.Lib) != len(q2.Lib) || len(q1.Disjuncts()) != len(q2.Disjuncts()) {
			t.Fatalf("round trip changed query shape: %v vs %v", q1, q2)
		}
	}
}
