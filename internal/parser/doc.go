// Package parser provides the concrete syntax of the library: ep-formula
// queries such as
//
//	phi(w,x,y,z) := E(x,y) & (E(w,x) | exists u. E(y,u) & E(u,u))
//
// and structure fact files such as
//
//	universe a, b, c.
//	E(a,b). E(b,c). F(c).
//
// Operator precedence: '|' binds loosest, then '&'; 'exists v[, w...].'
// extends as far right as possible; parentheses group; 'true' is the empty
// conjunction.
package parser
