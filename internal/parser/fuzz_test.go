package parser

import (
	"testing"

	"repro/internal/structure"
)

// Native fuzz targets: the parsers must neither crash nor hang on
// adversarial inputs, and accepted inputs must satisfy basic
// round-trip invariants.  CI runs each for a short smoke window
// (go test -fuzz ... -fuzztime 10s); `go test` alone replays the
// corpus seeds as regular tests.

func FuzzParseQuery(f *testing.F) {
	for _, seed := range []string{
		"phi(x,y) := E(x,y)",
		"q(w,x,y,z) := E(x,y) & (E(w,x) | E(y,z) & E(z,z))",
		"p(a) := exists u, v. E(a,u) & E(u,v)",
		"p() := true",
		"q(x) := exists x. E(x,x)",
		"f(x,y) := R(x,y,z)",
		"phi(x := E",
		"q(x) :=",
		"(((((",
		"q(x) := exists . E(x,x)",
		"\x00\xff",
		"q(é,世) := E(é,世)",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		q, err := ParseQuery(src)
		if err != nil {
			return
		}
		// Accepted queries must render and re-parse to an accepted query.
		rendered := q.String()
		if _, err := ParseQuery(rendered); err != nil {
			t.Fatalf("accepted query %q renders as %q which fails to re-parse: %v", src, rendered, err)
		}
	})
}

func FuzzParseStructure(f *testing.F) {
	for _, seed := range []string{
		"E(a,b). E(b,c). E(c,a).",
		"universe a, b, c. F(a)",
		"universe x.",
		"E(a,b) E(b,a)",
		"R(a,b,c). R(a,a,a).",
		"E(a,b). E(a,b,c).",
		"universe",
		"E(",
		".",
		"\x00",
		"loop(α). loop(α).",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		s, err := ParseStructure(src, nil)
		if err != nil {
			return
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("ParseStructure accepted %q but Validate fails: %v", src, err)
		}
		// Serializable structures must survive a facts round trip.
		facts, err := s.FactsString()
		if err != nil {
			return // non-identifier element names are legitimately unserializable
		}
		s2, err := ParseStructure(facts, s.Signature())
		if err != nil {
			t.Fatalf("round trip of %q failed to re-parse %q: %v", src, facts, err)
		}
		if !structure.Equal(s, s2) {
			t.Fatalf("round trip of %q changed the structure:\n%v\nvs\n%v", src, s, s2)
		}
	})
}
