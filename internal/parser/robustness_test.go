package parser

import (
	"math/rand"
	"strings"
	"testing"
)

// The parser must never panic, whatever the input: errors only.
func TestParserNeverPanics(t *testing.T) {
	pieces := []string{
		"q", "(", ")", ",", ".", "&", "|", ":=", "exists", "true",
		"E", "x", "y", "∧", "∨", "universe", "%comment\n", "'", "_",
	}
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 3000; i++ {
		var b strings.Builder
		n := rng.Intn(12)
		for j := 0; j < n; j++ {
			b.WriteString(pieces[rng.Intn(len(pieces))])
			if rng.Intn(3) == 0 {
				b.WriteByte(' ')
			}
		}
		src := b.String()
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("ParseQuery(%q) panicked: %v", src, r)
				}
			}()
			_, _ = ParseQuery(src)
		}()
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("ParseStructure(%q) panicked: %v", src, r)
				}
			}()
			_, _ = ParseStructure(src, nil)
		}()
	}
}

// Structure serialization must round-trip through the parser.
func TestFactsRoundTripThroughParser(t *testing.T) {
	src := `
		universe a, b, c, lonely.
		E(a,b). E(b,c). E(c,a). F(a).
	`
	s1, err := ParseStructure(src, nil)
	if err != nil {
		t.Fatal(err)
	}
	out, err := s1.FactsString()
	if err != nil {
		t.Fatal(err)
	}
	s2, err := ParseStructure(out, s1.Signature())
	if err != nil {
		t.Fatalf("reparse failed: %v\nserialized:\n%s", err, out)
	}
	if s2.Size() != s1.Size() || s2.NumTuples() != s1.NumTuples() {
		t.Fatal("round trip changed the structure")
	}
	for _, r := range s1.Signature().Rels() {
		for _, tp := range s1.Tuples(r.Name) {
			names := make([]string, len(tp))
			for i, v := range tp {
				names[i] = s1.ElemName(v)
			}
			idx := make([]int, len(names))
			for i, nm := range names {
				idx[i] = s2.ElemIndex(nm)
			}
			if !s2.HasTuple(r.Name, idx) {
				t.Fatalf("tuple %s(%v) lost in round trip", r.Name, names)
			}
		}
	}
}
