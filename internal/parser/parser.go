package parser

import (
	"fmt"

	"repro/internal/logic"
	"repro/internal/structure"
)

type parser struct {
	toks []token
	i    int
}

func (p *parser) peek() token { return p.toks[p.i] }
func (p *parser) next() token { t := p.toks[p.i]; p.i++; return t }
func (p *parser) at(k tokenKind) bool {
	return p.toks[p.i].kind == k
}
func (p *parser) expect(k tokenKind, what string) (token, error) {
	t := p.next()
	if t.kind != k {
		return t, errorAt(t, "expected %s, got %s", what, t)
	}
	return t, nil
}

// ParseQuery parses a query of the form
//
//	name(v1,...,vn) := formula
//
// or a bare formula (in which case the liberal variables are the free
// variables in lexicographic order and the query is named "q").
func ParseQuery(src string) (logic.Query, error) {
	toks, err := lex(src)
	if err != nil {
		return logic.Query{}, err
	}
	p := &parser{toks: toks}

	// Try the "name(vars) :=" header: ident '(' ... ')' ':='.
	if p.at(tokIdent) {
		save := p.i
		name := p.next().text
		if p.at(tokLParen) {
			p.next()
			var lib []logic.Var
			if !p.at(tokRParen) {
				for {
					t, err := p.expect(tokIdent, "variable")
					if err != nil {
						return logic.Query{}, err
					}
					lib = append(lib, logic.Var(t.text))
					if p.at(tokComma) {
						p.next()
						continue
					}
					break
				}
			}
			if _, err := p.expect(tokRParen, "')'"); err != nil {
				return logic.Query{}, err
			}
			if p.at(tokAssign) {
				p.next()
				f, err := p.parseFormula()
				if err != nil {
					return logic.Query{}, err
				}
				if _, err := p.expect(tokEOF, "end of query"); err != nil {
					return logic.Query{}, err
				}
				return logic.NewQuery(name, lib, f)
			}
		}
		p.i = save // not a header; reparse as bare formula
	}
	f, err := p.parseFormula()
	if err != nil {
		return logic.Query{}, err
	}
	if _, err := p.expect(tokEOF, "end of query"); err != nil {
		return logic.Query{}, err
	}
	lib := logic.SortedVars(logic.FreeVars(f))
	return logic.NewQuery("q", lib, f)
}

// MustQuery is ParseQuery panicking on error (tests, examples).
func MustQuery(src string) logic.Query {
	q, err := ParseQuery(src)
	if err != nil {
		panic(err)
	}
	return q
}

// parseFormula parses disjunctions (lowest precedence).
func (p *parser) parseFormula() (logic.Formula, error) {
	l, err := p.parseConj()
	if err != nil {
		return nil, err
	}
	for p.at(tokPipe) {
		p.next()
		r, err := p.parseConj()
		if err != nil {
			return nil, err
		}
		l = logic.Or{L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseConj() (logic.Formula, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.at(tokAmp) {
		p.next()
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = logic.And{L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseUnary() (logic.Formula, error) {
	t := p.peek()
	switch {
	case t.kind == tokIdent && (t.text == "exists" || t.text == "ex"):
		p.next()
		var vs []logic.Var
		for {
			vt, err := p.expect(tokIdent, "quantified variable")
			if err != nil {
				return nil, err
			}
			vs = append(vs, logic.Var(vt.text))
			if p.at(tokComma) {
				p.next()
				continue
			}
			break
		}
		if _, err := p.expect(tokDot, "'.' after quantifier"); err != nil {
			return nil, err
		}
		body, err := p.parseConj()
		if err != nil {
			return nil, err
		}
		// The quantifier body extends over conjunctions but not past '|'.
		return logic.Exist(vs, body), nil
	case t.kind == tokIdent && t.text == "true":
		p.next()
		return logic.Truth{}, nil
	case t.kind == tokIdent:
		p.next()
		if _, err := p.expect(tokLParen, "'(' after relation name"); err != nil {
			return nil, err
		}
		var args []logic.Var
		if !p.at(tokRParen) {
			for {
				at, err := p.expect(tokIdent, "argument variable")
				if err != nil {
					return nil, err
				}
				args = append(args, logic.Var(at.text))
				if p.at(tokComma) {
					p.next()
					continue
				}
				break
			}
		}
		if _, err := p.expect(tokRParen, "')'"); err != nil {
			return nil, err
		}
		if len(args) == 0 {
			return nil, errorAt(t, "relation %s needs at least one argument", t.text)
		}
		return logic.Atom{Rel: t.text, Args: args}, nil
	case t.kind == tokLParen:
		p.next()
		f, err := p.parseFormula()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen, "')'"); err != nil {
			return nil, err
		}
		return f, nil
	default:
		return nil, errorAt(t, "expected atom, 'exists', 'true' or '('")
	}
}

// ParseStructure parses a fact file over the given signature (pass nil to
// infer relations and arities from the facts).  Grammar:
//
//	universe a, b, c.        % optional: declare (possibly isolated) elements
//	E(a,b). F(c). ...        % facts; '.' separators are optional
func ParseStructure(src string, sig *structure.Signature) (*structure.Structure, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}

	type fact struct {
		rel   string
		elems []string
		tok   token
	}
	var facts []fact
	var universe []string
	for !p.at(tokEOF) {
		t, err := p.expect(tokIdent, "relation name or 'universe'")
		if err != nil {
			return nil, err
		}
		if t.text == "universe" {
			for {
				et, err := p.expect(tokIdent, "element name")
				if err != nil {
					return nil, err
				}
				universe = append(universe, et.text)
				if p.at(tokComma) {
					p.next()
					continue
				}
				break
			}
			if p.at(tokDot) {
				p.next()
			}
			continue
		}
		if _, err := p.expect(tokLParen, "'('"); err != nil {
			return nil, err
		}
		var elems []string
		for {
			et, err := p.expect(tokIdent, "element name")
			if err != nil {
				return nil, err
			}
			elems = append(elems, et.text)
			if p.at(tokComma) {
				p.next()
				continue
			}
			break
		}
		if _, err := p.expect(tokRParen, "')'"); err != nil {
			return nil, err
		}
		if p.at(tokDot) {
			p.next()
		}
		facts = append(facts, fact{rel: t.text, elems: elems, tok: t})
	}

	if sig == nil {
		arities := map[string]int{}
		for _, f := range facts {
			if prev, ok := arities[f.rel]; ok && prev != len(f.elems) {
				return nil, errorAt(f.tok, "relation %s used with arities %d and %d", f.rel, prev, len(f.elems))
			}
			arities[f.rel] = len(f.elems)
		}
		rels := make([]structure.RelSym, 0, len(arities))
		for name, ar := range arities {
			rels = append(rels, structure.RelSym{Name: name, Arity: ar})
		}
		sig, err = structure.NewSignature(rels...)
		if err != nil {
			return nil, err
		}
	}
	s := structure.New(sig)
	for _, e := range universe {
		s.EnsureElem(e)
	}
	for _, f := range facts {
		if err := s.AddFact(f.rel, f.elems...); err != nil {
			return nil, errorAt(f.tok, "%v", err)
		}
	}
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("parser: %v", err)
	}
	return s, nil
}

// MustStructure is ParseStructure panicking on error.
func MustStructure(src string, sig *structure.Signature) *structure.Structure {
	s, err := ParseStructure(src, sig)
	if err != nil {
		panic(err)
	}
	return s
}
