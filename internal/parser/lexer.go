package parser

import (
	"fmt"
	"unicode"
)

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokLParen
	tokRParen
	tokComma
	tokDot
	tokAmp
	tokPipe
	tokAssign // :=
)

type token struct {
	kind tokenKind
	text string
	pos  int
	line int
	col  int
}

func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "end of input"
	case tokIdent:
		return fmt.Sprintf("%q", t.text)
	default:
		return fmt.Sprintf("%q", t.text)
	}
}

type lexer struct {
	src  string
	pos  int
	line int
	col  int
	toks []token
}

func isIdentStart(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_'
}

func isIdentRune(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' || r == '\''
}

// lex tokenizes src, stripping '%' and '#' line comments.
func lex(src string) ([]token, error) {
	lx := &lexer{src: src, line: 1, col: 1}
	rs := []rune(src)
	i := 0
	emit := func(kind tokenKind, text string) {
		lx.toks = append(lx.toks, token{kind: kind, text: text, pos: i, line: lx.line, col: lx.col})
	}
	advance := func(n int) {
		for k := 0; k < n; k++ {
			if rs[i+k] == '\n' {
				lx.line++
				lx.col = 1
			} else {
				lx.col++
			}
		}
		i += n
	}
	for i < len(rs) {
		r := rs[i]
		switch {
		case r == ' ' || r == '\t' || r == '\n' || r == '\r':
			advance(1)
		case r == '%' || r == '#':
			for i < len(rs) && rs[i] != '\n' {
				advance(1)
			}
		case r == '(':
			emit(tokLParen, "(")
			advance(1)
		case r == ')':
			emit(tokRParen, ")")
			advance(1)
		case r == ',':
			emit(tokComma, ",")
			advance(1)
		case r == '.':
			emit(tokDot, ".")
			advance(1)
		case r == '&' || r == '∧':
			emit(tokAmp, "&")
			advance(1)
		case r == '|' || r == '∨':
			emit(tokPipe, "|")
			advance(1)
		case r == ':':
			if i+1 < len(rs) && rs[i+1] == '=' {
				emit(tokAssign, ":=")
				advance(2)
			} else {
				return nil, fmt.Errorf("parser: line %d col %d: unexpected ':'", lx.line, lx.col)
			}
		case isIdentStart(r):
			j := i
			for j < len(rs) && isIdentRune(rs[j]) {
				j++
			}
			emit(tokIdent, string(rs[i:j]))
			advance(j - i)
		default:
			return nil, fmt.Errorf("parser: line %d col %d: unexpected character %q", lx.line, lx.col, string(r))
		}
	}
	lx.toks = append(lx.toks, token{kind: tokEOF, line: lx.line, col: lx.col})
	return lx.toks, nil
}

// errorAt formats a parse error with position information.
func errorAt(t token, format string, args ...interface{}) error {
	msg := fmt.Sprintf(format, args...)
	return fmt.Errorf("parser: line %d col %d: %s", t.line, t.col, msg)
}
