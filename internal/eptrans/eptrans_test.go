package eptrans

import (
	"math/big"
	"testing"

	"repro/internal/count"
	"repro/internal/logic"
	"repro/internal/parser"
	"repro/internal/pp"
	"repro/internal/structure"
	"repro/internal/workload"
)

func edgeSig() *structure.Signature { return workload.EdgeSig() }

// fptCounter is the pp oracle used by the forward reduction in tests.
func fptCounter(p pp.PP, b *structure.Structure) (*big.Int, error) {
	return count.PP(p, b, count.EngineFPT)
}

// epOracleFor returns an EP oracle computed by the forward pipeline (an
// independently correct engine, cross-checked elsewhere against EPDirect).
func epOracleFor(c *Compiled) EPOracle {
	return func(b *structure.Structure) (*big.Int, error) {
		return CountEPViaPP(c, b, fptCounter)
	}
}

func compile(t *testing.T, src string) *Compiled {
	t.Helper()
	q := parser.MustQuery(src)
	sig, err := InferStructSignature(q)
	if err != nil {
		t.Fatal(err)
	}
	c, err := Compile(q, sig)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestMinimizeDropsEntailingDisjunct(t *testing.T) {
	// E(x,y) ∨ (E(x,y) ∧ E(y,x)): the second disjunct entails the first.
	c := compile(t, "q(x,y) := E(x,y) | E(x,y) & E(y,x)")
	if len(c.Disjuncts) != 1 {
		t.Fatalf("normalized disjuncts = %d, want 1", len(c.Disjuncts))
	}
	if len(c.Disjuncts[0].A.Tuples("E")) != 1 {
		t.Fatal("wrong disjunct survived")
	}
}

func TestMinimizeKeepsOneOfEquivalentPair(t *testing.T) {
	// Two logically equivalent disjuncts (same formula twice).
	c := compile(t, "q(x,y) := E(x,y) | E(x,y)")
	if len(c.Disjuncts) != 1 {
		t.Fatalf("normalized disjuncts = %d, want 1", len(c.Disjuncts))
	}
}

// Example 5.21: θ = φ1 ∨ φ2 ∨ φ3 ∨ θ1 with the Example 4.2 disjuncts and
// the sentence θ1 = ∃a,b,c,d. E(a,b) ∧ E(b,c) ∧ E(c,d).
// Expected: θ*af = {3·φ1, -2·(φ1∧φ3)}, φ1∧φ3 entails θ1, so
// θ⁺ = {φ1, θ1}.
func TestExample521PhiPlus(t *testing.T) {
	c := compile(t, `th(w,x,y,z) := E(x,y) & E(y,z)
		| E(z,w) & E(w,x)
		| E(w,x) & E(x,y)
		| exists a,b,c,d. E(a,b) & E(b,c) & E(c,d)`)
	if len(c.Sentences) != 1 {
		t.Fatalf("sentence disjuncts = %d, want 1", len(c.Sentences))
	}
	if len(c.Free) != 3 {
		t.Fatalf("free disjuncts = %d, want 3", len(c.Free))
	}
	if len(c.Star) != 2 {
		t.Fatalf("θ*af terms = %d, want 2", len(c.Star))
	}
	if len(c.Minus) != 1 {
		t.Fatalf("θ⁻af terms = %d, want 1 (the 3-path term entails θ1)", len(c.Minus))
	}
	if c.Minus[0].Coeff.Int64() != 3 {
		t.Fatalf("surviving coefficient = %v, want 3", c.Minus[0].Coeff)
	}
	if len(c.Plus) != 2 {
		t.Fatalf("θ⁺ size = %d, want 2 ({φ1, θ1})", len(c.Plus))
	}
}

// Forward reduction correctness: CountEPViaPP ≡ EPDirect on many random
// instances, including queries with sentence disjuncts.
func TestForwardReductionMatchesDirect(t *testing.T) {
	queries := []string{
		"q(w,x,y,z) := E(x,y) & (E(w,x) | E(y,z) & E(z,z))",                 // Example 4.1
		"q(w,x,y,z) := E(x,y) & E(y,z) | E(z,w) & E(w,x) | E(w,x) & E(x,y)", // Example 4.2
		"q(x,y) := E(x,y) | exists u. E(u,u)",
		"q(x) := exists u. E(x,u) | exists v. E(v,x)",
		"q() := exists u,v. E(u,v) & E(v,u)",
		"q(x,y) := E(x,y) | E(y,x)",
	}
	for _, src := range queries {
		c := compile(t, src)
		for seed := int64(0); seed < 6; seed++ {
			b := workload.RandomStructure(c.Sig, 3, 0.4, seed)
			want, err := count.EPDirect(c.Query, b)
			if err != nil {
				t.Fatal(err)
			}
			got, err := CountEPViaPP(c, b, fptCounter)
			if err != nil {
				t.Fatalf("%s seed %d: %v", src, seed, err)
			}
			if got.Cmp(want) != 0 {
				t.Fatalf("%s seed %d: forward reduction %v != direct %v\nB = %v", src, seed, got, want, b)
			}
		}
	}
}

// Example 4.3: with the paper's 4-element structure C the three formulas
// φ1, φ2, φ1∧φ2 have pairwise distinct positive counts.
func TestExample43StructureSeparates(t *testing.T) {
	cStruct := parser.MustStructure(`E(1,2). E(2,3). E(3,4). E(4,4).`, edgeSig())
	c := compile(t, "q(w,x,y,z) := E(x,y) & E(w,x) | E(x,y) & E(y,z) & E(z,z)")
	if len(c.Star) != 3 {
		t.Fatalf("star terms = %d, want 3", len(c.Star))
	}
	var vals []*big.Int
	for _, s := range c.Star {
		v, err := count.PP(s.Formula, cStruct, count.EngineFPT)
		if err != nil {
			t.Fatal(err)
		}
		vals = append(vals, v)
	}
	for i := range vals {
		if vals[i].Sign() <= 0 {
			t.Fatalf("term %d count %v not positive", i, vals[i])
		}
		for j := i + 1; j < len(vals); j++ {
			if vals[i].Cmp(vals[j]) == 0 {
				t.Fatalf("terms %d and %d have equal counts %v on Example 4.3's C", i, j, vals[i])
			}
		}
	}
}

// Backward reduction: every ψ ∈ φ⁺ is counted exactly through the ep
// oracle (Example 4.3's recovery generalized by Theorem 5.20).
func TestBackwardReductionMatchesDirect(t *testing.T) {
	queries := []string{
		"q(w,x,y,z) := E(x,y) & (E(w,x) | E(y,z) & E(z,z))", // Example 4.1/4.3
		"q(x,y) := E(x,y) | E(y,x)",
		"q(x,y) := E(x,y) | exists u. E(u,u)",
	}
	for _, src := range queries {
		c := compile(t, src)
		oracle := epOracleFor(c)
		for seed := int64(0); seed < 3; seed++ {
			b := workload.RandomStructure(c.Sig, 3, 0.45, 100+seed)
			for pi, psi := range c.Plus {
				want, err := count.PP(psi, b, count.EngineFPT)
				if err != nil {
					t.Fatal(err)
				}
				got, err := CountPPViaEP(c, psi, b, oracle)
				if err != nil {
					t.Fatalf("%s ψ#%d seed %d: %v", src, pi, seed, err)
				}
				if got.Cmp(want) != 0 {
					t.Fatalf("%s ψ#%d seed %d: backward reduction %v != direct %v\nψ = %v\nB = %v",
						src, pi, seed, got, want, psi, b)
				}
			}
		}
	}
}

// Sentence disjunct handling of the backward reduction (the A×B
// maximum-count test from Appendix A).
func TestBackwardReductionSentence(t *testing.T) {
	c := compile(t, "q(x,y) := E(x,y) & E(y,x) | exists u. E(u,u)")
	if len(c.Sentences) != 1 {
		t.Fatalf("sentences = %d, want 1", len(c.Sentences))
	}
	theta := c.Sentences[0]
	oracle := epOracleFor(c)

	withLoop := parser.MustStructure(`E(1,2). E(2,2).`, edgeSig())
	got, err := CountPPViaEP(c, theta, withLoop, oracle)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cmp(big.NewInt(4)) != 0 { // |B|² = 4
		t.Fatalf("sentence count on loop structure = %v, want 4", got)
	}
	noLoop := parser.MustStructure(`E(1,2). E(2,3).`, edgeSig())
	got, err = CountPPViaEP(c, theta, noLoop, oracle)
	if err != nil {
		t.Fatal(err)
	}
	if got.Sign() != 0 {
		t.Fatalf("sentence count on loop-free structure = %v, want 0", got)
	}
}

func TestPeelClass(t *testing.T) {
	// Example 5.7's pair: φ1(x,y) = E(x,y), φ2(x,y) = ∃z. E(x,y) ∧ F(z):
	// semi-counting equivalent, not counting equivalent, structures not
	// homomorphically equivalent.
	sig := structure.MustSignature(
		structure.RelSym{Name: "E", Arity: 2},
		structure.RelSym{Name: "F", Arity: 1},
	)
	lib := []logic.Var{"x", "y"}
	q1 := parser.MustQuery("p(x,y) := E(x,y)")
	q2 := parser.MustQuery("p(x,y) := exists z. E(x,y) & F(z)")
	p1, err := pp.FromDisjunct(sig, lib, q1.Disjuncts()[0])
	if err != nil {
		t.Fatal(err)
	}
	p2, err := pp.FromDisjunct(sig, lib, q2.Disjuncts()[0])
	if err != nil {
		t.Fatal(err)
	}
	coeffs := []*big.Int{big.NewInt(2), big.NewInt(-3)}
	sumOracle := func(y *structure.Structure) (*big.Int, error) {
		v1, err := count.PP(p1, y, count.EngineProjection)
		if err != nil {
			return nil, err
		}
		v2, err := count.PP(p2, y, count.EngineProjection)
		if err != nil {
			return nil, err
		}
		out := new(big.Int).Mul(coeffs[0], v1)
		return out.Add(out, new(big.Int).Mul(coeffs[1], v2)), nil
	}
	b := parser.MustStructure(`E(1,2). E(2,3). F(1).`, sig)
	for target, p := range []pp.PP{p1, p2} {
		want, err := count.PP(p, b, count.EngineProjection)
		if err != nil {
			t.Fatal(err)
		}
		got, err := PeelClass([]pp.PP{p1, p2}, coeffs, target, b, sumOracle)
		if err != nil {
			t.Fatalf("target %d: %v", target, err)
		}
		if got.Cmp(want) != 0 {
			t.Fatalf("target %d: peel %v != direct %v", target, got, want)
		}
	}
}

func TestDistinguishPair(t *testing.T) {
	sig := edgeSig()
	lib := []logic.Var{"x", "y"}
	p1, _ := pp.FromDisjunct(sig, lib, parser.MustQuery("p(x,y) := E(x,y)").Disjuncts()[0])
	p2, _ := pp.FromDisjunct(sig, lib, parser.MustQuery("p(x,y) := E(x,y) & E(y,x)").Disjuncts()[0])
	d, err := DistinguishPair(p1, p2)
	if err != nil {
		t.Fatal(err)
	}
	v1, _ := countOn(p1, d)
	v2, _ := countOn(p2, d)
	if v1.Sign() <= 0 || v2.Sign() <= 0 || v1.Cmp(v2) == 0 {
		t.Fatalf("distinguisher failed: %v vs %v on %v", v1, v2, d)
	}
}

func TestDistinguishSet(t *testing.T) {
	sig := edgeSig()
	lib := []logic.Var{"x", "y"}
	mk := func(src string) pp.PP {
		p, err := pp.FromDisjunct(sig, lib, parser.MustQuery(src).Disjuncts()[0])
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	reps := []pp.PP{
		mk("p(x,y) := E(x,y)"),
		mk("p(x,y) := E(x,y) & E(y,x)"),
		mk("p(x,y) := E(x,x) & E(y,y)"),
	}
	c, err := DistinguishSet(reps)
	if err != nil {
		t.Fatal(err)
	}
	var vals []*big.Int
	for _, r := range reps {
		v, err := countOn(r, c)
		if err != nil {
			t.Fatal(err)
		}
		if v.Sign() <= 0 {
			t.Fatalf("non-positive count %v on distinguisher", v)
		}
		vals = append(vals, v)
	}
	for i := range vals {
		for j := i + 1; j < len(vals); j++ {
			if vals[i].Cmp(vals[j]) == 0 {
				t.Fatalf("counts %d and %d collide: %v", i, j, vals[i])
			}
		}
	}
	if !c.HasAllLoopElem() {
		t.Fatal("distinguisher must keep an all-loop element")
	}
}

// End-to-end interreducibility on random ep-queries: the operational
// content of Theorem 3.1.
func TestInterreductionRandom(t *testing.T) {
	sig := edgeSig()
	for seed := int64(0); seed < 8; seed++ {
		q := workload.RandomEPQuery(sig, 2, 3, 2, 2, seed)
		c, err := Compile(q, sig)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		b := workload.RandomStructure(sig, 3, 0.4, seed+500)
		// Forward.
		want, err := count.EPDirect(q, b)
		if err != nil {
			t.Fatal(err)
		}
		got, err := CountEPViaPP(c, b, fptCounter)
		if err != nil {
			t.Fatalf("seed %d forward: %v", seed, err)
		}
		if got.Cmp(want) != 0 {
			t.Fatalf("seed %d: forward %v != direct %v (query %v)", seed, got, want, q)
		}
		// Backward, for every member of φ⁺.
		oracle := epOracleFor(c)
		for pi, psi := range c.Plus {
			pw, err := count.PP(psi, b, count.EngineFPT)
			if err != nil {
				t.Fatal(err)
			}
			pg, err := CountPPViaEP(c, psi, b, oracle)
			if err != nil {
				t.Fatalf("seed %d ψ#%d: %v", seed, pi, err)
			}
			if pg.Cmp(pw) != 0 {
				t.Fatalf("seed %d ψ#%d: backward %v != direct %v", seed, pi, pg, pw)
			}
		}
	}
}

func TestCompileRejectsUnknownFormula(t *testing.T) {
	q := parser.MustQuery("q(x) := F(x)")
	if _, err := Compile(q, edgeSig()); err == nil {
		t.Fatal("compiling against a signature missing F should error")
	}
}
