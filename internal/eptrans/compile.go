package eptrans

import (
	"fmt"
	"math/big"

	"repro/internal/ie"
	"repro/internal/logic"
	"repro/internal/pp"
	"repro/internal/structure"
	"repro/internal/term"
)

// Compiled is the fully-processed form of an ep-query: its normalized
// disjuncts, the all-free part, the cancelled inclusion–exclusion
// expansion φ*af, the entailment-filtered φ⁻af, and φ⁺.
type Compiled struct {
	Query logic.Query
	Sig   *structure.Signature

	// Disjuncts is the normalized (minimized) disjunct list: no disjunct
	// logically entails another, hence no disjunct entails a sentence
	// disjunct — the normalization property of Section 2.1.
	Disjuncts []pp.PP
	// Free are the free disjuncts (φaf is their disjunction), Sentences
	// the sentence disjuncts, in Disjuncts order.
	Free      []pp.PP
	Sentences []pp.PP
	// Pool is the canonical term pool the inclusion–exclusion expansion
	// was interned through: every raw term classified by canonical core
	// fingerprint with merged coefficients.  Downstream layers read its
	// statistics (raw vs unique term counts) and the per-class
	// fingerprints carried on Star/Minus.
	Pool *term.Pool
	// Star is φ*af: the cancelled inclusion–exclusion terms over Free
	// (Proposition 5.16).
	Star []ie.Term
	// Minus is φ⁻af: the Star terms that do not logically entail any
	// sentence disjunct (Section 5.4).
	Minus []ie.Term
	// Plus is φ⁺ = formulas of Minus ∪ Sentences (Theorem 3.1).
	Plus []pp.PP
}

// Compile runs the full Theorem 3.1 front-end on a query.  sig must cover
// every relation the query uses (pass InferStructSignature(q) when no
// ambient signature is at hand).
func Compile(q logic.Query, sig *structure.Signature) (*Compiled, error) {
	c := &Compiled{Query: q, Sig: sig}
	raw := q.Disjuncts()
	if len(raw) == 0 {
		return nil, fmt.Errorf("eptrans: query has no disjuncts")
	}
	pps := make([]pp.PP, 0, len(raw))
	for _, d := range raw {
		p, err := pp.FromDisjunct(sig, q.Lib, d)
		if err != nil {
			return nil, err
		}
		pps = append(pps, p)
	}
	normalized, err := Minimize(pps)
	if err != nil {
		return nil, err
	}
	c.Disjuncts = normalized
	for _, p := range normalized {
		if p.IsSentence() {
			c.Sentences = append(c.Sentences, p)
		} else {
			c.Free = append(c.Free, p)
		}
	}
	c.Pool = term.NewPool()
	c.Star, err = ie.PhiStarInto(c.Pool, c.Free)
	if err != nil {
		return nil, err
	}
	for _, t := range c.Star {
		entailsSentence := false
		for _, th := range c.Sentences {
			ok, err := pp.Entails(t.Formula, th)
			if err != nil {
				return nil, err
			}
			if ok {
				entailsSentence = true
				break
			}
		}
		if !entailsSentence {
			c.Minus = append(c.Minus, ie.Term{
				Formula: t.Formula,
				Coeff:   new(big.Int).Set(t.Coeff),
				FP:      t.FP,
				Subset:  append([]int(nil), t.Subset...),
			})
		}
	}
	for _, t := range c.Minus {
		c.Plus = append(c.Plus, t.Formula)
	}
	c.Plus = append(c.Plus, c.Sentences...)
	return c, nil
}

// Minimize removes every disjunct that logically entails another disjunct
// (its answers are subsumed, so dropping it preserves the answer set).
// Among logically equivalent disjuncts the earliest survives.  The result
// is a normalized ep-formula in the sense of Section 2.1: in particular no
// surviving disjunct maps homomorphically from a sentence disjunct.
func Minimize(pps []pp.PP) ([]pp.PP, error) {
	n := len(pps)
	drop := make([]bool, n)
	for i := 0; i < n; i++ {
		if drop[i] {
			continue
		}
		for j := 0; j < n; j++ {
			if i == j || drop[j] {
				continue
			}
			iEntailsJ, err := pp.Entails(pps[i], pps[j])
			if err != nil {
				return nil, err
			}
			if !iEntailsJ {
				continue
			}
			jEntailsI, err := pp.Entails(pps[j], pps[i])
			if err != nil {
				return nil, err
			}
			if !jEntailsI || j < i {
				drop[i] = true
				break
			}
		}
	}
	var out []pp.PP
	for i, p := range pps {
		if !drop[i] {
			out = append(out, p)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("eptrans: minimization dropped every disjunct")
	}
	return out, nil
}

// InferStructSignature derives a structure.Signature from the query's
// atoms.
func InferStructSignature(q logic.Query) (*structure.Signature, error) {
	m, err := logic.InferSignature(q.F)
	if err != nil {
		return nil, err
	}
	rels := make([]structure.RelSym, 0, len(m))
	for name, ar := range m {
		rels = append(rels, structure.RelSym{Name: name, Arity: ar})
	}
	return structure.NewSignature(rels...)
}

// MaxCount returns |B|^|lib(φ)|: the count when a sentence disjunct holds.
func (c *Compiled) MaxCount(b *structure.Structure) *big.Int {
	return structure.PowerSize(b, len(c.Query.Lib))
}

// SentenceHolds reports whether the given sentence disjunct is true on b
// (equivalently, whether its structure maps homomorphically into b).
func SentenceHolds(theta pp.PP, b *structure.Structure) bool {
	return homExists(theta.A, b)
}
