package eptrans

import (
	"fmt"
	"math/big"

	"repro/internal/ie"
	"repro/internal/lin"
	"repro/internal/pp"
	"repro/internal/structure"
)

// EPOracle returns |φ(B)| for a fixed ep-formula φ on the supplied
// structure: the oracle of the pp→ep slice reduction.
type EPOracle func(b *structure.Structure) (*big.Int, error)

// PPCounter counts a pp-formula on a structure: the oracle of the ep→pp
// slice reduction (restricted, by construction, to formulas from φ⁺).
type PPCounter func(p pp.PP, b *structure.Structure) (*big.Int, error)

// CountEPViaPP is the forward slice reduction of Theorem 3.1 (Appendix A):
// count an ep-formula given an oracle for the pp-formulas in φ⁺.
//
// If some sentence disjunct holds on B the count is |B|^|lib|; otherwise
// |φ(B)| = |φaf(B)| = Σ over φ*af of c_ψ·|ψ(B)|, where terms outside φ⁻af
// are answered 0 (they entail a sentence disjunct that fails on B) and
// terms in φ⁻af are answered by the oracle.
func CountEPViaPP(c *Compiled, b *structure.Structure, cnt PPCounter) (*big.Int, error) {
	if err := b.Validate(); err != nil {
		return nil, err
	}
	for _, th := range c.Sentences {
		if SentenceHolds(th, b) {
			return c.MaxCount(b), nil
		}
	}
	return ie.Count(c.Minus, b, ie.CountFunc(cnt))
}

// plusIndex locates psi among c.Plus by structure identity.
func (c *Compiled) plusIndex(psi pp.PP) int {
	for i, p := range c.Plus {
		if p.A == psi.A {
			return i
		}
	}
	for i, p := range c.Plus {
		if structure.Equal(p.A, psi.A) && len(p.S) == len(psi.S) {
			same := true
			for j := range p.S {
				if p.S[j] != psi.S[j] {
					same = false
					break
				}
			}
			if same {
				return i
			}
		}
	}
	return -1
}

// CountPPViaEP is the backward slice reduction of Theorem 3.1 (Appendix
// A): count a pp-formula ψ ∈ φ⁺ given an oracle for the ep-formula φ.
//
// For a sentence disjunct θ = (A,V): query |φ(A×B)| and compare with the
// maximum possible count (|A|·|B|)^|V|; θ holds on B iff the maximum is
// attained, in which case |θ(B)| = |B|^|V|.
//
// For ψ ∈ φ⁻af: no sentence disjunct of φ holds on ψ's own structure Aψ
// (that is exactly the φ⁻af filter), and products inherit that failure, so
// on every structure with Aψ as a factor, φ and φaf agree.  We therefore
// run the all-free reduction of Theorem 5.20 on B×Aψ, answer its φaf
// queries directly with the φ oracle, and divide by |ψ(Aψ)| > 0.
// (The paper's Appendix A uses the disjoint union of all φ⁻af structures
// as the product factor; using ψ's own structure is an equally valid
// choice of the reduction's per-parameter data and avoids a subtlety with
// disconnected sentence disjuncts — see DESIGN.md.)
func CountPPViaEP(c *Compiled, psi pp.PP, b *structure.Structure, oracle EPOracle) (*big.Int, error) {
	if err := b.Validate(); err != nil {
		return nil, err
	}
	idx := c.plusIndex(psi)
	if idx < 0 {
		return nil, fmt.Errorf("eptrans: formula not in φ⁺")
	}
	if idx >= len(c.Minus) {
		return countSentenceViaEP(c, psi, b, oracle)
	}
	// ψ ∈ φ⁻af.
	cPsi := psi.A
	bc, err := structure.Product(b, cPsi)
	if err != nil {
		return nil, err
	}
	onBC, err := allFreeCountViaEP(c, psi, bc, oracle)
	if err != nil {
		return nil, err
	}
	onC, err := countOn(psi, cPsi)
	if err != nil {
		return nil, err
	}
	if onC.Sign() == 0 {
		return nil, fmt.Errorf("eptrans: |ψ(Aψ)| = 0, impossible for ψ ∈ φ⁻af")
	}
	q, r := new(big.Int).QuoRem(onBC, onC, new(big.Int))
	if r.Sign() != 0 {
		return nil, fmt.Errorf("eptrans: product count %v not divisible by |ψ(C)| = %v", onBC, onC)
	}
	return q, nil
}

func countSentenceViaEP(c *Compiled, theta pp.PP, b *structure.Structure, oracle EPOracle) (*big.Int, error) {
	prod, err := structure.Product(theta.A, b)
	if err != nil {
		return nil, err
	}
	got, err := oracle(prod)
	if err != nil {
		return nil, err
	}
	max := structure.PowerSize(prod, len(c.Query.Lib))
	if got.Cmp(max) == 0 {
		return structure.PowerSize(b, len(c.Query.Lib)), nil
	}
	return new(big.Int), nil
}

// allFreeCountViaEP implements the harder direction of Theorem 5.20:
// recover |ψ(B)| for ψ ∈ φ*af from oracle access to Σ_i c_i·|φ*_i(·)|
// (which equals |φaf(·)| by Proposition 5.16, and here is answered by the
// φ oracle on structures where sentence disjuncts fail).
//
// Star terms are grouped into semi-counting-equivalence classes; a
// distinguishing structure C' (Lemma 5.12) gives pairwise distinct,
// positive per-class counts x_j; querying the oracle on B×C'^ℓ for
// ℓ = 0..s-1 yields a Vandermonde system in the per-class aggregates
// T_j = Σ_{ψ∈class j} c_ψ·|ψ(B)|; Lemma 5.18's recursive peeling then
// extracts the individual |ψ(B)| within ψ's class.
func allFreeCountViaEP(c *Compiled, psi pp.PP, b *structure.Structure, oracle EPOracle) (*big.Int, error) {
	if len(c.Star) == 0 {
		return nil, fmt.Errorf("eptrans: query has no all-free part")
	}
	// Group Star terms into semi-counting-equivalence classes.
	var classes [][]int
	target := -1
	targetClass := -1
	for ti, t := range c.Star {
		if t.Formula.A == psi.A {
			target = ti
		}
		placed := false
		for ci, cls := range classes {
			eq, err := pp.SemiCountingEquivalent(c.Star[cls[0]].Formula, t.Formula)
			if err != nil {
				return nil, err
			}
			if eq {
				classes[ci] = append(classes[ci], ti)
				placed = true
				break
			}
		}
		if !placed {
			classes = append(classes, []int{ti})
		}
	}
	if target < 0 {
		return nil, fmt.Errorf("eptrans: ψ not among φ*af terms")
	}
	for ci, cls := range classes {
		for _, ti := range cls {
			if ti == target {
				targetClass = ci
			}
		}
	}

	reps := make([]pp.PP, len(classes))
	for ci, cls := range classes {
		reps[ci] = c.Star[cls[0]].Formula
	}
	cPrime, err := DistinguishSet(reps)
	if err != nil {
		return nil, err
	}
	nodes := make([]*big.Int, len(classes))
	for ci := range classes {
		nodes[ci], err = countOn(reps[ci], cPrime)
		if err != nil {
			return nil, err
		}
	}

	// aggregates(Y) returns T_j(Y) for all classes via the Vandermonde
	// solve at Y.
	powers := make([]*structure.Structure, len(classes))
	powers[0] = structure.Unit(cPrime.Signature())
	for l := 1; l < len(classes); l++ {
		powers[l], err = structure.Product(powers[l-1], cPrime)
		if err != nil {
			return nil, err
		}
	}
	aggregates := func(y *structure.Structure) ([]*big.Int, error) {
		rhs := make([]*big.Int, len(classes))
		for l := range classes {
			yl, err := structure.Product(y, powers[l])
			if err != nil {
				return nil, err
			}
			rhs[l], err = oracle(yl)
			if err != nil {
				return nil, err
			}
		}
		sol, err := lin.SolveVandermonde(nodes, rhs)
		if err != nil {
			return nil, err
		}
		out := make([]*big.Int, len(sol))
		for i, s := range sol {
			out[i], err = lin.RatInt(s)
			if err != nil {
				return nil, fmt.Errorf("eptrans: non-integer aggregate: %v", err)
			}
		}
		return out, nil
	}

	cls := classes[targetClass]
	if len(cls) == 1 {
		t, err := aggregates(b)
		if err != nil {
			return nil, err
		}
		return exactDiv(t[targetClass], c.Star[cls[0]].Coeff)
	}
	formulas := make([]pp.PP, len(cls))
	coeffs := make([]*big.Int, len(cls))
	tgt := -1
	for i, ti := range cls {
		formulas[i] = c.Star[ti].Formula
		coeffs[i] = c.Star[ti].Coeff
		if ti == target {
			tgt = i
		}
	}
	classOracle := func(y *structure.Structure) (*big.Int, error) {
		t, err := aggregates(y)
		if err != nil {
			return nil, err
		}
		return t[targetClass], nil
	}
	return PeelClass(formulas, coeffs, tgt, b, classOracle)
}

// PeelClass implements Lemma 5.18: given semi-counting-equivalent,
// pairwise non-counting-equivalent free pp-formulas φ_1..φ_s with non-zero
// coefficients and an oracle for Σ c_i·|φ_i(·)|, compute |φ_target(B)|.
//
// The structures are pairwise non-homomorphically-equivalent
// (Proposition 5.17), so a hom-order minimal φ_i exists
// (Proposition 5.19); on C = A_i every other formula has count 0, so
// oracle(B×C) = c_i·|φ_i(B)|·|φ_i(C)| isolates φ_i, and the remaining
// formulas are handled recursively with the oracle adjusted by
// subtraction.
func PeelClass(formulas []pp.PP, coeffs []*big.Int, target int, b *structure.Structure, oracle EPOracle) (*big.Int, error) {
	if len(formulas) != len(coeffs) || target < 0 || target >= len(formulas) {
		return nil, fmt.Errorf("eptrans: bad PeelClass arguments")
	}
	if len(formulas) == 1 {
		v, err := oracle(b)
		if err != nil {
			return nil, err
		}
		return exactDiv(v, coeffs[0])
	}
	i, err := pp.HomOrderMinimal(formulas)
	if err != nil {
		return nil, err
	}
	cStruct := formulas[i].A
	onC, err := countOn(formulas[i], cStruct)
	if err != nil {
		return nil, err
	}
	if onC.Sign() == 0 {
		return nil, fmt.Errorf("eptrans: minimal formula has zero count on its own structure")
	}
	den := new(big.Int).Mul(coeffs[i], onC)
	countI := func(y *structure.Structure) (*big.Int, error) {
		yc, err := structure.Product(y, cStruct)
		if err != nil {
			return nil, err
		}
		v, err := oracle(yc)
		if err != nil {
			return nil, err
		}
		return exactDiv(v, den)
	}
	if i == target {
		return countI(b)
	}
	var restF []pp.PP
	var restC []*big.Int
	newTarget := -1
	for j := range formulas {
		if j == i {
			continue
		}
		if j == target {
			newTarget = len(restF)
		}
		restF = append(restF, formulas[j])
		restC = append(restC, coeffs[j])
	}
	restOracle := func(y *structure.Structure) (*big.Int, error) {
		full, err := oracle(y)
		if err != nil {
			return nil, err
		}
		vi, err := countI(y)
		if err != nil {
			return nil, err
		}
		return new(big.Int).Sub(full, new(big.Int).Mul(coeffs[i], vi)), nil
	}
	return PeelClass(restF, restC, newTarget, b, restOracle)
}

func exactDiv(num, den *big.Int) (*big.Int, error) {
	if den.Sign() == 0 {
		return nil, fmt.Errorf("eptrans: division by zero coefficient")
	}
	q, r := new(big.Int).QuoRem(num, den, new(big.Int))
	if r.Sign() != 0 {
		return nil, fmt.Errorf("eptrans: %v not divisible by %v", num, den)
	}
	return q, nil
}
