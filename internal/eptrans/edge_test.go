package eptrans

import (
	"math/big"
	"testing"

	"repro/internal/count"
	"repro/internal/parser"
	"repro/internal/pp"
	"repro/internal/workload"
)

// A query whose disjuncts are all sentences (with liberal variables):
// the count is |B|^|lib| or 0.
func TestAllSentenceQuery(t *testing.T) {
	// 2-cycle vs 3-cycle sentences: neither entails the other (directed
	// cycles only map onto cycles of dividing length), so both survive
	// normalization.  (A loop sentence ∃u.E(u,u) would entail EVERY
	// E-sentence — its structure maps anywhere a loop maps — and collapse
	// the union; see TestNormalizationDropsFreeDisjunctEntailingSentence.)
	c := compile(t, "q(x,y) := (exists a, b. E(a,b) & E(b,a)) | (exists p, r, s. E(p,r) & E(r,s) & E(s,p))")
	if len(c.Free) != 0 || len(c.Star) != 0 || len(c.Minus) != 0 {
		t.Fatalf("all-sentence query: free=%d star=%d minus=%d", len(c.Free), len(c.Star), len(c.Minus))
	}
	if len(c.Plus) != 2 {
		t.Fatalf("φ⁺ = %d, want 2 sentences", len(c.Plus))
	}
	withLoop := parser.MustStructure("E(1,1). E(1,2). E(2,3).", edgeSig())
	got, err := CountEPViaPP(c, withLoop, fptCounter)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cmp(big.NewInt(9)) != 0 {
		t.Fatalf("count = %v, want 9", got)
	}
	noPattern := parser.MustStructure("E(1,2). E(2,3).", edgeSig())
	got, err = CountEPViaPP(c, noPattern, fptCounter)
	if err != nil {
		t.Fatal(err)
	}
	if got.Sign() != 0 {
		t.Fatalf("count = %v, want 0", got)
	}
	// Cross-check against direct evaluation.
	want, err := count.EPDirect(c.Query, withLoop)
	if err != nil {
		t.Fatal(err)
	}
	if want.Cmp(big.NewInt(9)) != 0 {
		t.Fatalf("direct = %v, want 9", want)
	}
}

// Two homomorphically equivalent sentence disjuncts: normalization must
// keep exactly one.
func TestNormalizationMergesEquivalentSentences(t *testing.T) {
	c := compile(t, "q(x) := (exists u, v. E(u,v)) | (exists a, b, z. E(a,b))")
	if len(c.Sentences) != 1 {
		t.Fatalf("sentences = %d, want 1 after normalization", len(c.Sentences))
	}
}

// A sentence disjunct entailed by a free disjunct: the free disjunct is
// dropped (its answers are subsumed whenever the sentence holds... more
// precisely, it entails the sentence, so minimization removes it).
func TestNormalizationDropsFreeDisjunctEntailingSentence(t *testing.T) {
	// E(x,x) entails ∃u.E(u,u).
	c := compile(t, "q(x) := E(x,x) | exists u. E(u,u)")
	if len(c.Disjuncts) != 1 {
		t.Fatalf("disjuncts = %d, want 1", len(c.Disjuncts))
	}
	if !c.Disjuncts[0].IsSentence() {
		t.Fatal("the sentence should survive")
	}
	// Counting still matches the direct semantics.
	for seed := int64(0); seed < 4; seed++ {
		b := workload.RandomStructure(edgeSig(), 3, 0.4, seed)
		want, err := count.EPDirect(c.Query, b)
		if err != nil {
			t.Fatal(err)
		}
		got, err := CountEPViaPP(c, b, fptCounter)
		if err != nil {
			t.Fatal(err)
		}
		if got.Cmp(want) != 0 {
			t.Fatalf("seed %d: %v != %v", seed, got, want)
		}
	}
}

func TestDistinguishSetSingleton(t *testing.T) {
	q := parser.MustQuery("p(x,y) := E(x,y)")
	p, err := pp.FromDisjunct(edgeSig(), q.Lib, q.Disjuncts()[0])
	if err != nil {
		t.Fatal(err)
	}
	c, err := DistinguishSet([]pp.PP{p})
	if err != nil {
		t.Fatal(err)
	}
	v, err := countOn(p, c)
	if err != nil {
		t.Fatal(err)
	}
	if v.Sign() <= 0 {
		t.Fatal("count must be positive on the distinguisher")
	}
	if !c.HasAllLoopElem() {
		t.Fatal("distinguisher must have an all-loop element")
	}
}

// The plan-based Counter path and the plain reduction agree (exercised
// here at the eptrans level via the sentence-free Example 4.2 query).
func TestForwardReductionExample42ManyStructures(t *testing.T) {
	c := compile(t, "q(w,x,y,z) := E(x,y) & E(y,z) | E(z,w) & E(w,x) | E(w,x) & E(x,y)")
	if len(c.Star) != 2 {
		t.Fatalf("Example 4.2 star = %d, want 2", len(c.Star))
	}
	for seed := int64(0); seed < 10; seed++ {
		b := workload.RandomStructure(edgeSig(), 4, 0.35, seed)
		want, err := count.EPDirect(c.Query, b)
		if err != nil {
			t.Fatal(err)
		}
		got, err := CountEPViaPP(c, b, fptCounter)
		if err != nil {
			t.Fatal(err)
		}
		if got.Cmp(want) != 0 {
			t.Fatalf("seed %d: %v != %v", seed, got, want)
		}
	}
}
