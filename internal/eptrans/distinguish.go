package eptrans

import (
	"fmt"
	"math/big"

	"repro/internal/count"
	"repro/internal/hom"
	"repro/internal/pp"
	"repro/internal/structure"
)

func homExists(a, b *structure.Structure) bool {
	return hom.Exists(a, b, hom.Options{})
}

// countOn counts |p(B)| with the projection engine (the distinguishing
// search needs exact counts on small candidate structures).
func countOn(p pp.PP, b *structure.Structure) (*big.Int, error) {
	return count.PP(p, b, count.EngineProjection)
}

// maxMaterializedSize caps the size of structures the distinguishing
// search is willing to build.
const maxMaterializedSize = 1 << 17

// DistinguishPair implements Lemma 5.13: given two liberal pp-formulas
// that are not semi-counting equivalent, find a structure D on which every
// pp-formula has a positive count (D contains an all-loop element) and the
// two formulas have different counts.
//
// Strategy: try targeted candidates assembled from the formulas' own
// structures (the proof's witness always embeds in such unions), each
// padded with k all-loop elements for k up to the polynomial-degree bound
// of the B+kI argument in the proofs of Theorem 5.9 and Lemma 5.13; fall
// back to a bounded enumeration of small structures.
func DistinguishPair(p, q pp.PP) (*structure.Structure, error) {
	sig := p.A.Signature()
	if !sig.Equal(q.A.Signature()) {
		return nil, fmt.Errorf("eptrans: distinguishing across different signatures")
	}
	// Counts on B+kI are polynomials in k of degree at most the number of
	// components; if two such polynomials differ they differ at some
	// k ≤ deg+1 among k = 1..deg+2.
	degBound := len(p.Components()) + len(q.Components()) + 2

	bases := []*structure.Structure{}
	if u, err := structure.DisjointUnion(p.A, q.A); err == nil {
		bases = append(bases, u)
	}
	bases = append(bases, p.A, q.A)
	if prod, err := structure.Product(p.A, q.A); err == nil && prod.Size() <= maxMaterializedSize {
		bases = append(bases, prod)
	}

	try := func(cand *structure.Structure) (bool, error) {
		cp, err := countOn(p, cand)
		if err != nil {
			return false, err
		}
		cq, err := countOn(q, cand)
		if err != nil {
			return false, err
		}
		return cp.Sign() > 0 && cq.Sign() > 0 && cp.Cmp(cq) != 0, nil
	}

	for _, base := range bases {
		for k := 1; k <= degBound; k++ {
			cand := structure.PadLoops(base, k)
			ok, err := try(cand)
			if err != nil {
				return nil, err
			}
			if ok {
				return cand, nil
			}
		}
	}
	// Bounded fallback enumeration of small structures (padded to ensure
	// positivity).  Semi-counting inequivalence guarantees a witness
	// exists; it is usually tiny.
	for _, base := range enumerateStructures(sig, 3, 4096) {
		for k := 1; k <= degBound; k++ {
			cand := structure.PadLoops(base, k)
			ok, err := try(cand)
			if err != nil {
				return nil, err
			}
			if ok {
				return cand, nil
			}
		}
	}
	return nil, fmt.Errorf("eptrans: no distinguishing structure found for %v vs %v (are they semi-counting equivalent?)", p, q)
}

// enumerateStructures yields up to limit structures over sig with at most
// maxN elements, in a deterministic order: for each universe size, tuple
// slots are toggled in a Gray-code-like sweep (small tuple sets first).
func enumerateStructures(sig *structure.Signature, maxN, limit int) []*structure.Structure {
	var out []*structure.Structure
	for n := 1; n <= maxN && len(out) < limit; n++ {
		// All possible tuples over n elements, across all relations.
		type slot struct {
			rel string
			t   []int
		}
		var slots []slot
		for _, r := range sig.Rels() {
			t := make([]int, r.Arity)
			for {
				slots = append(slots, slot{rel: r.Name, t: append([]int(nil), t...)})
				j := r.Arity - 1
				for j >= 0 {
					t[j]++
					if t[j] < n {
						break
					}
					t[j] = 0
					j--
				}
				if j < 0 {
					break
				}
			}
		}
		if len(slots) > 20 {
			// Too many subsets to sweep exhaustively; sample the sweep by
			// taking prefixes of increasing length instead.
			for l := 1; l <= len(slots) && len(out) < limit; l++ {
				s := structure.New(sig)
				for e := 0; e < n; e++ {
					_, _ = s.AddElem(fmt.Sprintf("e%d", e))
				}
				for _, sl := range slots[:l] {
					_ = s.AddTuple(sl.rel, sl.t...)
				}
				out = append(out, s)
			}
			continue
		}
		for mask := 1; mask < 1<<len(slots) && len(out) < limit; mask++ {
			s := structure.New(sig)
			for e := 0; e < n; e++ {
				_, _ = s.AddElem(fmt.Sprintf("e%d", e))
			}
			for i, sl := range slots {
				if mask&(1<<i) != 0 {
					_ = s.AddTuple(sl.rel, sl.t...)
				}
			}
			out = append(out, s)
		}
	}
	return out
}

// DistinguishSet implements Lemma 5.12: given pairwise non-semi-counting-
// equivalent liberal pp-formulas, find a structure C such that every
// pp-formula has positive count on C and the given formulas have pairwise
// distinct counts on C.
//
// Following the induction in the proof, formulas are inserted one at a
// time; a collision between the newcomer and an existing formula is
// resolved by a pairwise distinguisher D' (Lemma 5.13) and product
// amplification C^ℓ × D'.  Counts on products factor
// (|ψ(C₁×C₂)| = |ψ(C₁)|·|ψ(C₂)|), so candidate ℓ are evaluated
// arithmetically and the structure is materialized only once a working ℓ
// is found.
func DistinguishSet(reps []pp.PP) (*structure.Structure, error) {
	if len(reps) == 0 {
		return nil, fmt.Errorf("eptrans: no formulas to distinguish")
	}
	c := structure.PadLoops(reps[0].A, 1)

	countsOn := func(x *structure.Structure, upto int) ([]*big.Int, error) {
		out := make([]*big.Int, upto)
		for i := 0; i < upto; i++ {
			v, err := countOn(reps[i], x)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	}
	allDistinct := func(vals []*big.Int) bool {
		for i := range vals {
			if vals[i].Sign() == 0 {
				return false
			}
			for j := i + 1; j < len(vals); j++ {
				if vals[i].Cmp(vals[j]) == 0 {
					return false
				}
			}
		}
		return true
	}

	for t := 1; t < len(reps); t++ {
		vals, err := countsOn(c, t+1)
		if err != nil {
			return nil, err
		}
		if allDistinct(vals) {
			continue
		}
		// Find the collision partner of rep t (or any colliding pair).
		coll := -1
		for i := 0; i < t; i++ {
			if vals[i].Cmp(vals[t]) == 0 {
				coll = i
				break
			}
		}
		if coll == -1 {
			// Collision among earlier formulas cannot happen (inductive
			// invariant), but guard anyway by re-distinguishing the first
			// colliding pair.
			for i := 0; i < t && coll == -1; i++ {
				for j := i + 1; j <= t; j++ {
					if vals[i].Cmp(vals[j]) == 0 {
						coll = i
						break
					}
				}
			}
		}
		dPrime, err := DistinguishPair(reps[t], reps[coll])
		if err != nil {
			return nil, err
		}
		dVals, err := countsOn(dPrime, t+1)
		if err != nil {
			return nil, err
		}
		cVals := vals
		found := false
		sizeC, sizeD := big.NewInt(int64(c.Size())), big.NewInt(int64(dPrime.Size()))
		for l := 1; l <= 64; l++ {
			// Arithmetic counts on C^l × D'.
			cand := make([]*big.Int, t+1)
			for i := range cand {
				pow := new(big.Int).Exp(cVals[i], big.NewInt(int64(l)), nil)
				cand[i] = pow.Mul(pow, dVals[i])
			}
			if !allDistinct(cand) {
				continue
			}
			size := new(big.Int).Exp(sizeC, big.NewInt(int64(l)), nil)
			size.Mul(size, sizeD)
			if size.Cmp(big.NewInt(maxMaterializedSize)) > 0 {
				return nil, fmt.Errorf("eptrans: distinguishing structure would need %v elements (C^%d×D')", size, l)
			}
			cl, err := structure.Power(c, l)
			if err != nil {
				return nil, err
			}
			c, err = structure.Product(cl, dPrime)
			if err != nil {
				return nil, err
			}
			found = true
			break
		}
		if !found {
			return nil, fmt.Errorf("eptrans: product amplification failed to separate formula %d", t)
		}
	}
	// Final verification.
	vals, err := countsOn(c, len(reps))
	if err != nil {
		return nil, err
	}
	if !allDistinct(vals) {
		return nil, fmt.Errorf("eptrans: distinguishing structure verification failed")
	}
	if !c.HasAllLoopElem() {
		return nil, fmt.Errorf("eptrans: distinguishing structure lost its all-loop element")
	}
	return c, nil
}
