package eptrans

import (
	"testing"

	"repro/internal/count"
	"repro/internal/parser"
	"repro/internal/structure"
	"repro/internal/workload"
)

// The paper's conclusion notes the equivalence theorem does not need the
// bounded-arity assumption (it only enters through the pp-trichotomy).
// These tests run the full pipeline over a ternary signature.

func ternarySig() *structure.Signature {
	return structure.MustSignature(
		structure.RelSym{Name: "R", Arity: 3},
		structure.RelSym{Name: "P", Arity: 1},
	)
}

func TestForwardReductionTernary(t *testing.T) {
	queries := []string{
		"q(x,y) := exists z. R(x,y,z) | exists z. R(z,x,y)",
		"q(x) := P(x) | exists a, b. R(x,a,b) & P(a)",
		"q(x,y) := R(x,y,y) | R(y,x,x) | P(x) & P(y)",
		"q(x) := P(x) & (exists a. R(a,a,a)) | R(x,x,x)",
	}
	sig := ternarySig()
	for _, src := range queries {
		c := compile2(t, src, sig)
		for seed := int64(0); seed < 5; seed++ {
			b := workload.RandomStructure(sig, 3, 0.3, seed)
			want, err := count.EPDirect(c.Query, b)
			if err != nil {
				t.Fatal(err)
			}
			got, err := CountEPViaPP(c, b, fptCounter)
			if err != nil {
				t.Fatalf("%s seed %d: %v", src, seed, err)
			}
			if got.Cmp(want) != 0 {
				t.Fatalf("%s seed %d: forward %v != direct %v", src, seed, got, want)
			}
		}
	}
}

func TestBackwardReductionTernary(t *testing.T) {
	sig := ternarySig()
	c := compile2(t, "q(x,y) := exists z. R(x,y,z) | exists z. R(z,x,y)", sig)
	oracle := epOracleFor(c)
	for seed := int64(0); seed < 3; seed++ {
		b := workload.RandomStructure(sig, 3, 0.35, 40+seed)
		for pi, psi := range c.Plus {
			want, err := count.PP(psi, b, count.EngineFPT)
			if err != nil {
				t.Fatal(err)
			}
			got, err := CountPPViaEP(c, psi, b, oracle)
			if err != nil {
				t.Fatalf("ψ#%d seed %d: %v", pi, seed, err)
			}
			if got.Cmp(want) != 0 {
				t.Fatalf("ψ#%d seed %d: backward %v != direct %v", pi, seed, got, want)
			}
		}
	}
}

func TestTernarySentenceDisjunct(t *testing.T) {
	sig := ternarySig()
	c := compile2(t, "q(x) := R(x,x,x) | exists a, b. R(a,b,a)", sig)
	if len(c.Sentences) != 1 {
		t.Fatalf("sentences = %d, want 1", len(c.Sentences))
	}
	oracle := epOracleFor(c)
	// Structure where the sentence holds.
	withPattern := workload.RandomStructure(sig, 2, 0, 1)
	_ = withPattern.AddTuple("R", 0, 1, 0)
	got, err := CountPPViaEP(c, c.Sentences[0], withPattern, oracle)
	if err != nil {
		t.Fatal(err)
	}
	if got.Int64() != 2 { // |B|^1
		t.Fatalf("sentence count = %v, want 2", got)
	}
	// Structure where it fails (R(a,b,a) unsatisfiable).
	without := workload.RandomStructure(sig, 2, 0, 1)
	_ = without.AddTuple("R", 0, 1, 1)
	got, err = CountPPViaEP(c, c.Sentences[0], without, oracle)
	if err != nil {
		t.Fatal(err)
	}
	if got.Sign() != 0 {
		t.Fatalf("sentence count = %v, want 0", got)
	}
}

func compile2(t *testing.T, src string, sig *structure.Signature) *Compiled {
	t.Helper()
	q, err := parser.ParseQuery(src)
	if err != nil {
		t.Fatal(err)
	}
	c, err := Compile(q, sig)
	if err != nil {
		t.Fatal(err)
	}
	return c
}
