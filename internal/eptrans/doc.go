// Package eptrans implements the equivalence theorem (Theorem 3.1): the
// effective translation of an ep-formula φ into the finite set φ⁺ of
// prenex pp-formulas, and the two counting slice reductions between
// count[Φ] and count[Φ⁺] (Section 5.3, Section 5.4, Appendix A).  The
// distinguishing-structure lemmas (5.12/5.13) and the recursive class
// peeling of Lemma 5.18 are implemented constructively.
package eptrans
