package eptrans

import (
	"fmt"
	"math/big"
	"strings"
	"testing"

	"repro/internal/ie"
	"repro/internal/logic"
	"repro/internal/parser"
	"repro/internal/pp"
	"repro/internal/structure"
	"repro/internal/workload"
)

// Failure-injection and error-path coverage for the reduction machinery.

func TestCountPPViaEPRejectsForeignFormula(t *testing.T) {
	c := compile(t, "q(x,y) := E(x,y) | E(y,x)")
	foreign, err := pp.FromDisjunct(edgeSig(), []logic.Var{"x", "y"},
		parser.MustQuery("p(x,y) := E(x,x)").Disjuncts()[0])
	if err != nil {
		t.Fatal(err)
	}
	b := workload.RandomStructure(edgeSig(), 3, 0.5, 1)
	if _, err := CountPPViaEP(c, foreign, b, epOracleFor(c)); err == nil {
		t.Fatal("formula outside φ⁺ must be rejected")
	}
}

func TestReductionsRejectEmptyStructures(t *testing.T) {
	c := compile(t, "q(x,y) := E(x,y)")
	empty := structure.New(edgeSig())
	if _, err := CountEPViaPP(c, empty, fptCounter); err == nil {
		t.Fatal("empty structure must be rejected (forward)")
	}
	if _, err := CountPPViaEP(c, c.Plus[0], empty, epOracleFor(c)); err == nil {
		t.Fatal("empty structure must be rejected (backward)")
	}
}

func TestPeelClassArgumentValidation(t *testing.T) {
	p, err := pp.FromDisjunct(edgeSig(), []logic.Var{"x"},
		parser.MustQuery("p(x) := E(x,x)").Disjuncts()[0])
	if err != nil {
		t.Fatal(err)
	}
	b := workload.RandomStructure(edgeSig(), 2, 0.5, 1)
	oracle := func(*structure.Structure) (*big.Int, error) { return big.NewInt(0), nil }
	if _, err := PeelClass([]pp.PP{p}, []*big.Int{big.NewInt(1), big.NewInt(2)}, 0, b, oracle); err == nil {
		t.Fatal("coefficient length mismatch must error")
	}
	if _, err := PeelClass([]pp.PP{p}, []*big.Int{big.NewInt(1)}, 5, b, oracle); err == nil {
		t.Fatal("out-of-range target must error")
	}
}

func TestPeelClassPropagatesOracleError(t *testing.T) {
	p, _ := pp.FromDisjunct(edgeSig(), []logic.Var{"x"},
		parser.MustQuery("p(x) := E(x,x)").Disjuncts()[0])
	b := workload.RandomStructure(edgeSig(), 2, 0.5, 1)
	boom := fmt.Errorf("boom")
	oracle := func(*structure.Structure) (*big.Int, error) { return nil, boom }
	_, err := PeelClass([]pp.PP{p}, []*big.Int{big.NewInt(1)}, 0, b, oracle)
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("oracle error not propagated: %v", err)
	}
}

func TestExactDivDetectsCorruptOracle(t *testing.T) {
	// An oracle returning wrong (non-divisible) sums must surface as an
	// error, not a silent wrong count.
	c := compile(t, "q(x,y) := E(x,y) | E(y,x)")
	b := workload.RandomStructure(edgeSig(), 3, 0.5, 2)
	calls := 0
	corrupt := func(y *structure.Structure) (*big.Int, error) {
		calls++
		v, err := CountEPViaPP(c, y, fptCounter)
		if err != nil {
			return nil, err
		}
		// Corrupt every second answer.
		if calls%2 == 0 {
			v = new(big.Int).Add(v, big.NewInt(1))
		}
		return v, nil
	}
	sawError := false
	for _, psi := range c.Plus {
		if _, err := CountPPViaEP(c, psi, b, corrupt); err != nil {
			sawError = true
		}
	}
	if !sawError {
		t.Fatal("corrupted oracle should produce at least one detection error")
	}
}

func TestDistinguishPairRejectsEquivalent(t *testing.T) {
	// Semi-counting-equivalent formulas have no distinguishing structure;
	// the search must terminate with an error, not loop.
	p1, _ := pp.FromDisjunct(edgeSig(), []logic.Var{"x", "y"},
		parser.MustQuery("p(x,y) := E(x,y)").Disjuncts()[0])
	p2, _ := pp.FromDisjunct(edgeSig(), []logic.Var{"w", "z"},
		parser.MustQuery("p(w,z) := E(w,z)").Disjuncts()[0])
	// Same vocabulary; counting equivalent up to renaming.
	if _, err := DistinguishPair(p1, p2); err == nil {
		t.Fatal("equivalent formulas must not yield a distinguishing structure")
	}
}

func TestCompileTooManyDisjuncts(t *testing.T) {
	// (a|b) repeated beyond the 2^s cap: 21 disjuncts of pairwise
	// inequivalent loops cannot be built easily; instead check that the
	// ie cap error propagates through Compile using distinct relations.
	var rels []structure.RelSym
	var parts []string
	for i := 0; i < ie.MaxDisjuncts+1; i++ {
		rels = append(rels, structure.RelSym{Name: fmt.Sprintf("R%02d", i), Arity: 1})
		parts = append(parts, fmt.Sprintf("R%02d(x)", i))
	}
	sig := structure.MustSignature(rels...)
	src := "q(x) := " + strings.Join(parts, " | ")
	q, err := parser.ParseQuery(src)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Compile(q, sig); err == nil {
		t.Fatal("disjunct-cap overflow must error")
	}
}

func TestMinimizeEmptyInput(t *testing.T) {
	if _, err := Minimize(nil); err == nil {
		t.Fatal("empty minimize must error")
	}
}

func TestSentenceHoldsBasics(t *testing.T) {
	c := compile(t, "q(x) := E(x,x) | exists u, v. E(u,v) & E(v,u)")
	if len(c.Sentences) != 1 {
		t.Fatalf("sentences = %d", len(c.Sentences))
	}
	th := c.Sentences[0]
	yes := parser.MustStructure("E(1,2). E(2,1).", edgeSig())
	no := parser.MustStructure("E(1,2). E(2,3).", edgeSig())
	if !SentenceHolds(th, yes) {
		t.Fatal("2-cycle sentence should hold")
	}
	if SentenceHolds(th, no) {
		t.Fatal("2-cycle sentence should fail on a path")
	}
}
