// Statistical acceptance tests for the importance-sampling estimator:
// unbiasedness of the fixed-budget mean, (ε, δ) interval coverage against
// exact ground truth, multi-component products, exact short-circuits and
// seed reproducibility.
//
// Every test runs a fixed seed matrix so `go test ./...` is deterministic.
// The matrix base can be shifted with EPCQ_APPROX_SEED_BASE (used by
// `make approx-smoke` to sweep several disjoint matrices); the statistical
// tolerances below leave a Chernoff-style budget wide enough that any base
// passes with overwhelming probability — a failure under some base is
// evidence of estimator bias, not bad luck.
package approx_test

import (
	"context"
	"math"
	"math/big"
	"os"
	"strconv"
	"testing"

	"repro/internal/approx"
	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/pp"
	"repro/internal/structure"
	"repro/internal/workload"
)

// seedBase returns the base of the seed matrix (default 1); trial i of a
// test that declares offset off uses seed base + off + i.
func seedBase(t *testing.T) int64 {
	t.Helper()
	s := os.Getenv("EPCQ_APPROX_SEED_BASE")
	if s == "" {
		return 1
	}
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		t.Fatalf("EPCQ_APPROX_SEED_BASE=%q: %v", s, err)
	}
	if v == 0 {
		v = 1
	}
	return v
}

// cliquePP is the k-clique pp-formula with every variable free.
func cliquePP(t *testing.T, k int) pp.PP {
	t.Helper()
	all := make([]int, k)
	for i := range all {
		all[i] = i
	}
	p, err := pp.New(workload.GraphStructure(workload.CompleteGraph(k)), all)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// exactCount is the ground truth |φ(B)| via the exact projection engine.
func exactCount(t *testing.T, p pp.PP, b *structure.Structure) *big.Int {
	t.Helper()
	pl, err := engine.Compile(p, engine.Projection)
	if err != nil {
		t.Fatal(err)
	}
	n, err := pl.Count(b)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func bigToF(n *big.Int) float64 {
	f, _ := new(big.Float).SetInt(n).Float64()
	return f
}

// TestUnbiasedMean checks E[estimate] = |φ(B)| for a fixed sampling budget.
// With ε driven to ~0 the adaptive stopping rule never fires, so each trial
// is a plain fixed-budget mean of i.i.d. unbiased weights and the trial
// average must approach the truth at the 1/√T rate.  The tolerance is five
// standard errors of the observed trial distribution — a deterministic
// pass for the default matrix, and a ~1e-6 false-positive rate under any.
func TestUnbiasedMean(t *testing.T) {
	base := seedBase(t)
	p := cliquePP(t, 3)
	b := workload.GraphStructure(workload.ER(40, 0.25, 3))
	truth := bigToF(exactCount(t, p, b))
	if truth == 0 {
		t.Fatal("degenerate instance: exact count is zero")
	}

	const (
		trials = 200
		budget = 512
	)
	est := approx.New(p)
	vals := make([]float64, 0, trials)
	for i := 0; i < trials; i++ {
		res, err := est.Count(context.Background(), b, approx.Params{
			Epsilon:    1e-9, // never closes: forces the full budget
			MinSamples: budget,
			MaxSamples: budget,
			Seed:       base + int64(i),
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Samples != budget {
			t.Fatalf("trial %d spent %d samples, want the fixed budget %d", i, res.Samples, budget)
		}
		vals = append(vals, bigToF(res.Estimate))
	}

	var mean float64
	for _, v := range vals {
		mean += v
	}
	mean /= trials
	var variance float64
	for _, v := range vals {
		variance += (v - mean) * (v - mean)
	}
	variance /= trials - 1
	stderr := math.Sqrt(variance / trials)
	if diff := math.Abs(mean - truth); diff > 5*stderr {
		t.Fatalf("trial mean %.1f vs truth %.1f: off by %.1f > 5 stderr (%.1f) — estimator looks biased",
			mean, truth, diff, 5*stderr)
	}
}

// TestCoverage checks the (ε, δ) contract: across many independent trials
// the fraction of estimates outside ±ε·truth must be consistent with δ.
// The failure budget is Chernoff-sized: with true failure rate δ = 0.1
// over 40 trials the chance of more than 12 failures is below 1e-4, so the
// test only fires on a genuinely broken interval.
func TestCoverage(t *testing.T) {
	base := seedBase(t)
	instances := []struct {
		name string
		p    pp.PP
		b    *structure.Structure
	}{
		{"K3/ER", cliquePP(t, 3), workload.GraphStructure(workload.ER(40, 0.25, 3))},
		{"K4/ER", cliquePP(t, 4), workload.GraphStructure(workload.ER(30, 0.35, 5))},
	}
	const (
		trials    = 40
		eps       = 0.1
		delta     = 0.1
		allowFail = 12
	)
	for ii, inst := range instances {
		inst := inst
		t.Run(inst.name, func(t *testing.T) {
			truth := bigToF(exactCount(t, inst.p, inst.b))
			if truth == 0 {
				t.Fatal("degenerate instance: exact count is zero")
			}
			est := approx.New(inst.p)
			failures := 0
			for i := 0; i < trials; i++ {
				res, err := est.Count(context.Background(), inst.b, approx.Params{
					Epsilon: eps,
					Delta:   delta,
					Seed:    base + int64(1000*(ii+1)+i),
				})
				if err != nil {
					t.Fatal(err)
				}
				if !res.Converged {
					t.Fatalf("trial %d did not converge within the default budget", i)
				}
				if rel := math.Abs(bigToF(res.Estimate)-truth) / truth; rel > eps {
					failures++
				}
			}
			if failures > allowFail {
				t.Fatalf("%d/%d trials missed ε=%.2f (budget %d at δ=%.2f) — interval is too tight",
					failures, trials, eps, allowFail, delta)
			}
		})
	}
}

// TestMultiComponentProduct checks the per-component factorization: on a
// formula whose Gaifman graph splits into two triangles the estimate of
// the product must track the product of the exact per-component counts.
func TestMultiComponentProduct(t *testing.T) {
	base := seedBase(t)
	g := graph.New(6)
	for _, e := range [][2]int{{0, 1}, {1, 2}, {0, 2}, {3, 4}, {4, 5}, {3, 5}} {
		g.AddEdge(e[0], e[1])
	}
	p, err := pp.New(workload.GraphStructure(g), []int{0, 1, 2, 3, 4, 5})
	if err != nil {
		t.Fatal(err)
	}
	if comps := p.Components(); len(comps) != 2 {
		t.Fatalf("expected 2 components, got %d", len(comps))
	}
	b := workload.GraphStructure(workload.ER(35, 0.3, 7))
	truth := bigToF(exactCount(t, p, b))
	if truth == 0 {
		t.Fatal("degenerate instance: exact count is zero")
	}

	res, err := approx.New(p).Count(context.Background(), b, approx.Params{
		Epsilon: 0.1,
		Delta:   0.05,
		Seed:    base,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("product estimate did not converge within the default budget")
	}
	rel := math.Abs(bigToF(res.Estimate)-truth) / truth
	// The reported RelErr sums the per-component shares; the realized
	// error must respect the reported interval with slack for the trial.
	if rel > 3*res.RelErr+0.1 {
		t.Fatalf("product estimate off by %.3f, reported rel-error %.3f", rel, res.RelErr)
	}
}

// TestExactShortCircuits checks the paths that never sample: a provably
// empty answer set is exact zero, and a tuple-free formula is the exact
// power |B|^|S|.
func TestExactShortCircuits(t *testing.T) {
	// K3 against a triangle-free structure: GAC wipes out → exact 0.
	p := cliquePP(t, 3)
	star := workload.GraphStructure(workload.ER(12, 0, 1)) // edgeless
	res, err := approx.New(p).Count(context.Background(), star, approx.Params{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Estimate.Sign() != 0 || !res.Exact || !res.Converged || res.RelErr != 0 || res.Confidence != 1 {
		t.Fatalf("edgeless structure: want exact zero, got %+v", res)
	}

	// Two isolated liberal variables, no atoms: |φ(B)| = |B|².
	a := structure.New(workload.EdgeSig())
	for _, name := range []string{"x", "y"} {
		if _, err := a.AddElem(name); err != nil {
			t.Fatal(err)
		}
	}
	free, err := pp.New(a, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	b := workload.GraphStructure(workload.ER(9, 0.4, 2))
	res, err = approx.New(free).Count(context.Background(), b, approx.Params{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := new(big.Int).SetInt64(81)
	if res.Estimate.Cmp(want) != 0 || !res.Exact {
		t.Fatalf("tuple-free formula: want exact %v, got %v (exact=%v)", want, res.Estimate, res.Exact)
	}
}

// TestSeedReproducibility checks that the same seed yields a bit-identical
// estimate and that distinct seeds explore distinct sample paths.
func TestSeedReproducibility(t *testing.T) {
	p := cliquePP(t, 3)
	b := workload.GraphStructure(workload.ER(40, 0.25, 3))
	est := approx.New(p)
	prm := approx.Params{Epsilon: 1e-9, MinSamples: 256, MaxSamples: 256, Seed: 42}
	r1, err := est.Count(context.Background(), b, prm)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := est.Count(context.Background(), b, prm)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Estimate.Cmp(r2.Estimate) != 0 || r1.Samples != r2.Samples {
		t.Fatalf("same seed diverged: %v/%d vs %v/%d", r1.Estimate, r1.Samples, r2.Estimate, r2.Samples)
	}
	prm.Seed = 43
	r3, err := est.Count(context.Background(), b, prm)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Estimate.Cmp(r3.Estimate) == 0 {
		t.Fatalf("seeds 42 and 43 produced the identical estimate %v — RNG is not seeded", r1.Estimate)
	}
}
