// Package approx implements a randomized approximate counting engine for
// the hard regime of the Chen–Mengel trichotomy (Theorem 3.2): pp-terms
// whose classification lands in case 2 (p-Clique-interreducible) or case 3
// (#Clique-hard), where no exact FPT algorithm exists unless standard
// parameterized-complexity assumptions fail.
//
// The estimator is a sequential importance sampler in the style of
// Knuth's unbiased tree-size estimator, run over the same posting-list
// indexes and GAC propagation the exact solver uses (hom.Sampler): a
// draw fixes the liberal variables one at a time to a uniformly random
// member of their current propagated domain, multiplies the domain sizes
// into a Horvitz–Thompson weight, and checks the partial assignment
// extends to a full homomorphism.  Arc-consistency only deletes values
// with no supporting solution, so every answer survives every
// propagation step and the weighted indicator is exactly unbiased:
// E[weight · 1{extendable}] = |φ(B)|.
//
// Gaifman components are handled as in the exact projection engine
// (|φ(B)| = ∏ᵢ |φᵢ(B)|): sentence components and isolated liberal
// variables contribute exact factors (hom.Exists, |B|^|S|); only
// components with both liberal variables and tuples are sampled, each
// with an (ε/k, δ/k) share of the requested budget so the product meets
// the overall target by a union bound.
//
// The adaptive sample budget targets a requested (ε, δ) guarantee with a
// normal-approximation confidence interval (z · s/√n, z from the inverse
// error function): sampling stops once the half-width drops below ε times
// the running mean, or the per-component MaxSamples cap is hit (reported
// via Result.Converged).  The interval is asymptotic rather than a
// finite-sample Chernoff bound — the worst-case weight range R = ∏|dom⁰ᵥ|
// makes empirical-Bernstein stopping vacuous on realistic instances — and
// its coverage is validated empirically by the repeated-trial statistical
// suite in stat_test.go.  All randomness flows from a caller-provided
// seed (Params.Seed), so estimates are bit-reproducible.
package approx
