package approx

import (
	"context"
	"fmt"
	"math"
	"math/big"
	"math/rand"

	"repro/internal/hom"
	"repro/internal/pp"
	"repro/internal/structure"
)

// Params configures one approximate count: the (ε, δ) target, the
// per-component sampling caps, and the RNG seed.  The zero value selects
// the defaults via withDefaults.
type Params struct {
	// Epsilon is the target relative error (default 0.1).
	Epsilon float64
	// Delta is the target failure probability: with probability ≥ 1-δ
	// the estimate is within ±ε·count (default 0.05).
	Delta float64
	// MaxSamples caps the draws spent on each sampled component
	// (default 200000).  Hitting the cap before the interval closes is
	// reported via Result.Converged=false.
	MaxSamples int
	// MinSamples is the minimum number of draws before the stopping
	// rule is consulted (default 256).
	MinSamples int
	// Seed seeds the estimator's RNG; the same seed yields the same
	// estimate.  0 selects the default seed 1.
	Seed int64
}

// withDefaults fills zero fields with the package defaults.
func (p Params) withDefaults() Params {
	if p.Epsilon <= 0 {
		p.Epsilon = 0.1
	}
	if p.Delta <= 0 || p.Delta >= 1 {
		p.Delta = 0.05
	}
	if p.MaxSamples <= 0 {
		p.MaxSamples = 200000
	}
	if p.MinSamples <= 0 {
		p.MinSamples = 256
	}
	if p.Seed == 0 {
		p.Seed = 1
	}
	return p
}

// Result is one approximate count: the point estimate with its error
// bound and the budget actually spent.
type Result struct {
	// Estimate is the point estimate of |φ(B)| (rounded to the nearest
	// integer).
	Estimate *big.Int
	// RelErr is the achieved relative half-width of the confidence
	// interval (0 when the count was computed exactly).
	RelErr float64
	// AbsErr is the corresponding absolute half-width.
	AbsErr float64
	// Confidence is the probability the true count lies within
	// Estimate·(1±RelErr): 1-δ for sampled results, 1 for exact ones.
	Confidence float64
	// Samples is the total number of draws spent across components.
	Samples int
	// Exact reports that every component was resolved exactly (no
	// sampling happened); RelErr is then 0 and Confidence 1.
	Exact bool
	// Converged reports whether every sampled component closed its
	// interval below its ε share before hitting MaxSamples.
	Converged bool
}

// Estimator is a compiled approximate-counting plan for one pp-formula:
// the Gaifman-component split is done once at construction, mirroring
// the exact projection engine.  An Estimator is immutable and safe for
// concurrent Count calls (each call builds its own samplers).
type Estimator struct {
	p     pp.PP
	comps []pp.PP
}

// New compiles an estimator for p.
func New(p pp.PP) *Estimator {
	return &Estimator{p: p, comps: p.Components()}
}

// Formula returns the pp-formula the estimator was compiled from.
func (e *Estimator) Formula() pp.PP { return e.p }

// zQuantile returns the two-sided normal critical value for failure
// probability delta: P(|Z| > z) = delta.
func zQuantile(delta float64) float64 {
	return math.Sqrt2 * math.Erfinv(1-delta)
}

// splitmix advances a splitmix64 state; used to derive independent
// per-component seeds from the caller's single seed.
func splitmix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// compEstimate is one sampled component's outcome.
type compEstimate struct {
	mean      float64
	absErr    float64
	samples   int
	converged bool
}

// sampleComponent runs the adaptive sampling loop for one component with
// an (eps, delta) share of the overall budget.
func sampleComponent(ctx context.Context, sp *hom.Sampler, rng *rand.Rand, eps, delta float64, minS, maxS int) (compEstimate, error) {
	if sp.ExactZero() {
		return compEstimate{converged: true}, nil
	}
	z := zQuantile(delta)
	var (
		n, nonzero float64
		sum, sumsq float64
	)
	const batch = 64
	done := ctx.Done()
	for int(n) < maxS {
		select {
		case <-done:
			return compEstimate{}, ctx.Err()
		default:
		}
		for i := 0; i < batch && int(n) < maxS; i++ {
			w := sp.Sample(rng)
			n++
			if w != 0 {
				nonzero++
				sum += w
				sumsq += w * w
			}
		}
		if int(n) < minS || nonzero < 16 {
			continue
		}
		mean := sum / n
		variance := (sumsq - n*mean*mean) / (n - 1)
		if variance < 0 {
			variance = 0
		}
		radius := z * math.Sqrt(variance/n)
		if mean > 0 && radius <= eps*mean {
			return compEstimate{mean: mean, absErr: radius, samples: int(n), converged: true}, nil
		}
	}
	// Budget exhausted: report the interval actually achieved.  With no
	// successful draw at all the mean is 0 and no relative bound exists;
	// surface full uncertainty (absErr = mean-scale unknown → use the
	// largest observed-compatible value of one unit so RelErr reads 1).
	mean := sum / n
	var radius float64
	if nonzero > 0 {
		variance := (sumsq - n*mean*mean) / (n - 1)
		if variance < 0 {
			variance = 0
		}
		radius = z * math.Sqrt(variance/n)
	} else {
		mean, radius = 0, 0
	}
	return compEstimate{mean: mean, absErr: radius, samples: int(n), converged: false}, nil
}

// Count estimates |φ(B)| to the requested (ε, δ) target.  Sentence
// components and isolated liberal variables are resolved exactly; every
// other component is sampled with an (ε/k, δ/k) share of the budget.
// The same Params.Seed always yields the same Result.
func (e *Estimator) Count(ctx context.Context, b *structure.Structure, prm Params) (Result, error) {
	prm = prm.withDefaults()
	if err := b.Validate(); err != nil {
		return Result{}, err
	}
	if !e.p.A.Signature().Equal(b.Signature()) {
		return Result{}, fmt.Errorf("approx: structure signature does not match formula signature")
	}
	if ctx == nil {
		ctx = context.Background()
	}

	sampled := 0
	for _, comp := range e.comps {
		if len(comp.S) > 0 && comp.A.NumTuples() > 0 {
			sampled++
		}
	}

	res := Result{Confidence: 1, Converged: true, Exact: sampled == 0}
	prod := new(big.Float).SetPrec(128).SetInt64(1)
	relSum := 0.0
	seed := uint64(prm.Seed)
	for i, comp := range e.comps {
		select {
		case <-ctx.Done():
			return Result{}, ctx.Err()
		default:
		}
		switch {
		case len(comp.S) == 0:
			if !hom.Exists(comp.A, b, hom.Options{}) {
				return zeroResult(res, prm, sampled), nil
			}
		case comp.A.NumTuples() == 0:
			prod.Mul(prod, new(big.Float).SetPrec(128).SetInt(structure.PowerSize(b, len(comp.S))))
		default:
			seed = splitmix(seed + uint64(i))
			rng := rand.New(rand.NewSource(int64(seed)))
			sp := hom.NewSampler(comp.A, b, comp.S, hom.Options{})
			ce, err := sampleComponent(ctx, sp, rng,
				prm.Epsilon/float64(sampled), prm.Delta/float64(sampled),
				prm.MinSamples, prm.MaxSamples)
			if err != nil {
				return Result{}, err
			}
			res.Samples += ce.samples
			res.Converged = res.Converged && ce.converged
			if sp.ExactZero() {
				return zeroResult(res, prm, sampled), nil
			}
			if ce.mean == 0 {
				// No successful draw: the point estimate is 0 but no
				// relative bound was established.
				z := zeroResult(res, prm, sampled)
				z.Exact = false
				z.Converged = false
				z.RelErr = 1
				z.Confidence = 1 - prm.Delta
				return z, nil
			}
			prod.Mul(prod, new(big.Float).SetPrec(128).SetFloat64(ce.mean))
			relSum += ce.absErr / ce.mean
		}
		if prod.Sign() == 0 {
			return zeroResult(res, prm, sampled), nil
		}
	}

	res.Estimate = roundToInt(prod)
	res.RelErr = relSum
	estF, _ := prod.Float64()
	res.AbsErr = relSum * estF
	if sampled > 0 {
		res.Confidence = 1 - prm.Delta
	}
	return res, nil
}

// zeroResult finalizes a Result whose estimate was proven to be zero (a
// false sentence component, an initial domain wipeout, or an empty
// structure): the zero is certain, whatever sampling budget was already
// spent on other components.
func zeroResult(res Result, _ Params, _ int) Result {
	res.Estimate = new(big.Int)
	res.RelErr = 0
	res.AbsErr = 0
	res.Confidence = 1
	res.Exact = true
	res.Converged = true
	return res
}

// roundToInt rounds a non-negative big.Float to the nearest integer.
func roundToInt(f *big.Float) *big.Int {
	half := new(big.Float).SetPrec(f.Prec()).SetFloat64(0.5)
	v, _ := new(big.Float).SetPrec(f.Prec()).Add(f, half).Int(nil)
	return v
}
