package experiments

import (
	"fmt"
	"math/big"

	"repro/internal/classify"
	"repro/internal/cliquered"
	"repro/internal/count"
	"repro/internal/eptrans"
	"repro/internal/logic"
	"repro/internal/pp"
	"repro/internal/structure"
	"repro/internal/workload"
)

// RunE6 measures the FPT engine's scaling in |B| for a fixed
// bounded-width query (Theorem 2.11's tractable side): time should grow
// polynomially with the structure, while brute force grows as |B|^|S|·…
// and is only run on the smallest instances.
func RunE6(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "E6",
		Title:   "Theorem 2.11: FPT engine scaling on the path query (case 1)",
		Columns: []string{"n", "edges", "count", "t_fpt", "t_proj", "t_brute"},
		OK:      true,
	}
	q := workload.PathQuery(4)
	p, err := singlePP(q)
	if err != nil {
		return nil, err
	}
	sizes := []int{20, 40, 80, 160}
	bruteMax := 20
	if cfg.Quick {
		sizes = []int{12, 24}
		bruteMax = 12
	}
	for _, n := range sizes {
		g := workload.ER(n, 4.0/float64(n), int64(n))
		b := workload.GraphStructure(g)
		var vFPT, vProj, vBrute *big.Int
		dFPT, err := timed(func() error {
			var e error
			vFPT, e = count.PP(p, b, count.EngineFPT)
			return e
		})
		if err != nil {
			return nil, err
		}
		dProj, err := timed(func() error {
			var e error
			vProj, e = count.PP(p, b, count.EngineProjection)
			return e
		})
		if err != nil {
			return nil, err
		}
		bruteCell := "-"
		ok := vFPT.Cmp(vProj) == 0
		if n <= bruteMax {
			dBrute, err := timed(func() error {
				var e error
				vBrute, e = count.PP(p, b, count.EngineBrute)
				return e
			})
			if err != nil {
				return nil, err
			}
			bruteCell = fmtDur(dBrute)
			ok = ok && vFPT.Cmp(vBrute) == 0
		}
		t.OK = t.OK && ok
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(n), fmt.Sprint(g.NumEdges()), fmtBig(vFPT),
			fmtDur(dFPT), fmtDur(dProj), bruteCell,
		})
	}
	t.Notes = append(t.Notes,
		"path query: core tw 1, contract tw 1 → tractability condition holds (case 1)")
	return t, nil
}

// RunE7 demonstrates the hardness direction (cases 2–3): answer counting
// for the free k-clique query computes #k-cliques, with cost growing
// sharply in k, matching the p-#Clique lower bound shape.
func RunE7(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "E7",
		Title:   "Theorem 2.12/3.2: #k-clique via the case-3 clique query",
		Columns: []string{"k", "#k-cliques", "t_via_query", "t_native", "decision(case2)", "match"},
		OK:      true,
	}
	n, p := 24, 0.5
	ks := []int{2, 3, 4, 5}
	if cfg.Quick {
		n, ks = 14, []int{2, 3}
	}
	g := workload.PlantedClique(n, p, 6, 123)
	for _, k := range ks {
		var viaQuery *big.Int
		dQuery, err := timed(func() error {
			var e error
			viaQuery, e = cliquered.CountCliquesViaQuery(g, k, count.EngineProjection)
			return e
		})
		if err != nil {
			return nil, err
		}
		var native *big.Int
		dNative, err := timed(func() error {
			native = g.CountCliques(k)
			return nil
		})
		if err != nil {
			return nil, err
		}
		has, err := cliquered.HasCliqueViaQuery(g, k, count.EngineProjection)
		if err != nil {
			return nil, err
		}
		ok := viaQuery.Cmp(native) == 0 && has == (native.Sign() > 0)
		t.OK = t.OK && ok
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(k), fmtBig(native), fmtDur(dQuery), fmtDur(dNative),
			fmt.Sprint(has), yes(ok),
		})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("G = planted-clique(n=%d, p=%.2f, k=6); answers = k!·#cliques (symmetric encoding)", n, p))
	return t, nil
}

// RunE8 exercises the equivalence theorem end to end on a random ep-query
// corpus: the forward reduction equals direct evaluation and every member
// of φ⁺ is recovered exactly through the ep oracle.
func RunE8(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "E8",
		Title:   "Theorem 3.1: interreducibility count[Φ] ≡ count[Φ⁺] on random queries",
		Columns: []string{"seed", "disjuncts", "|φ*|", "|φ⁺|", "forward", "backward", "oracle calls"},
		OK:      true,
	}
	sig := edgeSig()
	n := 6
	if cfg.Quick {
		n = 3
	}
	for seed := int64(0); seed < int64(n); seed++ {
		q := workload.RandomEPQuery(sig, 2, 3, 2, 2, seed)
		c, err := eptrans.Compile(q, sig)
		if err != nil {
			return nil, err
		}
		b := workload.RandomStructure(sig, 3, 0.4, seed+77)
		want, err := count.EPDirect(q, b)
		if err != nil {
			return nil, err
		}
		got, err := eptrans.CountEPViaPP(c, b, fptCounter)
		if err != nil {
			return nil, err
		}
		fwdOK := want.Cmp(got) == 0
		calls := 0
		oracle := func(y *structure.Structure) (*big.Int, error) {
			calls++
			return eptrans.CountEPViaPP(c, y, fptCounter)
		}
		bwdOK := true
		for _, psi := range c.Plus {
			direct, err := count.PP(psi, b, count.EngineFPT)
			if err != nil {
				return nil, err
			}
			rec, err := eptrans.CountPPViaEP(c, psi, b, oracle)
			if err != nil {
				return nil, err
			}
			if direct.Cmp(rec) != 0 {
				bwdOK = false
			}
		}
		t.OK = t.OK && fwdOK && bwdOK
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(seed), fmt.Sprint(len(c.Disjuncts)),
			fmt.Sprint(len(c.Star)), fmt.Sprint(len(c.Plus)),
			yes(fwdOK), yes(bwdOK), fmt.Sprint(calls),
		})
	}
	return t, nil
}

// RunE9 classifies the named query families and reports the growth of the
// two widths the trichotomy is stated in.
func RunE9(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "E9",
		Title:   "Theorem 3.2: width growth and trichotomy case per query family",
		Columns: []string{"family", "k", "core tw", "contract tw", "implied case"},
		OK:      true,
	}
	ks := []int{2, 3, 4, 5}
	if cfg.Quick {
		ks = []int{2, 3}
	}
	families := []struct {
		name string
		gen  func(k int) logic.Query
		want classify.Case
	}{
		{"path (case 1)", workload.PathQuery, classify.CaseFPT},
		{"free-path (case 1)", workload.FreePathQuery, classify.CaseFPT},
		{"clique-sentence (case 2)", workload.CliqueSentence, classify.CaseClique},
		{"free-clique (case 3)", workload.CliqueQuery, classify.CaseSharpClique},
		{"star-quantified-center (case 3)", workload.StarQuery, classify.CaseSharpClique},
	}
	for _, fam := range families {
		fv, err := classify.AnalyzeFamily(fam.gen, edgeSig(), ks)
		if err != nil {
			return nil, err
		}
		for _, pt := range fv.Points {
			t.Rows = append(t.Rows, []string{
				fam.name, fmt.Sprint(pt.K), fmt.Sprint(pt.CoreTW), fmt.Sprint(pt.ContractTW),
				fv.ImpliedCase.String(),
			})
		}
		if fv.ImpliedCase != fam.want {
			t.OK = false
			t.Notes = append(t.Notes,
				fmt.Sprintf("MISMATCH: %s implied %v, expected %v", fam.name, fv.ImpliedCase, fam.want))
		}
	}
	t.Notes = append(t.Notes,
		"cases follow Theorem 3.2: (core bounded, contract bounded) → FPT; core unbounded only → p-Clique; contract unbounded → p-#Clique-hard")
	return t, nil
}

func singlePP(q logic.Query) (pp.PP, error) {
	ds := q.Disjuncts()
	if len(ds) != 1 {
		return pp.PP{}, fmt.Errorf("experiments: query %s is not primitive positive", q.Name)
	}
	return pp.FromDisjunct(edgeSig(), q.Lib, ds[0])
}

// RunE10 measures scaling in the PARAMETER (query size) at fixed |B|:
// the defining contrast of fixed-parameter tractability.  The free-path
// family has k+1 liberal variables; brute force enumerates |B|^(k+1)
// assignments (exponential in the parameter), while the FPT engine's
// exponent is governed by the contract treewidth (1 for paths) and its
// cost tracks the answer count instead.
func RunE10(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "E10",
		Title:   "FPT vs XP: time as the query grows (free-path family, fixed B)",
		Columns: []string{"k (free vars)", "count", "t_fpt", "t_brute", "brute/fpt"},
		OK:      true,
	}
	n := 9
	ks := []int{1, 2, 3, 4}
	if cfg.Quick {
		n, ks = 7, []int{1, 2, 3}
	}
	g := workload.ER(n, 0.35, 17)
	b := workload.GraphStructure(g)
	for _, k := range ks {
		q := workload.FreePathQuery(k)
		p, err := singlePP(q)
		if err != nil {
			return nil, err
		}
		var vFPT, vBrute *big.Int
		dFPT, err := timed(func() error {
			var e error
			vFPT, e = count.PP(p, b, count.EngineFPT)
			return e
		})
		if err != nil {
			return nil, err
		}
		dBrute, err := timed(func() error {
			var e error
			vBrute, e = count.PP(p, b, count.EngineBrute)
			return e
		})
		if err != nil {
			return nil, err
		}
		ok := vFPT.Cmp(vBrute) == 0
		t.OK = t.OK && ok
		ratio := "-"
		if dFPT > 0 {
			ratio = fmt.Sprintf("%.1f×", float64(dBrute)/float64(dFPT))
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d (%d)", k, k+1), fmtBig(vFPT), fmtDur(dFPT), fmtDur(dBrute), ratio,
		})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("B = G(%d, 0.35); brute enumerates |B|^(k+1) liberal assignments — exponential in the parameter", n))
	return t, nil
}
