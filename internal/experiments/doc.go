// Package experiments implements the reproduction experiment suite
// E1–E10 and the ablations A1–A5 documented in DESIGN.md §4, plus the
// system-level S-series (S1: epserved service throughput under
// concurrent HTTP clients; S2: delta maintenance on append streams)
// and D-series (D1: durability cost by fsync policy, every row
// validated by close + recover-from-disk).  The paper is a theory
// paper with no
// measurement tables; each experiment operationalizes one worked
// example or theorem as a table of measured results, so that
// `cmd/epbench` (and the root benchmarks) can regenerate "the paper's
// numbers": who wins, by what factor, and where the asymptotic shape
// shows.  Every table self-validates (the OK column aggregates exact
// cross-checks) and renders as text, CSV, or the BENCH_*.json format
// that tracks the perf trajectory across PRs.
package experiments
