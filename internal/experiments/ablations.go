package experiments

import (
	"fmt"
	"math/big"

	"repro/internal/count"
	"repro/internal/eptrans"
	"repro/internal/ie"
	"repro/internal/logic"
	"repro/internal/parser"
	"repro/internal/pp"
	"repro/internal/tw"
	"repro/internal/workload"
)

// RunA6 compares all counting engines on one moderate workload.
func RunA6(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "A6",
		Title:   "Ablation: counting engines on the path query over G(n, 4/n)",
		Columns: []string{"engine", "n", "count", "time"},
		OK:      true,
	}
	n := 60
	bruteMax := 16
	if cfg.Quick {
		n, bruteMax = 20, 10
	}
	q := workload.PathQuery(3)
	p, err := singlePP(q)
	if err != nil {
		return nil, err
	}
	engines := []count.PPEngine{count.EngineFPT, count.EngineFPTNoCore, count.EngineProjection, count.EngineBrute}
	var reference *big.Int
	for _, e := range engines {
		size := n
		if e == count.EngineBrute {
			size = bruteMax
		}
		g := workload.ER(size, 4.0/float64(size), 99)
		b := workload.GraphStructure(g)
		var v *big.Int
		d, err := timed(func() error {
			var err2 error
			v, err2 = count.PP(p, b, e)
			return err2
		})
		if err != nil {
			return nil, err
		}
		if e != count.EngineBrute {
			if reference == nil {
				reference = v
			} else if reference.Cmp(v) != 0 {
				t.OK = false
			}
		}
		t.Rows = append(t.Rows, []string{e.String(), fmt.Sprint(size), fmtBig(v), fmtDur(d)})
	}
	return t, nil
}

// RunA2 measures the cancellation rate of counting-equivalence merging:
// raw 2^s−1 terms vs surviving φ* terms.  Cancellation comes from
// symmetry among disjuncts (Example 4.2's rotated paths are the paradigm),
// so the workload mixes symmetric unions (rotated copies of one pattern
// over a shared liberal set) with fully random unions as a control.
func RunA2(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "A2",
		Title:   "Ablation: φ* cancellation rate on symmetric vs random unions",
		Columns: []string{"union", "s", "raw terms", "φ* terms", "saved"},
		OK:      true,
	}
	sig := edgeSig()
	add := func(name string, free []pp.PP) error {
		raw, err := ie.RawTerms(free)
		if err != nil {
			return err
		}
		merged, err := ie.Merge(raw)
		if err != nil {
			return err
		}
		if len(merged) > len(raw) {
			t.OK = false
		}
		saved := fmt.Sprintf("%.0f%%", 100*(1-float64(len(merged))/float64(len(raw))))
		t.Rows = append(t.Rows, []string{
			name, fmt.Sprint(len(free)),
			fmt.Sprint(len(raw)), fmt.Sprint(len(merged)), saved,
		})
		return nil
	}
	// Symmetric unions: all rotations of a 2-path over {v0..v_{k-1}},
	// generalizing Example 4.2 (which is k = 4).
	rotated := func(k int) ([]pp.PP, error) {
		lib := make([]logic.Var, k)
		for i := range lib {
			lib[i] = logic.Var(fmt.Sprintf("v%d", i))
		}
		var out []pp.PP
		for r := 0; r < k-1; r++ {
			d := logic.Disjunct{Atoms: []logic.Atom{
				{Rel: "E", Args: []logic.Var{lib[r], lib[(r+1)%k]}},
				{Rel: "E", Args: []logic.Var{lib[(r+1)%k], lib[(r+2)%k]}},
			}}
			p, err := pp.FromDisjunct(sig, lib, d)
			if err != nil {
				return nil, err
			}
			out = append(out, p)
		}
		return out, nil
	}
	ks := []int{4, 5}
	if cfg.Quick {
		ks = []int{4}
	}
	for _, k := range ks {
		free, err := rotated(k)
		if err != nil {
			return nil, err
		}
		if err := add(fmt.Sprintf("rotated-2paths(k=%d)", k), free); err != nil {
			return nil, err
		}
	}
	// Random unions as control: little to no cancellation expected.
	n := 4
	if cfg.Quick {
		n = 2
	}
	for seed := int64(0); seed < int64(n); seed++ {
		q := workload.RandomEPQuery(sig, 3, 3, 2, 2, seed)
		var disjuncts []pp.PP
		for _, d := range q.Disjuncts() {
			p, err := pp.FromDisjunct(sig, q.Lib, d)
			if err != nil {
				return nil, err
			}
			disjuncts = append(disjuncts, p)
		}
		free := onlyFree(disjuncts)
		if len(free) == 0 {
			continue
		}
		if err := add(fmt.Sprintf("random#%d", seed), free); err != nil {
			return nil, err
		}
	}
	t.Notes = append(t.Notes,
		"rotated-2paths(k=4) is exactly Example 4.2: 7 raw terms → 2 (71% saved)")
	return t, nil
}

func onlyFree(ds []pp.PP) []pp.PP {
	var out []pp.PP
	for _, d := range ds {
		if d.IsFree() {
			out = append(out, d)
		}
	}
	return out
}

// RunA3 measures how much UCQ minimization (= normalization) shrinks
// redundant unions before the exponential φ* expansion.
func RunA3(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "A3",
		Title:   "Ablation: normalization (minimization) before φ* expansion",
		Columns: []string{"query", "disjuncts raw", "after min", "φ* w/o min", "φ* with min", "equal counts"},
		OK:      true,
	}
	sig := edgeSig()
	// Engineered redundant unions: ψ ∨ (ψ ∧ extra) ∨ renamed-ψ.
	queries := []string{
		"q(x,y) := E(x,y) | E(x,y) & E(y,x) | E(x,y) & E(x,y)",
		"q(x,y) := E(x,y) | E(x,y) & E(y,y) | E(x,y) & E(x,x)",
		"q(s,t) := (exists u. E(s,u) & E(u,t)) | (exists u, v. E(s,u) & E(u,v) & E(v,t) & E(s,t)) | E(s,t)",
	}
	for _, src := range queries {
		q := parser.MustQuery(src)
		var raw []pp.PP
		for _, d := range q.Disjuncts() {
			p, err := pp.FromDisjunct(sig, q.Lib, d)
			if err != nil {
				return nil, err
			}
			raw = append(raw, p)
		}
		minimized, err := eptrans.Minimize(raw)
		if err != nil {
			return nil, err
		}
		starRaw, err := ie.PhiStar(onlyFree(raw))
		if err != nil {
			return nil, err
		}
		starMin, err := ie.PhiStar(onlyFree(minimized))
		if err != nil {
			return nil, err
		}
		// Counting must be preserved.
		b := workload.RandomStructure(sig, 4, 0.4, 5)
		vRaw, err := ie.Count(starRaw, b, projCounter)
		if err != nil {
			return nil, err
		}
		vMin, err := ie.Count(starMin, b, projCounter)
		if err != nil {
			return nil, err
		}
		equal := vRaw.Cmp(vMin) == 0
		t.OK = t.OK && equal && len(minimized) <= len(raw)
		t.Rows = append(t.Rows, []string{
			shorten(src, 34), fmt.Sprint(len(raw)), fmt.Sprint(len(minimized)),
			fmt.Sprint(len(starRaw)), fmt.Sprint(len(starMin)), yes(equal),
		})
	}
	t.Notes = append(t.Notes,
		"minimization is valid because the dropped disjuncts entail survivors (answer sets are unions)")
	return t, nil
}

func shorten(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-1] + "…"
}

// RunA4 compares the FPT engine with and without the core step on queries
// with redundant quantified parts, where coring shrinks the instance.
func RunA4(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "A4",
		Title:   "Ablation: FPT engine with vs without core computation",
		Columns: []string{"query", "n", "|core|/|A|", "t_core", "t_nocore", "equal"},
		OK:      true,
	}
	n := 40
	if cfg.Quick {
		n = 16
	}
	// Queries with redundant quantified branches that the core collapses.
	queries := []string{
		"q(x) := exists u, v, w. E(x,u) & E(x,v) & E(x,w)",
		"q(s,t) := exists u, a, b. E(s,u) & E(u,t) & E(s,a) & E(a,b)",
		"q(x) := exists u, v. E(x,u) & E(u,v) & E(x,v) & E(x,x)",
	}
	g := workload.ER(n, 6.0/float64(n), 7)
	b := workload.GraphStructure(g)
	for _, src := range queries {
		q := parser.MustQuery(src)
		p, err := singlePP(q)
		if err != nil {
			return nil, err
		}
		cored, err := p.Core()
		if err != nil {
			return nil, err
		}
		var vCore, vNo *big.Int
		dCore, err := timed(func() error {
			var e error
			vCore, e = count.PP(p, b, count.EngineFPT)
			return e
		})
		if err != nil {
			return nil, err
		}
		dNo, err := timed(func() error {
			var e error
			vNo, e = count.PP(p, b, count.EngineFPTNoCore)
			return e
		})
		if err != nil {
			return nil, err
		}
		equal := vCore.Cmp(vNo) == 0
		t.OK = t.OK && equal
		t.Rows = append(t.Rows, []string{
			shorten(src, 40), fmt.Sprint(n),
			fmt.Sprintf("%d/%d", cored.A.Size(), p.A.Size()),
			fmtDur(dCore), fmtDur(dNo), yes(equal),
		})
	}
	return t, nil
}

// RunA5 compares exact branch-and-bound treewidth with the min-fill
// heuristic on random graphs (the classifier uses exact widths for query
// graphs and falls back to the heuristic beyond the size cap).
func RunA5(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "A5",
		Title:   "Ablation: exact vs min-fill heuristic treewidth",
		Columns: []string{"seed", "n", "edges", "exact w", "t_exact", "heur w", "t_heur", "gap"},
		OK:      true,
	}
	n := 14
	rounds := 6
	if cfg.Quick {
		n, rounds = 10, 3
	}
	for seed := int64(0); seed < int64(rounds); seed++ {
		g := workload.ER(n, 0.3, seed)
		var wExact int
		dExact, err := timed(func() error {
			wExact, _, _ = tw.Treewidth(g)
			return nil
		})
		if err != nil {
			return nil, err
		}
		var wHeur int
		dHeur, err := timed(func() error {
			wHeur = tw.HeuristicDecomposition(g).Width()
			return nil
		})
		if err != nil {
			return nil, err
		}
		if wHeur < wExact {
			t.OK = false // heuristic must be an upper bound
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(seed), fmt.Sprint(n), fmt.Sprint(g.NumEdges()),
			fmt.Sprint(wExact), fmtDur(dExact),
			fmt.Sprint(wHeur), fmtDur(dHeur),
			fmt.Sprint(wHeur - wExact),
		})
	}
	return t, nil
}
