package experiments

import (
	"context"
	"fmt"
	"math/big"
	"runtime"

	"repro/internal/core"
	"repro/internal/count"
	"repro/internal/structure"
	"repro/internal/workload"
)

// RunP1 sweeps the batch-counting pipeline across core counts: for each
// requested core budget it pins GOMAXPROCS and the counter's worker pool
// to that budget, counts the same batch of structures, and reports
// wall-clock time plus the speedup against the single-core row.  Results
// must be bit-identical at every point — the sweep validates that the
// parallel fan-out, session registry, and arena lifecycle are oblivious
// to the core count, not just that they scale.
func RunP1(cfg Config) (*Table, error) {
	cores := cfg.Cores
	if len(cores) == 0 {
		cores = []int{1, 2, 4, 8}
	}
	t := &Table{
		ID:      "P1",
		Title:   "Core sweep: memo-cold batch counting vs worker/GOMAXPROCS budget",
		Columns: []string{"cores", "batch", "t_batch", "speedup", "match"},
		OK:      true,
	}
	q := workload.PathQuery(4)
	batch, n := 32, 60
	if cfg.Quick {
		batch, n = 8, 24
	}
	c, err := core.NewCounter(q, nil, count.EngineFPT)
	if err != nil {
		return nil, err
	}
	bs := make([]*structure.Structure, batch)
	for i := range bs {
		g := workload.ER(n, 4.0/float64(n), int64(100+i))
		bs[i] = workload.GraphStructure(g)
	}
	out := make([]*big.Int, batch)
	for i := range out {
		out[i] = new(big.Int)
	}
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	ctx := context.Background()
	var ref []*big.Int
	var base float64
	for _, cc := range cores {
		if cc < 1 {
			return nil, fmt.Errorf("experiments: core budget %d < 1", cc)
		}
		runtime.GOMAXPROCS(cc)
		c.WithWorkers(cc)
		// Memo-cold on every row: each sweep point rebuilds its sessions so
		// the rows time the same work.
		for _, b := range bs {
			c.Release(b)
		}
		d, err := timed(func() error {
			return c.CountBatchInto(ctx, bs, out)
		})
		if err != nil {
			return nil, err
		}
		match := true
		if ref == nil {
			ref = make([]*big.Int, batch)
			for i, v := range out {
				ref[i] = new(big.Int).Set(v)
			}
			base = d.Seconds()
		} else {
			for i, v := range out {
				if v.Cmp(ref[i]) != 0 {
					match = false
				}
			}
		}
		t.OK = t.OK && match
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(cc), fmt.Sprint(batch), fmtDur(d),
			fmt.Sprintf("%.2fx", base/d.Seconds()), fmt.Sprint(match),
		})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("host GOMAXPROCS before sweep: %d (speedups flatten once the budget passes the physical cores)", prev))
	return t, nil
}
