package experiments

import (
	"encoding/json"
	"fmt"
	"math/big"
	"strings"
	"time"
)

// Table is one experiment's result: a named grid of rows.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
	// OK aggregates per-row validation (exact-match checks).
	OK bool
}

// JSON renders the table as machine-readable JSON (the `BENCH_*.json`
// format used to track the perf trajectory across PRs): the grid plus an
// elapsed wall-clock measurement supplied by the caller.
func (t *Table) JSON(elapsed time.Duration) ([]byte, error) {
	type payload struct {
		ID        string     `json:"id"`
		Title     string     `json:"title"`
		Columns   []string   `json:"columns"`
		Rows      [][]string `json:"rows"`
		Notes     []string   `json:"notes,omitempty"`
		OK        bool       `json:"ok"`
		ElapsedNs int64      `json:"elapsed_ns"`
	}
	return json.MarshalIndent(payload{
		ID: t.ID, Title: t.Title, Columns: t.Columns, Rows: t.Rows,
		Notes: t.Notes, OK: t.OK, ElapsedNs: elapsed.Nanoseconds(),
	}, "", "  ")
}

// CSV renders the table as comma-separated values (quotes around cells
// containing commas), for plotting the series externally.
func (t *Table) CSV() string {
	var b strings.Builder
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
		}
		return s
	}
	cells := make([]string, len(t.Columns))
	for i, c := range t.Columns {
		cells[i] = esc(c)
	}
	b.WriteString(strings.Join(cells, ","))
	b.WriteByte('\n')
	for _, r := range t.Rows {
		cells = cells[:0]
		for _, c := range r {
			cells = append(cells, esc(c))
		}
		b.WriteString(strings.Join(cells, ","))
		b.WriteByte('\n')
	}
	return b.String()
}

// Render prints the table in aligned plain text.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.Rows {
		line(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	fmt.Fprintf(&b, "validation: %s\n", map[bool]string{true: "PASS", false: "FAIL"}[t.OK])
	return b.String()
}

// Config scales the experiment suite.
type Config struct {
	// Quick shrinks instance sizes for smoke runs.
	Quick bool
	// Cores is the worker/GOMAXPROCS budgets the P1 sweep visits
	// (epbench -cores); empty means the default {1, 2, 4, 8}.
	Cores []int
}

// Spec describes one experiment.
type Spec struct {
	ID    string
	Title string
	Run   func(Config) (*Table, error)
}

// All returns the full experiment suite in order.
func All() []Spec {
	return []Spec{
		{"E1", "Example 4.1 — inclusion–exclusion counting with liberal variables", RunE1},
		{"E2", "Example 4.2/5.15 — counting-equivalence cancellation in φ*", RunE2},
		{"E3", "Example 4.3 — Vandermonde recovery of pp counts from an ep oracle", RunE3},
		{"E4", "Theorem 5.4 — counting equivalence ⇔ renaming equivalence", RunE4},
		{"E5", "Theorem 5.9 — semi-counting equivalence via φ̂", RunE5},
		{"E6", "Theorem 2.11 — FPT counting scales polynomially in |B|", RunE6},
		{"E7", "Theorem 2.12/3.2 — clique counting via case-3 queries", RunE7},
		{"E8", "Theorem 3.1 — end-to-end interreducibility count[Φ] ≡ count[Φ⁺]", RunE8},
		{"E9", "Theorem 3.2 — trichotomy classification of query families", RunE9},
		{"E10", "FPT vs XP — time as the parameter (query size) grows", RunE10},
		{"P1", "Core sweep — batch counting across worker/GOMAXPROCS budgets", RunP1},
		{"S1", "Service throughput — epserved HTTP counting under concurrent clients", RunS1},
		{"S2", "Delta maintenance — append-stream subscription reads vs full recounts", RunS2},
		{"D1", "Durability cost — append throughput by fsync policy, recovery-validated", RunD1},
		{"C1", "Cluster routing — sharded epserved behind a consistent-hash coordinator", RunC1},
		{"A1", "Approximation — exact vs sampled counting in the hard regime", RunA1},
		{"A2", "Ablation — φ* with vs without cancellation", RunA2},
		{"A3", "Ablation — normalization (UCQ minimization) on vs off", RunA3},
		{"A4", "Ablation — FPT engine with vs without core computation", RunA4},
		{"A5", "Ablation — exact vs heuristic treewidth in the classifier", RunA5},
		{"A6", "Ablation — counting engines on one workload", RunA6},
	}
}

// Get returns the spec with the given ID.
func Get(id string) (Spec, error) {
	for _, s := range All() {
		if strings.EqualFold(s.ID, id) {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("experiments: unknown experiment %q", id)
}

// timed runs f and returns its duration.
func timed(f func() error) (time.Duration, error) {
	start := time.Now()
	err := f()
	return time.Since(start), nil2err(err)
}

func nil2err(err error) error { return err }

func fmtDur(d time.Duration) string {
	switch {
	case d < time.Microsecond:
		return fmt.Sprintf("%dns", d.Nanoseconds())
	case d < time.Millisecond:
		return fmt.Sprintf("%.1fµs", float64(d.Nanoseconds())/1e3)
	case d < time.Second:
		return fmt.Sprintf("%.2fms", float64(d.Nanoseconds())/1e6)
	default:
		return fmt.Sprintf("%.2fs", d.Seconds())
	}
}

func fmtBig(x *big.Int) string {
	s := x.String()
	if len(s) > 24 {
		return s[:10] + "…(" + fmt.Sprint(len(s)) + " digits)"
	}
	return s
}

func yes(b bool) string {
	if b {
		return "yes"
	}
	return "NO"
}
