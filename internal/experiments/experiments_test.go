package experiments

import (
	"strings"
	"testing"
)

// TestAllExperimentsPassQuick runs the whole suite in quick mode: every
// experiment must complete and self-validate.  This is the repository's
// top-level "does the reproduction reproduce" check.
func TestAllExperimentsPassQuick(t *testing.T) {
	cfg := Config{Quick: true}
	for _, spec := range All() {
		spec := spec
		t.Run(spec.ID, func(t *testing.T) {
			tbl, err := spec.Run(cfg)
			if err != nil {
				t.Fatalf("%s failed: %v", spec.ID, err)
			}
			if !tbl.OK {
				t.Fatalf("%s validation failed:\n%s", spec.ID, tbl.Render())
			}
			if len(tbl.Rows) == 0 {
				t.Fatalf("%s produced no rows", spec.ID)
			}
		})
	}
}

func TestGetSpec(t *testing.T) {
	if _, err := Get("E3"); err != nil {
		t.Fatal(err)
	}
	if _, err := Get("e3"); err != nil {
		t.Fatal("Get should be case-insensitive")
	}
	if _, err := Get("E99"); err == nil {
		t.Fatal("unknown id should error")
	}
}

func TestTableRender(t *testing.T) {
	tbl := &Table{
		ID:      "T",
		Title:   "demo",
		Columns: []string{"a", "long-column"},
		Rows:    [][]string{{"1", "2"}, {"333", "4"}},
		Notes:   []string{"a note"},
		OK:      true,
	}
	s := tbl.Render()
	for _, want := range []string{"== T: demo ==", "long-column", "333", "note: a note", "PASS"} {
		if !strings.Contains(s, want) {
			t.Fatalf("render missing %q:\n%s", want, s)
		}
	}
}
