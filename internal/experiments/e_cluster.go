package experiments

import (
	"context"
	"fmt"
	"math/big"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/count"
	"repro/internal/parser"
	"repro/internal/serve"
	"repro/internal/structure"
	"repro/internal/workload"
)

// RunC1 measures the cluster coordinator over real loopback HTTP:
// warm /count throughput as the shard count grows (1 → 2 → 4),
// replicated warm reads with query-hash replica pinning, scatter-gather
// /countBatch against a single node running the same batch, and
// partitioned-structure counting with exact inclusion–exclusion
// recombination.  Every response the benchmark observes — every count
// in every phase — is differential-checked in-process against the
// library counting the same query on the same data, so a routing,
// replication, or recombination bug fails the table rather than
// skewing a number.
func RunC1(cfg Config) (*Table, error) {
	clients, warmReqs, batchReps := 8, 480, 60
	nStructs, nElems := 8, 36
	if cfg.Quick {
		clients, warmReqs, batchReps = 4, 120, 15
		nStructs, nElems = 6, 24
	}

	ctx := context.Background()
	local := make(map[string]*structure.Structure, nStructs)
	names := make([]string, nStructs)
	for i := range names {
		names[i] = fmt.Sprintf("g%d", i)
		local[names[i]] = workload.RandomStructure(workload.EdgeSig(), nElems, 0.15, int64(300+i))
	}

	expected := func(q string, b *structure.Structure) (*big.Int, error) {
		query, err := parser.ParseQuery(q)
		if err != nil {
			return nil, err
		}
		c, err := core.NewCounter(query, b.Signature(), count.EngineFPT)
		if err != nil {
			return nil, err
		}
		return c.Count(b)
	}

	tri := "tri(x,y,z) := E(x,y) & E(y,z) & E(z,x)"
	warmQueries := []string{
		tri,
		workload.FreePathQuery(2).String(),
		workload.PathQuery(3).String(),
		workload.StarQuery(3).String(),
	}
	want := make(map[string]map[string]string) // query → structure → decimal count
	for _, q := range warmQueries {
		want[q] = make(map[string]string, nStructs)
		for _, n := range names {
			v, err := expected(q, local[n])
			if err != nil {
				return nil, err
			}
			want[q][n] = v.String()
		}
	}

	t := &Table{
		ID:      "C1",
		Title:   "Cluster routing — sharded epserved behind a consistent-hash coordinator",
		Columns: []string{"phase", "shards", "clients", "requests", "elapsed", "req/s", "check"},
		OK:      true,
	}
	addRow := func(phase string, shards, nClients, requests int, elapsed time.Duration, ok bool) {
		t.Rows = append(t.Rows, []string{
			phase, fmt.Sprint(shards), fmt.Sprint(nClients), fmt.Sprint(requests),
			fmtDur(elapsed), fmt.Sprintf("%.0f", float64(requests)/elapsed.Seconds()), yes(ok),
		})
		t.OK = t.OK && ok
	}

	// startCluster brings up nShards real shard servers plus a
	// coordinator, loads the dataset through the coordinator, and
	// returns a client aimed at the coordinator.
	startCluster := func(nShards, replicas int) (*serve.Client, func(), error) {
		shards := make([]*serve.Server, nShards)
		urls := make([]string, nShards)
		for i := range shards {
			shards[i] = serve.New(serve.Config{MaxInFlight: 4 * clients})
			if err := shards[i].Start(); err != nil {
				return nil, nil, err
			}
			urls[i] = "http://" + shards[i].Addr()
		}
		co, err := cluster.New(cluster.Config{Shards: urls, Replicas: replicas})
		if err != nil {
			return nil, nil, err
		}
		if err := co.Start(); err != nil {
			return nil, nil, err
		}
		shutdown := func() {
			sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			_ = co.Shutdown(sctx)
			for _, s := range shards {
				_ = s.Shutdown(sctx)
			}
		}
		cl := serve.NewClient("http://"+co.Addr(), nil)
		for _, n := range names {
			facts, err := local[n].FactsString()
			if err != nil {
				shutdown()
				return nil, nil, err
			}
			if _, err := cl.CreateStructure(ctx, n, facts, nil); err != nil {
				shutdown()
				return nil, nil, err
			}
		}
		return cl, shutdown, nil
	}

	// warmPhase hammers warm /count from `clients` goroutines, every
	// response differential-checked, and returns the row.
	warmPhase := func(cl *serve.Client, queries []string) (int, time.Duration, bool, error) {
		// Warm every (query, structure) pair once so the measured loop
		// is the steady state: one routed memo hit per request.
		for _, q := range queries {
			for _, n := range names {
				v, _, err := cl.Count(ctx, q, n)
				if err != nil {
					return 0, 0, false, err
				}
				if v.String() != want[q][n] {
					return 0, 0, false, fmt.Errorf("warmup %q on %s: got %v want %s", q, n, v, want[q][n])
				}
			}
		}
		perClient := warmReqs / clients
		var bad atomic.Int64
		var wg sync.WaitGroup
		start := time.Now()
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(int64(9000 + c)))
				for i := 0; i < perClient; i++ {
					q := queries[rng.Intn(len(queries))]
					n := names[rng.Intn(len(names))]
					v, _, err := cl.Count(ctx, q, n)
					if err != nil || v.String() != want[q][n] {
						bad.Add(1)
						return
					}
				}
			}(c)
		}
		wg.Wait()
		return perClient * clients, time.Since(start), bad.Load() == 0, nil
	}

	// Phases 1–3: warm /count throughput vs shard count, R=1.
	for _, nShards := range []int{1, 2, 4} {
		cl, shutdown, err := startCluster(nShards, 1)
		if err != nil {
			return nil, err
		}
		reqs, elapsed, ok, err := warmPhase(cl, []string{tri})
		shutdown()
		if err != nil {
			return nil, err
		}
		addRow("warm /count via coordinator", nShards, clients, reqs, elapsed, ok)
	}

	// Phase 4: replicated warm reads — R=2 on 2 shards, four query
	// texts so the query-hash rotation actually spreads the replica set
	// while each (query, structure) pair stays pinned to one warm memo.
	cl, shutdown, err := startCluster(2, 2)
	if err != nil {
		return nil, err
	}
	reqs, elapsed, ok, err := warmPhase(cl, warmQueries)
	if err != nil {
		shutdown()
		return nil, err
	}
	addRow("warm /count, replicated R=2", 2, clients, reqs, elapsed, ok)

	// Phase 5a: scatter-gather /countBatch on the 2-shard cluster.
	batchOnce := func(c *serve.Client) (bool, error) {
		vs, _, err := c.CountBatch(ctx, tri, names)
		if err != nil {
			return false, err
		}
		for i, n := range names {
			if vs[i].String() != want[tri][n] {
				return false, nil
			}
		}
		return true, nil
	}
	ok = true
	start := time.Now()
	for i := 0; i < batchReps; i++ {
		good, err := batchOnce(cl)
		if err != nil {
			shutdown()
			return nil, err
		}
		ok = ok && good
	}
	addRow(fmt.Sprintf("scatter-gather /countBatch (%d structures)", nStructs), 2, 1, batchReps, time.Since(start), ok)
	shutdown()

	// Phase 5b: the same batch on one plain node — the latency baseline
	// the scatter-gather row is read against.
	single := serve.New(serve.Config{MaxInFlight: 4 * clients})
	if err := single.Start(); err != nil {
		return nil, err
	}
	scl := serve.NewClient("http://"+single.Addr(), nil)
	for _, n := range names {
		facts, err := local[n].FactsString()
		if err != nil {
			return nil, err
		}
		if _, err := scl.CreateStructure(ctx, n, facts, nil); err != nil {
			return nil, err
		}
	}
	if _, err := batchOnce(scl); err != nil {
		return nil, err
	}
	ok = true
	start = time.Now()
	for i := 0; i < batchReps; i++ {
		good, err := batchOnce(scl)
		if err != nil {
			return nil, err
		}
		ok = ok && good
	}
	addRow(fmt.Sprintf("single-node /countBatch (%d structures)", nStructs), 1, 1, batchReps, time.Since(start), ok)
	{
		sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		_ = single.Shutdown(sctx)
		cancel()
	}

	// Phase 6: partitioned structure — a multi-component graph split
	// into 4 shard-resident parts; every battery query's recombined
	// count must be bit-identical to the library counting the whole
	// structure.
	big1 := clusterBenchStructure(61, 5, 5, 0.4, 3)
	bigFacts, err := big1.FactsString()
	if err != nil {
		return nil, err
	}
	cl, shutdown, err = startCluster(2, 1)
	if err != nil {
		return nil, err
	}
	defer shutdown()
	if _, err := cl.CreateStructureWith(ctx, serve.CreateStructureRequest{
		Name: "partitioned", Facts: bigFacts, Partitions: 4,
	}); err != nil {
		return nil, err
	}
	partQueries := []string{
		tri,
		workload.FreePathQuery(2).String(),
		workload.PathQuery(2).String(),
		workload.CliqueSentence(3).String(),
		"mix(x,y) := E(x,y) | E(x,x)",
		"boolcomp(x) := exists u, v . E(x,u) & E(v,v)",
	}
	ok = true
	start = time.Now()
	for _, q := range partQueries {
		wantV, err := expected(q, big1)
		if err != nil {
			return nil, err
		}
		got, _, err := cl.Count(ctx, q, "partitioned")
		if err != nil {
			return nil, err
		}
		if got.Cmp(wantV) != 0 {
			ok = false
		}
	}
	addRow("partitioned /count, IE-recombined (4 parts)", 2, 1, len(partQueries), time.Since(start), ok)

	st, err := cl.Stats(ctx)
	if err != nil {
		return nil, err
	}
	t.Notes = append(t.Notes,
		"all shards and the coordinator are separate in-process servers on real loopback HTTP listeners; every benched response is differential-checked against the library counting the same data in-process",
		fmt.Sprintf("router: consistent-hash ring (%d vnodes/shard), replica reads pinned by query hash; cluster stats after the partitioned phase: %d scatter-gathers, %d failovers",
			st.Cluster.VirtualNodes, st.Cluster.ScatterGathers, st.Cluster.Failovers),
		"warm /count is memo-bound, so the shard sweep measures routing overhead and available parallelism, not executor speed; on a single-core host the 1/2/4-shard curves are flat (all shards share the one core) — on a multi-core host the shard processes would scale the memo-bound ceiling instead",
		"the partitioned row scatters each term-component query over all parts and recombines by the paper's inclusion–exclusion: connected components sum across disjoint parts, fully-quantified components recombine as satisfiability bits, isolated liberal variables contribute |B|^k with the logical domain size",
	)
	return t, nil
}

// clusterBenchStructure builds a graph of several random clusters plus
// isolated elements — multiple Gaifman components, so a partitioned
// create genuinely spreads data across parts.
func clusterBenchStructure(seed int64, clusters, size int, p float64, isolated int) *structure.Structure {
	rng := rand.New(rand.NewSource(seed))
	s := structure.New(workload.EdgeSig())
	for c := 0; c < clusters; c++ {
		ids := make([]int, size)
		for i := range ids {
			ids[i] = s.EnsureElem(fmt.Sprintf("c%dn%d", c, i))
		}
		for i := 0; i < size; i++ {
			for j := 0; j < size; j++ {
				if rng.Float64() < p {
					_ = s.AddTuple("E", ids[i], ids[j])
				}
			}
		}
	}
	for k := 0; k < isolated; k++ {
		s.EnsureElem(fmt.Sprintf("iso%d", k))
	}
	return s
}
