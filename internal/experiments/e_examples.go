package experiments

import (
	"fmt"
	"math/big"

	"repro/internal/count"
	"repro/internal/eptrans"
	"repro/internal/ie"
	"repro/internal/logic"
	"repro/internal/parser"
	"repro/internal/pp"
	"repro/internal/structure"
	"repro/internal/term"
	"repro/internal/tw"
	"repro/internal/workload"
)

func edgeSig() *structure.Signature { return workload.EdgeSig() }

// example41Query is φ(w,x,y,z) = E(x,y) ∧ (E(w,x) ∨ (E(y,z) ∧ E(z,z))).
func example41Query() logic.Query {
	return parser.MustQuery("phi(w,x,y,z) := E(x,y) & (E(w,x) | E(y,z) & E(z,z))")
}

// example42Disjuncts returns φ1, φ2, φ3 of Example 4.2.
func example42Disjuncts() ([]pp.PP, error) {
	lib := []logic.Var{"w", "x", "y", "z"}
	out := make([]pp.PP, 0, 3)
	for _, src := range []string{
		"p(w,x,y,z) := E(x,y) & E(y,z)",
		"p(w,x,y,z) := E(z,w) & E(w,x)",
		"p(w,x,y,z) := E(w,x) & E(x,y)",
	} {
		q, err := parser.ParseQuery(src)
		if err != nil {
			return nil, err
		}
		p, err := pp.FromDisjunct(edgeSig(), lib, q.Disjuncts()[0])
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

// example43C is the 4-element distinguishing structure of Example 4.3.
func example43C() *structure.Structure {
	return parser.MustStructure("E(1,2). E(2,3). E(3,4). E(4,4).", edgeSig())
}

// RunE1 verifies Example 4.1 end to end: the inclusion–exclusion pipeline
// (with liberal-variable semantics for the missing z and w) equals direct
// evaluation and union enumeration on a corpus of structures.
func RunE1(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "E1",
		Title:   "Example 4.1: |φ(B)| via IE pipeline vs direct evaluation",
		Columns: []string{"structure", "|B|", "direct", "pipeline", "union", "agree"},
		OK:      true,
	}
	q := example41Query()
	c, err := eptrans.Compile(q, edgeSig())
	if err != nil {
		return nil, err
	}
	var pps []pp.PP
	for _, d := range q.Disjuncts() {
		p, err := pp.FromDisjunct(edgeSig(), q.Lib, d)
		if err != nil {
			return nil, err
		}
		pps = append(pps, p)
	}
	n := 6
	if cfg.Quick {
		n = 3
	}
	structs := []*structure.Structure{example43C()}
	names := []string{"C (Ex. 4.3)"}
	for seed := int64(0); seed < int64(n); seed++ {
		structs = append(structs, workload.RandomStructure(edgeSig(), 4, 0.4, seed))
		names = append(names, fmt.Sprintf("random#%d", seed))
	}
	for i, b := range structs {
		direct, err := count.EPDirect(q, b)
		if err != nil {
			return nil, err
		}
		pipeline, err := eptrans.CountEPViaPP(c, b, fptCounter)
		if err != nil {
			return nil, err
		}
		union, err := count.EPUnion(pps, b)
		if err != nil {
			return nil, err
		}
		ok := direct.Cmp(pipeline) == 0 && direct.Cmp(union) == 0
		t.OK = t.OK && ok
		t.Rows = append(t.Rows, []string{
			names[i], fmt.Sprint(b.Size()),
			fmtBig(direct), fmtBig(pipeline), fmtBig(union), yes(ok),
		})
	}
	t.Notes = append(t.Notes,
		"paper: |φ(B)| = |φ1(B)|+|φ2(B)|−|(φ1∧φ2)(B)| with counts over lib={w,x,y,z}")
	return t, nil
}

func fptCounter(p pp.PP, b *structure.Structure) (*big.Int, error) {
	return count.PP(p, b, count.EngineFPT)
}

func projCounter(p pp.PP, b *structure.Structure) (*big.Int, error) {
	return count.PP(p, b, count.EngineProjection)
}

// RunE2 reproduces the cancellation of Example 4.2 / 5.15: 7 raw IE terms
// collapse to 2, the maximum treewidth among terms drops from 2 to 1, and
// evaluating the cancelled expansion is faster while producing identical
// counts.
func RunE2(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "E2",
		Title:   "Example 4.2/5.15: φ* cancellation (terms 7→2, max treewidth 2→1)",
		Columns: []string{"|B|", "raw terms", "φ* terms", "raw max tw", "φ* max tw", "t_raw", "t_φ*", "equal"},
		OK:      true,
	}
	ds, err := example42Disjuncts()
	if err != nil {
		return nil, err
	}
	raw, err := ie.RawTerms(ds)
	if err != nil {
		return nil, err
	}
	pool := term.NewPool()
	merged, err := ie.MergeInto(pool, raw)
	if err != nil {
		return nil, err
	}
	ps := pool.Stats()
	maxTW := func(terms []ie.Term) int {
		m := -1
		for _, term := range terms {
			w, _, _ := tw.Treewidth(term.Formula.Graph())
			if w > m {
				m = w
			}
		}
		return m
	}
	rawTW, mergedTW := maxTW(raw), maxTW(merged)
	sizes := []int{6, 10, 14}
	if cfg.Quick {
		sizes = []int{5, 7}
	}
	for _, n := range sizes {
		b := workload.RandomStructure(edgeSig(), n, 0.3, int64(n))
		var vRaw, vMerged *big.Int
		dRaw, err := timed(func() error {
			var e error
			vRaw, e = ie.Count(raw, b, projCounter)
			return e
		})
		if err != nil {
			return nil, err
		}
		dMerged, err := timed(func() error {
			var e error
			vMerged, e = ie.Count(merged, b, projCounter)
			return e
		})
		if err != nil {
			return nil, err
		}
		ok := vRaw.Cmp(vMerged) == 0
		t.OK = t.OK && ok
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(n), fmt.Sprint(len(raw)), fmt.Sprint(len(merged)),
			fmt.Sprint(rawTW), fmt.Sprint(mergedTW),
			fmtDur(dRaw), fmtDur(dMerged), yes(ok),
		})
	}
	t.OK = t.OK && len(raw) == 7 && len(merged) == 2 && rawTW == 2 && mergedTW == 1
	t.OK = t.OK && ps.Raw == 7 && ps.Unique == len(merged)+ps.Cancelled
	t.Notes = append(t.Notes,
		"paper: |φ(B)| = 3·|φ1(B)| − 2·|(φ1∧φ3)(B)|; the cancelled terms were the only treewidth-2 ones",
		fmt.Sprintf("term pool: %s", ps))
	return t, nil
}

// RunE3 reproduces Example 4.3: each pp count |φ*_i(B)| is recovered
// exactly from oracle access to |φ(·)| alone, via products with a
// distinguishing structure and an exact Vandermonde solve.
func RunE3(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "E3",
		Title:   "Example 4.3: recovering pp counts from the ep oracle (Vandermonde)",
		Columns: []string{"B", "ψ ∈ φ⁺", "direct", "recovered", "oracle calls", "match"},
		OK:      true,
	}
	q := example41Query()
	c, err := eptrans.Compile(q, edgeSig())
	if err != nil {
		return nil, err
	}
	n := 3
	if cfg.Quick {
		n = 2
	}
	for seed := int64(0); seed < int64(n); seed++ {
		b := workload.RandomStructure(edgeSig(), 3, 0.45, seed+10)
		calls := 0
		oracle := func(y *structure.Structure) (*big.Int, error) {
			calls++
			return eptrans.CountEPViaPP(c, y, fptCounter)
		}
		for pi, psi := range c.Plus {
			calls = 0
			direct, err := count.PP(psi, b, count.EngineFPT)
			if err != nil {
				return nil, err
			}
			rec, err := eptrans.CountPPViaEP(c, psi, b, oracle)
			if err != nil {
				return nil, err
			}
			ok := direct.Cmp(rec) == 0
			t.OK = t.OK && ok
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("random#%d", seed), fmt.Sprintf("ψ%d", pi+1),
				fmtBig(direct), fmtBig(rec), fmt.Sprint(calls), yes(ok),
			})
		}
	}
	// Also verify the paper's concrete claim: the Example 4.3 structure C
	// separates the three φ* terms.
	cex := example43C()
	vals := map[string]bool{}
	distinct := true
	for _, s := range c.Star {
		v, err := count.PP(s.Formula, cex, count.EngineFPT)
		if err != nil {
			return nil, err
		}
		if v.Sign() <= 0 || vals[v.String()] {
			distinct = false
		}
		vals[v.String()] = true
	}
	t.OK = t.OK && distinct
	t.Notes = append(t.Notes,
		"paper's C = {1..4}, E = {(1,2),(2,3),(3,4),(4,4)} gives pairwise distinct positive counts: "+yes(distinct))
	return t, nil
}

// RunE4 validates the Theorem 5.4 characterization empirically: the
// renaming-equivalence decision agrees with observed counts on a corpus
// of structures, for pairs engineered to be equivalent and random pairs.
func RunE4(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "E4",
		Title:   "Theorem 5.4: counting equivalence decision vs empirical counts",
		Columns: []string{"pair", "decided", "empirical", "consistent", "t_decide"},
		OK:      true,
	}
	sig := edgeSig()
	type pair struct {
		name   string
		p1, p2 pp.PP
	}
	mk := func(src string, lib []logic.Var) pp.PP {
		q := parser.MustQuery(src)
		p, err := pp.FromDisjunct(sig, lib, q.Disjuncts()[0])
		if err != nil {
			panic(err)
		}
		return p
	}
	var pairs []pair
	// Renamed copies: equivalent by construction (Example 5.2 style).
	pairs = append(pairs, pair{"renamed-edge",
		mk("p(x,y) := E(x,y)", []logic.Var{"x", "y"}),
		mk("p(w,z) := E(w,z)", []logic.Var{"w", "z"})})
	pairs = append(pairs, pair{"renamed-path",
		mk("p(a,b) := exists m. E(a,m) & E(m,b)", []logic.Var{"a", "b"}),
		mk("p(s,t) := exists u. E(s,u) & E(u,t)", []logic.Var{"s", "t"})})
	// Logically equivalent but syntactically different (quantified twin).
	pairs = append(pairs, pair{"redundant-twin",
		mk("p(x) := exists u. E(x,u)", []logic.Var{"x"}),
		mk("p(x) := exists u, v. E(x,u) & E(x,v)", []logic.Var{"x"})})
	// Inequivalent pairs.
	pairs = append(pairs, pair{"edge-vs-2cycle",
		mk("p(x,y) := E(x,y)", []logic.Var{"x", "y"}),
		mk("p(x,y) := E(x,y) & E(y,x)", []logic.Var{"x", "y"})})
	pairs = append(pairs, pair{"path2-vs-path3",
		mk("p(s,t) := exists u. E(s,u) & E(u,t)", []logic.Var{"s", "t"}),
		mk("p(s,t) := exists u, v. E(s,u) & E(u,v) & E(v,t)", []logic.Var{"s", "t"})})
	// Random pairs.
	nRand := 6
	if cfg.Quick {
		nRand = 2
	}
	for seed := int64(0); seed < int64(nRand); seed++ {
		q1 := workload.RandomPPQuery(sig, 3, 2, 2, seed)
		q2 := workload.RandomPPQuery(sig, 3, 2, 2, seed+100)
		p1, err := pp.FromDisjunct(sig, q1.Lib, q1.Disjuncts()[0])
		if err != nil {
			return nil, err
		}
		p2, err := pp.FromDisjunct(sig, q2.Lib, q2.Disjuncts()[0])
		if err != nil {
			return nil, err
		}
		pairs = append(pairs, pair{fmt.Sprintf("random#%d", seed), p1, p2})
	}
	corpus := equivCorpus(cfg)
	for _, pr := range pairs {
		var decided bool
		dt, err := timed(func() error {
			var e error
			decided, e = pp.CountingEquivalent(pr.p1, pr.p2)
			return e
		})
		if err != nil {
			return nil, err
		}
		empirical, witness := empiricallyEqual(pr.p1, pr.p2, corpus, false)
		// Consistency: decided ⟹ empirically equal on the corpus; refuted
		// decisions should ideally exhibit a witness (they might not in a
		// finite corpus, which is still consistent).
		consistent := !decided || empirical
		t.OK = t.OK && consistent
		emp := "equal-on-corpus"
		if !empirical {
			emp = "differ@" + witness
		}
		t.Rows = append(t.Rows, []string{pr.name, yes(decided), emp, yes(consistent), fmtDur(dt)})
	}
	return t, nil
}

// RunE5 does the same for semi-counting equivalence (Theorem 5.9),
// comparing counts only on structures where both are positive.
func RunE5(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "E5",
		Title:   "Theorem 5.9: semi-counting equivalence via φ̂ vs empirical counts",
		Columns: []string{"pair", "decided sc-eq", "decided c-eq", "empirical", "consistent"},
		OK:      true,
	}
	sig := structure.MustSignature(
		structure.RelSym{Name: "E", Arity: 2},
		structure.RelSym{Name: "F", Arity: 1},
	)
	mk := func(src string, lib []logic.Var) pp.PP {
		q := parser.MustQuery(src)
		p, err := pp.FromDisjunct(sig, lib, q.Disjuncts()[0])
		if err != nil {
			panic(err)
		}
		return p
	}
	lib := []logic.Var{"x", "y"}
	type pair struct {
		name   string
		p1, p2 pp.PP
	}
	pairs := []pair{
		// Example 5.7: sc-equivalent, not c-equivalent.
		{"Ex5.7", mk("p(x,y) := E(x,y)", lib), mk("p(x,y) := exists z. E(x,y) & F(z)", lib)},
		// Same with a harder sentence part.
		{"sentence-2cycle", mk("p(x,y) := E(x,y)", lib),
			mk("p(x,y) := exists u, v. E(x,y) & E(u,v) & E(v,u)", lib)},
		// Not even sc-equivalent.
		{"edge-vs-2cycle", mk("p(x,y) := E(x,y)", lib), mk("p(x,y) := E(x,y) & E(y,x)", lib)},
	}
	corpus := equivCorpusSig(sig, cfg)
	for _, pr := range pairs {
		sce, err := pp.SemiCountingEquivalent(pr.p1, pr.p2)
		if err != nil {
			return nil, err
		}
		ce, err := pp.CountingEquivalent(pr.p1, pr.p2)
		if err != nil {
			return nil, err
		}
		empirical, witness := empiricallyEqual(pr.p1, pr.p2, corpus, true)
		consistent := !sce || empirical
		t.OK = t.OK && consistent && (!ce || sce) // c-eq implies sc-eq
		emp := "equal-when-positive"
		if !empirical {
			emp = "differ@" + witness
		}
		t.Rows = append(t.Rows, []string{pr.name, yes(sce), yes(ce), emp, yes(consistent)})
	}
	t.Notes = append(t.Notes, "counting equivalence must imply semi-counting equivalence (checked)")
	return t, nil
}

func equivCorpus(cfg Config) []*structure.Structure {
	return equivCorpusSig(edgeSig(), cfg)
}

func equivCorpusSig(sig *structure.Signature, cfg Config) []*structure.Structure {
	n := 14
	if cfg.Quick {
		n = 6
	}
	var out []*structure.Structure
	for seed := int64(0); seed < int64(n); seed++ {
		b := workload.RandomStructure(sig, 2+int(seed%3), 0.45, seed)
		out = append(out, b)
		out = append(out, structure.PadLoops(b, 1))
	}
	return out
}

// empiricallyEqual compares counts over the corpus; with positiveOnly it
// skips structures where either count is zero (Definition 5.6).  Returns
// whether all compared counts matched and a short witness tag otherwise.
func empiricallyEqual(p1, p2 pp.PP, corpus []*structure.Structure, positiveOnly bool) (bool, string) {
	for i, b := range corpus {
		v1, err := count.PP(p1, b, count.EngineProjection)
		if err != nil {
			return false, "error"
		}
		v2, err := count.PP(p2, b, count.EngineProjection)
		if err != nil {
			return false, "error"
		}
		if positiveOnly && (v1.Sign() == 0 || v2.Sign() == 0) {
			continue
		}
		if v1.Cmp(v2) != 0 {
			return false, fmt.Sprintf("corpus[%d]", i)
		}
	}
	return true, ""
}
