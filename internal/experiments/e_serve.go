package experiments

import (
	"context"
	"fmt"
	"math/big"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/count"
	"repro/internal/parser"
	"repro/internal/serve"
	"repro/internal/structure"
	"repro/internal/workload"
)

// RunS1 measures the epserved service layer under concurrent clients:
// an in-process server on a loopback listener, driven over real HTTP.
// Each row is one workload phase; throughput is requests per second of
// wall-clock across all clients.  Validation cross-checks every count
// the service returns against the library computing the same count
// in-process, and asserts the serving-layer invariants (plan sharing
// across equivalent queries, memo-bound warm counts, append
// visibility).
func RunS1(cfg Config) (*Table, error) {
	clients := 8
	warmReqs, batchReqs, mixAppends := 400, 100, 60
	if cfg.Quick {
		clients, warmReqs, batchReqs, mixAppends = 4, 80, 20, 16
	}

	srv := serve.New(serve.Config{MaxInFlight: 2 * clients})
	if err := srv.Start(); err != nil {
		return nil, err
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	}()
	cl := serve.NewClient("http://"+srv.Addr(), nil)
	ctx := context.Background()

	// One medium and several small graphs, mirrored locally for
	// validation.
	nBig, nSmall := 120, 40
	if cfg.Quick {
		nBig, nSmall = 60, 24
	}
	local := map[string]*structure.Structure{
		"main": workload.RandomStructure(workload.EdgeSig(), nBig, 0.12, 42),
	}
	for i := 0; i < 4; i++ {
		local[fmt.Sprintf("shard%d", i)] = workload.RandomStructure(workload.EdgeSig(), nSmall, 0.2, int64(100+i))
	}
	for name, b := range local {
		facts, err := b.FactsString()
		if err != nil {
			return nil, err
		}
		if _, err := cl.CreateStructure(ctx, name, facts, nil); err != nil {
			return nil, err
		}
	}

	tri := "tri(x,y,z) := E(x,y) & E(y,z) & E(z,x)"
	expected := func(q string, b *structure.Structure) (*big.Int, error) {
		query, err := parser.ParseQuery(q)
		if err != nil {
			return nil, err
		}
		c, err := core.NewCounter(query, b.Signature(), count.EngineFPT)
		if err != nil {
			return nil, err
		}
		return c.Count(b)
	}
	wantTri, err := expected(tri, local["main"])
	if err != nil {
		return nil, err
	}

	t := &Table{
		ID:      "S1",
		Title:   "Service throughput — epserved HTTP counting under concurrent clients",
		Columns: []string{"phase", "clients", "requests", "elapsed", "req/s", "check"},
		OK:      true,
	}
	addRow := func(phase string, nClients, requests int, elapsed time.Duration, ok bool) {
		rps := float64(requests) / elapsed.Seconds()
		t.Rows = append(t.Rows, []string{
			phase, fmt.Sprint(nClients), fmt.Sprint(requests), fmtDur(elapsed),
			fmt.Sprintf("%.0f", rps), yes(ok),
		})
		t.OK = t.OK && ok
	}

	// Phase 1: cold count — first request pays compile + materialize.
	start := time.Now()
	v, _, err := cl.Count(ctx, tri, "main")
	if err != nil {
		return nil, err
	}
	addRow("cold /count (compile+materialize)", 1, 1, time.Since(start), v.Cmp(wantTri) == 0)

	// Phase 2: warm /count fan-in — C clients hammer the same query on
	// the same unchanged structure; the steady state is one session
	// memo hit per request.
	var bad atomic.Int64
	start = time.Now()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < warmReqs/clients; i++ {
				got, _, err := cl.Count(ctx, tri, "main")
				if err != nil || got.Cmp(wantTri) != 0 {
					bad.Add(1)
					return
				}
			}
		}()
	}
	wg.Wait()
	addRow("warm /count (memo-bound)", clients, warmReqs/clients*clients, time.Since(start), bad.Load() == 0)

	// Phase 3: /countBatch over the shards.
	shards := []string{"shard0", "shard1", "shard2", "shard3"}
	wantShard := make([]*big.Int, len(shards))
	for i, s := range shards {
		if wantShard[i], err = expected(tri, local[s]); err != nil {
			return nil, err
		}
	}
	bad.Store(0)
	start = time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < batchReqs/clients; i++ {
				vs, _, err := cl.CountBatch(ctx, tri, shards)
				if err != nil {
					bad.Add(1)
					return
				}
				for j := range vs {
					if vs[j].Cmp(wantShard[j]) != 0 {
						bad.Add(1)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	addRow("/countBatch (4 structures)", clients, batchReqs/clients*clients, time.Since(start), bad.Load() == 0)

	// Phase 4: mutation mix — one writer streams single-triangle
	// appends into a dedicated structure while readers count it; after
	// the stream drains, the count must equal the library's count of
	// the fully appended structure.
	if _, err := cl.CreateStructure(ctx, "stream", "universe s0, s1, s2.\nE(s0,s1). E(s1,s2). E(s2,s0).", nil); err != nil {
		return nil, err
	}
	streamSrc := "universe s0, s1, s2.\nE(s0,s1). E(s1,s2). E(s2,s0).\n"
	appendBatches := make([]string, mixAppends)
	for i := range appendBatches {
		w := fmt.Sprintf("t%d", i)
		appendBatches[i] = fmt.Sprintf("E(s0,%s). E(%s,s1). E(s1,s0).", w, w)
		streamSrc += appendBatches[i] + "\n"
	}
	bad.Store(0)
	var reads atomic.Int64
	stop := make(chan struct{})
	for c := 0; c < clients-1; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, _, err := cl.Count(ctx, tri, "stream"); err != nil {
					bad.Add(1)
					return
				}
				reads.Add(1)
			}
		}()
	}
	start = time.Now()
	for _, facts := range appendBatches {
		if _, err := cl.AppendFacts(ctx, "stream", facts); err != nil {
			return nil, err
		}
	}
	close(stop)
	wg.Wait()
	elapsed := time.Since(start)
	finalStream, err := parser.ParseStructure(streamSrc, nil)
	if err != nil {
		return nil, err
	}
	wantStream, err := expected(tri, finalStream)
	if err != nil {
		return nil, err
	}
	gotStream, _, err := cl.Count(ctx, tri, "stream")
	if err != nil {
		return nil, err
	}
	okStream := bad.Load() == 0 && gotStream.Cmp(wantStream) == 0
	addRow("append stream + concurrent /count", clients, mixAppends+int(reads.Load()), elapsed, okStream)

	// Phase 5: plan sharing — a textually different but counting-
	// equivalent triangle query from a "second client" must reuse the
	// compiled plan and the warm session memo.
	tri2 := "rot(a,b,c) := E(b,c) & E(c,a) & E(a,b)"
	start = time.Now()
	v2, _, err := cl.Count(ctx, tri2, "main")
	if err != nil {
		return nil, err
	}
	el2 := time.Since(start)
	st, err := cl.Stats(ctx)
	if err != nil {
		return nil, err
	}
	shared := 0
	for _, q := range st.Queries {
		if strings.HasPrefix(q.Query, "rot") {
			shared = q.SharedPlans
		}
	}
	addRow("equivalent query, 2nd client (plan+memo shared)", 1, 1, el2, v2.Cmp(wantTri) == 0 && shared >= 1)

	t.Notes = append(t.Notes,
		fmt.Sprintf("in-process server over loopback HTTP; workers=%d, max in-flight=%d", st.Workers, st.Admission.MaxInFlight),
		fmt.Sprintf("admission: %d admitted, %d rejected, %d deadline; sessions cached: %d (evictions %d)",
			st.Admission.Admitted, st.Admission.Rejected, st.Admission.Deadline, st.Sessions.Sessions, st.Sessions.Evictions),
		"warm-phase throughput is memo-bound by design: repeated counting of an unchanged structure is one session count-memo hit per request (PR 4), so the row measures the HTTP+registry overhead ceiling, not executor speed",
	)
	return t, nil
}
