package experiments

import (
	"context"
	"fmt"
	"math/big"
	"math/rand"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/count"
	"repro/internal/engine"
	"repro/internal/parser"
	"repro/internal/serve"
	"repro/internal/workload"
)

// RunS2 measures incremental delta maintenance on an append stream: a
// subscription (maintained count) is read after every append batch, once
// with the engine's delta path enabled and once with it forced off (every
// read is then a full recount, the pre-delta behaviour).  Both modes see
// the identical batch sequence, so their per-version counts must agree
// exactly; the final count is additionally replayed from scratch on a
// fresh structure.  The measured loop is the serving layer's
// append+read mix — registry append (parse, merge, version bump)
// followed by a maintained-count read — so the speedup is what a
// subscriber actually observes, not an engine-only microbenchmark.
func RunS2(cfg Config) (*Table, error) {
	n, density, steps, batchEdges := 320, 0.06, 48, 3
	if cfg.Quick {
		n, density, steps, batchEdges = 140, 0.08, 16, 3
	}
	base := workload.RandomStructure(workload.EdgeSig(), n, density, 20260807)
	baseFacts, err := base.FactsString()
	if err != nil {
		return nil, err
	}
	tri := "tri(x,y,z) := E(x,y) & E(y,z) & E(z,x)"

	// The identical batch stream for both modes: a few random edges per
	// batch over the existing universe (duplicates occur and are
	// dedup-ignored, exactly like production ingest).
	rng := rand.New(rand.NewSource(7))
	batches := make([]string, steps)
	for i := range batches {
		var sb strings.Builder
		for j := 0; j < batchEdges; j++ {
			fmt.Fprintf(&sb, "E(v%d,v%d). ", rng.Intn(n), rng.Intn(n))
		}
		batches[i] = sb.String()
	}

	ctx := context.Background()
	type result struct {
		elapsed time.Duration
		counts  []*big.Int
	}
	run := func(deltaOn bool) (result, error) {
		restore := engine.SetDeltaEnabled(deltaOn)
		defer restore()
		reg := serve.NewRegistry(0, 0)
		if _, err := reg.CreateStructure("g", baseFacts, nil); err != nil {
			return result{}, err
		}
		sub, err := reg.Subscribe(tri, "g", "")
		if err != nil {
			return result{}, err
		}
		// Materialize the maintained count outside the timed loop; the
		// cold first read pays compile + full count in both modes.
		if _, err := reg.SubscriptionCount(ctx, sub.ID); err != nil {
			return result{}, err
		}
		res := result{counts: make([]*big.Int, 0, steps)}
		start := time.Now()
		for _, facts := range batches {
			if _, err := reg.AppendFacts("g", facts); err != nil {
				return result{}, err
			}
			info, err := reg.SubscriptionCount(ctx, sub.ID)
			if err != nil {
				return result{}, err
			}
			c, ok := new(big.Int).SetString(info.Count, 10)
			if !ok {
				return result{}, fmt.Errorf("malformed count %q", info.Count)
			}
			res.counts = append(res.counts, c)
		}
		res.elapsed = time.Since(start)
		return res, nil
	}

	// Full-recount baseline first (cold caches penalize neither mode:
	// each run builds its own registry and pays its own cold read).
	advBefore := engine.DeltaStats()
	full, err := run(false)
	if err != nil {
		return nil, err
	}
	delta, err := run(true)
	if err != nil {
		return nil, err
	}
	advAfter := engine.DeltaStats()

	// Differential: the two modes must agree at every version, and the
	// final count must equal a from-scratch recount of the replayed
	// stream on a fresh structure.
	agree := len(full.counts) == len(delta.counts)
	for i := 0; agree && i < len(full.counts); i++ {
		agree = full.counts[i].Cmp(delta.counts[i]) == 0
	}
	replaySrc := baseFacts + "\n"
	for _, b := range batches {
		replaySrc += b + "\n"
	}
	replayed, err := parser.ParseStructure(replaySrc, nil)
	if err != nil {
		return nil, err
	}
	q, err := parser.ParseQuery(tri)
	if err != nil {
		return nil, err
	}
	fresh, err := core.NewCounter(q, replayed.Signature(), count.EngineFPT)
	if err != nil {
		return nil, err
	}
	want, err := fresh.Count(replayed)
	if err != nil {
		return nil, err
	}
	replayOK := len(delta.counts) > 0 && delta.counts[len(delta.counts)-1].Cmp(want) == 0
	advanced := advAfter.Advances - advBefore.Advances

	t := &Table{
		ID:      "S2",
		Title:   "Delta maintenance — append-stream subscription reads vs full recounts",
		Columns: []string{"mode", "steps", "elapsed", "µs/(append+read)", "speedup", "check"},
		OK:      agree && replayOK && advanced > 0,
	}
	perStep := func(d time.Duration) string {
		return fmt.Sprintf("%.0f", float64(d.Microseconds())/float64(steps))
	}
	speedup := float64(full.elapsed) / float64(delta.elapsed)
	t.Rows = append(t.Rows,
		[]string{"full recount (delta off)", fmt.Sprint(steps), fmtDur(full.elapsed), perStep(full.elapsed), "1.00x", yes(agree)},
		[]string{"delta-maintained", fmt.Sprint(steps), fmtDur(delta.elapsed), perStep(delta.elapsed),
			fmt.Sprintf("%.2fx", speedup), yes(agree && replayOK)},
	)
	t.Notes = append(t.Notes,
		fmt.Sprintf("%d-vertex ER graph (density %.2f, %d base edges), triangle motif; %d append batches of %d random edges each",
			n, density, base.NumTuples(), steps, batchEdges),
		fmt.Sprintf("delta path advanced %d memoized counts, %d threshold fallbacks; both modes produced identical counts at every version and the final count equals a from-scratch replay",
			advanced, advAfter.FullRecounts-advBefore.FullRecounts),
		"each step is one atomic registry append (parse + dedup merge + version bump) plus one maintained-count read; the delta mode advances the warm memo by the appended rows (engine/delta.go), the baseline recounts the whole join",
	)
	return t, nil
}
