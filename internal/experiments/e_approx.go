package experiments

import (
	"context"
	"fmt"
	"math"
	"math/big"
	"time"

	"repro/internal/approx"
	"repro/internal/engine"
	"repro/internal/pp"
	"repro/internal/structure"
	"repro/internal/workload"
)

// approxEps / approxDelta are the (ε, δ) target the A1 experiment runs
// at — the same defaults the serving layer uses.
const (
	approxEps   = 0.1
	approxDelta = 0.05
)

// exactBudget is the wall-clock budget granted to the exact DP before a
// row falls back to its scaled-down twin for ground truth.
const exactBudget = 10 * time.Second

// a1Instance is one exact-vs-approx comparison: a k-clique query on
// G(n, p), with a scaled-down twin (same density regime, nTwin vertices)
// that supplies exact ground truth when the full exact run exceeds the
// budget.
type a1Instance struct {
	k     int
	n     int
	nTwin int
	p     float64
	seed  int64
}

// relErrOf is |est − truth| / truth.
func relErrOf(est, truth *big.Int) float64 {
	tf, _ := new(big.Float).SetInt(truth).Float64()
	ef, _ := new(big.Float).SetInt(est).Float64()
	if tf == 0 {
		if ef == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return math.Abs(ef-tf) / tf
}

// exactWithin runs the exact FPT plan under a wall-clock budget; ok is
// false when the budget expired first.
func exactWithin(p pp.PP, b *structure.Structure, budget time.Duration) (v *big.Int, d time.Duration, ok bool, err error) {
	pl, err := engine.Compile(p, engine.FPT)
	if err != nil {
		return nil, 0, false, err
	}
	ctx, cancel := context.WithTimeout(context.Background(), budget)
	defer cancel()
	start := time.Now()
	v, err = engine.CountInCtx(ctx, pl, engine.NewSession(b), 0)
	d = time.Since(start)
	if err != nil {
		if ctx.Err() != nil {
			return nil, d, false, nil
		}
		return nil, d, false, err
	}
	return v, d, true, nil
}

// RunA1 compares exact and approximate counting in the hard regime
// (Theorem 3.2 cases 2/3): k-clique queries on G(n, p), exact DP
// wall-clock vs the importance-sampling estimator at (ε, δ) =
// (0.1, 0.05).  The measured relative error is validated against exact
// ground truth — taken from the instance itself when the exact DP
// finishes inside the budget, and from the scaled-down twin otherwise
// (same estimator seed and budget, so the twin's error is representative
// of the sampler on that query shape).  Validation passes when every
// measured relative error is ≤ ε.
func RunA1(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "A1",
		Title:   fmt.Sprintf("Approximation: exact vs sampled clique counting at ε=%.2g, δ=%.2g", approxEps, approxDelta),
		Columns: []string{"query", "n", "exact", "t_exact", "estimate", "t_approx", "samples", "rel_err", "ground_truth"},
		OK:      true,
	}
	instances := []a1Instance{
		{k: 3, n: 150, nTwin: 150, p: 0.15, seed: 3},
		{k: 4, n: 90, nTwin: 90, p: 0.25, seed: 5},
		{k: 5, n: 260, nTwin: 60, p: 0.4, seed: 7},
	}
	if cfg.Quick {
		instances = []a1Instance{
			{k: 3, n: 60, nTwin: 60, p: 0.2, seed: 3},
			{k: 4, n: 40, nTwin: 40, p: 0.3, seed: 6},
		}
	}
	budget := exactBudget
	if cfg.Quick {
		budget = 2 * time.Second
	}
	for _, inst := range instances {
		all := make([]int, inst.k)
		for i := range all {
			all[i] = i
		}
		p, err := pp.New(workload.GraphStructure(workload.CompleteGraph(inst.k)), all)
		if err != nil {
			return nil, err
		}
		b := workload.GraphStructure(workload.ER(inst.n, inst.p, inst.seed))
		query := fmt.Sprintf("K%d", inst.k)

		est := approx.New(p)
		var res approx.Result
		dApprox, err := timed(func() error {
			var e error
			res, e = est.Count(context.Background(), b, approx.Params{
				Epsilon: approxEps, Delta: approxDelta, Seed: inst.seed,
			})
			return e
		})
		if err != nil {
			return nil, err
		}

		exact, dExact, ok, err := exactWithin(p, b, budget)
		if err != nil {
			return nil, err
		}

		exactCell, truthCell := "-", "self"
		var relErr float64
		if ok {
			exactCell = fmtBig(exact)
			relErr = relErrOf(res.Estimate, exact)
		} else {
			// Budget exceeded: measure the estimator's error on the
			// scaled-down twin, where exact ground truth is feasible.
			exactCell = fmt.Sprintf("timeout(>%s)", budget)
			truthCell = fmt.Sprintf("twin n=%d", inst.nTwin)
			tb := workload.GraphStructure(workload.ER(inst.nTwin, inst.p, inst.seed))
			twinExact, _, tok, err := exactWithin(p, tb, budget)
			if err != nil {
				return nil, err
			}
			if !tok {
				t.OK = false
				t.Notes = append(t.Notes, fmt.Sprintf("%s: twin n=%d also exceeded the exact budget", query, inst.nTwin))
				continue
			}
			var twinRes approx.Result
			twinRes, err = est.Count(context.Background(), tb, approx.Params{
				Epsilon: approxEps, Delta: approxDelta, Seed: inst.seed,
			})
			if err != nil {
				return nil, err
			}
			relErr = relErrOf(twinRes.Estimate, twinExact)
		}
		if relErr > approxEps || !res.Converged {
			t.OK = false
		}
		t.Rows = append(t.Rows, []string{
			query, fmt.Sprint(inst.n), exactCell, fmtDur(dExact),
			fmtBig(res.Estimate), fmtDur(dApprox), fmt.Sprint(res.Samples),
			fmt.Sprintf("%.4f", relErr), truthCell,
		})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("validation: measured rel_err ≤ ε=%.2g on every row (δ=%.2g, fixed seeds)", approxEps, approxDelta))
	return t, nil
}
