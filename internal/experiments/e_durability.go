package experiments

import (
	"fmt"
	"math/rand"
	"os"
	"strings"
	"time"

	"repro/internal/serve"
	"repro/internal/wal"
	"repro/internal/workload"
)

// RunD1 measures what durability costs on the ingest path: the same
// append stream is driven through a WAL-attached registry under each
// fsync policy (always, batch, never) and through a memory-only
// registry as the ceiling, reporting batches/s and appended facts/s.
// Validation closes each durable registry, recovers the directory from
// scratch, and requires the recovered structure to match the writer's
// final state exactly (size, tuples, version, facts) — so every row's
// throughput number is backed by a proven round trip.  A final row
// compacts the largest log and re-recovers from the snapshot.
func RunD1(cfg Config) (*Table, error) {
	n, batches, batchEdges := 200, 400, 4
	if cfg.Quick {
		n, batches, batchEdges = 80, 80, 4
	}
	base := workload.RandomStructure(workload.EdgeSig(), n, 0.05, 20260807)
	baseFacts, err := base.FactsString()
	if err != nil {
		return nil, err
	}

	// The identical batch stream for every policy.
	rng := rand.New(rand.NewSource(11))
	stream := make([]string, batches)
	for i := range stream {
		var sb strings.Builder
		for j := 0; j < batchEdges; j++ {
			fmt.Fprintf(&sb, "E(v%d,v%d). ", rng.Intn(2*n), rng.Intn(2*n))
		}
		stream[i] = sb.String()
	}

	t := &Table{
		ID:      "D1",
		Title:   "Durability cost — append throughput by fsync policy, recovery-validated",
		Columns: []string{"policy", "batches", "batch/s", "facts/s", "wal bytes", "recovered", "check"},
		OK:      true,
	}
	addRow := func(policy string, elapsed time.Duration, walBytes int64, recovered string, ok bool) {
		bps := float64(batches) / elapsed.Seconds()
		fps := float64(batches*batchEdges) / elapsed.Seconds()
		wb := "-"
		if walBytes >= 0 {
			wb = fmt.Sprint(walBytes)
		}
		t.Rows = append(t.Rows, []string{
			policy, fmt.Sprint(batches), fmt.Sprintf("%.0f", bps), fmt.Sprintf("%.0f", fps),
			wb, recovered, yes(ok),
		})
		t.OK = t.OK && ok
	}

	// stateOf fingerprints a registry's single structure.
	stateOf := func(reg *serve.Registry) (string, error) {
		info, err := reg.StructureInfo("g")
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("%d/%d/%d", info.Size, info.Tuples, info.Version), nil
	}

	// Memory-only ceiling.
	memReg := serve.NewRegistry(0, 1)
	if _, err := memReg.CreateStructure("g", baseFacts, nil); err != nil {
		return nil, err
	}
	memStart := time.Now()
	for i, b := range stream {
		if _, err := memReg.AppendFactsBatch("g", b, fmt.Sprintf("d1-%d", i)); err != nil {
			return nil, err
		}
	}
	memElapsed := time.Since(memStart)
	wantState, err := stateOf(memReg)
	if err != nil {
		return nil, err
	}
	addRow("memory (no WAL)", memElapsed, -1, "-", true)

	var lastDir string
	for _, policy := range []wal.SyncPolicy{wal.SyncAlways, wal.SyncBatch, wal.SyncNever} {
		dir, err := os.MkdirTemp("", "epcq-d1-")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(dir)
		open := func() (*serve.Registry, error) {
			st, rep, err := wal.Open(wal.Options{Dir: dir, Sync: policy})
			if err != nil {
				return nil, err
			}
			reg := serve.NewRegistry(0, 1)
			if err := reg.AttachStore(st, rep, -1); err != nil {
				return nil, err
			}
			return reg, nil
		}
		reg, err := open()
		if err != nil {
			return nil, err
		}
		if _, err := reg.CreateStructure("g", baseFacts, nil); err != nil {
			return nil, err
		}
		start := time.Now()
		for i, b := range stream {
			if _, err := reg.AppendFactsBatch("g", b, fmt.Sprintf("d1-%d", i)); err != nil {
				return nil, err
			}
		}
		elapsed := time.Since(start)
		walBytes := reg.DurabilityStats().WALBytes
		wroteState, err := stateOf(reg)
		if err != nil {
			return nil, err
		}
		if err := reg.Close(); err != nil {
			return nil, err
		}

		// Recovery differential: a fresh process must see the exact
		// final state the writer acknowledged.
		reg2, err := open()
		if err != nil {
			return nil, err
		}
		recState, err := stateOf(reg2)
		if err != nil {
			return nil, err
		}
		d := reg2.DurabilityStats()
		if err := reg2.Close(); err != nil {
			return nil, err
		}
		ok := wroteState == wantState && recState == wantState
		addRow("fsync="+policy.String(), elapsed,
			walBytes, fmt.Sprintf("%d rec", d.RecoveredRecords), ok)
		lastDir = dir
	}

	// Compaction: snapshot the fsync=never directory (largest WAL),
	// reopen, and require the snapshot-based recovery to agree too.
	st, rep, err := wal.Open(wal.Options{Dir: lastDir, Sync: wal.SyncNever})
	if err != nil {
		return nil, err
	}
	reg := serve.NewRegistry(0, 1)
	if err := reg.AttachStore(st, rep, -1); err != nil {
		return nil, err
	}
	compStart := time.Now()
	if err := reg.Compact(); err != nil {
		return nil, err
	}
	compElapsed := time.Since(compStart)
	walAfter := reg.DurabilityStats().WALBytes
	if err := reg.Close(); err != nil {
		return nil, err
	}
	st2, rep2, err := wal.Open(wal.Options{Dir: lastDir, Sync: wal.SyncNever})
	if err != nil {
		return nil, err
	}
	reg2 := serve.NewRegistry(0, 1)
	if err := reg2.AttachStore(st2, rep2, -1); err != nil {
		return nil, err
	}
	snapState, err := stateOf(reg2)
	if err != nil {
		return nil, err
	}
	d2 := reg2.DurabilityStats()
	if err := reg2.Close(); err != nil {
		return nil, err
	}
	okSnap := snapState == wantState && d2.RecoveredSnapshots > 0 && d2.RecoveredRecords == 0
	t.Rows = append(t.Rows, []string{
		"compact+recover", "-", "-", "-", fmt.Sprint(walAfter),
		fmt.Sprintf("%d snap in %s", d2.RecoveredSnapshots, fmtDur(compElapsed)), yes(okSnap),
	})
	t.OK = t.OK && okSnap
	t.Notes = append(t.Notes,
		"every durable row is validated by close + recover-from-disk, compared against the in-memory run's final state",
		"fsync=always pays one fsync per acknowledged batch; batch amortizes over 32; never leaves the page cache in charge",
	)
	return t, nil
}
