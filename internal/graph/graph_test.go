package graph

import (
	"math/big"
	"testing"
	"testing/quick"
)

func path(n int) *Graph {
	g := New(n)
	for i := 0; i+1 < n; i++ {
		g.AddEdge(i, i+1)
	}
	return g
}

func complete(n int) *Graph {
	g := New(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			g.AddEdge(i, j)
		}
	}
	return g
}

func TestBasics(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(1, 1) // self-loop ignored
	g.AddEdge(-1, 2)
	g.AddEdge(0, 9)
	if g.NumEdges() != 2 {
		t.Fatalf("edges = %d, want 2", g.NumEdges())
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) || g.HasEdge(0, 2) {
		t.Fatal("HasEdge wrong")
	}
	if g.Degree(1) != 2 {
		t.Fatalf("deg(1) = %d", g.Degree(1))
	}
	if n := g.Neighbors(1); len(n) != 2 || n[0] != 0 || n[1] != 2 {
		t.Fatalf("neighbors = %v", n)
	}
}

func TestComponents(t *testing.T) {
	g := New(6)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(3, 4)
	comps := g.Components()
	if len(comps) != 3 {
		t.Fatalf("components = %d, want 3 ({0,1,2},{3,4},{5})", len(comps))
	}
	if len(comps[0]) != 3 || len(comps[1]) != 2 || len(comps[2]) != 1 {
		t.Fatalf("component sizes wrong: %v", comps)
	}
	if g.IsConnected() {
		t.Fatal("disconnected graph reported connected")
	}
	if !path(5).IsConnected() {
		t.Fatal("path reported disconnected")
	}
	if !New(0).IsConnected() || !New(1).IsConnected() {
		t.Fatal("trivial graphs should be connected")
	}
}

func TestSubgraph(t *testing.T) {
	g := path(5)
	sub, old := g.Subgraph([]int{1, 2, 4})
	if sub.N() != 3 {
		t.Fatalf("sub size = %d", sub.N())
	}
	if sub.NumEdges() != 1 {
		t.Fatalf("sub edges = %d, want 1 (only 1-2 survives)", sub.NumEdges())
	}
	if old[0] != 1 || old[1] != 2 || old[2] != 4 {
		t.Fatalf("old mapping = %v", old)
	}
}

func TestCliqueDetection(t *testing.T) {
	k5 := complete(5)
	for k := 1; k <= 5; k++ {
		if !k5.HasClique(k) {
			t.Fatalf("K5 must contain a %d-clique", k)
		}
	}
	if k5.HasClique(6) {
		t.Fatal("K5 must not contain a 6-clique")
	}
	p := path(6)
	if !p.HasClique(2) || p.HasClique(3) {
		t.Fatal("path clique detection wrong")
	}
	if !New(3).HasClique(1) || New(3).HasClique(2) {
		t.Fatal("empty-graph clique detection wrong")
	}
	if !New(0).HasClique(0) {
		t.Fatal("0-clique always exists")
	}
}

func TestCountCliques(t *testing.T) {
	k5 := complete(5)
	// C(5,3) = 10 triangles.
	if got := k5.CountCliques(3); got.Cmp(big.NewInt(10)) != 0 {
		t.Fatalf("K5 triangles = %v, want 10", got)
	}
	if got := k5.CountCliques(5); got.Cmp(big.NewInt(1)) != 0 {
		t.Fatalf("K5 5-cliques = %v, want 1", got)
	}
	if got := k5.CountCliques(1); got.Cmp(big.NewInt(5)) != 0 {
		t.Fatalf("K5 1-cliques = %v", got)
	}
	if got := k5.CountCliques(0); got.Cmp(big.NewInt(1)) != 0 {
		t.Fatalf("0-cliques = %v, want 1", got)
	}
	p := path(10)
	if got := p.CountCliques(2); got.Cmp(big.NewInt(9)) != 0 {
		t.Fatalf("path edges = %v, want 9", got)
	}
	if got := p.CountCliques(3); got.Sign() != 0 {
		t.Fatalf("path triangles = %v, want 0", got)
	}
}

func TestIsCliqueAddClique(t *testing.T) {
	g := New(5)
	g.AddClique([]int{0, 2, 4})
	if !g.IsClique([]int{0, 2, 4}) {
		t.Fatal("AddClique failed")
	}
	if g.IsClique([]int{0, 1, 2}) {
		t.Fatal("IsClique false positive")
	}
	if g.NumEdges() != 3 {
		t.Fatalf("edges = %d", g.NumEdges())
	}
}

func TestCloneIndependent(t *testing.T) {
	g := path(3)
	c := g.Clone()
	c.AddEdge(0, 2)
	if g.HasEdge(0, 2) {
		t.Fatal("clone not independent")
	}
}

// Property: #2-cliques equals edge count; HasClique(k) agrees with
// CountCliques(k) > 0, on random graphs.
func TestCliqueCountProperties(t *testing.T) {
	f := func(n uint8, seed int64) bool {
		size := int(n%8) + 2
		g := New(size)
		// Deterministic pseudo-random edges from seed.
		s := seed
		for i := 0; i < size; i++ {
			for j := i + 1; j < size; j++ {
				s = s*6364136223846793005 + 1442695040888963407
				if s%3 == 0 {
					g.AddEdge(i, j)
				}
			}
		}
		if g.CountCliques(2).Cmp(big.NewInt(int64(g.NumEdges()))) != 0 {
			return false
		}
		for k := 2; k <= 4; k++ {
			if g.HasClique(k) != (g.CountCliques(k).Sign() > 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}
