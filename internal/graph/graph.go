package graph

import (
	"fmt"
	"math/big"
	"sort"
)

// Graph is a simple undirected graph on vertices 0..n-1.
type Graph struct {
	n   int
	adj []map[int]bool
}

// New returns an empty graph on n vertices.
func New(n int) *Graph {
	g := &Graph{n: n, adj: make([]map[int]bool, n)}
	for i := range g.adj {
		g.adj[i] = make(map[int]bool)
	}
	return g
}

// N returns the number of vertices.
func (g *Graph) N() int { return g.n }

// AddEdge adds the undirected edge {u,v}; self-loops are ignored.
func (g *Graph) AddEdge(u, v int) {
	if u == v || u < 0 || v < 0 || u >= g.n || v >= g.n {
		return
	}
	g.adj[u][v] = true
	g.adj[v][u] = true
}

// HasEdge reports whether {u,v} is an edge.
func (g *Graph) HasEdge(u, v int) bool {
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		return false
	}
	return g.adj[u][v]
}

// Degree returns the degree of v.
func (g *Graph) Degree(v int) int { return len(g.adj[v]) }

// Neighbors returns the sorted neighbor list of v.
func (g *Graph) Neighbors(v int) []int {
	out := make([]int, 0, len(g.adj[v]))
	for u := range g.adj[v] {
		out = append(out, u)
	}
	sort.Ints(out)
	return out
}

// NumEdges returns the number of edges.
func (g *Graph) NumEdges() int {
	m := 0
	for _, a := range g.adj {
		m += len(a)
	}
	return m / 2
}

// Clone returns a deep copy.
func (g *Graph) Clone() *Graph {
	c := New(g.n)
	for v, a := range g.adj {
		for u := range a {
			c.adj[v][u] = true
		}
	}
	return c
}

// Subgraph returns the induced subgraph on the given vertices together
// with the old-index list (new vertex i corresponds to verts[i]).
func (g *Graph) Subgraph(verts []int) (*Graph, []int) {
	vs := append([]int(nil), verts...)
	sort.Ints(vs)
	pos := make(map[int]int, len(vs))
	for i, v := range vs {
		pos[v] = i
	}
	sub := New(len(vs))
	for i, v := range vs {
		for u := range g.adj[v] {
			if j, ok := pos[u]; ok {
				sub.AddEdge(i, j)
			}
		}
	}
	return sub, vs
}

// Components returns the connected components as sorted vertex lists,
// ordered by smallest vertex.
func (g *Graph) Components() [][]int {
	seen := make([]bool, g.n)
	var comps [][]int
	for s := 0; s < g.n; s++ {
		if seen[s] {
			continue
		}
		var comp []int
		stack := []int{s}
		seen[s] = true
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			comp = append(comp, v)
			for u := range g.adj[v] {
				if !seen[u] {
					seen[u] = true
					stack = append(stack, u)
				}
			}
		}
		sort.Ints(comp)
		comps = append(comps, comp)
	}
	return comps
}

// IsConnected reports whether the graph is connected (true for n ≤ 1).
func (g *Graph) IsConnected() bool {
	return g.n <= 1 || len(g.Components()) == 1
}

// IsClique reports whether the given vertices are pairwise adjacent.
func (g *Graph) IsClique(verts []int) bool {
	for i := 0; i < len(verts); i++ {
		for j := i + 1; j < len(verts); j++ {
			if !g.HasEdge(verts[i], verts[j]) {
				return false
			}
		}
	}
	return true
}

// AddClique adds all edges among the given vertices.
func (g *Graph) AddClique(verts []int) {
	for i := 0; i < len(verts); i++ {
		for j := i + 1; j < len(verts); j++ {
			g.AddEdge(verts[i], verts[j])
		}
	}
}

// HasClique reports whether the graph contains a clique of size k
// (the p-Clique problem).  Degree-ordered backtracking with pruning.
func (g *Graph) HasClique(k int) bool {
	if k <= 0 {
		return true
	}
	if k == 1 {
		return g.n >= 1
	}
	order := g.degeneracyOrder()
	cur := make([]int, 0, k)
	var rec func(cands []int) bool
	rec = func(cands []int) bool {
		if len(cur) == k {
			return true
		}
		if len(cur)+len(cands) < k {
			return false
		}
		for i, v := range cands {
			if len(cur)+(len(cands)-i) < k {
				return false
			}
			var next []int
			for _, u := range cands[i+1:] {
				if g.adj[v][u] {
					next = append(next, u)
				}
			}
			cur = append(cur, v)
			if rec(next) {
				return true
			}
			cur = cur[:len(cur)-1]
		}
		return false
	}
	return rec(order)
}

// CountCliques returns the number of k-cliques (unordered) in the graph:
// the p-#Clique problem.
func (g *Graph) CountCliques(k int) *big.Int {
	total := new(big.Int)
	if k < 0 {
		return total
	}
	if k == 0 {
		return total.SetInt64(1)
	}
	if k == 1 {
		return total.SetInt64(int64(g.n))
	}
	order := g.degeneracyOrder()
	var rec func(cands []int, depth int)
	rec = func(cands []int, depth int) {
		if depth == k {
			total.Add(total, big.NewInt(1))
			return
		}
		for i, v := range cands {
			if depth+(len(cands)-i) < k {
				return
			}
			var next []int
			for _, u := range cands[i+1:] {
				if g.adj[v][u] {
					next = append(next, u)
				}
			}
			rec(next, depth+1)
		}
	}
	// Seed with each vertex in order; cands restricted to later neighbors.
	pos := make([]int, g.n)
	for i, v := range order {
		pos[v] = i
	}
	for i, v := range order {
		var cands []int
		for _, u := range order[i+1:] {
			if g.adj[v][u] {
				cands = append(cands, u)
			}
		}
		rec(cands, 1)
		_ = i
	}
	return total
}

// degeneracyOrder returns a vertex order by repeatedly removing a
// minimum-degree vertex; it bounds the candidate sets during clique search.
func (g *Graph) degeneracyOrder() []int {
	deg := make([]int, g.n)
	removed := make([]bool, g.n)
	for v := 0; v < g.n; v++ {
		deg[v] = len(g.adj[v])
	}
	order := make([]int, 0, g.n)
	for len(order) < g.n {
		best, bestDeg := -1, g.n+1
		for v := 0; v < g.n; v++ {
			if !removed[v] && deg[v] < bestDeg {
				best, bestDeg = v, deg[v]
			}
		}
		removed[best] = true
		order = append(order, best)
		for u := range g.adj[best] {
			if !removed[u] {
				deg[u]--
			}
		}
	}
	return order
}

// String renders the graph as an edge list.
func (g *Graph) String() string {
	s := fmt.Sprintf("graph(n=%d;", g.n)
	for v := 0; v < g.n; v++ {
		for _, u := range g.Neighbors(v) {
			if u > v {
				s += fmt.Sprintf(" %d-%d", v, u)
			}
		}
	}
	return s + ")"
}
