// Package graph provides simple undirected graphs and the graph problems
// the paper's classification hinges on: connected components (formula
// components, Section 2.1), and the clique decision and counting problems
// p-Clique and p-#Clique that anchor cases (2) and (3) of the trichotomy.
package graph
