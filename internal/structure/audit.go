package structure

import "fmt"

// Audit verifies the structure's internal invariants end to end and
// returns the first violation found.  It exists for boot recovery: a
// structure rebuilt from a snapshot or a WAL replay must be
// indistinguishable from one grown in memory, and Audit is the proof.
//
// Checked invariants:
//
//   - the mutation version equals the number of effective mutations,
//     which for a structure grown purely through AddElem/AddTuple (the
//     only mutators) is exactly Size() + NumTuples();
//   - the element index is a bijection between names and [0, Size());
//   - every relation's columns have equal length (its Len), every
//     stored value indexes a live element, the dedup set's cardinality
//     matches, and the per-position posting lists partition exactly the
//     row ids [0, Len()) — the incremental bitmaps agree with the flat
//     columns they index.
func (s *Structure) Audit() error {
	if got, want := s.version, uint64(s.Size()+s.NumTuples()); got != want {
		return fmt.Errorf("structure: version %d, but %d elements + %d tuples imply %d",
			got, s.Size(), s.NumTuples(), want)
	}
	if len(s.index) != len(s.elems) {
		return fmt.Errorf("structure: %d elements but %d index entries", len(s.elems), len(s.index))
	}
	for i, name := range s.elems {
		if j, ok := s.index[name]; !ok || j != i {
			return fmt.Errorf("structure: element %q at %d indexed as %d", name, i, j)
		}
	}
	for _, rs := range s.sig.rels {
		r := s.rels[rs.Name]
		if r == nil {
			return fmt.Errorf("structure: relation %s missing its store", rs.Name)
		}
		n := r.Len()
		for p, col := range r.cols {
			if len(col) != n {
				return fmt.Errorf("structure: %s column %d has %d rows, want %d", rs.Name, p, len(col), n)
			}
			for row, v := range col {
				if int(v) < 0 || int(v) >= len(s.elems) {
					return fmt.Errorf("structure: %s[%d][%d] = %d out of universe", rs.Name, p, row, v)
				}
			}
		}
		if r.set.Len() != n {
			return fmt.Errorf("structure: %s dedup set holds %d keys for %d rows", rs.Name, r.set.Len(), n)
		}
		for p := range r.cols {
			covered := 0
			for v, bm := range r.posts[p] {
				ok := true
				bm.ForEach(func(row int32) bool {
					if int(row) >= n || r.cols[p][row] != v {
						ok = false
						return false
					}
					return true
				})
				if !ok {
					return fmt.Errorf("structure: %s posting list (pos %d, value %d) disagrees with column", rs.Name, p, v)
				}
				covered += bm.Len()
			}
			if covered != n {
				return fmt.Errorf("structure: %s position %d posting lists cover %d of %d rows", rs.Name, p, covered, n)
			}
		}
	}
	return nil
}
