package structure

import (
	"strings"
	"testing"
)

func TestWriteFactsRoundTripShape(t *testing.T) {
	s := New(twoRelSig())
	s.EnsureElem("isolated")
	_ = s.AddFact("E", "a", "b")
	_ = s.AddFact("F", "a")
	out, err := s.FactsString()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"universe isolated, a, b.", "E(a,b).", "F(a)."} {
		if !strings.Contains(out, want) {
			t.Fatalf("serialization missing %q:\n%s", want, out)
		}
	}
}

func TestWriteFactsRejectsFancyNames(t *testing.T) {
	s := New(edgeSig())
	_ = s.AddFact("E", "(a,b)", "c")
	if _, err := s.FactsString(); err == nil {
		t.Fatal("non-identifier element names should be rejected")
	}
}

func TestNormalizedSerializable(t *testing.T) {
	a := New(edgeSig())
	_ = a.AddFact("E", "x", "y")
	b := New(edgeSig())
	_ = b.AddFact("E", "u", "v")
	prod, err := Product(a, b) // product names contain parens/commas
	if err != nil {
		t.Fatal(err)
	}
	if _, err := prod.FactsString(); err == nil {
		t.Fatal("product names should not serialize directly")
	}
	norm := prod.Normalized()
	out, err := norm.FactsString()
	if err != nil {
		t.Fatalf("normalized structure should serialize: %v", err)
	}
	if norm.Size() != prod.Size() || len(norm.Tuples("E")) != len(prod.Tuples("E")) {
		t.Fatal("Normalized changed the structure")
	}
	if !strings.Contains(out, "universe e0") {
		t.Fatalf("unexpected serialization:\n%s", out)
	}
}
