package structure

import (
	"fmt"
	"testing"
)

func edgeCSig(t *testing.T) *Signature {
	t.Helper()
	sig, err := NewSignature(RelSym{Name: "E", Arity: 2}, RelSym{Name: "C", Arity: 1})
	if err != nil {
		t.Fatal(err)
	}
	return sig
}

func TestSnapshotDeltaView(t *testing.T) {
	s := New(edgeCSig(t))
	for i := 0; i < 4; i++ {
		if _, err := s.AddElem(fmt.Sprintf("v%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	mustAdd := func(rel string, tup ...int) {
		t.Helper()
		if err := s.AddTuple(rel, tup...); err != nil {
			t.Fatal(err)
		}
	}
	mustAdd("E", 0, 1)
	mustAdd("E", 1, 2)
	mustAdd("C", 2)

	snap := s.Snapshot()
	if snap.Version != s.Version() || snap.Elems != 4 {
		t.Fatalf("snapshot = %+v, want version %d, 4 elems", snap, s.Version())
	}

	// Appends after the snapshot: one duplicate (invisible in the delta),
	// two new tuples, one new element.
	mustAdd("E", 0, 1) // duplicate
	mustAdd("E", 2, 3)
	s.EnsureElem("v4")
	mustAdd("E", 3, 4)

	dv, ok := s.DeltaSince(snap)
	if !ok {
		t.Fatal("DeltaSince rejected a valid snapshot")
	}
	if dv.OldRows("E") != 2 || dv.NewRows("E") != 2 {
		t.Fatalf("E delta = old %d new %d, want old 2 new 2", dv.OldRows("E"), dv.NewRows("E"))
	}
	if dv.NewRows("C") != 0 {
		t.Fatalf("C delta = %d new rows, want 0", dv.NewRows("C"))
	}
	if dv.TuplesAdded() != 2 || dv.ElemsAdded() != 1 {
		t.Fatalf("delta totals = %d tuples, %d elems, want 2, 1", dv.TuplesAdded(), dv.ElemsAdded())
	}
	var got [][]int
	dv.ForEachNewTuple("E", func(tu []int) bool {
		got = append(got, append([]int(nil), tu...))
		return true
	})
	want := [][]int{{2, 3}, {3, 4}}
	if len(got) != len(want) {
		t.Fatalf("delta tuples = %v, want %v", got, want)
	}
	for i := range want {
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("delta tuples = %v, want %v", got, want)
			}
		}
	}
}

func TestDeltaSinceRejectsForeignSnapshot(t *testing.T) {
	s := New(edgeCSig(t))
	s.EnsureElem("a")
	if err := s.AddTuple("E", 0, 0); err != nil {
		t.Fatal(err)
	}
	// A snapshot "from the future" (row counts beyond the current
	// extent) cannot be from this structure's history.
	bad := s.Snapshot()
	bad.Rows[0] += 5
	if _, ok := s.DeltaSince(bad); ok {
		t.Fatal("DeltaSince accepted a snapshot with impossible row counts")
	}
	wrongWidth := Snapshot{Version: 0, Elems: 0, Rows: []int{0}}
	if _, ok := s.DeltaSince(wrongWidth); ok {
		t.Fatal("DeltaSince accepted a snapshot with the wrong relation count")
	}
}

// TestDuplicateAppendKeepsVersion pins the memo-invalidation contract of
// Version(): re-adding existing tuples and elements is a no-op and must
// not bump the version, so a fully-duplicate append batch never
// invalidates sessions or memoized counts.
func TestDuplicateAppendKeepsVersion(t *testing.T) {
	s := New(edgeCSig(t))
	s.EnsureElem("a")
	s.EnsureElem("b")
	if err := s.AddTuple("E", 0, 1); err != nil {
		t.Fatal(err)
	}
	v := s.Version()
	if err := s.AddTuple("E", 0, 1); err != nil {
		t.Fatal(err)
	}
	s.EnsureElem("a")
	if err := s.AddFact("E", "a", "b"); err != nil {
		t.Fatal(err)
	}
	if s.Version() != v {
		t.Fatalf("duplicate appends bumped the version: %d -> %d", v, s.Version())
	}
	if err := s.AddTuple("E", 1, 0); err != nil {
		t.Fatal(err)
	}
	if s.Version() == v {
		t.Fatal("a genuinely new tuple must bump the version")
	}
}

func TestForEachTupleInRanges(t *testing.T) {
	s := New(edgeCSig(t))
	for i := 0; i < 5; i++ {
		s.EnsureElem(fmt.Sprintf("v%d", i))
	}
	for i := 0; i < 4; i++ {
		if err := s.AddTuple("E", i, i+1); err != nil {
			t.Fatal(err)
		}
	}
	r := s.Rel("E")
	count := func(lo, hi int) int {
		n := 0
		r.ForEachTupleIn(lo, hi, func([]int) bool { n++; return true })
		return n
	}
	if got := count(0, r.Len()); got != 4 {
		t.Fatalf("full range visited %d rows, want 4", got)
	}
	if got := count(2, r.Len()); got != 2 {
		t.Fatalf("suffix range visited %d rows, want 2", got)
	}
	if got := count(3, 100); got != 1 {
		t.Fatalf("clamped range visited %d rows, want 1", got)
	}
	if got := count(4, 2); got != 0 {
		t.Fatalf("empty range visited %d rows, want 0", got)
	}
}
