package structure

import (
	"math/rand"
	"testing"
)

// refSet is the reference model the bitmap is checked against.
type refSet map[int32]bool

func refAndCard(a, b refSet) int {
	n := 0
	for v := range a {
		if b[v] {
			n++
		}
	}
	return n
}

// buildBoth inserts rows into a Bitmap and the reference model.
func buildBoth(rows []int32) (*Bitmap, refSet) {
	bm, ref := &Bitmap{}, refSet{}
	for _, r := range rows {
		added := bm.Add(r)
		if added == ref[r] {
			panic("Add novelty disagrees with reference")
		}
		ref[r] = true
	}
	return bm, ref
}

// containerSizes are cardinalities straddling the array↔bitmap
// promotion threshold, plus small and word-boundary sizes.
var containerSizes = []int{0, 1, 2, 63, 64, 65, arrayContainerCap - 1, arrayContainerCap, arrayContainerCap + 1, 3 * arrayContainerCap}

func TestBitmapContainerBoundarySizes(t *testing.T) {
	for _, n := range containerSizes {
		rows := make([]int32, n)
		for i := range rows {
			rows[i] = int32(i * 3) // spread within one chunk for n ≤ 21845, beyond for larger
		}
		bm, ref := buildBoth(rows)
		if bm.Len() != len(ref) {
			t.Fatalf("n=%d: Len %d != %d", n, bm.Len(), len(ref))
		}
		// Promotion: a single-chunk container at or past the threshold
		// must be in bitmap form; below it, array form.
		if n > 0 && n < arrayContainerCap && int32(3*(n-1)) < containerSpan {
			if bm.ctrs[0].words != nil {
				t.Fatalf("n=%d: container promoted below threshold", n)
			}
		}
		got := 0
		prev := int32(-1)
		bm.ForEach(func(r int32) bool {
			if r <= prev {
				t.Fatalf("n=%d: ForEach out of order (%d after %d)", n, r, prev)
			}
			prev = r
			if !ref[r] {
				t.Fatalf("n=%d: ForEach visited non-member %d", n, r)
			}
			got++
			return true
		})
		if got != len(ref) {
			t.Fatalf("n=%d: ForEach visited %d members, want %d", n, got, len(ref))
		}
		for _, r := range rows {
			if !bm.Contains(r) {
				t.Fatalf("n=%d: Contains(%d) = false", n, r)
			}
		}
		if bm.Contains(int32(3*n + 1)) {
			t.Fatalf("n=%d: Contains reported non-member", n)
		}
	}
}

func TestBitmapPromotionAtThreshold(t *testing.T) {
	bm := &Bitmap{}
	for i := 0; i < arrayContainerCap-1; i++ {
		bm.Add(int32(i))
	}
	if bm.ctrs[0].words != nil {
		t.Fatal("container promoted one below the threshold")
	}
	bm.Add(int32(arrayContainerCap - 1))
	if bm.ctrs[0].words == nil {
		t.Fatal("container not promoted at the threshold")
	}
	if bm.Len() != arrayContainerCap {
		t.Fatalf("Len %d after promotion, want %d", bm.Len(), arrayContainerCap)
	}
	for i := 0; i < arrayContainerCap; i++ {
		if !bm.Contains(int32(i)) {
			t.Fatalf("member %d lost across promotion", i)
		}
	}
}

// And results must re-choose container form: intersecting two dense
// (bitmap-form) chunks down to a sparse result demotes to array form.
func TestBitmapAndDemotesSparseResult(t *testing.T) {
	a, b := &Bitmap{}, &Bitmap{}
	for i := 0; i < 2*arrayContainerCap; i++ {
		a.Add(int32(2 * i)) // evens
		b.Add(int32(3 * i)) // multiples of 3
	}
	if a.ctrs[0].words == nil || b.ctrs[0].words == nil {
		t.Fatal("inputs expected in bitmap form")
	}
	got := a.And(b)
	want := 0
	for i := 0; i < 4*arrayContainerCap; i += 6 { // multiples of 6 in [0, 4·cap)
		if !got.Contains(int32(i)) {
			t.Fatalf("And lost member %d", i)
		}
		want++
	}
	if got.Len() != want {
		t.Fatalf("And card %d, want %d", got.Len(), want)
	}
	if got.ctrs[0].words != nil && got.ctrs[0].card() < arrayContainerCap {
		t.Fatal("sparse And result not demoted to array form")
	}
	if got.Len() != a.AndCard(b) || got.Len() != b.AndCard(a) {
		t.Fatal("AndCard disagrees with And")
	}
}

func TestBitmapRandomDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 30; trial++ {
		// Mix densities and chunk spreads, including cross-chunk rows
		// and out-of-order inserts.
		span := int32(1 << uint(10+rng.Intn(10))) // up to ~1M
		na, nb := rng.Intn(5000), rng.Intn(5000)
		rowsA := make([]int32, na)
		rowsB := make([]int32, nb)
		for i := range rowsA {
			rowsA[i] = rng.Int31n(span)
		}
		for i := range rowsB {
			rowsB[i] = rng.Int31n(span)
		}
		a, refA := buildBoth(rowsA)
		b, refB := buildBoth(rowsB)
		if a.Len() != len(refA) || b.Len() != len(refB) {
			t.Fatalf("trial %d: Len mismatch", trial)
		}
		wantCard := refAndCard(refA, refB)
		if got := a.AndCard(b); got != wantCard {
			t.Fatalf("trial %d: AndCard %d, want %d", trial, got, wantCard)
		}
		inter := a.And(b)
		if inter.Len() != wantCard {
			t.Fatalf("trial %d: And card %d, want %d", trial, inter.Len(), wantCard)
		}
		inter.ForEach(func(r int32) bool {
			if !refA[r] || !refB[r] {
				t.Fatalf("trial %d: And contains non-member %d", trial, r)
			}
			return true
		})
		// Union via words equals the reference union.
		words := make([]uint64, (span+63)/64)
		a.UnionIntoWords(words)
		b.UnionIntoWords(words)
		got := 0
		for _, w := range words {
			for w != 0 {
				w &= w - 1
				got++
			}
		}
		union := len(refA) + len(refB) - wantCard
		if got != union {
			t.Fatalf("trial %d: word union card %d, want %d", trial, got, union)
		}
		// Clone shares nothing.
		cl := a.clone()
		for r := range refB {
			cl.Add(r)
		}
		if a.Len() != len(refA) {
			t.Fatalf("trial %d: clone mutation leaked into original", trial)
		}
	}
}
