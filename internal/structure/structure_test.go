package structure

import (
	"math/big"
	"testing"
	"testing/quick"
)

func edgeSig() *Signature {
	return MustSignature(RelSym{Name: "E", Arity: 2})
}

func twoRelSig() *Signature {
	return MustSignature(RelSym{Name: "E", Arity: 2}, RelSym{Name: "F", Arity: 1})
}

func TestSignatureBasics(t *testing.T) {
	s := twoRelSig()
	if got := s.NumRels(); got != 2 {
		t.Fatalf("NumRels = %d, want 2", got)
	}
	if ar, ok := s.Arity("E"); !ok || ar != 2 {
		t.Fatalf("Arity(E) = %d,%v", ar, ok)
	}
	if _, ok := s.Arity("G"); ok {
		t.Fatal("Arity(G) should not exist")
	}
	if s.MaxArity() != 2 {
		t.Fatalf("MaxArity = %d", s.MaxArity())
	}
	if s.String() != "{E/2, F/1}" {
		t.Fatalf("String = %q", s.String())
	}
}

func TestSignatureErrors(t *testing.T) {
	if _, err := NewSignature(RelSym{Name: "E", Arity: 2}, RelSym{Name: "E", Arity: 2}); err == nil {
		t.Fatal("duplicate relation should error")
	}
	if _, err := NewSignature(RelSym{Name: "", Arity: 2}); err == nil {
		t.Fatal("empty name should error")
	}
	if _, err := NewSignature(RelSym{Name: "E", Arity: 0}); err == nil {
		t.Fatal("zero arity should error")
	}
}

func TestSignatureEqualExtendRestrict(t *testing.T) {
	a := edgeSig()
	b := edgeSig()
	if !a.Equal(b) {
		t.Fatal("equal signatures not Equal")
	}
	c, err := a.Extend(RelSym{Name: "F", Arity: 1})
	if err != nil {
		t.Fatal(err)
	}
	if a.Equal(c) {
		t.Fatal("extended signature should differ")
	}
	d := c.Restrict(func(r RelSym) bool { return r.Name == "E" })
	if !d.Equal(a) {
		t.Fatal("restricted signature should equal original")
	}
	if _, err := a.Extend(RelSym{Name: "E", Arity: 2}); err == nil {
		t.Fatal("extending with clash should error")
	}
}

func TestStructureBasics(t *testing.T) {
	s := New(edgeSig())
	if err := s.Validate(); err == nil {
		t.Fatal("empty structure should fail validation")
	}
	a, err := s.AddElem("a")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.AddElem("a"); err == nil {
		t.Fatal("duplicate element should error")
	}
	b := s.EnsureElem("b")
	if s.EnsureElem("b") != b {
		t.Fatal("EnsureElem not idempotent")
	}
	if err := s.AddTuple("E", a, b); err != nil {
		t.Fatal(err)
	}
	if err := s.AddTuple("E", a, b); err != nil {
		t.Fatal("duplicate tuple should be silently ignored")
	}
	if len(s.Tuples("E")) != 1 {
		t.Fatalf("tuple count = %d", len(s.Tuples("E")))
	}
	if !s.HasTuple("E", []int{a, b}) || s.HasTuple("E", []int{b, a}) {
		t.Fatal("HasTuple wrong")
	}
	if err := s.AddTuple("E", a); err == nil {
		t.Fatal("arity mismatch should error")
	}
	if err := s.AddTuple("G", a, b); err == nil {
		t.Fatal("unknown relation should error")
	}
	if err := s.AddTuple("E", a, 99); err == nil {
		t.Fatal("out-of-range index should error")
	}
	if s.ElemIndex("zzz") != -1 {
		t.Fatal("missing element index should be -1")
	}
}

func TestTuplesWith(t *testing.T) {
	s := New(edgeSig())
	for _, f := range [][2]string{{"a", "b"}, {"a", "c"}, {"b", "c"}} {
		if err := s.AddFact("E", f[0], f[1]); err != nil {
			t.Fatal(err)
		}
	}
	a := s.ElemIndex("a")
	got := s.TuplesWith("E", 0, a)
	if len(got) != 2 {
		t.Fatalf("TuplesWith(E,0,a) = %d tuples, want 2", len(got))
	}
	if len(s.TuplesWith("E", 1, a)) != 0 {
		t.Fatal("TuplesWith(E,1,a) should be empty")
	}
	// Index must refresh after adding tuples.
	if err := s.AddFact("E", "c", "a"); err != nil {
		t.Fatal(err)
	}
	if len(s.TuplesWith("E", 1, a)) != 1 {
		t.Fatal("TuplesWith stale after AddFact")
	}
}

func TestCloneIndependence(t *testing.T) {
	s := New(edgeSig())
	_ = s.AddFact("E", "a", "b")
	c := s.Clone()
	_ = c.AddFact("E", "b", "a")
	if len(s.Tuples("E")) != 1 || len(c.Tuples("E")) != 2 {
		t.Fatal("clone not independent")
	}
}

func TestInduced(t *testing.T) {
	s := New(edgeSig())
	_ = s.AddFact("E", "a", "b")
	_ = s.AddFact("E", "b", "c")
	sub, old2new := s.Induced([]int{s.ElemIndex("a"), s.ElemIndex("b")})
	if sub.Size() != 2 {
		t.Fatalf("induced size = %d", sub.Size())
	}
	if len(sub.Tuples("E")) != 1 {
		t.Fatalf("induced tuples = %d, want 1", len(sub.Tuples("E")))
	}
	if old2new[s.ElemIndex("c")] != -1 {
		t.Fatal("dropped element should map to -1")
	}
	if sub.ElemName(old2new[s.ElemIndex("b")]) != "b" {
		t.Fatal("name not preserved")
	}
}

func TestUnitStructure(t *testing.T) {
	u := Unit(twoRelSig())
	if u.Size() != 1 {
		t.Fatalf("unit size = %d", u.Size())
	}
	if !u.IsAllLoop(0) || !u.HasAllLoopElem() {
		t.Fatal("unit element should be all-loop")
	}
}

func TestProductCountsAndLoops(t *testing.T) {
	sig := edgeSig()
	a := New(sig)
	_ = a.AddFact("E", "0", "1")
	_ = a.AddFact("E", "1", "0")
	b := New(sig)
	_ = b.AddFact("E", "x", "y")
	p, err := Product(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if p.Size() != a.Size()*b.Size() {
		t.Fatalf("product size = %d", p.Size())
	}
	if len(p.Tuples("E")) != len(a.Tuples("E"))*len(b.Tuples("E")) {
		t.Fatalf("product tuples = %d", len(p.Tuples("E")))
	}
	// Product with the unit is "the same" structure up to renaming.
	u, err := Product(a, Unit(sig))
	if err != nil {
		t.Fatal(err)
	}
	if u.Size() != a.Size() || len(u.Tuples("E")) != len(a.Tuples("E")) {
		t.Fatal("product with unit changed size")
	}
}

func TestPower(t *testing.T) {
	sig := edgeSig()
	a := New(sig)
	_ = a.AddFact("E", "0", "1")
	_ = a.AddFact("E", "1", "2")
	p0, err := Power(a, 0)
	if err != nil {
		t.Fatal(err)
	}
	if p0.Size() != 1 {
		t.Fatal("A^0 should be the unit")
	}
	p2, err := Power(a, 2)
	if err != nil {
		t.Fatal(err)
	}
	if p2.Size() != 9 || len(p2.Tuples("E")) != 4 {
		t.Fatalf("A^2: size=%d tuples=%d", p2.Size(), len(p2.Tuples("E")))
	}
	if got := PowerSize(a, 5); got.Cmp(big.NewInt(243)) != 0 {
		t.Fatalf("PowerSize = %v", got)
	}
	if _, err := Power(a, -1); err == nil {
		t.Fatal("negative power should error")
	}
}

func TestDisjointUnionCollisions(t *testing.T) {
	sig := edgeSig()
	a := New(sig)
	_ = a.AddFact("E", "x", "y")
	b := New(sig)
	_ = b.AddFact("E", "x", "y")
	u, err := DisjointUnion(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if u.Size() != 4 {
		t.Fatalf("union size = %d, want 4", u.Size())
	}
	if len(u.Tuples("E")) != 2 {
		t.Fatalf("union tuples = %d, want 2", len(u.Tuples("E")))
	}
}

func TestPadLoops(t *testing.T) {
	sig := twoRelSig()
	a := New(sig)
	_ = a.AddFact("E", "x", "y")
	padded := PadLoops(a, 3)
	if padded.Size() != 5 {
		t.Fatalf("padded size = %d, want 5", padded.Size())
	}
	loops := 0
	for e := 0; e < padded.Size(); e++ {
		if padded.IsAllLoop(e) {
			loops++
		}
	}
	if loops != 3 {
		t.Fatalf("all-loop elements = %d, want 3", loops)
	}
	if !padded.HasAllLoopElem() {
		t.Fatal("padded should have an all-loop element")
	}
	// Original untouched.
	if a.Size() != 2 {
		t.Fatal("PadLoops mutated its input")
	}
}

func TestProjectSignature(t *testing.T) {
	big := twoRelSig()
	s := New(big)
	_ = s.AddFact("E", "a", "b")
	_ = s.AddFact("F", "a")
	small := edgeSig()
	p, err := s.ProjectSignature(small)
	if err != nil {
		t.Fatal(err)
	}
	if p.Signature().Has("F") {
		t.Fatal("projection kept dropped relation")
	}
	if len(p.Tuples("E")) != 1 {
		t.Fatal("projection lost kept relation")
	}
}

func TestEqual(t *testing.T) {
	sig := edgeSig()
	a := New(sig)
	_ = a.AddFact("E", "x", "y")
	b := New(sig)
	_ = b.AddFact("E", "x", "y")
	if !Equal(a, b) {
		t.Fatal("identical structures not Equal")
	}
	_ = b.AddFact("E", "y", "x")
	if Equal(a, b) {
		t.Fatal("different structures Equal")
	}
}

func TestRenameElems(t *testing.T) {
	sig := edgeSig()
	a := New(sig)
	_ = a.AddFact("E", "x", "y")
	r, err := a.RenameElems([]string{"u", "v"})
	if err != nil {
		t.Fatal(err)
	}
	if r.ElemName(0) != "u" || r.ElemName(1) != "v" {
		t.Fatal("rename wrong")
	}
	if _, err := a.RenameElems([]string{"u"}); err == nil {
		t.Fatal("wrong-length rename should error")
	}
	if _, err := a.RenameElems([]string{"u", "u"}); err == nil {
		t.Fatal("duplicate rename should error")
	}
}

func TestFreshElem(t *testing.T) {
	s := New(edgeSig())
	_, _ = s.AddElem("x")
	i := s.FreshElem("x")
	j := s.FreshElem("x")
	if s.ElemName(i) == "x" || s.ElemName(i) == s.ElemName(j) {
		t.Fatal("FreshElem produced collisions")
	}
}

// Property: |product| sizes multiply and tuple counts multiply, for random
// small structures.
func TestProductSizesProperty(t *testing.T) {
	sig := edgeSig()
	f := func(n1, n2 uint8, e1, e2 uint8) bool {
		na := int(n1%4) + 1
		nb := int(n2%4) + 1
		a := New(sig)
		for i := 0; i < na; i++ {
			s := string(rune('a' + i))
			a.EnsureElem(s)
		}
		b := New(sig)
		for i := 0; i < nb; i++ {
			s := string(rune('a' + i))
			b.EnsureElem(s)
		}
		for k := 0; k < int(e1%7); k++ {
			_ = a.AddTuple("E", k%na, (k*3+1)%na)
		}
		for k := 0; k < int(e2%7); k++ {
			_ = b.AddTuple("E", k%nb, (k*5+2)%nb)
		}
		p, err := Product(a, b)
		if err != nil {
			return false
		}
		return p.Size() == na*nb &&
			len(p.Tuples("E")) == len(a.Tuples("E"))*len(b.Tuples("E"))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
