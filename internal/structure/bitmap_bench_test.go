package structure

import (
	"math/rand"
	"testing"
)

// sliceIntersectRef is the pre-bitmap reference: sorted []int32 posting
// lists intersected by merge, one element per step.  bench-compare pins
// the bitmap's word-at-a-time intersection against it.
func sliceIntersectRef(a, b []int32) int {
	n, i, j := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			n++
			i++
			j++
		}
	}
	return n
}

func benchRows(rng *rand.Rand, span, n int) ([]int32, *Bitmap) {
	seen := make(map[int32]bool, n)
	for len(seen) < n {
		seen[rng.Int31n(int32(span))] = true
	}
	rows := make([]int32, 0, n)
	for v := range seen {
		rows = append(rows, v)
	}
	// Sort for the slice reference (bitmaps sort internally).
	for i := 1; i < len(rows); i++ {
		for j := i; j > 0 && rows[j] < rows[j-1]; j-- {
			rows[j], rows[j-1] = rows[j-1], rows[j]
		}
	}
	bm := &Bitmap{}
	for _, r := range rows {
		bm.Add(r)
	}
	return rows, bm
}

func benchIntersect(b *testing.B, span, n int) (sa, sb []int32, ba, bb *Bitmap) {
	rng := rand.New(rand.NewSource(42))
	sa, ba = benchRows(rng, span, n)
	sb, bb = benchRows(rng, span, n)
	b.ReportAllocs()
	b.ResetTimer()
	return
}

// Dense: 32k of 64k rows — bitmap containers on both sides, 64 rows/op.
func BenchmarkIntersect_Bitmap_Dense(b *testing.B) {
	_, _, ba, bb := benchIntersect(b, 1<<16, 1<<15)
	for i := 0; i < b.N; i++ {
		ba.AndCard(bb)
	}
}

func BenchmarkIntersect_SliceRef_Dense(b *testing.B) {
	sa, sb, _, _ := benchIntersect(b, 1<<16, 1<<15)
	for i := 0; i < b.N; i++ {
		sliceIntersectRef(sa, sb)
	}
}

// Sparse: 2k rows spread over 1M — array containers, merge on both
// sides (the bitmap must not regress the sparse regime it demotes to).
func BenchmarkIntersect_Bitmap_Sparse(b *testing.B) {
	_, _, ba, bb := benchIntersect(b, 1<<20, 1<<11)
	for i := 0; i < b.N; i++ {
		ba.AndCard(bb)
	}
}

func BenchmarkIntersect_SliceRef_Sparse(b *testing.B) {
	sa, sb, _, _ := benchIntersect(b, 1<<20, 1<<11)
	for i := 0; i < b.N; i++ {
		sliceIntersectRef(sa, sb)
	}
}
