package structure

import (
	"testing"
)

// Large-structure store benchmarks: tuple ingestion (dedup path), indexed
// lookup interleaved with mutation (the incremental-maintenance case), and
// membership tests.  These exercise the storage layer that feeds both the
// hom solver and the engine's constraint-table materialization.

func benchSig() *Signature {
	return MustSignature(
		RelSym{Name: "E", Arity: 2},
		RelSym{Name: "T", Arity: 3},
	)
}

// benchEdges yields m deterministic pseudo-random edges over [0,n).
func benchEdges(n, m int) [][2]int {
	out := make([][2]int, 0, m)
	x := uint64(0x9e3779b97f4a7c15)
	for len(out) < m {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		out = append(out, [2]int{int(x % uint64(n)), int((x >> 20) % uint64(n))})
	}
	return out
}

func benchBase(n, m int) *Structure {
	s := New(benchSig())
	for i := 0; i < n; i++ {
		s.EnsureElem("e" + itoa(i))
	}
	for _, e := range benchEdges(n, m) {
		_ = s.AddTuple("E", e[0], e[1])
	}
	return s
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var buf [20]byte
	p := len(buf)
	for i > 0 {
		p--
		buf[p] = byte('0' + i%10)
		i /= 10
	}
	return string(buf[p:])
}

// BenchmarkStore_AddTuple_50k ingests 50k edges (with duplicates hitting
// the dedup set) into a 2000-element universe.
func BenchmarkStore_AddTuple_50k(b *testing.B) {
	const n, m = 2000, 50000
	edges := benchEdges(n, m)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := New(benchSig())
		for j := 0; j < n; j++ {
			s.EnsureElem("e" + itoa(j))
		}
		for _, e := range edges {
			_ = s.AddTuple("E", e[0], e[1])
		}
	}
}

// BenchmarkStore_LookupAfterMutation interleaves one tuple insertion with
// one indexed lookup: the pattern that defeats a rebuild-from-scratch
// positional index and rewards incremental posting-list maintenance.
func BenchmarkStore_LookupAfterMutation(b *testing.B) {
	const n, m = 400, 20000
	s := benchBase(n, m)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// A fresh arity-3 tuple each iteration (n^3 ≫ b.N combinations).
		_ = s.AddTuple("T", i%n, (i/n)%n, (i/(n*n))%n)
		total := 0
		for _, t := range s.TuplesWith("E", 0, i%n) {
			total += t[1]
		}
		_ = total
	}
}

// BenchmarkStore_TuplesWith_Hot measures repeated indexed lookups on an
// unchanging structure (allocation behaviour of the lookup itself).
func BenchmarkStore_TuplesWith_Hot(b *testing.B) {
	const n, m = 1000, 30000
	s := benchBase(n, m)
	s.TuplesWith("E", 0, 0) // warm the index
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		total := 0
		for _, t := range s.TuplesWith("E", 0, i%n) {
			total += t[1]
		}
		_ = total
	}
}

// BenchmarkStore_ForEachWith_Hot is the zero-alloc counterpart of
// BenchmarkStore_TuplesWith_Hot: posting-list iteration without
// materializing [][]int rows.
func BenchmarkStore_ForEachWith_Hot(b *testing.B) {
	const n, m = 1000, 30000
	s := benchBase(n, m)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		total := 0
		s.ForEachWith("E", 0, i%n, func(t []int) bool {
			total += t[1]
			return true
		})
		_ = total
	}
}

// BenchmarkStore_HasTuple_50k probes membership on a 50k-tuple relation.
func BenchmarkStore_HasTuple_50k(b *testing.B) {
	const n, m = 2000, 50000
	s := benchBase(n, m)
	probe := []int{0, 0}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		probe[0] = i % n
		probe[1] = (i * 7) % n
		_ = s.HasTuple("E", probe)
	}
}
