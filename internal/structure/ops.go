package structure

import (
	"fmt"
	"math/big"
	"strings"
)

// Unit returns the structure I_τ: a single element ι with, for every
// relation symbol R of arity k, the single tuple (ι,...,ι).  It is the unit
// of the direct product up to isomorphism, and every pp-formula has exactly
// one answer per liberal variable assignment on it.
func Unit(sig *Signature) *Structure {
	s := New(sig)
	i, _ := s.AddElem("ι")
	for _, r := range sig.Rels() {
		t := make([]int, r.Arity)
		for j := range t {
			t[j] = i
		}
		_ = s.AddTuple(r.Name, t...)
	}
	return s
}

// Product returns the direct (categorical) product A × B: universe A×B,
// with ((a1,b1),...,(ak,bk)) ∈ R iff (a1..ak) ∈ R^A and (b1..bk) ∈ R^B.
// The key property used throughout the paper: |ψ(A×B)| = |ψ(A)|·|ψ(B)|
// for every pp-formula ψ.
func Product(a, b *Structure) (*Structure, error) {
	if !a.sig.Equal(b.sig) {
		return nil, fmt.Errorf("structure: product over different signatures %v vs %v", a.sig, b.sig)
	}
	out := New(a.sig)
	pair := func(i, j int) int { return i*b.Size() + j }
	for i := 0; i < a.Size(); i++ {
		for j := 0; j < b.Size(); j++ {
			name := "(" + a.ElemName(i) + "," + b.ElemName(j) + ")"
			if out.HasElem(name) {
				name = fmt.Sprintf("(%s,%s)#%d", a.ElemName(i), b.ElemName(j), pair(i, j))
			}
			if _, err := out.AddElem(name); err != nil {
				return nil, err
			}
		}
	}
	for _, r := range a.sig.Rels() {
		ra, rb := a.Rel(r.Name), b.Rel(r.Name)
		na, nb := ra.Len(), rb.Len()
		u := make([]int, r.Arity)
		v := make([]int, r.Arity)
		t := make([]int, r.Arity)
		for i := 0; i < na; i++ {
			ra.Row(i, u)
			for j := 0; j < nb; j++ {
				rb.Row(j, v)
				for p := 0; p < r.Arity; p++ {
					t[p] = pair(u[p], v[p])
				}
				_ = out.AddTuple(r.Name, t...)
			}
		}
	}
	return out, nil
}

// Power returns A^k (k ≥ 0); A^0 is Unit(sig).
func Power(a *Structure, k int) (*Structure, error) {
	if k < 0 {
		return nil, fmt.Errorf("structure: negative power %d", k)
	}
	out := Unit(a.sig)
	for i := 0; i < k; i++ {
		var err error
		out, err = Product(out, a)
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// PowerSize returns |A|^k as a big integer without materializing the power.
func PowerSize(a *Structure, k int) *big.Int {
	return new(big.Int).Exp(big.NewInt(int64(a.Size())), big.NewInt(int64(k)), nil)
}

// DisjointUnion returns A ⊎ B.  Element names from B that collide with
// names from A are suffixed with primes until fresh.
func DisjointUnion(a, b *Structure) (*Structure, error) {
	if !a.sig.Equal(b.sig) {
		return nil, fmt.Errorf("structure: disjoint union over different signatures")
	}
	out := a.Clone()
	bShift := make([]int, b.Size())
	for j := 0; j < b.Size(); j++ {
		name := b.ElemName(j)
		for out.HasElem(name) {
			name += "'"
		}
		idx, _ := out.AddElem(name)
		bShift[j] = idx
	}
	for _, r := range b.sig.Rels() {
		nt := make([]int, r.Arity)
		b.ForEachTuple(r.Name, func(t []int) bool {
			for p, v := range t {
				nt[p] = bShift[v]
			}
			_ = out.AddTuple(r.Name, nt...)
			return true
		})
	}
	return out, nil
}

// DisjointUnionAll folds DisjointUnion over one or more structures.
func DisjointUnionAll(ss ...*Structure) (*Structure, error) {
	if len(ss) == 0 {
		return nil, fmt.Errorf("structure: disjoint union of nothing")
	}
	out := ss[0].Clone()
	for _, s := range ss[1:] {
		var err error
		out, err = DisjointUnion(out, s)
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// PadLoops returns B + kI: the disjoint union of b with k fresh all-loop
// elements (k copies of I_τ).  This is the padding used in the proofs of
// Theorem 5.9 and Lemma 5.13.
func PadLoops(b *Structure, k int) *Structure {
	out := b.Clone()
	for c := 0; c < k; c++ {
		e := out.FreshElem("ι" + itoaSub(c))
		for _, r := range out.sig.Rels() {
			t := make([]int, r.Arity)
			for j := range t {
				t[j] = e
			}
			_ = out.AddTuple(r.Name, t...)
		}
	}
	return out
}

func itoaSub(n int) string {
	const digits = "₀₁₂₃₄₅₆₇₈₉"
	if n == 0 {
		return "₀"
	}
	var b strings.Builder
	var rev []rune
	for n > 0 {
		rev = append(rev, []rune(digits)[n%10])
		n /= 10
	}
	for i := len(rev) - 1; i >= 0; i-- {
		b.WriteRune(rev[i])
	}
	return b.String()
}

// Equal reports whether two structures are identical (same signature, same
// element names in the same order, same tuple sets).  This is equality of
// presentations, not isomorphism.
func Equal(a, b *Structure) bool {
	if !a.sig.Equal(b.sig) || a.Size() != b.Size() {
		return false
	}
	for i := 0; i < a.Size(); i++ {
		if a.ElemName(i) != b.ElemName(i) {
			return false
		}
	}
	for _, r := range a.sig.Rels() {
		if a.Rel(r.Name).Len() != b.Rel(r.Name).Len() {
			return false
		}
		equal := true
		a.ForEachTuple(r.Name, func(t []int) bool {
			if !b.HasTuple(r.Name, t) {
				equal = false
			}
			return equal
		})
		if !equal {
			return false
		}
	}
	return true
}
