// Package structure implements finite relational structures over purely
// relational signatures, together with the structure algebra the paper
// relies on: direct products, powers, disjoint unions, the one-element
// all-loop structure I_τ, and B+kI padding.
//
// Universes are finite, non-empty sets of named elements.  Each relation
// is held in a columnar Relation store: flat []int32 columns, a
// packed-key tuple set for O(1) dedup/membership, and per-position
// posting lists maintained incrementally on insertion.  Posting lists
// are two-level roaring-style bitmaps (Bitmap): rows chunk by row>>16
// into sorted-uint16 array containers (sparse) or 1024-word bitmap
// containers (dense, promoted at 4096 entries), so membership is O(1),
// intersection (And/AndCard) runs 64 rows per machine word on dense
// chunks, and the hom solver unions lists straight into word-aligned
// candidate masks (UnionIntoWords).  Consumers
// iterate allocation-free with ForEachTuple/ForEachWith or access
// columns through Rel; the materializing [][]int accessors Tuples and
// TuplesWith are deprecated compatibility shims retained for the
// migration (FullScanCount counts their use).  Element order,
// relation-symbol order, and tuple insertion order are deterministic so
// that all algorithms built on top are reproducible.
//
// Concurrency discipline: a Structure is safe for any number of
// concurrent readers, but mutation (AddElem/AddTuple/AddFact) requires
// exclusive access — long-lived services guard each structure with a
// read/write lock (see internal/serve).  Every mutation bumps Version;
// snapshot consumers (engine sessions, plan caches) key on it to
// detect staleness without rehashing, which is what makes append →
// invalidate → recount work.
package structure
