package structure

import (
	"math/rand"
	"testing"
)

func relTestSig() *Signature {
	return MustSignature(
		RelSym{Name: "E", Arity: 2},
		RelSym{Name: "T", Arity: 3},
	)
}

func TestRelationColumnsAndPostings(t *testing.T) {
	s := New(relTestSig())
	for i := 0; i < 5; i++ {
		s.EnsureElem("e" + string(rune('0'+i)))
	}
	edges := [][2]int{{0, 1}, {1, 2}, {0, 2}, {2, 0}, {0, 1}} // last is a dup
	for _, e := range edges {
		if err := s.AddTuple("E", e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	r := s.Rel("E")
	if r.Len() != 4 {
		t.Fatalf("Len = %d, want 4 (dup ignored)", r.Len())
	}
	if got := r.PostingLen(0, 0); got != 2 {
		t.Fatalf("PostingLen(0,0) = %d, want 2", got)
	}
	if got := r.PostingLen(1, 2); got != 2 {
		t.Fatalf("PostingLen(1,2) = %d, want 2", got)
	}
	// Columns align with insertion order.
	if r.Value(2, 0) != 0 || r.Value(2, 1) != 2 {
		t.Fatalf("row 2 = (%d,%d), want (0,2)", r.Value(2, 0), r.Value(2, 1))
	}
	if !r.Contains([]int{2, 0}) || r.Contains([]int{1, 0}) {
		t.Fatal("Contains wrong")
	}
}

func TestPostingListsAreIncremental(t *testing.T) {
	s := New(relTestSig())
	for i := 0; i < 10; i++ {
		s.EnsureElem("e" + string(rune('0'+i)))
	}
	// Interleave mutations and indexed reads: every read must see all
	// prior inserts without a rebuild.
	for i := 0; i < 9; i++ {
		if err := s.AddTuple("E", 0, i); err != nil {
			t.Fatal(err)
		}
		n := 0
		s.ForEachWith("E", 0, 0, func(u []int) bool {
			if u[0] != 0 {
				t.Fatalf("ForEachWith yielded row with pos0 = %d", u[0])
			}
			n++
			return true
		})
		if n != i+1 {
			t.Fatalf("after %d inserts: ForEachWith saw %d rows", i+1, n)
		}
	}
}

func TestForEachWithMatchesTuplesWithShim(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	s := New(relTestSig())
	const n = 20
	for i := 0; i < n; i++ {
		s.EnsureElem("x" + string(rune('a'+i%26)) + string(rune('0'+i/26)))
	}
	for i := 0; i < 150; i++ {
		_ = s.AddTuple("T", rng.Intn(n), rng.Intn(n), rng.Intn(n))
	}
	for pos := 0; pos < 3; pos++ {
		for v := 0; v < n; v++ {
			want := s.TuplesWith("T", pos, v)
			var got [][]int
			s.ForEachWith("T", pos, v, func(u []int) bool {
				got = append(got, append([]int(nil), u...))
				return true
			})
			if len(got) != len(want) {
				t.Fatalf("pos %d val %d: ForEachWith %d rows, TuplesWith %d", pos, v, len(got), len(want))
			}
			for i := range got {
				for j := range got[i] {
					if got[i][j] != want[i][j] {
						t.Fatalf("pos %d val %d row %d differs: %v vs %v", pos, v, i, got[i], want[i])
					}
				}
			}
		}
	}
}

func TestTuplesShimCountsFullScans(t *testing.T) {
	s := New(relTestSig())
	s.EnsureElem("a")
	s.EnsureElem("b")
	_ = s.AddTuple("E", 0, 1)
	before := FullScanCount()
	_ = s.Tuples("E")
	_ = s.Tuples("E")
	if d := FullScanCount() - before; d != 2 {
		t.Fatalf("FullScanCount delta = %d, want 2", d)
	}
	before = FullScanCount()
	s.ForEachTuple("E", func([]int) bool { return true })
	s.ForEachWith("E", 0, 0, func([]int) bool { return true })
	if d := FullScanCount() - before; d != 0 {
		t.Fatalf("iterators bumped FullScanCount by %d, want 0", d)
	}
}

func TestTuplesShimSeesMutations(t *testing.T) {
	s := New(relTestSig())
	for i := 0; i < 4; i++ {
		s.EnsureElem("e" + string(rune('0'+i)))
	}
	_ = s.AddTuple("E", 0, 1)
	if got := len(s.Tuples("E")); got != 1 {
		t.Fatalf("len = %d, want 1", got)
	}
	_ = s.AddTuple("E", 1, 2)
	if got := len(s.Tuples("E")); got != 2 {
		t.Fatalf("after mutation: len = %d, want 2 (stale row cache?)", got)
	}
}

func TestTupleSetPackedAndSpill(t *testing.T) {
	ts := NewTupleSet(2) // 32 bits per value
	if !ts.Add([]int{1, 2}) || ts.Add([]int{1, 2}) {
		t.Fatal("packed dedup broken")
	}
	big := 1 << 40 // exceeds the 32-bit per-value budget: spill path
	if !ts.Add([]int{big, 0}) || ts.Add([]int{big, 0}) {
		t.Fatal("spill dedup broken")
	}
	if !ts.Contains([]int{1, 2}) || !ts.Contains([]int{big, 0}) || ts.Contains([]int{2, 1}) {
		t.Fatal("Contains wrong")
	}
	if ts.Len() != 2 {
		t.Fatalf("Len = %d, want 2", ts.Len())
	}
	// Wide tuples (width > 64) always take the spill path.
	wide := NewTupleSet(70)
	w := make([]int, 70)
	if !wide.Add(w) || wide.Add(w) {
		t.Fatal("wide dedup broken")
	}
	w[69] = 1
	if !wide.Add(w) {
		t.Fatal("wide distinct tuple rejected")
	}
}

func TestCloneIsDeep(t *testing.T) {
	s := New(relTestSig())
	for i := 0; i < 4; i++ {
		s.EnsureElem("e" + string(rune('0'+i)))
	}
	_ = s.AddTuple("E", 0, 1)
	c := s.Clone()
	_ = c.AddTuple("E", 1, 2)
	if s.Rel("E").Len() != 1 || c.Rel("E").Len() != 2 {
		t.Fatalf("clone not independent: orig %d, clone %d", s.Rel("E").Len(), c.Rel("E").Len())
	}
	if s.Rel("E").PostingLen(0, 1) != 0 || c.Rel("E").PostingLen(0, 1) != 1 {
		t.Fatal("clone postings not independent")
	}
	if !Equal(s.Clone(), s) {
		t.Fatal("clone not equal to original")
	}
}
