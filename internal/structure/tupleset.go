package structure

// TupleSet is a deduplicating set of fixed-width int tuples.  Tuples whose
// values fit the packed budget (64/width bits per value) are keyed as
// uint64 in an open-addressing table with no per-insert allocation;
// oversized values spill to a byte-string-keyed fallback map that is
// allocated lazily and, in practice, never.  It backs the per-relation
// dedup sets of the columnar store and the projection dedup of the
// engine's constraint materializer.
//
// The zero value is not usable; construct with NewTupleSet.  A TupleSet
// is not safe for concurrent mutation.
type TupleSet struct {
	width   int
	shift   uint     // bits per packed value; 0 disables packing (width > 64)
	slots   []uint64 // open addressing, linear probing; 0 = empty slot
	mask    uint64
	used    int                 // occupied slots (excludes the zero key)
	hasZero bool                // the all-zeros tuple, whose packed key is 0
	sk      map[string]struct{} // lazily allocated spill path
	n       int
}

// tsMix is the splitmix64 finalizer: a bijective scramble spreading
// packed keys (which concentrate in low bits) across the table.
func tsMix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// NewTupleSet returns an empty set of width-ary tuples.
func NewTupleSet(width int) *TupleSet {
	if width < 0 {
		width = 0
	}
	var shift uint
	if width > 0 && width <= 64 {
		shift = uint(64 / width)
	}
	return &TupleSet{width: width, shift: shift}
}

// NewTupleSetSized is NewTupleSet with capacity for n tuples reserved up
// front, so bulk insertion skips the doubling rehashes.  n is a hint; the
// set still grows past it.
func NewTupleSetSized(width, n int) *TupleSet {
	ts := NewTupleSet(width)
	if ts.shift > 0 && n > 0 {
		capN := 16
		for capN < 2*(n+1) {
			capN *= 2
		}
		ts.slots = make([]uint64, capN)
		ts.mask = uint64(capN - 1)
	}
	return ts
}

// Len returns the number of distinct tuples in the set.
func (ts *TupleSet) Len() int { return ts.n }

// pack returns the uint64 key of t, or ok=false when some value does not
// fit the per-value bit budget (or packing is disabled).
func (ts *TupleSet) pack(t []int) (uint64, bool) {
	if ts.shift == 0 {
		return 0, false
	}
	var k uint64
	for _, v := range t {
		if v < 0 || (ts.shift < 64 && uint64(v) >= 1<<ts.shift) {
			return 0, false
		}
		k = k<<ts.shift | uint64(v)
	}
	return k, true
}

// addPacked inserts packed key k, reporting whether it was absent.
// Load is kept at or below 1/2 so unsuccessful probes stay short.
func (ts *TupleSet) addPacked(k uint64) bool {
	if k == 0 {
		if ts.hasZero {
			return false
		}
		ts.hasZero = true
		return true
	}
	if 2*(ts.used+1) > len(ts.slots) {
		ts.growSlots()
	}
	h := tsMix(k) & ts.mask
	for {
		s := ts.slots[h]
		if s == 0 {
			ts.slots[h] = k
			ts.used++
			return true
		}
		if s == k {
			return false
		}
		h = (h + 1) & ts.mask
	}
}

func (ts *TupleSet) growSlots() {
	newCap := 2 * len(ts.slots)
	if newCap < 16 {
		newCap = 16
	}
	old := ts.slots
	ts.slots = make([]uint64, newCap)
	ts.mask = uint64(newCap - 1)
	for _, k := range old {
		if k == 0 {
			continue
		}
		h := tsMix(k) & ts.mask
		for ts.slots[h] != 0 {
			h = (h + 1) & ts.mask
		}
		ts.slots[h] = k
	}
}

// containsPacked reports whether packed key k is present.
func (ts *TupleSet) containsPacked(k uint64) bool {
	if k == 0 {
		return ts.hasZero
	}
	if len(ts.slots) == 0 {
		return false
	}
	h := tsMix(k) & ts.mask
	for {
		s := ts.slots[h]
		if s == 0 {
			return false
		}
		if s == k {
			return true
		}
		h = (h + 1) & ts.mask
	}
}

// TupleKey encodes vals as an exact byte-string map key, 8 bytes
// little-endian per value.  buf is reused scratch (pass nil to
// allocate); the returned string is always a fresh copy, as map keys
// must be.  This is the one shared int-vector key encoder — the tuple
// set spill path, the executor's wide-bag spill keys, answer dedup, and
// constraint-scheme identities all use it.
func TupleKey(vals []int, buf []byte) string {
	buf = buf[:0]
	for _, v := range vals {
		u := uint64(v)
		buf = append(buf, byte(u), byte(u>>8), byte(u>>16), byte(u>>24),
			byte(u>>32), byte(u>>40), byte(u>>48), byte(u>>56))
	}
	return string(buf)
}

// TupleKeyDecode inverts TupleKey into out (whose length selects how
// many values to decode).
func TupleKeyDecode(key string, out []int) {
	for i := range out {
		o := 8 * i
		out[i] = int(uint64(key[o]) | uint64(key[o+1])<<8 | uint64(key[o+2])<<16 | uint64(key[o+3])<<24 |
			uint64(key[o+4])<<32 | uint64(key[o+5])<<40 | uint64(key[o+6])<<48 | uint64(key[o+7])<<56)
	}
}

// Add inserts t and reports whether it was absent.  The empty tuple
// (width 0) is a single distinct value.
func (ts *TupleSet) Add(t []int) bool {
	if ts.width == 0 {
		if ts.n == 0 {
			ts.n = 1
			return true
		}
		return false
	}
	if k, ok := ts.pack(t); ok {
		if !ts.addPacked(k) {
			return false
		}
		ts.n++
		return true
	}
	if ts.sk == nil {
		ts.sk = make(map[string]struct{})
	}
	k := TupleKey(t, nil)
	if _, dup := ts.sk[k]; dup {
		return false
	}
	ts.sk[k] = struct{}{}
	ts.n++
	return true
}

// Contains reports whether t is in the set.
func (ts *TupleSet) Contains(t []int) bool {
	if ts.width == 0 {
		return ts.n > 0
	}
	if k, ok := ts.pack(t); ok {
		return ts.containsPacked(k)
	}
	if ts.sk == nil {
		return false
	}
	_, present := ts.sk[TupleKey(t, nil)]
	return present
}

// clone returns a deep copy of the set.
func (ts *TupleSet) clone() *TupleSet {
	c := &TupleSet{width: ts.width, shift: ts.shift, used: ts.used, hasZero: ts.hasZero, n: ts.n}
	if ts.slots != nil {
		c.slots = append([]uint64(nil), ts.slots...)
		c.mask = ts.mask
	}
	if ts.sk != nil {
		c.sk = make(map[string]struct{}, len(ts.sk))
		for k := range ts.sk {
			c.sk[k] = struct{}{}
		}
	}
	return c
}
