package structure

// TupleSet is a deduplicating set of fixed-width int tuples.  Tuples whose
// values fit the packed budget (64/width bits per value) are keyed as
// uint64 with no per-insert allocation; oversized values spill to a
// byte-string-keyed fallback map that is allocated lazily and, in
// practice, never.  It backs the per-relation dedup sets of the columnar
// store and the projection dedup of the engine's constraint
// materializer.
//
// The zero value is not usable; construct with NewTupleSet.  A TupleSet
// is not safe for concurrent mutation.
type TupleSet struct {
	width int
	shift uint // bits per packed value; 0 disables packing (width > 64)
	pk    map[uint64]struct{}
	sk    map[string]struct{} // lazily allocated spill path
	n     int
}

// NewTupleSet returns an empty set of width-ary tuples.
func NewTupleSet(width int) *TupleSet {
	if width < 0 {
		width = 0
	}
	var shift uint
	if width > 0 && width <= 64 {
		shift = uint(64 / width)
	}
	ts := &TupleSet{width: width, shift: shift}
	if shift > 0 {
		ts.pk = make(map[uint64]struct{})
	}
	return ts
}

// Len returns the number of distinct tuples in the set.
func (ts *TupleSet) Len() int { return ts.n }

// pack returns the uint64 key of t, or ok=false when some value does not
// fit the per-value bit budget (or packing is disabled).
func (ts *TupleSet) pack(t []int) (uint64, bool) {
	if ts.shift == 0 {
		return 0, false
	}
	var k uint64
	for _, v := range t {
		if v < 0 || (ts.shift < 64 && uint64(v) >= 1<<ts.shift) {
			return 0, false
		}
		k = k<<ts.shift | uint64(v)
	}
	return k, true
}

// TupleKey encodes vals as an exact byte-string map key, 8 bytes
// little-endian per value.  buf is reused scratch (pass nil to
// allocate); the returned string is always a fresh copy, as map keys
// must be.  This is the one shared int-vector key encoder — the tuple
// set spill path, the executor's wide-bag spill keys, answer dedup, and
// constraint-scheme identities all use it.
func TupleKey(vals []int, buf []byte) string {
	buf = buf[:0]
	for _, v := range vals {
		u := uint64(v)
		buf = append(buf, byte(u), byte(u>>8), byte(u>>16), byte(u>>24),
			byte(u>>32), byte(u>>40), byte(u>>48), byte(u>>56))
	}
	return string(buf)
}

// TupleKeyDecode inverts TupleKey into out (whose length selects how
// many values to decode).
func TupleKeyDecode(key string, out []int) {
	for i := range out {
		o := 8 * i
		out[i] = int(uint64(key[o]) | uint64(key[o+1])<<8 | uint64(key[o+2])<<16 | uint64(key[o+3])<<24 |
			uint64(key[o+4])<<32 | uint64(key[o+5])<<40 | uint64(key[o+6])<<48 | uint64(key[o+7])<<56)
	}
}

// Add inserts t and reports whether it was absent.  The empty tuple
// (width 0) is a single distinct value.
func (ts *TupleSet) Add(t []int) bool {
	if ts.width == 0 {
		if ts.n == 0 {
			ts.n = 1
			return true
		}
		return false
	}
	if k, ok := ts.pack(t); ok {
		if _, dup := ts.pk[k]; dup {
			return false
		}
		ts.pk[k] = struct{}{}
		ts.n++
		return true
	}
	if ts.sk == nil {
		ts.sk = make(map[string]struct{})
	}
	k := TupleKey(t, nil)
	if _, dup := ts.sk[k]; dup {
		return false
	}
	ts.sk[k] = struct{}{}
	ts.n++
	return true
}

// Contains reports whether t is in the set.
func (ts *TupleSet) Contains(t []int) bool {
	if ts.width == 0 {
		return ts.n > 0
	}
	if k, ok := ts.pack(t); ok {
		_, present := ts.pk[k]
		return present
	}
	if ts.sk == nil {
		return false
	}
	_, present := ts.sk[TupleKey(t, nil)]
	return present
}

// clone returns a deep copy of the set.
func (ts *TupleSet) clone() *TupleSet {
	c := &TupleSet{width: ts.width, shift: ts.shift, n: ts.n}
	if ts.pk != nil {
		c.pk = make(map[uint64]struct{}, len(ts.pk))
		for k := range ts.pk {
			c.pk[k] = struct{}{}
		}
	}
	if ts.sk != nil {
		c.sk = make(map[string]struct{}, len(ts.sk))
		for k := range ts.sk {
			c.sk[k] = struct{}{}
		}
	}
	return c
}
