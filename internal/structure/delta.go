package structure

// Append-delta views over the columnar store.
//
// Relations are append-only (tuples are never removed, elements never
// renamed or dropped), so the state of a structure at an earlier version
// is fully described by its universe size and per-relation row counts at
// that version — a Snapshot.  The rows appended since are then exactly
// the row ranges [old, current) of each relation, which DeltaView
// exposes through the same allocation-free iteration the full store
// offers.  This is the structural foundation of incremental count
// maintenance: a delta-join executor visits only appended tuples
// instead of re-scanning the relation.

// Snapshot captures the extent of a structure at one version: the
// universe size and the row count of every relation, aligned with
// Signature().Rels().  Taking one is O(#relations); it shares nothing
// with the live structure, so it stays valid across later mutations.
type Snapshot struct {
	// Version is the structure's mutation counter at capture time.
	Version uint64
	// Elems is the universe size at capture time.
	Elems int
	// Rows holds one row count per relation, in Signature().Rels() order.
	Rows []int
}

// Snapshot captures the structure's current extent (universe size and
// per-relation row counts).  Callers that mutate the structure from
// multiple goroutines must hold their write lock; readers under a read
// lock may snapshot freely.
func (s *Structure) Snapshot() Snapshot {
	rels := s.sig.Rels()
	snap := Snapshot{Version: s.version, Elems: len(s.elems), Rows: make([]int, len(rels))}
	for i, r := range rels {
		snap.Rows[i] = s.rels[r.Name].Len()
	}
	return snap
}

// DeltaView is the set of rows appended to a structure since an earlier
// Snapshot: per relation, the old row count (the prefix that existed at
// the snapshot) and the new rows since.  It is a cheap pair of pointers
// — no rows are copied — and remains consistent as long as the
// structure is not mutated while the view is read (the same discipline
// every other read path follows).
type DeltaView struct {
	base Snapshot
	cur  *Structure
	// rowOf maps relation name → snapshot row count (derived from
	// base.Rows at construction, so per-relation lookups are O(1)).
	rowOf map[string]int
}

// DeltaSince returns the view of everything appended since snap.  ok is
// false when snap cannot have come from this structure's history: the
// signature width differs, the snapshot version is ahead of the current
// one, or some snapshot row count exceeds the relation's current length
// (rows are append-only, so a valid snapshot is always a prefix).
func (s *Structure) DeltaSince(snap Snapshot) (DeltaView, bool) {
	rels := s.sig.Rels()
	if len(snap.Rows) != len(rels) || snap.Version > s.version || snap.Elems > len(s.elems) {
		return DeltaView{}, false
	}
	rowOf := make(map[string]int, len(rels))
	for i, r := range rels {
		n := snap.Rows[i]
		if n > s.rels[r.Name].Len() {
			return DeltaView{}, false
		}
		rowOf[r.Name] = n
	}
	return DeltaView{base: snap, cur: s, rowOf: rowOf}, true
}

// BaseVersion returns the snapshot version the delta starts from.
func (d DeltaView) BaseVersion() uint64 { return d.base.Version }

// ElemsAdded returns the number of universe elements added since the
// snapshot.
func (d DeltaView) ElemsAdded() int { return d.cur.Size() - d.base.Elems }

// OldRows returns rel's row count at the snapshot (0 for unknown
// relations).
func (d DeltaView) OldRows(rel string) int { return d.rowOf[rel] }

// NewRows returns the number of rows appended to rel since the snapshot.
func (d DeltaView) NewRows(rel string) int {
	r := d.cur.Rel(rel)
	if r == nil {
		return 0
	}
	return r.Len() - d.rowOf[rel]
}

// TuplesAdded returns the total number of rows appended across all
// relations since the snapshot.
func (d DeltaView) TuplesAdded() int {
	n := 0
	for _, r := range d.cur.sig.Rels() {
		n += d.NewRows(r.Name)
	}
	return n
}

// ForEachNewTuple visits every tuple appended to rel since the snapshot,
// in insertion order, through a reused row buffer (copy to retain).
// Returning false stops early.
func (d DeltaView) ForEachNewTuple(rel string, fn func(t []int) bool) {
	r := d.cur.Rel(rel)
	if r == nil {
		return
	}
	r.ForEachTupleIn(d.rowOf[rel], r.Len(), fn)
}
