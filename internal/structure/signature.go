package structure

import (
	"fmt"
	"sort"
	"strings"
)

// RelSym is a relation symbol: a name together with a positive arity.
type RelSym struct {
	Name  string
	Arity int
}

// Signature is a finite, purely relational vocabulary.  Relation symbols
// are kept sorted by name so iteration order is deterministic.
type Signature struct {
	rels  []RelSym
	index map[string]int
}

// NewSignature builds a signature from the given relation symbols.
// It rejects duplicate names, empty names, and non-positive arities.
func NewSignature(rels ...RelSym) (*Signature, error) {
	s := &Signature{index: make(map[string]int, len(rels))}
	sorted := make([]RelSym, len(rels))
	copy(sorted, rels)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Name < sorted[j].Name })
	for _, r := range sorted {
		if r.Name == "" {
			return nil, fmt.Errorf("structure: empty relation name")
		}
		if r.Arity < 1 {
			return nil, fmt.Errorf("structure: relation %s has non-positive arity %d", r.Name, r.Arity)
		}
		if _, dup := s.index[r.Name]; dup {
			return nil, fmt.Errorf("structure: duplicate relation %s", r.Name)
		}
		s.index[r.Name] = len(s.rels)
		s.rels = append(s.rels, r)
	}
	return s, nil
}

// MustSignature is NewSignature but panics on error; for tests and
// literals whose validity is known statically.
func MustSignature(rels ...RelSym) *Signature {
	s, err := NewSignature(rels...)
	if err != nil {
		panic(err)
	}
	return s
}

// Rels returns the relation symbols in sorted name order.
func (s *Signature) Rels() []RelSym {
	out := make([]RelSym, len(s.rels))
	copy(out, s.rels)
	return out
}

// NumRels returns the number of relation symbols.
func (s *Signature) NumRels() int { return len(s.rels) }

// Arity returns the arity of the named relation and whether it exists.
func (s *Signature) Arity(name string) (int, bool) {
	i, ok := s.index[name]
	if !ok {
		return 0, false
	}
	return s.rels[i].Arity, true
}

// Has reports whether the signature contains the named relation.
func (s *Signature) Has(name string) bool {
	_, ok := s.index[name]
	return ok
}

// MaxArity returns the largest arity in the signature (0 if empty).
func (s *Signature) MaxArity() int {
	m := 0
	for _, r := range s.rels {
		if r.Arity > m {
			m = r.Arity
		}
	}
	return m
}

// Equal reports whether two signatures have the same symbols and arities.
func (s *Signature) Equal(t *Signature) bool {
	if s == t {
		return true
	}
	if t == nil || len(s.rels) != len(t.rels) {
		return false
	}
	for i, r := range s.rels {
		if t.rels[i] != r {
			return false
		}
	}
	return true
}

// Extend returns a new signature with the extra symbols added.
// It is an error for an extra symbol to clash with an existing one.
func (s *Signature) Extend(extra ...RelSym) (*Signature, error) {
	all := make([]RelSym, 0, len(s.rels)+len(extra))
	all = append(all, s.rels...)
	all = append(all, extra...)
	return NewSignature(all...)
}

// Restrict returns the sub-signature containing only the named relations
// for which keep returns true.
func (s *Signature) Restrict(keep func(RelSym) bool) *Signature {
	var kept []RelSym
	for _, r := range s.rels {
		if keep(r) {
			kept = append(kept, r)
		}
	}
	return MustSignature(kept...)
}

// String renders the signature as, e.g., "{E/2, F/1}".
func (s *Signature) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for i, r := range s.rels {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s/%d", r.Name, r.Arity)
	}
	b.WriteByte('}')
	return b.String()
}
