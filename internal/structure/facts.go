package structure

import (
	"fmt"
	"io"
	"regexp"
	"strings"
)

var plainName = regexp.MustCompile(`^[\pL\pN_][\pL\pN_']*$`)

// WriteFacts serializes the structure in the fact-file syntax the parser
// accepts: a `universe` declaration (so isolated elements survive a round
// trip) followed by one fact per line.  Element names must be plain
// identifiers (letters, digits, underscore, prime); names produced by the
// structure algebra (products, padding) may not be, in which case the
// caller should RenameElems first — the error says so.
func (s *Structure) WriteFacts(w io.Writer) error {
	for _, name := range s.elems {
		if !plainName.MatchString(name) {
			return fmt.Errorf("structure: element %q is not serializable; rename elements first", name)
		}
	}
	if _, err := fmt.Fprintf(w, "universe %s.\n", strings.Join(s.elems, ", ")); err != nil {
		return err
	}
	for _, r := range s.sig.rels {
		var werr error
		names := make([]string, r.Arity)
		s.ForEachTuple(r.Name, func(t []int) bool {
			for i, v := range t {
				names[i] = s.elems[v]
			}
			_, werr = fmt.Fprintf(w, "%s(%s).\n", r.Name, strings.Join(names, ","))
			return werr == nil
		})
		if werr != nil {
			return werr
		}
	}
	return nil
}

// FactsString returns the WriteFacts serialization as a string.
func (s *Structure) FactsString() (string, error) {
	var b strings.Builder
	if err := s.WriteFacts(&b); err != nil {
		return "", err
	}
	return b.String(), nil
}

// Normalized returns a copy with elements renamed e0, e1, ... — always
// serializable, isomorphic to the original.
func (s *Structure) Normalized() *Structure {
	names := make([]string, len(s.elems))
	for i := range names {
		names[i] = fmt.Sprintf("e%d", i)
	}
	out, err := s.RenameElems(names)
	if err != nil {
		// Cannot happen: generated names are unique and non-empty.
		panic(err)
	}
	return out
}
