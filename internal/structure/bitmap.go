package structure

import "math/bits"

// Bitmap is a compressed set of non-negative row ids, stored roaring
// style in two levels: row >> 16 selects a chunk, and each chunk holds
// the low 16 bits of its members either as a sorted array container
// (while sparse) or as a packed 1024-word bitmap container (once dense).
// The crossover is arrayContainerCap members: below it the array form is
// smaller and its merge-style intersection faster; at or above it the
// bitmap form intersects 64 rows per word op.
//
// Bitmaps replace the flat []int32 posting lists of the relation store:
// Add is amortized O(1) for the store's append pattern (row ids arrive
// strictly increasing), And/AndCard intersect word-at-a-time, and
// ForEach visits members in increasing order without materializing a
// slice.  A Bitmap is single-writer (the owning Relation mutates it);
// any number of goroutines may read it between mutations.
type Bitmap struct {
	n    int
	keys []uint32 // chunk high bits, strictly increasing
	ctrs []container
}

// arrayContainerCap is the array→bitmap promotion threshold: a container
// holding this many members converts to the packed bitmap form.  4096
// uint16s occupy exactly as much memory as the 1024-word bitmap, so the
// array form is strictly smaller below the threshold.
const arrayContainerCap = 4096

// containerSpan is the number of row ids one container covers.
const containerSpan = 1 << 16

// container is one 64Ki-row chunk: exactly one of arr (sorted members'
// low 16 bits) or words (packed bitmap) is non-nil.
type container struct {
	arr   []uint16
	words []uint64
}

func (c *container) has(low uint16) bool {
	if c.words != nil {
		return c.words[low>>6]&(1<<(low&63)) != 0
	}
	// Binary search the sorted array form.
	lo, hi := 0, len(c.arr)
	for lo < hi {
		mid := (lo + hi) / 2
		if c.arr[mid] < low {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(c.arr) && c.arr[lo] == low
}

// add inserts low and reports whether it was new.  The store's append
// pattern inserts in increasing order, making the append fast path the
// common one; out-of-order inserts shift.
func (c *container) add(low uint16) bool {
	if c.words != nil {
		w, b := low>>6, uint64(1)<<(low&63)
		if c.words[w]&b != 0 {
			return false
		}
		c.words[w] |= b
		return true
	}
	if n := len(c.arr); n == 0 || c.arr[n-1] < low {
		c.arr = append(c.arr, low)
	} else {
		lo, hi := 0, n
		for lo < hi {
			mid := (lo + hi) / 2
			if c.arr[mid] < low {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		if lo < n && c.arr[lo] == low {
			return false
		}
		c.arr = append(c.arr, 0)
		copy(c.arr[lo+1:], c.arr[lo:])
		c.arr[lo] = low
	}
	if len(c.arr) >= arrayContainerCap {
		c.promote()
	}
	return true
}

// promote converts the array form to the packed bitmap form.
func (c *container) promote() {
	words := make([]uint64, containerSpan/64)
	for _, v := range c.arr {
		words[v>>6] |= 1 << (v & 63)
	}
	c.arr, c.words = nil, words
}

// card returns the container's cardinality.
func (c *container) card() int {
	if c.words == nil {
		return len(c.arr)
	}
	n := 0
	for _, w := range c.words {
		n += bits.OnesCount64(w)
	}
	return n
}

// Len returns the bitmap's cardinality.  A nil Bitmap is empty.
func (b *Bitmap) Len() int {
	if b == nil {
		return 0
	}
	return b.n
}

// chunkAt returns the index of key in keys, or -1.
func (b *Bitmap) chunkAt(key uint32) int {
	lo, hi := 0, len(b.keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if b.keys[mid] < key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(b.keys) && b.keys[lo] == key {
		return lo
	}
	return -1
}

// Add inserts row and reports whether it was new.
func (b *Bitmap) Add(row int32) bool {
	key, low := uint32(row)>>16, uint16(row)
	// Fast path: the store appends strictly increasing rows, so the
	// target is almost always the last chunk (or a brand-new one).
	if n := len(b.keys); n > 0 && b.keys[n-1] == key {
		if b.ctrs[n-1].add(low) {
			b.n++
			return true
		}
		return false
	} else if n == 0 || b.keys[n-1] < key {
		b.keys = append(b.keys, key)
		b.ctrs = append(b.ctrs, container{arr: []uint16{low}})
		b.n++
		return true
	}
	ci := b.chunkAt(key)
	if ci < 0 {
		// Out-of-order insert into a missing middle chunk.
		lo := 0
		for lo < len(b.keys) && b.keys[lo] < key {
			lo++
		}
		b.keys = append(b.keys, 0)
		copy(b.keys[lo+1:], b.keys[lo:])
		b.keys[lo] = key
		b.ctrs = append(b.ctrs, container{})
		copy(b.ctrs[lo+1:], b.ctrs[lo:])
		b.ctrs[lo] = container{arr: []uint16{low}}
		b.n++
		return true
	}
	if b.ctrs[ci].add(low) {
		b.n++
		return true
	}
	return false
}

// Contains reports membership of row.
func (b *Bitmap) Contains(row int32) bool {
	if b == nil {
		return false
	}
	ci := b.chunkAt(uint32(row) >> 16)
	return ci >= 0 && b.ctrs[ci].has(uint16(row))
}

// ForEach visits every member in increasing order; fn returning false
// stops the iteration.
func (b *Bitmap) ForEach(fn func(row int32) bool) {
	if b == nil {
		return
	}
	for ci, key := range b.keys {
		base := int32(key) << 16
		c := &b.ctrs[ci]
		if c.words == nil {
			for _, v := range c.arr {
				if !fn(base | int32(v)) {
					return
				}
			}
			continue
		}
		for wi, w := range c.words {
			for w != 0 {
				j := bits.TrailingZeros64(w)
				w &^= 1 << j
				if !fn(base | int32(wi<<6|j)) {
					return
				}
			}
		}
	}
}

// AndCard returns |b ∩ o| without materializing the intersection:
// bitmap×bitmap chunks popcount 64 rows per word op, array×bitmap
// chunks probe, array×array chunks merge.
func (b *Bitmap) AndCard(o *Bitmap) int {
	if b == nil || o == nil {
		return 0
	}
	total := 0
	i, j := 0, 0
	for i < len(b.keys) && j < len(o.keys) {
		switch {
		case b.keys[i] < o.keys[j]:
			i++
		case b.keys[i] > o.keys[j]:
			j++
		default:
			total += andCardContainers(&b.ctrs[i], &o.ctrs[j])
			i++
			j++
		}
	}
	return total
}

// And returns b ∩ o as a fresh Bitmap.  Result containers re-choose
// their form by cardinality: an intersection that thinned a bitmap
// chunk below the threshold demotes it back to the array form.
func (b *Bitmap) And(o *Bitmap) *Bitmap {
	out := &Bitmap{}
	if b == nil || o == nil {
		return out
	}
	i, j := 0, 0
	for i < len(b.keys) && j < len(o.keys) {
		switch {
		case b.keys[i] < o.keys[j]:
			i++
		case b.keys[i] > o.keys[j]:
			j++
		default:
			if c, n := andContainers(&b.ctrs[i], &o.ctrs[j]); n > 0 {
				out.keys = append(out.keys, b.keys[i])
				out.ctrs = append(out.ctrs, c)
				out.n += n
			}
			i++
			j++
		}
	}
	return out
}

// UnionIntoWords sets, in the flat word bitmap dst (bit r = row r), the
// bit of every member — the word-at-a-time union the hom solver's
// candidate pivoting accumulates posting lists through.  dst must cover
// the full row range.
func (b *Bitmap) UnionIntoWords(dst []uint64) {
	if b == nil {
		return
	}
	for ci, key := range b.keys {
		base := int(key) << 10 // chunk start in words: key·2¹⁶/64
		c := &b.ctrs[ci]
		if c.words != nil {
			d := dst[base:]
			for wi, w := range c.words {
				if wi >= len(d) {
					break
				}
				d[wi] |= w
			}
			continue
		}
		for _, v := range c.arr {
			r := uint32(key)<<16 | uint32(v)
			dst[r>>6] |= 1 << (r & 63)
		}
	}
}

func andCardContainers(a, b *container) int {
	if a.words != nil && b.words != nil {
		n := 0
		for wi, w := range a.words {
			n += bits.OnesCount64(w & b.words[wi])
		}
		return n
	}
	if a.words == nil && b.words == nil {
		n, i, j := 0, 0, 0
		for i < len(a.arr) && j < len(b.arr) {
			switch {
			case a.arr[i] < b.arr[j]:
				i++
			case a.arr[i] > b.arr[j]:
				j++
			default:
				n++
				i++
				j++
			}
		}
		return n
	}
	arr, wc := a, b
	if a.words != nil {
		arr, wc = b, a
	}
	n := 0
	for _, v := range arr.arr {
		if wc.words[v>>6]&(1<<(v&63)) != 0 {
			n++
		}
	}
	return n
}

// andContainers intersects two containers, returning the result in
// whichever form its cardinality calls for.
func andContainers(a, b *container) (container, int) {
	if a.words != nil && b.words != nil {
		words := make([]uint64, containerSpan/64)
		n := 0
		for wi, w := range a.words {
			iw := w & b.words[wi]
			words[wi] = iw
			n += bits.OnesCount64(iw)
		}
		if n == 0 {
			return container{}, 0
		}
		if n < arrayContainerCap {
			// Demote: the intersection thinned out below the threshold.
			arr := make([]uint16, 0, n)
			for wi, w := range words {
				for w != 0 {
					j := bits.TrailingZeros64(w)
					w &^= 1 << j
					arr = append(arr, uint16(wi<<6|j))
				}
			}
			return container{arr: arr}, n
		}
		return container{words: words}, n
	}
	if a.words == nil && b.words == nil {
		var arr []uint16
		i, j := 0, 0
		for i < len(a.arr) && j < len(b.arr) {
			switch {
			case a.arr[i] < b.arr[j]:
				i++
			case a.arr[i] > b.arr[j]:
				j++
			default:
				arr = append(arr, a.arr[i])
				i++
				j++
			}
		}
		return container{arr: arr}, len(arr)
	}
	arr, wc := a, b
	if a.words != nil {
		arr, wc = b, a
	}
	var out []uint16
	for _, v := range arr.arr {
		if wc.words[v>>6]&(1<<(v&63)) != 0 {
			out = append(out, v)
		}
	}
	return container{arr: out}, len(out)
}

// clone returns a deep copy sharing nothing with b.
func (b *Bitmap) clone() *Bitmap {
	if b == nil {
		return nil
	}
	c := &Bitmap{n: b.n, keys: append([]uint32(nil), b.keys...), ctrs: make([]container, len(b.ctrs))}
	for i := range b.ctrs {
		if b.ctrs[i].words != nil {
			c.ctrs[i].words = append([]uint64(nil), b.ctrs[i].words...)
		} else {
			c.ctrs[i].arr = append([]uint16(nil), b.ctrs[i].arr...)
		}
	}
	return c
}
