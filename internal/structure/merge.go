package structure

// Merge adds every element and tuple of delta into dst (matching by
// element name; dst's signature must cover every relation delta uses)
// and returns the number of tuples actually inserted — duplicates,
// whether inside the batch or against dst, add nothing.  Iteration is
// deterministic (signature order, then insertion order), so replaying
// the same delta against the same dst always produces the same version
// trajectory; Merge is also idempotent, the property WAL replay leans
// on when a batch may already be covered by a snapshot.  Both the
// serving layer's append path and boot recovery apply batches through
// this single function, which is what makes a recovered structure
// bit-compatible with the in-memory original.
func Merge(dst, delta *Structure) (int, error) {
	for _, name := range delta.ElemNames() {
		dst.EnsureElem(name)
	}
	inserted := 0
	for _, rel := range delta.Signature().Rels() {
		dstRel := dst.Rel(rel.Name)
		if dstRel == nil && delta.Rel(rel.Name).Len() == 0 {
			continue
		}
		before := dstRel.Len()
		names := make([]string, rel.Arity)
		var err error
		delta.ForEachTuple(rel.Name, func(t []int) bool {
			for i, v := range t {
				names[i] = delta.ElemName(v)
			}
			if e := dst.AddFact(rel.Name, names...); e != nil {
				err = e
				return false
			}
			return true
		})
		if err != nil {
			return inserted, err
		}
		inserted += dstRel.Len() - before
	}
	return inserted, nil
}
