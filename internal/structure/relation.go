package structure

import "sync"

// Relation is the columnar store of one relation's tuple set: a flat
// []int32 column per position, a packed-key TupleSet for O(1)
// dedup/membership, and per-position posting lists (value → row-id
// Bitmap) that are maintained incrementally on every insert — never
// rebuilt from scratch.  Postings are roaring-style Bitmaps (bitmap.go):
// array containers while sparse, packed bitmap containers once dense, so
// consumers union and intersect candidate rows 64 per word op instead of
// one element at a time.  Rows are exposed through allocation-free
// iteration (ForEachTuple, ForEachWith) and row views; the [][]int
// representation survives only as the deprecated Tuples compatibility
// shim on Structure.
//
// A Relation is mutated only through its owning Structure (single
// mutator); any number of goroutines may read it concurrently between
// mutations.
type Relation struct {
	name  string
	arity int
	cols  [][]int32           // per position, len == Len()
	posts []map[int32]*Bitmap // per position: value → row-id bitmap
	set   *TupleSet

	// rowCache backs the deprecated Tuples shim: materialized [][]int
	// rows, built lazily under rowMu and dropped on mutation.
	rowMu    sync.Mutex
	rowCache [][]int
}

func newRelation(name string, arity int) *Relation {
	r := &Relation{
		name:  name,
		arity: arity,
		cols:  make([][]int32, arity),
		posts: make([]map[int32]*Bitmap, arity),
		set:   NewTupleSet(arity),
	}
	for p := range r.posts {
		r.posts[p] = make(map[int32]*Bitmap)
	}
	return r
}

// Name returns the relation symbol's name.
func (r *Relation) Name() string { return r.name }

// Arity returns the relation's arity.
func (r *Relation) Arity() int { return r.arity }

// Len returns the number of distinct tuples.
func (r *Relation) Len() int {
	if r == nil || r.arity == 0 {
		return 0
	}
	return len(r.cols[0])
}

// add inserts t (already arity- and range-checked by the Structure) and
// reports whether it was new.  Posting lists and the dedup set are
// updated in place.
func (r *Relation) add(t []int) bool {
	if !r.set.Add(t) {
		return false
	}
	row := int32(len(r.cols[0]))
	for p, v := range t {
		r.cols[p] = append(r.cols[p], int32(v))
		bm := r.posts[p][int32(v)]
		if bm == nil {
			bm = &Bitmap{}
			r.posts[p][int32(v)] = bm
		}
		bm.Add(row)
	}
	r.rowMu.Lock()
	r.rowCache = nil
	r.rowMu.Unlock()
	return true
}

// Contains reports membership of t.
func (r *Relation) Contains(t []int) bool {
	return r != nil && r.set.Contains(t)
}

// Row copies row i into buf (which must have length >= arity) and
// returns buf[:arity].
func (r *Relation) Row(i int, buf []int) []int {
	buf = buf[:r.arity]
	for p := range r.cols {
		buf[p] = int(r.cols[p][i])
	}
	return buf
}

// Value returns the element index at (row, pos) without materializing the
// row.
func (r *Relation) Value(row, pos int) int { return int(r.cols[pos][row]) }

// Col returns position pos's column as a shared read-only view.
func (r *Relation) Col(pos int) []int32 {
	if r == nil {
		return nil
	}
	return r.cols[pos]
}

// ForEachTuple visits every tuple in insertion order.  The slice passed
// to fn is a single reused buffer: callers must copy it to retain it.
// Returning false stops the iteration.
func (r *Relation) ForEachTuple(fn func(t []int) bool) {
	if r == nil {
		return
	}
	r.ForEachTupleIn(0, r.Len(), fn)
}

// ForEachTupleIn visits the tuples in rows [lo, hi) in insertion order,
// through a reused row buffer (copy to retain).  Rows are append-only,
// so [oldLen, Len()) is exactly the set of tuples appended since an
// earlier observation of oldLen — the iteration DeltaView is built on.
// Returning false stops early.
func (r *Relation) ForEachTupleIn(lo, hi int, fn func(t []int) bool) {
	if r == nil || r.arity == 0 {
		return
	}
	if n := r.Len(); hi > n {
		hi = n
	}
	if lo < 0 {
		lo = 0
	}
	if lo >= hi {
		return
	}
	buf := make([]int, r.arity)
	for i := lo; i < hi; i++ {
		for p := range r.cols {
			buf[p] = int(r.cols[p][i])
		}
		if !fn(buf) {
			return
		}
	}
}

// ForEachWith visits every tuple whose position pos holds value v, via
// the posting bitmap — no relation scan, no allocation beyond the shared
// row buffer.  Returning false stops the iteration.
func (r *Relation) ForEachWith(pos, v int, fn func(t []int) bool) {
	if r == nil || pos < 0 || pos >= r.arity {
		return
	}
	bm := r.posts[pos][int32(v)]
	if bm.Len() == 0 {
		return
	}
	buf := make([]int, r.arity)
	bm.ForEach(func(i int32) bool {
		for p := range r.cols {
			buf[p] = int(r.cols[p][i])
		}
		return fn(buf)
	})
}

// PostingLen returns the number of tuples holding v at position pos —
// the selectivity estimate used to order candidate generation.
func (r *Relation) PostingLen(pos, v int) int {
	if r == nil || pos < 0 || pos >= r.arity {
		return 0
	}
	return r.posts[pos][int32(v)].Len()
}

// RowsWith returns the posting bitmap (row ids) of value v at position
// pos as a shared read-only view; nil means no row holds v there.
func (r *Relation) RowsWith(pos, v int) *Bitmap {
	if r == nil || pos < 0 || pos >= r.arity {
		return nil
	}
	return r.posts[pos][int32(v)]
}

// rows returns (building and caching on first use) the materialized
// [][]int view backing the deprecated Tuples shim.
func (r *Relation) rows() [][]int {
	if r == nil || r.Len() == 0 {
		return nil
	}
	r.rowMu.Lock()
	defer r.rowMu.Unlock()
	if r.rowCache == nil {
		n := r.Len()
		flat := make([]int, n*r.arity)
		out := make([][]int, n)
		for i := 0; i < n; i++ {
			row := flat[i*r.arity : (i+1)*r.arity]
			for p := range r.cols {
				row[p] = int(r.cols[p][i])
			}
			out[i] = row
		}
		r.rowCache = out
	}
	return r.rowCache
}

// clone returns a deep copy sharing nothing with r.
func (r *Relation) clone() *Relation {
	c := &Relation{
		name:  r.name,
		arity: r.arity,
		cols:  make([][]int32, r.arity),
		posts: make([]map[int32]*Bitmap, r.arity),
		set:   r.set.clone(),
	}
	for p := range r.cols {
		c.cols[p] = append([]int32(nil), r.cols[p]...)
		c.posts[p] = make(map[int32]*Bitmap, len(r.posts[p]))
		for v, rows := range r.posts[p] {
			c.posts[p][v] = rows.clone()
		}
	}
	return c
}
