package structure

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
)

// Structure is a finite relational structure: a non-empty universe of named
// elements plus, for each relation symbol of the signature, a set of tuples
// over the universe.  Elements are addressed by dense integer indices;
// names exist for I/O and for carrying variable identities in the
// formula-as-structure view used throughout the paper.
//
// Tuples live in per-relation columnar Relation stores: flat columns, a
// packed-key dedup set, and per-position posting lists maintained
// incrementally on AddTuple.  Consumers iterate with ForEachTuple /
// ForEachWith; the [][]int accessors Tuples and TuplesWith survive as
// deprecated compatibility shims.
type Structure struct {
	sig   *Signature
	elems []string
	index map[string]int

	// rels holds one columnar store per relation symbol, created eagerly
	// at New so the map itself is never mutated afterwards (reads are
	// safe from concurrent goroutines; mutation via AddTuple/AddFact must
	// still be single-threaded).
	rels map[string]*Relation

	// version counts mutations (element or tuple additions); snapshot
	// consumers such as engine sessions use it to detect staleness without
	// rehashing the structure.
	version uint64
}

// fullScans counts calls to the deprecated full-materialization shim
// Structure.Tuples.  Hot paths (hom candidate generation, constraint
// materialization) are required to perform zero such scans; tests assert
// this via FullScanCount deltas.
var fullScans atomic.Uint64

// FullScanCount returns the process-wide number of deprecated
// Tuples-shim materializations performed so far.  Test hook.
func FullScanCount() uint64 { return fullScans.Load() }

// New returns an empty structure over sig.  Note that a structure must have
// at least one element before it is used for counting; Validate enforces
// this.
func New(sig *Signature) *Structure {
	s := &Structure{
		sig:   sig,
		index: make(map[string]int),
		rels:  make(map[string]*Relation, len(sig.rels)),
	}
	for _, r := range sig.rels {
		s.rels[r.Name] = newRelation(r.Name, r.Arity)
	}
	return s
}

// Signature returns the structure's signature.
func (s *Structure) Signature() *Signature { return s.sig }

// Size returns the number of elements in the universe.
func (s *Structure) Size() int { return len(s.elems) }

// ElemName returns the name of element i.
func (s *Structure) ElemName(i int) string { return s.elems[i] }

// ElemNames returns a copy of all element names in index order.
func (s *Structure) ElemNames() []string {
	out := make([]string, len(s.elems))
	copy(out, s.elems)
	return out
}

// ElemIndex returns the index of the named element, or -1.
func (s *Structure) ElemIndex(name string) int {
	if i, ok := s.index[name]; ok {
		return i
	}
	return -1
}

// HasElem reports whether the named element exists.
func (s *Structure) HasElem(name string) bool {
	_, ok := s.index[name]
	return ok
}

// AddElem adds a new element and returns its index.  Adding an existing
// name is an error.
func (s *Structure) AddElem(name string) (int, error) {
	if name == "" {
		return 0, fmt.Errorf("structure: empty element name")
	}
	if _, dup := s.index[name]; dup {
		return 0, fmt.Errorf("structure: duplicate element %q", name)
	}
	i := len(s.elems)
	s.elems = append(s.elems, name)
	s.index[name] = i
	s.version++
	return i, nil
}

// Version returns a counter that increases with every effective mutation
// (element or tuple addition).  The counter bumps only when the mutation
// actually changed the structure: adding a duplicate tuple or ensuring an
// existing element is a no-op and leaves the version untouched, so a
// fully-duplicate append batch never invalidates memoized counts.  Two
// calls returning the same value bracket a span in which the structure
// was not modified.
func (s *Structure) Version() uint64 { return s.version }

// EnsureElem returns the index of the named element, adding it if absent.
func (s *Structure) EnsureElem(name string) int {
	if i, ok := s.index[name]; ok {
		return i
	}
	i, _ := s.AddElem(name)
	return i
}

// FreshElem adds an element whose name starts with prefix and does not
// collide with any existing element, returning its index.
func (s *Structure) FreshElem(prefix string) int {
	name := prefix
	for n := 0; s.HasElem(name); n++ {
		name = prefix + "#" + strconv.Itoa(n)
	}
	i, _ := s.AddElem(name)
	return i
}

// Rel returns the columnar store of the named relation, or nil if the
// signature lacks it.  The returned Relation is read-only for callers:
// all mutation goes through AddTuple/AddFact.
func (s *Structure) Rel(name string) *Relation { return s.rels[name] }

// AddTuple adds the tuple (given by element indices) to relation rel.
// Duplicate tuples are ignored.  It is an error if the relation is unknown,
// the arity mismatches, or an index is out of range.
func (s *Structure) AddTuple(rel string, t ...int) error {
	r := s.rels[rel]
	if r == nil {
		return fmt.Errorf("structure: unknown relation %q", rel)
	}
	if len(t) != r.arity {
		return fmt.Errorf("structure: relation %s expects arity %d, got %d", rel, r.arity, len(t))
	}
	for _, v := range t {
		if v < 0 || v >= len(s.elems) {
			return fmt.Errorf("structure: element index %d out of range in %s-tuple", v, rel)
		}
	}
	if r.add(t) {
		s.version++
	}
	return nil
}

// AddFact adds a tuple given by element names, creating elements as needed.
func (s *Structure) AddFact(rel string, names ...string) error {
	t := make([]int, len(names))
	for i, n := range names {
		t[i] = s.EnsureElem(n)
	}
	return s.AddTuple(rel, t...)
}

// HasTuple reports whether the tuple is in relation rel.
func (s *Structure) HasTuple(rel string, t []int) bool {
	return s.rels[rel].Contains(t)
}

// Tuples returns the tuples of relation rel as materialized [][]int rows
// (shared backing slices: callers must not modify the returned tuples).
//
// Deprecated: this is the full-scan compatibility shim over the columnar
// store; it materializes (and caches) every row.  New code should use
// ForEachTuple / ForEachWith, or Rel for column access.
func (s *Structure) Tuples(rel string) [][]int {
	fullScans.Add(1)
	return s.rels[rel].rows()
}

// ForEachTuple visits every tuple of rel in insertion order through a
// reused row buffer (copy to retain).  Returning false stops early.
func (s *Structure) ForEachTuple(rel string, fn func(t []int) bool) {
	s.rels[rel].ForEachTuple(fn)
}

// ForEachWith visits every tuple of rel whose position pos holds value v,
// via the relation's incrementally maintained posting lists — no scan,
// no allocation beyond the reused row buffer.  Returning false stops
// early.
func (s *Structure) ForEachWith(rel string, pos, v int, fn func(t []int) bool) {
	s.rels[rel].ForEachWith(pos, v, fn)
}

// NumTuples returns the total number of tuples across all relations.
func (s *Structure) NumTuples() int {
	n := 0
	for _, r := range s.rels {
		n += r.Len()
	}
	return n
}

// TuplesWith returns the tuples of rel whose position pos holds value v.
//
// Deprecated: thin shim over ForEachWith that allocates a fresh [][]int
// per call; new code should use ForEachWith (zero-alloc) or
// Rel(rel).RowsWith (row ids).
func (s *Structure) TuplesWith(rel string, pos, v int) [][]int {
	r := s.rels[rel]
	n := r.PostingLen(pos, v)
	if n == 0 {
		return nil
	}
	out := make([][]int, 0, n)
	flat := make([]int, 0, n*r.arity)
	r.ForEachWith(pos, v, func(t []int) bool {
		flat = append(flat, t...)
		out = append(out, flat[len(flat)-r.arity:])
		return true
	})
	return out
}

// Validate checks the structure invariants (non-empty universe).
func (s *Structure) Validate() error {
	if len(s.elems) == 0 {
		return fmt.Errorf("structure: empty universe")
	}
	return nil
}

// Clone returns a deep copy of the structure.
func (s *Structure) Clone() *Structure {
	c := &Structure{
		sig:     s.sig,
		elems:   append([]string(nil), s.elems...),
		index:   make(map[string]int, len(s.index)),
		rels:    make(map[string]*Relation, len(s.rels)),
		version: s.version,
	}
	for name, i := range s.index {
		c.index[name] = i
	}
	for name, r := range s.rels {
		c.rels[name] = r.clone()
	}
	return c
}

// Induced returns the substructure induced on the given element indices
// (keeping only tuples entirely within the subset), along with a map from
// old indices to new indices (-1 for dropped elements).
func (s *Structure) Induced(keep []int) (*Structure, []int) {
	inSet := make([]bool, len(s.elems))
	for _, v := range keep {
		inSet[v] = true
	}
	old2new := make([]int, len(s.elems))
	for i := range old2new {
		old2new[i] = -1
	}
	out := New(s.sig)
	// Preserve original index order for determinism.
	for i, name := range s.elems {
		if inSet[i] {
			ni, _ := out.AddElem(name)
			old2new[i] = ni
		}
	}
	for _, r := range s.sig.rels {
		nt := make([]int, r.Arity)
		s.ForEachTuple(r.Name, func(t []int) bool {
			for j, v := range t {
				if !inSet[v] {
					return true
				}
				nt[j] = old2new[v]
			}
			_ = out.AddTuple(r.Name, nt...)
			return true
		})
	}
	return out, old2new
}

// RenameElems returns a copy whose element i is named names[i].
func (s *Structure) RenameElems(names []string) (*Structure, error) {
	if len(names) != len(s.elems) {
		return nil, fmt.Errorf("structure: rename needs %d names, got %d", len(s.elems), len(names))
	}
	out := New(s.sig)
	for _, n := range names {
		if _, err := out.AddElem(n); err != nil {
			return nil, err
		}
	}
	for _, r := range s.sig.rels {
		s.ForEachTuple(r.Name, func(t []int) bool {
			_ = out.AddTuple(r.Name, t...)
			return true
		})
	}
	return out, nil
}

// WithSignature reinterprets the structure over a different signature that
// must contain every relation the structure actually uses; relations of the
// new signature that the structure lacks are empty.  Used to move between a
// vocabulary and its augmented extension.
func (s *Structure) WithSignature(sig *Signature) (*Structure, error) {
	out := New(sig)
	for _, name := range s.elems {
		_, _ = out.AddElem(name)
	}
	for _, r := range s.sig.rels {
		if s.rels[r.Name].Len() == 0 {
			continue
		}
		ar, ok := sig.Arity(r.Name)
		if !ok {
			return nil, fmt.Errorf("structure: new signature lacks used relation %s", r.Name)
		}
		if ar != r.Arity {
			return nil, fmt.Errorf("structure: relation %s arity mismatch (%d vs %d)", r.Name, r.Arity, ar)
		}
		s.ForEachTuple(r.Name, func(t []int) bool {
			_ = out.AddTuple(r.Name, t...)
			return true
		})
	}
	return out, nil
}

// ProjectSignature returns a copy of the structure over sig, keeping only
// the relations sig knows about and dropping the rest (the inverse of the
// augmentation step: it strips pinning relations).
func (s *Structure) ProjectSignature(sig *Signature) (*Structure, error) {
	out := New(sig)
	for _, name := range s.elems {
		_, _ = out.AddElem(name)
	}
	for _, r := range sig.rels {
		ar, ok := s.sig.Arity(r.Name)
		if !ok {
			continue
		}
		if ar != r.Arity {
			return nil, fmt.Errorf("structure: relation %s arity mismatch (%d vs %d)", r.Name, ar, r.Arity)
		}
		s.ForEachTuple(r.Name, func(t []int) bool {
			_ = out.AddTuple(r.Name, t...)
			return true
		})
	}
	return out, nil
}

// IsAllLoop reports whether element e carries the "all loops" pattern:
// for every relation R of arity k, the tuple (e,...,e) is present.
func (s *Structure) IsAllLoop(e int) bool {
	for _, r := range s.sig.rels {
		t := make([]int, r.Arity)
		for i := range t {
			t[i] = e
		}
		if !s.HasTuple(r.Name, t) {
			return false
		}
	}
	return true
}

// HasAllLoopElem reports whether some element carries all loops.  Every
// pp-formula has at least one answer on such a structure, a property the
// distinguishing-structure lemmas (5.12/5.13) rely on.
func (s *Structure) HasAllLoopElem() bool {
	for e := range s.elems {
		if s.IsAllLoop(e) {
			return true
		}
	}
	return false
}

// Fingerprint returns a cheap isomorphism-invariant summary used to bucket
// structures before expensive equivalence tests.
func (s *Structure) Fingerprint() string {
	var b strings.Builder
	fmt.Fprintf(&b, "n=%d", len(s.elems))
	for _, r := range s.sig.rels {
		fmt.Fprintf(&b, ";%s=%d", r.Name, s.rels[r.Name].Len())
	}
	// Degree multiset: number of tuple-slots each element occupies.
	deg := make([]int, len(s.elems))
	for _, r := range s.rels {
		for _, col := range r.cols {
			for _, v := range col {
				deg[v]++
			}
		}
	}
	sort.Ints(deg)
	b.WriteString(";deg=")
	for i, d := range deg {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(d))
	}
	return b.String()
}

// String renders the structure in fact syntax, elements listed first.
func (s *Structure) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "universe {%s}", strings.Join(s.elems, ", "))
	for _, r := range s.sig.rels {
		s.ForEachTuple(r.Name, func(t []int) bool {
			b.WriteString("; ")
			b.WriteString(r.Name)
			b.WriteByte('(')
			for i, v := range t {
				if i > 0 {
					b.WriteByte(',')
				}
				b.WriteString(s.elems[v])
			}
			b.WriteByte(')')
			return true
		})
	}
	return b.String()
}
