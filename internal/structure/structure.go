package structure

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Structure is a finite relational structure: a non-empty universe of named
// elements plus, for each relation symbol of the signature, a set of tuples
// over the universe.  Elements are addressed by dense integer indices;
// names exist for I/O and for carrying variable identities in the
// formula-as-structure view used throughout the paper.
type Structure struct {
	sig   *Signature
	elems []string
	index map[string]int

	tuples map[string][][]int         // relation name -> tuple list, insertion order
	seen   map[string]map[string]bool // relation name -> tuple key -> present

	// version counts mutations (element or tuple additions); snapshot
	// consumers such as engine sessions use it to detect staleness without
	// rehashing the structure.
	version uint64

	// posIdx is a lazily built positional index guarded by posMu, making
	// read-only use of a structure safe from concurrent goroutines
	// (mutation via AddTuple/AddFact must still be single-threaded).
	posMu  sync.Mutex
	posIdx map[string][]map[int][]int // relation name -> position -> value -> tuple indices
}

// New returns an empty structure over sig.  Note that a structure must have
// at least one element before it is used for counting; Validate enforces
// this.
func New(sig *Signature) *Structure {
	return &Structure{
		sig:    sig,
		index:  make(map[string]int),
		tuples: make(map[string][][]int),
		seen:   make(map[string]map[string]bool),
	}
}

// Signature returns the structure's signature.
func (s *Structure) Signature() *Signature { return s.sig }

// Size returns the number of elements in the universe.
func (s *Structure) Size() int { return len(s.elems) }

// ElemName returns the name of element i.
func (s *Structure) ElemName(i int) string { return s.elems[i] }

// ElemNames returns a copy of all element names in index order.
func (s *Structure) ElemNames() []string {
	out := make([]string, len(s.elems))
	copy(out, s.elems)
	return out
}

// ElemIndex returns the index of the named element, or -1.
func (s *Structure) ElemIndex(name string) int {
	if i, ok := s.index[name]; ok {
		return i
	}
	return -1
}

// HasElem reports whether the named element exists.
func (s *Structure) HasElem(name string) bool {
	_, ok := s.index[name]
	return ok
}

// AddElem adds a new element and returns its index.  Adding an existing
// name is an error.
func (s *Structure) AddElem(name string) (int, error) {
	if name == "" {
		return 0, fmt.Errorf("structure: empty element name")
	}
	if _, dup := s.index[name]; dup {
		return 0, fmt.Errorf("structure: duplicate element %q", name)
	}
	i := len(s.elems)
	s.elems = append(s.elems, name)
	s.index[name] = i
	s.version++
	return i, nil
}

// Version returns a counter that increases with every mutation (element or
// tuple addition).  Two calls returning the same value bracket a span in
// which the structure was not modified.
func (s *Structure) Version() uint64 { return s.version }

// EnsureElem returns the index of the named element, adding it if absent.
func (s *Structure) EnsureElem(name string) int {
	if i, ok := s.index[name]; ok {
		return i
	}
	i, _ := s.AddElem(name)
	return i
}

// FreshElem adds an element whose name starts with prefix and does not
// collide with any existing element, returning its index.
func (s *Structure) FreshElem(prefix string) int {
	name := prefix
	for n := 0; s.HasElem(name); n++ {
		name = prefix + "#" + strconv.Itoa(n)
	}
	i, _ := s.AddElem(name)
	return i
}

func tupleKey(t []int) string {
	var b strings.Builder
	for i, v := range t {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(v))
	}
	return b.String()
}

// AddTuple adds the tuple (given by element indices) to relation rel.
// Duplicate tuples are ignored.  It is an error if the relation is unknown,
// the arity mismatches, or an index is out of range.
func (s *Structure) AddTuple(rel string, t ...int) error {
	ar, ok := s.sig.Arity(rel)
	if !ok {
		return fmt.Errorf("structure: unknown relation %q", rel)
	}
	if len(t) != ar {
		return fmt.Errorf("structure: relation %s expects arity %d, got %d", rel, ar, len(t))
	}
	for _, v := range t {
		if v < 0 || v >= len(s.elems) {
			return fmt.Errorf("structure: element index %d out of range in %s-tuple", v, rel)
		}
	}
	key := tupleKey(t)
	set := s.seen[rel]
	if set == nil {
		set = make(map[string]bool)
		s.seen[rel] = set
	}
	if set[key] {
		return nil
	}
	set[key] = true
	tt := make([]int, len(t))
	copy(tt, t)
	s.tuples[rel] = append(s.tuples[rel], tt)
	s.version++
	s.posMu.Lock()
	s.posIdx = nil // invalidate lazy index
	s.posMu.Unlock()
	return nil
}

// AddFact adds a tuple given by element names, creating elements as needed.
func (s *Structure) AddFact(rel string, names ...string) error {
	t := make([]int, len(names))
	for i, n := range names {
		t[i] = s.EnsureElem(n)
	}
	return s.AddTuple(rel, t...)
}

// HasTuple reports whether the tuple is in relation rel.
func (s *Structure) HasTuple(rel string, t []int) bool {
	set := s.seen[rel]
	if set == nil {
		return false
	}
	return set[tupleKey(t)]
}

// Tuples returns the tuples of relation rel (shared backing slices:
// callers must not modify the returned tuples).
func (s *Structure) Tuples(rel string) [][]int { return s.tuples[rel] }

// NumTuples returns the total number of tuples across all relations.
func (s *Structure) NumTuples() int {
	n := 0
	for _, ts := range s.tuples {
		n += len(ts)
	}
	return n
}

// TuplesWith returns the tuples of rel whose position pos holds value v,
// using a lazily built index.
func (s *Structure) TuplesWith(rel string, pos, v int) [][]int {
	s.posMu.Lock()
	if s.posIdx == nil {
		s.buildPosIdx()
	}
	byPos := s.posIdx[rel]
	s.posMu.Unlock()
	if byPos == nil || pos >= len(byPos) {
		return nil
	}
	idxs := byPos[pos][v]
	if len(idxs) == 0 {
		return nil
	}
	ts := s.tuples[rel]
	out := make([][]int, len(idxs))
	for i, j := range idxs {
		out[i] = ts[j]
	}
	return out
}

func (s *Structure) buildPosIdx() {
	s.posIdx = make(map[string][]map[int][]int, len(s.tuples))
	for _, r := range s.sig.rels {
		ts := s.tuples[r.Name]
		byPos := make([]map[int][]int, r.Arity)
		for p := 0; p < r.Arity; p++ {
			byPos[p] = make(map[int][]int)
		}
		for j, t := range ts {
			for p, v := range t {
				byPos[p][v] = append(byPos[p][v], j)
			}
		}
		s.posIdx[r.Name] = byPos
	}
}

// Validate checks the structure invariants (non-empty universe).
func (s *Structure) Validate() error {
	if len(s.elems) == 0 {
		return fmt.Errorf("structure: empty universe")
	}
	return nil
}

// Clone returns a deep copy of the structure.
func (s *Structure) Clone() *Structure {
	c := New(s.sig)
	for _, name := range s.elems {
		_, _ = c.AddElem(name)
	}
	for _, r := range s.sig.rels {
		for _, t := range s.tuples[r.Name] {
			_ = c.AddTuple(r.Name, t...)
		}
	}
	return c
}

// Induced returns the substructure induced on the given element indices
// (keeping only tuples entirely within the subset), along with a map from
// old indices to new indices (-1 for dropped elements).
func (s *Structure) Induced(keep []int) (*Structure, []int) {
	inSet := make([]bool, len(s.elems))
	for _, v := range keep {
		inSet[v] = true
	}
	old2new := make([]int, len(s.elems))
	for i := range old2new {
		old2new[i] = -1
	}
	out := New(s.sig)
	// Preserve original index order for determinism.
	for i, name := range s.elems {
		if inSet[i] {
			ni, _ := out.AddElem(name)
			old2new[i] = ni
		}
	}
	for _, r := range s.sig.rels {
	tupleLoop:
		for _, t := range s.tuples[r.Name] {
			nt := make([]int, len(t))
			for j, v := range t {
				if !inSet[v] {
					continue tupleLoop
				}
				nt[j] = old2new[v]
			}
			_ = out.AddTuple(r.Name, nt...)
		}
	}
	return out, old2new
}

// RenameElems returns a copy whose element i is named names[i].
func (s *Structure) RenameElems(names []string) (*Structure, error) {
	if len(names) != len(s.elems) {
		return nil, fmt.Errorf("structure: rename needs %d names, got %d", len(s.elems), len(names))
	}
	out := New(s.sig)
	for _, n := range names {
		if _, err := out.AddElem(n); err != nil {
			return nil, err
		}
	}
	for _, r := range s.sig.rels {
		for _, t := range s.tuples[r.Name] {
			_ = out.AddTuple(r.Name, t...)
		}
	}
	return out, nil
}

// WithSignature reinterprets the structure over a different signature that
// must contain every relation the structure actually uses; relations of the
// new signature that the structure lacks are empty.  Used to move between a
// vocabulary and its augmented extension.
func (s *Structure) WithSignature(sig *Signature) (*Structure, error) {
	out := New(sig)
	for _, name := range s.elems {
		_, _ = out.AddElem(name)
	}
	for _, r := range s.sig.rels {
		ts := s.tuples[r.Name]
		if len(ts) == 0 {
			continue
		}
		ar, ok := sig.Arity(r.Name)
		if !ok {
			return nil, fmt.Errorf("structure: new signature lacks used relation %s", r.Name)
		}
		if ar != r.Arity {
			return nil, fmt.Errorf("structure: relation %s arity mismatch (%d vs %d)", r.Name, r.Arity, ar)
		}
		for _, t := range ts {
			_ = out.AddTuple(r.Name, t...)
		}
	}
	return out, nil
}

// ProjectSignature returns a copy of the structure over sig, keeping only
// the relations sig knows about and dropping the rest (the inverse of the
// augmentation step: it strips pinning relations).
func (s *Structure) ProjectSignature(sig *Signature) (*Structure, error) {
	out := New(sig)
	for _, name := range s.elems {
		_, _ = out.AddElem(name)
	}
	for _, r := range sig.rels {
		ar, ok := s.sig.Arity(r.Name)
		if !ok {
			continue
		}
		if ar != r.Arity {
			return nil, fmt.Errorf("structure: relation %s arity mismatch (%d vs %d)", r.Name, ar, r.Arity)
		}
		for _, t := range s.tuples[r.Name] {
			_ = out.AddTuple(r.Name, t...)
		}
	}
	return out, nil
}

// IsAllLoop reports whether element e carries the "all loops" pattern:
// for every relation R of arity k, the tuple (e,...,e) is present.
func (s *Structure) IsAllLoop(e int) bool {
	for _, r := range s.sig.rels {
		t := make([]int, r.Arity)
		for i := range t {
			t[i] = e
		}
		if !s.HasTuple(r.Name, t) {
			return false
		}
	}
	return true
}

// HasAllLoopElem reports whether some element carries all loops.  Every
// pp-formula has at least one answer on such a structure, a property the
// distinguishing-structure lemmas (5.12/5.13) rely on.
func (s *Structure) HasAllLoopElem() bool {
	for e := range s.elems {
		if s.IsAllLoop(e) {
			return true
		}
	}
	return false
}

// Fingerprint returns a cheap isomorphism-invariant summary used to bucket
// structures before expensive equivalence tests.
func (s *Structure) Fingerprint() string {
	var b strings.Builder
	fmt.Fprintf(&b, "n=%d", len(s.elems))
	for _, r := range s.sig.rels {
		fmt.Fprintf(&b, ";%s=%d", r.Name, len(s.tuples[r.Name]))
	}
	// Degree multiset: number of tuple-slots each element occupies.
	deg := make([]int, len(s.elems))
	for _, ts := range s.tuples {
		for _, t := range ts {
			for _, v := range t {
				deg[v]++
			}
		}
	}
	sort.Ints(deg)
	b.WriteString(";deg=")
	for i, d := range deg {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(d))
	}
	return b.String()
}

// String renders the structure in fact syntax, elements listed first.
func (s *Structure) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "universe {%s}", strings.Join(s.elems, ", "))
	for _, r := range s.sig.rels {
		for _, t := range s.tuples[r.Name] {
			b.WriteString("; ")
			b.WriteString(r.Name)
			b.WriteByte('(')
			for i, v := range t {
				if i > 0 {
					b.WriteByte(',')
				}
				b.WriteString(s.elems[v])
			}
			b.WriteByte(')')
		}
	}
	return b.String()
}
