package wal

import (
	"errors"
	"os"
	"path"
	"sync"
)

// ErrInjected is the error every FaultFS operation returns once a fault
// has fired (budget exhausted, Crash called, or an op hook tripped):
// the moral equivalent of the process dying mid-syscall.
var ErrInjected = errors.New("wal: injected fault")

// FaultFS wraps an FS with injectable failure modes for the recovery
// test matrix:
//
//   - a write byte budget (CrashAfterBytes): the write that crosses it
//     lands only partially — a torn final record — and every later
//     operation fails, modelling a process killed mid-write;
//   - power loss (Crash): unsynced bytes written since the last Sync
//     are dropped from the underlying files, modelling lost page cache
//     under SyncNever/SyncBatch;
//   - per-operation errors (SetOpError): crash-point errors on create,
//     rename, sync, … — e.g. dying between a snapshot rename and the
//     WAL truncation during compaction;
//   - read-side corruption (SetReadTransform): flipped bits and short
//     reads served to recovery.
//
// Renames are treated as durable once performed (the store only renames
// files it has already synced), a documented simplification of real
// directory-entry crash semantics.  FaultFS is safe for concurrent use.
type FaultFS struct {
	inner FS

	mu      sync.Mutex
	files   map[string]*faultFileState
	crashed bool
	budget  int64 // remaining writable bytes; < 0 = unlimited

	opErr     func(op, name string) error
	writeHook func(name string, p []byte) error
	readHook  func(name string, data []byte) ([]byte, error)
}

// faultFileState tracks one file's written vs synced extent.
type faultFileState struct {
	size   int64
	synced int64
}

// NewFaultFS wraps inner (typically OSFS over a temp dir) with no
// faults armed: behaviour is transparent until a knob is set.
func NewFaultFS(inner FS) *FaultFS {
	return &FaultFS{inner: inner, files: make(map[string]*faultFileState), budget: -1}
}

// CrashAfterBytes arms the write budget: after n more payload bytes the
// writing operation tears (a prefix lands) and the FS behaves crashed.
func (f *FaultFS) CrashAfterBytes(n int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.budget = n
}

// Crash simulates power loss: every tracked file is truncated back to
// its last synced size (dropping unsynced page-cache bytes) and all
// subsequent operations fail with ErrInjected.
func (f *FaultFS) Crash() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.crashed = true
	var firstErr error
	for name, st := range f.files {
		if st.synced < st.size {
			if err := f.inner.Truncate(name, st.synced); err != nil && firstErr == nil {
				firstErr = err
			}
			st.size = st.synced
		}
	}
	return firstErr
}

// Crashed reports whether a fault has fired.
func (f *FaultFS) Crashed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.crashed
}

// SetOpError installs a hook consulted before every operation with the
// operation name ("create", "append", "write", "sync", "rename",
// "remove", "truncate", "readfile", "readdir", "mkdir", "syncdir") and
// the path; a non-nil return aborts the operation with that error and
// marks the FS crashed.
func (f *FaultFS) SetOpError(hook func(op, name string) error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.opErr = hook
}

// SetWriteHook installs a hook invoked (outside the FS lock) before
// each write's bytes reach the inner FS — a place for tests to block a
// writer mid-append.
func (f *FaultFS) SetWriteHook(hook func(name string, p []byte) error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.writeHook = hook
}

// SetReadTransform installs a hook that may corrupt or shorten the
// bytes ReadFile returns — flipped bits and short reads for the
// recovery matrix.
func (f *FaultFS) SetReadTransform(hook func(name string, data []byte) ([]byte, error)) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.readHook = hook
}

// check consults crash state and the op hook.
func (f *FaultFS) check(op, name string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return ErrInjected
	}
	if f.opErr != nil {
		if err := f.opErr(op, name); err != nil {
			f.crashed = true
			return err
		}
	}
	return nil
}

// track returns (creating if needed) the state of name.
func (f *FaultFS) track(name string, size int64) *faultFileState {
	st := f.files[name]
	if st == nil {
		st = &faultFileState{size: size, synced: size}
		f.files[name] = st
	}
	return st
}

// MkdirAll implements FS.
func (f *FaultFS) MkdirAll(dir string) error {
	if err := f.check("mkdir", dir); err != nil {
		return err
	}
	return f.inner.MkdirAll(dir)
}

// Create implements FS.
func (f *FaultFS) Create(name string) (File, error) {
	if err := f.check("create", name); err != nil {
		return nil, err
	}
	inner, err := f.inner.Create(name)
	if err != nil {
		return nil, err
	}
	f.mu.Lock()
	f.files[name] = &faultFileState{}
	f.mu.Unlock()
	return &faultFile{fs: f, name: name, inner: inner}, nil
}

// OpenAppend implements FS.
func (f *FaultFS) OpenAppend(name string) (File, error) {
	if err := f.check("append", name); err != nil {
		return nil, err
	}
	inner, err := f.inner.OpenAppend(name)
	if err != nil {
		return nil, err
	}
	var size int64
	if data, rerr := f.inner.ReadFile(name); rerr == nil {
		size = int64(len(data))
	}
	f.mu.Lock()
	f.track(name, size)
	f.mu.Unlock()
	return &faultFile{fs: f, name: name, inner: inner}, nil
}

// ReadFile implements FS, applying the read transform if armed.
func (f *FaultFS) ReadFile(name string) ([]byte, error) {
	if err := f.check("readfile", name); err != nil {
		return nil, err
	}
	data, err := f.inner.ReadFile(name)
	if err != nil {
		return nil, err
	}
	f.mu.Lock()
	hook := f.readHook
	f.mu.Unlock()
	if hook != nil {
		return hook(name, data)
	}
	return data, nil
}

// ReadDir implements FS.
func (f *FaultFS) ReadDir(dir string) ([]string, error) {
	if err := f.check("readdir", dir); err != nil {
		return nil, err
	}
	return f.inner.ReadDir(dir)
}

// Rename implements FS, transferring the tracked extent to the new
// name (renames of synced files are treated as durable).
func (f *FaultFS) Rename(oldname, newname string) error {
	if err := f.check("rename", oldname); err != nil {
		return err
	}
	if err := f.inner.Rename(oldname, newname); err != nil {
		return err
	}
	f.mu.Lock()
	if st := f.files[oldname]; st != nil {
		delete(f.files, oldname)
		f.files[newname] = st
	}
	f.mu.Unlock()
	return nil
}

// Remove implements FS.
func (f *FaultFS) Remove(name string) error {
	if err := f.check("remove", name); err != nil {
		return err
	}
	if err := f.inner.Remove(name); err != nil {
		return err
	}
	f.mu.Lock()
	delete(f.files, name)
	f.mu.Unlock()
	return nil
}

// Truncate implements FS.
func (f *FaultFS) Truncate(name string, size int64) error {
	if err := f.check("truncate", name); err != nil {
		return err
	}
	if err := f.inner.Truncate(name, size); err != nil {
		return err
	}
	f.mu.Lock()
	if st := f.files[name]; st != nil {
		st.size = size
		if st.synced > size {
			st.synced = size
		}
	}
	f.mu.Unlock()
	return nil
}

// SyncDir implements FS.
func (f *FaultFS) SyncDir(dir string) error {
	if err := f.check("syncdir", dir); err != nil {
		return err
	}
	return f.inner.SyncDir(dir)
}

// faultFile interposes the budget and hooks on one open file.
type faultFile struct {
	fs    *FaultFS
	name  string
	inner File
}

// Write implements File: it consumes the byte budget, tearing the write
// that crosses it.
func (w *faultFile) Write(p []byte) (int, error) {
	w.fs.mu.Lock()
	hook := w.fs.writeHook
	w.fs.mu.Unlock()
	if hook != nil {
		if err := hook(w.name, p); err != nil {
			w.fs.mu.Lock()
			w.fs.crashed = true
			w.fs.mu.Unlock()
			return 0, err
		}
	}
	if err := w.fs.check("write", w.name); err != nil {
		return 0, err
	}
	w.fs.mu.Lock()
	allow := len(p)
	torn := false
	if w.fs.budget >= 0 {
		if int64(allow) > w.fs.budget {
			allow = int(w.fs.budget)
			torn = true
			w.fs.crashed = true
		}
		w.fs.budget -= int64(allow)
	}
	w.fs.mu.Unlock()
	n := 0
	var err error
	if allow > 0 {
		n, err = w.inner.Write(p[:allow])
	}
	w.fs.mu.Lock()
	if st := w.fs.files[w.name]; st != nil {
		st.size += int64(n)
	}
	w.fs.mu.Unlock()
	if err != nil {
		return n, err
	}
	if torn {
		return n, ErrInjected
	}
	return n, nil
}

// Sync implements File, marking the written extent durable.
func (w *faultFile) Sync() error {
	if err := w.fs.check("sync", w.name); err != nil {
		return err
	}
	if err := w.inner.Sync(); err != nil {
		return err
	}
	w.fs.mu.Lock()
	if st := w.fs.files[w.name]; st != nil {
		st.synced = st.size
	}
	w.fs.mu.Unlock()
	return nil
}

// Close implements File.  Close is allowed even after a crash so the
// store's cleanup paths don't wedge.
func (w *faultFile) Close() error { return w.inner.Close() }

// notExist reports whether err means "file does not exist" (shared by
// store recovery across FS implementations).
func notExist(err error) bool { return errors.Is(err, os.ErrNotExist) }

// join builds FS paths with forward slashes (OS paths accept them on
// the platforms the tests run on; FaultFS keys its tracking map by the
// joined string, so the store must join consistently).
func join(elem ...string) string { return path.Join(elem...) }
