package wal

import (
	"io"
	"os"
	"path/filepath"
)

// File is the writable-file surface the store needs: sequential writes,
// durability barriers, and close.  *os.File satisfies it.
type File interface {
	io.Writer
	// Sync flushes the file's written bytes to stable storage.
	Sync() error
	io.Closer
}

// FS abstracts the filesystem operations the store performs, so tests
// can interpose fault injection (FaultFS) between the store and the
// disk.  Paths are slash-joined relative paths rooted wherever the
// implementation chooses; OSFS treats them as ordinary OS paths.
type FS interface {
	// MkdirAll creates dir and any missing parents.
	MkdirAll(dir string) error
	// Create truncates-or-creates name and opens it for writing.
	Create(name string) (File, error)
	// OpenAppend opens name for appending, creating it if absent.
	OpenAppend(name string) (File, error)
	// ReadFile returns name's full contents ([]byte(nil), error) on
	// failure; a missing file is an error satisfying os.IsNotExist
	// semantics via errors.Is(err, os.ErrNotExist).
	ReadFile(name string) ([]byte, error)
	// ReadDir lists dir's entry names (files only, any order).
	ReadDir(dir string) ([]string, error)
	// Rename atomically replaces newname with oldname.
	Rename(oldname, newname string) error
	// Remove deletes name.
	Remove(name string) error
	// Truncate cuts name to size bytes.
	Truncate(name string, size int64) error
	// SyncDir flushes dir's metadata (entry renames/creates) to stable
	// storage; implementations may no-op where unsupported.
	SyncDir(dir string) error
}

// OSFS is the production FS: plain os calls.  The zero value is ready
// to use.
type OSFS struct{}

// MkdirAll implements FS.
func (OSFS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

// Create implements FS.
func (OSFS) Create(name string) (File, error) { return os.Create(name) }

// OpenAppend implements FS.
func (OSFS) OpenAppend(name string) (File, error) {
	return os.OpenFile(name, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
}

// ReadFile implements FS.
func (OSFS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }

// ReadDir implements FS.
func (OSFS) ReadDir(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	return names, nil
}

// Rename implements FS.
func (OSFS) Rename(oldname, newname string) error { return os.Rename(oldname, newname) }

// Remove implements FS.
func (OSFS) Remove(name string) error { return os.Remove(name) }

// Truncate implements FS.
func (OSFS) Truncate(name string, size int64) error { return os.Truncate(name, size) }

// SyncDir implements FS: it opens the directory and fsyncs it so entry
// creations and renames inside it are durable.  Errors opening or
// syncing the directory are returned; callers on filesystems without
// directory sync semantics may ignore them.
func (OSFS) SyncDir(dir string) error {
	d, err := os.Open(filepath.Clean(dir))
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
