package wal

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/structure"
)

// prefixStates replays goldenOps sequentially and fingerprints the state
// after every prefix of k ops, k = 0..len(goldenOps): the set of valid
// earlier versions recovery is allowed to land on.
func prefixStates(t *testing.T) []map[string]string {
	t.Helper()
	states := make([]map[string]string, 0, len(goldenOps)+1)
	mirror := make(map[string]*structure.Structure)
	states = append(states, mirrorKeys(t, mirror))
	for _, o := range goldenOps {
		applyOp(t, mirror, o)
		states = append(states, mirrorKeys(t, mirror))
	}
	return states
}

// stateIndex returns which prefix state got equals, or -1.
func stateIndex(got map[string]string, states []map[string]string) int {
	for i, want := range states {
		if len(got) != len(want) {
			continue
		}
		match := true
		for k, v := range want {
			if got[k] != v {
				match = false
				break
			}
		}
		if match {
			return i
		}
	}
	return -1
}

// writeGoldenLog builds the golden WAL in dir and returns its bytes.
func writeGoldenLog(t *testing.T, dir string) []byte {
	t.Helper()
	runGolden(t, dir, nil, SyncAlways)
	data, err := os.ReadFile(filepath.Join(dir, walFile))
	if err != nil {
		t.Fatalf("read golden log: %v", err)
	}
	return data
}

// openDirWithLog writes log into a fresh store dir and recovers it.
func openDirWithLog(t *testing.T, log []byte) (*RecoverReport, error) {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, walFile), log, 0o644); err != nil {
		t.Fatalf("write log: %v", err)
	}
	s, rep, err := Open(Options{Dir: dir})
	if err != nil {
		return nil, err
	}
	s.Close()
	return rep, nil
}

// TestRecoverEveryPrefix is the torn-tail half of the recovery matrix:
// for EVERY byte-length prefix of the golden WAL — every possible point
// a write could tear or power could cut — recovery must succeed and
// land exactly on the state reached by sequentially replaying the
// records fully contained in the prefix.  Corrupted tails truncate;
// they never poison.
func TestRecoverEveryPrefix(t *testing.T) {
	golden := writeGoldenLog(t, t.TempDir())
	states := prefixStates(t)

	// Record boundaries (absolute file offsets) for computing, per
	// prefix length, how many whole records it contains.
	bounds := []int{len(walMagic)}
	body := golden[len(walMagic):]
	off := 0
	for off < len(body) {
		_, n, err := decodeRecord(body[off:])
		if err != nil {
			t.Fatalf("golden log corrupt at %d: %v", off, err)
		}
		off += n
		bounds = append(bounds, len(walMagic)+off)
	}
	if len(bounds) != len(goldenOps)+1 {
		t.Fatalf("golden log has %d records, want %d", len(bounds)-1, len(goldenOps))
	}

	for L := 0; L <= len(golden); L++ {
		rep, err := openDirWithLog(t, golden[:L])
		if err != nil {
			t.Fatalf("prefix %d/%d: recovery failed: %v", L, len(golden), err)
		}
		whole := 0
		for whole+1 < len(bounds) && bounds[whole+1] <= L {
			whole++
		}
		got := recoveredKeys(t, rep)
		if !sameState(t, got, states[whole]) {
			t.Fatalf("prefix %d/%d: recovered state is not the %d-record replay (records=%d, report=%+v)",
				L, len(golden), whole, rep.Records, rep)
		}
		if rep.Records != whole {
			t.Fatalf("prefix %d: replayed %d records, want %d", L, rep.Records, whole)
		}
		switch {
		case L == 0 || containsInt(bounds, L):
			if rep.TruncatedAt != -1 {
				t.Fatalf("prefix %d ends on a record boundary but reported truncation %+v", L, rep)
			}
		default: // torn header or torn record
			if rep.TruncatedAt == -1 {
				t.Fatalf("prefix %d is torn but recovery reported a clean log", L)
			}
		}
	}
}

func containsInt(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

// TestRecoverBitFlips is the corruption half of the matrix: flipping
// any single bit of the log must leave recovery at SOME valid prefix
// state — the CRC (or framing) catches the damage and truncates from
// the first affected record.  Every byte is hit once; a second pass
// flips random multi-bit patterns.
func TestRecoverBitFlips(t *testing.T) {
	golden := writeGoldenLog(t, t.TempDir())
	states := prefixStates(t)

	check := func(label string, corrupted []byte) {
		t.Helper()
		rep, err := openDirWithLog(t, corrupted)
		if err != nil {
			t.Fatalf("%s: recovery failed: %v", label, err)
		}
		if idx := stateIndex(recoveredKeys(t, rep), states); idx < 0 {
			t.Fatalf("%s: recovered state matches no sequential prefix (report=%+v)", label, rep)
		}
	}

	for i := range golden {
		bit := byte(1) << uint(i%8)
		corrupted := append([]byte(nil), golden...)
		corrupted[i] ^= bit
		check(fmt.Sprintf("flip byte %d bit %d", i, i%8), corrupted)
	}

	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 64; trial++ {
		corrupted := append([]byte(nil), golden...)
		for k := 0; k < 1+rng.Intn(5); k++ {
			corrupted[rng.Intn(len(corrupted))] ^= byte(1 + rng.Intn(255))
		}
		check(fmt.Sprintf("multiflip trial %d", trial), corrupted)
	}
}

// TestKillRestartDifferentialSyncAlways is the acknowledged-durability
// test: a store running under SyncAlways is killed mid-write at a
// random byte (torn final record, with and without the page cache
// dropping the unsynced partial bytes), and recovery must land on
// EXACTLY the acknowledged history — zero acked-batch loss, and the
// torn unacknowledged record dropped.
func TestKillRestartDifferentialSyncAlways(t *testing.T) {
	for _, drop := range []bool{false, true} {
		name := "tornTailKept"
		if drop {
			name = "powerLossDropsUnsynced"
		}
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(11))
			for trial := 0; trial < 24; trial++ {
				dir := t.TempDir()
				ffs := NewFaultFS(OSFS{})
				s, _, err := Open(Options{Dir: dir, FS: ffs, Sync: SyncAlways})
				if err != nil {
					t.Fatalf("Open: %v", err)
				}
				ffs.CrashAfterBytes(int64(rng.Intn(2000)))

				acked := make(map[string]*structure.Structure)
				killed := false
				for _, o := range goldenOps {
					if o.create {
						if err := s.LogCreate(o.name, o.sig, o.facts); err != nil {
							killed = true
							break
						}
					} else {
						pre := acked[o.name].Version()
						if err := s.LogAppend(o.name, o.batchID, pre, o.facts); err != nil {
							killed = true
							break
						}
					}
					applyOp(t, acked, o)
				}
				if killed && !ffs.Crashed() {
					t.Fatalf("trial %d: op failed without an injected fault", trial)
				}
				if drop {
					ffs.Crash() // power loss: unsynced bytes vanish
				}
				s.Close() // ignore errors; the process "died"

				_, rep, err := Open(Options{Dir: dir})
				if err != nil {
					t.Fatalf("trial %d: recovery failed: %v", trial, err)
				}
				if !sameState(t, recoveredKeys(t, rep), mirrorKeys(t, acked)) {
					t.Fatalf("trial %d (killed=%v): recovered state differs from acknowledged history\n got %v\nwant %v",
						trial, killed, recoveredKeys(t, rep), mirrorKeys(t, acked))
				}
			}
		})
	}
}

// TestPowerLossWeakerPolicies: under SyncBatch and SyncNever a power
// loss may forget recent acknowledged batches, but recovery must still
// land on a valid sequential prefix — never a corrupt or mixed state.
func TestPowerLossWeakerPolicies(t *testing.T) {
	states := prefixStates(t)
	for _, policy := range []SyncPolicy{SyncBatch, SyncNever} {
		t.Run(policy.String(), func(t *testing.T) {
			dir := t.TempDir()
			ffs := NewFaultFS(OSFS{})
			s, _, err := Open(Options{Dir: dir, FS: ffs, Sync: policy, BatchAppends: 3})
			if err != nil {
				t.Fatalf("Open: %v", err)
			}
			mirror := make(map[string]*structure.Structure)
			for _, o := range goldenOps {
				logOp(t, s, mirror, o)
				applyOp(t, mirror, o)
			}
			ffs.Crash() // no Close, no Flush: page cache gone
			_, rep, err := Open(Options{Dir: dir})
			if err != nil {
				t.Fatalf("recovery failed: %v", err)
			}
			idx := stateIndex(recoveredKeys(t, rep), states)
			if idx < 0 {
				t.Fatalf("recovered state matches no sequential prefix: %+v", rep)
			}
			// Creations always fsync, so once op 2 (create h) was acked,
			// at least ops 0..2 are durable... but only if we got that
			// far before the crash — here we always did.
			if policy == SyncBatch && idx < 3 {
				t.Fatalf("SyncBatch lost a synced creation: landed on prefix %d", idx)
			}
		})
	}
}

// TestCompactionCrashPoints kills compaction at every FS operation in
// turn (create, write, sync, rename, truncate, …) and checks recovery
// still reproduces the full pre-compaction state: snapshots and WAL
// replay are idempotent, so a half-finished compaction is harmless.
func TestCompactionCrashPoints(t *testing.T) {
	for failAt := 1; ; failAt++ {
		dir := t.TempDir()
		ffs := NewFaultFS(OSFS{})
		s, _, err := Open(Options{Dir: dir, FS: ffs, Sync: SyncAlways})
		if err != nil {
			t.Fatalf("Open: %v", err)
		}
		mirror := make(map[string]*structure.Structure)
		for _, o := range goldenOps {
			logOp(t, s, mirror, o)
			applyOp(t, mirror, o)
		}
		ops := 0
		ffs.SetOpError(func(op, name string) error {
			ops++
			if ops == failAt {
				return ErrInjected
			}
			return nil
		})
		cerr := s.Compact(mirror)
		s.Close()

		_, rep, err := Open(Options{Dir: dir})
		if err != nil {
			t.Fatalf("failAt=%d: recovery failed: %v", failAt, err)
		}
		if !sameState(t, recoveredKeys(t, rep), mirrorKeys(t, mirror)) {
			t.Fatalf("failAt=%d (compact err=%v): recovered state differs from pre-compaction state",
				failAt, cerr)
		}
		if cerr == nil {
			// Compaction ran out of operations to fail: every crash
			// point has been exercised, and the successful run must have
			// truncated the WAL down to snapshots only.
			if rep.Records != 0 || rep.Snapshots != 2 {
				t.Fatalf("post-compaction recovery: %+v", rep)
			}
			if failAt < 5 {
				t.Fatalf("compaction finished after only %d fs ops — matrix too small?", failAt)
			}
			return
		}
		if !errors.Is(cerr, ErrInjected) {
			t.Fatalf("failAt=%d: unexpected compaction error: %v", failAt, cerr)
		}
	}
}

// TestShortReadAtBoot: recovery reading a shortened wal.log (disk gave
// back fewer bytes than written) behaves exactly like a torn tail.
func TestShortReadAtBoot(t *testing.T) {
	dir := t.TempDir()
	runGolden(t, dir, nil, SyncAlways)
	states := prefixStates(t)

	ffs := NewFaultFS(OSFS{})
	ffs.SetReadTransform(func(name string, data []byte) ([]byte, error) {
		if filepath.Base(name) == walFile && len(data) > 40 {
			return data[:len(data)-37], nil
		}
		return data, nil
	})
	s, rep, err := Open(Options{Dir: dir, FS: ffs})
	if err != nil {
		t.Fatalf("recovery under short read failed: %v", err)
	}
	s.Close()
	if idx := stateIndex(recoveredKeys(t, rep), states); idx < 0 || idx >= len(states)-1 {
		t.Fatalf("short read should truncate to an earlier prefix, got index %d", idx)
	}
	if rep.TruncatedAt == -1 {
		t.Fatalf("short read not reported as truncation")
	}
}
