package wal

import (
	"fmt"
	"net/url"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/parser"
	"repro/internal/structure"
)

// SyncPolicy selects when the store fsyncs the WAL after an append.
type SyncPolicy int

const (
	// SyncBatch (the default) fsyncs every BatchAppends appends and on
	// Flush/Close/compaction — bounded loss under power failure, near
	// SyncNever throughput.
	SyncBatch SyncPolicy = iota
	// SyncAlways fsyncs before every append acknowledges: an
	// acknowledged batch survives any crash.
	SyncAlways
	// SyncNever leaves flushing to the OS (and Flush/Close): fastest,
	// loses unsynced batches on power failure, still torn-proof.
	SyncNever
)

// String returns the policy's flag spelling.
func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncNever:
		return "never"
	default:
		return "batch"
	}
}

// ParseSyncPolicy parses the -fsync flag values "always", "batch",
// "never" (aliases: "off" = never, "" = batch).
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "always":
		return SyncAlways, nil
	case "", "batch":
		return SyncBatch, nil
	case "never", "off":
		return SyncNever, nil
	}
	return SyncBatch, fmt.Errorf("wal: unknown fsync policy %q (want always, batch, or never)", s)
}

// Options configures Open.
type Options struct {
	// Dir is the data directory (created if missing): wal.log plus a
	// snap/ subdirectory of columnar snapshots.
	Dir string
	// FS is the filesystem implementation (nil = OSFS).
	FS FS
	// Sync is the append fsync policy.
	Sync SyncPolicy
	// BatchAppends is the SyncBatch fsync interval in appends (≤ 0 = 32).
	BatchAppends int
}

// BatchResult is one recovered append batch's outcome, used by the
// serving layer to rebuild its idempotency memo: a retried batch id is
// answered from this instead of being re-applied.
type BatchResult struct {
	BatchID  string
	Inserted int
	Version  uint64
	Size     int
	Tuples   int
}

// RecoveredStructure is one structure rebuilt by Open: its registry
// name, the audited structure, and the batch-id-carrying appends seen
// for it, in log order.
type RecoveredStructure struct {
	Name    string
	B       *structure.Structure
	Batches []BatchResult
}

// RecoverReport summarizes a boot recovery.
type RecoverReport struct {
	// Structures are the recovered structures (snapshot + WAL tail),
	// sorted by name.
	Structures []RecoveredStructure
	// Snapshots and Records count what recovery consumed.
	Snapshots int
	Records   int
	// TruncatedAt is the WAL byte offset where a torn or corrupt tail
	// was cut (-1 when the log ended cleanly); Corruption describes the
	// violation.  Truncation is recovery working as designed — the
	// state at the cut is a valid earlier version — but operators want
	// to know it happened.
	TruncatedAt int64
	Corruption  string
}

// StoreStats is the store's telemetry snapshot.
type StoreStats struct {
	// WALBytes is the active log's current size, header included.
	WALBytes int64 `json:"wal_bytes"`
	// Appends / Creates count records logged since Open.
	Appends uint64 `json:"appends"`
	Creates uint64 `json:"creates"`
	// Compactions counts snapshot-then-truncate cycles since Open.
	Compactions uint64 `json:"compactions"`
	// Syncs counts explicit fsyncs issued on the WAL.
	Syncs uint64 `json:"syncs"`
	// Fsync is the active policy ("always", "batch", "never").
	Fsync string `json:"fsync"`
}

// Store is an open durability store: one WAL accepting appended
// records, plus the snapshot directory compaction writes into.  All
// methods are safe for concurrent use; the caller provides the
// higher-level ordering (log a batch under the same lock that applies
// it in memory).
type Store struct {
	dir          string
	fs           FS
	policy       SyncPolicy
	batchAppends int

	mu      sync.Mutex
	w       File
	size    int64
	pending int
	closed  bool
	// broken latches after a write or sync error: the on-disk suffix is
	// in an unknown state, so further appends are refused (recovery on
	// next boot truncates the torn tail).
	broken bool

	appends     atomic.Uint64
	creates     atomic.Uint64
	compactions atomic.Uint64
	syncs       atomic.Uint64
}

const walFile = "wal.log"

// Open opens (creating if needed) the store in opts.Dir, runs boot
// recovery — load snapshots, replay the WAL tail, verify versions,
// truncate any torn or corrupt suffix — and returns the store ready
// for appending plus the recovery report.  Recovery never lets a
// damaged tail poison the result: scanning stops at the first framing,
// checksum, or replay-chain violation and the state at that point is
// returned.
func Open(opts Options) (*Store, *RecoverReport, error) {
	fs := opts.FS
	if fs == nil {
		fs = OSFS{}
	}
	if opts.Dir == "" {
		return nil, nil, fmt.Errorf("wal: Options.Dir must be set")
	}
	batch := opts.BatchAppends
	if batch <= 0 {
		batch = 32
	}
	s := &Store{dir: opts.Dir, fs: fs, policy: opts.Sync, batchAppends: batch}
	if err := fs.MkdirAll(opts.Dir); err != nil {
		return nil, nil, err
	}
	if err := fs.MkdirAll(s.snapDir()); err != nil {
		return nil, nil, err
	}
	rep, err := s.recover()
	if err != nil {
		return nil, nil, err
	}
	return s, rep, nil
}

func (s *Store) snapDir() string { return join(s.dir, "snap") }
func (s *Store) walPath() string { return join(s.dir, walFile) }
func (s *Store) snapPath(name string) string {
	return join(s.snapDir(), url.PathEscape(name)+".snap")
}

// recover performs the boot sequence described on Open.
func (s *Store) recover() (*RecoverReport, error) {
	rep := &RecoverReport{TruncatedAt: -1}
	structs := make(map[string]*structure.Structure)
	batches := make(map[string][]BatchResult)

	// 1. Columnar snapshots.  A *.tmp file is a compaction that died
	// before its rename — ignored.  A renamed snapshot was fsynced
	// before the rename, so a decode failure here is disk corruption,
	// not a crash artifact: fail loudly rather than silently dropping
	// state the WAL no longer holds.
	names, err := s.fs.ReadDir(s.snapDir())
	if err != nil && !notExist(err) {
		return nil, err
	}
	sort.Strings(names)
	for _, fn := range names {
		if !strings.HasSuffix(fn, ".snap") {
			continue
		}
		data, err := s.fs.ReadFile(join(s.snapDir(), fn))
		if err != nil {
			return nil, fmt.Errorf("wal: snapshot %s: %w", fn, err)
		}
		name, b, err := DecodeSnapshot(data)
		if err != nil {
			return nil, fmt.Errorf("wal: snapshot %s: %w", fn, err)
		}
		if _, dup := structs[name]; dup {
			return nil, fmt.Errorf("wal: duplicate snapshot for structure %q", name)
		}
		structs[name] = b
		rep.Snapshots++
	}

	// 2. WAL tail.
	data, err := s.fs.ReadFile(s.walPath())
	switch {
	case notExist(err):
		data = nil
	case err != nil:
		return nil, err
	}
	rewrite := false // header missing/corrupt: recreate the file
	valid := 0       // valid record bytes after the magic
	if len(data) > 0 {
		if len(data) < len(walMagic) || string(data[:len(walMagic)]) != walMagic {
			rep.TruncatedAt = 0
			rep.Corruption = "bad or torn WAL header"
			rewrite = true
			data = nil
		} else {
			data = data[len(walMagic):]
		}
	}
	for valid < len(data) {
		rec, n, derr := decodeRecord(data[valid:])
		if derr != nil {
			rep.TruncatedAt = int64(len(walMagic) + valid)
			rep.Corruption = derr.Error()
			break
		}
		if aerr := applyRecord(structs, batches, rec); aerr != nil {
			rep.TruncatedAt = int64(len(walMagic) + valid)
			rep.Corruption = aerr.Error()
			break
		}
		valid += n
		rep.Records++
	}

	// 3. Make the file agree with what replay accepted: cut the torn
	// or corrupt suffix (or recreate a file whose header was damaged),
	// so the next append continues from a clean boundary.
	switch {
	case rewrite:
		if err := s.writeFreshWAL(s.walPath()); err != nil {
			return nil, err
		}
		s.size = int64(len(walMagic))
	case len(data) == 0 && rep.Records == 0 && rep.TruncatedAt < 0:
		// Missing or empty file: initialize the header.
		if err := s.writeFreshWAL(s.walPath()); err != nil {
			return nil, err
		}
		s.size = int64(len(walMagic))
	case valid < len(data):
		if err := s.fs.Truncate(s.walPath(), int64(len(walMagic)+valid)); err != nil {
			return nil, err
		}
		s.size = int64(len(walMagic) + valid)
	default:
		s.size = int64(len(walMagic) + valid)
	}

	// 4. Audit and publish.  Snapshot decoding audits on its own;
	// replayed tails re-audit here so a recovered structure is always
	// a verified one.
	for name, b := range structs {
		if err := b.Audit(); err != nil {
			return nil, fmt.Errorf("wal: recovered structure %q: %w", name, err)
		}
		rep.Structures = append(rep.Structures, RecoveredStructure{Name: name, B: b, Batches: batches[name]})
	}
	sort.Slice(rep.Structures, func(i, j int) bool { return rep.Structures[i].Name < rep.Structures[j].Name })

	w, err := s.fs.OpenAppend(s.walPath())
	if err != nil {
		return nil, err
	}
	s.w = w
	return rep, nil
}

// writeFreshWAL creates path as an empty WAL (magic only), synced.
func (s *Store) writeFreshWAL(path string) error {
	f, err := s.fs.Create(path)
	if err != nil {
		return err
	}
	if _, err := f.Write([]byte(walMagic)); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return s.fs.SyncDir(s.dir)
}

// applyRecord replays one record onto the recovery state.  Replay is
// idempotent (Merge dedups), so records already covered by a snapshot
// re-apply as no-ops; the pre-version chain is verified so a gap —
// a record whose pre-apply version lies in the future of the state —
// stops replay as corruption.
func applyRecord(structs map[string]*structure.Structure, batches map[string][]BatchResult, rec Record) error {
	switch rec.Type {
	case recCreate:
		if _, ok := structs[rec.Name]; ok {
			// The creation predates an existing snapshot of the same
			// structure (compaction died before truncating): covered.
			return nil
		}
		var sig *structure.Signature
		if len(rec.Sig) > 0 {
			rels := make([]structure.RelSym, len(rec.Sig))
			for i, rs := range rec.Sig {
				rels[i] = structure.RelSym{Name: rs.Name, Arity: rs.Arity}
			}
			var err error
			sig, err = structure.NewSignature(rels...)
			if err != nil {
				return fmt.Errorf("wal: create %q: %w", rec.Name, err)
			}
		}
		b, err := parser.ParseStructure(rec.Facts, sig)
		if err != nil {
			return fmt.Errorf("wal: create %q: %w", rec.Name, err)
		}
		structs[rec.Name] = b
		return nil
	case recAppend:
		b := structs[rec.Name]
		if b == nil {
			return fmt.Errorf("wal: append to unknown structure %q", rec.Name)
		}
		cur := b.Version()
		if rec.PreVersion > cur {
			return fmt.Errorf("wal: append to %q expects version %d but state is at %d (gap)", rec.Name, rec.PreVersion, cur)
		}
		delta, err := parser.ParseStructure(rec.Facts, b.Signature())
		if err != nil {
			return fmt.Errorf("wal: append to %q: %w", rec.Name, err)
		}
		inserted, err := structure.Merge(b, delta)
		if err != nil {
			return fmt.Errorf("wal: append to %q: %w", rec.Name, err)
		}
		if rec.PreVersion < cur && b.Version() != cur {
			// A batch logged before the snapshot's version must already
			// be contained in it; inserting anything means the log and
			// snapshot disagree.
			return fmt.Errorf("wal: append to %q at pre-version %d mutated snapshot state at %d", rec.Name, rec.PreVersion, cur)
		}
		if rec.BatchID != "" {
			batches[rec.Name] = append(batches[rec.Name], BatchResult{
				BatchID:  rec.BatchID,
				Inserted: inserted,
				Version:  b.Version(),
				Size:     b.Size(),
				Tuples:   b.NumTuples(),
			})
		}
		return nil
	default:
		return fmt.Errorf("wal: unknown record type %d", rec.Type)
	}
}

// LogCreate durably logs a structure creation (name, signature spec,
// initial facts).  Creations always fsync regardless of the append
// policy: they are rare, and a structure's existence should survive
// any crash once its creation was acknowledged.
func (s *Store) LogCreate(name string, sig []RelSpec, facts string) error {
	if err := s.writeRecord(Record{Type: recCreate, Name: name, Sig: sig, Facts: facts}, true); err != nil {
		return err
	}
	s.creates.Add(1)
	return nil
}

// LogAppend durably logs one fact-append batch.  preVersion is the
// structure's version immediately before the caller applies the batch
// in memory; the caller must hold the structure's write lock across
// both the log write and the apply so the log order equals the apply
// order.  Under SyncAlways the record is fsynced before LogAppend
// returns — the acknowledgement guarantee.
func (s *Store) LogAppend(name, batchID string, preVersion uint64, facts string) error {
	sync := false
	switch s.policy {
	case SyncAlways:
		sync = true
	case SyncBatch:
		s.mu.Lock()
		sync = s.pending+1 >= s.batchAppends
		s.mu.Unlock()
	}
	if err := s.writeRecord(Record{Type: recAppend, Name: name, BatchID: batchID, PreVersion: preVersion, Facts: facts}, sync); err != nil {
		return err
	}
	s.appends.Add(1)
	return nil
}

// writeRecord frames and writes rec, optionally fsyncing.
func (s *Store) writeRecord(rec Record, sync bool) error {
	buf := appendRecord(nil, rec)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("wal: store is closed")
	}
	if s.broken {
		return fmt.Errorf("wal: store is failed (earlier write error); restart to recover")
	}
	n, err := s.w.Write(buf)
	s.size += int64(n)
	if err != nil {
		s.broken = true
		return err
	}
	s.pending++
	if sync {
		if err := s.syncLocked(); err != nil {
			return err
		}
	}
	return nil
}

// syncLocked fsyncs the WAL under s.mu.
func (s *Store) syncLocked() error {
	if err := s.w.Sync(); err != nil {
		s.broken = true
		return err
	}
	s.pending = 0
	s.syncs.Add(1)
	return nil
}

// Flush fsyncs any buffered appends (SyncBatch/SyncNever callers use
// it at quiesce points; graceful shutdown calls it via Close).
func (s *Store) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || s.broken {
		return nil
	}
	if s.pending == 0 {
		return nil
	}
	return s.syncLocked()
}

// Close flushes and closes the log.  Idempotent.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	var err error
	if !s.broken && s.pending > 0 {
		err = s.w.Sync()
		if err == nil {
			s.syncs.Add(1)
		}
	}
	if cerr := s.w.Close(); err == nil {
		err = cerr
	}
	return err
}

// WALSize returns the active log's size in bytes (header included) —
// the serving layer's compaction trigger.
func (s *Store) WALSize() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.size
}

// Stats snapshots the store's telemetry.
func (s *Store) Stats() StoreStats {
	return StoreStats{
		WALBytes:    s.WALSize(),
		Appends:     s.appends.Load(),
		Creates:     s.creates.Load(),
		Compactions: s.compactions.Load(),
		Syncs:       s.syncs.Load(),
		Fsync:       s.policy.String(),
	}
}

// Compact snapshots every given structure and then truncates the WAL —
// the snapshot-then-truncate invariant: the WAL is only cut after
// every structure's snapshot is durably renamed into place, so at any
// crash point the union of snapshots and remaining WAL still replays
// to the current state (replay across a half-finished compaction is
// idempotent).
//
// The caller must hold every structure it passes quiescent (the
// serving layer holds all structure read locks plus its registry lock,
// blocking appends and creations) for the duration: a record logged
// concurrently with the truncation would be lost.
func (s *Store) Compact(structs map[string]*structure.Structure) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("wal: store is closed")
	}
	// 1. Snapshots: tmp + fsync + rename, then fsync the directory.
	for name, b := range structs {
		data := EncodeSnapshot(name, b)
		final := s.snapPath(name)
		tmp := final + ".tmp"
		f, err := s.fs.Create(tmp)
		if err != nil {
			return err
		}
		if _, err := f.Write(data); err != nil {
			f.Close()
			return err
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		if err := s.fs.Rename(tmp, final); err != nil {
			return err
		}
	}
	if err := s.fs.SyncDir(s.snapDir()); err != nil {
		return err
	}
	// 2. Truncate: atomically replace the WAL with a fresh empty one.
	tmp := s.walPath() + ".tmp"
	if err := s.writeFreshWAL(tmp); err != nil {
		return err
	}
	if err := s.fs.Rename(tmp, s.walPath()); err != nil {
		return err
	}
	if err := s.fs.SyncDir(s.dir); err != nil {
		return err
	}
	// 3. Swing the append handle onto the new file.  Failing here
	// breaks the store (the old handle points at an unlinked file);
	// recovery at next boot is unaffected.
	old := s.w
	w, err := s.fs.OpenAppend(s.walPath())
	if err != nil {
		s.broken = true
		return err
	}
	s.w = w
	old.Close()
	s.size = int64(len(walMagic))
	s.pending = 0
	s.compactions.Add(1)
	return nil
}
