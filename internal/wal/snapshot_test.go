package wal

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/structure"
)

// randomStructure builds a structure with a random signature, universe,
// and tuple set (duplicates attempted on purpose — they must not bump
// the version).
func randomStructure(t *testing.T, rng *rand.Rand) *structure.Structure {
	t.Helper()
	nRels := 1 + rng.Intn(3)
	rels := make([]structure.RelSym, nRels)
	for i := range rels {
		rels[i] = structure.RelSym{Name: fmt.Sprintf("R%d", i), Arity: 1 + rng.Intn(3)}
	}
	sig, err := structure.NewSignature(rels...)
	if err != nil {
		t.Fatalf("signature: %v", err)
	}
	b := structure.New(sig)
	nElems := rng.Intn(13)
	for i := 0; i < nElems; i++ {
		if _, err := b.AddElem(fmt.Sprintf("e%d", i)); err != nil {
			t.Fatalf("AddElem: %v", err)
		}
	}
	if nElems > 0 {
		nTuples := rng.Intn(40)
		for i := 0; i < nTuples; i++ {
			rel := rels[rng.Intn(nRels)]
			tup := make([]int, rel.Arity)
			for p := range tup {
				tup[p] = rng.Intn(nElems)
			}
			if err := b.AddTuple(rel.Name, tup...); err != nil {
				t.Fatalf("AddTuple: %v", err)
			}
		}
	}
	return b
}

// TestSnapshotRoundTripProperty: Decode(Encode(b)) is tuple- and
// version-identical to b across randomized relations, and the decoded
// structure passes a full audit.
func TestSnapshotRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 80; trial++ {
		b := randomStructure(t, rng)
		name := fmt.Sprintf("s-%d/strange name é%d", trial, trial)
		data := EncodeSnapshot(name, b)

		gotName, got, err := DecodeSnapshot(data)
		if err != nil {
			t.Fatalf("trial %d: decode: %v", trial, err)
		}
		if gotName != name {
			t.Fatalf("trial %d: name %q, want %q", trial, gotName, name)
		}
		if got.Version() != b.Version() {
			t.Fatalf("trial %d: version %d, want %d", trial, got.Version(), b.Version())
		}
		wantFacts, err := b.FactsString()
		if err != nil {
			t.Fatalf("trial %d: facts: %v", trial, err)
		}
		gotFacts, err := got.FactsString()
		if err != nil {
			t.Fatalf("trial %d: decoded facts: %v", trial, err)
		}
		if gotFacts != wantFacts {
			t.Fatalf("trial %d: decoded facts differ\n got %q\nwant %q", trial, gotFacts, wantFacts)
		}
		if err := got.Audit(); err != nil {
			t.Fatalf("trial %d: audit: %v", trial, err)
		}
		// Determinism: re-encoding the decoded structure is
		// byte-identical — snapshots are canonical.
		if data2 := EncodeSnapshot(gotName, got); string(data2) != string(data) {
			t.Fatalf("trial %d: re-encoding is not canonical", trial)
		}
	}
}

// TestSnapshotSingleBitFlipDetected: any single-bit flip anywhere in a
// snapshot must be rejected (CRC32C detects all single-bit errors; the
// magic and framing cover the rest).
func TestSnapshotSingleBitFlipDetected(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	b := randomStructure(t, rng)
	data := EncodeSnapshot("flip-me", b)
	for i := range data {
		corrupted := append([]byte(nil), data...)
		corrupted[i] ^= byte(1) << uint(i%8)
		if _, _, err := DecodeSnapshot(corrupted); err == nil {
			t.Fatalf("flip of byte %d accepted", i)
		}
	}
	// Truncations must also be rejected.
	for _, cut := range []int{0, 1, len(data) / 2, len(data) - 1} {
		if _, _, err := DecodeSnapshot(data[:cut]); err == nil {
			t.Fatalf("truncation to %d bytes accepted", cut)
		}
	}
}
