package wal

import (
	"strings"
	"testing"

	"repro/internal/parser"
	"repro/internal/structure"
)

// op is one step of a golden history: a structure creation or a fact
// append (with optional idempotency batch id).
type op struct {
	create  bool
	name    string
	sig     []RelSpec
	batchID string
	facts   string
}

// goldenOps is the history the recovery tests replay: two structures,
// several appends (one an exact duplicate batch), isolated elements.
var goldenOps = []op{
	{create: true, name: "g", sig: []RelSpec{{Name: "E", Arity: 2}, {Name: "L", Arity: 1}},
		facts: "universe a, b, c.\nE(a,b). E(b,c). L(a)."},
	{name: "g", batchID: "b1", facts: "E(c,a). L(b)."},
	{create: true, name: "h", facts: "P(x,y,z). Q(x)."},
	{name: "g", batchID: "b2", facts: "universe d.\nE(c,d). E(a,b)."},
	{name: "h", facts: "P(y,x,x)."},
	{name: "g", batchID: "b1dup", facts: "E(c,a). L(b)."}, // fully duplicate batch
	{name: "h", batchID: "b3", facts: "Q(y). Q(z)."},
}

// applyOp applies one op to an in-memory mirror, returning the inserted
// count for appends.
func applyOp(t *testing.T, mirror map[string]*structure.Structure, o op) int {
	t.Helper()
	if o.create {
		var sig *structure.Signature
		if len(o.sig) > 0 {
			rels := make([]structure.RelSym, len(o.sig))
			for i, rs := range o.sig {
				rels[i] = structure.RelSym{Name: rs.Name, Arity: rs.Arity}
			}
			s, err := structure.NewSignature(rels...)
			if err != nil {
				t.Fatalf("signature: %v", err)
			}
			sig = s
		}
		b, err := parser.ParseStructure(o.facts, sig)
		if err != nil {
			t.Fatalf("parse create %q: %v", o.name, err)
		}
		mirror[o.name] = b
		return 0
	}
	b := mirror[o.name]
	delta, err := parser.ParseStructure(o.facts, b.Signature())
	if err != nil {
		t.Fatalf("parse append to %q: %v", o.name, err)
	}
	n, err := structure.Merge(b, delta)
	if err != nil {
		t.Fatalf("merge into %q: %v", o.name, err)
	}
	return n
}

// logOp logs one op to the store (the caller applies it to its mirror
// to obtain the pre-version, mirroring the serving layer's
// log-then-apply order under the structure lock).
func logOp(t *testing.T, s *Store, mirror map[string]*structure.Structure, o op) {
	t.Helper()
	if o.create {
		if err := s.LogCreate(o.name, o.sig, o.facts); err != nil {
			t.Fatalf("LogCreate(%q): %v", o.name, err)
		}
		return
	}
	if err := s.LogAppend(o.name, o.batchID, mirror[o.name].Version(), o.facts); err != nil {
		t.Fatalf("LogAppend(%q): %v", o.name, err)
	}
}

// stateKey fingerprints a structure as version + canonical facts.
func stateKey(t *testing.T, b *structure.Structure) string {
	t.Helper()
	facts, err := b.FactsString()
	if err != nil {
		t.Fatalf("FactsString: %v", err)
	}
	return facts + "#v" + itoa(b.Version())
}

func itoa(v uint64) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// mirrorKeys fingerprints a whole mirror.
func mirrorKeys(t *testing.T, mirror map[string]*structure.Structure) map[string]string {
	t.Helper()
	out := make(map[string]string, len(mirror))
	for name, b := range mirror {
		out[name] = stateKey(t, b)
	}
	return out
}

// recoveredKeys fingerprints a recovery report.
func recoveredKeys(t *testing.T, rep *RecoverReport) map[string]string {
	t.Helper()
	out := make(map[string]string, len(rep.Structures))
	for _, rs := range rep.Structures {
		out[rs.Name] = stateKey(t, rs.B)
	}
	return out
}

func sameState(t *testing.T, got, want map[string]string) bool {
	t.Helper()
	if len(got) != len(want) {
		return false
	}
	for k, v := range want {
		if got[k] != v {
			return false
		}
	}
	return true
}

// runGolden logs goldenOps into a fresh store at dir and returns the
// final mirror.
func runGolden(t *testing.T, dir string, fs FS, sync SyncPolicy) map[string]*structure.Structure {
	t.Helper()
	s, rep, err := Open(Options{Dir: dir, FS: fs, Sync: sync})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if len(rep.Structures) != 0 {
		t.Fatalf("fresh dir recovered %d structures", len(rep.Structures))
	}
	mirror := make(map[string]*structure.Structure)
	for _, o := range goldenOps {
		logOp(t, s, mirror, o)
		applyOp(t, mirror, o)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	return mirror
}

func TestOpenEmptyDir(t *testing.T) {
	dir := t.TempDir()
	s, rep, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer s.Close()
	if len(rep.Structures) != 0 || rep.Records != 0 || rep.Snapshots != 0 {
		t.Fatalf("empty dir report: %+v", rep)
	}
	if rep.TruncatedAt != -1 {
		t.Fatalf("empty dir reported truncation at %d", rep.TruncatedAt)
	}
	if got := s.WALSize(); got != int64(len(walMagic)) {
		t.Fatalf("fresh WAL size = %d, want %d", got, len(walMagic))
	}
}

func TestStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	mirror := runGolden(t, dir, nil, SyncAlways)

	_, rep, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if rep.TruncatedAt != -1 {
		t.Fatalf("clean log reported truncation: %+v", rep)
	}
	if rep.Records != len(goldenOps) {
		t.Fatalf("replayed %d records, want %d", rep.Records, len(goldenOps))
	}
	if !sameState(t, recoveredKeys(t, rep), mirrorKeys(t, mirror)) {
		t.Fatalf("recovered state differs from mirror:\n got %v\nwant %v",
			recoveredKeys(t, rep), mirrorKeys(t, mirror))
	}
	for _, rs := range rep.Structures {
		if err := rs.B.Audit(); err != nil {
			t.Fatalf("audit %q: %v", rs.Name, err)
		}
	}
}

func TestBatchResultsRecovered(t *testing.T) {
	dir := t.TempDir()
	runGolden(t, dir, nil, SyncBatch)

	_, rep, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	byName := make(map[string][]BatchResult)
	for _, rs := range rep.Structures {
		byName[rs.Name] = rs.Batches
	}
	gIDs := []string{"b1", "b2", "b1dup"}
	if got := byName["g"]; len(got) != len(gIDs) {
		t.Fatalf("g batches = %+v, want ids %v", got, gIDs)
	} else {
		for i, id := range gIDs {
			if got[i].BatchID != id {
				t.Fatalf("g batch %d = %q, want %q", i, got[i].BatchID, id)
			}
		}
		// The duplicate batch must replay as a no-op: nothing inserted,
		// version unchanged since b2 (the last mutation of g).
		if got[2].Inserted != 0 {
			t.Fatalf("duplicate batch b1dup inserted %d", got[2].Inserted)
		}
		if got[2].Version != got[1].Version {
			t.Fatalf("no-op batch moved version: %+v", got)
		}
	}
	if got := byName["h"]; len(got) != 1 || got[0].BatchID != "b3" || got[0].Inserted != 2 {
		t.Fatalf("h batches = %+v, want one b3 with 2 inserted", got)
	}
}

func TestCompactionRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, _, err := Open(Options{Dir: dir, Sync: SyncBatch})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	mirror := make(map[string]*structure.Structure)
	for _, o := range goldenOps[:4] {
		logOp(t, s, mirror, o)
		applyOp(t, mirror, o)
	}
	if err := s.Compact(mirror); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if got := s.WALSize(); got != int64(len(walMagic)) {
		t.Fatalf("post-compaction WAL size = %d, want %d", got, len(walMagic))
	}
	// Append past the compaction: recovery must stitch snapshot + tail.
	for _, o := range goldenOps[4:] {
		logOp(t, s, mirror, o)
		applyOp(t, mirror, o)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	_, rep, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if rep.Snapshots != 2 {
		t.Fatalf("recovered %d snapshots, want 2", rep.Snapshots)
	}
	if rep.Records != len(goldenOps)-4 {
		t.Fatalf("replayed %d tail records, want %d", rep.Records, len(goldenOps)-4)
	}
	if !sameState(t, recoveredKeys(t, rep), mirrorKeys(t, mirror)) {
		t.Fatalf("snapshot+tail recovery differs from mirror")
	}
}

func TestCompactionIsIdempotentForReplay(t *testing.T) {
	// Snapshots taken without truncating the WAL (a compaction that dies
	// between the two steps) must recover to the same state: replay over
	// the snapshot is a no-op.
	dir := t.TempDir()
	s, _, err := Open(Options{Dir: dir, Sync: SyncAlways})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	mirror := make(map[string]*structure.Structure)
	for _, o := range goldenOps {
		logOp(t, s, mirror, o)
		applyOp(t, mirror, o)
	}
	// Write the snapshots by hand, leaving wal.log untouched.
	for name, b := range mirror {
		data := EncodeSnapshot(name, b)
		f, err := OSFS{}.Create(s.snapPath(name))
		if err != nil {
			t.Fatalf("create snapshot: %v", err)
		}
		if _, err := f.Write(data); err != nil {
			t.Fatalf("write snapshot: %v", err)
		}
		f.Close()
	}
	s.Close()

	_, rep, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatalf("reopen with snapshot+full WAL: %v", err)
	}
	if rep.Snapshots != 2 || rep.Records != len(goldenOps) {
		t.Fatalf("report: %+v", rep)
	}
	if !sameState(t, recoveredKeys(t, rep), mirrorKeys(t, mirror)) {
		t.Fatalf("idempotent replay over snapshots diverged")
	}
}

func TestParseSyncPolicy(t *testing.T) {
	cases := []struct {
		in   string
		want SyncPolicy
		ok   bool
	}{
		{"always", SyncAlways, true},
		{"Always", SyncAlways, true},
		{"batch", SyncBatch, true},
		{"", SyncBatch, true},
		{"never", SyncNever, true},
		{"off", SyncNever, true},
		{"sometimes", SyncBatch, false},
	}
	for _, c := range cases {
		got, err := ParseSyncPolicy(c.in)
		if (err == nil) != c.ok || got != c.want {
			t.Errorf("ParseSyncPolicy(%q) = %v, %v; want %v, ok=%v", c.in, got, err, c.want, c.ok)
		}
	}
	for _, p := range []SyncPolicy{SyncAlways, SyncBatch, SyncNever} {
		back, err := ParseSyncPolicy(p.String())
		if err != nil || back != p {
			t.Errorf("round trip %v via %q failed: %v, %v", p, p.String(), back, err)
		}
	}
}

func TestClosedStoreRefusesWrites(t *testing.T) {
	dir := t.TempDir()
	s, _, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if err := s.LogCreate("x", nil, "E(a,b)."); err == nil || !strings.Contains(err.Error(), "closed") {
		t.Fatalf("LogCreate on closed store: %v", err)
	}
	if err := s.Compact(nil); err == nil || !strings.Contains(err.Error(), "closed") {
		t.Fatalf("Compact on closed store: %v", err)
	}
}
