// Package wal gives the serving layer crash-safe durability: a
// write-ahead log of structure lifecycle events plus columnar snapshots
// of the structure store, with boot recovery that replays snapshot +
// WAL tail and verifies the result.
//
// The durable unit is exactly what the paper's reduction makes cheap to
// persist: every ep-count is a fixed linear combination of pp-term
// counts over a relational structure (Chen–Mengel, PODS 2016), so the
// service's entire state is the append-batch stream applied to
// structure.Structure — and the structure's columnar Relation stores
// (flat []int32 columns, posting lists derivable from them) are already
// nearly an on-disk format.  Two durable artifacts follow:
//
//   - wal.log — a sequential log of length-prefixed, CRC32C-checksummed,
//     versioned records: structure creations (name, signature, initial
//     facts) and fact-append batches (name, idempotency batch id,
//     pre-apply version, facts).  Records are written under the owning
//     structure's write lock *before* the in-memory apply, so an
//     acknowledged batch is always recoverable (under SyncAlways) and a
//     logged-but-unapplied batch is replayed on boot.
//   - snap/<name>.snap — columnar snapshots of each structure: element
//     names, relation columns, and the mutation version.  Posting lists
//     and dedup sets are deliberately absent — they are rebuilt on load
//     through the store's normal insertion path, which also re-derives
//     (and thereby verifies) the mutation version.
//
// Compaction is snapshot-then-truncate: with every structure quiesced
// by its caller, Compact writes fresh snapshots (tmp + fsync + rename)
// and then atomically replaces the WAL with an empty one, bounding
// recovery time by the data since the last compaction.
//
// Recovery (Open) loads the snapshots, then replays the WAL tail.
// Replay is idempotent — append batches dedup against what the
// snapshot already contains — and defensive: a torn final record, a
// flipped bit, a short read, or any other checksum/framing violation
// truncates the log at the last valid record and reports it, never
// poisoning the recovered state.  Every recovered structure passes
// structure.Audit, which re-verifies the version/column/posting-list
// invariants end to end.
//
// Robustness is proven, not assumed: FaultFS is an injectable FS
// implementation that models torn writes (byte-budget crashes mid
// record), lost unsynced suffixes (power loss under SyncNever/
// SyncBatch), per-operation errors, and read-side corruption; the
// package's recovery matrix drives it over every crash point and
// asserts each prefix of the log recovers to a valid earlier version
// whose counts equal a sequential replay.
package wal
