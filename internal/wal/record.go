package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// On-disk WAL framing.  The file opens with an 8-byte magic; each
// record is
//
//	uint32  payload length (little endian)
//	uint32  CRC32C of the payload (Castagnoli)
//	payload: [1B format version][1B record type][body]
//
// Bodies are uvarint/length-prefixed-string encoded.  Everything about
// the framing is designed for prefix-truncation recovery: a reader can
// always decide "valid record here" or "corrupt/torn from here on"
// without trusting anything beyond the bytes it has.

const (
	walMagic = "EPCQWAL0" // 8 bytes, includes the file-format version

	recFormat = 1 // payload format version inside each record

	// maxRecordLen bounds a record's payload so a corrupted length
	// field cannot cause a giant allocation: the largest legitimate
	// record is a create/append batch, itself bounded by the serving
	// layer's request cap (64 MiB) plus framing slack.
	maxRecordLen = 65<<20 + 1024
)

// Record types.
const (
	// recCreate logs a structure creation: name, signature spec, and
	// the initial facts text.
	recCreate = byte(1)
	// recAppend logs one fact-append batch: name, idempotency batch id
	// (may be empty), the structure version before the apply, and the
	// facts text.
	recAppend = byte(2)
)

// castagnoli is the CRC32C table shared by WAL records and snapshots.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// RelSpec names one relation of a logged signature (mirrors the serving
// layer's wire shape so create records replay exactly).
type RelSpec struct {
	Name  string
	Arity int
}

// Record is one decoded WAL record.
type Record struct {
	// Type is recCreate or recAppend (exported for telemetry; consumers
	// switch on the populated fields instead).
	Type byte
	// Name is the structure the record concerns.
	Name string
	// Sig is the creation signature spec (recCreate only; empty means
	// "infer from facts", exactly as at creation time).
	Sig []RelSpec
	// BatchID is the append batch's idempotency id ("" = none).
	BatchID string
	// PreVersion is the structure's version immediately before the
	// batch applied (recAppend only) — the replay-chain check.
	PreVersion uint64
	// Facts is the batch's (or creation's) fact text.
	Facts string
}

// enc is a tiny append-only encoder for record bodies.
type enc struct{ b []byte }

func (e *enc) u64(v uint64)   { e.b = binary.AppendUvarint(e.b, v) }
func (e *enc) str(s string)   { e.u64(uint64(len(s))); e.b = append(e.b, s...) }
func (e *enc) byte1(b byte)   { e.b = append(e.b, b) }
func (e *enc) raw(p []byte)   { e.b = append(e.b, p...) }
func (e *enc) u32le(v uint32) { e.b = binary.LittleEndian.AppendUint32(e.b, v) }

// dec is the matching sticky-error decoder.
type dec struct {
	b   []byte
	err error
}

func (d *dec) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf(format, args...)
	}
}

func (d *dec) u64() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b)
	if n <= 0 {
		d.fail("wal: truncated uvarint")
		return 0
	}
	d.b = d.b[n:]
	return v
}

func (d *dec) str() string {
	n := d.u64()
	if d.err != nil {
		return ""
	}
	if n > uint64(len(d.b)) {
		d.fail("wal: truncated string (want %d bytes, have %d)", n, len(d.b))
		return ""
	}
	s := string(d.b[:n])
	d.b = d.b[n:]
	return s
}

func (d *dec) byte1() byte {
	if d.err != nil {
		return 0
	}
	if len(d.b) == 0 {
		d.fail("wal: truncated byte")
		return 0
	}
	b := d.b[0]
	d.b = d.b[1:]
	return b
}

// appendRecord frames rec onto dst: length, CRC32C, payload.
func appendRecord(dst []byte, rec Record) []byte {
	var body enc
	body.byte1(recFormat)
	body.byte1(rec.Type)
	body.str(rec.Name)
	switch rec.Type {
	case recCreate:
		body.u64(uint64(len(rec.Sig)))
		for _, rs := range rec.Sig {
			body.str(rs.Name)
			body.u64(uint64(rs.Arity))
		}
		body.str(rec.Facts)
	case recAppend:
		body.str(rec.BatchID)
		body.u64(rec.PreVersion)
		body.str(rec.Facts)
	}
	var frame enc
	frame.u32le(uint32(len(body.b)))
	frame.u32le(crc32.Checksum(body.b, castagnoli))
	frame.raw(body.b)
	return append(dst, frame.b...)
}

// decodeRecord parses one framed record at the start of buf, returning
// the record and the number of bytes consumed.  Any framing or body
// violation — short frame, oversized length, CRC mismatch, unknown
// format/type, truncated body — returns an error; callers treat that
// as "corrupt or torn from here on".
func decodeRecord(buf []byte) (Record, int, error) {
	if len(buf) < 8 {
		return Record{}, 0, fmt.Errorf("wal: short frame header (%d bytes)", len(buf))
	}
	n := binary.LittleEndian.Uint32(buf[0:4])
	sum := binary.LittleEndian.Uint32(buf[4:8])
	if n > maxRecordLen {
		return Record{}, 0, fmt.Errorf("wal: record length %d exceeds cap", n)
	}
	if uint64(len(buf)) < 8+uint64(n) {
		return Record{}, 0, fmt.Errorf("wal: torn record (want %d payload bytes, have %d)", n, len(buf)-8)
	}
	payload := buf[8 : 8+n]
	if crc32.Checksum(payload, castagnoli) != sum {
		return Record{}, 0, fmt.Errorf("wal: record checksum mismatch")
	}
	d := dec{b: payload}
	if f := d.byte1(); d.err == nil && f != recFormat {
		return Record{}, 0, fmt.Errorf("wal: unknown record format %d", f)
	}
	rec := Record{Type: d.byte1()}
	rec.Name = d.str()
	switch rec.Type {
	case recCreate:
		nr := d.u64()
		if d.err == nil && nr > uint64(len(payload)) {
			return Record{}, 0, fmt.Errorf("wal: implausible signature size %d", nr)
		}
		for i := uint64(0); d.err == nil && i < nr; i++ {
			name := d.str()
			arity := d.u64()
			rec.Sig = append(rec.Sig, RelSpec{Name: name, Arity: int(arity)})
		}
		rec.Facts = d.str()
	case recAppend:
		rec.BatchID = d.str()
		rec.PreVersion = d.u64()
		rec.Facts = d.str()
	default:
		return Record{}, 0, fmt.Errorf("wal: unknown record type %d", rec.Type)
	}
	if d.err != nil {
		return Record{}, 0, d.err
	}
	if len(d.b) != 0 {
		return Record{}, 0, fmt.Errorf("wal: %d trailing payload bytes", len(d.b))
	}
	return rec, 8 + int(n), nil
}

// scanRecords walks buf (the WAL contents after the magic) and returns
// every valid record plus the byte offset — relative to buf — where
// scanning stopped.  A framing or checksum violation stops the scan;
// the returned error (nil when the log ends cleanly) describes it.
func scanRecords(buf []byte) (recs []Record, valid int, err error) {
	off := 0
	for off < len(buf) {
		rec, n, derr := decodeRecord(buf[off:])
		if derr != nil {
			return recs, off, derr
		}
		recs = append(recs, rec)
		off += n
	}
	return recs, off, nil
}
