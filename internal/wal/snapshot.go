package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"repro/internal/structure"
)

// snapMagic opens every snapshot file; the trailing digit is the
// snapshot format version.
const snapMagic = "EPCQSNP0"

// EncodeSnapshot serializes b as a columnar snapshot: the structure's
// name, signature, universe (element names in index order), and each
// relation's flat columns, wrapped in the same length+CRC32C framing
// the WAL uses.  Posting lists and dedup sets are not stored — they are
// derived data, rebuilt on decode through the store's normal insertion
// path.  The caller must hold the structure quiescent (no concurrent
// mutation) for the duration.
func EncodeSnapshot(name string, b *structure.Structure) []byte {
	var body enc
	body.u64(1) // snapshot payload format
	body.str(name)
	body.u64(b.Version())
	elems := b.ElemNames()
	body.u64(uint64(len(elems)))
	for _, e := range elems {
		body.str(e)
	}
	rels := b.Signature().Rels()
	body.u64(uint64(len(rels)))
	for _, rs := range rels {
		rel := b.Rel(rs.Name)
		body.str(rs.Name)
		body.u64(uint64(rs.Arity))
		body.u64(uint64(rel.Len()))
		// Column-major: the flat []int32 columns are written as-is,
		// position by position — the store's in-memory layout is the
		// on-disk layout.
		for p := 0; p < rs.Arity; p++ {
			for _, v := range rel.Col(p) {
				body.u64(uint64(uint32(v)))
			}
		}
	}
	var out enc
	out.raw([]byte(snapMagic))
	out.u32le(uint32(len(body.b)))
	out.u32le(crc32.Checksum(body.b, castagnoli))
	out.raw(body.b)
	return out.b
}

// DecodeSnapshot parses a snapshot file and rebuilds the structure:
// elements and tuples are re-inserted through AddElem/AddTuple, which
// regenerates the posting lists and dedup sets and re-derives the
// mutation version.  The rebuilt version must equal the stored one and
// the result must pass structure.Audit — a snapshot that decodes
// cleanly is a structure the engine can trust.
func DecodeSnapshot(data []byte) (name string, b *structure.Structure, err error) {
	if len(data) < len(snapMagic)+8 {
		return "", nil, fmt.Errorf("wal: snapshot too short (%d bytes)", len(data))
	}
	if string(data[:len(snapMagic)]) != snapMagic {
		return "", nil, fmt.Errorf("wal: bad snapshot magic")
	}
	rest := data[len(snapMagic):]
	n := binary.LittleEndian.Uint32(rest[0:4])
	sum := binary.LittleEndian.Uint32(rest[4:8])
	if uint64(n) != uint64(len(rest)-8) {
		return "", nil, fmt.Errorf("wal: snapshot length mismatch (header %d, payload %d)", n, len(rest)-8)
	}
	payload := rest[8:]
	if crc32.Checksum(payload, castagnoli) != sum {
		return "", nil, fmt.Errorf("wal: snapshot checksum mismatch")
	}
	d := dec{b: payload}
	if f := d.u64(); d.err == nil && f != 1 {
		return "", nil, fmt.Errorf("wal: unknown snapshot format %d", f)
	}
	name = d.str()
	version := d.u64()
	nElems := d.u64()
	if d.err != nil {
		return "", nil, d.err
	}
	if nElems > uint64(len(payload)) {
		return "", nil, fmt.Errorf("wal: implausible element count %d", nElems)
	}
	elems := make([]string, 0, nElems)
	for i := uint64(0); i < nElems; i++ {
		elems = append(elems, d.str())
	}
	nRels := d.u64()
	if d.err != nil {
		return "", nil, d.err
	}
	if nRels > uint64(len(payload)) {
		return "", nil, fmt.Errorf("wal: implausible relation count %d", nRels)
	}
	type relData struct {
		name  string
		arity int
		rows  int
		cols  [][]uint64
	}
	specs := make([]structure.RelSym, 0, nRels)
	rels := make([]relData, 0, nRels)
	for i := uint64(0); i < nRels; i++ {
		rname := d.str()
		arity := d.u64()
		rows := d.u64()
		if d.err != nil {
			return "", nil, d.err
		}
		if arity == 0 || arity > uint64(len(payload)) || rows > uint64(len(payload)) {
			return "", nil, fmt.Errorf("wal: implausible relation shape %d/%d", arity, rows)
		}
		rd := relData{name: rname, arity: int(arity), rows: int(rows)}
		rd.cols = make([][]uint64, arity)
		for p := range rd.cols {
			col := make([]uint64, rows)
			for r := range col {
				col[r] = d.u64()
			}
			rd.cols[p] = col
		}
		if d.err != nil {
			return "", nil, d.err
		}
		specs = append(specs, structure.RelSym{Name: rname, Arity: int(arity)})
		rels = append(rels, rd)
	}
	if d.err != nil {
		return "", nil, d.err
	}
	if len(d.b) != 0 {
		return "", nil, fmt.Errorf("wal: %d trailing snapshot bytes", len(d.b))
	}
	sig, err := structure.NewSignature(specs...)
	if err != nil {
		return "", nil, fmt.Errorf("wal: snapshot signature: %w", err)
	}
	b = structure.New(sig)
	for _, e := range elems {
		if _, err := b.AddElem(e); err != nil {
			return "", nil, fmt.Errorf("wal: snapshot universe: %w", err)
		}
	}
	t := make([]int, 0, 8)
	for _, rd := range rels {
		t = t[:0]
		for range rd.cols {
			t = append(t, 0)
		}
		for r := 0; r < rd.rows; r++ {
			for p := range rd.cols {
				v := rd.cols[p][r]
				if v >= uint64(len(elems)) {
					return "", nil, fmt.Errorf("wal: snapshot %s row %d: element %d out of range", rd.name, r, v)
				}
				t[p] = int(v)
			}
			before := b.Version()
			if err := b.AddTuple(rd.name, t...); err != nil {
				return "", nil, fmt.Errorf("wal: snapshot %s row %d: %w", rd.name, r, err)
			}
			if b.Version() == before {
				return "", nil, fmt.Errorf("wal: snapshot %s row %d: duplicate tuple", rd.name, r)
			}
		}
	}
	if b.Version() != version {
		return "", nil, fmt.Errorf("wal: snapshot version mismatch: rebuilt %d, stored %d", b.Version(), version)
	}
	if err := b.Audit(); err != nil {
		return "", nil, fmt.Errorf("wal: snapshot audit: %w", err)
	}
	return name, b, nil
}
