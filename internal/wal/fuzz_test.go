package wal

import (
	"testing"

	"repro/internal/structure"
)

// FuzzWALRecordDecode throws arbitrary bytes at the record decoder: it
// must never panic, and anything it accepts must survive a semantic
// re-encode/re-decode round trip.
func FuzzWALRecordDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add(appendRecord(nil, Record{Type: recCreate, Name: "g",
		Sig: []RelSpec{{Name: "E", Arity: 2}}, Facts: "E(a,b)."}))
	f.Add(appendRecord(nil, Record{Type: recAppend, Name: "g",
		BatchID: "b1", PreVersion: 7, Facts: "E(b,c)."}))
	f.Add([]byte("EPCQWAL0 not a record"))
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		rec, n, err := decodeRecord(data)
		if err != nil {
			return
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("accepted record consumed %d of %d bytes", n, len(data))
		}
		// Re-encode and decode again: the records must agree (byte
		// equality is not required — uvarints have redundant encodings —
		// but semantic equality is).
		re := appendRecord(nil, rec)
		rec2, _, err := decodeRecord(re)
		if err != nil {
			t.Fatalf("re-encoded record rejected: %v", err)
		}
		if rec.Type != rec2.Type || rec.Name != rec2.Name || rec.BatchID != rec2.BatchID ||
			rec.PreVersion != rec2.PreVersion || rec.Facts != rec2.Facts || len(rec.Sig) != len(rec2.Sig) {
			t.Fatalf("round trip changed record: %+v vs %+v", rec, rec2)
		}
		for i := range rec.Sig {
			if rec.Sig[i] != rec2.Sig[i] {
				t.Fatalf("round trip changed signature: %+v vs %+v", rec.Sig, rec2.Sig)
			}
		}
	})
}

// FuzzSnapshotDecode throws arbitrary bytes at the snapshot decoder: it
// must never panic (implausible counts are bounded before allocation),
// and anything it accepts must be a fully audited structure whose
// canonical re-encoding decodes to the same state.
func FuzzSnapshotDecode(f *testing.F) {
	sig, _ := structure.NewSignature(structure.RelSym{Name: "E", Arity: 2})
	b := structure.New(sig)
	b.AddElem("a")
	b.AddElem("b")
	b.AddTuple("E", 0, 1)
	f.Add(EncodeSnapshot("g", b))
	f.Add([]byte{})
	f.Add([]byte("EPCQSNP0"))
	f.Add([]byte("EPCQSNP0\x00\x00\x00\x00\x00\x00\x00\x00"))

	f.Fuzz(func(t *testing.T, data []byte) {
		name, got, err := DecodeSnapshot(data)
		if err != nil {
			return
		}
		if err := got.Audit(); err != nil {
			t.Fatalf("accepted snapshot fails audit: %v", err)
		}
		re := EncodeSnapshot(name, got)
		name2, got2, err := DecodeSnapshot(re)
		if err != nil {
			t.Fatalf("canonical re-encoding rejected: %v", err)
		}
		if name2 != name || got2.Version() != got.Version() {
			t.Fatalf("round trip changed snapshot: %q v%d vs %q v%d",
				name, got.Version(), name2, got2.Version())
		}
	})
}
