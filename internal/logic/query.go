package logic

import (
	"fmt"
	"strings"
)

// Query is an ep-formula φ together with its ordered liberal variable list
// lib(φ) ⊇ free(φ).  Counting is always relative to the liberal variables:
// |φ(B)| is the number of maps f : lib(φ) → B with B,f ⊨ φ (Section 2.1).
// Liberal variables may be absent from every atom (Example 2.1).
type Query struct {
	Name string // optional display name
	Lib  []Var  // liberal variables, in declaration order
	F    Formula
}

// NewQuery validates and returns a query.  The liberal list must contain
// every free variable, contain no duplicates, and no liberal variable may
// be quantified inside the formula.
func NewQuery(name string, lib []Var, f Formula) (Query, error) {
	q := Query{Name: name, Lib: append([]Var(nil), lib...), F: f}
	seen := make(map[Var]bool, len(lib))
	for _, v := range lib {
		if seen[v] {
			return Query{}, fmt.Errorf("logic: duplicate liberal variable %s", v)
		}
		seen[v] = true
	}
	for v := range FreeVars(f) {
		if !seen[v] {
			return Query{}, fmt.Errorf("logic: free variable %s not in liberal list", v)
		}
	}
	if qv := quantifiedVars(f); true {
		for v := range qv {
			if seen[v] {
				return Query{}, fmt.Errorf("logic: variable %s is both liberal and quantified", v)
			}
		}
	}
	return q, nil
}

// MustQuery is NewQuery but panics on error.
func MustQuery(name string, lib []Var, f Formula) Query {
	q, err := NewQuery(name, lib, f)
	if err != nil {
		panic(err)
	}
	return q
}

func quantifiedVars(f Formula) map[Var]bool {
	out := make(map[Var]bool)
	var walk func(Formula)
	walk = func(f Formula) {
		switch g := f.(type) {
		case And:
			walk(g.L)
			walk(g.R)
		case Or:
			walk(g.L)
			walk(g.R)
		case Exists:
			out[g.V] = true
			walk(g.Body)
		}
	}
	walk(f)
	return out
}

// LibSet returns the liberal variables as a set.
func (q Query) LibSet() map[Var]bool {
	out := make(map[Var]bool, len(q.Lib))
	for _, v := range q.Lib {
		out[v] = true
	}
	return out
}

// String renders the query in the library's concrete syntax.
func (q Query) String() string {
	name := q.Name
	if name == "" {
		name = "q"
	}
	parts := make([]string, len(q.Lib))
	for i, v := range q.Lib {
		parts[i] = string(v)
	}
	return fmt.Sprintf("%s(%s) := %s", name, strings.Join(parts, ","), q.F)
}

// Disjunct is one prenex pp disjunct of an ep-formula: existential
// variables (renamed apart from the liberal variables and from each other)
// over a conjunction of atoms.  An atom-free disjunct is the formula ⊤
// (possibly under vacuous quantifiers, which we drop).
type Disjunct struct {
	Exist []Var
	Atoms []Atom
}

// String renders the disjunct as a prenex pp-formula body.
func (d Disjunct) String() string {
	var b strings.Builder
	for _, v := range d.Exist {
		b.WriteString("exists ")
		b.WriteString(string(v))
		b.WriteString(". ")
	}
	if len(d.Atoms) == 0 {
		b.WriteString("true")
	} else {
		for i, a := range d.Atoms {
			if i > 0 {
				b.WriteString(" & ")
			}
			b.WriteString(a.String())
		}
	}
	return b.String()
}

// freshNamer generates variable names that avoid a given used-set.
type freshNamer struct {
	used map[Var]bool
	n    int
}

func newFreshNamer(used map[Var]bool) *freshNamer {
	u := make(map[Var]bool, len(used))
	for v := range used {
		u[v] = true
	}
	return &freshNamer{used: u}
}

func (fn *freshNamer) fresh(hint Var) Var {
	base := string(hint)
	if base == "" {
		base = "v"
	}
	for {
		fn.n++
		cand := Var(fmt.Sprintf("%s_%d", base, fn.n))
		if !fn.used[cand] {
			fn.used[cand] = true
			return cand
		}
	}
}

// Disjuncts converts the query into an equivalent disjunction of prenex
// pp-formulas, all sharing the query's liberal variable list (so that
// |φ(B)| = |⋃ψ ψ(B)|, Section 2.1 "ep-formulas").  Existential variables
// are renamed apart: distinct disjuncts and distinct conjuncts never share
// a bound variable, and no bound variable collides with a liberal one.
//
// The transformation is the standard one: atoms map to themselves, ∨
// concatenates disjunct lists, ∧ takes pairwise unions, and ∃x either
// renames x fresh in each disjunct where x occurs or is dropped where it
// does not (sound on non-empty universes, which Validate enforces).
func (q Query) Disjuncts() []Disjunct {
	fn := newFreshNamer(AllVars(q.F))
	for _, v := range q.Lib {
		fn.used[v] = true
	}
	return dnf(q.F, fn)
}

func dnf(f Formula, fn *freshNamer) []Disjunct {
	switch g := f.(type) {
	case Atom:
		return []Disjunct{{Atoms: []Atom{g}}}
	case Truth:
		return []Disjunct{{}}
	case Or:
		l := dnf(g.L, fn)
		r := dnf(g.R, fn)
		return append(l, r...)
	case And:
		l := dnf(g.L, fn)
		r := dnf(g.R, fn)
		out := make([]Disjunct, 0, len(l)*len(r))
		for _, dl := range l {
			for _, dr := range r {
				// Rename both sides' existential variables fresh so that
				// different copies of the same subformula stay independent.
				a := renameExist(dl, fn)
				b := renameExist(dr, fn)
				out = append(out, Disjunct{
					Exist: append(append([]Var{}, a.Exist...), b.Exist...),
					Atoms: append(append([]Atom{}, a.Atoms...), b.Atoms...),
				})
			}
		}
		return out
	case Exists:
		ds := dnf(g.Body, fn)
		out := make([]Disjunct, 0, len(ds))
		for _, d := range ds {
			if !occursInAtoms(g.V, d.Atoms) {
				// Vacuous quantifier on a non-empty universe: drop.
				out = append(out, d)
				continue
			}
			if containsVar(d.Exist, g.V) {
				// Already bound deeper (shadowing); the outer quantifier is
				// vacuous for the atoms that survived.
				out = append(out, d)
				continue
			}
			nv := fn.fresh(g.V)
			out = append(out, Disjunct{
				Exist: append(append([]Var{}, d.Exist...), nv),
				Atoms: substAtoms(d.Atoms, g.V, nv),
			})
		}
		return out
	default:
		panic(fmt.Sprintf("logic: unknown formula node %T", f))
	}
}

func renameExist(d Disjunct, fn *freshNamer) Disjunct {
	if len(d.Exist) == 0 {
		return d
	}
	out := Disjunct{Exist: make([]Var, len(d.Exist)), Atoms: append([]Atom(nil), d.Atoms...)}
	for i, v := range d.Exist {
		nv := fn.fresh(v)
		out.Exist[i] = nv
		out.Atoms = substAtoms(out.Atoms, v, nv)
	}
	return out
}

func substAtoms(atoms []Atom, from, to Var) []Atom {
	out := make([]Atom, len(atoms))
	for i, a := range atoms {
		args := make([]Var, len(a.Args))
		changed := false
		for j, v := range a.Args {
			if v == from {
				args[j] = to
				changed = true
			} else {
				args[j] = v
			}
		}
		if changed {
			out[i] = Atom{Rel: a.Rel, Args: args}
		} else {
			out[i] = a
		}
	}
	return out
}

func occursInAtoms(v Var, atoms []Atom) bool {
	for _, a := range atoms {
		for _, w := range a.Args {
			if w == v {
				return true
			}
		}
	}
	return false
}

func containsVar(vs []Var, v Var) bool {
	for _, w := range vs {
		if w == v {
			return true
		}
	}
	return false
}

// FromDisjuncts reassembles a query from prenex pp disjuncts over the given
// liberal variables.
func FromDisjuncts(name string, lib []Var, ds []Disjunct) (Query, error) {
	if len(ds) == 0 {
		return Query{}, fmt.Errorf("logic: no disjuncts")
	}
	parts := make([]Formula, len(ds))
	for i, d := range ds {
		atoms := make([]Formula, len(d.Atoms))
		for j, a := range d.Atoms {
			atoms[j] = a
		}
		parts[i] = Exist(d.Exist, Conj(atoms...))
	}
	return NewQuery(name, lib, Disj(parts...))
}
