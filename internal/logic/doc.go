// Package logic provides the syntax of existential positive (ep) formulas:
// atoms, conjunction, disjunction and existential quantification, together
// with the standard syntactic operations the paper needs — free variables,
// liberal variables (lib ⊇ free, Section 2.1), capture-free renaming, and
// the translation of an arbitrary ep-formula into a disjunction of prenex
// primitive positive (pp) formulas.
package logic
