package logic

import (
	"strings"
	"testing"
)

func atom(rel string, vars ...Var) Atom { return Atom{Rel: rel, Args: vars} }

func TestFreeVars(t *testing.T) {
	// φ = E(x,y) ∧ ∃z. E(y,z)
	f := And{atom("E", "x", "y"), Exists{"z", atom("E", "y", "z")}}
	fv := FreeVars(f)
	if len(fv) != 2 || !fv["x"] || !fv["y"] {
		t.Fatalf("FreeVars = %v", fv)
	}
	av := AllVars(f)
	if len(av) != 3 || !av["z"] {
		t.Fatalf("AllVars = %v", av)
	}
}

func TestFreeVarsShadowing(t *testing.T) {
	// ∃x. E(x,y) ∧ x free outside? No: E(x,z) under second ∃x.
	f := And{Exists{"x", atom("E", "x", "y")}, atom("E", "x", "z")}
	fv := FreeVars(f)
	if !fv["x"] || !fv["y"] || !fv["z"] {
		t.Fatalf("FreeVars = %v (x occurs free in right conjunct)", fv)
	}
}

func TestInferSignature(t *testing.T) {
	f := And{atom("E", "x", "y"), atom("F", "x")}
	sig, err := InferSignature(f)
	if err != nil {
		t.Fatal(err)
	}
	if sig["E"] != 2 || sig["F"] != 1 {
		t.Fatalf("sig = %v", sig)
	}
	bad := And{atom("E", "x", "y"), atom("E", "x")}
	if _, err := InferSignature(bad); err == nil {
		t.Fatal("conflicting arity should error")
	}
}

func TestQueryValidation(t *testing.T) {
	f := atom("E", "x", "y")
	if _, err := NewQuery("q", []Var{"x"}, f); err == nil {
		t.Fatal("free variable outside liberal list should error")
	}
	if _, err := NewQuery("q", []Var{"x", "x", "y"}, f); err == nil {
		t.Fatal("duplicate liberal variable should error")
	}
	if _, err := NewQuery("q", []Var{"x", "y", "z"}, Exists{"z", atom("E", "x", "z")}); err == nil {
		t.Fatal("liberal+quantified variable should error")
	}
	q, err := NewQuery("q", []Var{"x", "y", "z"}, f)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.LibSet()) != 3 {
		t.Fatal("LibSet wrong")
	}
}

func TestDisjunctsAtomOrTruth(t *testing.T) {
	q := MustQuery("q", []Var{"x", "y"}, atom("E", "x", "y"))
	ds := q.Disjuncts()
	if len(ds) != 1 || len(ds[0].Atoms) != 1 || len(ds[0].Exist) != 0 {
		t.Fatalf("ds = %v", ds)
	}
	qt := MustQuery("q", []Var{"x"}, Truth{})
	ds = qt.Disjuncts()
	if len(ds) != 1 || len(ds[0].Atoms) != 0 {
		t.Fatalf("truth ds = %v", ds)
	}
}

// Example 4.1's first step: E(x,y) ∧ (E(w,x) ∨ (E(y,z) ∧ E(z,z))) expands
// to two disjuncts.
func TestDisjunctsExample41(t *testing.T) {
	f := And{
		atom("E", "x", "y"),
		Or{
			atom("E", "w", "x"),
			And{atom("E", "y", "z"), atom("E", "z", "z")},
		},
	}
	q := MustQuery("phi", []Var{"w", "x", "y", "z"}, f)
	ds := q.Disjuncts()
	if len(ds) != 2 {
		t.Fatalf("got %d disjuncts, want 2", len(ds))
	}
	if len(ds[0].Atoms) != 2 {
		t.Fatalf("first disjunct atoms = %v", ds[0].Atoms)
	}
	if len(ds[1].Atoms) != 3 {
		t.Fatalf("second disjunct atoms = %v", ds[1].Atoms)
	}
}

func TestDisjunctsQuantifierRenaming(t *testing.T) {
	// (∃u. E(x,u)) ∧ (∃u. E(u,y)): the two u's must not collide.
	f := And{
		Exists{"u", atom("E", "x", "u")},
		Exists{"u", atom("E", "u", "y")},
	}
	q := MustQuery("q", []Var{"x", "y"}, f)
	ds := q.Disjuncts()
	if len(ds) != 1 {
		t.Fatalf("got %d disjuncts", len(ds))
	}
	d := ds[0]
	if len(d.Exist) != 2 {
		t.Fatalf("exist vars = %v", d.Exist)
	}
	if d.Exist[0] == d.Exist[1] {
		t.Fatal("quantified variables not renamed apart")
	}
	// Each atom must use its own renamed variable.
	if d.Atoms[0].Args[1] == d.Atoms[1].Args[0] {
		t.Fatal("atoms share a bound variable after renaming")
	}
}

func TestDisjunctsVacuousQuantifier(t *testing.T) {
	// ∃u. E(x,y): u does not occur; must be dropped.
	f := Exists{"u", atom("E", "x", "y")}
	q := MustQuery("q", []Var{"x", "y"}, f)
	ds := q.Disjuncts()
	if len(ds) != 1 || len(ds[0].Exist) != 0 {
		t.Fatalf("vacuous quantifier not dropped: %v", ds)
	}
}

func TestDisjunctsDistribution(t *testing.T) {
	// (A ∨ B) ∧ (C ∨ D) → 4 disjuncts.
	f := And{
		Or{atom("E", "x", "x"), atom("F", "x")},
		Or{atom("G", "x"), atom("H", "x")},
	}
	q := MustQuery("q", []Var{"x"}, f)
	if ds := q.Disjuncts(); len(ds) != 4 {
		t.Fatalf("got %d disjuncts, want 4", len(ds))
	}
}

func TestDisjunctsQuantifierOverOr(t *testing.T) {
	// ∃u. (E(x,u) ∨ F(u)) → two disjuncts, each with its own u.
	f := Exists{"u", Or{atom("E", "x", "u"), atom("F", "u")}}
	q := MustQuery("q", []Var{"x"}, f)
	ds := q.Disjuncts()
	if len(ds) != 2 {
		t.Fatalf("got %d disjuncts", len(ds))
	}
	for _, d := range ds {
		if len(d.Exist) != 1 {
			t.Fatalf("disjunct %v should have one quantified variable", d)
		}
	}
}

func TestFromDisjunctsRoundTrip(t *testing.T) {
	f := Or{
		And{atom("E", "x", "y"), Exists{"u", atom("E", "y", "u")}},
		atom("E", "y", "x"),
	}
	q := MustQuery("q", []Var{"x", "y"}, f)
	ds := q.Disjuncts()
	q2, err := FromDisjuncts("q2", q.Lib, ds)
	if err != nil {
		t.Fatal(err)
	}
	ds2 := q2.Disjuncts()
	if len(ds2) != len(ds) {
		t.Fatalf("round trip changed disjunct count: %d vs %d", len(ds2), len(ds))
	}
}

func TestConjDisjExist(t *testing.T) {
	if _, ok := Conj().(Truth); !ok {
		t.Fatal("empty Conj should be Truth")
	}
	c := Conj(atom("E", "x", "y"), atom("F", "x"), atom("G", "y"))
	if Atoms(c)[0].Rel != "E" || len(Atoms(c)) != 3 {
		t.Fatalf("Conj wrong: %v", c)
	}
	d := Disj(atom("E", "x", "y"), atom("F", "x"))
	if _, ok := d.(Or); !ok {
		t.Fatal("Disj should be Or")
	}
	e := Exist([]Var{"a", "b"}, atom("E", "a", "b"))
	if ex, ok := e.(Exists); !ok || ex.V != "a" {
		t.Fatalf("Exist wrong: %v", e)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("empty Disj should panic")
		}
	}()
	Disj()
}

func TestStringRendering(t *testing.T) {
	q := MustQuery("phi", []Var{"x", "y"}, Exists{"z", And{atom("E", "x", "z"), atom("E", "z", "y")}})
	s := q.String()
	for _, want := range []string{"phi(x,y)", "exists z", "E(x,z)", "&"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() = %q missing %q", s, want)
		}
	}
	d := Disjunct{Exist: []Var{"u"}, Atoms: []Atom{atom("E", "x", "u")}}
	if !strings.Contains(d.String(), "exists u.") {
		t.Fatalf("Disjunct.String() = %q", d.String())
	}
	empty := Disjunct{}
	if empty.String() != "true" {
		t.Fatalf("empty disjunct = %q", empty.String())
	}
}
