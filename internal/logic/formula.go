package logic

import (
	"fmt"
	"sort"
	"strings"
)

// Var is a variable name.
type Var string

// Formula is an ep-formula node.  The four implementations are Atom, And,
// Or and Exists, plus Truth (the empty conjunction ⊤, which arises as the
// formula of an atom-free component, cf. Example 2.4).
type Formula interface {
	fmt.Stringer
	isFormula()
}

// Atom is a predicate application R(v1,...,vk).
type Atom struct {
	Rel  string
	Args []Var
}

// And is binary conjunction.
type And struct{ L, R Formula }

// Or is binary disjunction.
type Or struct{ L, R Formula }

// Exists is existential quantification of a single variable.
type Exists struct {
	V    Var
	Body Formula
}

// Truth is the empty conjunction ⊤.
type Truth struct{}

func (Atom) isFormula()   {}
func (And) isFormula()    {}
func (Or) isFormula()     {}
func (Exists) isFormula() {}
func (Truth) isFormula()  {}

func (a Atom) String() string {
	parts := make([]string, len(a.Args))
	for i, v := range a.Args {
		parts[i] = string(v)
	}
	return a.Rel + "(" + strings.Join(parts, ",") + ")"
}

func (f And) String() string { return "(" + f.L.String() + " & " + f.R.String() + ")" }
func (f Or) String() string  { return "(" + f.L.String() + " | " + f.R.String() + ")" }
func (f Exists) String() string {
	return "exists " + string(f.V) + ". " + f.Body.String()
}
func (Truth) String() string { return "true" }

// Conj builds a right-nested conjunction of the given formulas (⊤ if none).
func Conj(fs ...Formula) Formula {
	if len(fs) == 0 {
		return Truth{}
	}
	out := fs[len(fs)-1]
	for i := len(fs) - 2; i >= 0; i-- {
		out = And{fs[i], out}
	}
	return out
}

// Disj builds a right-nested disjunction; panics on empty input (ep-logic
// has no ⊥).
func Disj(fs ...Formula) Formula {
	if len(fs) == 0 {
		panic("logic: empty disjunction")
	}
	out := fs[len(fs)-1]
	for i := len(fs) - 2; i >= 0; i-- {
		out = Or{fs[i], out}
	}
	return out
}

// Exist wraps body in existential quantifiers for each variable, outermost
// first.
func Exist(vs []Var, body Formula) Formula {
	out := body
	for i := len(vs) - 1; i >= 0; i-- {
		out = Exists{vs[i], out}
	}
	return out
}

// FreeVars returns the free variables of f as a set.
func FreeVars(f Formula) map[Var]bool {
	out := make(map[Var]bool)
	collectFree(f, out, make(map[Var]int))
	return out
}

func collectFree(f Formula, out map[Var]bool, bound map[Var]int) {
	switch g := f.(type) {
	case Atom:
		for _, v := range g.Args {
			if bound[v] == 0 {
				out[v] = true
			}
		}
	case And:
		collectFree(g.L, out, bound)
		collectFree(g.R, out, bound)
	case Or:
		collectFree(g.L, out, bound)
		collectFree(g.R, out, bound)
	case Exists:
		bound[g.V]++
		collectFree(g.Body, out, bound)
		bound[g.V]--
	case Truth:
	}
}

// AllVars returns every variable occurring in f (free or bound).
func AllVars(f Formula) map[Var]bool {
	out := make(map[Var]bool)
	var walk func(Formula)
	walk = func(f Formula) {
		switch g := f.(type) {
		case Atom:
			for _, v := range g.Args {
				out[v] = true
			}
		case And:
			walk(g.L)
			walk(g.R)
		case Or:
			walk(g.L)
			walk(g.R)
		case Exists:
			out[g.V] = true
			walk(g.Body)
		case Truth:
		}
	}
	walk(f)
	return out
}

// Atoms returns all atoms of f in syntactic order.
func Atoms(f Formula) []Atom {
	var out []Atom
	var walk func(Formula)
	walk = func(f Formula) {
		switch g := f.(type) {
		case Atom:
			out = append(out, g)
		case And:
			walk(g.L)
			walk(g.R)
		case Or:
			walk(g.L)
			walk(g.R)
		case Exists:
			walk(g.Body)
		case Truth:
		}
	}
	walk(f)
	return out
}

// InferSignature derives the relation symbols used by f.  It is an error
// for a relation to occur with two different arities.
func InferSignature(f Formula) (map[string]int, error) {
	sig := make(map[string]int)
	for _, a := range Atoms(f) {
		if prev, ok := sig[a.Rel]; ok {
			if prev != len(a.Args) {
				return nil, fmt.Errorf("logic: relation %s used with arities %d and %d", a.Rel, prev, len(a.Args))
			}
		} else {
			if len(a.Args) == 0 {
				return nil, fmt.Errorf("logic: relation %s used with arity 0", a.Rel)
			}
			sig[a.Rel] = len(a.Args)
		}
	}
	return sig, nil
}

// SortedVars returns the set's variables in lexicographic order.
func SortedVars(set map[Var]bool) []Var {
	out := make([]Var, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
