package cliquered

import (
	"fmt"
	"math/big"

	"repro/internal/count"
	"repro/internal/graph"
	"repro/internal/logic"
	"repro/internal/pp"
	"repro/internal/structure"
	"repro/internal/workload"
)

// CliqueQueryPP returns the free k-clique query as a pp-formula over
// {E/2}.
func CliqueQueryPP(k int) (pp.PP, error) {
	q := workload.CliqueQuery(k)
	return singlePP(q)
}

// CliqueSentencePP returns the Boolean k-clique query as a pp-formula.
func CliqueSentencePP(k int) (pp.PP, error) {
	q := workload.CliqueSentence(k)
	return singlePP(q)
}

func singlePP(q logic.Query) (pp.PP, error) {
	ds := q.Disjuncts()
	if len(ds) != 1 {
		return pp.PP{}, fmt.Errorf("cliquered: query %v is not primitive positive", q)
	}
	return pp.FromDisjunct(workload.EdgeSig(), q.Lib, ds[0])
}

// CountCliquesViaQuery counts the k-cliques of g by counting the answers
// of the free k-clique query on the symmetric encoding of g and dividing
// by k! — the reduction that makes case-3 families #Clique-hard.
// The engine parameter selects the counting algorithm.
func CountCliquesViaQuery(g *graph.Graph, k int, engine count.PPEngine) (*big.Int, error) {
	if k <= 0 {
		return big.NewInt(1), nil
	}
	p, err := CliqueQueryPP(k)
	if err != nil {
		return nil, err
	}
	b := workload.GraphStructure(g)
	if b.Size() == 0 {
		return new(big.Int), nil
	}
	answers, err := count.PP(p, b, engine)
	if err != nil {
		return nil, err
	}
	// The encoding is symmetric and loop-free, so answers are exactly the
	// ordered k-cliques: divide by k!.
	fact := big.NewInt(1)
	for i := 2; i <= k; i++ {
		fact.Mul(fact, big.NewInt(int64(i)))
	}
	q, r := new(big.Int).QuoRem(answers, fact, new(big.Int))
	if r.Sign() != 0 {
		return nil, fmt.Errorf("cliquered: answer count %v not divisible by %d! (encoding bug)", answers, k)
	}
	return q, nil
}

// HasCliqueViaQuery decides k-clique existence through the Boolean clique
// query — the case-2 shape (model checking a quantified clique).
func HasCliqueViaQuery(g *graph.Graph, k int, engine count.PPEngine) (bool, error) {
	if k <= 0 {
		return true, nil
	}
	p, err := CliqueSentencePP(k)
	if err != nil {
		return false, err
	}
	b := workload.GraphStructure(g)
	if b.Size() == 0 {
		return false, nil
	}
	c, err := count.PP(p, b, engine)
	if err != nil {
		return false, err
	}
	return c.Sign() > 0, nil
}

// StructureToGraph decodes a structure over {E/2} into an undirected
// graph (ignoring loops, symmetrizing edges) — the inverse encoding used
// when feeding counting instances back to the native baselines.
func StructureToGraph(b *structure.Structure) (*graph.Graph, error) {
	if !b.Signature().Has("E") {
		return nil, fmt.Errorf("cliquered: structure lacks relation E")
	}
	ar, _ := b.Signature().Arity("E")
	if ar != 2 {
		return nil, fmt.Errorf("cliquered: E has arity %d, want 2", ar)
	}
	g := graph.New(b.Size())
	b.ForEachTuple("E", func(t []int) bool {
		g.AddEdge(t[0], t[1])
		return true
	})
	return g, nil
}
