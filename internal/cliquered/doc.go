// Package cliquered demonstrates the hardness directions of the
// trichotomy (Theorem 2.12 / cases 2–3 of Theorem 3.2) constructively:
// the clique decision and counting problems embed into answer counting
// for the canonical hard query families, so an answer-counting engine
// *is* a (#)Clique solver.  The package provides both directions —
// solving clique problems through query counting, and the native
// baselines to compare against — which is what the E7 experiment runs.
package cliquered
