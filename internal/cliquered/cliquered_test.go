package cliquered

import (
	"testing"

	"repro/internal/count"
	"repro/internal/graph"
	"repro/internal/workload"
)

func TestCountCliquesViaQueryMatchesNative(t *testing.T) {
	graphs := []*graph.Graph{
		workload.CompleteGraph(5),
		workload.PathGraph(6),
		workload.CycleGraph(5),
		workload.ER(8, 0.5, 7),
		workload.PlantedClique(9, 0.3, 4, 11),
	}
	for gi, g := range graphs {
		for k := 2; k <= 4; k++ {
			want := g.CountCliques(k)
			got, err := CountCliquesViaQuery(g, k, count.EngineProjection)
			if err != nil {
				t.Fatalf("graph %d k=%d: %v", gi, k, err)
			}
			if got.Cmp(want) != 0 {
				t.Fatalf("graph %d k=%d: via query %v != native %v", gi, k, got, want)
			}
		}
	}
}

func TestCountCliquesViaFPTEngine(t *testing.T) {
	g := workload.PlantedClique(8, 0.4, 4, 3)
	want := g.CountCliques(3)
	got, err := CountCliquesViaQuery(g, 3, count.EngineFPT)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cmp(want) != 0 {
		t.Fatalf("FPT engine: %v != %v", got, want)
	}
}

func TestHasCliqueViaQuery(t *testing.T) {
	g := workload.PlantedClique(10, 0.2, 4, 5)
	for k := 2; k <= 5; k++ {
		want := g.HasClique(k)
		got, err := HasCliqueViaQuery(g, k, count.EngineProjection)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("k=%d: via query %v != native %v", k, got, want)
		}
	}
}

func TestTrivialK(t *testing.T) {
	g := workload.PathGraph(3)
	if c, err := CountCliquesViaQuery(g, 0, count.EngineFPT); err != nil || c.Sign() != 1 {
		t.Fatalf("0-cliques = %v, %v", c, err)
	}
	if ok, err := HasCliqueViaQuery(g, 0, count.EngineFPT); err != nil || !ok {
		t.Fatalf("0-clique existence = %v, %v", ok, err)
	}
}

func TestStructureToGraphRoundTrip(t *testing.T) {
	g := workload.ER(7, 0.4, 9)
	b := workload.GraphStructure(g)
	g2, err := StructureToGraph(b)
	if err != nil {
		t.Fatal(err)
	}
	if g2.N() != g.N() || g2.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip changed graph: %d/%d vs %d/%d",
			g2.N(), g2.NumEdges(), g.N(), g.NumEdges())
	}
	for v := 0; v < g.N(); v++ {
		for u := 0; u < g.N(); u++ {
			if g.HasEdge(u, v) != g2.HasEdge(u, v) {
				t.Fatalf("edge {%d,%d} mismatch", u, v)
			}
		}
	}
}
