package count

import (
	"math/big"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/ie"
	"repro/internal/logic"
	"repro/internal/parser"
	"repro/internal/pp"
	"repro/internal/structure"
	"repro/internal/term"
	"repro/internal/workload"
)

func disjunctsOf(t *testing.T, sig *structure.Signature, src string) ([]pp.PP, logic.Query) {
	t.Helper()
	q := parser.MustQuery(src)
	var out []pp.PP
	for _, d := range q.Disjuncts() {
		p, err := pp.FromDisjunct(sig, q.Lib, d)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, p)
	}
	return out, q
}

// EPUnionTerms (the pooled inclusion–exclusion union counter) must agree
// with EPUnion (direct answer enumeration) and EPDirect on randomized
// union queries with overlapping disjuncts, including sentence
// disjuncts.
func TestEPUnionTermsMatchesEPUnion(t *testing.T) {
	templates := []string{
		"E(x,y)",
		"E(y,x)",
		"exists u. E(x,u) & E(u,y)",
		"exists u. E(y,u) & E(u,x)",
		"E(x,y) & E(y,x)",
		"exists u, v. E(u,v) & E(v,u)", // sentence
	}
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 10; trial++ {
		k := 2 + rng.Intn(4)
		var parts []string
		for i := 0; i < k; i++ {
			parts = append(parts, templates[rng.Intn(len(templates))])
		}
		src := "q(x,y) := " + strings.Join(parts, " | ")
		ds, q := disjunctsOf(t, edgeSig(), src)
		for seed := int64(0); seed < 4; seed++ {
			b := workload.RandomStructure(edgeSig(), 4, 0.35, int64(trial)*11+seed)
			want, err := EPUnion(ds, b)
			if err != nil {
				t.Fatal(err)
			}
			pool := term.NewPool()
			got, err := EPUnionTerms(ds, b, EngineFPT, pool)
			if err != nil {
				t.Fatalf("%s: %v", src, err)
			}
			if got.Cmp(want) != 0 {
				t.Fatalf("%s seed %d: pooled %v != union %v (pool %+v)", src, seed, got, want, pool.Stats())
			}
			direct, err := EPDirect(q, b)
			if err != nil {
				t.Fatal(err)
			}
			if got.Cmp(direct) != 0 {
				t.Fatalf("%s seed %d: pooled %v != direct %v", src, seed, got, direct)
			}
		}
	}
}

// Overlapping disjuncts must visibly dedupe in the pool, and a reused
// pool must be rejected.
func TestEPUnionTermsPoolStats(t *testing.T) {
	ds, _ := disjunctsOf(t, edgeSig(), `q(x,y) := E(x,y) | E(y,x) | exists u. E(x,u) & E(u,y)`)
	b := workload.RandomStructure(edgeSig(), 4, 0.4, 3)
	pool := term.NewPool()
	if _, err := EPUnionTerms(ds, b, EngineFPT, pool); err != nil {
		t.Fatal(err)
	}
	st := pool.Stats()
	if st.Raw != 7 {
		t.Fatalf("Raw = %d, want 2^3-1 = 7", st.Raw)
	}
	if st.Unique >= st.Raw {
		t.Fatalf("no dedup: %d unique from %d raw", st.Unique, st.Raw)
	}
	if _, err := EPUnionTerms(ds, b, EngineFPT, pool); err == nil {
		t.Fatal("reused pool must be rejected")
	}
}

// CountTerms and the per-term oracle evaluation (ie.Count) are the same
// signed sum; they must agree term for term.
func TestCountTermsMatchesIECount(t *testing.T) {
	ds, _ := disjunctsOf(t, edgeSig(), `q(x,y) := E(x,y) | exists u. E(x,u) & E(u,y) | E(y,x)`)
	star, err := ie.PhiStar(ds)
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(0); seed < 6; seed++ {
		b := workload.RandomStructure(edgeSig(), 5, 0.3, seed)
		want, err := ie.Count(star, b, func(p pp.PP, s *structure.Structure) (*big.Int, error) {
			return PP(p, s, EngineProjection)
		})
		if err != nil {
			t.Fatal(err)
		}
		got, err := CountTerms(star, b, EngineFPT)
		if err != nil {
			t.Fatal(err)
		}
		if got.Cmp(want) != 0 {
			t.Fatalf("seed %d: CountTerms %v != ie.Count %v", seed, got, want)
		}
	}
}
