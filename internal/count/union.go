package count

import (
	"math/big"

	"repro/internal/hom"
	"repro/internal/pp"
	"repro/internal/structure"
)

// Answer vectors are deduplicated across disjuncts under the shared
// structure.TupleKey byte-string encoding.

// EPUnion counts an ep-formula by enumerating, per prenex pp disjunct, the
// extendable liberal assignments and collecting them in a set — a direct
// implementation of |φ(B)| = |⋃ψ ψ(B)| that serves as a mid-size reference
// engine for the inclusion–exclusion path.
//
// A sentence disjunct that holds on B makes every assignment of the
// liberal variables an answer, so the count is |B|^|lib| (the number of
// liberal variables is read off the free disjuncts; it is 0 only when the
// whole union is a sentence).
func EPUnion(disjuncts []pp.PP, b *structure.Structure) (*big.Int, error) {
	if err := b.Validate(); err != nil {
		return nil, err
	}
	nLib := 0
	for _, d := range disjuncts {
		if len(d.S) > nLib {
			nLib = len(d.S)
		}
	}
	seen := make(map[string]bool)
	for _, d := range disjuncts {
		if d.IsSentence() {
			if hom.Exists(d.A, b, hom.Options{}) {
				return structure.PowerSize(b, nLib), nil
			}
			continue
		}
		hom.ForEachExtendable(d.A, b, d.S, hom.Options{}, func(vals []int) bool {
			seen[structure.TupleKey(vals, nil)] = true
			return true
		})
	}
	return big.NewInt(int64(len(seen))), nil
}
