package count

import (
	"math/big"

	"repro/internal/hom"
	"repro/internal/pp"
	"repro/internal/structure"
)

// Answer vectors are deduplicated across disjuncts under the shared
// structure.TupleKey byte-string encoding.

// EPUnion counts an ep-formula by enumerating, per prenex pp disjunct, the
// extendable liberal assignments and collecting them in a set — a direct
// implementation of |φ(B)| = |⋃ψ ψ(B)| that serves as a mid-size reference
// engine for the inclusion–exclusion path.
//
// A sentence disjunct that holds on B makes every assignment of the
// liberal variables an answer, so the count is |B|^|lib| (the number of
// liberal variables is read off the free disjuncts; it is 0 only when the
// whole union is a sentence).
func EPUnion(disjuncts []pp.PP, b *structure.Structure) (*big.Int, error) {
	if err := b.Validate(); err != nil {
		return nil, err
	}
	nLib, free, sentences := splitUnion(disjuncts)
	// The sentence check is a plain hom search on purpose: EPUnion is the
	// session-free reference the pooled pipeline is differential-tested
	// against.
	for _, d := range sentences {
		if hom.Exists(d.A, b, hom.Options{}) {
			return structure.PowerSize(b, nLib), nil
		}
	}
	seen := make(map[string]bool)
	for _, d := range free {
		hom.ForEachExtendable(d.A, b, d.S, hom.Options{}, func(vals []int) bool {
			seen[structure.TupleKey(vals, nil)] = true
			return true
		})
	}
	return big.NewInt(int64(len(seen))), nil
}

// splitUnion is the shared preamble of both union counters: the number
// of liberal variables (max |S| over the disjuncts) and the
// sentence/free partition.
func splitUnion(disjuncts []pp.PP) (nLib int, free, sentences []pp.PP) {
	for _, d := range disjuncts {
		if len(d.S) > nLib {
			nLib = len(d.S)
		}
		if d.IsSentence() {
			sentences = append(sentences, d)
		} else {
			free = append(free, d)
		}
	}
	return nLib, free, sentences
}
