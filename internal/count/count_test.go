package count

import (
	"math/big"
	"testing"
	"testing/quick"

	"repro/internal/logic"
	"repro/internal/parser"
	"repro/internal/pp"
	"repro/internal/structure"
	"repro/internal/workload"
)

func edgeSig() *structure.Signature { return workload.EdgeSig() }

func mustPPFromQuery(t *testing.T, q logic.Query, sig *structure.Signature) pp.PP {
	t.Helper()
	ds := q.Disjuncts()
	if len(ds) != 1 {
		t.Fatalf("query %v is not primitive positive (%d disjuncts)", q, len(ds))
	}
	p, err := pp.FromDisjunct(sig, q.Lib, ds[0])
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// exampleStructC is the 4-element structure C of Example 4.3:
// E = {(1,2),(2,3),(3,4),(4,4)}.
func exampleStructC() *structure.Structure {
	return parser.MustStructure(`E(1,2). E(2,3). E(3,4). E(4,4).`, edgeSig())
}

var allEngines = []PPEngine{EngineBrute, EngineProjection, EngineFPT, EngineFPTNoCore}

func assertAllEngines(t *testing.T, p pp.PP, b *structure.Structure, want *big.Int) {
	t.Helper()
	for _, e := range allEngines {
		got, err := PP(p, b, e)
		if err != nil {
			t.Fatalf("engine %v: %v", e, err)
		}
		if got.Cmp(want) != 0 {
			t.Fatalf("engine %v: count = %v, want %v (formula %v)", e, got, want, p)
		}
	}
}

func TestSingleAtomCount(t *testing.T) {
	// |E(x,y)| = number of E-tuples.
	q := parser.MustQuery("q(x,y) := E(x,y)")
	p := mustPPFromQuery(t, q, edgeSig())
	b := exampleStructC()
	assertAllEngines(t, p, b, big.NewInt(4))
}

func TestLiberalVariableSemantics(t *testing.T) {
	// Example 2.1 / 4.1: ψ(x,y,z) = E(x,y) with liberal z not in any atom:
	// count = |E| · |B|.
	q := parser.MustQuery("q(x,y,z) := E(x,y)")
	p := mustPPFromQuery(t, q, edgeSig())
	b := exampleStructC()
	assertAllEngines(t, p, b, big.NewInt(16))
}

func TestQuantifiedPath(t *testing.T) {
	// p(s,t) := ∃u. E(s,u) ∧ E(u,t) on C: walks of length 2:
	// 1→2→3, 2→3→4, 3→4→4, 4→4→4 ⇒ 4 answers.
	q := workload.PathQuery(2)
	p := mustPPFromQuery(t, q, edgeSig())
	assertAllEngines(t, p, exampleStructC(), big.NewInt(4))
}

func TestSentenceCount(t *testing.T) {
	// Boolean query ∃u. E(u,u): true on C (loop at 4), false on a path.
	q := parser.MustQuery("q() := exists u. E(u,u)")
	p := mustPPFromQuery(t, q, edgeSig())
	assertAllEngines(t, p, exampleStructC(), big.NewInt(1))
	path := parser.MustStructure(`E(1,2). E(2,3).`, edgeSig())
	assertAllEngines(t, p, path, big.NewInt(0))
}

func TestSentenceWithLiberalVars(t *testing.T) {
	// θ(x,y) := ∃u. E(u,u): liberal x,y isolated ⇒ count = |B|² or 0.
	q := parser.MustQuery("th(x,y) := exists u. E(u,u)")
	p := mustPPFromQuery(t, q, edgeSig())
	assertAllEngines(t, p, exampleStructC(), big.NewInt(16))
	path := parser.MustStructure(`E(1,2). E(2,3).`, edgeSig())
	assertAllEngines(t, p, path, big.NewInt(0))
}

func TestDisconnectedComponentsMultiply(t *testing.T) {
	// φ(x,y) = E(x,x') ∧ E(y,y') quantified x',y' — wait, keep simple:
	// φ(x,y) := (∃u. E(x,u)) ∧ (∃v. E(y,v)): count = (#src)².
	q := parser.MustQuery("q(x,y) := (exists u. E(x,u)) & (exists v. E(y,v))")
	p := mustPPFromQuery(t, q, edgeSig())
	// C: sources with out-edges: 1,2,3,4 ⇒ 16.
	assertAllEngines(t, p, exampleStructC(), big.NewInt(16))
	// Path 1→2→3: sources 1,2 ⇒ 4.
	path := parser.MustStructure(`E(1,2). E(2,3).`, edgeSig())
	assertAllEngines(t, p, path, big.NewInt(4))
}

func TestTriangleCount(t *testing.T) {
	// Free triangle query on K4 (symmetric): ordered triangles = 4·3·2 = 24.
	q := workload.CliqueQuery(3)
	p := mustPPFromQuery(t, q, edgeSig())
	k4 := workload.GraphStructure(workload.CompleteGraph(4))
	assertAllEngines(t, p, k4, big.NewInt(24))
}

func TestEPDirectMatchesEngines(t *testing.T) {
	// φ(w,x,y,z) from Example 4.1.
	q := parser.MustQuery("phi(w,x,y,z) := E(x,y) & (E(w,x) | E(y,z) & E(z,z))")
	b := exampleStructC()
	direct, err := EPDirect(q, b)
	if err != nil {
		t.Fatal(err)
	}
	// Union enumeration over the disjuncts must agree.
	var pps []pp.PP
	for _, d := range q.Disjuncts() {
		p, err := pp.FromDisjunct(edgeSig(), q.Lib, d)
		if err != nil {
			t.Fatal(err)
		}
		pps = append(pps, p)
	}
	union, err := EPUnion(pps, b)
	if err != nil {
		t.Fatal(err)
	}
	if direct.Cmp(union) != 0 {
		t.Fatalf("EPDirect = %v, EPUnion = %v", direct, union)
	}
	if direct.Sign() <= 0 {
		t.Fatal("Example 4.1 count should be positive on C")
	}
}

func TestEvalEPUnboundVariable(t *testing.T) {
	b := exampleStructC()
	_, err := EvalEP(b, Env{}, logic.Atom{Rel: "E", Args: []logic.Var{"x", "y"}})
	if err == nil {
		t.Fatal("unbound variable should error")
	}
}

func TestSignatureMismatchRejected(t *testing.T) {
	q := parser.MustQuery("q(x) := F(x)")
	sig := structure.MustSignature(structure.RelSym{Name: "F", Arity: 1})
	p := mustPPFromQuery(t, q, sig)
	b := exampleStructC() // over {E/2}
	if _, err := PP(p, b, EngineFPT); err == nil {
		t.Fatal("signature mismatch should error")
	}
}

func TestEmptyStructureRejected(t *testing.T) {
	q := parser.MustQuery("q(x,y) := E(x,y)")
	p := mustPPFromQuery(t, q, edgeSig())
	empty := structure.New(edgeSig())
	if _, err := PP(p, empty, EngineFPT); err == nil {
		t.Fatal("empty universe should error")
	}
}

// Cross-engine consistency on random pp-queries and random structures:
// the heart of the counting test suite.
func TestEnginesAgreeOnRandomInstances(t *testing.T) {
	sig := edgeSig()
	for seed := int64(0); seed < 30; seed++ {
		q := workload.RandomPPQuery(sig, 4, 2, 3, seed)
		b := workload.RandomStructure(sig, 4, 0.35, seed+1000)
		p := mustPPFromQuery(t, q, sig)
		want, err := PP(p, b, EngineBrute)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range []PPEngine{EngineProjection, EngineFPT, EngineFPTNoCore} {
			got, err := PP(p, b, e)
			if err != nil {
				t.Fatalf("seed %d engine %v: %v", seed, e, err)
			}
			if got.Cmp(want) != 0 {
				t.Fatalf("seed %d engine %v: %v != brute %v\nquery: %v\nstruct: %v",
					seed, e, got, want, q, b)
			}
		}
	}
}

// Property-based: FPT engine equals brute force on tiny random instances.
func TestFPTMatchesBruteProperty(t *testing.T) {
	sig := edgeSig()
	f := func(qSeed, bSeed int64) bool {
		q := workload.RandomPPQuery(sig, 3, 2, 2, qSeed)
		b := workload.RandomStructure(sig, 3, 0.4, bSeed)
		p := mustPPFromQuery(nil2t(), q, sig)
		want, err := PP(p, b, EngineBrute)
		if err != nil {
			return false
		}
		got, err := PP(p, b, EngineFPT)
		if err != nil {
			return false
		}
		return got.Cmp(want) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// nil2t lets helper funcs taking *testing.T be reused inside quick.Check
// closures (a panic there fails the property anyway).
func nil2t() *testing.T { return new(testing.T) }

func TestProductCountMultiplies(t *testing.T) {
	// |ψ(D1×D2)| = |ψ(D1)|·|ψ(D2)| — the key identity of Example 4.3.
	q := workload.PathQuery(2)
	p := mustPPFromQuery(t, q, edgeSig())
	d1 := exampleStructC()
	d2 := parser.MustStructure(`E(a,b). E(b,a). E(b,c).`, edgeSig())
	prod, err := structure.Product(d1, d2)
	if err != nil {
		t.Fatal(err)
	}
	c1, _ := PP(p, d1, EngineFPT)
	c2, _ := PP(p, d2, EngineFPT)
	cp, _ := PP(p, prod, EngineFPT)
	want := new(big.Int).Mul(c1, c2)
	if cp.Cmp(want) != 0 {
		t.Fatalf("product count %v != %v·%v", cp, c1, c2)
	}
}

func TestPadLoopsPositivity(t *testing.T) {
	// On B+kI every pp-formula has a positive count (proof of Thm 5.9).
	qs := []logic.Query{
		workload.PathQuery(3),
		workload.CliqueQuery(3),
		workload.StarQuery(3),
	}
	base := parser.MustStructure(`E(1,2).`, edgeSig())
	padded := structure.PadLoops(base, 1)
	for _, q := range qs {
		p := mustPPFromQuery(t, q, edgeSig())
		got, err := PP(p, padded, EngineFPT)
		if err != nil {
			t.Fatal(err)
		}
		if got.Sign() <= 0 {
			t.Fatalf("%s must have positive count on B+I", q.Name)
		}
	}
}

// Regression: a mixed sentence+free union must count |B|^|lib| when a
// sentence disjunct holds — not 1.  The sentence disjunct is deliberately
// built with an empty liberal set (pp.New, not FromDisjunct) to exercise
// the raw-union path.
func TestEPUnionMixedSentenceAndFree(t *testing.T) {
	sig := edgeSig()
	free := mustPPFromQuery(t, mustParseQ(t, "p(x,y) := E(x,y)"), sig)

	// Sentence disjunct ∃u. E(u,u) with S = ∅.
	sa := structure.New(sig)
	u, err := sa.AddElem("u")
	if err != nil {
		t.Fatal(err)
	}
	if err := sa.AddTuple("E", u, u); err != nil {
		t.Fatal(err)
	}
	sentence, err := pp.New(sa, nil)
	if err != nil {
		t.Fatal(err)
	}

	// With a loop the sentence holds: the union is all of B².
	withLoop := parser.MustStructure(`E(1,2). E(3,3).`, sig)
	got, err := EPUnion([]pp.PP{free, sentence}, withLoop)
	if err != nil {
		t.Fatal(err)
	}
	want := structure.PowerSize(withLoop, 2) // |B|^|lib| = 9
	if got.Cmp(want) != 0 {
		t.Fatalf("union with satisfied sentence = %v, want %v", got, want)
	}

	// Without a loop only the free disjunct contributes.
	noLoop := parser.MustStructure(`E(1,2). E(2,3).`, sig)
	got, err = EPUnion([]pp.PP{free, sentence}, noLoop)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cmp(big.NewInt(2)) != 0 {
		t.Fatalf("union with failed sentence = %v, want 2", got)
	}

	// The parsed form of the same union must agree with EPDirect.
	q := mustParseQ(t, "p(x,y) := E(x,y) | exists u. E(u,u)")
	var pps []pp.PP
	for _, d := range q.Disjuncts() {
		p, err := pp.FromDisjunct(sig, q.Lib, d)
		if err != nil {
			t.Fatal(err)
		}
		pps = append(pps, p)
	}
	for _, b := range []*structure.Structure{withLoop, noLoop} {
		direct, err := EPDirect(q, b)
		if err != nil {
			t.Fatal(err)
		}
		union, err := EPUnion(pps, b)
		if err != nil {
			t.Fatal(err)
		}
		if direct.Cmp(union) != 0 {
			t.Fatalf("EPUnion %v != EPDirect %v", union, direct)
		}
	}
}
