package count

import (
	"math/big"
	"testing"

	"repro/internal/hom"
	"repro/internal/pp"
	"repro/internal/workload"
)

func TestEnumerateAnswersMatchesCount(t *testing.T) {
	sig := workload.EdgeSig()
	queries := []string{
		"q(x,y) := E(x,y) | E(y,x)",
		"q(s,t) := exists u. E(s,u) & E(u,t)",
		"q(x,y,z) := E(x,y)", // isolated liberal z
	}
	for _, src := range queries {
		q := mustParseQ(t, src)
		var ds []pp.PP
		for _, d := range q.Disjuncts() {
			p, err := pp.FromDisjunct(sig, q.Lib, d)
			if err != nil {
				t.Fatal(err)
			}
			ds = append(ds, p)
		}
		for seed := int64(0); seed < 5; seed++ {
			b := workload.RandomStructure(sig, 3, 0.45, seed)
			want, err := EPDirect(q, b)
			if err != nil {
				t.Fatal(err)
			}
			var got []Answer
			n, err := EnumerateAnswers(sig, q.Lib, ds, b, 0, func(a Answer) bool {
				got = append(got, append(Answer(nil), a...))
				return true
			})
			if err != nil {
				t.Fatal(err)
			}
			if int64(n) != want.Int64() || int64(len(got)) != want.Int64() {
				t.Fatalf("%s seed %d: enumerated %d answers, count says %v", src, seed, n, want)
			}
			// Every answer must actually satisfy the query.
			for _, a := range got {
				env := Env{}
				for i, v := range q.Lib {
					env[v] = b.ElemIndex(a[i])
				}
				ok, err := EvalEP(b, env, q.F)
				if err != nil {
					t.Fatal(err)
				}
				if !ok {
					t.Fatalf("%s: enumerated non-answer %v", src, a)
				}
			}
			// No duplicates.
			seen := map[string]bool{}
			for _, a := range got {
				k := ""
				for _, s := range a {
					k += s + "\x00"
				}
				if seen[k] {
					t.Fatalf("%s: duplicate answer %v", src, a)
				}
				seen[k] = true
			}
		}
	}
}

func TestEnumerateAnswersLimit(t *testing.T) {
	sig := workload.EdgeSig()
	q := mustParseQ(t, "q(x,y) := E(x,y)")
	p, err := pp.FromDisjunct(sig, q.Lib, q.Disjuncts()[0])
	if err != nil {
		t.Fatal(err)
	}
	b := workload.GraphStructure(workload.CompleteGraph(5)) // 20 directed edges
	n, err := EnumerateAnswers(sig, q.Lib, []pp.PP{p}, b, 7, func(Answer) bool { return true })
	if err != nil {
		t.Fatal(err)
	}
	if n != 7 {
		t.Fatalf("limit ignored: delivered %d", n)
	}
}

func TestEnumerateAnswersSentenceShortCircuit(t *testing.T) {
	sig := workload.EdgeSig()
	q := mustParseQ(t, "q(x,y) := E(x,x) & E(y,y) | exists u. E(u,u)")
	var ds []pp.PP
	for _, d := range q.Disjuncts() {
		p, err := pp.FromDisjunct(sig, q.Lib, d)
		if err != nil {
			t.Fatal(err)
		}
		ds = append(ds, p)
	}
	b := workload.RandomStructure(sig, 3, 0, 1)
	_ = b.AddTuple("E", 0, 0)
	n, err := EnumerateAnswers(sig, q.Lib, ds, b, 0, func(Answer) bool { return true })
	if err != nil {
		t.Fatal(err)
	}
	if n != 9 {
		t.Fatalf("sentence short-circuit: delivered %d, want 9 = |B|²", n)
	}
}

func TestHomomorphismsMatchesEnumeration(t *testing.T) {
	sig := workload.EdgeSig()
	for seed := int64(0); seed < 10; seed++ {
		a := workload.RandomStructure(sig, 3, 0.4, seed)
		b := workload.RandomStructure(sig, 4, 0.4, seed+50)
		want := hom.Count(a, b, hom.Options{})
		got, err := Homomorphisms(a, b)
		if err != nil {
			t.Fatal(err)
		}
		if got.Cmp(want) != 0 {
			t.Fatalf("seed %d: DP homs %v != enumerated %v", seed, got, want)
		}
	}
}

func TestHomomorphismsPathIntoClique(t *testing.T) {
	// Walks of length 2 in K4 (symmetric): 4·3·3 = 36 homomorphisms of
	// the path a-b-c.
	path := workload.GraphStructure(workload.PathGraph(3))
	k4 := workload.GraphStructure(workload.CompleteGraph(4))
	got, err := Homomorphisms(path, k4)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cmp(big.NewInt(36)) != 0 {
		t.Fatalf("homs = %v, want 36", got)
	}
}

func TestSortAnswers(t *testing.T) {
	answers := []Answer{{"b", "a"}, {"a", "b"}, {"a", "a"}}
	SortAnswers(answers)
	if answers[0][0] != "a" || answers[0][1] != "a" || answers[2][0] != "b" {
		t.Fatalf("sorted = %v", answers)
	}
}
