package count

import (
	"fmt"
	"math/big"

	"repro/internal/engine"
	"repro/internal/ie"
	"repro/internal/pp"
	"repro/internal/structure"
	"repro/internal/term"
)

// TermEngine maps the configured engine to the engine used for interned
// inclusion–exclusion terms: terms come out of the pool already cored,
// so the FPT family skips the redundant core step.
func TermEngine(e PPEngine) PPEngine {
	switch e {
	case EngineFPT, EngineAuto, EngineFPTNoCore:
		return EngineFPTNoCore
	default:
		return e
	}
}

// CountTerms evaluates Σ c_ψ·|ψ(B)| over an interned expansion through
// the shared counting pipeline: each term's plan is resolved through the
// fingerprint-keyed plan cache (engine.CompileKeyed) and its count
// through the session's per-fingerprint count memo, so counting-
// equivalent terms — across calls, Counters, and batches — compile and
// count exactly once per structure.  Terms are expected cored (the
// ie.Merge output); eng is mapped through TermEngine.
func CountTerms(terms []ie.Term, b *structure.Structure, eng PPEngine) (*big.Int, error) {
	if err := b.Validate(); err != nil {
		return nil, err
	}
	sess := engine.SessionFor(b)
	name := TermEngine(eng)
	total := new(big.Int)
	for _, t := range terms {
		pl, _, err := engine.CompileKeyed(t.Formula, t.FP, name)
		if err != nil {
			return nil, err
		}
		v, _, err := engine.CountKeyed(pl, t.FP, sess, 0)
		if err != nil {
			return nil, err
		}
		total.Add(total, new(big.Int).Mul(t.Coeff, v))
	}
	return total, nil
}

// EPUnionTerms counts an ep-union |⋃ψ ψ(B)| through the interned
// inclusion–exclusion pipeline: sentence disjuncts short-circuit to
// |B|^|lib| via the session's cached sentence checks, and the free
// disjuncts expand into the canonical term pool (merged coefficients,
// cancelled classes dropped) and are summed with CountTerms.  It is the
// pooled counterpart of EPUnion (which enumerates answers directly) and
// must agree with it on every input — differential-tested.  A non-nil
// pool (which must be fresh) is used for the interning so the caller
// keeps the statistics; pass nil to discard them.
func EPUnionTerms(disjuncts []pp.PP, b *structure.Structure, eng PPEngine, pool *term.Pool) (*big.Int, error) {
	if err := b.Validate(); err != nil {
		return nil, err
	}
	if pool == nil {
		pool = term.NewPool()
	} else if pool.Stats().Raw != 0 {
		return nil, fmt.Errorf("count: EPUnionTerms requires a fresh pool")
	}
	nLib, free, sentences := splitUnion(disjuncts)
	sess := engine.SessionFor(b)
	for _, d := range sentences {
		if sess.SentenceHolds(d.A) {
			return structure.PowerSize(b, nLib), nil
		}
	}
	star, err := ie.PhiStarInto(pool, free)
	if err != nil {
		return nil, err
	}
	return CountTerms(star, b, eng)
}
