package count

import (
	"fmt"
	"math/big"
	"sort"

	"repro/internal/graph"
	"repro/internal/hom"
	"repro/internal/pp"
	"repro/internal/structure"
	"repro/internal/tw"
)

// Plan is a compiled counting plan for a fixed pp-formula: everything
// that depends only on the formula — the core, its components, the
// ∃-components with their interfaces, the contract-graph tree
// decompositions and the constraint-to-bag assignment — is computed once,
// so that repeated counts against different structures only materialize
// the structure-dependent predicate tables and run the join-count DP
// (the "preprocess the parameter, then count fast" reading of
// Theorem 2.11 / fixed-parameter tractability).
type Plan struct {
	sig   *structure.Signature
	comps []*planComponent
}

// planConstraint is a constraint scheme over liberal positions of one
// component: either an atom entirely on liberal variables, or an
// ∃-component predicate.
type planConstraint struct {
	scope []int // positions into the component's active variables
	// Atom constraint:
	rel      string
	atomTmpl []int // for atoms: position-in-scope per argument (repeats kept)
	// Predicate constraint:
	sub   *structure.Structure // ∃-component structure (nil for atoms)
	iface []int                // projection elements inside sub, aligned with scope
}

type planComponent struct {
	// sentence components: check hom existence of structureOnly.
	sentence      bool
	structureOnly *structure.Structure
	// extraSentences are quantified parts with empty interfaces inside a
	// liberal component (possible without coring): pure existence checks.
	extraSentences []*structure.Structure

	// liberal components:
	nActive     int // number of constraint-covered liberal positions
	freeVars    int // liberal positions covered by no constraint: factor |B| each
	constraints []planConstraint
	dec         *tw.Decomposition
	consAt      [][]int // node -> constraint indices
	children    [][]int
	root        int
}

// NewPlan compiles a counting plan.  useCore selects whether the formula
// is replaced by its core first (always sound; EngineFPTNoCore skips it).
func NewPlan(p pp.PP, useCore bool) (*Plan, error) {
	d := p
	if useCore {
		var err error
		d, err = p.Core()
		if err != nil {
			return nil, err
		}
	}
	plan := &Plan{sig: p.A.Signature()}
	for _, comp := range d.Components() {
		pc, err := compileComponent(comp)
		if err != nil {
			return nil, err
		}
		plan.comps = append(plan.comps, pc)
	}
	return plan, nil
}

func compileComponent(comp pp.PP) (*planComponent, error) {
	if len(comp.S) == 0 {
		return &planComponent{sentence: true, structureOnly: comp.A}, nil
	}
	posOf := make(map[int]int, len(comp.S))
	for i, v := range comp.S {
		posOf[v] = i
	}
	inS := make(map[int]bool, len(comp.S))
	for _, v := range comp.S {
		inS[v] = true
	}
	var cons []planConstraint

	// (a) atoms entirely on liberal variables.
	for _, r := range comp.A.Signature().Rels() {
	atomLoop:
		for _, t := range comp.A.Tuples(r.Name) {
			for _, v := range t {
				if !inS[v] {
					continue atomLoop
				}
			}
			scopeSet := map[int]bool{}
			for _, v := range t {
				scopeSet[posOf[v]] = true
			}
			scope := make([]int, 0, len(scopeSet))
			for s := range scopeSet {
				scope = append(scope, s)
			}
			sort.Ints(scope)
			posInScope := make(map[int]int, len(scope))
			for i, s := range scope {
				posInScope[s] = i
			}
			tmpl := make([]int, len(t))
			for j, v := range t {
				tmpl[j] = posInScope[posOf[v]]
			}
			cons = append(cons, planConstraint{scope: scope, rel: r.Name, atomTmpl: tmpl})
		}
	}

	// (b) ∃-component predicates.  ExistsComponents expects the cored
	// formula per the paper's definition, but the decomposition of the
	// extension condition is sound for any formula.
	sentences := []*structure.Structure{}
	for _, ec := range pp.ExistsComponents(comp) {
		sub, old2new := comp.A.Induced(ec.Vertices)
		iface := make([]int, len(ec.Interface))
		scope := make([]int, len(ec.Interface))
		for i, v := range ec.Interface {
			iface[i] = old2new[v]
			scope[i] = posOf[v]
		}
		perm := make([]int, len(scope))
		for i := range perm {
			perm[i] = i
		}
		sort.Slice(perm, func(i, j int) bool { return scope[perm[i]] < scope[perm[j]] })
		sortedScope := make([]int, len(scope))
		sortedIface := make([]int, len(iface))
		for i, pi := range perm {
			sortedScope[i] = scope[pi]
			sortedIface[i] = iface[pi]
		}
		if len(sortedScope) == 0 {
			sentences = append(sentences, sub)
			continue
		}
		cons = append(cons, planConstraint{scope: sortedScope, sub: sub, iface: sortedIface})
	}

	// Re-index to active (constraint-covered) variables.
	covered := make([]bool, len(comp.S))
	for _, c := range cons {
		for _, s := range c.scope {
			covered[s] = true
		}
	}
	oldToNew := make([]int, len(comp.S))
	nActive, free := 0, 0
	for s := range covered {
		if covered[s] {
			oldToNew[s] = nActive
			nActive++
		} else {
			oldToNew[s] = -1
			free++
		}
	}
	for i := range cons {
		for j, s := range cons[i].scope {
			cons[i].scope[j] = oldToNew[s]
		}
	}

	pc := &planComponent{
		nActive:     nActive,
		freeVars:    free,
		constraints: cons,
	}
	// Degenerate: quantified-only parts with empty interfaces behave as
	// sentence sub-checks; attach them as predicate constraints with empty
	// scope by turning the component into a compound.  Simpler: treat each
	// as an extra sentence component.
	for _, s := range sentences {
		pc.extraSentences = append(pc.extraSentences, s)
	}
	if nActive > 0 {
		cg := graph.New(nActive)
		for _, c := range cons {
			cg.AddClique(c.scope)
		}
		_, dec, _ := tw.Treewidth(cg)
		pc.dec = dec
		pc.consAt = make([][]int, len(dec.Bags))
		for ci, c := range cons {
			placed := false
			for ni, bag := range dec.Bags {
				if containsAll(bag, c.scope) {
					pc.consAt[ni] = append(pc.consAt[ni], ci)
					placed = true
					break
				}
			}
			if !placed {
				return nil, fmt.Errorf("count: constraint scope %v fits in no bag", c.scope)
			}
		}
		pc.children = make([][]int, len(dec.Bags))
		pc.root = -1
		for i, p := range dec.Parent {
			if p == -1 {
				pc.root = i
			} else {
				pc.children[p] = append(pc.children[p], i)
			}
		}
	}
	return pc, nil
}

// Count executes the plan against a structure.
func (pl *Plan) Count(b *structure.Structure) (*big.Int, error) {
	if err := b.Validate(); err != nil {
		return nil, err
	}
	if !pl.sig.Equal(b.Signature()) {
		return nil, fmt.Errorf("count: plan signature %v differs from structure signature %v", pl.sig, b.Signature())
	}
	total := big.NewInt(1)
	for _, pc := range pl.comps {
		f, err := pc.count(b)
		if err != nil {
			return nil, err
		}
		if f.Sign() == 0 {
			return new(big.Int), nil
		}
		total.Mul(total, f)
	}
	return total, nil
}

func (pc *planComponent) count(b *structure.Structure) (*big.Int, error) {
	if pc.sentence {
		if hom.Exists(pc.structureOnly, b, hom.Options{}) {
			return big.NewInt(1), nil
		}
		return new(big.Int), nil
	}
	for _, s := range pc.extraSentences {
		if !hom.Exists(s, b, hom.Options{}) {
			return new(big.Int), nil
		}
	}
	result := new(big.Int).Exp(big.NewInt(int64(b.Size())), big.NewInt(int64(pc.freeVars)), nil)
	if pc.nActive == 0 {
		return result, nil
	}
	// Materialize tables for this structure.
	tables := make([]relTable, len(pc.constraints))
	for ci, c := range pc.constraints {
		tab := relTable{scope: c.scope, member: map[string]bool{}}
		if c.sub == nil {
			// Atom constraint: project B's relation through the template.
		tupleLoop:
			for _, u := range b.Tuples(c.rel) {
				vals := make([]int, len(c.scope))
				seen := make([]bool, len(c.scope))
				for j, si := range c.atomTmpl {
					if seen[si] && vals[si] != u[j] {
						continue tupleLoop
					}
					vals[si] = u[j]
					seen[si] = true
				}
				key := encodeVals(vals)
				if !tab.member[key] {
					tab.member[key] = true
					tab.tuples = append(tab.tuples, vals)
				}
			}
		} else {
			hom.ForEachExtendable(c.sub, b, c.iface, hom.Options{}, func(vals []int) bool {
				cp := append([]int(nil), vals...)
				tab.tuples = append(tab.tuples, cp)
				tab.member[encodeVals(cp)] = true
				return true
			})
		}
		tables[ci] = tab
	}
	joined, err := joinCountPlan(pc, tables, b.Size())
	if err != nil {
		return nil, err
	}
	result.Mul(result, joined)
	return result, nil
}
