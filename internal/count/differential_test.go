package count

import (
	"math/big"
	"math/rand"
	"testing"

	"repro/internal/engine"
	"repro/internal/parser"
	"repro/internal/pp"
	"repro/internal/structure"
	"repro/internal/workload"
)

// reinsertShuffled rebuilds b with the same universe but the tuples of
// every relation inserted in a random order: the columnar store's
// posting lists, packed sets, and row ids all come out differently, but
// every count must be unchanged.
func reinsertShuffled(b *structure.Structure, rng *rand.Rand) *structure.Structure {
	out := structure.New(b.Signature())
	for _, name := range b.ElemNames() {
		out.EnsureElem(name)
	}
	for _, r := range b.Signature().Rels() {
		var tuples [][]int
		b.ForEachTuple(r.Name, func(t []int) bool {
			tuples = append(tuples, append([]int(nil), t...))
			return true
		})
		rng.Shuffle(len(tuples), func(i, j int) { tuples[i], tuples[j] = tuples[j], tuples[i] })
		for _, t := range tuples {
			_ = out.AddTuple(r.Name, t...)
		}
	}
	return out
}

// Differential property: the indexed/columnar counting paths (posting
// lists in the hom solver, packed-set materialization, semi-join
// pruning) must agree with the full-scan brute-force reference
// (EPDirect evaluates the satisfaction semantics with set-membership
// lookups only), and all counts must be invariant under tuple insertion
// order.
func TestIndexedCountsMatchBruteForceAndInsertionOrder(t *testing.T) {
	sig := workload.EdgeSig()
	queries := []string{
		"q(x,y) := E(x,y)",
		"q(a,b,c) := E(a,b) & E(b,c)",
		"q(x) := exists u, v. E(x,u) & E(u,v)",
		"q(x,y) := E(x,y) & E(y,x)",
		"q(a,b,c,d) := E(a,b) & E(c,d)",
		"q(x) := E(x,x) & (exists s, t. E(s,t) & E(t,s))",
	}
	engines := []PPEngine{EngineFPT, EngineFPTNoCore, EngineProjection}
	rng := rand.New(rand.NewSource(99))
	for seed := int64(0); seed < 8; seed++ {
		b := workload.RandomStructure(sig, 5, 0.35, seed)
		shuffled := reinsertShuffled(b, rng)
		if !structure.Equal(b, shuffled) {
			t.Fatalf("seed %d: shuffled reinsertion changed the structure", seed)
		}
		for _, src := range queries {
			q := parser.MustQuery(src)
			want, err := EPDirect(q, b)
			if err != nil {
				t.Fatal(err)
			}
			p, err := pp.FromDisjunct(sig, q.Lib, q.Disjuncts()[0])
			if err != nil {
				t.Fatal(err)
			}
			for _, eng := range engines {
				for which, bs := range []*structure.Structure{b, shuffled} {
					got, err := PP(p, bs, eng)
					if err != nil {
						t.Fatal(err)
					}
					if got.Cmp(want) != 0 {
						t.Fatalf("seed %d, query %q, engine %v, structure %d: got %v, brute-force %v",
							seed, src, eng, which, got, want)
					}
				}
			}
		}
	}
}

// Differential property for the parallel executor: with the parallel
// thresholds forced down so subtree workers and pivot sharding engage on
// tiny instances, the multi-worker join-count DP must agree with the
// strictly serial path and with the EPDirect brute-force reference on
// randomized formulas and structures.  Runs under the -race CI job like
// every test in this package.
func TestParallelExecutorMatchesSerialAndBruteForce(t *testing.T) {
	restore := engine.SetParallelThresholds(1, 1)
	defer restore()
	sig := workload.EdgeSig()
	queries := []string{
		"q(a,b,c) := E(a,b) & E(b,c)",
		"q(a,b,c,d) := E(a,b) & E(b,c) & E(c,d)",
		"q(x,y,z) := E(x,y) & E(y,z) & E(z,x)",
		"q(x) := exists u, v. E(x,u) & E(u,v)",
		"q(a,b,c,d) := E(a,b) & E(c,d)",
		"q(x,y) := E(x,y) & E(y,x) & (exists s, u. E(s,u) & E(u,s))",
	}
	rng := rand.New(rand.NewSource(3))
	for seed := int64(0); seed < 8; seed++ {
		b := workload.RandomStructure(sig, 5, 0.3+0.05*float64(seed%3), seed)
		shuffled := reinsertShuffled(b, rng)
		for _, src := range queries {
			q := parser.MustQuery(src)
			want, err := EPDirect(q, b)
			if err != nil {
				t.Fatal(err)
			}
			p, err := pp.FromDisjunct(sig, q.Lib, q.Disjuncts()[0])
			if err != nil {
				t.Fatal(err)
			}
			pl, err := engine.Compile(p, engine.FPTNoCore)
			if err != nil {
				t.Fatal(err)
			}
			for which, bs := range []*structure.Structure{b, shuffled} {
				s := engine.SessionFor(bs)
				serial, err := engine.CountInWorkers(pl, s, 1)
				if err != nil {
					t.Fatal(err)
				}
				par, err := engine.CountInWorkers(pl, s, 6)
				if err != nil {
					t.Fatal(err)
				}
				if serial.Cmp(want) != 0 || par.Cmp(want) != 0 {
					t.Fatalf("seed %d, query %q, structure %d: serial %v, parallel %v, brute-force %v",
						seed, src, which, serial, par, want)
				}
			}
		}
	}
}

// The parallel/serial agreement must survive the big.Int overflow
// fallback: counting homomorphisms of a path into a large complete graph
// with loops exceeds int64 inside the DP (hom(P_12, K_41^loop) = 41^13).
func TestParallelExecutorMatchesSerialThroughOverflow(t *testing.T) {
	restore := engine.SetParallelThresholds(1, 1)
	defer restore()
	const n, edges = 41, 12
	b := structure.New(workload.EdgeSig())
	for i := 0; i < n; i++ {
		b.EnsureElem(workload.EdgeSig().Rels()[0].Name + "_" + string(rune('a'+i%26)) + string(rune('a'+i/26)))
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if err := b.AddTuple("E", i, j); err != nil {
				t.Fatal(err)
			}
		}
	}
	a := structure.New(workload.EdgeSig())
	all := make([]int, edges+1)
	for i := range all {
		a.EnsureElem("x" + string(rune('a'+i)))
		all[i] = i
	}
	for i := 0; i < edges; i++ {
		if err := a.AddTuple("E", i, i+1); err != nil {
			t.Fatal(err)
		}
	}
	p, err := pp.New(a, all)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := engine.Compile(p, engine.FPTNoCore)
	if err != nil {
		t.Fatal(err)
	}
	s := engine.SessionFor(b)
	serial, err := engine.CountInWorkers(pl, s, 1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := engine.CountInWorkers(pl, s, 8)
	if err != nil {
		t.Fatal(err)
	}
	want := new(big.Int).Exp(big.NewInt(n), big.NewInt(edges+1), nil)
	if serial.Cmp(want) != 0 || par.Cmp(want) != 0 {
		t.Fatalf("serial %v, parallel %v, want %v", serial, par, want)
	}
	if par.IsInt64() {
		t.Fatal("instance too small to force the big.Int fallback")
	}
}

// Same property on a mixed-arity signature, where the packed tuple sets
// exercise different per-value bit budgets per relation.
func TestIndexedCountsInsertionOrderMixedArity(t *testing.T) {
	sig := structure.MustSignature(
		structure.RelSym{Name: "E", Arity: 2},
		structure.RelSym{Name: "R", Arity: 3},
		structure.RelSym{Name: "F", Arity: 1},
	)
	queries := []string{
		"q(x,y) := exists z. R(x,y,z) & F(z)",
		"q(a) := F(a) & (exists u. E(a,u))",
		"q(x,y,z) := R(x,y,z) & E(y,z)",
	}
	rng := rand.New(rand.NewSource(7))
	for seed := int64(0); seed < 6; seed++ {
		b := workload.RandomStructure(sig, 4, 0.3, seed)
		shuffled := reinsertShuffled(b, rng)
		for _, src := range queries {
			q := parser.MustQuery(src)
			want, err := EPDirect(q, b)
			if err != nil {
				t.Fatal(err)
			}
			p, err := pp.FromDisjunct(sig, q.Lib, q.Disjuncts()[0])
			if err != nil {
				t.Fatal(err)
			}
			for which, bs := range []*structure.Structure{b, shuffled} {
				got, err := PP(p, bs, EngineFPT)
				if err != nil {
					t.Fatal(err)
				}
				if got.Cmp(want) != 0 {
					t.Fatalf("seed %d, query %q, structure %d: got %v, brute-force %v",
						seed, src, which, got, want)
				}
			}
		}
	}
}
