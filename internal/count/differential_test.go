package count

import (
	"math/rand"
	"testing"

	"repro/internal/parser"
	"repro/internal/pp"
	"repro/internal/structure"
	"repro/internal/workload"
)

// reinsertShuffled rebuilds b with the same universe but the tuples of
// every relation inserted in a random order: the columnar store's
// posting lists, packed sets, and row ids all come out differently, but
// every count must be unchanged.
func reinsertShuffled(b *structure.Structure, rng *rand.Rand) *structure.Structure {
	out := structure.New(b.Signature())
	for _, name := range b.ElemNames() {
		out.EnsureElem(name)
	}
	for _, r := range b.Signature().Rels() {
		var tuples [][]int
		b.ForEachTuple(r.Name, func(t []int) bool {
			tuples = append(tuples, append([]int(nil), t...))
			return true
		})
		rng.Shuffle(len(tuples), func(i, j int) { tuples[i], tuples[j] = tuples[j], tuples[i] })
		for _, t := range tuples {
			_ = out.AddTuple(r.Name, t...)
		}
	}
	return out
}

// Differential property: the indexed/columnar counting paths (posting
// lists in the hom solver, packed-set materialization, semi-join
// pruning) must agree with the full-scan brute-force reference
// (EPDirect evaluates the satisfaction semantics with set-membership
// lookups only), and all counts must be invariant under tuple insertion
// order.
func TestIndexedCountsMatchBruteForceAndInsertionOrder(t *testing.T) {
	sig := workload.EdgeSig()
	queries := []string{
		"q(x,y) := E(x,y)",
		"q(a,b,c) := E(a,b) & E(b,c)",
		"q(x) := exists u, v. E(x,u) & E(u,v)",
		"q(x,y) := E(x,y) & E(y,x)",
		"q(a,b,c,d) := E(a,b) & E(c,d)",
		"q(x) := E(x,x) & (exists s, t. E(s,t) & E(t,s))",
	}
	engines := []PPEngine{EngineFPT, EngineFPTNoCore, EngineProjection}
	rng := rand.New(rand.NewSource(99))
	for seed := int64(0); seed < 8; seed++ {
		b := workload.RandomStructure(sig, 5, 0.35, seed)
		shuffled := reinsertShuffled(b, rng)
		if !structure.Equal(b, shuffled) {
			t.Fatalf("seed %d: shuffled reinsertion changed the structure", seed)
		}
		for _, src := range queries {
			q := parser.MustQuery(src)
			want, err := EPDirect(q, b)
			if err != nil {
				t.Fatal(err)
			}
			p, err := pp.FromDisjunct(sig, q.Lib, q.Disjuncts()[0])
			if err != nil {
				t.Fatal(err)
			}
			for _, eng := range engines {
				for which, bs := range []*structure.Structure{b, shuffled} {
					got, err := PP(p, bs, eng)
					if err != nil {
						t.Fatal(err)
					}
					if got.Cmp(want) != 0 {
						t.Fatalf("seed %d, query %q, engine %v, structure %d: got %v, brute-force %v",
							seed, src, eng, which, got, want)
					}
				}
			}
		}
	}
}

// Same property on a mixed-arity signature, where the packed tuple sets
// exercise different per-value bit budgets per relation.
func TestIndexedCountsInsertionOrderMixedArity(t *testing.T) {
	sig := structure.MustSignature(
		structure.RelSym{Name: "E", Arity: 2},
		structure.RelSym{Name: "R", Arity: 3},
		structure.RelSym{Name: "F", Arity: 1},
	)
	queries := []string{
		"q(x,y) := exists z. R(x,y,z) & F(z)",
		"q(a) := F(a) & (exists u. E(a,u))",
		"q(x,y,z) := R(x,y,z) & E(y,z)",
	}
	rng := rand.New(rand.NewSource(7))
	for seed := int64(0); seed < 6; seed++ {
		b := workload.RandomStructure(sig, 4, 0.3, seed)
		shuffled := reinsertShuffled(b, rng)
		for _, src := range queries {
			q := parser.MustQuery(src)
			want, err := EPDirect(q, b)
			if err != nil {
				t.Fatal(err)
			}
			p, err := pp.FromDisjunct(sig, q.Lib, q.Disjuncts()[0])
			if err != nil {
				t.Fatal(err)
			}
			for which, bs := range []*structure.Structure{b, shuffled} {
				got, err := PP(p, bs, EngineFPT)
				if err != nil {
					t.Fatal(err)
				}
				if got.Cmp(want) != 0 {
					t.Fatalf("seed %d, query %q, structure %d: got %v, brute-force %v",
						seed, src, which, got, want)
				}
			}
		}
	}
}
