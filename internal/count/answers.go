package count

import (
	"fmt"
	"math/big"
	"sort"

	"repro/internal/hom"
	"repro/internal/logic"
	"repro/internal/pp"
	"repro/internal/structure"
)

// Answer is one satisfying assignment of the liberal variables, with
// values given as element names aligned with the query's liberal list.
type Answer []string

// EnumerateAnswers streams the answer set φ(B) of an ep-query given as
// prenex pp disjuncts over the liberal variables lib.  Answers are
// deduplicated across disjuncts (the set semantics |⋃ψ ψ(B)|) and
// delivered in no particular order; fn returning false stops early.
// limit ≤ 0 means unlimited.  Returns the number of answers delivered.
//
// If a sentence disjunct holds on b, the answer set is all of B^lib; the
// enumeration then iterates the full cross product (respect limit!).
func EnumerateAnswers(sig *structure.Signature, lib []logic.Var, disjuncts []pp.PP, b *structure.Structure, limit int, fn func(Answer) bool) (int, error) {
	if err := b.Validate(); err != nil {
		return 0, err
	}
	delivered := 0
	emit := func(vals []int) bool {
		if limit > 0 && delivered >= limit {
			return false
		}
		ans := make(Answer, len(vals))
		for i, v := range vals {
			ans[i] = b.ElemName(v)
		}
		delivered++
		return fn(ans)
	}

	// Sentence disjunct that holds → full cross product.
	for _, d := range disjuncts {
		if len(d.FreeElems()) == 0 && hom.Exists(d.A, b, hom.Options{}) {
			vals := make([]int, len(lib))
			var sweep func(i int) bool
			sweep = func(i int) bool {
				if i == len(lib) {
					return emit(vals)
				}
				for e := 0; e < b.Size(); e++ {
					vals[i] = e
					if !sweep(i + 1) {
						return false
					}
				}
				return true
			}
			sweep(0)
			return delivered, nil
		}
	}

	seen := make(map[string]bool)
	for _, d := range disjuncts {
		if len(d.S) != len(lib) {
			return delivered, fmt.Errorf("count: disjunct liberal arity %d != |lib| %d", len(d.S), len(lib))
		}
		// Align the disjunct's (sorted) S with the declared lib order.
		perm, err := libPermutation(d, lib)
		if err != nil {
			return delivered, err
		}
		stop := false
		hom.ForEachExtendable(d.A, b, d.S, hom.Options{}, func(vals []int) bool {
			ordered := make([]int, len(vals))
			for i, pi := range perm {
				ordered[i] = vals[pi]
			}
			key := structure.TupleKey(ordered, nil)
			if seen[key] {
				return true
			}
			seen[key] = true
			if !emit(ordered) {
				stop = true
				return false
			}
			return true
		})
		if stop {
			break
		}
	}
	return delivered, nil
}

// libPermutation returns, for each position i of lib, the index into the
// disjunct's S list holding that variable.
func libPermutation(d pp.PP, lib []logic.Var) ([]int, error) {
	perm := make([]int, len(lib))
	for i, v := range lib {
		found := -1
		for j, s := range d.S {
			if d.A.ElemName(s) == string(v) {
				found = j
				break
			}
		}
		if found < 0 {
			return nil, fmt.Errorf("count: liberal variable %s missing from disjunct", v)
		}
		perm[i] = found
	}
	return perm, nil
}

// Homomorphisms counts all homomorphisms A → B with the join-count
// dynamic program: it is the Theorem 2.11 engine applied to the
// quantifier-free pp-formula whose liberal variables are all of A's
// elements — exactly the #HOM problem of Dalmau–Jonsson [DJ04] that the
// paper's trichotomy generalizes.  FPT when A has bounded treewidth.
func Homomorphisms(a, b *structure.Structure) (*big.Int, error) {
	all := make([]int, a.Size())
	for i := range all {
		all[i] = i
	}
	p, err := pp.New(a, all)
	if err != nil {
		return nil, err
	}
	// No core: counting homs from A itself, not from its core (the count
	// differs between a structure and its core!).
	return PP(p, b, EngineFPTNoCore)
}

// SortAnswers orders answers lexicographically (test helper quality, but
// generally useful for stable output).
func SortAnswers(answers []Answer) {
	sort.Slice(answers, func(i, j int) bool {
		for k := range answers[i] {
			if answers[i][k] != answers[j][k] {
				return answers[i][k] < answers[j][k]
			}
		}
		return false
	})
}
