package count

import (
	"fmt"
	"math/big"

	"repro/internal/logic"
	"repro/internal/structure"
)

// Env maps variable names to element indices of the structure under
// evaluation.
type Env map[logic.Var]int

// EvalEP decides B, f ⊨ φ for an arbitrary ep-formula: the reference
// satisfaction semantics (Section 2.1).  Variables not bound by env or a
// quantifier cause an error.
func EvalEP(b *structure.Structure, env Env, f logic.Formula) (bool, error) {
	switch g := f.(type) {
	case logic.Truth:
		return true, nil
	case logic.Atom:
		t := make([]int, len(g.Args))
		for i, v := range g.Args {
			e, ok := env[v]
			if !ok {
				return false, fmt.Errorf("count: unbound variable %s", v)
			}
			t[i] = e
		}
		return b.HasTuple(g.Rel, t), nil
	case logic.And:
		l, err := EvalEP(b, env, g.L)
		if err != nil || !l {
			return false, err
		}
		return EvalEP(b, env, g.R)
	case logic.Or:
		l, err := EvalEP(b, env, g.L)
		if err != nil || l {
			return l, err
		}
		return EvalEP(b, env, g.R)
	case logic.Exists:
		old, had := env[g.V]
		for e := 0; e < b.Size(); e++ {
			env[g.V] = e
			ok, err := EvalEP(b, env, g.Body)
			if err != nil {
				return false, err
			}
			if ok {
				if had {
					env[g.V] = old
				} else {
					delete(env, g.V)
				}
				return true, nil
			}
		}
		if had {
			env[g.V] = old
		} else {
			delete(env, g.V)
		}
		return false, nil
	default:
		return false, fmt.Errorf("count: unknown formula node %T", f)
	}
}

// EPDirect counts |φ(B)| by enumerating every assignment of the liberal
// variables and evaluating the formula: the reference (exponential)
// semantics against which all other engines are tested.
func EPDirect(q logic.Query, b *structure.Structure) (*big.Int, error) {
	if err := b.Validate(); err != nil {
		return nil, err
	}
	n := b.Size()
	total := new(big.Int)
	one := big.NewInt(1)
	vals := make([]int, len(q.Lib))
	env := make(Env, len(q.Lib))
	var rec func(i int) error
	rec = func(i int) error {
		if i == len(q.Lib) {
			ok, err := EvalEP(b, env, q.F)
			if err != nil {
				return err
			}
			if ok {
				total.Add(total, one)
			}
			return nil
		}
		for e := 0; e < n; e++ {
			vals[i] = e
			env[q.Lib[i]] = e
			if err := rec(i + 1); err != nil {
				return err
			}
		}
		delete(env, q.Lib[i])
		return nil
	}
	if err := rec(0); err != nil {
		return nil, err
	}
	return total, nil
}
