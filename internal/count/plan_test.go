package count

import (
	"testing"

	"repro/internal/pp"
	"repro/internal/structure"
	"repro/internal/workload"
)

func TestPlanMatchesOneShot(t *testing.T) {
	sig := workload.EdgeSig()
	queries := []string{
		"q(s,t) := exists u, v. E(s,u) & E(u,v) & E(v,t)",
		"q(x) := exists u, w. E(x,u) & E(x,w)",
		"q(x,y,z) := E(x,y) & E(z,z)",
		"q(x) := E(x,x) & (exists a, b. E(a,b) & E(b,a))",
	}
	for _, src := range queries {
		q := mustParseQ(t, src)
		p, err := pp.FromDisjunct(sig, q.Lib, q.Disjuncts()[0])
		if err != nil {
			t.Fatal(err)
		}
		plan, err := NewPlan(p, true)
		if err != nil {
			t.Fatal(err)
		}
		for seed := int64(0); seed < 8; seed++ {
			b := workload.RandomStructure(sig, 4, 0.35, seed)
			want, err := PP(p, b, EngineBrute)
			if err != nil {
				t.Fatal(err)
			}
			got, err := plan.Count(b)
			if err != nil {
				t.Fatal(err)
			}
			if got.Cmp(want) != 0 {
				t.Fatalf("%s seed %d: plan %v != brute %v", src, seed, got, want)
			}
		}
	}
}

func TestPlanReuseAcrossStructures(t *testing.T) {
	q := workload.PathQuery(3)
	p, err := pp.FromDisjunct(workload.EdgeSig(), q.Lib, q.Disjuncts()[0])
	if err != nil {
		t.Fatal(err)
	}
	plan, err := NewPlan(p, true)
	if err != nil {
		t.Fatal(err)
	}
	// The same plan must serve structures of different sizes.
	for _, n := range []int{3, 6, 12} {
		g := workload.ER(n, 0.3, int64(n))
		b := workload.GraphStructure(g)
		got, err := plan.Count(b)
		if err != nil {
			t.Fatal(err)
		}
		want, err := PP(p, b, EngineProjection)
		if err != nil {
			t.Fatal(err)
		}
		if got.Cmp(want) != 0 {
			t.Fatalf("n=%d: plan %v != projection %v", n, got, want)
		}
	}
}

func TestPlanRejectsWrongSignature(t *testing.T) {
	q := workload.PathQuery(2)
	p, err := pp.FromDisjunct(workload.EdgeSig(), q.Lib, q.Disjuncts()[0])
	if err != nil {
		t.Fatal(err)
	}
	plan, err := NewPlan(p, true)
	if err != nil {
		t.Fatal(err)
	}
	other := structure.MustSignature(structure.RelSym{Name: "F", Arity: 1})
	b := structure.New(other)
	b.EnsureElem("a")
	if _, err := plan.Count(b); err == nil {
		t.Fatal("plan must reject structures over a different signature")
	}
	empty := structure.New(workload.EdgeSig())
	if _, err := plan.Count(empty); err == nil {
		t.Fatal("plan must reject empty structures")
	}
}

func BenchmarkPlanReuse_Compiled(b *testing.B) {
	q := workload.PathQuery(4)
	p, _ := pp.FromDisjunct(workload.EdgeSig(), q.Lib, q.Disjuncts()[0])
	plan, err := NewPlan(p, true)
	if err != nil {
		b.Fatal(err)
	}
	bs := workload.GraphStructure(workload.ER(40, 0.1, 3))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := plan.Count(bs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPlanReuse_OneShot(b *testing.B) {
	q := workload.PathQuery(4)
	p, _ := pp.FromDisjunct(workload.EdgeSig(), q.Lib, q.Disjuncts()[0])
	bs := workload.GraphStructure(workload.ER(40, 0.1, 3))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := PP(p, bs, EngineFPT); err != nil {
			b.Fatal(err)
		}
	}
}
