// Package count computes the number of answers |φ(B)| of pp- and
// ep-formulas on finite structures.  It provides several engines:
//
//   - brute force over all liberal assignments (reference semantics);
//   - projection backtracking: component-factorized enumeration of the
//     liberal assignments that extend to homomorphisms;
//   - the FPT engine of Theorem 2.11: core computation, ∃-component
//     predicate tables, and a join-count dynamic program over a tree
//     decomposition of the contract graph;
//   - direct recursive evaluation and union-enumeration for ep-formulas.
//
// All counts are big.Int (they reach |B|^|lib φ|).
package count
