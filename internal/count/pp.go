package count

import (
	"fmt"
	"math/big"

	"repro/internal/hom"
	"repro/internal/pp"
	"repro/internal/structure"
)

// PPEngine selects an algorithm for counting pp-formula answers.
type PPEngine int

const (
	// EngineAuto uses the FPT engine.
	EngineAuto PPEngine = iota
	// EngineBrute enumerates all |B|^|S| liberal assignments and tests
	// each for extendability: the reference semantics.
	EngineBrute
	// EngineProjection factorizes over components and enumerates the
	// extendable liberal assignments by backtracking with propagation.
	EngineProjection
	// EngineFPT runs the Theorem 2.11 pipeline: core, ∃-component
	// predicates, join-count DP over a contract-graph tree decomposition.
	EngineFPT
	// EngineFPTNoCore is EngineFPT without the core step (ablation A1).
	EngineFPTNoCore
)

func (e PPEngine) String() string {
	switch e {
	case EngineAuto:
		return "auto"
	case EngineBrute:
		return "brute"
	case EngineProjection:
		return "projection"
	case EngineFPT:
		return "fpt"
	case EngineFPTNoCore:
		return "fpt-nocore"
	}
	return "unknown"
}

// PP counts |φ(B)| for a pp-formula with the selected engine.
func PP(p pp.PP, b *structure.Structure, engine PPEngine) (*big.Int, error) {
	if err := b.Validate(); err != nil {
		return nil, err
	}
	if !p.A.Signature().Equal(b.Signature()) {
		return nil, fmt.Errorf("count: formula signature %v differs from structure signature %v",
			p.A.Signature(), b.Signature())
	}
	switch engine {
	case EngineBrute:
		return ppBrute(p, b), nil
	case EngineProjection:
		return ppProjection(p, b), nil
	case EngineFPT, EngineAuto:
		return ppFPT(p, b, true)
	case EngineFPTNoCore:
		return ppFPT(p, b, false)
	default:
		return nil, fmt.Errorf("count: unknown engine %d", engine)
	}
}

// ppBrute enumerates every f : S → B and checks extendability.
func ppBrute(p pp.PP, b *structure.Structure) *big.Int {
	n := b.Size()
	total := new(big.Int)
	one := big.NewInt(1)
	pin := make(map[int]int, len(p.S))
	var rec func(i int)
	rec = func(i int) {
		if i == len(p.S) {
			cp := make(map[int]int, len(pin))
			for k, v := range pin {
				cp[k] = v
			}
			if hom.Exists(p.A, b, hom.Options{Pin: cp}) {
				total.Add(total, one)
			}
			return
		}
		for e := 0; e < n; e++ {
			pin[p.S[i]] = e
			rec(i + 1)
		}
		delete(pin, p.S[i])
	}
	rec(0)
	return total
}

// ppProjection counts per component (|φ(B)| = ∏|φᵢ(B)|, Section 2.1) and
// enumerates extendable liberal assignments with the propagating solver.
func ppProjection(p pp.PP, b *structure.Structure) *big.Int {
	total := big.NewInt(1)
	for _, comp := range p.Components() {
		factor := new(big.Int)
		if len(comp.S) == 0 {
			if hom.Exists(comp.A, b, hom.Options{}) {
				factor.SetInt64(1)
			}
		} else if comp.A.NumTuples() == 0 {
			// Isolated liberal variables: every assignment works.
			factor = structure.PowerSize(b, len(comp.S))
		} else {
			one := big.NewInt(1)
			hom.ForEachExtendable(comp.A, b, comp.S, hom.Options{}, func([]int) bool {
				factor.Add(factor, one)
				return true
			})
		}
		if factor.Sign() == 0 {
			return new(big.Int)
		}
		total.Mul(total, factor)
	}
	return total
}
