package count

import (
	"fmt"
	"math/big"

	"repro/internal/engine"
	"repro/internal/pp"
	"repro/internal/structure"
)

// PPEngine selects an algorithm for counting pp-formula answers.  It is
// the engine.Name of the layered execution core; the constants below are
// re-exported for callers of this package.
type PPEngine = engine.Name

const (
	// EngineAuto uses the FPT engine.
	EngineAuto = engine.Auto
	// EngineBrute enumerates all |B|^|S| liberal assignments and tests
	// each for extendability: the reference semantics.
	EngineBrute = engine.Brute
	// EngineProjection factorizes over components and enumerates the
	// extendable liberal assignments by backtracking with propagation.
	EngineProjection = engine.Projection
	// EngineFPT runs the Theorem 2.11 pipeline: core, ∃-component
	// predicates, join-count DP over a contract-graph tree decomposition.
	EngineFPT = engine.FPT
	// EngineFPTNoCore is EngineFPT without the core step (ablation A1).
	EngineFPTNoCore = engine.FPTNoCore
)

// PP counts |φ(B)| for a pp-formula with the selected engine.  The
// formula is compiled to an engine.Plan (memoized across calls) and
// executed against b; callers holding a Plan directly avoid even the
// memoization lookup.
func PP(p pp.PP, b *structure.Structure, eng PPEngine) (*big.Int, error) {
	if err := b.Validate(); err != nil {
		return nil, err
	}
	if !p.A.Signature().Equal(b.Signature()) {
		return nil, fmt.Errorf("count: formula signature %v differs from structure signature %v",
			p.A.Signature(), b.Signature())
	}
	pl, err := engine.Compile(p, eng)
	if err != nil {
		return nil, err
	}
	return pl.Count(b)
}

// NewPlan compiles the Theorem 2.11 counting plan for a pp-formula.
// useCore selects whether the formula is replaced by its core first
// (always sound; pre-cored formulas such as φ⁻af terms should pass
// false).  Kept as the package's stable entry point to the engine's Plan
// layer.
func NewPlan(p pp.PP, useCore bool) (engine.Plan, error) {
	if useCore {
		return engine.Compile(p, engine.FPT)
	}
	return engine.Compile(p, engine.FPTNoCore)
}
