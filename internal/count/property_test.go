package count

import (
	"fmt"
	"math/big"
	"testing"

	"repro/internal/engine"
	"repro/internal/ie"
	"repro/internal/logic"
	"repro/internal/parser"
	"repro/internal/pp"
	"repro/internal/structure"
	"repro/internal/workload"
)

// Random ep-queries: EPDirect, EPUnion and inclusion–exclusion over the
// raw disjuncts must agree.
func TestEPEnginesAgreeOnRandomQueries(t *testing.T) {
	sig := workload.EdgeSig()
	for seed := int64(0); seed < 20; seed++ {
		q := workload.RandomEPQuery(sig, 2, 3, 2, 2, seed)
		b := workload.RandomStructure(sig, 3, 0.4, seed+333)
		direct, err := EPDirect(q, b)
		if err != nil {
			t.Fatal(err)
		}
		var pps []pp.PP
		for _, d := range q.Disjuncts() {
			p, err := pp.FromDisjunct(sig, q.Lib, d)
			if err != nil {
				t.Fatal(err)
			}
			pps = append(pps, p)
		}
		union, err := EPUnion(pps, b)
		if err != nil {
			t.Fatal(err)
		}
		if direct.Cmp(union) != 0 {
			t.Fatalf("seed %d: direct %v != union %v (query %v)", seed, direct, union, q)
		}
		star, err := ie.PhiStar(pps)
		if err != nil {
			t.Fatal(err)
		}
		viaIE, err := ie.Count(star, b, func(p pp.PP, s *structure.Structure) (*big.Int, error) {
			return PP(p, s, EngineFPT)
		})
		if err != nil {
			t.Fatal(err)
		}
		if direct.Cmp(viaIE) != 0 {
			t.Fatalf("seed %d: direct %v != IE %v (query %v)", seed, direct, viaIE, q)
		}
	}
}

// Multi-relation signature with mixed arities: all pp engines agree.
func TestEnginesAgreeMixedArity(t *testing.T) {
	sig := structure.MustSignature(
		structure.RelSym{Name: "R", Arity: 3},
		structure.RelSym{Name: "E", Arity: 2},
		structure.RelSym{Name: "P", Arity: 1},
	)
	queries := []string{
		"q(x,y) := exists z. R(x,y,z) & P(z)",
		"q(x) := R(x,x,x)",
		"q(x,y,z) := R(x,y,z) & E(x,y) & P(z)",
		"q(x) := exists a, b. R(x,a,b) & E(b,a)",
		"q(x,y) := exists u. E(x,u) & E(u,y) & P(u)",
	}
	for _, src := range queries {
		q := mustParseQ(t, src)
		ds := q.Disjuncts()
		p, err := pp.FromDisjunct(sig, q.Lib, ds[0])
		if err != nil {
			t.Fatal(err)
		}
		for seed := int64(0); seed < 5; seed++ {
			b := workload.RandomStructure(sig, 3, 0.3, seed)
			want, err := PP(p, b, EngineBrute)
			if err != nil {
				t.Fatal(err)
			}
			for _, e := range []PPEngine{EngineProjection, EngineFPT, EngineFPTNoCore} {
				got, err := PP(p, b, e)
				if err != nil {
					t.Fatalf("%s engine %v: %v", src, e, err)
				}
				if got.Cmp(want) != 0 {
					t.Fatalf("%s engine %v seed %d: %v != %v", src, e, seed, got, want)
				}
			}
		}
	}
}

// Counts on disjoint unions: for a CONNECTED liberal formula,
// |φ(B1 ⊎ B2)| = |φ(B1)| + |φ(B2)|... only when the formula is connected
// AND has no sentence components; verify on path queries.
func TestDisjointUnionAdditivityForConnectedQueries(t *testing.T) {
	q := workload.PathQuery(2)
	p, err := pp.FromDisjunct(workload.EdgeSig(), q.Lib, q.Disjuncts()[0])
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(0); seed < 8; seed++ {
		b1 := workload.RandomStructure(workload.EdgeSig(), 3, 0.5, seed)
		b2 := workload.RandomStructure(workload.EdgeSig(), 3, 0.5, seed+99)
		u, err := structure.DisjointUnion(b1, b2)
		if err != nil {
			t.Fatal(err)
		}
		v1, _ := PP(p, b1, EngineFPT)
		v2, _ := PP(p, b2, EngineFPT)
		vu, _ := PP(p, u, EngineFPT)
		want := new(big.Int).Add(v1, v2)
		if vu.Cmp(want) != 0 {
			t.Fatalf("seed %d: |φ(B1⊎B2)| = %v, want %v + %v", seed, vu, v1, v2)
		}
	}
}

// Monotonicity under adding tuples: answer counts of pp-formulas never
// decrease when facts are added.
func TestMonotoneUnderFacts(t *testing.T) {
	q := workload.PathQuery(3)
	p, err := pp.FromDisjunct(workload.EdgeSig(), q.Lib, q.Disjuncts()[0])
	if err != nil {
		t.Fatal(err)
	}
	b := workload.RandomStructure(workload.EdgeSig(), 4, 0.2, 5)
	prev, err := PP(p, b, EngineFPT)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			_ = b.AddTuple("E", i, j)
			cur, err := PP(p, b, EngineFPT)
			if err != nil {
				t.Fatal(err)
			}
			if cur.Cmp(prev) < 0 {
				t.Fatalf("count decreased after adding E(%d,%d): %v → %v", i, j, prev, cur)
			}
			prev = cur
		}
	}
	// Fully saturated: every pair is an answer.
	want := structure.PowerSize(b, 2)
	if prev.Cmp(want) != 0 {
		t.Fatalf("saturated count = %v, want %v", prev, want)
	}
}

// The B+kI padding identity from the proof of Theorem 5.9: for a formula
// whose components all carry liberal variables, |φ̂(B+kI)| is a polynomial
// in k whose degree-0 coefficient is ∏ |φᵢ(B)|.
func TestPaddingPolynomialIdentity(t *testing.T) {
	// φ = E(x,y) ∧ E(z,z): two liberal components.
	q := mustParseQ(t, "p(x,y,z) := E(x,y) & E(z,z)")
	p, err := pp.FromDisjunct(workload.EdgeSig(), q.Lib, q.Disjuncts()[0])
	if err != nil {
		t.Fatal(err)
	}
	b := workload.RandomStructure(workload.EdgeSig(), 3, 0.4, 11)
	comps := p.Components()
	if len(comps) != 2 {
		t.Fatalf("components = %d, want 2", len(comps))
	}
	// Evaluate |φ(B+kI)| for k = 0..2 and interpolate the polynomial in k:
	// p(k) = ∏ᵢ (|φᵢ(B)| + k·(extra from mapping into loops...)).
	// We only check the proof's key consequence: the counts for k ≥ 1 are
	// positive and the k-sequence is consistent with a degree-≤2
	// polynomial whose value at k=0 is |φ(B)|.
	var vals []*big.Int
	for k := 0; k <= 3; k++ {
		padded := structure.PadLoops(b, k)
		v, err := PP(p, padded, EngineFPT)
		if err != nil {
			t.Fatal(err)
		}
		vals = append(vals, v)
	}
	// Third differences of a degree-≤2 polynomial vanish.
	d1 := make([]*big.Int, 3)
	for i := 0; i < 3; i++ {
		d1[i] = new(big.Int).Sub(vals[i+1], vals[i])
	}
	d2 := make([]*big.Int, 2)
	for i := 0; i < 2; i++ {
		d2[i] = new(big.Int).Sub(d1[i+1], d1[i])
	}
	d3 := new(big.Int).Sub(d2[1], d2[0])
	if d3.Sign() != 0 {
		t.Fatalf("|φ(B+kI)| not a degree-≤2 polynomial in k: %v", vals)
	}
}

// Executor key schemes: the packed-uint64 and wide-bag spill paths of the
// join-count DP must agree with the brute engine on randomized
// queries/structures.
func TestExecutorKeySchemesAgreeWithBrute(t *testing.T) {
	sig := workload.EdgeSig()
	for seed := int64(0); seed < 25; seed++ {
		q := workload.RandomEPQuery(sig, 1, 4, 2, 3, seed)
		p, err := pp.FromDisjunct(sig, q.Lib, q.Disjuncts()[0])
		if err != nil {
			t.Fatal(err)
		}
		b := workload.RandomStructure(sig, 5, 0.35, seed+1000)
		want, err := PP(p, b, EngineBrute)
		if err != nil {
			t.Fatal(err)
		}
		packed, err := PP(p, b, EngineFPT)
		if err != nil {
			t.Fatal(err)
		}
		restore := engine.SetPackedKeyBudget(0)
		spilled, err := PP(p, b, EngineFPT)
		restore()
		if err != nil {
			t.Fatal(err)
		}
		if packed.Cmp(want) != 0 {
			t.Fatalf("seed %d: packed %v != brute %v (query %v)", seed, packed, want, q)
		}
		if spilled.Cmp(want) != 0 {
			t.Fatalf("seed %d: spilled %v != brute %v (query %v)", seed, spilled, want, q)
		}
	}
}

// Executor overflow: a count exceeding int64 forces the executor's
// int64→big.Int fallback mid-DP and must still be exact.
// hom(P_12, K_41^loop) = 41^13 ≈ 2^69.6.
func TestExecutorOverflowFallsBackToBigInt(t *testing.T) {
	const n, edges = 41, 12
	b := structure.New(workload.EdgeSig())
	for i := 0; i < n; i++ {
		if _, err := b.AddElem(fmt.Sprintf("v%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if err := b.AddTuple("E", i, j); err != nil {
				t.Fatal(err)
			}
		}
	}
	a := structure.New(workload.EdgeSig())
	for i := 0; i <= edges; i++ {
		if _, err := a.AddElem(fmt.Sprintf("x%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < edges; i++ {
		if err := a.AddTuple("E", i, i+1); err != nil {
			t.Fatal(err)
		}
	}
	got, err := Homomorphisms(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := new(big.Int).Exp(big.NewInt(n), big.NewInt(edges+1), nil)
	if got.Cmp(want) != 0 {
		t.Fatalf("hom count = %v, want %v", got, want)
	}
	if got.IsInt64() {
		t.Fatal("instance too small to exercise the big.Int fallback")
	}
}

func mustParseQ(t *testing.T, src string) logic.Query {
	t.Helper()
	q, err := parser.ParseQuery(src)
	if err != nil {
		t.Fatal(err)
	}
	return q
}
