package count

import (
	"math/big"
	"sort"

	"repro/internal/hom"
	"repro/internal/pp"
	"repro/internal/structure"
)

// ppFPT implements the counting algorithm behind Theorem 2.11 by
// compiling a Plan (core, ∃-component predicate schemes, contract-graph
// tree decomposition) and executing it; see plan.go.  One-shot callers
// pay the compilation each time; Counter-style callers should hold a
// Plan.
func ppFPT(p pp.PP, b *structure.Structure, useCore bool) (*big.Int, error) {
	plan, err := NewPlan(p, useCore)
	if err != nil {
		return nil, err
	}
	return plan.Count(b)
}

// relTable is a materialized constraint: the set of allowed assignments
// over scope (variable positions).
type relTable struct {
	scope  []int // sorted, distinct
	tuples [][]int
	member map[string]bool
}

func encodeVals(vals []int) string {
	buf := make([]byte, 0, 4*len(vals))
	for _, v := range vals {
		buf = append(buf, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
	}
	return string(buf)
}

func decodeVals(key string, n int) []int {
	vals := make([]int, n)
	for i := 0; i < n; i++ {
		o := 4 * i
		vals[i] = int(key[o]) | int(key[o+1])<<8 | int(key[o+2])<<16 | int(key[o+3])<<24
	}
	return vals
}

// joinCountPlan runs the join-count dynamic program over the compiled
// decomposition: node tables map bag assignments to the number of
// extensions over the subtree's variables; children merge by grouping on
// shared bag variables; bag assignments are enumerated by joining the
// local constraint tables smallest-first and free-enumerating locally
// unconstrained bag variables.
func joinCountPlan(pc *planComponent, tables []relTable, domSize int) (*big.Int, error) {
	dec := pc.dec
	type nodeTable struct {
		vars    []int
		entries map[string]*big.Int
	}
	memo := make([]*nodeTable, len(dec.Bags))

	var process func(ni int) *nodeTable
	process = func(ni int) *nodeTable {
		if memo[ni] != nil {
			return memo[ni]
		}
		bag := dec.Bags[ni]
		nt := &nodeTable{vars: bag, entries: map[string]*big.Int{}}

		type childGroup struct {
			shared []int // indices into bag
			sums   map[string]*big.Int
		}
		var groups []childGroup
		for _, c := range pc.children[ni] {
			ct := process(c)
			sharedBagIdx, sharedChildIdx := sharedPositions(bag, ct.vars)
			g := childGroup{shared: sharedBagIdx, sums: map[string]*big.Int{}}
			proj := make([]int, len(sharedChildIdx))
			for key, cnt := range ct.entries {
				vals := decodeVals(key, len(ct.vars))
				for i, ci := range sharedChildIdx {
					proj[i] = vals[ci]
				}
				pk := encodeVals(proj)
				if s, ok := g.sums[pk]; ok {
					s.Add(s, cnt)
				} else {
					g.sums[pk] = new(big.Int).Set(cnt)
				}
			}
			groups = append(groups, g)
		}

		cons := append([]int(nil), pc.consAt[ni]...)
		sort.Slice(cons, func(i, j int) bool {
			return len(tables[cons[i]].tuples) < len(tables[cons[j]].tuples)
		})
		bagPos := make(map[int]int, len(bag))
		for i, v := range bag {
			bagPos[v] = i
		}
		assign := make([]int, len(bag))
		assigned := make([]bool, len(bag))

		emit := func() {
			weight := big.NewInt(1)
			proj := []int{}
			for _, g := range groups {
				proj = proj[:0]
				for _, bi := range g.shared {
					proj = append(proj, assign[bi])
				}
				s, ok := g.sums[encodeVals(proj)]
				if !ok {
					return
				}
				weight.Mul(weight, s)
			}
			key := encodeVals(assign)
			if e, ok := nt.entries[key]; ok {
				e.Add(e, weight)
			} else {
				nt.entries[key] = weight
			}
		}

		var rec func(ci int)
		rec = func(ci int) {
			if ci == len(cons) {
				var freeIdx []int
				for i := range bag {
					if !assigned[i] {
						freeIdx = append(freeIdx, i)
					}
				}
				var fill func(k int)
				fill = func(k int) {
					if k == len(freeIdx) {
						emit()
						return
					}
					for v := 0; v < domSize; v++ {
						assign[freeIdx[k]] = v
						assigned[freeIdx[k]] = true
						fill(k + 1)
					}
					assigned[freeIdx[k]] = false
				}
				fill(0)
				return
			}
			t := tables[cons[ci]]
		tupleLoop:
			for _, tup := range t.tuples {
				var bound []int
				for j, s := range t.scope {
					bi := bagPos[s]
					if assigned[bi] {
						if assign[bi] != tup[j] {
							for _, u := range bound {
								assigned[u] = false
							}
							continue tupleLoop
						}
					} else {
						assign[bi] = tup[j]
						assigned[bi] = true
						bound = append(bound, bi)
					}
				}
				rec(ci + 1)
				for _, u := range bound {
					assigned[u] = false
				}
			}
		}
		rec(0)
		memo[ni] = nt
		return nt
	}

	rt := process(pc.root)
	total := new(big.Int)
	for _, cnt := range rt.entries {
		total.Add(total, cnt)
	}
	return total, nil
}

func containsAll(set, subset []int) bool {
	m := make(map[int]bool, len(set))
	for _, v := range set {
		m[v] = true
	}
	for _, v := range subset {
		if !m[v] {
			return false
		}
	}
	return true
}

// sharedPositions returns, for the variables common to bag and childVars,
// their indices in each.
func sharedPositions(bag, childVars []int) (bagIdx, childIdx []int) {
	pos := make(map[int]int, len(bag))
	for i, v := range bag {
		pos[v] = i
	}
	for j, v := range childVars {
		if i, ok := pos[v]; ok {
			bagIdx = append(bagIdx, i)
			childIdx = append(childIdx, j)
		}
	}
	return
}

// EPUnion counts an ep-formula by enumerating, per prenex pp disjunct, the
// extendable liberal assignments and collecting them in a set — a direct
// implementation of |φ(B)| = |⋃ψ ψ(B)| that serves as a mid-size reference
// engine for the inclusion–exclusion path.
func EPUnion(disjuncts []pp.PP, b *structure.Structure) (*big.Int, error) {
	if err := b.Validate(); err != nil {
		return nil, err
	}
	seen := make(map[string]bool)
	for _, d := range disjuncts {
		if len(d.S) == 0 {
			if hom.Exists(d.A, b, hom.Options{}) {
				return big.NewInt(1), nil
			}
			continue
		}
		hom.ForEachExtendable(d.A, b, d.S, hom.Options{}, func(vals []int) bool {
			seen[encodeVals(vals)] = true
			return true
		})
	}
	return big.NewInt(int64(len(seen))), nil
}
