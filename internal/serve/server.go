package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sync/atomic"
	"time"

	"repro/internal/approx"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/structure"
	"repro/internal/wal"
)

// Config tunes an epserved Server.  The zero value serves on an
// OS-chosen port with the process-default worker budget, 64 in-flight
// counting requests, and a 30-second per-request deadline.
type Config struct {
	// Addr is the listen address (":8080"; empty = ":0", an OS-chosen
	// port, reported by Addr after Start).
	Addr string
	// MaxInFlight caps concurrently executing counting requests
	// (/count and /countBatch); excess requests are rejected with 503
	// immediately rather than queued (≤ 0 = 64).  Ingest, append, and
	// stats requests are always admitted.
	MaxInFlight int
	// RequestTimeout is the per-request counting deadline (≤ 0 = 30s).
	// A request's timeout_ms can lower it, never raise it; the deadline
	// is threaded as a context through the executor, so an expired
	// request stops consuming CPU at the executor's poll granularity.
	RequestTimeout time.Duration
	// Workers is the worker budget handed to every compiled counter
	// (0 = EPCQ_WORKERS, else GOMAXPROCS).
	Workers int
	// QueryCacheCap bounds the compiled-query cache (≤ 0 = 256).
	QueryCacheCap int
	// DataDir enables crash-safe durability: structure creations and
	// append batches are write-ahead logged there and recovered on
	// Start, before the listener accepts.  Empty = in-memory only.
	DataDir string
	// Fsync is the WAL sync policy when DataDir is set: "always" (an
	// acknowledged append survives any crash), "batch" (default;
	// bounded loss, near-"never" throughput), or "never".
	Fsync string
	// CompactBytes is the WAL size that triggers snapshot-then-truncate
	// compaction (0 = 64 MiB, < 0 = never).
	CompactBytes int64
	// HardExactLimit enables the trichotomy admission rule: exact-mode
	// counting requests whose query classifies into the hard regime
	// (cases 2/3 of Theorem 3.2) are rejected with a typed 422 error
	// (ErrorResponse.Case set) when the target structure has more than
	// this many tuples — the client should switch to mode "approx".
	// 0 disables the rule (every request is admitted, as before).
	HardExactLimit int
}

func (c Config) withDefaults() Config {
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 64
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 30 * time.Second
	}
	return c
}

// Server is the epserved HTTP service: a structure registry, a
// compiled-query cache, and counting endpoints that execute on the
// engine's bounded worker pools under admission control.  Create with
// New, wire into any http.Server via Handler, or use Start/Shutdown for
// the managed lifecycle.
type Server struct {
	cfg     Config
	reg     *Registry
	mux     *http.ServeMux
	started time.Time

	inflight  chan struct{}
	inFlight  atomic.Int64
	admitted  atomic.Uint64
	rejected  atomic.Uint64
	deadlines atomic.Uint64

	// state drives /healthz: recovering until Start's boot recovery
	// finishes (servers without a DataDir are born ready), then ready.
	state atomic.Int32

	httpSrv  *http.Server
	listener net.Listener
}

// Server states (see healthz).
const (
	stateReady int32 = iota
	stateRecovering
)

// New builds a Server from the config.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:      cfg,
		reg:      NewRegistry(cfg.QueryCacheCap, cfg.Workers),
		mux:      http.NewServeMux(),
		started:  time.Now(),
		inflight: make(chan struct{}, cfg.MaxInFlight),
	}
	s.mux.HandleFunc("POST /structures", s.handleCreateStructure)
	s.mux.HandleFunc("GET /structures", s.handleListStructures)
	s.mux.HandleFunc("GET /structures/{name}", s.handleGetStructure)
	s.mux.HandleFunc("POST /structures/{name}/facts", s.handleAppendFacts)
	s.mux.HandleFunc("POST /count", s.handleCount)
	s.mux.HandleFunc("POST /countBatch", s.handleCountBatch)
	s.mux.HandleFunc("POST /subscriptions", s.handleSubscribe)
	s.mux.HandleFunc("GET /subscriptions", s.handleListSubscriptions)
	s.mux.HandleFunc("GET /subscriptions/{id}", s.handleSubscriptionCount)
	s.mux.HandleFunc("DELETE /subscriptions/{id}", s.handleUnsubscribe)
	s.mux.HandleFunc("GET /stats", s.handleStats)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	if cfg.DataDir != "" {
		s.state.Store(stateRecovering)
	}
	return s
}

// Registry exposes the server's registry (examples and in-process
// drivers preload structures through it).
func (s *Server) Registry() *Registry { return s.reg }

// Handler returns the server's HTTP handler (mountable under httptest
// or an external http.Server).
func (s *Server) Handler() http.Handler { return s.mux }

// Start runs boot recovery (when DataDir is configured: open the store,
// replay snapshot + WAL tail, attach it to the registry), then listens
// on cfg.Addr and serves in a background goroutine until Shutdown.
// Recovery completes before the listener binds, so no request ever
// observes a half-recovered registry.  Start returns once the listener
// is bound, so Addr is valid immediately after.
func (s *Server) Start() error {
	if s.cfg.DataDir != "" && s.state.Load() == stateRecovering {
		policy, err := wal.ParseSyncPolicy(s.cfg.Fsync)
		if err != nil {
			return err
		}
		st, rep, err := wal.Open(wal.Options{Dir: s.cfg.DataDir, Sync: policy})
		if err != nil {
			return fmt.Errorf("boot recovery: %w", err)
		}
		if err := s.reg.AttachStore(st, rep, s.cfg.CompactBytes); err != nil {
			st.Close()
			return fmt.Errorf("boot recovery: %w", err)
		}
		s.state.Store(stateReady)
	}
	addr := s.cfg.Addr
	if addr == "" {
		addr = ":0"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	s.listener = ln
	s.httpSrv = &http.Server{Handler: s.mux}
	go func() { _ = s.httpSrv.Serve(ln) }()
	return nil
}

// Addr returns the bound listen address after Start.
func (s *Server) Addr() string {
	if s.listener == nil {
		return ""
	}
	return s.listener.Addr().String()
}

// Shutdown gracefully stops a Started server: the listener closes
// immediately (new connections are refused), in-flight requests run to
// completion or ctx expires, and then the registry closes — which
// refuses new writes, waits for every in-flight append writer to finish
// both its WAL record and its in-memory apply (even writers whose HTTP
// request ctx already gave up on), and finally flushes and closes the
// durability store.  An acknowledged append therefore cannot be lost to
// a graceful shutdown regardless of fsync policy.
func (s *Server) Shutdown(ctx context.Context) error {
	var err error
	if s.httpSrv != nil {
		err = s.httpSrv.Shutdown(ctx)
	}
	if cerr := s.reg.Close(); err == nil {
		err = cerr
	}
	return err
}

// ---- request plumbing ----

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, ErrorResponse{Error: fmt.Sprintf(format, args...)})
}

func decodeJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeError(w, http.StatusBadRequest, "invalid request body: %v", err)
		return false
	}
	return true
}

// maxRequestBytes bounds request bodies (fact batches included).
const maxRequestBytes = 64 << 20

// admit reserves an in-flight counting slot, or rejects with 503 when
// the server is saturated.  The returned release must be called when
// the request finishes.
func (s *Server) admit(w http.ResponseWriter) (release func(), ok bool) {
	select {
	case s.inflight <- struct{}{}:
		s.admitted.Add(1)
		s.inFlight.Add(1)
		return func() {
			s.inFlight.Add(-1)
			<-s.inflight
		}, true
	default:
		s.rejected.Add(1)
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, "server at max in-flight counting requests (%d)", s.cfg.MaxInFlight)
		return nil, false
	}
}

// requestCtx derives the counting context: the client's connection
// context bounded by the server deadline, optionally lowered by the
// request's timeout_ms.
func (s *Server) requestCtx(r *http.Request, timeoutMillis int64) (context.Context, context.CancelFunc) {
	d := s.cfg.RequestTimeout
	if timeoutMillis > 0 {
		if td := time.Duration(timeoutMillis) * time.Millisecond; td < d {
			d = td
		}
	}
	return context.WithTimeout(r.Context(), d)
}

// parseMode validates a count request's execution mode.
func parseMode(mode string) (approxMode bool, err error) {
	switch mode {
	case "", "exact":
		return false, nil
	case "approx":
		return true, nil
	default:
		return false, fmt.Errorf("serve: unknown mode %q (want \"exact\" or \"approx\")", mode)
	}
}

// rejectHardExact writes the typed admission rejection for exact
// execution of a hard-classified query (422 with the trichotomy case).
func rejectHardExact(w http.ResponseWriter, err error) {
	var hee *core.HardExactError
	if errors.As(err, &hee) {
		writeJSON(w, http.StatusUnprocessableEntity, ErrorResponse{Error: err.Error(), Case: hee.Case.Short()})
		return
	}
	writeError(w, http.StatusUnprocessableEntity, "%v", err)
}

// countStatus maps a counting error to an HTTP status.
func (s *Server) countStatus(err error) int {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		s.deadlines.Add(1)
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		// The client went away; the status is moot but 499-style
		// semantics map closest onto 504 here.
		return http.StatusGatewayTimeout
	default:
		return http.StatusUnprocessableEntity
	}
}

// ---- handlers ----

func (s *Server) handleCreateStructure(w http.ResponseWriter, r *http.Request) {
	var req CreateStructureRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	if req.Partitions != 0 {
		writeError(w, http.StatusBadRequest,
			"partitioned structures require a cluster coordinator (this is a single shard node)")
		return
	}
	info, err := s.reg.CreateStructure(req.Name, req.Facts, req.Signature)
	if err != nil {
		status := http.StatusBadRequest
		switch {
		case IsDuplicate(err):
			status = http.StatusConflict
		case errors.Is(err, errClosed):
			w.Header().Set("Retry-After", "1")
			status = http.StatusServiceUnavailable
		}
		writeError(w, status, "%v", err)
		return
	}
	writeJSON(w, http.StatusCreated, info)
}

// IsDuplicate reports whether err is a structure-name collision from
// CreateStructure (HTTP 409 on the wire) — preloaders that want
// create-if-absent semantics test it to skip already-present names.
func IsDuplicate(err error) bool {
	return err != nil && errors.Is(err, errDuplicate)
}

func (s *Server) handleListStructures(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, StructuresResponse{Structures: s.reg.Structures()})
}

func (s *Server) handleGetStructure(w http.ResponseWriter, r *http.Request) {
	info, err := s.reg.StructureInfo(r.PathValue("name"))
	if err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, info)
}

func (s *Server) handleAppendFacts(w http.ResponseWriter, r *http.Request) {
	var req AppendFactsRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	name := r.PathValue("name")
	info, err := s.reg.AppendFactsBatch(name, req.Facts, req.BatchID)
	if err != nil {
		status := http.StatusBadRequest
		switch {
		case errors.Is(err, errClosed):
			// Shutdown in progress: the write was refused before any
			// effect, so the client may retry against the next process.
			w.Header().Set("Retry-After", "1")
			status = http.StatusServiceUnavailable
		default:
			if _, lookupErr := s.reg.entry(name); lookupErr != nil {
				status = http.StatusNotFound
			}
		}
		writeError(w, status, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, info)
}

func (s *Server) handleCount(w http.ResponseWriter, r *http.Request) {
	var req CountRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	release, ok := s.admit(w)
	if !ok {
		return
	}
	defer release()
	eng, err := parseEngine(req.Engine)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	approxMode, err := parseMode(req.Mode)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	e, err := s.reg.entry(req.Structure)
	if err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	// The signature is immutable after ingest, so the counter resolves
	// (and on first use compiles) outside the structure lock.
	c, err := s.reg.counterFor(req.Query, eng, e.b.Signature())
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	ctx, cancel := s.requestCtx(r, req.TimeoutMillis)
	defer cancel()
	start := time.Now()
	// The read lock spans version read and count, so the request
	// executes against one consistent structure version.
	e.mu.RLock()
	version := e.b.Version()
	if approxMode {
		res, aerr := c.CountApproxCtx(ctx, e.b, approx.Params{
			Epsilon: req.Epsilon, Delta: req.Delta,
			MaxSamples: req.MaxSamples, Seed: req.Seed,
		})
		e.mu.RUnlock()
		if aerr != nil {
			writeError(w, s.countStatus(aerr), "%v", aerr)
			return
		}
		writeJSON(w, http.StatusOK, CountResponse{
			Count:      res.Estimate.String(),
			Estimate:   res.Estimate.String(),
			RelError:   res.RelErr,
			Confidence: res.Confidence,
			Case:       res.Case.Short(),
			Samples:    res.Samples,
			Exact:      res.Exact,
			Version:    version,
			ElapsedUS:  time.Since(start).Microseconds(),
		})
		return
	}
	if aerr := c.AdmitExact(e.b, s.cfg.HardExactLimit); aerr != nil {
		e.mu.RUnlock()
		rejectHardExact(w, aerr)
		return
	}
	v, err := c.CountCtx(ctx, e.b)
	e.mu.RUnlock()
	if err != nil {
		writeError(w, s.countStatus(err), "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, CountResponse{
		Count:     v.String(),
		Version:   version,
		ElapsedUS: time.Since(start).Microseconds(),
	})
}

func (s *Server) handleCountBatch(w http.ResponseWriter, r *http.Request) {
	var req CountBatchRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	if len(req.Structures) == 0 {
		writeError(w, http.StatusBadRequest, "structures must not be empty")
		return
	}
	release, ok := s.admit(w)
	if !ok {
		return
	}
	defer release()
	eng, err := parseEngine(req.Engine)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	approxMode, err := parseMode(req.Mode)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	// Resolve (and maybe compile) the counter BEFORE taking the
	// structure locks: counterFor acquires the registry lock, and
	// compaction holds the registry lock while collecting structure
	// locks — taking them in the opposite order here could deadlock
	// three-way with a pending append writer.  The signature is
	// immutable after creation, so reading it lock-free is safe.
	first, err := s.reg.entry(req.Structures[0])
	if err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	sig := first.b.Signature()
	c, err := s.reg.counterFor(req.Query, eng, sig)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	entries, unlock, err := s.reg.lockAll(req.Structures)
	if err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	defer unlock()
	versions := make([]uint64, len(entries))
	bs := make([]*structure.Structure, len(entries))
	for i, e := range entries {
		if !sig.Equal(e.b.Signature()) {
			writeError(w, http.StatusBadRequest,
				"structures %q and %q have different signatures", req.Structures[0], req.Structures[i])
			return
		}
		bs[i] = e.b
		versions[i] = e.b.Version()
	}
	ctx, cancel := s.requestCtx(r, req.TimeoutMillis)
	defer cancel()
	start := time.Now()
	if approxMode {
		prm := approx.Params{
			Epsilon: req.Epsilon, Delta: req.Delta,
			MaxSamples: req.MaxSamples, Seed: req.Seed,
		}
		results := make([]core.ApproxResult, len(bs))
		outer := engine.EffectiveWorkers(s.cfg.Workers)
		if outer > len(bs) {
			outer = len(bs)
		}
		err := engine.RunBoundedCtx(ctx, len(bs), outer, func(i int) error {
			res, aerr := c.CountApproxCtx(ctx, bs[i], prm)
			results[i] = res
			return aerr
		})
		if err != nil {
			writeError(w, s.countStatus(err), "%v", err)
			return
		}
		resp := CountBatchResponse{
			Counts:      make([]string, len(results)),
			Versions:    versions,
			Estimates:   make([]string, len(results)),
			RelErrors:   make([]float64, len(results)),
			Confidences: make([]float64, len(results)),
			Cases:       make([]string, len(results)),
			Samples:     make([]int, len(results)),
			ElapsedUS:   time.Since(start).Microseconds(),
		}
		for i, res := range results {
			resp.Counts[i] = res.Estimate.String()
			resp.Estimates[i] = res.Estimate.String()
			resp.RelErrors[i] = res.RelErr
			resp.Confidences[i] = res.Confidence
			resp.Cases[i] = res.Case.Short()
			resp.Samples[i] = res.Samples
		}
		writeJSON(w, http.StatusOK, resp)
		return
	}
	for _, b := range bs {
		if aerr := c.AdmitExact(b, s.cfg.HardExactLimit); aerr != nil {
			rejectHardExact(w, aerr)
			return
		}
	}
	vs, err := c.CountBatchCtx(ctx, bs)
	if err != nil {
		writeError(w, s.countStatus(err), "%v", err)
		return
	}
	counts := make([]string, len(vs))
	for i, v := range vs {
		counts[i] = v.String()
	}
	writeJSON(w, http.StatusOK, CountBatchResponse{
		Counts:    counts,
		Versions:  versions,
		ElapsedUS: time.Since(start).Microseconds(),
	})
}

func (s *Server) handleSubscribe(w http.ResponseWriter, r *http.Request) {
	var req SubscribeRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	info, err := s.reg.Subscribe(req.Query, req.Structure, req.Engine)
	if err != nil {
		status := http.StatusBadRequest
		if _, lookupErr := s.reg.entry(req.Structure); lookupErr != nil {
			status = http.StatusNotFound
		}
		writeError(w, status, "%v", err)
		return
	}
	writeJSON(w, http.StatusCreated, info)
}

func (s *Server) handleListSubscriptions(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, SubscriptionsResponse{Subscriptions: s.reg.Subscriptions()})
}

// handleSubscriptionCount is a counting request (the lazy maintenance
// may run a delta advance or a full count), so it passes through
// admission control and the per-request deadline like /count.
func (s *Server) handleSubscriptionCount(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, err := s.reg.subscription(id); err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	release, ok := s.admit(w)
	if !ok {
		return
	}
	defer release()
	ctx, cancel := s.requestCtx(r, 0)
	defer cancel()
	start := time.Now()
	info, err := s.reg.SubscriptionCount(ctx, id)
	if err != nil {
		writeError(w, s.countStatus(err), "%v", err)
		return
	}
	info.ElapsedUS = time.Since(start).Microseconds()
	writeJSON(w, http.StatusOK, info)
}

func (s *Server) handleUnsubscribe(w http.ResponseWriter, r *http.Request) {
	if err := s.reg.Unsubscribe(r.PathValue("id")); err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, StatsResponse{
		UptimeSeconds: time.Since(s.started).Seconds(),
		Admission: AdmissionStats{
			InFlight:    s.inFlight.Load(),
			MaxInFlight: s.cfg.MaxInFlight,
			Admitted:    s.admitted.Load(),
			Rejected:    s.rejected.Load(),
			Deadline:    s.deadlines.Load(),
		},
		Workers:       engine.EffectiveWorkers(s.cfg.Workers),
		Queries:       s.reg.QueryStats(),
		Structures:    s.reg.Structures(),
		Sessions:      engine.SessionStats(),
		Delta:         engine.DeltaStats(),
		Subscriptions: s.reg.NumSubscriptions(),
		Durability:    s.reg.DurabilityStats(),
	})
}

// handleHealthz distinguishes a server still replaying its durability
// store (503 "recovering" — load balancers keep traffic away) from one
// ready to serve (200 "ready").
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.state.Load() == stateRecovering {
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, HealthzResponse{OK: false, State: "recovering"})
		return
	}
	writeJSON(w, http.StatusOK, HealthzResponse{OK: true, State: "ready"})
}
