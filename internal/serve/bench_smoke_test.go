package serve

import (
	"context"
	"fmt"
	"math/big"
	"math/rand"
	"os"
	"strings"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/workload"
)

// Bench-smoke regression guard (CI: make bench-smoke): on an append
// stream with a maintained subscription count, the delta-maintained mix
// (registry append + subscription read per step) must beat the
// full-recount baseline by at least 2x — a same-machine relative bound
// that catches regressions in the incremental path (engine/delta.go)
// without depending on absolute CI speed.  Gated behind EPCQ_BENCH_SMOKE
// so the normal test run stays fast.
func TestBenchSmokeDeltaAppendCountMix(t *testing.T) {
	if os.Getenv("EPCQ_BENCH_SMOKE") == "" {
		t.Skip("set EPCQ_BENCH_SMOKE=1 to run the bench smoke guard")
	}
	const n, steps, batchEdges = 260, 24, 3
	base := workload.RandomStructure(workload.EdgeSig(), n, 0.06, 11)
	baseFacts, err := base.FactsString()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(12))
	batches := make([]string, steps)
	for i := range batches {
		var sb strings.Builder
		for j := 0; j < batchEdges; j++ {
			fmt.Fprintf(&sb, "E(v%d,v%d). ", rng.Intn(n), rng.Intn(n))
		}
		batches[i] = sb.String()
	}

	ctx := context.Background()
	run := func(deltaOn bool) (time.Duration, *big.Int) {
		restore := engine.SetDeltaEnabled(deltaOn)
		defer restore()
		reg := NewRegistry(0, 1)
		if _, err := reg.CreateStructure("g", baseFacts, nil); err != nil {
			t.Fatal(err)
		}
		sub, err := reg.Subscribe("tri(x,y,z) := E(x,y) & E(y,z) & E(z,x)", "g", "")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := reg.SubscriptionCount(ctx, sub.ID); err != nil { // cold read outside the timing
			t.Fatal(err)
		}
		var last *big.Int
		start := time.Now()
		for _, facts := range batches {
			if _, err := reg.AppendFacts("g", facts); err != nil {
				t.Fatal(err)
			}
			info, err := reg.SubscriptionCount(ctx, sub.ID)
			if err != nil {
				t.Fatal(err)
			}
			if last, _ = new(big.Int).SetString(info.Count, 10); last == nil {
				t.Fatalf("malformed count %q", info.Count)
			}
		}
		return time.Since(start), last
	}

	best := func(deltaOn bool) (time.Duration, *big.Int) {
		d, c := run(deltaOn)
		for r := 0; r < 2; r++ {
			if d2, c2 := run(deltaOn); d2 < d {
				if c2.Cmp(c) != 0 {
					t.Fatalf("nondeterministic final count: %v vs %v", c2, c)
				}
				d = d2
			}
		}
		return d, c
	}
	full, wantCount := best(false)
	delta, gotCount := best(true)
	if gotCount.Cmp(wantCount) != 0 {
		t.Fatalf("delta-maintained final count %v != full-recount final count %v", gotCount, wantCount)
	}
	t.Logf("bench smoke: append+read mix full-recount %v, delta-maintained %v (%.2fx)",
		full, delta, float64(full)/float64(delta))
	if 2*delta > full {
		t.Fatalf("delta maintenance regressed: %v not ≥2x faster than full recount %v", delta, full)
	}
}
