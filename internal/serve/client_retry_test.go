package serve

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// flakyHandler wraps an inner handler, failing the first fail requests
// to a path with the given status (or a dropped connection when status
// is 0) before letting traffic through.
type flakyHandler struct {
	inner      http.Handler
	fail       int32
	status     int
	retryAfter string
	requests   atomic.Int32
}

func (f *flakyHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	n := f.requests.Add(1)
	if n <= atomic.LoadInt32(&f.fail) {
		if f.status == 0 {
			// Simulate a transport-level failure: hijack and slam the
			// connection so the client sees an unexpected EOF.
			hj, ok := w.(http.Hijacker)
			if !ok {
				panic("test server does not support hijack")
			}
			conn, _, err := hj.Hijack()
			if err != nil {
				panic(err)
			}
			conn.Close()
			return
		}
		if f.retryAfter != "" {
			w.Header().Set("Retry-After", f.retryAfter)
		}
		w.WriteHeader(f.status)
		json.NewEncoder(w).Encode(ErrorResponse{Error: "try later"})
		return
	}
	f.inner.ServeHTTP(w, r)
}

// retryHarness builds an in-memory server with one structure behind a
// flaky front and a fast-sleeping retrying client pointed at it.
func retryHarness(t *testing.T, fail int32, status int, retryAfter string) (*Client, *flakyHandler, *Registry) {
	t.Helper()
	srv := New(Config{})
	reg := srv.Registry()
	if _, err := reg.CreateStructure("g", "E(a,b). E(b,c). E(c,a).", nil); err != nil {
		t.Fatal(err)
	}
	fh := &flakyHandler{inner: srv.Handler(), fail: fail, status: status, retryAfter: retryAfter}
	hs := httptest.NewServer(fh)
	t.Cleanup(hs.Close)
	cl := NewClient(hs.URL, nil).WithRetry(RetryPolicy{
		MaxAttempts: 4, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond,
	})
	cl.sleep = func(ctx context.Context, d time.Duration) error { return nil }
	return cl, fh, reg
}

// TestRetryCountAfter503 retries an idempotent read through transient
// 503s and succeeds without surfacing the failures.
func TestRetryCountAfter503(t *testing.T) {
	cl, fh, _ := retryHarness(t, 2, http.StatusServiceUnavailable, "1")
	got, _, err := cl.Count(context.Background(), triQuery, "g")
	if err != nil {
		t.Fatalf("Count through 503s: %v", err)
	}
	// The directed 3-cycle has 3 triangle homomorphisms (one per rotation).
	if got.Int64() != 3 {
		t.Fatalf("count = %s, want 3", got)
	}
	if n := fh.requests.Load(); n != 3 {
		t.Fatalf("server saw %d requests, want 3 (2 failures + success)", n)
	}
}

// TestRetryCountAfterDroppedConnection retries through connections the
// server slams shut mid-handshake.
func TestRetryCountAfterDroppedConnection(t *testing.T) {
	cl, fh, _ := retryHarness(t, 2, 0, "")
	if _, _, err := cl.Count(context.Background(), triQuery, "g"); err != nil {
		t.Fatalf("Count through dropped connections: %v", err)
	}
	if n := fh.requests.Load(); n != 3 {
		t.Fatalf("server saw %d requests, want 3", n)
	}
}

// TestRetryExhaustionSurfacesLastError gives up after MaxAttempts and
// returns the final failure.
func TestRetryExhaustionSurfacesLastError(t *testing.T) {
	cl, fh, _ := retryHarness(t, 100, http.StatusServiceUnavailable, "")
	_, _, err := cl.Count(context.Background(), triQuery, "g")
	if err == nil || !strings.Contains(err.Error(), "503") {
		t.Fatalf("exhausted retry: err=%v, want a 503", err)
	}
	if n := fh.requests.Load(); n != 4 {
		t.Fatalf("server saw %d requests, want MaxAttempts=4", n)
	}
}

// TestPlainAppendDoesNotRetry: an append WITHOUT a batch id must fail
// fast on a transient error — replaying it could double-apply.
func TestPlainAppendDoesNotRetry(t *testing.T) {
	cl, fh, _ := retryHarness(t, 1, http.StatusServiceUnavailable, "1")
	_, err := cl.AppendFacts(context.Background(), "g", "E(c,d).")
	if err == nil {
		t.Fatalf("plain append through a 503 unexpectedly succeeded")
	}
	if n := fh.requests.Load(); n != 1 {
		t.Fatalf("server saw %d requests, want 1 (no retry)", n)
	}
}

// TestCreateDoesNotRetry: creates are not idempotent (a replay after a
// lost success would 409) and must not retry.
func TestCreateDoesNotRetry(t *testing.T) {
	cl, fh, _ := retryHarness(t, 1, http.StatusServiceUnavailable, "")
	if _, err := cl.CreateStructure(context.Background(), "h", "E(a,b).", nil); err == nil {
		t.Fatalf("create through a 503 unexpectedly succeeded")
	}
	if n := fh.requests.Load(); n != 1 {
		t.Fatalf("server saw %d requests, want 1 (no retry)", n)
	}
}

// TestBatchAppendRetriesAndDedups: an append WITH a batch id retries,
// and even if the original request did land before the "failure", the
// server-side memo makes the replay a no-op with the original response.
func TestBatchAppendRetriesAndDedups(t *testing.T) {
	// fail=0 here; instead the handler applies the append, then drops
	// the response for the first attempt — the worst case: the server
	// committed but the client never heard.
	srv := New(Config{})
	reg := srv.Registry()
	if _, err := reg.CreateStructure("g", "E(a,b).", nil); err != nil {
		t.Fatal(err)
	}
	var dropped atomic.Bool
	inner := srv.Handler()
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasSuffix(r.URL.Path, "/facts") && dropped.CompareAndSwap(false, true) {
			rec := httptest.NewRecorder()
			inner.ServeHTTP(rec, r) // server applies the batch...
			hj := w.(http.Hijacker)
			conn, _, err := hj.Hijack()
			if err != nil {
				panic(err)
			}
			conn.Close() // ...but the client never sees the response
			return
		}
		inner.ServeHTTP(w, r)
	}))
	defer hs.Close()
	cl := NewClient(hs.URL, nil).WithRetry(RetryPolicy{MaxAttempts: 4, BaseDelay: time.Millisecond})
	cl.sleep = func(ctx context.Context, d time.Duration) error { return nil }

	info, err := cl.AppendFactsBatch(context.Background(), "g", "E(b,c). E(c,d).", "retry-batch")
	if err != nil {
		t.Fatalf("batch append through dropped response: %v", err)
	}
	if info.Inserted != 2 || info.BatchID != "retry-batch" {
		t.Fatalf("retried batch response: %+v, want the original Inserted=2", info)
	}
	final, err := reg.StructureInfo("g")
	if err != nil {
		t.Fatal(err)
	}
	// 1 base tuple + 2 from the batch, applied exactly once.
	if final.Tuples != 3 {
		t.Fatalf("batch double-applied: %d tuples, want 3", final.Tuples)
	}
}

// TestRetryHonorsContextCancellation stops retrying when the caller's
// context dies mid-backoff.
func TestRetryHonorsContextCancellation(t *testing.T) {
	cl, fh, _ := retryHarness(t, 100, http.StatusServiceUnavailable, "")
	ctx, cancel := context.WithCancel(context.Background())
	cl.sleep = func(ctx context.Context, d time.Duration) error {
		cancel()
		return ctx.Err()
	}
	if _, _, err := cl.Count(ctx, triQuery, "g"); err == nil {
		t.Fatalf("cancelled retry loop reported success")
	}
	if n := fh.requests.Load(); n != 1 {
		t.Fatalf("server saw %d requests after cancellation, want 1", n)
	}
}

// TestBackoffBoundsAndRetryAfterFloor sanity-checks the delay math:
// monotone-ish growth, MaxDelay cap, and the Retry-After floor.
func TestBackoffBoundsAndRetryAfterFloor(t *testing.T) {
	c := NewClient("http://x", nil).WithRetry(RetryPolicy{
		MaxAttempts: 5, BaseDelay: 10 * time.Millisecond, MaxDelay: 80 * time.Millisecond,
	})
	for attempt := 1; attempt <= 6; attempt++ {
		for i := 0; i < 50; i++ {
			d := c.backoff(attempt, 0)
			if d <= 0 || d > 80*time.Millisecond {
				t.Fatalf("backoff(%d) = %v out of (0, MaxDelay]", attempt, d)
			}
		}
	}
	// A Retry-After hint below the cap floors the delay.
	if d := c.backoff(1, 60*time.Millisecond); d < 60*time.Millisecond {
		t.Fatalf("backoff ignored Retry-After floor: %v", d)
	}
	// A hint above the cap is clamped to it.
	if d := c.backoff(1, time.Hour); d != 80*time.Millisecond {
		t.Fatalf("backoff exceeded MaxDelay under huge hint: %v", d)
	}
}
