package serve

import (
	"context"
	"fmt"
	"math/big"
	"math/rand"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/engine"
	"repro/internal/parser"
)

// The subscription lifecycle over the wire: register, lazy first read,
// maintained read after an append, cache-hit read after a duplicate
// append, list, unsubscribe.
func TestSubscriptionLifecycleHTTP(t *testing.T) {
	srv := New(Config{Workers: 1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	c := NewClient(ts.URL, ts.Client())
	ctx := context.Background()

	if _, err := c.CreateStructure(ctx, "g",
		"universe a, b, c.\nE(a,b). E(b,c). E(c,a).", nil); err != nil {
		t.Fatal(err)
	}
	sub, err := c.Subscribe(ctx, "tri(x,y,z) := E(x,y) & E(y,z) & E(z,x)", "g")
	if err != nil {
		t.Fatal(err)
	}
	if sub.ID == "" || sub.Count != "" {
		t.Fatalf("registration = %+v, want an id and no maintained count yet", sub)
	}

	v1, info1, err := c.SubscriptionCount(ctx, sub.ID)
	if err != nil {
		t.Fatal(err)
	}
	if v1.Cmp(big.NewInt(3)) != 0 {
		t.Fatalf("initial maintained count = %v, want 3", v1)
	}

	// An effective append must advance the maintained count and its
	// version stamp.
	appendInfo, err := c.AppendFacts(ctx, "g", "E(a,c). E(c,b). E(b,a).")
	if err != nil {
		t.Fatal(err)
	}
	if appendInfo.Inserted != 3 {
		t.Fatalf("append inserted = %d, want 3", appendInfo.Inserted)
	}
	v2, info2, err := c.SubscriptionCount(ctx, sub.ID)
	if err != nil {
		t.Fatal(err)
	}
	if v2.Cmp(big.NewInt(6)) != 0 {
		t.Fatalf("maintained count after append = %v, want 6", v2)
	}
	if info2.Version <= info1.Version {
		t.Fatalf("maintained version did not advance: %d -> %d", info1.Version, info2.Version)
	}

	// A fully-duplicate batch inserts nothing, keeps the version, and
	// the next read is a pure cache hit at the same version.
	dupInfo, err := c.AppendFacts(ctx, "g", "E(a,b). E(b,c).")
	if err != nil {
		t.Fatal(err)
	}
	if dupInfo.Inserted != 0 || dupInfo.Version != info2.Version {
		t.Fatalf("duplicate batch: inserted %d at version %d, want 0 at version %d",
			dupInfo.Inserted, dupInfo.Version, info2.Version)
	}
	v3, info3, err := c.SubscriptionCount(ctx, sub.ID)
	if err != nil {
		t.Fatal(err)
	}
	if v3.Cmp(v2) != 0 || info3.Version != info2.Version {
		t.Fatalf("read after duplicate batch = %v@%d, want %v@%d", v3, info3.Version, v2, info2.Version)
	}

	subs, err := c.Subscriptions(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(subs) != 1 || subs[0].ID != sub.ID || subs[0].Count != v3.String() {
		t.Fatalf("subscription listing = %+v", subs)
	}
	st, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Subscriptions != 1 {
		t.Fatalf("stats subscriptions = %d, want 1", st.Subscriptions)
	}
	if err := c.Unsubscribe(ctx, sub.ID); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.SubscriptionCount(ctx, sub.ID); err == nil {
		t.Fatal("read of an unsubscribed id succeeded")
	}
	if err := c.Unsubscribe(ctx, sub.ID); err == nil {
		t.Fatal("double unsubscribe succeeded")
	}
}

// Delta-maintained subscription counts must equal full recounts of the
// replayed append history at every observed version, for every engine,
// with readers racing the writer (run under -race this is the
// incremental-maintenance safety net the serving layer relies on).
func TestSubscriptionDeltaDifferential(t *testing.T) {
	restore := engine.SetDeltaThresholds(1<<30, 100) // always take the delta path
	defer restore()
	const query = "tri(x,y,z) := E(x,y) & E(y,z) & E(z,x)"
	engines := []engine.Name{engine.FPT, engine.FPTNoCore, engine.Projection}

	// A randomized append stream over a growing vertex pool; duplicate
	// edges occur naturally and whole-batch duplicates keep the version.
	rng := rand.New(rand.NewSource(20260807))
	initial := "universe v0, v1, v2, v3, v4, v5.\nE(v0,v1). E(v1,v2). E(v2,v0).\n"
	nVerts := 6
	const nAppends = 24
	batches := make([]string, nAppends)
	for i := range batches {
		var sb strings.Builder
		if i%5 == 4 {
			sb.WriteString(fmt.Sprintf("E(v%d,v%d). ", nVerts, rng.Intn(nVerts)))
			nVerts++
		}
		for j := 0; j < 1+rng.Intn(3); j++ {
			sb.WriteString(fmt.Sprintf("E(v%d,v%d). ", rng.Intn(nVerts), rng.Intn(nVerts)))
		}
		batches[i] = sb.String()
	}

	reg := NewRegistry(0, 1)
	if _, err := reg.CreateStructure("g", initial, nil); err != nil {
		t.Fatal(err)
	}
	subIDs := make([]string, len(engines))
	for i, eng := range engines {
		sub, err := reg.Subscribe(query, "g", eng.String())
		if err != nil {
			t.Fatal(err)
		}
		subIDs[i] = sub.ID
	}
	e, err := reg.entry("g")
	if err != nil {
		t.Fatal(err)
	}

	type observation struct {
		engine  engine.Name
		version uint64
		count   *big.Int
	}
	var (
		mu          sync.Mutex
		checkpoints = map[uint64]int{e.b.Version(): 0} // version → latest prefix
		obs         []observation
	)
	advBefore := engine.DeltaStats().Advances

	read := func(i int) bool {
		info, err := reg.SubscriptionCount(context.Background(), subIDs[i])
		if err != nil {
			t.Error(err)
			return false
		}
		count, ok := new(big.Int).SetString(info.Count, 10)
		if !ok {
			t.Errorf("malformed maintained count %q", info.Count)
			return false
		}
		mu.Lock()
		obs = append(obs, observation{engine: engines[i], version: info.Version, count: count})
		mu.Unlock()
		return true
	}
	// Materialize every maintained count at the base version first, so
	// the appends below genuinely advance warm state rather than trigger
	// first-time full counts.
	for i := range engines {
		if !read(i) {
			return
		}
	}

	writerDone := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // writer: one atomic batch at a time
		defer wg.Done()
		defer close(writerDone)
		for i, facts := range batches {
			info, err := reg.AppendFacts("g", facts)
			if err != nil {
				t.Error(err)
				return
			}
			mu.Lock()
			checkpoints[info.Version] = i + 1
			mu.Unlock()
		}
	}()
	for i := range engines {
		wg.Add(1)
		go func(i int) { // reader: maintained counts racing the writer
			defer wg.Done()
			for {
				select {
				case <-writerDone:
					read(i) // one guaranteed read at the final version
					return
				default:
					if !read(i) {
						return
					}
				}
			}
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	// Sequential replay: rebuild each observed version's structure from
	// the batch prefix and recount from scratch.  Equal versions always
	// denote equal fact sets (ineffective batches do not bump), so the
	// latest prefix per version is a valid witness.
	want := make(map[uint64]*big.Int)
	for _, o := range obs {
		w, ok := want[o.version]
		if !ok {
			prefix, known := checkpoints[o.version]
			if !known {
				t.Fatalf("observed version %d matches no append boundary — a torn batch", o.version)
			}
			src := initial
			for i := 0; i < prefix; i++ {
				src += batches[i] + "\n"
			}
			b, err := parser.ParseStructure(src, nil)
			if err != nil {
				t.Fatal(err)
			}
			fresh, err := reg.counterFor(query, engine.Brute, b.Signature())
			if err != nil {
				t.Fatal(err)
			}
			w, err = fresh.Count(b)
			if err != nil {
				t.Fatal(err)
			}
			want[o.version] = w
		}
		if o.count.Cmp(w) != 0 {
			t.Fatalf("engine %v at version %d: maintained %v != sequential replay %v",
				o.engine, o.version, o.count, w)
		}
	}
	if engine.DeltaStats().Advances == advBefore {
		t.Fatal("subscription stream never exercised the delta advance path")
	}
}
