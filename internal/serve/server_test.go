package serve

import (
	"context"
	"fmt"
	"math/big"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/structure"
	"repro/internal/workload"
)

// newTestServer spins up a Server behind httptest and returns it with a
// typed client.
func newTestServer(t *testing.T, cfg Config) (*Server, *Client) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, NewClient(ts.URL, ts.Client())
}

// factsText renders a structure in the parseable fact syntax.
func factsText(t *testing.T, b *structure.Structure) string {
	t.Helper()
	facts, err := b.FactsString()
	if err != nil {
		t.Fatal(err)
	}
	return facts
}

const triangleQuery = "tri(x,y,z) := E(x,y) & E(y,z) & E(z,x)"

func TestIngestCountAppendRecount(t *testing.T) {
	_, cl := newTestServer(t, Config{})
	ctx := context.Background()

	info, err := cl.CreateStructure(ctx, "g", "E(a,b). E(b,c). E(c,a).", nil)
	if err != nil {
		t.Fatal(err)
	}
	if info.Size != 3 || info.Tuples != 3 {
		t.Fatalf("ingest info = %+v", info)
	}

	v, resp, err := cl.Count(ctx, triangleQuery, "g")
	if err != nil {
		t.Fatal(err)
	}
	if v.Int64() != 3 {
		t.Fatalf("count = %v, want 3 (the three rotations)", v)
	}

	// Mutation: close the reverse cycle, creating three more directed
	// triangles.  The recount must see the new version — this is the
	// mutation → session-invalidation → recount path.
	info2, err := cl.AppendFacts(ctx, "g", "E(b,a). E(c,b). E(a,c).")
	if err != nil {
		t.Fatal(err)
	}
	if info2.Version <= resp.Version {
		t.Fatalf("append did not advance version: %d -> %d", resp.Version, info2.Version)
	}
	v2, resp2, err := cl.Count(ctx, triangleQuery, "g")
	if err != nil {
		t.Fatal(err)
	}
	if v2.Int64() != 6 {
		t.Fatalf("recount = %v, want 6", v2)
	}
	if resp2.Version != info2.Version {
		t.Fatalf("recount executed against version %d, want %d", resp2.Version, info2.Version)
	}

	// Appending a duplicate fact is a no-op for the count.
	if _, err := cl.AppendFacts(ctx, "g", "E(a,b)."); err != nil {
		t.Fatal(err)
	}
	v3, _, err := cl.Count(ctx, triangleQuery, "g")
	if err != nil {
		t.Fatal(err)
	}
	if v3.Cmp(v2) != 0 {
		t.Fatalf("duplicate append changed count: %v -> %v", v2, v3)
	}
}

// TestPlanSharingAcrossClients: two clients register textually
// different but counting-equivalent queries; the second counter's plans
// come out of the fingerprint-keyed plan cache, and its first count on
// the same structure is answered by the shared session count memo.
func TestPlanSharingAcrossClients(t *testing.T) {
	_, cl := newTestServer(t, Config{})
	ctx := context.Background()
	if _, err := cl.CreateStructure(ctx, "g", "E(a,b). E(b,c). E(c,d). E(d,a).", nil); err != nil {
		t.Fatal(err)
	}

	q1 := "p(x,y) := E(x,y)"
	q2 := "q(u,w) := E(u,w)" // renamed: counting equivalent, different text
	v1, _, err := cl.Count(ctx, q1, "g")
	if err != nil {
		t.Fatal(err)
	}
	v2, _, err := cl.Count(ctx, q2, "g")
	if err != nil {
		t.Fatal(err)
	}
	if v1.Cmp(v2) != 0 {
		t.Fatalf("equivalent queries disagree: %v vs %v", v1, v2)
	}

	st, err := cl.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Queries) != 2 {
		t.Fatalf("stats lists %d queries, want 2", len(st.Queries))
	}
	var sharedPlans int
	var memoHits uint64
	for _, qs := range st.Queries {
		sharedPlans += qs.SharedPlans
		memoHits += qs.CountCacheHits
	}
	if sharedPlans < 1 {
		t.Fatalf("no plan sharing across counting-equivalent queries: %+v", st.Queries)
	}
	if memoHits < 1 {
		t.Fatalf("second query should hit the shared session count memo: %+v", st.Queries)
	}
}

func TestCountBatchEndpoint(t *testing.T) {
	_, cl := newTestServer(t, Config{})
	ctx := context.Background()
	want := make([]*big.Int, 3)
	names := make([]string, 3)
	for i := range names {
		b := workload.RandomStructure(workload.EdgeSig(), 12, 0.3, int64(i+1))
		names[i] = fmt.Sprintf("g%d", i)
		if _, err := cl.CreateStructure(ctx, names[i], factsText(t, b), nil); err != nil {
			t.Fatal(err)
		}
	}
	vs, _, err := cl.CountBatch(ctx, triangleQuery, names)
	if err != nil {
		t.Fatal(err)
	}
	for i, name := range names {
		want[i], _, err = cl.Count(ctx, triangleQuery, name)
		if err != nil {
			t.Fatal(err)
		}
		if vs[i].Cmp(want[i]) != 0 {
			t.Fatalf("batch[%d] = %v, single count = %v", i, vs[i], want[i])
		}
	}
}

// TestDeadlineCancellation: a 1ms budget cannot cover a dense triangle
// join; the server must answer 504 with the executor aborted, and the
// same request without the tiny budget must succeed afterwards (no
// memo poisoning).
func TestDeadlineCancellation(t *testing.T) {
	_, cl := newTestServer(t, Config{})
	ctx := context.Background()
	b := workload.RandomStructure(workload.EdgeSig(), 250, 0.5, 23)
	if _, err := cl.CreateStructure(ctx, "big", factsText(t, b), nil); err != nil {
		t.Fatal(err)
	}
	_, _, err := cl.CountWith(ctx, CountRequest{Query: triangleQuery, Structure: "big", TimeoutMillis: 1})
	if err == nil || !strings.Contains(err.Error(), "HTTP 504") {
		t.Fatalf("err = %v, want HTTP 504 deadline error", err)
	}
	v, _, err := cl.Count(ctx, triangleQuery, "big")
	if err != nil {
		t.Fatalf("count after deadline abort: %v", err)
	}
	if v.Sign() <= 0 {
		t.Fatalf("suspicious post-abort count %v", v)
	}
	st, err := cl.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Admission.Deadline < 1 {
		t.Fatalf("deadline counter not incremented: %+v", st.Admission)
	}
}

// TestAdmissionControl: with a cap of 1, a counting request arriving
// while another is executing is rejected with 503.
func TestAdmissionControl(t *testing.T) {
	s, cl := newTestServer(t, Config{MaxInFlight: 1})
	ctx := context.Background()
	b := workload.RandomStructure(workload.EdgeSig(), 250, 0.5, 29)
	if _, err := cl.CreateStructure(ctx, "big", factsText(t, b), nil); err != nil {
		t.Fatal(err)
	}

	// Occupy the only slot directly (deterministic), then hit the API.
	release, ok := s.admit(httptest.NewRecorder())
	if !ok {
		t.Fatal("could not occupy the admission slot")
	}
	_, _, err := cl.Count(ctx, triangleQuery, "big")
	release()
	if err == nil || !strings.Contains(err.Error(), "HTTP 503") {
		t.Fatalf("err = %v, want HTTP 503 while saturated", err)
	}

	// With the slot free the same request succeeds.
	if _, _, err := cl.Count(ctx, triangleQuery, "big"); err != nil {
		t.Fatal(err)
	}
	st, err := cl.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Admission.Rejected < 1 {
		t.Fatalf("rejected counter not incremented: %+v", st.Admission)
	}
}

// TestGracefulShutdown: Shutdown lets an in-flight count finish and
// refuses new connections afterwards.
func TestGracefulShutdown(t *testing.T) {
	s := New(Config{})
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	cl := NewClient("http://"+s.Addr(), nil)
	ctx := context.Background()
	b := workload.RandomStructure(workload.EdgeSig(), 200, 0.5, 31)
	if _, err := cl.CreateStructure(ctx, "big", factsText(t, b), nil); err != nil {
		t.Fatal(err)
	}

	var (
		wg       sync.WaitGroup
		countErr error
		count    *big.Int
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		count, _, countErr = cl.Count(ctx, triangleQuery, "big")
	}()
	time.Sleep(50 * time.Millisecond) // let the count get in flight
	shCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(shCtx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	wg.Wait()
	if countErr != nil {
		t.Fatalf("in-flight count was not drained: %v", countErr)
	}
	if count == nil || count.Sign() < 0 {
		t.Fatalf("drained count = %v", count)
	}
	if err := cl.Healthz(ctx); err == nil {
		t.Fatal("server still accepting connections after Shutdown")
	}
}

func TestErrorStatuses(t *testing.T) {
	_, cl := newTestServer(t, Config{})
	ctx := context.Background()
	if _, err := cl.CreateStructure(ctx, "g", "E(a,b).", nil); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		run  func() error
		want string
	}{
		{"duplicate structure", func() error {
			_, err := cl.CreateStructure(ctx, "g", "E(a,b).", nil)
			return err
		}, "HTTP 409"},
		{"unknown structure count", func() error {
			_, _, err := cl.Count(ctx, triangleQuery, "nope")
			return err
		}, "HTTP 404"},
		{"unknown structure info", func() error {
			_, err := cl.Structure(ctx, "nope")
			return err
		}, "HTTP 404"},
		{"bad query", func() error {
			_, _, err := cl.Count(ctx, "this is not a query", "g")
			return err
		}, "HTTP 400"},
		{"bad engine", func() error {
			_, _, err := cl.CountWith(ctx, CountRequest{Query: triangleQuery, Structure: "g", Engine: "warp"})
			return err
		}, "HTTP 400"},
		{"bad facts", func() error {
			_, err := cl.AppendFacts(ctx, "g", "E(a,b,c).") // arity mismatch
			return err
		}, "HTTP 400"},
		{"empty batch", func() error {
			_, _, err := cl.CountBatch(ctx, triangleQuery, nil)
			return err
		}, "HTTP 400"},
	}
	for _, tc := range cases {
		err := tc.run()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want %s", tc.name, err, tc.want)
		}
	}
}

func TestHealthzAndStructureListing(t *testing.T) {
	_, cl := newTestServer(t, Config{})
	ctx := context.Background()
	if err := cl.Healthz(ctx); err != nil {
		t.Fatal(err)
	}
	for _, n := range []string{"b", "a"} {
		if _, err := cl.CreateStructure(ctx, n, "E(x,y).", nil); err != nil {
			t.Fatal(err)
		}
	}
	list, err := cl.Structures(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 2 || list[0].Name != "a" || list[1].Name != "b" {
		t.Fatalf("structures = %+v, want sorted [a b]", list)
	}
}
