// Package serve is the counting service layer: an HTTP/JSON front-end
// (cmd/epserved) that turns the compiled counting pipeline into a
// long-lived, concurrent service — the first surface where the
// engine's cross-request machinery (fingerprint-keyed plan sharing,
// per-structure sessions, per-fingerprint count memoization,
// version-based invalidation) pays off across clients rather than
// within one process.
//
// The pieces:
//
//   - Registry: named structures, each guarded by a read/write lock —
//     counts run concurrently under the read side, fact appends take
//     the write side, so every count observes a consistent structure
//     version and every append batch is atomic.  Appends ride the
//     columnar store's incremental posting lists (ingest cost is
//     proportional to the delta) and bump the structure version, which
//     invalidates cached engine sessions; the next count
//     re-materializes against the new version.  The registry also
//     caches compiled queries per (source text, engine, signature);
//     counting-equivalent queries — even textually different ones from
//     different clients — share engine plans underneath through the
//     fingerprint-keyed plan cache.
//
//   - Server: the HTTP endpoints.  POST /structures ingests, POST
//     /structures/{name}/facts appends, POST /count and /countBatch
//     execute on the engine's bounded worker pools, GET /stats
//     surfaces the typed core.Counter.Stats of every cached query plus
//     the term-pool, session-registry, and admission telemetry, GET
//     /healthz answers liveness.  Admission control caps in-flight
//     counting requests (excess requests get 503 + Retry-After rather
//     than queueing), and every counting request carries a deadline —
//     the server default, optionally lowered per request — threaded as
//     a context through the executor, so an expired request stops
//     consuming CPU at the executor's cancellation-poll granularity
//     and answers 504.  Shutdown drains in-flight requests.
//
//   - Client: a typed client for the wire API (api.go), used by the
//     examples, the load generator, and tests.
//
// Counts travel as decimal strings: answer counts are big integers and
// JSON numbers are lossy beyond 2^53.
package serve
