// Package serve is the counting service layer: an HTTP/JSON front-end
// (cmd/epserved) that turns the compiled counting pipeline into a
// long-lived, concurrent service — the first surface where the
// engine's cross-request machinery (fingerprint-keyed plan sharing,
// per-structure sessions, per-fingerprint count memoization,
// version-based invalidation) pays off across clients rather than
// within one process.
//
// The pieces:
//
//   - Registry: named structures, each guarded by a read/write lock —
//     counts run concurrently under the read side, fact appends take
//     the write side, so every count observes a consistent structure
//     version and every append batch is atomic.  Appends ride the
//     columnar store's incremental posting lists (ingest cost is
//     proportional to the delta) and bump the structure version, which
//     invalidates cached engine sessions; the next count
//     re-materializes against the new version — or, for a warm
//     delta-maintainable memo, is advanced by the appended rows through
//     the engine's incremental delta path (the append response's
//     Inserted field reports the dedup-aware effective delta, and a
//     fully-duplicate batch keeps the version, leaving caches valid).
//     The registry also
//     caches compiled queries per (source text, engine, signature);
//     counting-equivalent queries — even textually different ones from
//     different clients — share engine plans underneath through the
//     fingerprint-keyed plan cache.
//
//   - Subscriptions (subscription.go): maintained counts.  POST
//     /subscriptions binds a query to a registered structure (compiling
//     the counter, computing nothing); the first GET
//     /subscriptions/{id} materializes the count and later reads either
//     answer from the cached (count, version) pair when the structure
//     is unchanged or re-count under the structure's read lock — riding
//     the engine's delta path when the plan allows — and re-stamp at
//     the observed version.  A differential test pins every maintained
//     count to a sequential replay of the append history at its
//     version.
//
//   - Server: the HTTP endpoints.  POST /structures ingests, POST
//     /structures/{name}/facts appends, POST /count and /countBatch
//     execute on the engine's bounded worker pools, GET /stats
//     surfaces the typed core.Counter.Stats of every cached query plus
//     the term-pool, session-registry, and admission telemetry, GET
//     /healthz answers liveness.  Admission control caps in-flight
//     counting requests (excess requests get 503 + Retry-After rather
//     than queueing), and every counting request carries a deadline —
//     the server default, optionally lowered per request — threaded as
//     a context through the executor, so an expired request stops
//     consuming CPU at the executor's cancellation-poll granularity
//     and answers 504.  Shutdown drains in-flight requests.
//
//   - Client: a typed client for the wire API (api.go), used by the
//     examples, the load generator, and tests.
//
// Counts travel as decimal strings: answer counts are big integers and
// JSON numbers are lossy beyond 2^53.
package serve
