package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/big"
	"net/http"
	"strings"
)

// Client is a typed HTTP client for an epserved server.  The zero
// value is not usable; call NewClient.
type Client struct {
	base string
	hc   *http.Client
}

// NewClient returns a client for the server at base (e.g.
// "http://127.0.0.1:8080").  hc may be nil for http.DefaultClient.
func NewClient(base string, hc *http.Client) *Client {
	if hc == nil {
		hc = http.DefaultClient
	}
	return &Client{base: strings.TrimRight(base, "/"), hc: hc}
}

// do sends a JSON request and decodes the JSON response into out,
// mapping non-2xx responses to errors carrying the server's message.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		data, err := json.Marshal(in)
		if err != nil {
			return err
		}
		body = bytes.NewReader(data)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode >= 300 {
		var er ErrorResponse
		if json.NewDecoder(resp.Body).Decode(&er) == nil && er.Error != "" {
			return fmt.Errorf("epserved: %s %s: %s (HTTP %d)", method, path, er.Error, resp.StatusCode)
		}
		return fmt.Errorf("epserved: %s %s: HTTP %d", method, path, resp.StatusCode)
	}
	if out == nil {
		// Drain so the keep-alive connection returns to the pool.
		_, _ = io.Copy(io.Discard, resp.Body)
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// CreateStructure ingests a named structure from fact syntax.
func (c *Client) CreateStructure(ctx context.Context, name, facts string, sig []RelSpec) (StructureInfo, error) {
	var info StructureInfo
	err := c.do(ctx, http.MethodPost, "/structures",
		CreateStructureRequest{Name: name, Facts: facts, Signature: sig}, &info)
	return info, err
}

// AppendFacts appends facts to a registered structure (atomic with
// respect to concurrent counts) and returns its new metadata.
func (c *Client) AppendFacts(ctx context.Context, name, facts string) (StructureInfo, error) {
	var info StructureInfo
	err := c.do(ctx, http.MethodPost, "/structures/"+name+"/facts",
		AppendFactsRequest{Facts: facts}, &info)
	return info, err
}

// Structures lists the registered structures.
func (c *Client) Structures(ctx context.Context) ([]StructureInfo, error) {
	var resp StructuresResponse
	err := c.do(ctx, http.MethodGet, "/structures", nil, &resp)
	return resp.Structures, err
}

// Structure fetches one structure's metadata.
func (c *Client) Structure(ctx context.Context, name string) (StructureInfo, error) {
	var info StructureInfo
	err := c.do(ctx, http.MethodGet, "/structures/"+name, nil, &info)
	return info, err
}

// Count counts the query's answers on one registered structure.  The
// returned big.Int is parsed from the server's decimal string.
func (c *Client) Count(ctx context.Context, query, structureName string) (*big.Int, CountResponse, error) {
	return c.CountWith(ctx, CountRequest{Query: query, Structure: structureName})
}

// CountWith is Count with full request control (engine, timeout).
func (c *Client) CountWith(ctx context.Context, req CountRequest) (*big.Int, CountResponse, error) {
	var resp CountResponse
	if err := c.do(ctx, http.MethodPost, "/count", req, &resp); err != nil {
		return nil, resp, err
	}
	v, ok := new(big.Int).SetString(resp.Count, 10)
	if !ok {
		return nil, resp, fmt.Errorf("epserved: malformed count %q", resp.Count)
	}
	return v, resp, nil
}

// CountBatch counts the query on several registered structures in one
// request; result i corresponds to structures[i].
func (c *Client) CountBatch(ctx context.Context, query string, structures []string) ([]*big.Int, CountBatchResponse, error) {
	return c.CountBatchWith(ctx, CountBatchRequest{Query: query, Structures: structures})
}

// CountBatchWith is CountBatch with full request control.
func (c *Client) CountBatchWith(ctx context.Context, req CountBatchRequest) ([]*big.Int, CountBatchResponse, error) {
	var resp CountBatchResponse
	if err := c.do(ctx, http.MethodPost, "/countBatch", req, &resp); err != nil {
		return nil, resp, err
	}
	out := make([]*big.Int, len(resp.Counts))
	for i, s := range resp.Counts {
		v, ok := new(big.Int).SetString(s, 10)
		if !ok {
			return nil, resp, fmt.Errorf("epserved: malformed count %q", s)
		}
		out[i] = v
	}
	return out, resp, nil
}

// Subscribe registers a maintained count for (query, structure) and
// returns its metadata.  The count materializes on the first
// SubscriptionCount read and is maintained incrementally afterwards.
func (c *Client) Subscribe(ctx context.Context, query, structureName string) (SubscriptionInfo, error) {
	return c.SubscribeWith(ctx, SubscribeRequest{Query: query, Structure: structureName})
}

// SubscribeWith is Subscribe with full request control (engine).
func (c *Client) SubscribeWith(ctx context.Context, req SubscribeRequest) (SubscriptionInfo, error) {
	var info SubscriptionInfo
	err := c.do(ctx, http.MethodPost, "/subscriptions", req, &info)
	return info, err
}

// SubscriptionCount reads a subscription's maintained count at the
// structure's current version (updating it first if the structure moved
// since the last read).  The big.Int is parsed from the decimal wire
// string.
func (c *Client) SubscriptionCount(ctx context.Context, id string) (*big.Int, SubscriptionInfo, error) {
	var info SubscriptionInfo
	if err := c.do(ctx, http.MethodGet, "/subscriptions/"+id, nil, &info); err != nil {
		return nil, info, err
	}
	v, ok := new(big.Int).SetString(info.Count, 10)
	if !ok {
		return nil, info, fmt.Errorf("epserved: malformed count %q", info.Count)
	}
	return v, info, nil
}

// Subscriptions lists the registered subscriptions.
func (c *Client) Subscriptions(ctx context.Context) ([]SubscriptionInfo, error) {
	var resp SubscriptionsResponse
	err := c.do(ctx, http.MethodGet, "/subscriptions", nil, &resp)
	return resp.Subscriptions, err
}

// Unsubscribe removes a subscription.
func (c *Client) Unsubscribe(ctx context.Context, id string) error {
	return c.do(ctx, http.MethodDelete, "/subscriptions/"+id, nil, nil)
}

// Stats fetches the server's telemetry snapshot.
func (c *Client) Stats(ctx context.Context) (StatsResponse, error) {
	var resp StatsResponse
	err := c.do(ctx, http.MethodGet, "/stats", nil, &resp)
	return resp, err
}

// Healthz reports whether the server answers its health check.
func (c *Client) Healthz(ctx context.Context) error {
	return c.do(ctx, http.MethodGet, "/healthz", nil, nil)
}
