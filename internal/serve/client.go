package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/big"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// RetryPolicy configures the client's capped-exponential-backoff retry
// loop.  Retries apply ONLY to idempotent operations: reads (listings,
// /count, /countBatch — pure queries), the health and stats endpoints,
// and appends that carry a client-supplied idempotency batch id (the
// server dedups replays, so a retried batch cannot double-apply).
// Creates, subscribes, unsubscribes, and appends without a batch id
// never retry — a lost response would make a replay non-idempotent.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries (≤ 1 disables retry).
	MaxAttempts int
	// BaseDelay is the backoff before the first retry; each further
	// retry doubles it, capped at MaxDelay, with ±50% jitter.  A 503's
	// Retry-After header overrides the computed delay when larger.
	BaseDelay time.Duration
	// MaxDelay caps the per-retry backoff.
	MaxDelay time.Duration
}

// DefaultRetryPolicy retries up to 4 attempts with 50ms base backoff
// capped at 2s.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{MaxAttempts: 4, BaseDelay: 50 * time.Millisecond, MaxDelay: 2 * time.Second}
}

// APIError is the typed form of every non-2xx server response the
// client surfaces: the HTTP status, the request that produced it, and
// the server's message.  Callers that route around failing replicas
// (the cluster coordinator) inspect Status via errors.As to separate
// transient refusals (503, 504) from semantic errors (400, 404, 422)
// that would fail identically everywhere.
type APIError struct {
	// Status is the HTTP status code of the response.
	Status int
	// Method and Path identify the request.
	Method, Path string
	// Msg is the server's error message (empty when the body carried
	// none).
	Msg string
	// Case is the query's trichotomy case on typed admission rejections
	// of exact-mode hard queries ("clique", "sharp-clique"); empty
	// otherwise.  Clients switch to mode "approx" on seeing it.
	Case string
}

// Error renders the error in the client's historical format.
func (e *APIError) Error() string {
	if e.Msg != "" {
		return fmt.Sprintf("epserved: %s %s: %s (HTTP %d)", e.Method, e.Path, e.Msg, e.Status)
	}
	return fmt.Sprintf("epserved: %s %s: HTTP %d", e.Method, e.Path, e.Status)
}

// SharedTransport returns an http.Client over one pooled transport
// tuned for fan-out against a fixed set of epserved hosts: up to
// maxIdlePerHost warm keep-alive connections are retained per host
// (≤ 0 selects 32), so a scatter-gather burst reuses TCP connections
// instead of paying a cold dial per request.  Hand the same client to
// every NewClient aimed at the fleet so all of them share the pool.
func SharedTransport(maxIdlePerHost int) *http.Client {
	if maxIdlePerHost <= 0 {
		maxIdlePerHost = 32
	}
	tr := http.DefaultTransport.(*http.Transport).Clone()
	tr.MaxIdleConnsPerHost = maxIdlePerHost
	if tr.MaxIdleConns < 4*maxIdlePerHost {
		tr.MaxIdleConns = 4 * maxIdlePerHost
	}
	return &http.Client{Transport: tr}
}

// Client is a typed HTTP client for an epserved server.  The zero
// value is not usable; call NewClient.
type Client struct {
	base  string
	hc    *http.Client
	retry RetryPolicy
	// sleep pauses between retries (swapped out by tests).
	sleep func(ctx context.Context, d time.Duration) error
}

// NewClient returns a client for the server at base (e.g.
// "http://127.0.0.1:8080").  hc may be nil for http.DefaultClient.
// The client does not retry; see WithRetry.
func NewClient(base string, hc *http.Client) *Client {
	if hc == nil {
		hc = http.DefaultClient
	}
	return &Client{base: strings.TrimRight(base, "/"), hc: hc, sleep: sleepCtx}
}

// WithRetry returns a copy of the client that retries idempotent
// operations per the policy (see RetryPolicy for what qualifies):
// transient transport errors and 503 responses back off exponentially
// with jitter, honoring Retry-After.
func (c *Client) WithRetry(p RetryPolicy) *Client {
	cc := *c
	cc.retry = p
	return &cc
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// do sends a JSON request and decodes the JSON response into out,
// mapping non-2xx responses to errors carrying the server's message.
// Idempotent requests retry per the client's policy; the request body
// is re-marshalled bytes, safe to replay.
func (c *Client) do(ctx context.Context, method, path string, in, out any, idempotent bool) error {
	var payload []byte
	if in != nil {
		data, err := json.Marshal(in)
		if err != nil {
			return err
		}
		payload = data
	}
	attempts := 1
	if idempotent && c.retry.MaxAttempts > 1 {
		attempts = c.retry.MaxAttempts
	}
	var lastErr error
	var hint time.Duration // server's Retry-After, if any
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			if err := c.sleep(ctx, c.backoff(attempt, hint)); err != nil {
				return lastErr
			}
		}
		retryable, retryAfter, err := c.doOnce(ctx, method, path, payload, in != nil, out)
		if err == nil {
			return nil
		}
		lastErr = err
		if !retryable || ctx.Err() != nil {
			return err
		}
		hint = retryAfter
	}
	return lastErr
}

// backoff computes the delay before retry #attempt: exponential from
// BaseDelay, capped at MaxDelay, ±50% jitter, floored at the server's
// Retry-After hint.
func (c *Client) backoff(attempt int, hint time.Duration) time.Duration {
	base := c.retry.BaseDelay
	if base <= 0 {
		base = 50 * time.Millisecond
	}
	maxd := c.retry.MaxDelay
	if maxd <= 0 {
		maxd = 2 * time.Second
	}
	d := base << uint(attempt-1)
	if d > maxd || d <= 0 {
		d = maxd
	}
	d = d/2 + time.Duration(rand.Int63n(int64(d/2)+1))
	if hint > d {
		d = hint
	}
	if d > maxd {
		d = maxd
	}
	return d
}

// doOnce performs one HTTP round trip.  retryable reports whether the
// failure is transient: a transport error (connection refused/reset,
// dropped mid-flight) or a 503 — the admission controller and the
// shutdown path both use 503 + Retry-After for "try again shortly".
func (c *Client) doOnce(ctx context.Context, method, path string, payload []byte, hasBody bool, out any) (retryable bool, retryAfter time.Duration, err error) {
	var body io.Reader
	if hasBody {
		body = bytes.NewReader(payload)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return false, 0, err
	}
	if hasBody {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return true, 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode >= 300 {
		if resp.StatusCode == http.StatusServiceUnavailable {
			if secs, perr := strconv.Atoi(resp.Header.Get("Retry-After")); perr == nil && secs > 0 {
				retryAfter = time.Duration(secs) * time.Second
			}
			retryable = true
		}
		var er ErrorResponse
		_ = json.NewDecoder(resp.Body).Decode(&er)
		return retryable, retryAfter, &APIError{Status: resp.StatusCode, Method: method, Path: path, Msg: er.Error, Case: er.Case}
	}
	if out == nil {
		// Drain so the keep-alive connection returns to the pool.
		_, _ = io.Copy(io.Discard, resp.Body)
		return false, 0, nil
	}
	return false, 0, json.NewDecoder(resp.Body).Decode(out)
}

// CreateStructure ingests a named structure from fact syntax.
func (c *Client) CreateStructure(ctx context.Context, name, facts string, sig []RelSpec) (StructureInfo, error) {
	return c.CreateStructureWith(ctx, CreateStructureRequest{Name: name, Facts: facts, Signature: sig})
}

// CreateStructureWith is CreateStructure with full request control —
// in particular Partitions, which a cluster coordinator honors by
// splitting the structure's domain across shards (a plain server
// rejects it).
func (c *Client) CreateStructureWith(ctx context.Context, req CreateStructureRequest) (StructureInfo, error) {
	var info StructureInfo
	err := c.do(ctx, http.MethodPost, "/structures", req, &info, false)
	return info, err
}

// AppendFacts appends facts to a registered structure (atomic with
// respect to concurrent counts) and returns its new metadata.  Without
// a batch id the call is NOT retried on transient failure — a lost
// response leaves the outcome unknown; use AppendFactsBatch for
// retry-safe appends.
func (c *Client) AppendFacts(ctx context.Context, name, facts string) (StructureInfo, error) {
	var info StructureInfo
	err := c.do(ctx, http.MethodPost, "/structures/"+name+"/facts",
		AppendFactsRequest{Facts: facts}, &info, false)
	return info, err
}

// AppendFactsBatch appends facts under a client-chosen idempotency
// batch id.  With a non-empty id the request is safely retryable (and
// the retry policy applies): the server dedups recently seen ids —
// including across crash recovery — and echoes the id in the response.
func (c *Client) AppendFactsBatch(ctx context.Context, name, facts, batchID string) (StructureInfo, error) {
	var info StructureInfo
	err := c.do(ctx, http.MethodPost, "/structures/"+name+"/facts",
		AppendFactsRequest{Facts: facts, BatchID: batchID}, &info, batchID != "")
	return info, err
}

// Structures lists the registered structures.
func (c *Client) Structures(ctx context.Context) ([]StructureInfo, error) {
	var resp StructuresResponse
	err := c.do(ctx, http.MethodGet, "/structures", nil, &resp, true)
	return resp.Structures, err
}

// Structure fetches one structure's metadata.
func (c *Client) Structure(ctx context.Context, name string) (StructureInfo, error) {
	var info StructureInfo
	err := c.do(ctx, http.MethodGet, "/structures/"+name, nil, &info, true)
	return info, err
}

// Count counts the query's answers on one registered structure.  The
// returned big.Int is parsed from the server's decimal string.
func (c *Client) Count(ctx context.Context, query, structureName string) (*big.Int, CountResponse, error) {
	return c.CountWith(ctx, CountRequest{Query: query, Structure: structureName})
}

// CountWith is Count with full request control (engine, timeout).
func (c *Client) CountWith(ctx context.Context, req CountRequest) (*big.Int, CountResponse, error) {
	var resp CountResponse
	if err := c.do(ctx, http.MethodPost, "/count", req, &resp, true); err != nil {
		return nil, resp, err
	}
	v, ok := new(big.Int).SetString(resp.Count, 10)
	if !ok {
		return nil, resp, fmt.Errorf("epserved: malformed count %q", resp.Count)
	}
	return v, resp, nil
}

// CountApprox counts the query on one registered structure in approx
// mode with the given (ε, δ) target (0, 0 selects the server defaults
// 0.1, 0.05): hard-classified terms run the sampling estimator, FPT
// terms the exact executor.  The returned big.Int is the point
// estimate; the CountResponse carries rel_error, confidence, case, and
// samples.  Use CountWith for the remaining approx knobs (seed,
// max_samples).
func (c *Client) CountApprox(ctx context.Context, query, structureName string, eps, delta float64) (*big.Int, CountResponse, error) {
	return c.CountWith(ctx, CountRequest{
		Query: query, Structure: structureName,
		Mode: "approx", Epsilon: eps, Delta: delta,
	})
}

// CountBatch counts the query on several registered structures in one
// request; result i corresponds to structures[i].
func (c *Client) CountBatch(ctx context.Context, query string, structures []string) ([]*big.Int, CountBatchResponse, error) {
	return c.CountBatchWith(ctx, CountBatchRequest{Query: query, Structures: structures})
}

// CountBatchWith is CountBatch with full request control.
func (c *Client) CountBatchWith(ctx context.Context, req CountBatchRequest) ([]*big.Int, CountBatchResponse, error) {
	var resp CountBatchResponse
	if err := c.do(ctx, http.MethodPost, "/countBatch", req, &resp, true); err != nil {
		return nil, resp, err
	}
	out := make([]*big.Int, len(resp.Counts))
	for i, s := range resp.Counts {
		v, ok := new(big.Int).SetString(s, 10)
		if !ok {
			return nil, resp, fmt.Errorf("epserved: malformed count %q", s)
		}
		out[i] = v
	}
	return out, resp, nil
}

// Subscribe registers a maintained count for (query, structure) and
// returns its metadata.  The count materializes on the first
// SubscriptionCount read and is maintained incrementally afterwards.
func (c *Client) Subscribe(ctx context.Context, query, structureName string) (SubscriptionInfo, error) {
	return c.SubscribeWith(ctx, SubscribeRequest{Query: query, Structure: structureName})
}

// SubscribeWith is Subscribe with full request control (engine).
func (c *Client) SubscribeWith(ctx context.Context, req SubscribeRequest) (SubscriptionInfo, error) {
	var info SubscriptionInfo
	err := c.do(ctx, http.MethodPost, "/subscriptions", req, &info, false)
	return info, err
}

// SubscriptionCount reads a subscription's maintained count at the
// structure's current version (updating it first if the structure moved
// since the last read).  The big.Int is parsed from the decimal wire
// string.
func (c *Client) SubscriptionCount(ctx context.Context, id string) (*big.Int, SubscriptionInfo, error) {
	var info SubscriptionInfo
	if err := c.do(ctx, http.MethodGet, "/subscriptions/"+id, nil, &info, true); err != nil {
		return nil, info, err
	}
	v, ok := new(big.Int).SetString(info.Count, 10)
	if !ok {
		return nil, info, fmt.Errorf("epserved: malformed count %q", info.Count)
	}
	return v, info, nil
}

// Subscriptions lists the registered subscriptions.
func (c *Client) Subscriptions(ctx context.Context) ([]SubscriptionInfo, error) {
	var resp SubscriptionsResponse
	err := c.do(ctx, http.MethodGet, "/subscriptions", nil, &resp, true)
	return resp.Subscriptions, err
}

// Unsubscribe removes a subscription.
func (c *Client) Unsubscribe(ctx context.Context, id string) error {
	return c.do(ctx, http.MethodDelete, "/subscriptions/"+id, nil, nil, false)
}

// Stats fetches the server's telemetry snapshot.
func (c *Client) Stats(ctx context.Context) (StatsResponse, error) {
	var resp StatsResponse
	err := c.do(ctx, http.MethodGet, "/stats", nil, &resp, true)
	return resp, err
}

// Healthz reports whether the server answers its health check.
func (c *Client) Healthz(ctx context.Context) error {
	return c.do(ctx, http.MethodGet, "/healthz", nil, nil, true)
}
