package serve

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/count"
	"repro/internal/engine"
	"repro/internal/parser"
	"repro/internal/structure"
	"repro/internal/wal"
)

// errDuplicate marks a CreateStructure name collision (mapped to 409).
var errDuplicate = errors.New("already exists")

// errClosed marks writes against a registry that has begun shutting
// down (mapped to 503 + Retry-After so clients back off and retry
// against the restarted process).
var errClosed = errors.New("registry is shutting down")

// batchMemoCap bounds the per-structure idempotency memo (recent batch
// ids and their responses); older entries fall off FIFO.
const batchMemoCap = 1024

// structEntry is one registered structure plus its mutation lock.
//
// The columnar structure store is safe for any number of concurrent
// readers but mutation (AddFact/AddTuple bumping columns, posting
// lists, and the version counter) must be exclusive, so counts hold the
// read side and appends the write side.  This also makes every append
// batch atomic with respect to counting: a count executes against a
// version boundary, never half a batch, and the engine's per-structure
// sessions invalidate on the version bump the moment the write lock is
// released.
type structEntry struct {
	mu sync.RWMutex
	b  *structure.Structure
	// batches is the idempotency memo: recent append batch ids mapped to
	// the response they produced, so a retried batch (client retry after
	// a lost response, or a replayed request after recovery) is answered
	// from the memo instead of re-applied.  Guarded by mu (appends hold
	// the write side anyway); batchOrder drives FIFO eviction.
	batches    map[string]StructureInfo
	batchOrder []string
}

// rememberBatch records an append response under its batch id, evicting
// the oldest memo past batchMemoCap.  Caller holds e.mu.
func (e *structEntry) rememberBatch(id string, info StructureInfo) {
	if e.batches == nil {
		e.batches = make(map[string]StructureInfo)
	}
	if _, ok := e.batches[id]; !ok {
		e.batchOrder = append(e.batchOrder, id)
		if len(e.batchOrder) > batchMemoCap {
			delete(e.batches, e.batchOrder[0])
			e.batchOrder = e.batchOrder[1:]
		}
	}
	e.batches[id] = info
}

// info snapshots the structure's metadata under the read lock.
func (e *structEntry) info(name string) StructureInfo {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return StructureInfo{Name: name, Size: e.b.Size(), Tuples: e.b.NumTuples(), Version: e.b.Version()}
}

// queryKey identifies a cached counter: the query source text, the
// engine, and the signature it was compiled against (the same text over
// different vocabularies compiles to different counters).
type queryKey struct {
	src    string
	engine engine.Name
	sig    string
}

// Registry holds the server's named structures and its compiled-query
// cache.  Counters are cached per (query text, engine, signature);
// textually different but counting-equivalent queries still share
// compiled plans underneath through the engine's fingerprint-keyed plan
// cache, so the counter cache only saves front-end (parse + Theorem 3.1)
// work.
type Registry struct {
	mu      sync.RWMutex
	structs map[string]*structEntry
	queries map[queryKey]*core.Counter
	// subs holds the registered subscriptions (maintained counts; see
	// subscription.go), keyed by id; subSeq feeds id allocation.
	subs   map[string]*subEntry
	subSeq uint64

	// queryCap bounds the counter cache; reaching it wipes the cache
	// wholesale (a memo, not a store — entries rebuild on demand).
	queryCap int
	// workers is the budget handed to every new counter (0 = process
	// default).
	workers int

	// store is the optional durability store (nil = in-memory only),
	// installed once by AttachStore; compactBytes is the WAL size that
	// triggers a snapshot-then-truncate compaction (≤ 0 = never).
	// Both are guarded by mu for writes and effectively immutable after
	// AttachStore.
	store        *wal.Store
	compactBytes int64
	// closed latches when Close begins: further creates and appends are
	// refused so the append WaitGroup can drain before the store closes.
	closed bool
	// appendWG tracks in-flight append/create writers; Close waits on it
	// so a batch that was admitted is both applied and durably logged
	// before the store shuts.
	appendWG sync.WaitGroup
	// compacting serializes compactions (concurrent triggers coalesce).
	compacting atomic.Bool

	// Recovery telemetry for /stats.
	recStructs, recRecords, recSnaps int
	recTruncated                     bool
}

// NewRegistry returns an empty registry.  queryCap ≤ 0 selects the
// default counter-cache capacity.
func NewRegistry(queryCap, workers int) *Registry {
	if queryCap <= 0 {
		queryCap = 256
	}
	return &Registry{
		structs:  make(map[string]*structEntry),
		queries:  make(map[queryKey]*core.Counter),
		subs:     make(map[string]*subEntry),
		queryCap: queryCap,
		workers:  workers,
	}
}

// CreateStructure parses and registers a named structure.  The name must
// be unused; facts may be empty only if a signature is given.
func (r *Registry) CreateStructure(name, facts string, spec []RelSpec) (StructureInfo, error) {
	if name == "" {
		return StructureInfo{}, fmt.Errorf("structure name must not be empty")
	}
	var sig *structure.Signature
	if len(spec) > 0 {
		rels := make([]structure.RelSym, len(spec))
		for i, rs := range spec {
			rels[i] = structure.RelSym{Name: rs.Name, Arity: rs.Arity}
		}
		var err error
		sig, err = structure.NewSignature(rels...)
		if err != nil {
			return StructureInfo{}, err
		}
	}
	b, err := parser.ParseStructure(facts, sig)
	if err != nil {
		return StructureInfo{}, err
	}
	e := &structEntry{b: b}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return StructureInfo{}, errClosed
	}
	if _, dup := r.structs[name]; dup {
		return StructureInfo{}, fmt.Errorf("structure %q %w", name, errDuplicate)
	}
	// Log the creation before publishing it: once a client sees the 201,
	// the structure exists across restarts.  The raw facts and spec are
	// logged (not the parsed form) so replay goes through the same
	// parser and is bit-identical.
	if r.store != nil {
		if err := r.store.LogCreate(name, walSpec(spec), facts); err != nil {
			return StructureInfo{}, fmt.Errorf("durability: %w", err)
		}
	}
	r.structs[name] = e
	return StructureInfo{Name: name, Size: b.Size(), Tuples: b.NumTuples(), Version: b.Version()}, nil
}

// walSpec converts the wire signature spec to the WAL's record shape.
func walSpec(spec []RelSpec) []wal.RelSpec {
	if len(spec) == 0 {
		return nil
	}
	out := make([]wal.RelSpec, len(spec))
	for i, rs := range spec {
		out[i] = wal.RelSpec{Name: rs.Name, Arity: rs.Arity}
	}
	return out
}

// entry resolves a named structure.
func (r *Registry) entry(name string) (*structEntry, error) {
	r.mu.RLock()
	e := r.structs[name]
	r.mu.RUnlock()
	if e == nil {
		return nil, fmt.Errorf("unknown structure %q", name)
	}
	return e, nil
}

// AppendFacts parses facts over the structure's signature and merges
// them in under the write lock: new element names extend the universe,
// duplicate tuples are ignored.  The whole batch lands in one critical
// section, so concurrent counts see it atomically; the returned info's
// Inserted reports how many tuples the batch actually added
// (dedup-aware), and the version bumps only when that delta is
// non-empty — a fully-duplicate batch leaves cached sessions and
// memoized counts valid.  An effective append invalidates sessions via
// the version bump; the next count against a warm, delta-maintainable
// memo is then advanced by the appended rows rather than recomputed
// (the columnar store's posting lists are maintained incrementally too,
// so ingest cost is proportional to the appended facts, not to the
// structure).
func (r *Registry) AppendFacts(name, facts string) (StructureInfo, error) {
	return r.AppendFactsBatch(name, facts, "")
}

// AppendFactsBatch is AppendFacts with an optional client-supplied
// idempotency batch id.  A non-empty id makes the append safely
// retryable: a repeat of a batch id the structure has recently seen
// (including across a crash and recovery — the memo is rebuilt from the
// WAL) returns the original response without re-applying anything.
//
// With a store attached, the batch is logged — under the structure's
// write lock, before the in-memory apply, fsynced per the store's
// policy — so the log order equals the apply order and an acknowledged
// batch is as durable as the policy promises.
func (r *Registry) AppendFactsBatch(name, facts, batchID string) (StructureInfo, error) {
	info, err := r.appendBatch(name, facts, batchID)
	if err == nil {
		// Outside every lock: compaction takes the registry lock plus all
		// structure read locks.
		r.maybeCompact()
	}
	return info, err
}

func (r *Registry) appendBatch(name, facts, batchID string) (StructureInfo, error) {
	e, err := r.entry(name)
	if err != nil {
		return StructureInfo{}, err
	}
	// Parse outside the lock (against the immutable signature), merge
	// under it.
	delta, err := parser.ParseStructure(facts, e.b.Signature())
	if err != nil {
		return StructureInfo{}, err
	}
	st, done, err := r.beginWrite()
	if err != nil {
		return StructureInfo{}, err
	}
	defer done()
	e.mu.Lock()
	defer e.mu.Unlock()
	if batchID != "" {
		if info, ok := e.batches[batchID]; ok {
			return info, nil
		}
	}
	if st != nil {
		if err := st.LogAppend(name, batchID, e.b.Version(), facts); err != nil {
			return StructureInfo{}, fmt.Errorf("durability: %w", err)
		}
	}
	inserted, err := structure.Merge(e.b, delta)
	if err != nil {
		return StructureInfo{}, err
	}
	info := StructureInfo{
		Name:     name,
		Size:     e.b.Size(),
		Tuples:   e.b.NumTuples(),
		Version:  e.b.Version(),
		Inserted: inserted,
		BatchID:  batchID,
	}
	if batchID != "" {
		e.rememberBatch(batchID, info)
	}
	return info, nil
}

// beginWrite admits one logged write (append or create), returning the
// attached store (nil when running in-memory) and a completion callback
// the writer must call.  Close refuses new writers and then waits for
// admitted ones, so shutdown never cuts a write between its WAL record
// and its in-memory apply.
func (r *Registry) beginWrite() (*wal.Store, func(), error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil, nil, errClosed
	}
	r.appendWG.Add(1)
	return r.store, r.appendWG.Done, nil
}

// StructureInfo snapshots one structure's metadata.
func (r *Registry) StructureInfo(name string) (StructureInfo, error) {
	e, err := r.entry(name)
	if err != nil {
		return StructureInfo{}, err
	}
	return e.info(name), nil
}

// Structures lists every registered structure, sorted by name.
func (r *Registry) Structures() []StructureInfo {
	r.mu.RLock()
	names := make([]string, 0, len(r.structs))
	for n := range r.structs {
		names = append(names, n)
	}
	r.mu.RUnlock()
	sort.Strings(names)
	out := make([]StructureInfo, 0, len(names))
	for _, n := range names {
		if e, err := r.entry(n); err == nil {
			out = append(out, e.info(n))
		}
	}
	return out
}

// counterFor resolves (compiling and caching on first use) the counter
// of a query over a signature.  Counting-equivalent queries compiled
// here share engine plans through the fingerprint-keyed plan cache even
// when their source texts differ.
func (r *Registry) counterFor(src string, eng engine.Name, sig *structure.Signature) (*core.Counter, error) {
	key := queryKey{src: src, engine: eng, sig: sig.String()}
	r.mu.RLock()
	c := r.queries[key]
	r.mu.RUnlock()
	if c != nil {
		return c, nil
	}
	q, err := parser.ParseQuery(src)
	if err != nil {
		return nil, err
	}
	c, err = core.NewCounter(q, sig, count.PPEngine(eng))
	if err != nil {
		return nil, err
	}
	c.WithWorkers(r.workers)
	r.mu.Lock()
	if prev := r.queries[key]; prev != nil {
		c = prev // a concurrent compile won; keep its telemetry
	} else {
		if len(r.queries) >= r.queryCap {
			r.queries = make(map[queryKey]*core.Counter, r.queryCap)
		}
		r.queries[key] = c
	}
	r.mu.Unlock()
	return c, nil
}

// QueryStats snapshots every cached counter's telemetry, sorted by
// query text for stable output.
func (r *Registry) QueryStats() []QueryStats {
	type pair struct {
		key queryKey
		c   *core.Counter
	}
	r.mu.RLock()
	pairs := make([]pair, 0, len(r.queries))
	for k, c := range r.queries {
		pairs = append(pairs, pair{key: k, c: c})
	}
	r.mu.RUnlock()
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].key.src != pairs[j].key.src {
			return pairs[i].key.src < pairs[j].key.src
		}
		return pairs[i].key.engine < pairs[j].key.engine
	})
	out := make([]QueryStats, 0, len(pairs))
	for _, p := range pairs {
		out = append(out, queryStatsFrom(p.key.src, p.key.engine.String(), p.c.Stats()))
	}
	return out
}

// lockAll acquires the read locks of the named structures in a global
// order (sorted unique names), preventing lock-order inversion against
// writers, and returns the entries aligned with names plus an unlock
// function.
func (r *Registry) lockAll(names []string) (entries []*structEntry, unlock func(), err error) {
	uniq := make(map[string]*structEntry, len(names))
	order := make([]string, 0, len(names))
	for _, n := range names {
		if _, ok := uniq[n]; ok {
			continue
		}
		e, err := r.entry(n)
		if err != nil {
			return nil, nil, err
		}
		uniq[n] = e
		order = append(order, n)
	}
	sort.Strings(order)
	locked := make([]*structEntry, 0, len(order))
	for _, n := range order {
		e := uniq[n]
		e.mu.RLock()
		locked = append(locked, e)
	}
	entries = make([]*structEntry, len(names))
	for i, n := range names {
		entries[i] = uniq[n]
	}
	return entries, func() {
		for _, e := range locked {
			e.mu.RUnlock()
		}
	}, nil
}

// AttachStore installs an opened durability store and the state its
// boot recovery produced: recovered structures join the registry (a
// name collision with an already-registered structure is an error) and
// their batch results seed the idempotency memos.  Structures created
// before the attach (in-process preloads) are not yet in the store, so
// the attach ends with a compaction that snapshots everything.
// compactBytes sets the WAL size that triggers automatic compaction
// (0 = 64 MiB default, < 0 = never).  AttachStore may be called at most
// once, before the registry serves writes.
func (r *Registry) AttachStore(st *wal.Store, rep *wal.RecoverReport, compactBytes int64) error {
	if compactBytes == 0 {
		compactBytes = 64 << 20
	}
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return errClosed
	}
	if r.store != nil {
		r.mu.Unlock()
		return fmt.Errorf("a store is already attached")
	}
	preloaded := len(r.structs) > 0
	for _, rs := range rep.Structures {
		if _, dup := r.structs[rs.Name]; dup {
			r.mu.Unlock()
			return fmt.Errorf("recovered structure %q collides with a registered one", rs.Name)
		}
		e := &structEntry{b: rs.B}
		for _, br := range rs.Batches {
			e.rememberBatch(br.BatchID, StructureInfo{
				Name: rs.Name, Size: br.Size, Tuples: br.Tuples,
				Version: br.Version, Inserted: br.Inserted, BatchID: br.BatchID,
			})
		}
		r.structs[rs.Name] = e
	}
	r.store = st
	r.compactBytes = compactBytes
	r.recStructs = len(rep.Structures)
	r.recRecords = rep.Records
	r.recSnaps = rep.Snapshots
	r.recTruncated = rep.TruncatedAt >= 0
	r.mu.Unlock()
	if preloaded {
		return r.Compact()
	}
	return nil
}

// Compact quiesces every structure and runs the store's
// snapshot-then-truncate cycle: all current states become columnar
// snapshots and the WAL restarts empty.  Holding the registry lock plus
// every structure's read lock blocks creations and appends (which log
// to the WAL) for the duration — counts proceed — so no record can slip
// between the snapshots and the truncation.  No-op without a store;
// concurrent calls coalesce.
func (r *Registry) Compact() error {
	if !r.compacting.CompareAndSwap(false, true) {
		return nil
	}
	defer r.compacting.Store(false)
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.store == nil || r.closed {
		return nil
	}
	names := make([]string, 0, len(r.structs))
	for n := range r.structs {
		names = append(names, n)
	}
	sort.Strings(names)
	snaps := make(map[string]*structure.Structure, len(names))
	locked := make([]*structEntry, 0, len(names))
	for _, n := range names {
		e := r.structs[n]
		e.mu.RLock()
		locked = append(locked, e)
		snaps[n] = e.b
	}
	err := r.store.Compact(snaps)
	for _, e := range locked {
		e.mu.RUnlock()
	}
	return err
}

// maybeCompact triggers a compaction when the WAL has outgrown the
// configured threshold.  Failures are not fatal to the append that
// tripped the trigger: the WAL keeps the state recoverable, and the
// next trigger retries.
func (r *Registry) maybeCompact() {
	r.mu.RLock()
	st, thr := r.store, r.compactBytes
	r.mu.RUnlock()
	if st == nil || thr <= 0 || st.WALSize() < thr {
		return
	}
	_ = r.Compact()
}

// Close begins shutdown: new creates and appends are refused with a
// retryable error, in-flight logged writes drain (each completes both
// its WAL record and its in-memory apply), and then the store flushes
// and closes.  Idempotent; reads keep working against the frozen
// in-memory state.
func (r *Registry) Close() error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil
	}
	r.closed = true
	st := r.store
	r.mu.Unlock()
	r.appendWG.Wait()
	if st != nil {
		return st.Close()
	}
	return nil
}

// DurabilityStats snapshots the durability layer for /stats.
func (r *Registry) DurabilityStats() DurabilityStats {
	r.mu.RLock()
	st := r.store
	ds := DurabilityStats{
		RecoveredStructures: r.recStructs,
		RecoveredRecords:    r.recRecords,
		RecoveredSnapshots:  r.recSnaps,
		TruncatedTail:       r.recTruncated,
	}
	r.mu.RUnlock()
	if st == nil {
		return ds
	}
	ds.Enabled = true
	s := st.Stats()
	ds.Fsync = s.Fsync
	ds.WALBytes = s.WALBytes
	ds.Appends = s.Appends
	ds.Creates = s.Creates
	ds.Compactions = s.Compactions
	ds.Syncs = s.Syncs
	return ds
}

// parseEngine resolves the wire engine name ("" = fpt).
func parseEngine(s string) (engine.Name, error) {
	if strings.TrimSpace(s) == "" {
		return engine.FPT, nil
	}
	return engine.ParseName(s)
}
