package serve

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/count"
	"repro/internal/engine"
	"repro/internal/parser"
	"repro/internal/structure"
)

// errDuplicate marks a CreateStructure name collision (mapped to 409).
var errDuplicate = errors.New("already exists")

// structEntry is one registered structure plus its mutation lock.
//
// The columnar structure store is safe for any number of concurrent
// readers but mutation (AddFact/AddTuple bumping columns, posting
// lists, and the version counter) must be exclusive, so counts hold the
// read side and appends the write side.  This also makes every append
// batch atomic with respect to counting: a count executes against a
// version boundary, never half a batch, and the engine's per-structure
// sessions invalidate on the version bump the moment the write lock is
// released.
type structEntry struct {
	mu sync.RWMutex
	b  *structure.Structure
}

// info snapshots the structure's metadata under the read lock.
func (e *structEntry) info(name string) StructureInfo {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return StructureInfo{Name: name, Size: e.b.Size(), Tuples: e.b.NumTuples(), Version: e.b.Version()}
}

// queryKey identifies a cached counter: the query source text, the
// engine, and the signature it was compiled against (the same text over
// different vocabularies compiles to different counters).
type queryKey struct {
	src    string
	engine engine.Name
	sig    string
}

// Registry holds the server's named structures and its compiled-query
// cache.  Counters are cached per (query text, engine, signature);
// textually different but counting-equivalent queries still share
// compiled plans underneath through the engine's fingerprint-keyed plan
// cache, so the counter cache only saves front-end (parse + Theorem 3.1)
// work.
type Registry struct {
	mu      sync.RWMutex
	structs map[string]*structEntry
	queries map[queryKey]*core.Counter
	// subs holds the registered subscriptions (maintained counts; see
	// subscription.go), keyed by id; subSeq feeds id allocation.
	subs   map[string]*subEntry
	subSeq uint64

	// queryCap bounds the counter cache; reaching it wipes the cache
	// wholesale (a memo, not a store — entries rebuild on demand).
	queryCap int
	// workers is the budget handed to every new counter (0 = process
	// default).
	workers int
}

// NewRegistry returns an empty registry.  queryCap ≤ 0 selects the
// default counter-cache capacity.
func NewRegistry(queryCap, workers int) *Registry {
	if queryCap <= 0 {
		queryCap = 256
	}
	return &Registry{
		structs:  make(map[string]*structEntry),
		queries:  make(map[queryKey]*core.Counter),
		subs:     make(map[string]*subEntry),
		queryCap: queryCap,
		workers:  workers,
	}
}

// CreateStructure parses and registers a named structure.  The name must
// be unused; facts may be empty only if a signature is given.
func (r *Registry) CreateStructure(name, facts string, spec []RelSpec) (StructureInfo, error) {
	if name == "" {
		return StructureInfo{}, fmt.Errorf("structure name must not be empty")
	}
	var sig *structure.Signature
	if len(spec) > 0 {
		rels := make([]structure.RelSym, len(spec))
		for i, rs := range spec {
			rels[i] = structure.RelSym{Name: rs.Name, Arity: rs.Arity}
		}
		var err error
		sig, err = structure.NewSignature(rels...)
		if err != nil {
			return StructureInfo{}, err
		}
	}
	b, err := parser.ParseStructure(facts, sig)
	if err != nil {
		return StructureInfo{}, err
	}
	e := &structEntry{b: b}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.structs[name]; dup {
		return StructureInfo{}, fmt.Errorf("structure %q %w", name, errDuplicate)
	}
	r.structs[name] = e
	return StructureInfo{Name: name, Size: b.Size(), Tuples: b.NumTuples(), Version: b.Version()}, nil
}

// entry resolves a named structure.
func (r *Registry) entry(name string) (*structEntry, error) {
	r.mu.RLock()
	e := r.structs[name]
	r.mu.RUnlock()
	if e == nil {
		return nil, fmt.Errorf("unknown structure %q", name)
	}
	return e, nil
}

// AppendFacts parses facts over the structure's signature and merges
// them in under the write lock: new element names extend the universe,
// duplicate tuples are ignored.  The whole batch lands in one critical
// section, so concurrent counts see it atomically; the returned info's
// Inserted reports how many tuples the batch actually added
// (dedup-aware), and the version bumps only when that delta is
// non-empty — a fully-duplicate batch leaves cached sessions and
// memoized counts valid.  An effective append invalidates sessions via
// the version bump; the next count against a warm, delta-maintainable
// memo is then advanced by the appended rows rather than recomputed
// (the columnar store's posting lists are maintained incrementally too,
// so ingest cost is proportional to the appended facts, not to the
// structure).
func (r *Registry) AppendFacts(name, facts string) (StructureInfo, error) {
	e, err := r.entry(name)
	if err != nil {
		return StructureInfo{}, err
	}
	// Parse outside the lock (against the immutable signature), merge
	// under it.
	e.mu.RLock()
	sig := e.b.Signature()
	e.mu.RUnlock()
	delta, err := parser.ParseStructure(facts, sig)
	if err != nil {
		return StructureInfo{}, err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	inserted, err := mergeInto(e.b, delta)
	if err != nil {
		return StructureInfo{}, err
	}
	return StructureInfo{
		Name:     name,
		Size:     e.b.Size(),
		Tuples:   e.b.NumTuples(),
		Version:  e.b.Version(),
		Inserted: inserted,
	}, nil
}

// mergeInto adds every element and tuple of delta into dst (by element
// name; dst's signature must cover delta's relations) and returns the
// number of tuples actually inserted — duplicates, whether inside the
// batch or against dst, add nothing.
func mergeInto(dst, delta *structure.Structure) (int, error) {
	for _, name := range delta.ElemNames() {
		dst.EnsureElem(name)
	}
	inserted := 0
	for _, rel := range delta.Signature().Rels() {
		before := dst.Rel(rel.Name).Len()
		names := make([]string, rel.Arity)
		var err error
		delta.ForEachTuple(rel.Name, func(t []int) bool {
			for i, v := range t {
				names[i] = delta.ElemName(v)
			}
			if e := dst.AddFact(rel.Name, names...); e != nil {
				err = e
				return false
			}
			return true
		})
		if err != nil {
			return inserted, err
		}
		inserted += dst.Rel(rel.Name).Len() - before
	}
	return inserted, nil
}

// StructureInfo snapshots one structure's metadata.
func (r *Registry) StructureInfo(name string) (StructureInfo, error) {
	e, err := r.entry(name)
	if err != nil {
		return StructureInfo{}, err
	}
	return e.info(name), nil
}

// Structures lists every registered structure, sorted by name.
func (r *Registry) Structures() []StructureInfo {
	r.mu.RLock()
	names := make([]string, 0, len(r.structs))
	for n := range r.structs {
		names = append(names, n)
	}
	r.mu.RUnlock()
	sort.Strings(names)
	out := make([]StructureInfo, 0, len(names))
	for _, n := range names {
		if e, err := r.entry(n); err == nil {
			out = append(out, e.info(n))
		}
	}
	return out
}

// counterFor resolves (compiling and caching on first use) the counter
// of a query over a signature.  Counting-equivalent queries compiled
// here share engine plans through the fingerprint-keyed plan cache even
// when their source texts differ.
func (r *Registry) counterFor(src string, eng engine.Name, sig *structure.Signature) (*core.Counter, error) {
	key := queryKey{src: src, engine: eng, sig: sig.String()}
	r.mu.RLock()
	c := r.queries[key]
	r.mu.RUnlock()
	if c != nil {
		return c, nil
	}
	q, err := parser.ParseQuery(src)
	if err != nil {
		return nil, err
	}
	c, err = core.NewCounter(q, sig, count.PPEngine(eng))
	if err != nil {
		return nil, err
	}
	c.WithWorkers(r.workers)
	r.mu.Lock()
	if prev := r.queries[key]; prev != nil {
		c = prev // a concurrent compile won; keep its telemetry
	} else {
		if len(r.queries) >= r.queryCap {
			r.queries = make(map[queryKey]*core.Counter, r.queryCap)
		}
		r.queries[key] = c
	}
	r.mu.Unlock()
	return c, nil
}

// QueryStats snapshots every cached counter's telemetry, sorted by
// query text for stable output.
func (r *Registry) QueryStats() []QueryStats {
	type pair struct {
		key queryKey
		c   *core.Counter
	}
	r.mu.RLock()
	pairs := make([]pair, 0, len(r.queries))
	for k, c := range r.queries {
		pairs = append(pairs, pair{key: k, c: c})
	}
	r.mu.RUnlock()
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].key.src != pairs[j].key.src {
			return pairs[i].key.src < pairs[j].key.src
		}
		return pairs[i].key.engine < pairs[j].key.engine
	})
	out := make([]QueryStats, 0, len(pairs))
	for _, p := range pairs {
		out = append(out, queryStatsFrom(p.key.src, p.key.engine.String(), p.c.Stats()))
	}
	return out
}

// lockAll acquires the read locks of the named structures in a global
// order (sorted unique names), preventing lock-order inversion against
// writers, and returns the entries aligned with names plus an unlock
// function.
func (r *Registry) lockAll(names []string) (entries []*structEntry, unlock func(), err error) {
	uniq := make(map[string]*structEntry, len(names))
	order := make([]string, 0, len(names))
	for _, n := range names {
		if _, ok := uniq[n]; ok {
			continue
		}
		e, err := r.entry(n)
		if err != nil {
			return nil, nil, err
		}
		uniq[n] = e
		order = append(order, n)
	}
	sort.Strings(order)
	locked := make([]*structEntry, 0, len(order))
	for _, n := range order {
		e := uniq[n]
		e.mu.RLock()
		locked = append(locked, e)
	}
	entries = make([]*structEntry, len(names))
	for i, n := range names {
		entries[i] = uniq[n]
	}
	return entries, func() {
		for _, e := range locked {
			e.mu.RUnlock()
		}
	}, nil
}

// parseEngine resolves the wire engine name ("" = fpt).
func parseEngine(s string) (engine.Name, error) {
	if strings.TrimSpace(s) == "" {
		return engine.FPT, nil
	}
	return engine.ParseName(s)
}
