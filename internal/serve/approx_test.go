package serve

import (
	"context"
	"errors"
	"math/big"
	"testing"

	"repro/internal/workload"
)

// erFacts renders an ER graph as a fact file for ingestion.
func erFacts(t *testing.T, n int, p float64, seed int64) string {
	t.Helper()
	return factsText(t, workload.GraphStructure(workload.ER(n, p, seed)))
}

// TestCountApproxContract checks the mode=approx wire contract end to
// end through the typed client: the estimate round-trips with its error
// bound, case, confidence and sample count, and repeated requests with
// the same seed are bit-identical.
func TestCountApproxContract(t *testing.T) {
	_, cl := newTestServer(t, Config{})
	ctx := context.Background()
	if _, err := cl.CreateStructure(ctx, "g", erFacts(t, 40, 0.25, 3), nil); err != nil {
		t.Fatal(err)
	}

	exact, _, err := cl.Count(ctx, triangleQuery, "g")
	if err != nil {
		t.Fatal(err)
	}
	if exact.Sign() == 0 {
		t.Fatal("degenerate instance: exact count is zero")
	}

	est, resp, err := cl.CountApprox(ctx, triangleQuery, "g", 0.1, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Estimate == "" || resp.Estimate != resp.Count {
		t.Fatalf("estimate %q must be set and mirror count %q for mode-unaware readers", resp.Estimate, resp.Count)
	}
	if resp.Case != "sharp-clique" && resp.Case != "clique" {
		t.Fatalf("triangle query must report a hard case, got %q", resp.Case)
	}
	if resp.RelError <= 0 || resp.RelError > 0.2 {
		t.Fatalf("rel_error = %v, want (0, 0.2]", resp.RelError)
	}
	if resp.Confidence != 0.95 {
		t.Fatalf("confidence = %v, want 0.95 for δ=0.05", resp.Confidence)
	}
	if resp.Samples == 0 || resp.Exact {
		t.Fatalf("hard query must sample: samples=%d exact=%v", resp.Samples, resp.Exact)
	}
	// Single-trial sanity: within 3ε of the exact count.
	ef, _ := new(big.Float).SetInt(exact).Float64()
	gf, _ := new(big.Float).SetInt(est).Float64()
	if rel := (gf - ef) / ef; rel > 0.3 || rel < -0.3 {
		t.Fatalf("estimate %v too far from exact %v", est, exact)
	}

	// Seeded reproducibility across the wire.
	req := CountRequest{Query: triangleQuery, Structure: "g", Mode: "approx", Seed: 42}
	e1, _, err := cl.CountWith(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	e2, _, err := cl.CountWith(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if e1.Cmp(e2) != 0 {
		t.Fatalf("same seed over the wire diverged: %v vs %v", e1, e2)
	}
}

// TestCountApproxFPTExact checks that an FPT query under mode=approx
// takes the exact path: the response carries the exact count, case fpt,
// zero rel_error and no samples.
func TestCountApproxFPTExact(t *testing.T) {
	_, cl := newTestServer(t, Config{})
	ctx := context.Background()
	if _, err := cl.CreateStructure(ctx, "g", erFacts(t, 25, 0.3, 1), nil); err != nil {
		t.Fatal(err)
	}
	const pathQuery = "p(x,y,z) := E(x,y) & E(y,z)"
	exact, _, err := cl.Count(ctx, pathQuery, "g")
	if err != nil {
		t.Fatal(err)
	}
	est, resp, err := cl.CountApprox(ctx, pathQuery, "g", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if est.Cmp(exact) != 0 {
		t.Fatalf("FPT approx %v != exact %v", est, exact)
	}
	if resp.Case != "fpt" || !resp.Exact || resp.RelError != 0 || resp.Samples != 0 || resp.Confidence != 1 {
		t.Fatalf("FPT response carries sampling telemetry: %+v", resp)
	}
}

// TestCountBatchApproxArrays checks the batch contract: per-structure
// estimate/rel_error/confidence/case/samples arrays aligned with counts.
func TestCountBatchApproxArrays(t *testing.T) {
	_, cl := newTestServer(t, Config{})
	ctx := context.Background()
	names := []string{"g1", "g2", "g3"}
	for i, name := range names {
		if _, err := cl.CreateStructure(ctx, name, erFacts(t, 30+3*i, 0.25, int64(i+1)), nil); err != nil {
			t.Fatal(err)
		}
	}
	ests, resp, err := cl.CountBatchWith(ctx, CountBatchRequest{
		Query: triangleQuery, Structures: names, Mode: "approx", Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(ests) != len(names) {
		t.Fatalf("got %d results for %d structures", len(ests), len(names))
	}
	if len(resp.Estimates) != len(names) || len(resp.RelErrors) != len(names) ||
		len(resp.Confidences) != len(names) || len(resp.Cases) != len(names) ||
		len(resp.Samples) != len(names) {
		t.Fatalf("approx arrays misaligned: %d/%d/%d/%d/%d for %d structures",
			len(resp.Estimates), len(resp.RelErrors), len(resp.Confidences),
			len(resp.Cases), len(resp.Samples), len(names))
	}
	for i := range names {
		if resp.Estimates[i] != resp.Counts[i] {
			t.Fatalf("structure %d: estimate %q != count %q", i, resp.Estimates[i], resp.Counts[i])
		}
		if resp.Cases[i] != "sharp-clique" && resp.Cases[i] != "clique" {
			t.Fatalf("structure %d: case %q, want a hard case", i, resp.Cases[i])
		}
		if resp.Samples[i] == 0 {
			t.Fatalf("structure %d: no samples spent", i)
		}

		// Cross-check against the exact count per structure.
		exact, _, err := cl.Count(ctx, triangleQuery, names[i])
		if err != nil {
			t.Fatal(err)
		}
		ef, _ := new(big.Float).SetInt(exact).Float64()
		gf, _ := new(big.Float).SetInt(ests[i]).Float64()
		if ef == 0 {
			continue
		}
		if rel := (gf - ef) / ef; rel > 0.4 || rel < -0.4 {
			t.Fatalf("structure %d: estimate %v too far from exact %v", i, ests[i], exact)
		}
	}
}

// TestHardExactAdmission checks the admission rule: with HardExactLimit
// set, exact execution of a hard query on an oversized structure is a
// typed 422 carrying the trichotomy case, while approx mode and FPT
// queries stay admitted.
func TestHardExactAdmission(t *testing.T) {
	_, cl := newTestServer(t, Config{HardExactLimit: 10})
	ctx := context.Background()
	if _, err := cl.CreateStructure(ctx, "g", erFacts(t, 40, 0.25, 3), nil); err != nil {
		t.Fatal(err)
	}

	_, _, err := cl.Count(ctx, triangleQuery, "g")
	if err == nil {
		t.Fatal("exact hard count above the limit was admitted")
	}
	var ae *APIError
	if !errors.As(err, &ae) {
		t.Fatalf("want *APIError, got %T: %v", err, err)
	}
	if ae.Status != 422 {
		t.Fatalf("status = %d, want 422", ae.Status)
	}
	if ae.Case != "sharp-clique" && ae.Case != "clique" {
		t.Fatalf("rejection case = %q, want a hard case", ae.Case)
	}

	// The same query in approx mode is admitted.
	if _, _, err := cl.CountApprox(ctx, triangleQuery, "g", 0.1, 0.05); err != nil {
		t.Fatalf("approx mode rejected: %v", err)
	}
	// An FPT query is admitted exactly, regardless of structure size.
	if _, _, err := cl.Count(ctx, "p(x,y) := E(x,y)", "g"); err != nil {
		t.Fatalf("FPT exact count rejected: %v", err)
	}
	// Batch admission rejects with the same typed error.
	_, _, err = cl.CountBatch(ctx, triangleQuery, []string{"g"})
	if !errors.As(err, &ae) || ae.Status != 422 || ae.Case == "" {
		t.Fatalf("batch admission: want typed 422 with case, got %v", err)
	}
}

// TestCountModeValidation checks that an unknown mode is a 400.
func TestCountModeValidation(t *testing.T) {
	_, cl := newTestServer(t, Config{})
	ctx := context.Background()
	if _, err := cl.CreateStructure(ctx, "g", "E(a,b).", nil); err != nil {
		t.Fatal(err)
	}
	_, _, err := cl.CountWith(ctx, CountRequest{Query: "p(x,y) := E(x,y)", Structure: "g", Mode: "bogus"})
	var ae *APIError
	if !errors.As(err, &ae) || ae.Status != 400 {
		t.Fatalf("want 400 for unknown mode, got %v", err)
	}
}
