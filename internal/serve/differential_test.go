package serve

import (
	"context"
	"fmt"
	"math/big"
	"sync"
	"testing"

	"repro/internal/engine"
	"repro/internal/parser"
)

// TestAppendUnderConcurrentCountDifferential interleaves fact appends
// with concurrent counts through the registry's locking discipline and
// then replays the append history sequentially: every count observed at
// version v must equal the count of a freshly built structure holding
// exactly the facts ingested up to v.  This pins the two guarantees the
// serving layer gives mutating structures: append batches are atomic
// with respect to counting (no count sees half a batch), and the
// version bump correctly invalidates cached sessions (no count is
// answered from a stale memo).  Run under -race this is also the
// regression test for structure append-under-concurrent-count safety.
func TestAppendUnderConcurrentCountDifferential(t *testing.T) {
	const query = "tri(x,y,z) := E(x,y) & E(y,z) & E(z,x)"
	initial := "universe v0, v1, v2, v3, v4, v5, v6, v7.\nE(v0,v1). E(v1,v2). E(v2,v0).\n"

	reg := NewRegistry(0, 1)
	if _, err := reg.CreateStructure("g", initial, nil); err != nil {
		t.Fatal(err)
	}
	e, err := reg.entry("g")
	if err != nil {
		t.Fatal(err)
	}
	counter, err := reg.counterFor(query, engine.FPT, e.b.Signature())
	if err != nil {
		t.Fatal(err)
	}

	// Append batches: each closes one new directed triangle through a
	// fresh vertex, so the count strictly grows and a half-applied
	// batch would produce a count matching no checkpoint.
	const nAppends = 32
	batches := make([]string, nAppends)
	for i := range batches {
		a, b := i%8, (i+1)%8
		w := fmt.Sprintf("w%d", i)
		batches[i] = fmt.Sprintf("E(v%d,%s). E(%s,v%d).", b, w, w, a)
		if (a+1)%8 != b {
			// Ensure the closing edge exists for non-adjacent pairs too.
			batches[i] += fmt.Sprintf(" E(v%d,v%d).", a, b)
		}
	}

	type checkpoint struct {
		version uint64
		prefix  int // batches applied
	}
	type observation struct {
		version uint64
		count   *big.Int
	}

	var (
		mu          sync.Mutex
		checkpoints = []checkpoint{{version: e.b.Version(), prefix: 0}}
		obs         []observation
	)

	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // writer: one atomic batch at a time
		defer wg.Done()
		for i, facts := range batches {
			info, err := reg.AppendFacts("g", facts)
			if err != nil {
				t.Error(err)
				return
			}
			mu.Lock()
			checkpoints = append(checkpoints, checkpoint{version: info.Version, prefix: i + 1})
			mu.Unlock()
		}
	}()
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 24; i++ {
				e.mu.RLock()
				version := e.b.Version()
				v, err := counter.CountCtx(context.Background(), e.b)
				e.mu.RUnlock()
				if err != nil {
					t.Error(err)
					return
				}
				mu.Lock()
				obs = append(obs, observation{version: version, count: v})
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	// Sequential replay: rebuild each checkpoint's structure from
	// scratch and count with a fresh counter.
	prefixOf := make(map[uint64]int, len(checkpoints))
	for _, cp := range checkpoints {
		prefixOf[cp.version] = cp.prefix
	}
	replayCount := func(prefix int) *big.Int {
		src := initial
		for i := 0; i < prefix; i++ {
			src += batches[i] + "\n"
		}
		b, err := parser.ParseStructure(src, nil)
		if err != nil {
			t.Fatal(err)
		}
		fresh, err := reg.counterFor(query, engine.FPT, b.Signature())
		if err != nil {
			t.Fatal(err)
		}
		v, err := fresh.Count(b)
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	want := make(map[int]*big.Int, len(checkpoints))
	seen := 0
	for _, o := range obs {
		prefix, ok := prefixOf[o.version]
		if !ok {
			t.Fatalf("count observed version %d, which is no append boundary — a torn batch", o.version)
		}
		w, ok := want[prefix]
		if !ok {
			w = replayCount(prefix)
			want[prefix] = w
		}
		if o.count.Cmp(w) != 0 {
			t.Fatalf("count at version %d (prefix %d) = %v, sequential replay = %v",
				o.version, prefix, o.count, w)
		}
		seen++
	}
	if seen != 72 {
		t.Fatalf("recorded %d observations, want 72", seen)
	}
}
