package serve

import (
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/term"
)

// The wire types of the epserved HTTP/JSON API, shared by the handlers
// and the Client.  Counts travel as decimal strings: answer counts are
// big integers (|B|^|S| grows past every fixed-width type) and JSON
// numbers are lossy beyond 2^53.

// RelSpec names one relation of a signature: {"name": "E", "arity": 2}.
type RelSpec struct {
	Name  string `json:"name"`
	Arity int    `json:"arity"`
}

// CreateStructureRequest ingests a named structure.  Facts is the fact
// syntax accepted by epcq.ParseStructure (optionally with a universe
// declaration); Signature is optional — when absent, relation arities
// are inferred from the facts.
type CreateStructureRequest struct {
	Name      string    `json:"name"`
	Facts     string    `json:"facts"`
	Signature []RelSpec `json:"signature,omitempty"`
	// Partitions > 1 asks a cluster coordinator to split the
	// structure's domain into that many shard-resident parts along
	// connected components of its Gaifman graph; counts against the
	// logical structure are then computed per part and recombined
	// exactly (see internal/cluster).  A plain single-node server
	// rejects a partitioned create — partitioning only means something
	// behind a coordinator.
	Partitions int `json:"partitions,omitempty"`
}

// AppendFactsRequest appends facts to an existing structure.  New
// element names extend the universe; duplicate tuples are ignored.  The
// append is atomic with respect to concurrent counts: every count
// observes either the whole batch or none of it.
type AppendFactsRequest struct {
	Facts string `json:"facts"`
	// BatchID is an optional client-chosen idempotency id for the batch.
	// A non-empty id makes the append safely retryable: if the server
	// has recently applied a batch with the same id to this structure —
	// including before a crash, the memo survives recovery — it returns
	// the original response instead of re-applying, and echoes the id.
	BatchID string `json:"batch_id,omitempty"`
}

// StructureInfo describes one registered structure.  Version increases
// only with every *effective* mutation — a fully-duplicate append batch
// inserts nothing and leaves the version (and therefore every cached
// session and memoized count) untouched.  Counts report the version
// they executed against, so clients can correlate answers with ingest
// checkpoints.
type StructureInfo struct {
	Name    string `json:"name"`
	Size    int    `json:"size"`    // universe size
	Tuples  int    `json:"tuples"`  // total tuples across relations
	Version uint64 `json:"version"` // effective-mutation counter
	// Inserted is the number of tuples the append producing this
	// response actually inserted (dedup-aware: duplicates in the batch
	// or already present do not count).  Zero outside append responses.
	Inserted int `json:"inserted,omitempty"`
	// BatchID echoes the append request's idempotency id (append
	// responses only; empty when the client sent none).
	BatchID string `json:"batch_id,omitempty"`
}

// StructuresResponse lists the registry.
type StructuresResponse struct {
	Structures []StructureInfo `json:"structures"`
}

// CountRequest counts a query's answers on one named structure.
type CountRequest struct {
	// Query is the ep-query source text, e.g.
	// "tri(x,y,z) := E(x,y) & E(y,z) & E(z,x)".
	Query string `json:"query"`
	// Structure is the registered structure's name.
	Structure string `json:"structure"`
	// Engine selects the counting engine ("fpt" when empty; also
	// "fpt-nocore", "projection", "brute", "auto").
	Engine string `json:"engine,omitempty"`
	// TimeoutMillis lowers the server's per-request deadline for this
	// request (0 = server default; values above the server default are
	// clamped to it).
	TimeoutMillis int64 `json:"timeout_ms,omitempty"`
	// Mode selects the execution mode: "exact" (default) or "approx".
	// Approx mode routes each term of the query through the trichotomy
	// classifier — FPT terms run the exact executor, hard terms the
	// sampling estimator — and the response carries estimate, rel_error,
	// confidence, and case alongside count.
	Mode string `json:"mode,omitempty"`
	// Epsilon / Delta are the approx-mode (ε, δ) target: relative error
	// ε with probability ≥ 1-δ (defaults 0.1 / 0.05).  Ignored in exact
	// mode.
	Epsilon float64 `json:"epsilon,omitempty"`
	Delta   float64 `json:"delta,omitempty"`
	// MaxSamples caps the draws each sampled component may spend
	// (0 = engine default).  Ignored in exact mode.
	MaxSamples int `json:"max_samples,omitempty"`
	// Seed seeds the approx-mode RNG; the same seed yields the same
	// estimate (0 = engine default).  Ignored in exact mode.
	Seed int64 `json:"seed,omitempty"`
}

// CountResponse is one count: the decimal answer count and the
// structure version it was computed against.  Approx-mode responses
// also populate the estimate block (Count then equals Estimate, so
// mode-unaware readers keep working).
type CountResponse struct {
	Count     string `json:"count"`
	Version   uint64 `json:"version"`
	ElapsedUS int64  `json:"elapsed_us"`
	// Estimate is the approximate count as a decimal string (approx
	// mode only; equal to Count).
	Estimate string `json:"estimate,omitempty"`
	// RelError is the achieved relative half-width of the confidence
	// interval; Confidence the probability the true count lies within
	// Estimate·(1±RelError).
	RelError   float64 `json:"rel_error,omitempty"`
	Confidence float64 `json:"confidence,omitempty"`
	// Case is the query's hardest trichotomy case ("fpt", "clique",
	// "sharp-clique") — the signal that drove the routing.
	Case string `json:"case,omitempty"`
	// Samples is the total sampling budget spent; Exact reports that
	// every term resolved exactly (RelError 0, Confidence 1).
	Samples int  `json:"samples,omitempty"`
	Exact   bool `json:"exact,omitempty"`
}

// CountBatchRequest counts one query on many named structures in one
// request, fanned out on the server's bounded worker pool.
type CountBatchRequest struct {
	Query         string   `json:"query"`
	Structures    []string `json:"structures"`
	Engine        string   `json:"engine,omitempty"`
	TimeoutMillis int64    `json:"timeout_ms,omitempty"`
	// Mode / Epsilon / Delta / MaxSamples / Seed are the approx-mode
	// knobs, with the same semantics as on CountRequest, applied to
	// every structure of the batch.
	Mode       string  `json:"mode,omitempty"`
	Epsilon    float64 `json:"epsilon,omitempty"`
	Delta      float64 `json:"delta,omitempty"`
	MaxSamples int     `json:"max_samples,omitempty"`
	Seed       int64   `json:"seed,omitempty"`
}

// CountBatchResponse carries the per-structure counts in request order,
// with the versions they were computed against.  Approx-mode responses
// also carry the per-structure estimate blocks (aligned with Counts;
// Counts then equals Estimates).
type CountBatchResponse struct {
	Counts    []string `json:"counts"`
	Versions  []uint64 `json:"versions"`
	ElapsedUS int64    `json:"elapsed_us"`
	Estimates []string `json:"estimates,omitempty"`
	// RelErrors / Confidences / Cases / Samples align with Counts
	// (approx mode only); see CountResponse for the field semantics.
	RelErrors   []float64 `json:"rel_errors,omitempty"`
	Confidences []float64 `json:"confidences,omitempty"`
	Cases       []string  `json:"cases,omitempty"`
	Samples     []int     `json:"samples,omitempty"`
}

// SubscribeRequest registers a maintained count: a query bound to a
// registered structure.  Registration is cheap (parse + compile, no
// count); the maintained count materializes lazily on the first
// subscription read and is then advanced across append batches by the
// engine's incremental delta path instead of being recomputed.
type SubscribeRequest struct {
	Query     string `json:"query"`
	Structure string `json:"structure"`
	// Engine selects the counting engine ("fpt" when empty).
	Engine string `json:"engine,omitempty"`
}

// SubscriptionInfo describes one subscription.  Count (a decimal
// string) and Version are set on subscription reads: Count is the
// maintained count at Version, the structure's version at read time.
// On registration and in listings they reflect the last maintained
// state (absent before the first read).
type SubscriptionInfo struct {
	ID        string `json:"id"`
	Query     string `json:"query"`
	Structure string `json:"structure"`
	Engine    string `json:"engine"`
	Count     string `json:"count,omitempty"`
	Version   uint64 `json:"version,omitempty"`
	ElapsedUS int64  `json:"elapsed_us,omitempty"`
}

// SubscriptionsResponse lists the registered subscriptions.
type SubscriptionsResponse struct {
	Subscriptions []SubscriptionInfo `json:"subscriptions"`
}

// QueryStats is one cached query's compile- and run-time telemetry.
type QueryStats struct {
	// Query is the source text the counter was registered under.
	Query string `json:"query"`
	// Engine is the counting engine the counter compiles to.
	Engine string `json:"engine"`
	// Pool is the canonical term pool's interning summary.
	Pool term.Stats `json:"pool"`
	// Plans / SharedPlans: engine plans backing the counter, and how
	// many came out of the process-wide fingerprint-keyed plan cache
	// (compiled earlier by a counting-equivalent query).
	Plans       int `json:"plans"`
	SharedPlans int `json:"shared_plans"`
	// CountCacheHits/Misses are the per-session count-memo outcomes.
	CountCacheHits   uint64 `json:"count_cache_hits"`
	CountCacheMisses uint64 `json:"count_cache_misses"`
	// Case is the counter's hardest trichotomy case under the route
	// bounds; TermsHard the number of approx-routed terms;
	// ClassifyAnalyses/ClassifyHits the construction-time
	// classification-memo outcomes; ApproxCounts the approximate term
	// evaluations served so far.
	Case             string `json:"case,omitempty"`
	TermsHard        int    `json:"terms_hard,omitempty"`
	ClassifyAnalyses int    `json:"classify_analyses,omitempty"`
	ClassifyHits     int    `json:"classify_hits,omitempty"`
	ApproxCounts     uint64 `json:"approx_counts,omitempty"`
}

// AdmissionStats counts the admission controller's decisions since
// server start.
type AdmissionStats struct {
	// InFlight is the number of counting requests currently executing.
	InFlight int64 `json:"in_flight"`
	// MaxInFlight is the admission cap.
	MaxInFlight int `json:"max_in_flight"`
	// Admitted / Rejected: counting requests let through / turned away
	// with 503 because the cap was reached.
	Admitted uint64 `json:"admitted"`
	Rejected uint64 `json:"rejected"`
	// Deadline counts requests that hit their per-request deadline.
	Deadline uint64 `json:"deadline"`
}

// DurabilityStats is the /stats durability section: whether a store is
// attached, its fsync policy and WAL size, operation counters, and what
// boot recovery consumed.
type DurabilityStats struct {
	// Enabled reports whether the server runs with a durability store
	// (-data-dir); everything below is zero when it does not.
	Enabled bool `json:"enabled"`
	// Fsync is the active WAL sync policy ("always", "batch", "never").
	Fsync string `json:"fsync,omitempty"`
	// WALBytes is the current write-ahead log size.
	WALBytes int64 `json:"wal_bytes,omitempty"`
	// Appends / Creates count records logged since start; Compactions
	// counts snapshot-then-truncate cycles; Syncs counts WAL fsyncs.
	Appends     uint64 `json:"appends,omitempty"`
	Creates     uint64 `json:"creates,omitempty"`
	Compactions uint64 `json:"compactions,omitempty"`
	Syncs       uint64 `json:"syncs,omitempty"`
	// RecoveredStructures / RecoveredSnapshots / RecoveredRecords say
	// what boot recovery rebuilt; TruncatedTail reports whether a torn
	// or corrupt WAL suffix was cut during that recovery.
	RecoveredStructures int  `json:"recovered_structures,omitempty"`
	RecoveredSnapshots  int  `json:"recovered_snapshots,omitempty"`
	RecoveredRecords    int  `json:"recovered_records,omitempty"`
	TruncatedTail       bool `json:"truncated_tail,omitempty"`
}

// HealthzResponse is the /healthz body.  State is "recovering" while
// boot recovery replays the store (served 503 — the listener is not yet
// accepting then, but in-process handlers can observe it), "ready" when
// serving.
type HealthzResponse struct {
	OK    bool   `json:"ok"`
	State string `json:"state"`
}

// ShardStats is one shard's contribution to an aggregated cluster
// /stats view: the shard's address, whether its health check answered,
// and the headline counters of its own StatsResponse.
type ShardStats struct {
	// Node is the shard's base URL.
	Node string `json:"node"`
	// Healthy reports whether the shard answered the stats fan-out.
	Healthy bool `json:"healthy"`
	// Structures is the number of structures registered on the shard
	// (replicas and partition parts count once per holding shard).
	Structures int `json:"structures"`
	// Admission is the shard's admission telemetry.
	Admission AdmissionStats `json:"admission"`
	// CountCacheHits/Misses sum the shard's per-query count-memo
	// outcomes.
	CountCacheHits   uint64 `json:"count_cache_hits"`
	CountCacheMisses uint64 `json:"count_cache_misses"`
	// Delta is the shard's incremental-maintenance counters.
	Delta engine.DeltaCounters `json:"delta"`
	// Subscriptions is the shard's registered-subscription count.
	Subscriptions int `json:"subscriptions"`
}

// ClusterStats is the coordinator's addition to an aggregated /stats
// response: the per-shard breakdown plus router-level telemetry.  The
// surrounding StatsResponse fields hold the cluster-wide merge (summed
// admission counters, merged query stats, summed delta counters), so a
// dashboard written against a single node reads the same shape.
type ClusterStats struct {
	// Shards is the per-shard breakdown, in configuration order.
	Shards []ShardStats `json:"shards"`
	// Replicas is the configured replication factor.
	Replicas int `json:"replicas"`
	// VirtualNodes is the ring's virtual-node count per shard.
	VirtualNodes int `json:"virtual_nodes"`
	// Partitioned is the number of logical partitioned structures the
	// coordinator tracks.
	Partitioned int `json:"partitioned"`
	// ScatterGathers counts fanned-out /countBatch requests; Failovers
	// counts replica failovers on reads; Rerouted counts structure
	// groups rerouted to another replica after a shard-level batch
	// failure.
	ScatterGathers uint64 `json:"scatter_gathers"`
	Failovers      uint64 `json:"failovers"`
	Rerouted       uint64 `json:"rerouted"`
}

// StatsResponse is the /stats snapshot: admission telemetry, the
// per-query counter statistics, the structure registry, the
// process-wide engine session registry, the incremental-maintenance
// counters, the number of registered subscriptions, and the durability
// layer.  A cluster coordinator answers the same shape with every
// counter merged across its shards and the per-shard breakdown under
// Cluster.
type StatsResponse struct {
	UptimeSeconds float64                  `json:"uptime_seconds"`
	Admission     AdmissionStats           `json:"admission"`
	Workers       int                      `json:"workers"`
	Queries       []QueryStats             `json:"queries"`
	Structures    []StructureInfo          `json:"structures"`
	Sessions      engine.SessionCacheStats `json:"sessions"`
	Delta         engine.DeltaCounters     `json:"delta"`
	Subscriptions int                      `json:"subscriptions"`
	Durability    DurabilityStats          `json:"durability"`
	// Cluster is set only on coordinator responses.
	Cluster *ClusterStats `json:"cluster,omitempty"`
}

// ErrorResponse is the JSON body of every non-2xx response.  Case is
// set on admission-control rejections of exact-mode hard queries (the
// typed rejection clients switch to approx mode on): the query's
// hardest trichotomy case, as in CountResponse.Case.
type ErrorResponse struct {
	Error string `json:"error"`
	Case  string `json:"case,omitempty"`
}

// queryStatsFrom flattens a counter's Stats into the wire shape.
func queryStatsFrom(query, engineName string, st core.Stats) QueryStats {
	return QueryStats{
		Query:            query,
		Engine:           engineName,
		Pool:             st.Pool,
		Plans:            st.Plans,
		SharedPlans:      st.SharedPlans,
		CountCacheHits:   st.CountCacheHits,
		CountCacheMisses: st.CountCacheMisses,
		Case:             st.HardestCase.Short(),
		TermsHard:        st.TermsHard,
		ClassifyAnalyses: st.ClassifyAnalyses,
		ClassifyHits:     st.ClassifyHits,
		ApproxCounts:     st.ApproxCounts,
	}
}
