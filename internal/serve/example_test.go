package serve_test

import (
	"context"
	"fmt"
	"net/http/httptest"

	"repro/internal/serve"
)

// A complete client round-trip: ingest a small graph, count triangle
// answers, stream an append, and recount — the mutation is visible to
// the very next request.
func ExampleClient() {
	srv := serve.New(serve.Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	ctx := context.Background()
	cl := serve.NewClient(ts.URL, ts.Client())

	if _, err := cl.CreateStructure(ctx, "g", "E(a,b). E(b,c). E(c,a).", nil); err != nil {
		panic(err)
	}
	tri := "tri(x,y,z) := E(x,y) & E(y,z) & E(z,x)"
	n, _, err := cl.Count(ctx, tri, "g")
	if err != nil {
		panic(err)
	}
	fmt.Println("triangles:", n)

	if _, err := cl.AppendFacts(ctx, "g", "E(b,a). E(c,b). E(a,c)."); err != nil {
		panic(err)
	}
	n, _, err = cl.Count(ctx, tri, "g")
	if err != nil {
		panic(err)
	}
	fmt.Println("after append:", n)
	// Output:
	// triangles: 3
	// after append: 6
}
