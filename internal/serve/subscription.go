package serve

import (
	"context"
	"fmt"
	"math/big"
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/engine"
)

// Subscriptions are the serving layer's maintained counts: a query
// bound to a registered structure, whose count is kept current across
// append batches.  Registration compiles the counter but computes
// nothing; the count materializes lazily on the first read and is then
// *advanced* on later reads — the counter's keyed counts ride the
// engine's incremental delta path (engine/delta.go), so a read after an
// append batch costs the delta joins, not a recount, while an unchanged
// version is answered from the subscription's own cached pair without
// touching the engine at all.

// subEntry is one registered subscription plus its maintained state.
type subEntry struct {
	id        string
	query     string
	engName   engine.Name
	structure string
	e         *structEntry
	c         *core.Counter

	// mu guards the maintained pair; it nests inside the structure's
	// read lock (reads hold e.mu.RLock around the version check and
	// count) and nothing acquires locks while holding it.
	mu      sync.Mutex
	count   *big.Int
	version uint64
	valid   bool
}

// snapshot returns the entry's wire form with the last maintained
// state (if any) under the entry lock.
func (se *subEntry) snapshot() SubscriptionInfo {
	info := SubscriptionInfo{
		ID:        se.id,
		Query:     se.query,
		Structure: se.structure,
		Engine:    se.engName.String(),
	}
	se.mu.Lock()
	if se.valid {
		info.Count = se.count.String()
		info.Version = se.version
	}
	se.mu.Unlock()
	return info
}

// Subscribe registers a maintained count for (query, structure).  The
// counter compiles eagerly (errors surface here, not on read); the
// count itself is maintained lazily from the first read on.
func (r *Registry) Subscribe(query, structureName, engineName string) (SubscriptionInfo, error) {
	eng, err := parseEngine(engineName)
	if err != nil {
		return SubscriptionInfo{}, err
	}
	e, err := r.entry(structureName)
	if err != nil {
		return SubscriptionInfo{}, err
	}
	e.mu.RLock()
	sig := e.b.Signature()
	e.mu.RUnlock()
	c, err := r.counterFor(query, eng, sig)
	if err != nil {
		return SubscriptionInfo{}, err
	}
	r.mu.Lock()
	r.subSeq++
	se := &subEntry{
		id:        fmt.Sprintf("sub-%d", r.subSeq),
		query:     query,
		engName:   eng,
		structure: structureName,
		e:         e,
		c:         c,
	}
	r.subs[se.id] = se
	r.mu.Unlock()
	return se.snapshot(), nil
}

// subscription resolves a subscription id.
func (r *Registry) subscription(id string) (*subEntry, error) {
	r.mu.RLock()
	se := r.subs[id]
	r.mu.RUnlock()
	if se == nil {
		return nil, fmt.Errorf("unknown subscription %q", id)
	}
	return se, nil
}

// SubscriptionCount returns the subscription's maintained count at the
// structure's current version, updating it first if the structure moved
// since the last read.  The whole read runs under the structure's read
// lock, so the (count, version) pair is consistent with one version
// boundary; an unchanged version is a pure cache hit, and an advanced
// one is maintained through the engine's delta path when the plan
// allows it.
func (r *Registry) SubscriptionCount(ctx context.Context, id string) (SubscriptionInfo, error) {
	se, err := r.subscription(id)
	if err != nil {
		return SubscriptionInfo{}, err
	}
	se.e.mu.RLock()
	defer se.e.mu.RUnlock()
	v := se.e.b.Version()
	se.mu.Lock()
	if se.valid && se.version == v {
		defer se.mu.Unlock()
		return SubscriptionInfo{
			ID:        se.id,
			Query:     se.query,
			Structure: se.structure,
			Engine:    se.engName.String(),
			Count:     se.count.String(),
			Version:   se.version,
		}, nil
	}
	se.mu.Unlock()
	cnt, err := se.c.CountCtx(ctx, se.e.b)
	if err != nil {
		return SubscriptionInfo{}, err
	}
	se.mu.Lock()
	se.count, se.version, se.valid = cnt, v, true
	se.mu.Unlock()
	return SubscriptionInfo{
		ID:        se.id,
		Query:     se.query,
		Structure: se.structure,
		Engine:    se.engName.String(),
		Count:     cnt.String(),
		Version:   v,
	}, nil
}

// Unsubscribe removes a subscription.
func (r *Registry) Unsubscribe(id string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.subs[id]; !ok {
		return fmt.Errorf("unknown subscription %q", id)
	}
	delete(r.subs, id)
	return nil
}

// Subscriptions lists every registered subscription with its last
// maintained state, sorted by id.
func (r *Registry) Subscriptions() []SubscriptionInfo {
	r.mu.RLock()
	entries := make([]*subEntry, 0, len(r.subs))
	for _, se := range r.subs {
		entries = append(entries, se)
	}
	r.mu.RUnlock()
	sort.Slice(entries, func(i, j int) bool { return entries[i].id < entries[j].id })
	out := make([]SubscriptionInfo, 0, len(entries))
	for _, se := range entries {
		out = append(out, se.snapshot())
	}
	return out
}

// NumSubscriptions returns the number of registered subscriptions.
func (r *Registry) NumSubscriptions() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.subs)
}
