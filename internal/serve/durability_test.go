package serve

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/wal"
	"repro/internal/workload"
)

const triQuery = "tri(x,y,z) := E(x,y) & E(y,z) & E(z,x)"

// openStore opens (or reopens) a wal store in dir.
func openStore(t *testing.T, dir string, fs wal.FS, sync wal.SyncPolicy) (*wal.Store, *wal.RecoverReport) {
	t.Helper()
	st, rep, err := wal.Open(wal.Options{Dir: dir, FS: fs, Sync: sync})
	if err != nil {
		t.Fatalf("wal.Open(%s): %v", dir, err)
	}
	return st, rep
}

// durableRegistry builds a registry attached to a store in dir.
func durableRegistry(t *testing.T, dir string, fs wal.FS, sync wal.SyncPolicy) *Registry {
	t.Helper()
	reg := NewRegistry(0, 1)
	st, rep := openStore(t, dir, fs, sync)
	if err := reg.AttachStore(st, rep, -1); err != nil {
		t.Fatalf("AttachStore: %v", err)
	}
	return reg
}

// TestServeRecoveryRoundTrip drives the registry's durable paths —
// create, append, compact — then restarts (new store, new registry)
// and checks structures, versions, and counts all survive.
func TestServeRecoveryRoundTrip(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()

	reg := durableRegistry(t, dir, nil, wal.SyncAlways)
	base := workload.RandomStructure(workload.EdgeSig(), 40, 0.1, 5)
	baseFacts, err := base.FactsString()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.CreateStructure("g", baseFacts, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.CreateStructure("tiny", "E(a,b). E(b,c). E(c,a).",
		[]RelSpec{{Name: "E", Arity: 2}}); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.AppendFactsBatch("g", "E(v1,v2). E(v2,v3). E(v3,v1).", "batch-1"); err != nil {
		t.Fatal(err)
	}
	if err := reg.Compact(); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.AppendFactsBatch("g", "E(v5,v6).", "batch-2"); err != nil {
		t.Fatal(err)
	}
	wantInfos := reg.Structures()
	wantCounts := make(map[string]string)
	for _, info := range wantInfos {
		c, err := reg.counterFor(triQuery, engine.FPT, mustEntry(t, reg, info.Name).b.Signature())
		if err != nil {
			t.Fatal(err)
		}
		v, err := c.CountCtx(ctx, mustEntry(t, reg, info.Name).b)
		if err != nil {
			t.Fatal(err)
		}
		wantCounts[info.Name] = v.String()
	}
	if err := reg.Close(); err != nil {
		t.Fatal(err)
	}

	reg2 := durableRegistry(t, dir, nil, wal.SyncAlways)
	defer reg2.Close()
	gotInfos := reg2.Structures()
	if len(gotInfos) != len(wantInfos) {
		t.Fatalf("recovered %d structures, want %d", len(gotInfos), len(wantInfos))
	}
	for i, want := range wantInfos {
		got := gotInfos[i]
		if got.Name != want.Name || got.Size != want.Size || got.Tuples != want.Tuples || got.Version != want.Version {
			t.Fatalf("structure %d: got %+v, want %+v", i, got, want)
		}
		c, err := reg2.counterFor(triQuery, engine.FPT, mustEntry(t, reg2, got.Name).b.Signature())
		if err != nil {
			t.Fatal(err)
		}
		v, err := c.CountCtx(ctx, mustEntry(t, reg2, got.Name).b)
		if err != nil {
			t.Fatal(err)
		}
		if v.String() != wantCounts[got.Name] {
			t.Fatalf("%s: recovered count %s, want %s", got.Name, v, wantCounts[got.Name])
		}
	}
}

func mustEntry(t *testing.T, reg *Registry, name string) *structEntry {
	t.Helper()
	e, err := reg.entry(name)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// TestAppendIdempotencyBatchID: a repeated batch id returns the
// ORIGINAL response (same Inserted, same Version) without re-applying,
// both within a process and across a restart.
func TestAppendIdempotencyBatchID(t *testing.T) {
	dir := t.TempDir()
	reg := durableRegistry(t, dir, nil, wal.SyncAlways)
	if _, err := reg.CreateStructure("g", "E(a,b).", nil); err != nil {
		t.Fatal(err)
	}
	first, err := reg.AppendFactsBatch("g", "E(b,c). E(c,d).", "batch-7")
	if err != nil {
		t.Fatal(err)
	}
	if first.Inserted != 2 || first.BatchID != "batch-7" {
		t.Fatalf("first append: %+v", first)
	}
	again, err := reg.AppendFactsBatch("g", "E(b,c). E(c,d).", "batch-7")
	if err != nil {
		t.Fatal(err)
	}
	// Memo hit: the original Inserted=2, not a re-merge's 0.
	if again != first {
		t.Fatalf("retried batch: got %+v, want original %+v", again, first)
	}
	if err := reg.Close(); err != nil {
		t.Fatal(err)
	}

	// Across restart: recovery rebuilds the memo from the WAL.
	reg2 := durableRegistry(t, dir, nil, wal.SyncAlways)
	defer reg2.Close()
	preInfo, err := reg2.StructureInfo("g")
	if err != nil {
		t.Fatal(err)
	}
	replayed, err := reg2.AppendFactsBatch("g", "E(b,c). E(c,d).", "batch-7")
	if err != nil {
		t.Fatal(err)
	}
	if replayed.Inserted != 2 || replayed.Version != preInfo.Version {
		t.Fatalf("post-restart replay: %+v (pre-version %d)", replayed, preInfo.Version)
	}
	postInfo, err := reg2.StructureInfo("g")
	if err != nil {
		t.Fatal(err)
	}
	if postInfo.Version != preInfo.Version {
		t.Fatalf("replayed batch mutated the structure: %+v -> %+v", preInfo, postInfo)
	}
}

// TestShutdownDrainsBlockedWriter is the shutdown-drain regression
// test: Close must wait for an append writer blocked inside the WAL
// write, and the batch it was writing must be durable after Close
// returns.
func TestShutdownDrainsBlockedWriter(t *testing.T) {
	dir := t.TempDir()
	ffs := wal.NewFaultFS(wal.OSFS{})
	reg := durableRegistry(t, dir, ffs, wal.SyncAlways)
	if _, err := reg.CreateStructure("g", "E(a,b).", nil); err != nil {
		t.Fatal(err)
	}

	entered := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	ffs.SetWriteHook(func(name string, p []byte) error {
		once.Do(func() {
			close(entered)
			<-release
		})
		return nil
	})

	appendDone := make(chan error, 1)
	go func() {
		_, err := reg.AppendFactsBatch("g", "E(b,c).", "blocked-batch")
		appendDone <- err
	}()
	<-entered // the writer is mid-WAL-write

	closeDone := make(chan error, 1)
	go func() { closeDone <- reg.Close() }()

	select {
	case err := <-closeDone:
		t.Fatalf("Close returned while a writer was blocked mid-append (err=%v)", err)
	case <-time.After(100 * time.Millisecond):
		// Close is (correctly) waiting on the writer.
	}

	close(release)
	if err := <-appendDone; err != nil {
		t.Fatalf("blocked append failed: %v", err)
	}
	select {
	case err := <-closeDone:
		if err != nil {
			t.Fatalf("Close: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatalf("Close never returned after the writer finished")
	}

	// A write refused after Close must be the retryable shutdown error.
	if _, err := reg.AppendFactsBatch("g", "E(x,y).", ""); !errors.Is(err, errClosed) {
		t.Fatalf("append after Close: %v", err)
	}

	// The drained batch is durable.
	reg2 := durableRegistry(t, dir, nil, wal.SyncAlways)
	defer reg2.Close()
	info, err := reg2.StructureInfo("g")
	if err != nil {
		t.Fatal(err)
	}
	if info.Tuples != 2 {
		t.Fatalf("recovered %d tuples, want 2 (blocked batch lost?)", info.Tuples)
	}
}

// TestHealthzRecoveringVsReady: a durable server reports 503
// "recovering" before Start finishes recovery and 200 "ready" after.
func TestHealthzRecoveringVsReady(t *testing.T) {
	srv := New(Config{DataDir: t.TempDir()})
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()

	resp, err := http.Get(hs.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("pre-recovery healthz: HTTP %d, want 503", resp.StatusCode)
	}

	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown(context.Background())
	if err := NewClient("http://"+srv.Addr(), nil).Healthz(context.Background()); err != nil {
		t.Fatalf("post-recovery healthz: %v", err)
	}

	// An in-memory server is born ready.
	srv2 := New(Config{})
	hs2 := httptest.NewServer(srv2.Handler())
	defer hs2.Close()
	resp2, err := http.Get(hs2.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("in-memory healthz: HTTP %d, want 200", resp2.StatusCode)
	}
}

// TestServerRestartOverHTTP exercises the whole stack: a Started
// durable server ingests over HTTP, shuts down gracefully, restarts on
// the same data dir, and serves identical counts.
func TestServerRestartOverHTTP(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()

	srv := New(Config{DataDir: dir, Fsync: "always"})
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	cl := NewClient("http://"+srv.Addr(), nil)
	if _, err := cl.CreateStructure(ctx, "g", "E(a,b). E(b,c). E(c,a).", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.AppendFactsBatch(ctx, "g", "E(c,d). E(d,a).", "hb-1"); err != nil {
		t.Fatal(err)
	}
	want, wantResp, err := cl.Count(ctx, triQuery, "g")
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}

	srv2 := New(Config{DataDir: dir, Fsync: "always"})
	if err := srv2.Start(); err != nil {
		t.Fatal(err)
	}
	defer srv2.Shutdown(ctx)
	cl2 := NewClient("http://"+srv2.Addr(), nil)
	got, gotResp, err := cl2.Count(ctx, triQuery, "g")
	if err != nil {
		t.Fatal(err)
	}
	if got.Cmp(want) != 0 || gotResp.Version != wantResp.Version {
		t.Fatalf("restart changed the answer: %s@v%d, want %s@v%d", got, gotResp.Version, want, wantResp.Version)
	}
	stats, err := cl2.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Durability.Enabled || stats.Durability.RecoveredStructures != 1 {
		t.Fatalf("durability stats: %+v", stats.Durability)
	}
}

// TestKillRestartLiveStream is the serving-layer differential: a
// registry under fsync=always takes a live append stream (with
// concurrent counting readers) and is killed mid-write at a random
// byte; after recovery the surviving state must contain EXACTLY the
// acknowledged batches — zero acked loss — and count identically to a
// sequential replay of those acks.
func TestKillRestartLiveStream(t *testing.T) {
	ctx := context.Background()
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 8; trial++ {
		dir := t.TempDir()
		ffs := wal.NewFaultFS(wal.OSFS{})
		reg := durableRegistry(t, dir, ffs, wal.SyncAlways)
		if _, err := reg.CreateStructure("g", "E(v0,v1).", []RelSpec{{Name: "E", Arity: 2}}); err != nil {
			t.Fatal(err)
		}

		// Concurrent readers hammer counts while the stream appends.
		stop := make(chan struct{})
		var readers sync.WaitGroup
		for r := 0; r < 2; r++ {
			readers.Add(1)
			go func() {
				defer readers.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					e, err := reg.entry("g")
					if err != nil {
						return
					}
					c, err := reg.counterFor(triQuery, engine.FPT, e.b.Signature())
					if err != nil {
						return
					}
					e.mu.RLock()
					_, _ = c.CountCtx(ctx, e.b)
					e.mu.RUnlock()
				}
			}()
		}

		ffs.CrashAfterBytes(int64(100 + rng.Intn(1500)))
		var acked []string
		for i := 0; ; i++ {
			batch := fmt.Sprintf("E(v%d,v%d). E(v%d,v%d).",
				rng.Intn(30), rng.Intn(30), rng.Intn(30), rng.Intn(30))
			if _, err := reg.AppendFactsBatch("g", batch, fmt.Sprintf("live-%d", i)); err != nil {
				if !ffs.Crashed() {
					t.Fatalf("trial %d: append %d failed without injected fault: %v", trial, i, err)
				}
				break
			}
			acked = append(acked, batch)
			if i > 400 {
				t.Fatalf("trial %d: fault never fired", trial)
			}
		}
		close(stop)
		readers.Wait()
		ffs.Crash() // drop unsynced bytes: the process is gone
		reg.Close()

		// Recover on a clean FS and differentially compare against a
		// sequential replay of exactly the acknowledged batches.
		reg2 := durableRegistry(t, dir, nil, wal.SyncAlways)
		replay := NewRegistry(0, 1)
		if _, err := replay.CreateStructure("g", "E(v0,v1).", []RelSpec{{Name: "E", Arity: 2}}); err != nil {
			t.Fatal(err)
		}
		for _, batch := range acked {
			if _, err := replay.AppendFacts("g", batch); err != nil {
				t.Fatal(err)
			}
		}
		gotInfo, err := reg2.StructureInfo("g")
		if err != nil {
			t.Fatalf("trial %d: recovered registry lost g: %v", trial, err)
		}
		wantInfo, err := replay.StructureInfo("g")
		if err != nil {
			t.Fatal(err)
		}
		if gotInfo.Size != wantInfo.Size || gotInfo.Tuples != wantInfo.Tuples || gotInfo.Version != wantInfo.Version {
			t.Fatalf("trial %d (%d acked): recovered %+v, want %+v", trial, len(acked), gotInfo, wantInfo)
		}
		gotB := mustEntry(t, reg2, "g").b
		wantB := mustEntry(t, replay, "g").b
		gotFacts, _ := gotB.FactsString()
		wantFacts, _ := wantB.FactsString()
		if gotFacts != wantFacts {
			t.Fatalf("trial %d: recovered facts differ from acknowledged replay", trial)
		}
		c, err := reg2.counterFor(triQuery, engine.FPT, gotB.Signature())
		if err != nil {
			t.Fatal(err)
		}
		gotCount, err := c.CountCtx(ctx, gotB)
		if err != nil {
			t.Fatal(err)
		}
		cw, err := replay.counterFor(triQuery, engine.FPT, wantB.Signature())
		if err != nil {
			t.Fatal(err)
		}
		wantCount, err := cw.CountCtx(ctx, wantB)
		if err != nil {
			t.Fatal(err)
		}
		if gotCount.Cmp(wantCount) != 0 {
			t.Fatalf("trial %d: recovered count %s, want %s", trial, gotCount, wantCount)
		}
		reg2.Close()
	}
}

// TestCompactionUnderLoad: appends from several goroutines race
// explicit compactions; every acknowledged batch must survive a final
// close-and-recover.
func TestCompactionUnderLoad(t *testing.T) {
	dir := t.TempDir()
	reg := durableRegistry(t, dir, nil, wal.SyncBatch)
	if _, err := reg.CreateStructure("g", "E(v0,v1).", []RelSpec{{Name: "E", Arity: 2}}); err != nil {
		t.Fatal(err)
	}
	const writers, perWriter = 4, 25
	var wg sync.WaitGroup
	errs := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				batch := fmt.Sprintf("E(v%d,v%d).", (w*perWriter+i)%40, (w*perWriter+i*7)%40)
				if _, err := reg.AppendFactsBatch("g", batch, fmt.Sprintf("w%d-%d", w, i)); err != nil {
					errs <- err
					return
				}
				if i%10 == 9 {
					if err := reg.Compact(); err != nil {
						errs <- err
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	want, err := reg.StructureInfo("g")
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.Close(); err != nil {
		t.Fatal(err)
	}

	reg2 := durableRegistry(t, dir, nil, wal.SyncBatch)
	defer reg2.Close()
	got, err := reg2.StructureInfo("g")
	if err != nil {
		t.Fatal(err)
	}
	if got.Size != want.Size || got.Tuples != want.Tuples || got.Version != want.Version {
		t.Fatalf("recovered %+v, want %+v", got, want)
	}
}

// TestAppendAfterCloseIsRetryable503 maps the shutdown refusal onto the
// wire: a 503 with Retry-After, which the retrying client treats as
// transient.
func TestAppendAfterCloseIsRetryable503(t *testing.T) {
	srv := New(Config{})
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()
	ctx := context.Background()
	cl := NewClient(hs.URL, nil)
	if _, err := cl.CreateStructure(ctx, "g", "E(a,b).", nil); err != nil {
		t.Fatal(err)
	}
	if err := srv.Registry().Close(); err != nil {
		t.Fatal(err)
	}
	_, err := cl.AppendFacts(ctx, "g", "E(b,c).")
	if err == nil || !strings.Contains(err.Error(), "503") {
		t.Fatalf("append after close: %v, want a 503", err)
	}
}
