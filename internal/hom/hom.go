package hom

import (
	"fmt"
	"math/big"
	"math/bits"
	"sort"

	"repro/internal/structure"
)

// Options configures a homomorphism search.
type Options struct {
	// Pin forces specific A-element → B-element mappings.
	Pin map[int]int
	// Restrict limits the domain of an A-element to the given B-elements.
	Restrict map[int][]int
	// AllDiff lists A-elements that must be mapped injectively (used for
	// the surjection/bijection checks of renaming equivalence).
	AllDiff []int
}

type constraint struct {
	rel  string
	vars []int // A-element per position

	// brel/bcols are B's columnar relation store and its column views,
	// resolved once at solver construction: candidate generation walks
	// posting lists and reads columns directly, never materializing
	// tuple slices or scanning the full relation.
	brel  *structure.Relation
	bcols [][]int32
}

type solver struct {
	A, B    *structure.Structure
	nA, nB  int
	cons    []constraint
	consOf  [][]int // A-element -> indices into cons
	allDiff []bool  // A-element -> participates in the alldiff group
	hasAD   bool
	initDom []bitset
	initErr error

	// domFree is a freelist of domain-set copies (one flat backing array
	// per entry) recycled across search branches; supBuf is the pooled
	// per-position support scratch of propagate; candBuf is the pooled
	// candidate-row word bitmap the posting-bitmap union accumulates
	// into.  A solver serves one call and is single-threaded, so no
	// locking is needed.
	domFree [][]bitset
	supBuf  []bitset
	candBuf []uint64
}

// candWords returns a zeroed word bitmap covering n rows from the pooled
// scratch.
func (s *solver) candWords(n int) []uint64 {
	w := (n + 63) / 64
	if cap(s.candBuf) < w {
		s.candBuf = make([]uint64, w)
	}
	buf := s.candBuf[:w]
	for i := range buf {
		buf[i] = 0
	}
	return buf
}

// cloneDoms returns a recycled (or fresh, flat-backed) copy of dom.
func (s *solver) cloneDoms(dom []bitset) []bitset {
	if n := len(s.domFree); n > 0 {
		d := s.domFree[n-1]
		s.domFree = s.domFree[:n-1]
		for v := range dom {
			copy(d[v], dom[v])
		}
		return d
	}
	words := (s.nB + 63) / 64
	flat := make([]uint64, s.nA*words)
	d := make([]bitset, s.nA)
	for v := range dom {
		d[v] = flat[v*words : (v+1)*words]
		copy(d[v], dom[v])
	}
	return d
}

func (s *solver) releaseDoms(d []bitset) { s.domFree = append(s.domFree, d) }

// supports returns ar zeroed support bitsets from the pooled scratch.
func (s *solver) supports(ar int) []bitset {
	for len(s.supBuf) < ar {
		s.supBuf = append(s.supBuf, newBitset(s.nB))
	}
	sup := s.supBuf[:ar]
	for _, b := range sup {
		b.zero()
	}
	return sup
}

func newSolver(A, B *structure.Structure, opts Options) *solver {
	s := &solver{A: A, B: B, nA: A.Size(), nB: B.Size()}
	s.consOf = make([][]int, s.nA)
	for _, r := range A.Signature().Rels() {
		brel := B.Rel(r.Name)
		var bcols [][]int32
		if brel != nil {
			bcols = make([][]int32, r.Arity)
			for p := 0; p < r.Arity; p++ {
				bcols[p] = brel.Col(p)
			}
		}
		A.ForEachTuple(r.Name, func(t []int) bool {
			ci := len(s.cons)
			s.cons = append(s.cons, constraint{
				rel:   r.Name,
				vars:  append([]int(nil), t...),
				brel:  brel,
				bcols: bcols,
			})
			seen := map[int]bool{}
			for _, v := range t {
				if !seen[v] {
					seen[v] = true
					s.consOf[v] = append(s.consOf[v], ci)
				}
			}
			return true
		})
	}
	s.allDiff = make([]bool, s.nA)
	for _, v := range opts.AllDiff {
		s.allDiff[v] = true
		s.hasAD = true
	}
	// Initial domains.
	dom := make([]bitset, s.nA)
	for v := 0; v < s.nA; v++ {
		dom[v] = fullBitset(s.nB)
	}
	for v, allowed := range opts.Restrict {
		nb := newBitset(s.nB)
		for _, b := range allowed {
			if b >= 0 && b < s.nB {
				nb.set(b)
			}
		}
		dom[v] = nb
	}
	for v, b := range opts.Pin {
		if b < 0 || b >= s.nB || !dom[v].has(b) {
			s.initErr = fmt.Errorf("hom: pin %d→%d outside domain", v, b)
			return s
		}
		nb := newBitset(s.nB)
		nb.set(b)
		dom[v] = nb
	}
	s.initDom = dom
	return s
}

// propagate runs generalized arc consistency to a fixpoint on dom,
// starting from the given constraint queue (nil = all constraints).
// It returns false if some domain became empty.
func (s *solver) propagate(dom []bitset, queue []int) bool {
	inQueue := make([]bool, len(s.cons))
	if queue == nil {
		queue = make([]int, len(s.cons))
		for i := range queue {
			queue[i] = i
		}
	}
	for _, ci := range queue {
		inQueue[ci] = true
	}
	for len(queue) > 0 {
		ci := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		inQueue[ci] = false
		c := s.cons[ci]
		ar := len(c.vars)
		support := s.supports(ar)
		// Candidate B-tuples come from the posting lists of the position
		// whose variable has the smallest domain: the union over that
		// domain's values is disjoint (each row holds one value there)
		// and visits only rows consistent with the tightest domain.
		// Only a near-unpruned pivot (≥ 3/4 of the universe) falls back
		// to a contiguous column sweep, which is cheaper than per-value
		// posting lookups when almost every row qualifies anyway.
		bestPos, bestCnt := -1, 1<<30
		for p, v := range c.vars {
			if cnt := dom[v].count(); cnt < bestCnt {
				bestPos, bestCnt = p, cnt
			}
		}
		if bestCnt == 0 || c.brel == nil || c.brel.Len() == 0 {
			return false
		}
		bcols := c.bcols
		vars := c.vars
		if 4*bestCnt < 3*s.nB {
			// Restrictive pivot: union the posting bitmaps of the
			// domain's values into one candidate-row word bitmap (64
			// rows per op; the per-value bitmaps are disjoint, each row
			// holding one value at the pivot position), then visit each
			// candidate row once in increasing, cache-friendly order.
			words := s.candWords(c.brel.Len())
			dom[vars[bestPos]].forEach(func(val int) bool {
				c.brel.RowsWith(bestPos, val).UnionIntoWords(words)
				return true
			})
			for wi, w := range words {
				for w != 0 {
					j := bits.TrailingZeros64(w)
					w &^= 1 << j
					addRowSupport(vars, bcols, dom, support, wi<<6|j)
				}
			}
		} else {
			// Unpruned pivot domain: a contiguous column sweep beats
			// per-value posting lookups (the row filter still applies).
			n := c.brel.Len()
			for row := 0; row < n; row++ {
				addRowSupport(vars, bcols, dom, support, row)
			}
		}
		for p, v := range c.vars {
			if dom[v].intersect(support[p]) {
				if dom[v].empty() {
					return false
				}
				for _, cj := range s.consOf[v] {
					if cj != ci && !inQueue[cj] {
						inQueue[cj] = true
						queue = append(queue, cj)
					}
				}
			}
		}
	}
	return true
}

// addRowSupport marks row's values as supported at every position,
// unless some value falls outside its variable's domain or repeated
// variables disagree.
func addRowSupport(vars []int, bcols [][]int32, dom []bitset, support []bitset, row int) {
	ar := len(vars)
	for p, v := range vars {
		u := int(bcols[p][row])
		if !dom[v].has(u) {
			return
		}
		for q := p + 1; q < ar; q++ {
			if vars[q] == v && int(bcols[q][row]) != u {
				return
			}
		}
	}
	for p := range vars {
		support[p].set(int(bcols[p][row]))
	}
}

// propagateAllDiff removes value b from the domains of other alldiff
// members once some alldiff member's domain is the singleton {b}.
// Returns false on wipeout.  (Weak alldiff propagation; sound.)
func (s *solver) propagateAllDiff(dom []bitset) bool {
	if !s.hasAD {
		return true
	}
	changed := true
	for changed {
		changed = false
		for v := 0; v < s.nA; v++ {
			if !s.allDiff[v] || dom[v].count() != 1 {
				continue
			}
			b := dom[v].first()
			for u := 0; u < s.nA; u++ {
				if u == v || !s.allDiff[u] {
					continue
				}
				if dom[u].has(b) {
					dom[u].clear(b)
					changed = true
					if dom[u].empty() {
						return false
					}
				}
			}
		}
	}
	return true
}

// search runs backtracking search over the variables in varOrder (others
// are still propagated but only need non-empty domains if decided=false…
// varOrder must cover all of A's elements for a full homomorphism).
// onSolution is invoked with the value of each variable; returning false
// stops the search.  Returns true if the search was stopped early.
func (s *solver) search(dom []bitset, onSolution func(assign []int) bool) bool {
	assign := make([]int, s.nA)
	var rec func(dom []bitset) bool
	rec = func(dom []bitset) bool {
		// MRV: pick unfixed variable with smallest domain > 1.
		pick, pickCnt := -1, 1<<30
		for v := 0; v < s.nA; v++ {
			c := dom[v].count()
			if c == 0 {
				return true
			}
			if c > 1 && c < pickCnt {
				pick, pickCnt = v, c
			}
		}
		if pick == -1 {
			for v := 0; v < s.nA; v++ {
				assign[v] = dom[v].first()
			}
			// GAC can fix variables without passing through the alldiff
			// propagator, so re-verify injectivity at the leaf.
			if s.hasAD {
				seen := make(map[int]bool)
				for v := 0; v < s.nA; v++ {
					if s.allDiff[v] {
						if seen[assign[v]] {
							return true
						}
						seen[assign[v]] = true
					}
				}
			}
			return onSolution(assign)
		}
		cont := true
		dom[pick].forEach(func(b int) bool {
			nd := s.cloneDoms(dom)
			nd[pick].zero()
			nd[pick].set(b)
			if s.propagateAllDiff(nd) && s.propagate(nd, append([]int(nil), s.consOf[pick]...)) {
				cont = rec(nd)
			}
			s.releaseDoms(nd)
			return cont
		})
		return cont
	}
	return !rec(dom)
}

func (s *solver) initialDomains() ([]bitset, bool) {
	if s.initErr != nil {
		return nil, false
	}
	dom := make([]bitset, s.nA)
	for v := range dom {
		dom[v] = s.initDom[v].clone()
	}
	if !s.propagateAllDiff(dom) {
		return nil, false
	}
	if !s.propagate(dom, nil) {
		return nil, false
	}
	return dom, true
}

// Find searches for a homomorphism from A to B subject to opts and returns
// the full assignment (A-element index → B-element index) if one exists.
func Find(A, B *structure.Structure, opts Options) ([]int, bool) {
	s := newSolver(A, B, opts)
	dom, ok := s.initialDomains()
	if !ok {
		return nil, false
	}
	var sol []int
	stopped := s.search(dom, func(assign []int) bool {
		sol = append([]int(nil), assign...)
		return false
	})
	_ = stopped
	return sol, sol != nil
}

// Exists reports whether a homomorphism from A to B subject to opts exists.
func Exists(A, B *structure.Structure, opts Options) bool {
	_, ok := Find(A, B, opts)
	return ok
}

// Count returns the number of homomorphisms from A to B subject to opts.
// Enumeration-based: intended for small instances and tests.
func Count(A, B *structure.Structure, opts Options) *big.Int {
	s := newSolver(A, B, opts)
	total := new(big.Int)
	dom, ok := s.initialDomains()
	if !ok {
		return total
	}
	one := big.NewInt(1)
	s.search(dom, func([]int) bool {
		total.Add(total, one)
		return true
	})
	return total
}

// ForEachExtendable enumerates, in lexicographic order of the projection
// variables, every assignment g of proj (A-element indices) such that g
// extends to a full homomorphism A → B under opts.  fn receives the values
// aligned with proj; returning false stops the enumeration.  Each distinct
// g is reported exactly once: this is exactly the answer-set semantics
// φ(B) for the pp-formula (A, proj).
func ForEachExtendable(A, B *structure.Structure, proj []int, opts Options, fn func(vals []int) bool) {
	s := newSolver(A, B, opts)
	dom, ok := s.initialDomains()
	if !ok {
		return
	}
	vals := make([]int, len(proj))
	var rec func(i int, dom []bitset) bool
	rec = func(i int, dom []bitset) bool {
		if i == len(proj) {
			// All projection variables fixed; check a completion exists.
			found := false
			s.search(dom, func([]int) bool {
				found = true
				return false
			})
			if !found {
				return true
			}
			return fn(vals)
		}
		v := proj[i]
		cont := true
		dom[v].forEach(func(b int) bool {
			nd := s.cloneDoms(dom)
			nd[v].zero()
			nd[v].set(b)
			if s.propagateAllDiff(nd) && s.propagate(nd, append([]int(nil), s.consOf[v]...)) {
				vals[i] = b
				cont = rec(i+1, nd)
			}
			s.releaseDoms(nd)
			return cont
		})
		return cont
	}
	rec(0, dom)
}

// FindBijectionOn searches for a homomorphism h : A → B whose restriction
// to SA is a bijection onto SB.  This is the witness required by renaming
// equivalence (Definition 5.3): a surjection SA → SB extending to a
// homomorphism (|SA| = |SB| makes surjectivity and bijectivity coincide).
// Returns the full assignment if found.
func FindBijectionOn(A, B *structure.Structure, SA, SB []int) ([]int, bool) {
	if len(SA) != len(SB) {
		return nil, false
	}
	restrict := make(map[int][]int, len(SA))
	for _, a := range SA {
		restrict[a] = append([]int(nil), SB...)
	}
	return Find(A, B, Options{Restrict: restrict, AllDiff: append([]int(nil), SA...)})
}

// SortElems returns a sorted copy of indices (utility shared by callers).
func SortElems(xs []int) []int {
	out := append([]int(nil), xs...)
	sort.Ints(out)
	return out
}
