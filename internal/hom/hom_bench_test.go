package hom

import (
	"testing"

	"repro/internal/structure"
	"repro/internal/workload"
)

// Candidate-generation benchmarks: the solver's propagate loop dominates
// hom checks on large structures, and its cost is set by how candidate
// B-tuples are produced (posting-list lookups vs full relation scans).

func pathPattern(k int) *structure.Structure {
	a := structure.New(workload.EdgeSig())
	for i := 0; i <= k; i++ {
		a.FreshElem("p")
	}
	for i := 0; i < k; i++ {
		_ = a.AddTuple("E", i, i+1)
	}
	return a
}

func erStructure(n int, avgDeg float64, seed int64) *structure.Structure {
	return workload.GraphStructure(workload.ER(n, avgDeg/float64(n), seed))
}

func BenchmarkHom_ExistsPath6_N1500(b *testing.B) {
	a := pathPattern(6)
	bs := erStructure(1500, 4.0, 7)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !Exists(a, bs, Options{}) {
			b.Fatal("expected a homomorphism")
		}
	}
}

func BenchmarkHom_CountPath4_N300(b *testing.B) {
	a := pathPattern(4)
	bs := erStructure(300, 4.0, 11)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if Count(a, bs, Options{}).Sign() == 0 {
			b.Fatal("expected homomorphisms")
		}
	}
}

func BenchmarkHom_ForEachExtendablePath4_N800(b *testing.B) {
	a := pathPattern(4)
	bs := erStructure(800, 3.0, 13)
	proj := []int{0, 4}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		total := 0
		ForEachExtendable(a, bs, proj, Options{}, func([]int) bool {
			total++
			return true
		})
		if total == 0 {
			b.Fatal("expected extendable assignments")
		}
	}
}
