// Package hom decides and enumerates homomorphisms between finite
// relational structures.  A homomorphism h : A → B maps elements of A to
// elements of B so that every tuple of every relation of A is carried to a
// tuple of B (Section 2.1).  The engine is a constraint solver: variables
// are A's elements, domains are subsets of B's elements, the constraints
// are A's tuples; it supports pinned partial maps, restricted domains,
// injectivity groups (for the bijection searches of Theorem 5.4), and
// enumeration of the assignments of a projection set that extend to a
// homomorphism (the counting semantics of pp-formulas).
package hom
