package hom

import (
	"math/rand"

	"repro/internal/structure"
)

// Sampler draws Horvitz–Thompson samples of the answer set φ(B) of a
// pp-formula with liberal variables proj: each draw fixes the liberal
// variables one at a time to a uniformly random member of their current
// GAC-propagated domain, accumulating the product of the domain sizes as
// the importance weight, and then checks that the partial assignment
// extends to a full homomorphism.  Because arc-consistency propagation
// only removes values with no supporting tuple, every answer survives
// every propagation step, so the weighted indicator is an unbiased
// estimator of |φ(B)|: E[Sample] = |φ(B)| exactly.
//
// A Sampler amortizes solver construction and the initial propagation
// across draws; it reuses the solver's pooled domain copies and is
// therefore NOT safe for concurrent use.  Create one Sampler per
// goroutine.
type Sampler struct {
	s    *solver
	proj []int
	dom0 []bitset
	maxW float64
	zero bool
}

// NewSampler prepares a sampler for homomorphisms A → B projected onto
// the A-elements proj.  Construction runs the initial propagation once;
// if it already wipes out a domain the count is exactly zero and
// ExactZero reports true.
func NewSampler(A, B *structure.Structure, proj []int, opts Options) *Sampler {
	sp := &Sampler{s: newSolver(A, B, opts), proj: append([]int(nil), proj...)}
	dom, ok := sp.s.initialDomains()
	if !ok {
		sp.zero = true
		return sp
	}
	sp.dom0 = dom
	sp.maxW = 1
	for _, v := range sp.proj {
		sp.maxW *= float64(dom[v].count())
	}
	return sp
}

// ExactZero reports whether the initial propagation proved |φ(B)| = 0,
// in which case Sample always returns 0 and the zero is exact.
func (sp *Sampler) ExactZero() bool { return sp.zero }

// MaxWeight returns an upper bound on the value any single Sample draw
// can return: the product of the liberal variables' initial propagated
// domain sizes (domains only shrink as variables are fixed).
func (sp *Sampler) MaxWeight() float64 {
	if sp.zero {
		return 0
	}
	return sp.maxW
}

// Sample performs one draw and returns its importance weight: the
// product of the domain sizes seen while fixing the liberal variables if
// the drawn partial assignment extends to a full homomorphism, and 0
// otherwise (a dead branch).  The expectation over draws equals |φ(B)|.
func (sp *Sampler) Sample(rng *rand.Rand) float64 {
	if sp.zero {
		return 0
	}
	dom := sp.s.cloneDoms(sp.dom0)
	defer sp.s.releaseDoms(dom)
	w := 1.0
	for _, v := range sp.proj {
		c := dom[v].count()
		if c == 0 {
			return 0
		}
		pick := dom[v].nth(rng.Intn(c))
		w *= float64(c)
		dom[v].zero()
		dom[v].set(pick)
		if !sp.s.propagate(dom, append([]int(nil), sp.s.consOf[v]...)) {
			return 0
		}
	}
	found := false
	sp.s.search(dom, func([]int) bool {
		found = true
		return false
	})
	if !found {
		return 0
	}
	return w
}
