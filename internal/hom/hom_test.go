package hom

import (
	"math/big"
	"testing"
	"testing/quick"

	"repro/internal/structure"
)

func edgeSig() *structure.Signature {
	return structure.MustSignature(structure.RelSym{Name: "E", Arity: 2})
}

// pathStruct returns the directed path 0→1→…→n-1.
func pathStruct(n int) *structure.Structure {
	s := structure.New(edgeSig())
	for i := 0; i < n; i++ {
		s.EnsureElem(string(rune('a' + i)))
	}
	for i := 0; i+1 < n; i++ {
		_ = s.AddTuple("E", i, i+1)
	}
	return s
}

// cycleStruct returns the directed cycle on n vertices.
func cycleStruct(n int) *structure.Structure {
	s := structure.New(edgeSig())
	for i := 0; i < n; i++ {
		s.EnsureElem(string(rune('a' + i)))
	}
	for i := 0; i < n; i++ {
		_ = s.AddTuple("E", i, (i+1)%n)
	}
	return s
}

func loopStruct() *structure.Structure {
	s := structure.New(edgeSig())
	s.EnsureElem("l")
	_ = s.AddTuple("E", 0, 0)
	return s
}

func TestExistsBasic(t *testing.T) {
	p3 := pathStruct(3)
	if !Exists(p3, p3, Options{}) {
		t.Fatal("identity homomorphism must exist")
	}
	// Path maps into a loop.
	if !Exists(p3, loopStruct(), Options{}) {
		t.Fatal("path must map into loop")
	}
	// Loop does not map into a path.
	if Exists(loopStruct(), p3, Options{}) {
		t.Fatal("loop must not map into path")
	}
	// Path of length 2 maps into cycle of length 3.
	if !Exists(p3, cycleStruct(3), Options{}) {
		t.Fatal("path must map into cycle")
	}
	// Directed 3-cycle does not map into directed 4-cycle.
	if Exists(cycleStruct(3), cycleStruct(4), Options{}) {
		t.Fatal("C3 must not map into C4 (directed)")
	}
	// But C4 maps into... not into C3 either (directed cycles map iff
	// length divisible).
	if Exists(cycleStruct(4), cycleStruct(3), Options{}) {
		t.Fatal("C4 must not map into C3 (directed)")
	}
	if !Exists(cycleStruct(4), cycleStruct(2), Options{}) {
		t.Fatal("C4 must map onto C2 (4 divisible by 2)")
	}
}

func TestFindReturnsValidHom(t *testing.T) {
	a := pathStruct(4)
	b := cycleStruct(2)
	h, ok := Find(a, b, Options{})
	if !ok {
		t.Fatal("path must map into C2")
	}
	for _, r := range a.Signature().Rels() {
		for _, tup := range a.Tuples(r.Name) {
			img := make([]int, len(tup))
			for i, v := range tup {
				img[i] = h[v]
			}
			if !b.HasTuple(r.Name, img) {
				t.Fatalf("returned map is not a homomorphism at %v", tup)
			}
		}
	}
}

func TestPins(t *testing.T) {
	p3 := pathStruct(3) // a→b→c
	c2 := cycleStruct(2)
	// Pin a→a (index 0); forced b→b, c→a.
	h, ok := Find(p3, c2, Options{Pin: map[int]int{0: 0}})
	if !ok {
		t.Fatal("pinned hom must exist")
	}
	if h[0] != 0 || h[1] != 1 || h[2] != 0 {
		t.Fatalf("pinned hom = %v", h)
	}
	// Unsatisfiable pin: path endpoint into a vertex with no outgoing edge.
	p2 := pathStruct(2)
	if Exists(p2, p3, Options{Pin: map[int]int{0: 2}}) {
		t.Fatal("pinning source to sink must fail")
	}
	// Pin out of range.
	if Exists(p2, p3, Options{Pin: map[int]int{0: 99}}) {
		t.Fatal("out-of-range pin must fail")
	}
}

func TestRestrict(t *testing.T) {
	p2 := pathStruct(2)
	p4 := pathStruct(4)
	// First vertex restricted to {c (index 2)}: then the edge forces d.
	h, ok := Find(p2, p4, Options{Restrict: map[int][]int{0: {2}}})
	if !ok || h[0] != 2 || h[1] != 3 {
		t.Fatalf("restricted hom = %v ok=%v", h, ok)
	}
	if Exists(p2, p4, Options{Restrict: map[int][]int{0: {3}}}) {
		t.Fatal("restricting to sink must fail")
	}
}

func TestCountHoms(t *testing.T) {
	p2 := pathStruct(2) // one edge: homs = #edges of target
	p5 := pathStruct(5)
	if got := Count(p2, p5, Options{}); got.Cmp(big.NewInt(4)) != 0 {
		t.Fatalf("edge homs into P5 = %v, want 4", got)
	}
	c4 := cycleStruct(4)
	if got := Count(p2, c4, Options{}); got.Cmp(big.NewInt(4)) != 0 {
		t.Fatalf("edge homs into C4 = %v, want 4", got)
	}
	// Single vertex no atoms → |B| homs.
	v := structure.New(edgeSig())
	v.EnsureElem("x")
	if got := Count(v, p5, Options{}); got.Cmp(big.NewInt(5)) != 0 {
		t.Fatalf("vertex homs = %v, want 5", got)
	}
}

func TestAllDiffBijection(t *testing.T) {
	// A = single edge (x,y); B = C2. Bijection between {x,y} and both
	// vertices of C2 exists.
	p2 := pathStruct(2)
	c2 := cycleStruct(2)
	if _, ok := FindBijectionOn(p2, c2, []int{0, 1}, []int{0, 1}); !ok {
		t.Fatal("bijective hom edge→C2 must exist")
	}
	// A = two-element structure with no edges; B = loop + isolated vertex.
	// Bijection {a0,a1}→{b0,b1} exists trivially.
	a := structure.New(edgeSig())
	a.EnsureElem("a0")
	a.EnsureElem("a1")
	b := structure.New(edgeSig())
	b.EnsureElem("b0")
	b.EnsureElem("b1")
	_ = b.AddTuple("E", 0, 0)
	if _, ok := FindBijectionOn(a, b, []int{0, 1}, []int{0, 1}); !ok {
		t.Fatal("bijection must exist for edgeless source")
	}
	// A = edge (x,y) with both endpoints in S; B = loop + isolated: any
	// hom must map both endpoints into the loop — not injective.
	if _, ok := FindBijectionOn(p2, b, []int{0, 1}, []int{0, 1}); ok {
		t.Fatal("bijective hom must fail when only the loop supports edges")
	}
	// Size mismatch.
	if _, ok := FindBijectionOn(p2, b, []int{0, 1}, []int{0}); ok {
		t.Fatal("size mismatch must fail")
	}
}

func TestForEachExtendable(t *testing.T) {
	// Formula: E(x,u) with S={x}, u quantified: answers = vertices with an
	// out-edge.
	a := pathStruct(2) // x=0, u=1
	b := pathStruct(4) // a→b→c→d: a,b,c have out-edges
	var got []int
	ForEachExtendable(a, b, []int{0}, Options{}, func(vals []int) bool {
		got = append(got, vals[0])
		return true
	})
	if len(got) != 3 {
		t.Fatalf("extendable count = %d, want 3 (got %v)", len(got), got)
	}
	// Early stop.
	calls := 0
	ForEachExtendable(a, b, []int{0}, Options{}, func([]int) bool {
		calls++
		return false
	})
	if calls != 1 {
		t.Fatalf("early stop made %d calls", calls)
	}
}

func TestForEachExtendableDistinct(t *testing.T) {
	// Two disjoint quantified witnesses must not duplicate the projected
	// assignment: E(x,u) on a target where x has two out-neighbors.
	a := pathStruct(2)
	b := structure.New(edgeSig())
	for _, n := range []string{"x", "y", "z"} {
		b.EnsureElem(n)
	}
	_ = b.AddTuple("E", 0, 1)
	_ = b.AddTuple("E", 0, 2)
	seen := map[int]int{}
	ForEachExtendable(a, b, []int{0}, Options{}, func(vals []int) bool {
		seen[vals[0]]++
		return true
	})
	if len(seen) != 1 || seen[0] != 1 {
		t.Fatalf("projection not deduplicated: %v", seen)
	}
}

func TestRepeatedVariablesInTuple(t *testing.T) {
	// A has tuple E(x,x): only loops support it.
	a := structure.New(edgeSig())
	a.EnsureElem("x")
	_ = a.AddTuple("E", 0, 0)
	b := pathStruct(3)
	if Exists(a, b, Options{}) {
		t.Fatal("loop atom must not map into loop-free path")
	}
	if !Exists(a, loopStruct(), Options{}) {
		t.Fatal("loop atom must map into loop")
	}
}

// Property: counts of homs from a fixed edge into G(n) equals number of
// tuples; and Exists agrees with Count > 0.
func TestExistsMatchesCountProperty(t *testing.T) {
	sig := edgeSig()
	f := func(n uint8, edges []uint16) bool {
		size := int(n%5) + 1
		b := structure.New(sig)
		for i := 0; i < size; i++ {
			b.EnsureElem(string(rune('a' + i)))
		}
		for _, e := range edges {
			u := int(e) % size
			v := int(e>>4) % size
			_ = b.AddTuple("E", u, v)
		}
		a := pathStruct(3)
		c := Count(a, b, Options{})
		return Exists(a, b, Options{}) == (c.Sign() > 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
