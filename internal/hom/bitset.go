package hom

import "math/bits"

// bitset is a fixed-capacity set of small non-negative integers.
type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

func fullBitset(n int) bitset {
	b := newBitset(n)
	for i := 0; i < n; i++ {
		b.set(i)
	}
	return b
}

func (b bitset) set(i int)      { b[i/64] |= 1 << (i % 64) }
func (b bitset) clear(i int)    { b[i/64] &^= 1 << (i % 64) }
func (b bitset) has(i int) bool { return b[i/64]&(1<<(i%64)) != 0 }

func (b bitset) zero() {
	for i := range b {
		b[i] = 0
	}
}

func (b bitset) clone() bitset {
	c := make(bitset, len(b))
	copy(c, b)
	return c
}

func (b bitset) count() int {
	n := 0
	for _, w := range b {
		n += bits.OnesCount64(w)
	}
	return n
}

// intersect replaces b with b ∩ o and reports whether b changed.
func (b bitset) intersect(o bitset) bool {
	changed := false
	for i := range b {
		nw := b[i] & o[i]
		if nw != b[i] {
			changed = true
			b[i] = nw
		}
	}
	return changed
}

func (b bitset) empty() bool {
	for _, w := range b {
		if w != 0 {
			return false
		}
	}
	return true
}

// nth returns the k-th smallest member (0-based), or -1 if the set has
// fewer than k+1 members.  Used by the importance sampler to draw a
// uniform member without materializing the set.
func (b bitset) nth(k int) int {
	for i, w := range b {
		c := bits.OnesCount64(w)
		if k >= c {
			k -= c
			continue
		}
		for ; w != 0; w &^= w & -w {
			if k == 0 {
				return i*64 + bits.TrailingZeros64(w)
			}
			k--
		}
	}
	return -1
}

// first returns the smallest member, or -1 if empty.
func (b bitset) first() int {
	for i, w := range b {
		if w != 0 {
			return i*64 + bits.TrailingZeros64(w)
		}
	}
	return -1
}

// forEach calls fn on each member in increasing order; fn returning false
// stops the iteration early and forEach returns false.
func (b bitset) forEach(fn func(int) bool) bool {
	for i, w := range b {
		for w != 0 {
			j := bits.TrailingZeros64(w)
			w &^= 1 << j
			if !fn(i*64 + j) {
				return false
			}
		}
	}
	return true
}
