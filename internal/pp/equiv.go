package pp

import (
	"fmt"

	"repro/internal/hom"
)

// RenamingEquivalent implements Definition 5.3: two pp-formulas are
// renaming equivalent if there are surjections h : S₁ → S₂ and
// h' : S₂ → S₁ that extend to homomorphisms A₁ → A₂ and A₂ → A₁
// respectively.  (Surjections between finite liberal sets of equal size
// are bijections, and unequal sizes immediately refute equivalence —
// Observation 5.5.)
func RenamingEquivalent(p, q PP) (bool, error) {
	if !p.A.Signature().Equal(q.A.Signature()) {
		return false, fmt.Errorf("pp: renaming equivalence across different signatures")
	}
	if len(p.S) != len(q.S) {
		return false, nil
	}
	if _, ok := hom.FindBijectionOn(p.A, q.A, p.S, q.S); !ok {
		return false, nil
	}
	if _, ok := hom.FindBijectionOn(q.A, p.A, q.S, p.S); !ok {
		return false, nil
	}
	return true, nil
}

// CountingEquivalent decides whether |p(B)| = |q(B)| for every finite
// structure B.  By Theorem 5.4 this coincides with renaming equivalence,
// which makes the problem decidable (and in NP).
func CountingEquivalent(p, q PP) (bool, error) {
	return RenamingEquivalent(p, q)
}

// SemiCountingEquivalent decides Definition 5.6: |p(B)| = |q(B)| whenever
// both counts are positive.  By Theorem 5.9 this holds iff p̂ and q̂ are
// counting equivalent.  Defined for liberal formulas (the setting of the
// all-free pipeline).
func SemiCountingEquivalent(p, q PP) (bool, error) {
	ph, err := p.Hat()
	if err != nil {
		return false, err
	}
	qh, err := q.Hat()
	if err != nil {
		return false, err
	}
	return CountingEquivalent(ph, qh)
}

// HomOrderMinimal returns the index of a formula whose plain structure
// admits no homomorphism from any other formula's structure — the minimal
// element used in Proposition 5.19.  The input formulas are assumed
// pairwise non-homomorphically-equivalent (which Proposition 5.17
// guarantees for semi-counting-equivalent, pairwise non-counting-
// equivalent formulas); under that assumption a minimal element exists.
func HomOrderMinimal(ps []PP) (int, error) {
	if len(ps) == 0 {
		return -1, fmt.Errorf("pp: no formulas")
	}
	// φi < φj iff hom(Ai → Aj).  Find i receiving no hom from others.
	n := len(ps)
	for i := 0; i < n; i++ {
		minimal := true
		for j := 0; j < n && minimal; j++ {
			if j == i {
				continue
			}
			if hom.Exists(ps[j].A, ps[i].A, hom.Options{}) {
				minimal = false
			}
		}
		if minimal {
			return i, nil
		}
	}
	return -1, fmt.Errorf("pp: no hom-order minimal element (inputs not pairwise hom-inequivalent?)")
}
