package pp

import (
	"fmt"
	"sort"
	"strings"
)

// CanonicalKey returns a canonical certificate of the formula up to
// (a) renaming of liberal variables among themselves and (b) renaming of
// quantified variables — i.e. up to the color-preserving isomorphism that,
// for cored formulas, coincides exactly with counting equivalence:
// by Theorems 5.4 and 2.3, two cored pp-formulas are counting equivalent
// iff there is an isomorphism between their structures mapping liberal
// variables onto liberal variables.
//
// The algorithm is individualization–refinement: iterated color
// refinement over tuple incidences, branching on the first non-singleton
// cell, taking the lexicographically smallest serialization.  Query-sized
// structures (the only callers) finish in microseconds; a permutation
// budget guards against pathological inputs, returning an error the
// caller can handle by falling back to pairwise equivalence tests.
func (p PP) CanonicalKey() (string, error) {
	n := p.A.Size()
	if n == 0 {
		return "", fmt.Errorf("pp: empty universe")
	}
	inS := p.sSet()

	// Incidence list: for each element, the tuples it appears in.
	type occurrence struct {
		rel   int // index into rels
		tuple int // index into tuples[rel]
		pos   int
	}
	rels := p.A.Signature().Rels()
	tuples := make([][][]int, len(rels))
	occ := make([][]occurrence, n)
	for ri, r := range rels {
		rel := p.A.Rel(r.Name)
		tuples[ri] = make([][]int, 0, rel.Len())
		p.A.ForEachTuple(r.Name, func(t []int) bool {
			tuples[ri] = append(tuples[ri], append([]int(nil), t...))
			return true
		})
		for ti, t := range tuples[ri] {
			for pos, v := range t {
				occ[v] = append(occ[v], occurrence{rel: ri, tuple: ti, pos: pos})
			}
		}
	}

	// refine iterates color refinement until stable; colors are dense ints.
	refine := func(color []int) []int {
		cur := append([]int(nil), color...)
		for round := 0; round < n+2; round++ {
			sigs := make([]string, n)
			for v := 0; v < n; v++ {
				parts := make([]string, 0, len(occ[v])+1)
				for _, o := range occ[v] {
					t := tuples[o.rel][o.tuple]
					cols := make([]string, len(t))
					for i, u := range t {
						cols[i] = fmt.Sprint(cur[u])
					}
					parts = append(parts, fmt.Sprintf("%d:%d:%s", o.rel, o.pos, strings.Join(cols, ",")))
				}
				sort.Strings(parts)
				sigs[v] = fmt.Sprintf("%d|%s", cur[v], strings.Join(parts, ";"))
			}
			// Re-densify.
			order := make([]int, n)
			for i := range order {
				order[i] = i
			}
			sort.Slice(order, func(i, j int) bool { return sigs[order[i]] < sigs[order[j]] })
			next := make([]int, n)
			c := 0
			for i, v := range order {
				if i > 0 && sigs[v] != sigs[order[i-1]] {
					c++
				}
				next[v] = c
			}
			same := true
			for v := 0; v < n; v++ {
				if next[v] != cur[v] {
					same = false
					break
				}
			}
			cur = next
			if same {
				break
			}
		}
		return cur
	}

	// certificate serializes the structure under a discrete coloring
	// (every color a singleton): relabel by color and dump sorted tuples.
	certificate := func(color []int) string {
		label := make([]int, n)
		for v := 0; v < n; v++ {
			label[v] = color[v]
		}
		var b strings.Builder
		for ri, r := range rels {
			fmt.Fprintf(&b, "%s/", r.Name)
			lines := make([]string, 0, len(tuples[ri]))
			for _, t := range tuples[ri] {
				parts := make([]string, len(t))
				for i, v := range t {
					parts[i] = fmt.Sprint(label[v])
				}
				lines = append(lines, strings.Join(parts, ","))
			}
			sort.Strings(lines)
			b.WriteString(strings.Join(lines, " "))
			b.WriteByte(';')
		}
		// Record which labels are liberal (they form a prefix by the
		// initial coloring, but serialize explicitly for clarity).
		var libLabels []int
		for _, v := range p.S {
			libLabels = append(libLabels, label[v])
		}
		sort.Ints(libLabels)
		fmt.Fprintf(&b, "S=%v", libLabels)
		return b.String()
	}

	isDiscrete := func(color []int) bool {
		seen := make(map[int]bool, n)
		for _, c := range color {
			if seen[c] {
				return false
			}
			seen[c] = true
		}
		return true
	}

	const budget = 1 << 16
	steps := 0
	var best string
	var explore func(color []int) error
	explore = func(color []int) error {
		steps++
		if steps > budget {
			return fmt.Errorf("pp: canonical labeling budget exceeded")
		}
		color = refine(color)
		if isDiscrete(color) {
			cert := certificate(color)
			if best == "" || cert < best {
				best = cert
			}
			return nil
		}
		// First non-singleton cell (smallest color with ≥ 2 members).
		counts := map[int][]int{}
		for v, c := range color {
			counts[c] = append(counts[c], v)
		}
		var cols []int
		for c := range counts {
			cols = append(cols, c)
		}
		sort.Ints(cols)
		var cell []int
		for _, c := range cols {
			if len(counts[c]) > 1 {
				cell = counts[c]
				break
			}
		}
		for _, v := range cell {
			next := append([]int(nil), color...)
			// Individualize v: give it a fresh color below its cell.
			for u := 0; u < n; u++ {
				next[u] = 2 * next[u]
			}
			next[v]--
			if err := explore(next); err != nil {
				return err
			}
		}
		return nil
	}

	initial := make([]int, n)
	for v := 0; v < n; v++ {
		if inS[v] {
			initial[v] = 0
		} else {
			initial[v] = 1
		}
	}
	if err := explore(initial); err != nil {
		return "", err
	}
	return best, nil
}

// CountingEquivalentCored decides counting equivalence of two *cored*
// formulas by canonical-key comparison; it must agree with
// CountingEquivalent (property-tested) and is O(canonical labeling)
// instead of two homomorphism searches.
func CountingEquivalentCored(p, q PP) (bool, error) {
	if !p.A.Signature().Equal(q.A.Signature()) {
		return false, fmt.Errorf("pp: counting equivalence across different signatures")
	}
	if len(p.S) != len(q.S) || p.A.Size() != q.A.Size() {
		return false, nil
	}
	kp, err := p.CanonicalKey()
	if err != nil {
		return false, err
	}
	kq, err := q.CanonicalKey()
	if err != nil {
		return false, err
	}
	return kp == kq, nil
}
