package pp

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/graph"
	"repro/internal/hom"
	"repro/internal/logic"
	"repro/internal/structure"
)

// PP is a prenex pp-formula (A, S): A's elements are variables, S ⊆ A is
// the set of liberal variables (stored as sorted element indices).
// Elements of A ∖ S are existentially quantified.
type PP struct {
	A *structure.Structure
	S []int
}

// New validates and returns a PP over the given structure and liberal set.
func New(a *structure.Structure, s []int) (PP, error) {
	if err := a.Validate(); err != nil {
		return PP{}, err
	}
	seen := make(map[int]bool, len(s))
	for _, v := range s {
		if v < 0 || v >= a.Size() {
			return PP{}, fmt.Errorf("pp: liberal index %d out of range", v)
		}
		if seen[v] {
			return PP{}, fmt.Errorf("pp: duplicate liberal index %d", v)
		}
		seen[v] = true
	}
	return PP{A: a, S: hom.SortElems(s)}, nil
}

// FromDisjunct builds the pair view of a prenex pp disjunct over the given
// liberal variables.  The universe is lib ∪ (variables of the disjunct);
// liberal variables missing from every atom become isolated elements, as
// in Example 2.2 (the variable z there).
func FromDisjunct(sig *structure.Signature, lib []logic.Var, d logic.Disjunct) (PP, error) {
	a := structure.New(sig)
	s := make([]int, 0, len(lib))
	for _, v := range lib {
		i, err := a.AddElem(string(v))
		if err != nil {
			return PP{}, err
		}
		s = append(s, i)
	}
	for _, v := range d.Exist {
		if _, err := a.AddElem(string(v)); err != nil {
			return PP{}, fmt.Errorf("pp: quantified variable %s collides: %v", v, err)
		}
	}
	for _, at := range d.Atoms {
		ar, ok := sig.Arity(at.Rel)
		if !ok {
			return PP{}, fmt.Errorf("pp: atom uses unknown relation %s", at.Rel)
		}
		if ar != len(at.Args) {
			return PP{}, fmt.Errorf("pp: atom %s has %d args, arity is %d", at.Rel, len(at.Args), ar)
		}
		t := make([]int, len(at.Args))
		for j, v := range at.Args {
			idx := a.ElemIndex(string(v))
			if idx < 0 {
				return PP{}, fmt.Errorf("pp: atom variable %s neither liberal nor quantified", v)
			}
			t[j] = idx
		}
		if err := a.AddTuple(at.Rel, t...); err != nil {
			return PP{}, err
		}
	}
	return New(a, s)
}

// ToDisjunct converts back to the logic view (existential variables are
// A ∖ S in index order).
func (p PP) ToDisjunct() logic.Disjunct {
	inS := p.sSet()
	var d logic.Disjunct
	for i := 0; i < p.A.Size(); i++ {
		if !inS[i] {
			d.Exist = append(d.Exist, logic.Var(p.A.ElemName(i)))
		}
	}
	for _, r := range p.A.Signature().Rels() {
		p.A.ForEachTuple(r.Name, func(t []int) bool {
			args := make([]logic.Var, len(t))
			for j, v := range t {
				args[j] = logic.Var(p.A.ElemName(v))
			}
			d.Atoms = append(d.Atoms, logic.Atom{Rel: r.Name, Args: args})
			return true
		})
	}
	return d
}

// LibNames returns the liberal variable names in element-index order.
func (p PP) LibNames() []string {
	out := make([]string, len(p.S))
	for i, v := range p.S {
		out[i] = p.A.ElemName(v)
	}
	return out
}

func (p PP) sSet() []bool {
	in := make([]bool, p.A.Size())
	for _, v := range p.S {
		in[v] = true
	}
	return in
}

// String renders the formula as "(x,y) | exists u. E(x,u) & E(u,y)".
func (p PP) String() string {
	d := p.ToDisjunct()
	return "(" + strings.Join(p.LibNames(), ",") + ") | " + d.String()
}

// IsLiberal reports |S| > 0.
func (p PP) IsLiberal() bool { return len(p.S) > 0 }

// FreeElems returns the liberal elements that occur in at least one atom:
// these are exactly free(φ).
func (p PP) FreeElems() []int {
	occurs := make([]bool, p.A.Size())
	for _, r := range p.A.Signature().Rels() {
		p.A.ForEachTuple(r.Name, func(t []int) bool {
			for _, v := range t {
				occurs[v] = true
			}
			return true
		})
	}
	var out []int
	for _, v := range p.S {
		if occurs[v] {
			out = append(out, v)
		}
	}
	return out
}

// IsSentence reports free(φ) = ∅: no liberal variable occurs in an atom.
// (Liberal variables may still exist; they are isolated.)
func (p PP) IsSentence() bool { return len(p.FreeElems()) == 0 }

// IsFree reports free(φ) ≠ ∅.
func (p PP) IsFree() bool { return !p.IsSentence() }

// Graph returns the Gaifman graph of the formula: vertices are all of A's
// elements, edges join elements co-occurring in a tuple (Section 2.1
// "Graphs").
func (p PP) Graph() *graph.Graph {
	g := graph.New(p.A.Size())
	for _, r := range p.A.Signature().Rels() {
		p.A.ForEachTuple(r.Name, func(t []int) bool {
			for i := 0; i < len(t); i++ {
				for j := i + 1; j < len(t); j++ {
					g.AddEdge(t[i], t[j])
				}
			}
			return true
		})
	}
	return g
}

// Components splits the formula into its components (Section 2.1): one PP
// per connected component of the Gaifman graph, with S restricted to the
// component.  For any structure B, |φ(B)| = ∏ᵢ |φᵢ(B)|.
func (p PP) Components() []PP {
	comps := p.Graph().Components()
	out := make([]PP, 0, len(comps))
	inS := p.sSet()
	for _, c := range comps {
		sub, old2new := p.A.Induced(c)
		var s []int
		for _, v := range c {
			if inS[v] {
				s = append(s, old2new[v])
			}
		}
		q, err := New(sub, s)
		if err != nil {
			panic(fmt.Sprintf("pp: invalid component: %v", err))
		}
		out = append(out, q)
	}
	return out
}

// IsConnected reports whether the formula's graph is connected.
func (p PP) IsConnected() bool { return p.Graph().IsConnected() }

// Hat returns φ̂: the formula obtained by removing every non-liberal
// component (a component without liberal variables), cf. Example 5.8 and
// Proposition 5.10.  Only defined for liberal formulas.
func (p PP) Hat() (PP, error) {
	if !p.IsLiberal() {
		return PP{}, fmt.Errorf("pp: Hat undefined for non-liberal formula")
	}
	inS := p.sSet()
	var keep []int
	for _, c := range p.Graph().Components() {
		liberal := false
		for _, v := range c {
			if inS[v] {
				liberal = true
				break
			}
		}
		if liberal {
			keep = append(keep, c...)
		}
	}
	sub, old2new := p.A.Induced(keep)
	var s []int
	for _, v := range p.S {
		if old2new[v] >= 0 {
			s = append(s, old2new[v])
		}
	}
	return New(sub, s)
}

// libRelPrefix marks the augmented pinning relations R_a (Section 2.1).
const libRelPrefix = "@lib:"

// Aug returns the augmented structure aug(A,S) over the expanded
// vocabulary τ ∪ {R_a | a ∈ S} with R_a = {a}.  Homomorphisms between
// augmented structures must fix liberal variables pointwise (by name),
// which is exactly Chandra–Merlin entailment with designated variables
// (Theorem 2.3).
func (p PP) Aug() (*structure.Structure, error) {
	extra := make([]structure.RelSym, 0, len(p.S))
	for _, v := range p.S {
		extra = append(extra, structure.RelSym{Name: libRelPrefix + p.A.ElemName(v), Arity: 1})
	}
	sig, err := p.A.Signature().Extend(extra...)
	if err != nil {
		return nil, err
	}
	out, err := p.A.WithSignature(sig)
	if err != nil {
		return nil, err
	}
	for _, v := range p.S {
		if err := out.AddTuple(libRelPrefix+p.A.ElemName(v), v); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// sameLibNames reports whether two formulas have the same set of liberal
// variable names (required for entailment/equivalence comparisons that
// fix the liberal variables pointwise).
func sameLibNames(p, q PP) bool {
	a, b := p.LibNames(), q.LibNames()
	if len(a) != len(b) {
		return false
	}
	sort.Strings(a)
	sort.Strings(b)
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Entails reports whether p logically entails q, i.e. every answer of p is
// an answer of q on every structure.  By Theorem 2.3 this holds iff there
// is a homomorphism aug(q) → aug(p).  Both formulas must share the same
// liberal variable names and signature.
func Entails(p, q PP) (bool, error) {
	if !p.A.Signature().Equal(q.A.Signature()) {
		return false, fmt.Errorf("pp: entailment across different signatures")
	}
	if !sameLibNames(p, q) {
		return false, fmt.Errorf("pp: entailment requires identical liberal variables (got %v vs %v)", p.LibNames(), q.LibNames())
	}
	ap, err := p.Aug()
	if err != nil {
		return false, err
	}
	aq, err := q.Aug()
	if err != nil {
		return false, err
	}
	// Signatures of the two augmented structures coincide because the
	// liberal names coincide.
	aq2, err := aq.WithSignature(ap.Signature())
	if err != nil {
		return false, err
	}
	return hom.Exists(aq2, ap, hom.Options{}), nil
}

// LogicallyEquivalent reports mutual entailment (Theorem 2.3).
func LogicallyEquivalent(p, q PP) (bool, error) {
	pq, err := Entails(p, q)
	if err != nil || !pq {
		return false, err
	}
	return Entails(q, p)
}

// Core returns the core of the pp-formula: the core of its augmented
// structure (Section 2.1), re-expressed over the original vocabulary.
// The liberal variables are always retained (their pinning relations force
// every endomorphism to fix them), so the result is again a pp-formula
// with the same liberal variables, logically equivalent to p.
func (p PP) Core() (PP, error) {
	aug, err := p.Aug()
	if err != nil {
		return PP{}, err
	}
	core := coreOf(aug)
	plain, err := core.ProjectSignature(p.A.Signature())
	if err != nil {
		return PP{}, err
	}
	var s []int
	for _, v := range p.S {
		idx := plain.ElemIndex(p.A.ElemName(v))
		if idx < 0 {
			return PP{}, fmt.Errorf("pp: core lost liberal variable %s", p.A.ElemName(v))
		}
		s = append(s, idx)
	}
	return New(plain, s)
}

// coreOf computes the core of a structure by iterated proper retraction:
// while some homomorphism X → X[X∖{v}] exists, restrict X to the image.
func coreOf(x *structure.Structure) *structure.Structure {
	for {
		improved := false
		for v := 0; v < x.Size() && !improved; v++ {
			keep := make([]int, 0, x.Size()-1)
			for u := 0; u < x.Size(); u++ {
				if u != v {
					keep = append(keep, u)
				}
			}
			sub, old2new := x.Induced(keep)
			// Hom X → sub; express as hom X → X with codomain restricted.
			h, ok := hom.Find(x, sub, hom.Options{})
			if !ok {
				continue
			}
			// Image of h in sub; restrict sub to image (h is X → sub, its
			// image is a retract of X by composing with inclusion).
			imgSet := make(map[int]bool)
			for _, b := range h {
				imgSet[b] = true
			}
			img := make([]int, 0, len(imgSet))
			for b := range imgSet {
				img = append(img, b)
			}
			img = hom.SortElems(img)
			x, _ = sub.Induced(img)
			improved = true
			_ = old2new
		}
		if !improved {
			return x
		}
	}
}

// ExistsComponent is an ∃-component of a pp-formula (Section 2.4): the
// vertex set of a component of G[D∖S] in the core D, extended by the
// liberal vertices adjacent to it.
type ExistsComponent struct {
	Vertices  []int // indices into the cored formula's structure
	Interface []int // Vertices ∩ S (the adjacent liberal variables)
}

// ExistsComponents returns the ∃-components of the *cored* formula d
// (call Core first; the definition in Section 2.4 is on the core).
func ExistsComponents(d PP) []ExistsComponent {
	g := d.Graph()
	inS := d.sSet()
	var quantified []int
	for v := 0; v < d.A.Size(); v++ {
		if !inS[v] {
			quantified = append(quantified, v)
		}
	}
	sub, old := g.Subgraph(quantified)
	var out []ExistsComponent
	for _, c := range sub.Components() {
		compSet := make(map[int]bool)
		var verts []int
		for _, nv := range c {
			compSet[old[nv]] = true
			verts = append(verts, old[nv])
		}
		ifaceSet := make(map[int]bool)
		for _, v := range verts {
			for _, u := range g.Neighbors(v) {
				if inS[u] {
					ifaceSet[u] = true
				}
			}
		}
		var iface []int
		for u := range ifaceSet {
			iface = append(iface, u)
		}
		iface = hom.SortElems(iface)
		out = append(out, ExistsComponent{
			Vertices:  append(hom.SortElems(verts), iface...),
			Interface: iface,
		})
	}
	return out
}

// ContractGraph returns contract(A,S) of the *cored* formula d: the graph
// on S obtained from G[S] by adding an edge between any two liberal
// vertices appearing together in an ∃-component (Section 2.4).  The
// returned graph's vertex i corresponds to d.S[i]; the mapping is also
// returned.
func ContractGraph(d PP) (*graph.Graph, []int) {
	g := d.Graph()
	posOf := make(map[int]int, len(d.S))
	for i, v := range d.S {
		posOf[v] = i
	}
	cg := graph.New(len(d.S))
	for i, v := range d.S {
		for _, u := range g.Neighbors(v) {
			if j, ok := posOf[u]; ok && j > i {
				cg.AddEdge(i, j)
			}
		}
	}
	for _, ec := range ExistsComponents(d) {
		idx := make([]int, 0, len(ec.Interface))
		for _, v := range ec.Interface {
			idx = append(idx, posOf[v])
		}
		cg.AddClique(idx)
	}
	return cg, append([]int(nil), d.S...)
}

// Conjoin returns the conjunction of the given pp-formulas, which must all
// share the same liberal variable names and signature: liberal variables
// are identified by name, quantified variables are renamed apart.  This is
// the φ_J = ⋀_{j∈J} φ_j construction of the inclusion–exclusion argument
// (Section 5.3).
func Conjoin(ps ...PP) (PP, error) {
	if len(ps) == 0 {
		return PP{}, fmt.Errorf("pp: empty conjunction")
	}
	sig := ps[0].A.Signature()
	out := structure.New(sig)
	var s []int
	libIdx := make(map[string]int)
	for _, v := range ps[0].S {
		name := ps[0].A.ElemName(v)
		i, err := out.AddElem(name)
		if err != nil {
			return PP{}, err
		}
		libIdx[name] = i
		s = append(s, i)
	}
	for k, p := range ps {
		if !p.A.Signature().Equal(sig) {
			return PP{}, fmt.Errorf("pp: conjunction across different signatures")
		}
		if !sameLibNames(p, ps[0]) {
			return PP{}, fmt.Errorf("pp: conjunction requires identical liberal variables")
		}
		// Map each element of p into out.
		m := make([]int, p.A.Size())
		inS := p.sSet()
		for v := 0; v < p.A.Size(); v++ {
			if inS[v] {
				m[v] = libIdx[p.A.ElemName(v)]
			} else {
				m[v] = out.FreshElem(fmt.Sprintf("%s~%d", p.A.ElemName(v), k))
			}
		}
		for _, r := range sig.Rels() {
			var addErr error
			nt := make([]int, r.Arity)
			p.A.ForEachTuple(r.Name, func(t []int) bool {
				for j, v := range t {
					nt[j] = m[v]
				}
				addErr = out.AddTuple(r.Name, nt...)
				return addErr == nil
			})
			if addErr != nil {
				return PP{}, addErr
			}
		}
	}
	return New(out, s)
}

// InvariantKey is a cheap renaming-invariant bucket key used to prefilter
// counting-equivalence tests.
func (p PP) InvariantKey() string {
	inS := p.sSet()
	deg := make([]int, p.A.Size())
	for _, r := range p.A.Signature().Rels() {
		p.A.ForEachTuple(r.Name, func(t []int) bool {
			for _, v := range t {
				deg[v]++
			}
			return true
		})
	}
	var sDeg, qDeg []int
	for v := 0; v < p.A.Size(); v++ {
		if inS[v] {
			sDeg = append(sDeg, deg[v])
		} else {
			qDeg = append(qDeg, deg[v])
		}
	}
	sort.Ints(sDeg)
	sort.Ints(qDeg)
	return fmt.Sprintf("%s|s=%v|q=%v", p.A.Fingerprint(), sDeg, qDeg)
}
