// Package pp implements prenex primitive positive formulas in the
// structure-pair view of Chandra–Merlin (Section 2.1 "pp-formulas"): a
// pp-formula φ(S) is a pair (A, S) of a finite structure A whose universe
// is the liberal variables S plus the quantified variables, and whose
// tuples are φ's atoms.  The package provides the syntactic and algebraic
// toolkit of the paper: components, augmented structures, cores,
// ∃-components, contract graphs, conjunction, Chandra–Merlin entailment,
// and the renaming / counting / semi-counting equivalences of Section 5.
package pp
