package pp

import (
	"math/big"
	"testing"

	"repro/internal/logic"
	"repro/internal/structure"
)

// Observation 5.5: on the structure C interpreting every relation by the
// full relation over {0,1}, |φ(C)| = 2^|lib(φ)| — so counting-equivalent
// formulas must have equally many liberal variables.
func TestObservation55(t *testing.T) {
	sig := edgeSig()
	full := structure.New(sig)
	full.EnsureElem("0")
	full.EnsureElem("1")
	for a := 0; a < 2; a++ {
		for b := 0; b < 2; b++ {
			_ = full.AddTuple("E", a, b)
		}
	}
	cases := []struct {
		lib []logic.Var
		d   logic.Disjunct
	}{
		{[]logic.Var{"x"}, logic.Disjunct{Atoms: []logic.Atom{atom("E", "x", "x")}}},
		{[]logic.Var{"x", "y"}, logic.Disjunct{Atoms: []logic.Atom{atom("E", "x", "y")}}},
		{[]logic.Var{"x", "y", "z"}, logic.Disjunct{
			Exist: []logic.Var{"u"},
			Atoms: []logic.Atom{atom("E", "x", "u"), atom("E", "y", "z")},
		}},
	}
	for _, c := range cases {
		p := mustPP(t, sig, c.lib, c.d)
		got := countAnswers(t, p, full)
		want := new(big.Int).Exp(big.NewInt(2), big.NewInt(int64(len(c.lib))), nil)
		if got.Cmp(want) != 0 {
			t.Fatalf("|φ(C)| = %v, want 2^%d = %v", got, len(c.lib), want)
		}
	}
}

// Proposition 5.10: for every structure B, φ(B) = ∅ or φ(B) = φ̂(B).
func TestProposition510(t *testing.T) {
	// φ = E(x,y) ∧ ∃u,v. (E(u,v) ∧ E(v,u)): liberal edge + 2-cycle sentence.
	p := mustPP(t, edgeSig(), []logic.Var{"x", "y"}, logic.Disjunct{
		Exist: []logic.Var{"u", "v"},
		Atoms: []logic.Atom{atom("E", "x", "y"), atom("E", "u", "v"), atom("E", "v", "u")},
	})
	h, err := p.Hat()
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(0); seed < 15; seed++ {
		b := randomStructure(seed)
		vp := countAnswers(t, p, b)
		vh := countAnswers(t, h, b)
		if vp.Sign() != 0 && vp.Cmp(vh) != 0 {
			t.Fatalf("seed %d: φ(B) non-empty but |φ(B)| = %v ≠ |φ̂(B)| = %v", seed, vp, vh)
		}
	}
}

// Theorem 2.3 (Chandra–Merlin): logical equivalence iff homomorphically
// equivalent augmented structures; spot-check both directions.
func TestTheorem23(t *testing.T) {
	sig := edgeSig()
	lib := []logic.Var{"x"}
	// ∃u. E(x,u) ∧ ∃v,w. E(x,v) ∧ E(v,w): not equivalent (longer reach).
	p1 := mustPP(t, sig, lib, logic.Disjunct{
		Exist: []logic.Var{"u"},
		Atoms: []logic.Atom{atom("E", "x", "u")},
	})
	p2 := mustPP(t, sig, lib, logic.Disjunct{
		Exist: []logic.Var{"v", "w"},
		Atoms: []logic.Atom{atom("E", "x", "v"), atom("E", "v", "w")},
	})
	eq, err := LogicallyEquivalent(p1, p2)
	if err != nil {
		t.Fatal(err)
	}
	if eq {
		t.Fatal("1-step and 2-step reach must differ")
	}
	// ∃u. E(x,u) ∧ ∃v,w. E(x,v) ∧ E(x,w): equivalent (w collapses to v).
	p3 := mustPP(t, sig, lib, logic.Disjunct{
		Exist: []logic.Var{"v", "w"},
		Atoms: []logic.Atom{atom("E", "x", "v"), atom("E", "x", "w")},
	})
	eq, err = LogicallyEquivalent(p1, p3)
	if err != nil {
		t.Fatal(err)
	}
	if !eq {
		t.Fatal("redundant quantified twin must be logically equivalent")
	}
	// Isomorphic cores (the theorem's second characterization).
	c1, err := p1.Core()
	if err != nil {
		t.Fatal(err)
	}
	c3, err := p3.Core()
	if err != nil {
		t.Fatal(err)
	}
	if c1.A.Size() != c3.A.Size() {
		t.Fatalf("equivalent formulas with non-isomorphic cores: %d vs %d", c1.A.Size(), c3.A.Size())
	}
	k1, err := c1.CanonicalKey()
	if err != nil {
		t.Fatal(err)
	}
	k3, err := c3.CanonicalKey()
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k3 {
		t.Fatal("equivalent formulas must have identical core canonical keys")
	}
}
