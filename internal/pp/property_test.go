package pp

import (
	"math/big"
	"math/rand"
	"testing"

	"repro/internal/hom"
	"repro/internal/logic"
	"repro/internal/structure"
)

// randomPP builds a small random pp-formula over {E/2}.
func randomPP(t *testing.T, seed int64) PP {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	nVars := 2 + rng.Intn(3)
	vars := make([]logic.Var, nVars)
	for i := range vars {
		vars[i] = logic.Var("v" + string(rune('0'+i)))
	}
	nAtoms := 1 + rng.Intn(4)
	var atoms []logic.Atom
	for a := 0; a < nAtoms; a++ {
		atoms = append(atoms, atom("E", vars[rng.Intn(nVars)], vars[rng.Intn(nVars)]))
	}
	nFree := 1 + rng.Intn(nVars)
	p, err := FromDisjunct(edgeSig(), vars[:nFree], logic.Disjunct{Exist: vars[nFree:], Atoms: atoms})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// Core must be idempotent and logically equivalent to the original.
func TestCoreIdempotentAndEquivalent(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		p := randomPP(t, seed)
		c1, err := p.Core()
		if err != nil {
			t.Fatal(err)
		}
		c2, err := c1.Core()
		if err != nil {
			t.Fatal(err)
		}
		if c2.A.Size() != c1.A.Size() {
			t.Fatalf("seed %d: core not idempotent (%d → %d)", seed, c1.A.Size(), c2.A.Size())
		}
		eq, err := LogicallyEquivalent(p, c1)
		if err != nil {
			t.Fatal(err)
		}
		if !eq {
			t.Fatalf("seed %d: core not logically equivalent to original", seed)
		}
		if c1.A.Size() > p.A.Size() {
			t.Fatalf("seed %d: core grew", seed)
		}
	}
}

// Counting equivalence must be an equivalence relation on a sample.
func TestCountingEquivalenceIsEquivalenceRelation(t *testing.T) {
	var ps []PP
	for seed := int64(0); seed < 10; seed++ {
		ps = append(ps, randomPP(t, seed))
	}
	n := len(ps)
	rel := make([][]bool, n)
	for i := range rel {
		rel[i] = make([]bool, n)
		for j := range rel[i] {
			eq, err := CountingEquivalent(ps[i], ps[j])
			if err != nil {
				t.Fatal(err)
			}
			rel[i][j] = eq
		}
	}
	for i := 0; i < n; i++ {
		if !rel[i][i] {
			t.Fatalf("reflexivity fails at %d", i)
		}
		for j := 0; j < n; j++ {
			if rel[i][j] != rel[j][i] {
				t.Fatalf("symmetry fails at (%d,%d)", i, j)
			}
			for k := 0; k < n; k++ {
				if rel[i][j] && rel[j][k] && !rel[i][k] {
					t.Fatalf("transitivity fails at (%d,%d,%d)", i, j, k)
				}
			}
		}
	}
}

// Hat must be idempotent and preserve counts on structures where the
// original count is positive (Proposition 5.10).
func TestHatProperties(t *testing.T) {
	// φ = E(x,y) ∧ (∃u,v. E(u,v) ∧ E(v,u)) — liberal part plus a sentence
	// component.
	p := mustPP(t, edgeSig(), []logic.Var{"x", "y"}, logic.Disjunct{
		Exist: []logic.Var{"u", "v"},
		Atoms: []logic.Atom{atom("E", "x", "y"), atom("E", "u", "v"), atom("E", "v", "u")},
	})
	h, err := p.Hat()
	if err != nil {
		t.Fatal(err)
	}
	h2, err := h.Hat()
	if err != nil {
		t.Fatal(err)
	}
	if h2.A.Size() != h.A.Size() {
		t.Fatal("Hat not idempotent")
	}
	// On a structure with a 2-cycle both formulas agree; without one, the
	// original is 0 while φ̂ may be positive (Prop 5.10's dichotomy).
	withCycle := structure.New(edgeSig())
	_ = withCycle.AddFact("E", "1", "2")
	_ = withCycle.AddFact("E", "2", "1")
	vOrig := countAnswers(t, p, withCycle)
	vHat := countAnswers(t, h, withCycle)
	if vOrig.Cmp(vHat) != 0 {
		t.Fatalf("counts differ where original positive: %v vs %v", vOrig, vHat)
	}
	noCycle := structure.New(edgeSig())
	_ = noCycle.AddFact("E", "1", "2")
	if countAnswers(t, p, noCycle).Sign() != 0 {
		t.Fatal("original should be 0 without a 2-cycle")
	}
	if countAnswers(t, h, noCycle).Sign() == 0 {
		t.Fatal("φ̂ should be positive without a 2-cycle")
	}
}

// countAnswers enumerates extendable liberal assignments directly with
// the hom engine (independent of the count package, avoiding an import
// cycle in tests).
func countAnswers(t *testing.T, p PP, b *structure.Structure) *big.Int {
	t.Helper()
	total := new(big.Int)
	one := big.NewInt(1)
	if len(p.S) == 0 {
		if hom.Exists(p.A, b, hom.Options{}) {
			return one
		}
		return total
	}
	hom.ForEachExtendable(p.A, b, p.S, hom.Options{}, func([]int) bool {
		total.Add(total, one)
		return true
	})
	return total
}

// Components multiply: |φ(B)| = ∏ |φᵢ(B)| over components.
func TestComponentFactorizationProperty(t *testing.T) {
	for seed := int64(30); seed < 50; seed++ {
		p := randomPP(t, seed)
		b := randomStructure(seed + 1000)
		whole := countAnswers(t, p, b)
		prod := big.NewInt(1)
		for _, comp := range p.Components() {
			prod.Mul(prod, countAnswers(t, comp, b))
		}
		if whole.Cmp(prod) != 0 {
			t.Fatalf("seed %d: |φ(B)| = %v but ∏ components = %v", seed, whole, prod)
		}
	}
}

func randomStructure(seed int64) *structure.Structure {
	rng := rand.New(rand.NewSource(seed))
	s := structure.New(edgeSig())
	n := 2 + rng.Intn(3)
	for i := 0; i < n; i++ {
		s.EnsureElem("e" + string(rune('0'+i)))
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if rng.Float64() < 0.4 {
				_ = s.AddTuple("E", i, j)
			}
		}
	}
	return s
}

// Entailment must be reflexive and transitive on a random sample (a
// preorder), and respected by conjunction: φ∧ψ ⊨ φ.
func TestEntailmentPreorder(t *testing.T) {
	lib := []logic.Var{"x", "y"}
	mk := func(atoms ...logic.Atom) PP {
		return mustPP(t, edgeSig(), lib, logic.Disjunct{Atoms: atoms})
	}
	ps := []PP{
		mk(atom("E", "x", "y")),
		mk(atom("E", "x", "y"), atom("E", "y", "x")),
		mk(atom("E", "y", "x")),
		mk(atom("E", "x", "x")),
	}
	for i, p := range ps {
		self, err := Entails(p, p)
		if err != nil {
			t.Fatal(err)
		}
		if !self {
			t.Fatalf("reflexivity fails at %d", i)
		}
	}
	for _, p := range ps {
		for _, q := range ps {
			conj, err := Conjoin(p, q)
			if err != nil {
				t.Fatal(err)
			}
			e1, err := Entails(conj, p)
			if err != nil {
				t.Fatal(err)
			}
			e2, err := Entails(conj, q)
			if err != nil {
				t.Fatal(err)
			}
			if !e1 || !e2 {
				t.Fatalf("conjunction must entail both conjuncts (%v, %v)", e1, e2)
			}
		}
	}
	// Transitivity on the sample.
	n := len(ps)
	ent := make([][]bool, n)
	for i := range ent {
		ent[i] = make([]bool, n)
		for j := range ent[i] {
			v, err := Entails(ps[i], ps[j])
			if err != nil {
				t.Fatal(err)
			}
			ent[i][j] = v
		}
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			for k := 0; k < n; k++ {
				if ent[i][j] && ent[j][k] && !ent[i][k] {
					t.Fatalf("transitivity fails at (%d,%d,%d)", i, j, k)
				}
			}
		}
	}
}
