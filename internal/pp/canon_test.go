package pp

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/logic"
	"repro/internal/structure"
)

// shuffledCopy returns the same formula with elements permuted and all
// variables renamed — counting equivalent by construction.
func shuffledCopy(t *testing.T, p PP, seed int64) PP {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	n := p.A.Size()
	perm := rng.Perm(n)
	// New structure with renamed, permuted elements.
	out := structure.New(p.A.Signature())
	names := make([]string, n)
	for newIdx := 0; newIdx < n; newIdx++ {
		names[newIdx] = "r" + string(rune('a'+newIdx))
	}
	old2new := make([]int, n)
	for old, newIdx := range perm {
		old2new[old] = newIdx
	}
	// Add in new order.
	for i := 0; i < n; i++ {
		if _, err := out.AddElem(names[i]); err != nil {
			t.Fatal(err)
		}
	}
	for _, r := range p.A.Signature().Rels() {
		for _, tp := range p.A.Tuples(r.Name) {
			nt := make([]int, len(tp))
			for j, v := range tp {
				nt[j] = old2new[v]
			}
			if err := out.AddTuple(r.Name, nt...); err != nil {
				t.Fatal(err)
			}
		}
	}
	var s []int
	for _, v := range p.S {
		s = append(s, old2new[v])
	}
	q, err := New(out, s)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func TestCanonicalKeyInvariantUnderShuffle(t *testing.T) {
	p := example22(t)
	k0, err := p.CanonicalKey()
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(0); seed < 10; seed++ {
		q := shuffledCopy(t, p, seed)
		k, err := q.CanonicalKey()
		if err != nil {
			t.Fatal(err)
		}
		if k != k0 {
			t.Fatalf("seed %d: canonical key changed under shuffle:\n%s\nvs\n%s", seed, k0, k)
		}
	}
}

func TestCanonicalKeySeparates(t *testing.T) {
	sig := edgeSig()
	lib := []logic.Var{"x", "y"}
	mk := func(atoms ...logic.Atom) PP {
		return mustPP(t, sig, lib, logic.Disjunct{Atoms: atoms})
	}
	edge := mk(atom("E", "x", "y"))
	twoCycle := mk(atom("E", "x", "y"), atom("E", "y", "x"))
	loopX := mk(atom("E", "x", "x"))
	keys := map[string]string{}
	for name, p := range map[string]PP{"edge": edge, "2cycle": twoCycle, "loopx": loopX} {
		k, err := p.CanonicalKey()
		if err != nil {
			t.Fatal(err)
		}
		for other, ok := range keys {
			if ok == k {
				t.Fatalf("%s and %s share a canonical key", name, other)
			}
		}
		keys[name] = k
	}
}

func TestCanonicalKeyLiberalVsQuantified(t *testing.T) {
	sig := edgeSig()
	// Same structure shape, different liberal sets, must differ:
	// E(x,y) with S={x,y} vs ∃y.E(x,y) with S={x}.
	p1 := mustPP(t, sig, []logic.Var{"x", "y"}, logic.Disjunct{Atoms: []logic.Atom{atom("E", "x", "y")}})
	p2 := mustPP(t, sig, []logic.Var{"x"}, logic.Disjunct{
		Exist: []logic.Var{"y"},
		Atoms: []logic.Atom{atom("E", "x", "y")},
	})
	k1, err := p1.CanonicalKey()
	if err != nil {
		t.Fatal(err)
	}
	k2, err := p2.CanonicalKey()
	if err != nil {
		t.Fatal(err)
	}
	if k1 == k2 {
		t.Fatal("liberal/quantified distinction lost in canonical key")
	}
}

// Property: on cored random formulas, canonical-key equality agrees with
// the Theorem 5.4 decision procedure.
func TestCanonicalAgreesWithRenamingEquivalence(t *testing.T) {
	sig := edgeSig()
	gen := func(seed int64) PP {
		rng := rand.New(rand.NewSource(seed))
		nVars := 2 + rng.Intn(2)
		vars := make([]logic.Var, nVars)
		for i := range vars {
			vars[i] = logic.Var("v" + string(rune('0'+i)))
		}
		nAtoms := 1 + rng.Intn(3)
		var atoms []logic.Atom
		for a := 0; a < nAtoms; a++ {
			atoms = append(atoms, atom("E", vars[rng.Intn(nVars)], vars[rng.Intn(nVars)]))
		}
		nFree := 1 + rng.Intn(nVars)
		d := logic.Disjunct{Exist: vars[nFree:], Atoms: atoms}
		p, err := FromDisjunct(sig, vars[:nFree], d)
		if err != nil {
			t.Fatal(err)
		}
		c, err := p.Core()
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	f := func(s1, s2 int64) bool {
		p, q := gen(s1), gen(s2)
		if len(p.S) != len(q.S) {
			return true // sizes differ: nothing to compare
		}
		viaHom, err := CountingEquivalent(p, q)
		if err != nil {
			return false
		}
		if p.A.Size() != q.A.Size() {
			// Cored and size-distinct: cannot be equivalent.
			return !viaHom
		}
		viaKey, err := CountingEquivalentCored(p, q)
		if err != nil {
			return false
		}
		return viaHom == viaKey
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestCanonicalKeyEmptyUniverse(t *testing.T) {
	if _, err := (PP{A: structure.New(edgeSig())}).CanonicalKey(); err == nil {
		t.Fatal("empty universe should error")
	}
}
