package pp

import (
	"testing"

	"repro/internal/logic"
	"repro/internal/structure"
)

func edgeSig() *structure.Signature {
	return structure.MustSignature(structure.RelSym{Name: "E", Arity: 2})
}

func exSig() *structure.Signature {
	return structure.MustSignature(
		structure.RelSym{Name: "E", Arity: 2},
		structure.RelSym{Name: "F", Arity: 2},
		structure.RelSym{Name: "G", Arity: 2},
	)
}

func mustPP(t *testing.T, sig *structure.Signature, lib []logic.Var, d logic.Disjunct) PP {
	t.Helper()
	p, err := FromDisjunct(sig, lib, d)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func atom(rel string, vars ...logic.Var) logic.Atom { return logic.Atom{Rel: rel, Args: vars} }

// example22 builds φ(x,x',y,z) = ∃y'∃u∃v∃w (E(x,x') ∧ E(y,y') ∧ F(u,v) ∧
// G(u,w)) from Example 2.2.
func example22(t *testing.T) PP {
	t.Helper()
	return mustPP(t, exSig(),
		[]logic.Var{"x", "x'", "y", "z"},
		logic.Disjunct{
			Exist: []logic.Var{"y'", "u", "v", "w"},
			Atoms: []logic.Atom{
				atom("E", "x", "x'"),
				atom("E", "y", "y'"),
				atom("F", "u", "v"),
				atom("G", "u", "w"),
			},
		})
}

func TestExample22PairView(t *testing.T) {
	p := example22(t)
	if p.A.Size() != 8 {
		t.Fatalf("universe size = %d, want 8 (x,x',y,z,y',u,v,w)", p.A.Size())
	}
	if len(p.S) != 4 {
		t.Fatalf("|S| = %d, want 4", len(p.S))
	}
	if len(p.A.Tuples("E")) != 2 || len(p.A.Tuples("F")) != 1 || len(p.A.Tuples("G")) != 1 {
		t.Fatal("relation contents wrong")
	}
	// z is isolated but in the universe.
	z := p.A.ElemIndex("z")
	if z < 0 {
		t.Fatal("z missing from universe")
	}
}

// Example 2.4: the four components of Example 2.2's formula.
func TestExample24Components(t *testing.T) {
	p := example22(t)
	comps := p.Components()
	if len(comps) != 4 {
		t.Fatalf("components = %d, want 4", len(comps))
	}
	// Classify components by their liberal names.
	var sawXX, sawY, sawZ, sawSentence bool
	for _, c := range comps {
		names := c.LibNames()
		switch {
		case len(names) == 2: // {x,x'}
			sawXX = true
			if c.IsSentence() {
				t.Fatal("ψ1(x,x') should be free")
			}
		case len(names) == 1 && names[0] == "y":
			sawY = true
			if c.A.Size() != 2 {
				t.Fatalf("ψ2 size = %d", c.A.Size())
			}
		case len(names) == 1 && names[0] == "z":
			sawZ = true
			// ψ3(z) = ⊤: no atoms.
			if c.A.NumTuples() != 0 {
				t.Fatal("ψ3(z) should have no atoms")
			}
			if !c.IsSentence() {
				t.Fatal("ψ3(z)=⊤ has free(φ)=∅ hence is a sentence")
			}
		case len(names) == 0:
			sawSentence = true
			if c.A.Size() != 3 {
				t.Fatalf("ψ4 size = %d, want 3 (u,v,w)", c.A.Size())
			}
		}
	}
	if !sawXX || !sawY || !sawZ || !sawSentence {
		t.Fatalf("missing components: xx=%v y=%v z=%v sent=%v", sawXX, sawY, sawZ, sawSentence)
	}
}

// Example 5.8: φ̂ removes the non-liberal component {u,v,w} but keeps the
// liberal ones (including the isolated liberal z).
func TestExample58Hat(t *testing.T) {
	p := example22(t)
	h, err := p.Hat()
	if err != nil {
		t.Fatal(err)
	}
	if h.A.Size() != 5 {
		t.Fatalf("φ̂ universe = %d, want 5 (x,x',y,y',z)", h.A.Size())
	}
	if h.A.ElemIndex("u") >= 0 || h.A.ElemIndex("v") >= 0 || h.A.ElemIndex("w") >= 0 {
		t.Fatal("φ̂ should drop u,v,w")
	}
	if h.A.ElemIndex("z") < 0 {
		t.Fatal("φ̂ must keep the isolated liberal z")
	}
	if len(h.S) != 4 {
		t.Fatalf("φ̂ |S| = %d, want 4", len(h.S))
	}
	if len(h.A.Tuples("E")) != 2 || len(h.A.Tuples("F")) != 0 {
		t.Fatal("φ̂ atoms wrong")
	}
}

func TestHatRequiresLiberal(t *testing.T) {
	sig := edgeSig()
	p := mustPP(t, sig, nil, logic.Disjunct{
		Exist: []logic.Var{"u", "v"},
		Atoms: []logic.Atom{atom("E", "u", "v")},
	})
	if _, err := p.Hat(); err == nil {
		t.Fatal("Hat of a non-liberal formula should error")
	}
}

// Example 5.2: φ1(x,y) = E(x,y) and φ2(w,z) = E(w,z) are counting
// equivalent (renaming) but not comparable for logical equivalence (their
// liberal variables differ).
func TestExample52CountingEquivalence(t *testing.T) {
	sig := edgeSig()
	p1 := mustPP(t, sig, []logic.Var{"x", "y"}, logic.Disjunct{Atoms: []logic.Atom{atom("E", "x", "y")}})
	p2 := mustPP(t, sig, []logic.Var{"w", "z"}, logic.Disjunct{Atoms: []logic.Atom{atom("E", "w", "z")}})
	eq, err := CountingEquivalent(p1, p2)
	if err != nil {
		t.Fatal(err)
	}
	if !eq {
		t.Fatal("Example 5.2: E(x,y) and E(w,z) must be counting equivalent")
	}
	// Logical equivalence comparison requires identical liberal names.
	if _, err := LogicallyEquivalent(p1, p2); err == nil {
		t.Fatal("logical equivalence across different liberal variables should error")
	}
}

func TestCountingEquivalenceNegative(t *testing.T) {
	sig := edgeSig()
	// E(x,y) vs E(x,y) ∧ E(y,x): not counting equivalent.
	p1 := mustPP(t, sig, []logic.Var{"x", "y"}, logic.Disjunct{Atoms: []logic.Atom{atom("E", "x", "y")}})
	p2 := mustPP(t, sig, []logic.Var{"x", "y"}, logic.Disjunct{Atoms: []logic.Atom{
		atom("E", "x", "y"), atom("E", "y", "x"),
	}})
	eq, err := CountingEquivalent(p1, p2)
	if err != nil {
		t.Fatal(err)
	}
	if eq {
		t.Fatal("E(x,y) vs E(x,y)∧E(y,x) must not be counting equivalent")
	}
	// Different |S| refutes immediately (Observation 5.5).
	p3 := mustPP(t, sig, []logic.Var{"x", "y", "z"}, logic.Disjunct{Atoms: []logic.Atom{atom("E", "x", "y")}})
	eq, err = CountingEquivalent(p1, p3)
	if err != nil {
		t.Fatal(err)
	}
	if eq {
		t.Fatal("different liberal counts must not be counting equivalent")
	}
}

// Example 5.7: φ1(x,y) = E(x,y) and φ2(x,y) = ∃z (E(x,y) ∧ F(z)) are
// semi-counting equivalent but not counting equivalent.
func TestExample57SemiCounting(t *testing.T) {
	sig := structure.MustSignature(
		structure.RelSym{Name: "E", Arity: 2},
		structure.RelSym{Name: "F", Arity: 1},
	)
	p1 := mustPP(t, sig, []logic.Var{"x", "y"}, logic.Disjunct{Atoms: []logic.Atom{atom("E", "x", "y")}})
	p2 := mustPP(t, sig, []logic.Var{"x", "y"}, logic.Disjunct{
		Exist: []logic.Var{"z"},
		Atoms: []logic.Atom{atom("E", "x", "y"), atom("F", "z")},
	})
	ce, err := CountingEquivalent(p1, p2)
	if err != nil {
		t.Fatal(err)
	}
	if ce {
		t.Fatal("Example 5.7: must not be counting equivalent")
	}
	sce, err := SemiCountingEquivalent(p1, p2)
	if err != nil {
		t.Fatal(err)
	}
	if !sce {
		t.Fatal("Example 5.7: must be semi-counting equivalent")
	}
}

func TestCoreCollapsesRedundancy(t *testing.T) {
	sig := edgeSig()
	// ∃u,v. E(x,u) ∧ E(x,v): core should identify u and v.
	p := mustPP(t, sig, []logic.Var{"x"}, logic.Disjunct{
		Exist: []logic.Var{"u", "v"},
		Atoms: []logic.Atom{atom("E", "x", "u"), atom("E", "x", "v")},
	})
	c, err := p.Core()
	if err != nil {
		t.Fatal(err)
	}
	if c.A.Size() != 2 {
		t.Fatalf("core size = %d, want 2", c.A.Size())
	}
	if len(c.S) != 1 || c.A.ElemName(c.S[0]) != "x" {
		t.Fatal("core lost the liberal variable")
	}
}

func TestCoreKeepsLiberals(t *testing.T) {
	sig := edgeSig()
	// E(x,y) ∧ E(x,z) with all of x,y,z liberal: nothing may collapse.
	p := mustPP(t, sig, []logic.Var{"x", "y", "z"}, logic.Disjunct{
		Atoms: []logic.Atom{atom("E", "x", "y"), atom("E", "x", "z")},
	})
	c, err := p.Core()
	if err != nil {
		t.Fatal(err)
	}
	if c.A.Size() != 3 {
		t.Fatalf("core size = %d, want 3 (liberals are pinned)", c.A.Size())
	}
}

func TestEntailment(t *testing.T) {
	sig := edgeSig()
	// ψ = E(x,y) ∧ E(y,x) entails φ = E(x,y).
	phi := mustPP(t, sig, []logic.Var{"x", "y"}, logic.Disjunct{Atoms: []logic.Atom{atom("E", "x", "y")}})
	psi := mustPP(t, sig, []logic.Var{"x", "y"}, logic.Disjunct{Atoms: []logic.Atom{
		atom("E", "x", "y"), atom("E", "y", "x"),
	}})
	got, err := Entails(psi, phi)
	if err != nil {
		t.Fatal(err)
	}
	if !got {
		t.Fatal("E(x,y)∧E(y,x) must entail E(x,y)")
	}
	got, err = Entails(phi, psi)
	if err != nil {
		t.Fatal(err)
	}
	if got {
		t.Fatal("E(x,y) must not entail E(x,y)∧E(y,x)")
	}
}

func TestEntailmentSentence(t *testing.T) {
	sig := edgeSig()
	// θ() = ∃u. E(u,u); ψ(x,y) = E(x,y) ∧ E(y,x)... does not entail θ.
	// ψ'(x,y) = E(x,x) does entail θ.
	lib := []logic.Var{"x", "y"}
	theta := mustPP(t, sig, lib, logic.Disjunct{
		Exist: []logic.Var{"u"},
		Atoms: []logic.Atom{atom("E", "u", "u")},
	})
	psi := mustPP(t, sig, lib, logic.Disjunct{Atoms: []logic.Atom{atom("E", "x", "y"), atom("E", "y", "x")}})
	psiLoop := mustPP(t, sig, lib, logic.Disjunct{Atoms: []logic.Atom{atom("E", "x", "x")}})
	if got, _ := Entails(psi, theta); got {
		t.Fatal("2-cycle must not entail ∃loop")
	}
	if got, _ := Entails(psiLoop, theta); !got {
		t.Fatal("E(x,x) must entail ∃loop")
	}
}

func TestExistsComponentsAndContract(t *testing.T) {
	sig := edgeSig()
	// Path query: E(s,u) ∧ E(u,t), S = {s,t}, u quantified.
	p := mustPP(t, sig, []logic.Var{"s", "t"}, logic.Disjunct{
		Exist: []logic.Var{"u"},
		Atoms: []logic.Atom{atom("E", "s", "u"), atom("E", "u", "t")},
	})
	d, err := p.Core()
	if err != nil {
		t.Fatal(err)
	}
	ecs := ExistsComponents(d)
	if len(ecs) != 1 {
		t.Fatalf("∃-components = %d, want 1", len(ecs))
	}
	if len(ecs[0].Interface) != 2 {
		t.Fatalf("interface size = %d, want 2", len(ecs[0].Interface))
	}
	cg, svars := ContractGraph(d)
	if len(svars) != 2 {
		t.Fatalf("contract vertices = %d", len(svars))
	}
	if !cg.HasEdge(0, 1) {
		t.Fatal("contract graph must connect s and t through the ∃-component")
	}
}

func TestContractGraphStar(t *testing.T) {
	sig := edgeSig()
	// Star: ∃c. E(c,x1) ∧ E(c,x2) ∧ E(c,x3): contract graph = K3.
	p := mustPP(t, sig, []logic.Var{"x1", "x2", "x3"}, logic.Disjunct{
		Exist: []logic.Var{"c"},
		Atoms: []logic.Atom{atom("E", "c", "x1"), atom("E", "c", "x2"), atom("E", "c", "x3")},
	})
	d, err := p.Core()
	if err != nil {
		t.Fatal(err)
	}
	cg, _ := ContractGraph(d)
	if cg.NumEdges() != 3 {
		t.Fatalf("star contract graph edges = %d, want 3 (K3)", cg.NumEdges())
	}
}

func TestContractGraphDisconnectedQuantified(t *testing.T) {
	sig := edgeSig()
	// E(x,y) with both liberal plus a quantified sentence part
	// ∃u,v. E(u,v): contract graph on {x,y} has just the G[S] edge.
	p := mustPP(t, sig, []logic.Var{"x", "y"}, logic.Disjunct{
		Exist: []logic.Var{"u", "v"},
		Atoms: []logic.Atom{atom("E", "x", "y"), atom("E", "u", "v")},
	})
	// Note: cored, the sentence part collapses into the liberal edge (u,v
	// maps onto x,y), so the contract graph is a single edge.
	d, err := p.Core()
	if err != nil {
		t.Fatal(err)
	}
	cg, sv := ContractGraph(d)
	if len(sv) != 2 || !cg.HasEdge(0, 1) {
		t.Fatal("contract graph should be the edge {x,y}")
	}
	if d.A.Size() != 2 {
		t.Fatalf("core should collapse the quantified copy, size = %d", d.A.Size())
	}
}

func TestConjoin(t *testing.T) {
	sig := edgeSig()
	lib := []logic.Var{"x", "y"}
	p1 := mustPP(t, sig, lib, logic.Disjunct{
		Exist: []logic.Var{"u"},
		Atoms: []logic.Atom{atom("E", "x", "u")},
	})
	p2 := mustPP(t, sig, lib, logic.Disjunct{
		Exist: []logic.Var{"u"},
		Atoms: []logic.Atom{atom("E", "u", "y")},
	})
	c, err := Conjoin(p1, p2)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.S) != 2 {
		t.Fatalf("conjunction |S| = %d", len(c.S))
	}
	if c.A.Size() != 4 {
		t.Fatalf("conjunction size = %d, want 4 (x,y,u~0,u~1)", c.A.Size())
	}
	if len(c.A.Tuples("E")) != 2 {
		t.Fatalf("conjunction tuples = %d", len(c.A.Tuples("E")))
	}
}

func TestConjoinIdempotentShape(t *testing.T) {
	sig := edgeSig()
	lib := []logic.Var{"x", "y"}
	p := mustPP(t, sig, lib, logic.Disjunct{Atoms: []logic.Atom{atom("E", "x", "y")}})
	c, err := Conjoin(p, p)
	if err != nil {
		t.Fatal(err)
	}
	// Atoms coincide (quantifier-free), so the conjunction is the formula
	// itself (the duplicate tuple is deduplicated).
	if c.A.Size() != 2 || len(c.A.Tuples("E")) != 1 {
		t.Fatalf("self-conjunction should collapse: size=%d tuples=%d", c.A.Size(), len(c.A.Tuples("E")))
	}
	eq, err := CountingEquivalent(c, p)
	if err != nil {
		t.Fatal(err)
	}
	if !eq {
		t.Fatal("φ∧φ must be counting equivalent to φ")
	}
}

func TestHomOrderMinimal(t *testing.T) {
	sig := edgeSig()
	lib := []logic.Var{"x", "y"}
	// p1 = E(x,y); p2 = E(x,y)∧E(y,x).  hom(A1→A2) exists, so p1 is
	// NOT minimal; p2 receives no hom from p1? A1 (one edge) maps into A2
	// (2-cycle) — so p2 has an incoming hom and p1 receives one from A2?
	// A2 (2-cycle) does not map into A1 (single edge, no cycle): p1 is
	// minimal.
	p1 := mustPP(t, sig, lib, logic.Disjunct{Atoms: []logic.Atom{atom("E", "x", "y")}})
	p2 := mustPP(t, sig, lib, logic.Disjunct{Atoms: []logic.Atom{atom("E", "x", "y"), atom("E", "y", "x")}})
	i, err := HomOrderMinimal([]PP{p1, p2})
	if err != nil {
		t.Fatal(err)
	}
	if i != 0 {
		t.Fatalf("minimal = %d, want 0 (single edge receives no hom from the 2-cycle)", i)
	}
}

func TestToDisjunctRoundTrip(t *testing.T) {
	p := example22(t)
	d := p.ToDisjunct()
	if len(d.Exist) != 4 || len(d.Atoms) != 4 {
		t.Fatalf("round trip: exist=%d atoms=%d", len(d.Exist), len(d.Atoms))
	}
	p2, err := FromDisjunct(p.A.Signature(), []logic.Var{"x", "x'", "y", "z"}, d)
	if err != nil {
		t.Fatal(err)
	}
	eq, err := LogicallyEquivalent(p, p2)
	if err != nil {
		t.Fatal(err)
	}
	if !eq {
		t.Fatal("round trip must preserve logical equivalence")
	}
}

func TestInvariantKeyBuckets(t *testing.T) {
	sig := edgeSig()
	p1 := mustPP(t, sig, []logic.Var{"x", "y"}, logic.Disjunct{Atoms: []logic.Atom{atom("E", "x", "y")}})
	p2 := mustPP(t, sig, []logic.Var{"w", "z"}, logic.Disjunct{Atoms: []logic.Atom{atom("E", "w", "z")}})
	if p1.InvariantKey() != p2.InvariantKey() {
		t.Fatal("renaming-equivalent formulas must share the invariant key")
	}
}
