// Package lin provides exact linear algebra over big rationals: Gaussian
// elimination and Vandermonde solves.  The paper's oracle reductions
// (Example 4.3, Theorem 5.20, Theorem 5.4's proof) recover counts by
// solving linear systems whose matrices are Vandermonde matrices built
// from counts on product structures; exact rational arithmetic keeps the
// recovered counts exact integers.
package lin
