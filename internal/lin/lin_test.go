package lin

import (
	"math/big"
	"testing"
	"testing/quick"
)

func rat(n int64) *big.Rat { return new(big.Rat).SetInt64(n) }

func TestSolveIdentity(t *testing.T) {
	m := [][]*big.Rat{{rat(1), rat(0)}, {rat(0), rat(1)}}
	x, err := Solve(m, []*big.Rat{rat(3), rat(-7)})
	if err != nil {
		t.Fatal(err)
	}
	if x[0].Cmp(rat(3)) != 0 || x[1].Cmp(rat(-7)) != 0 {
		t.Fatalf("x = %v", x)
	}
}

func TestSolveGeneral(t *testing.T) {
	// 2x + y = 5; x - y = 1 → x = 2, y = 1.
	m := [][]*big.Rat{{rat(2), rat(1)}, {rat(1), rat(-1)}}
	x, err := Solve(m, []*big.Rat{rat(5), rat(1)})
	if err != nil {
		t.Fatal(err)
	}
	if x[0].Cmp(rat(2)) != 0 || x[1].Cmp(rat(1)) != 0 {
		t.Fatalf("x = %v", x)
	}
}

func TestSolvePivoting(t *testing.T) {
	// Leading zero forces a row swap.
	m := [][]*big.Rat{{rat(0), rat(1)}, {rat(1), rat(0)}}
	x, err := Solve(m, []*big.Rat{rat(4), rat(9)})
	if err != nil {
		t.Fatal(err)
	}
	if x[0].Cmp(rat(9)) != 0 || x[1].Cmp(rat(4)) != 0 {
		t.Fatalf("x = %v", x)
	}
}

func TestSolveSingular(t *testing.T) {
	m := [][]*big.Rat{{rat(1), rat(2)}, {rat(2), rat(4)}}
	if _, err := Solve(m, []*big.Rat{rat(1), rat(2)}); err == nil {
		t.Fatal("singular matrix should error")
	}
}

func TestSolveShapeErrors(t *testing.T) {
	if _, err := Solve([][]*big.Rat{{rat(1)}, {rat(2)}}, []*big.Rat{rat(1), rat(2)}); err == nil {
		t.Fatal("ragged matrix should error")
	}
	if _, err := Solve([][]*big.Rat{{rat(1)}}, []*big.Rat{rat(1), rat(2)}); err == nil {
		t.Fatal("rhs length mismatch should error")
	}
	x, err := Solve(nil, nil)
	if err != nil || x != nil {
		t.Fatal("empty system should be trivially solvable")
	}
}

func TestSolveDoesNotMutateInputs(t *testing.T) {
	m := [][]*big.Rat{{rat(2), rat(1)}, {rat(1), rat(-1)}}
	r := []*big.Rat{rat(5), rat(1)}
	if _, err := Solve(m, r); err != nil {
		t.Fatal(err)
	}
	if m[0][0].Cmp(rat(2)) != 0 || r[0].Cmp(rat(5)) != 0 {
		t.Fatal("Solve mutated its inputs")
	}
}

func TestSolveVandermonde(t *testing.T) {
	// Recover x = (2, 3, 5) from moments against nodes (1, 2, 4):
	// Σ x_j = 10; Σ n_j x_j = 28; Σ n_j² x_j = 94.
	nodes := []*big.Int{big.NewInt(1), big.NewInt(2), big.NewInt(4)}
	rhs := []*big.Int{big.NewInt(10), big.NewInt(28), big.NewInt(94)}
	x, err := SolveVandermonde(nodes, rhs)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range []int64{2, 3, 5} {
		v, err := RatInt(x[i])
		if err != nil {
			t.Fatal(err)
		}
		if v.Int64() != want {
			t.Fatalf("x[%d] = %v, want %d", i, v, want)
		}
	}
}

func TestSolveVandermondeRepeatedNode(t *testing.T) {
	nodes := []*big.Int{big.NewInt(2), big.NewInt(2)}
	rhs := []*big.Int{big.NewInt(1), big.NewInt(2)}
	if _, err := SolveVandermonde(nodes, rhs); err == nil {
		t.Fatal("repeated node should error")
	}
}

func TestRatInt(t *testing.T) {
	if v, err := RatInt(new(big.Rat).SetInt64(42)); err != nil || v.Int64() != 42 {
		t.Fatalf("RatInt(42) = %v, %v", v, err)
	}
	if _, err := RatInt(big.NewRat(1, 2)); err == nil {
		t.Fatal("non-integer should error")
	}
}

func TestInterpolatePolynomial(t *testing.T) {
	// p(x) = 1 + 2x + 3x²: points at x = 0,1,2.
	xs := []*big.Rat{rat(0), rat(1), rat(2)}
	ys := []*big.Rat{rat(1), rat(6), rat(17)}
	cs, err := InterpolatePolynomial(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range []int64{1, 2, 3} {
		if cs[i].Cmp(rat(want)) != 0 {
			t.Fatalf("coeff[%d] = %v, want %d", i, cs[i], want)
		}
	}
	if _, err := InterpolatePolynomial(xs, ys[:2]); err == nil {
		t.Fatal("length mismatch should error")
	}
}

// Property: Vandermonde solves round-trip (build rhs from known x, solve,
// compare) for random small instances with distinct nodes.
func TestVandermondeRoundTripProperty(t *testing.T) {
	f := func(a, b, c int8, x0, x1, x2 int16) bool {
		// Nodes must be distinct.
		n0, n1, n2 := int64(a), int64(a)+1+abs64(int64(b))%5, int64(a)+7+abs64(int64(c))%5
		nodes := []*big.Int{big.NewInt(n0), big.NewInt(n1), big.NewInt(n2)}
		xs := []*big.Int{big.NewInt(int64(x0)), big.NewInt(int64(x1)), big.NewInt(int64(x2))}
		rhs := make([]*big.Int, 3)
		for i := 0; i < 3; i++ {
			s := new(big.Int)
			for j := 0; j < 3; j++ {
				p := new(big.Int).Exp(nodes[j], big.NewInt(int64(i)), nil)
				s.Add(s, p.Mul(p, xs[j]))
			}
			rhs[i] = s
		}
		sol, err := SolveVandermonde(nodes, rhs)
		if err != nil {
			return false
		}
		for j := 0; j < 3; j++ {
			v, err := RatInt(sol[j])
			if err != nil || v.Cmp(xs[j]) != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func abs64(x int64) int64 {
	if x < 0 {
		return -x
	}
	return x
}
