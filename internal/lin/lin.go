package lin

import (
	"fmt"
	"math/big"
)

// Solve solves the n×n system m·x = rhs by Gaussian elimination with
// partial (first non-zero) pivoting over exact rationals.  m and rhs are
// not modified.  Returns an error if the matrix is singular.
func Solve(m [][]*big.Rat, rhs []*big.Rat) ([]*big.Rat, error) {
	n := len(m)
	if n == 0 {
		return nil, nil
	}
	for i, row := range m {
		if len(row) != n {
			return nil, fmt.Errorf("lin: row %d has %d entries, want %d", i, len(row), n)
		}
	}
	if len(rhs) != n {
		return nil, fmt.Errorf("lin: rhs has %d entries, want %d", len(rhs), n)
	}
	// Working copies.
	a := make([][]*big.Rat, n)
	for i := range a {
		a[i] = make([]*big.Rat, n+1)
		for j := 0; j < n; j++ {
			a[i][j] = new(big.Rat).Set(m[i][j])
		}
		a[i][n] = new(big.Rat).Set(rhs[i])
	}
	for col := 0; col < n; col++ {
		pivot := -1
		for r := col; r < n; r++ {
			if a[r][col].Sign() != 0 {
				pivot = r
				break
			}
		}
		if pivot == -1 {
			return nil, fmt.Errorf("lin: singular matrix (column %d)", col)
		}
		a[col], a[pivot] = a[pivot], a[col]
		inv := new(big.Rat).Inv(a[col][col])
		for j := col; j <= n; j++ {
			a[col][j].Mul(a[col][j], inv)
		}
		for r := 0; r < n; r++ {
			if r == col || a[r][col].Sign() == 0 {
				continue
			}
			f := new(big.Rat).Set(a[r][col])
			for j := col; j <= n; j++ {
				t := new(big.Rat).Mul(f, a[col][j])
				a[r][j].Sub(a[r][j], t)
			}
		}
	}
	x := make([]*big.Rat, n)
	for i := range x {
		x[i] = a[i][n]
	}
	return x, nil
}

// SolveVandermonde solves Σ_j nodes[j]^i · x_j = rhs[i] for i = 0..n-1.
// The nodes must be pairwise distinct (the matrix is then non-singular,
// the property the distinguishing-structure lemmas arrange).
func SolveVandermonde(nodes []*big.Int, rhs []*big.Int) ([]*big.Rat, error) {
	n := len(nodes)
	if len(rhs) != n {
		return nil, fmt.Errorf("lin: %d nodes but %d values", n, len(rhs))
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if nodes[i].Cmp(nodes[j]) == 0 {
				return nil, fmt.Errorf("lin: repeated Vandermonde node %v", nodes[i])
			}
		}
	}
	m := make([][]*big.Rat, n)
	r := make([]*big.Rat, n)
	for i := 0; i < n; i++ {
		m[i] = make([]*big.Rat, n)
		for j := 0; j < n; j++ {
			p := new(big.Int).Exp(nodes[j], big.NewInt(int64(i)), nil)
			m[i][j] = new(big.Rat).SetInt(p)
		}
		r[i] = new(big.Rat).SetInt(rhs[i])
	}
	return Solve(m, r)
}

// RatInt converts an exact-integer rational to a big.Int, failing if the
// value is not integral (which would indicate an upstream bug in a
// count-recovery pipeline).
func RatInt(r *big.Rat) (*big.Int, error) {
	if !r.IsInt() {
		return nil, fmt.Errorf("lin: expected integer, got %v", r)
	}
	return new(big.Int).Set(r.Num()), nil
}

// InterpolatePolynomial returns the coefficients (degree 0 upward) of the
// unique polynomial of degree < n through the n points (xs[i], ys[i]).
// Used to reason about counts that are polynomials in padding parameters
// (proof of Theorem 5.9).
func InterpolatePolynomial(xs, ys []*big.Rat) ([]*big.Rat, error) {
	n := len(xs)
	if len(ys) != n {
		return nil, fmt.Errorf("lin: %d xs but %d ys", n, len(ys))
	}
	m := make([][]*big.Rat, n)
	for i := 0; i < n; i++ {
		m[i] = make([]*big.Rat, n)
		p := new(big.Rat).SetInt64(1)
		for j := 0; j < n; j++ {
			m[i][j] = new(big.Rat).Set(p)
			p = new(big.Rat).Mul(p, xs[i])
		}
	}
	return Solve(m, ys)
}
