package cluster

import (
	"net/http"
	"sync"
	"time"

	"repro/internal/serve"
)

// handleStats answers the aggregated cluster /stats view: the shards'
// StatsResponses fan in concurrently and merge into one StatsResponse
// of the single-node shape — admission counters, query memo hits,
// delta counters and durability counters summed, query rows merged by
// (query, engine), the structure list the logical cluster view — with
// the per-shard breakdown and router telemetry under Cluster.  A
// dashboard written against one epserved node reads a whole cluster
// unchanged.
func (co *Coordinator) handleStats(w http.ResponseWriter, r *http.Request) {
	type shardRes struct {
		stats serve.StatsResponse
		err   error
	}
	results := make([]shardRes, len(co.cfg.Shards))
	var wg sync.WaitGroup
	for i, node := range co.cfg.Shards {
		wg.Add(1)
		go func(i int, node string) {
			defer wg.Done()
			st, err := co.client(node).Stats(r.Context())
			results[i] = shardRes{stats: st, err: err}
		}(i, node)
	}
	wg.Wait()

	merged := serve.StatsResponse{UptimeSeconds: time.Since(co.started).Seconds()}
	cluster := &serve.ClusterStats{
		Replicas:       co.cfg.Replicas,
		VirtualNodes:   co.ring.VNodes(),
		ScatterGathers: co.scatters.Load(),
		Failovers:      co.failovers.Load(),
		Rerouted:       co.rerouted.Load(),
	}
	co.mu.RLock()
	cluster.Partitioned = len(co.parts)
	co.mu.RUnlock()

	type qkey struct{ query, engine string }
	queryAt := make(map[qkey]int)
	for i, node := range co.cfg.Shards {
		ss := serve.ShardStats{Node: node}
		if results[i].err != nil {
			cluster.Shards = append(cluster.Shards, ss)
			continue
		}
		st := results[i].stats
		ss.Healthy = true
		ss.Structures = len(st.Structures)
		ss.Admission = st.Admission
		ss.Delta = st.Delta
		ss.Subscriptions = st.Subscriptions
		for _, q := range st.Queries {
			ss.CountCacheHits += q.CountCacheHits
			ss.CountCacheMisses += q.CountCacheMisses
			k := qkey{q.Query, q.Engine}
			if at, ok := queryAt[k]; ok {
				m := &merged.Queries[at]
				m.Plans += q.Plans
				m.SharedPlans += q.SharedPlans
				m.CountCacheHits += q.CountCacheHits
				m.CountCacheMisses += q.CountCacheMisses
			} else {
				queryAt[k] = len(merged.Queries)
				merged.Queries = append(merged.Queries, q)
			}
		}
		cluster.Shards = append(cluster.Shards, ss)

		merged.Admission.InFlight += st.Admission.InFlight
		merged.Admission.MaxInFlight += st.Admission.MaxInFlight
		merged.Admission.Admitted += st.Admission.Admitted
		merged.Admission.Rejected += st.Admission.Rejected
		merged.Admission.Deadline += st.Admission.Deadline
		merged.Workers += st.Workers
		merged.Sessions.Sessions += st.Sessions.Sessions
		merged.Sessions.Cap += st.Sessions.Cap
		merged.Sessions.Evictions += st.Sessions.Evictions
		merged.Delta.Advances += st.Delta.Advances
		merged.Delta.FullRecounts += st.Delta.FullRecounts
		merged.Subscriptions += st.Subscriptions
		if st.Durability.Enabled {
			merged.Durability.Enabled = true
			if merged.Durability.Fsync == "" {
				merged.Durability.Fsync = st.Durability.Fsync
			}
			merged.Durability.WALBytes += st.Durability.WALBytes
			merged.Durability.Appends += st.Durability.Appends
			merged.Durability.Creates += st.Durability.Creates
			merged.Durability.Compactions += st.Durability.Compactions
			merged.Durability.Syncs += st.Durability.Syncs
			merged.Durability.RecoveredStructures += st.Durability.RecoveredStructures
			merged.Durability.RecoveredSnapshots += st.Durability.RecoveredSnapshots
			merged.Durability.RecoveredRecords += st.Durability.RecoveredRecords
			merged.Durability.TruncatedTail = merged.Durability.TruncatedTail || st.Durability.TruncatedTail
		}
	}
	merged.Structures = co.mergedStructures(r.Context())
	merged.Cluster = cluster
	writeJSON(w, http.StatusOK, merged)
}
