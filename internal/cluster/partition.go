package cluster

import (
	"fmt"
	"math/big"
	"sort"
	"strings"

	"repro/internal/eptrans"
	"repro/internal/parser"
	"repro/internal/pp"
	"repro/internal/structure"
)

// Partitioned structures: one logical structure whose domain is split
// across shards as a disjoint union B = B_0 ⊎ … ⊎ B_{k-1} with no tuple
// spanning parts.  The split is along connected components of the
// structure's Gaifman graph (elements adjacent when they co-occur in a
// tuple), so the no-spanning invariant holds by construction.
//
// Counting decomposes exactly over such a partition.  The coordinator
// compiles the ep-query through the same Theorem 3.1 front-end a
// single node uses (eptrans.Compile: normalization, the cancelled
// inclusion–exclusion expansion φ*af, the sentence-entailment filter)
// and then splits every surviving pp-term φ⁻af into the connected
// components of ITS Gaifman graph.  For a disjoint union:
//
//   - a connected component with ≥ 1 liberal variable has answer count
//     Σ_i count(C, B_i) — a homomorphism maps a connected query into a
//     single part, and parts have disjoint domains, so per-part answer
//     sets are disjoint and exhaustive;
//   - a fully-quantified connected component is a satisfiability bit:
//     it holds on B iff it holds on some part;
//   - a liberal variable in no atom ranges over the whole domain,
//     contributing a factor |B| = Σ_i |B_i| per variable;
//   - a quantified variable in no atom needs only a non-empty domain.
//
// A term's count is the product of its component counts times
// |B|^{isolated liberal}; the ep count is the signed coefficient sum
// over terms, exactly as on one node; sentence disjuncts short-circuit
// to |B|^|lib| when every component holds in some part.  The
// recombined count is bit-identical to the single-node count — the
// differential suite and the C1 experiment assert that on every query.

// partComponent is one connected component of some term, rendered back
// to query text so shards can count it through their ordinary /count
// path (sharing plans and memos with every other query).
type partComponent struct {
	// query is the rendered component query.  Liberal variables of the
	// component form the head; for a fully-quantified component one
	// variable is promoted to the head so the per-part count is > 0
	// exactly when the component is satisfiable there.
	query string
	// boolean marks a promoted (fully-quantified) component: its
	// recombined value is a 0/1 satisfiability bit, not a count.
	boolean bool
}

// partTerm is one φ⁻af term's recombination recipe.
type partTerm struct {
	coeff *big.Int
	// isoFree is the number of liberal variables in no atom (factor
	// |B|^isoFree with the LOGICAL domain size).
	isoFree int
	// needElem marks a quantified variable in no atom: the term
	// vanishes on an empty domain.
	needElem bool
	// comps indexes the plan's deduplicated component list.
	comps []int
}

// partSentence is one sentence disjunct's recipe: it holds iff every
// component holds in some part (and the domain is non-empty when the
// disjunct mentions any variable).
type partSentence struct {
	needElem bool
	comps    []int
}

// partPlan is a compiled recombination plan for (query, signature):
// which component queries to scatter and how to reassemble their
// per-part counts into the exact logical count.
type partPlan struct {
	lib       int // |lib|: the sentence short-circuit exponent
	comps     []partComponent
	terms     []partTerm
	sentences []partSentence
}

// buildPartitionPlan compiles the query over the signature and derives
// the per-component scatter/recombine recipe described above.
func buildPartitionPlan(src string, sig *structure.Signature) (*partPlan, error) {
	q, err := parser.ParseQuery(src)
	if err != nil {
		return nil, err
	}
	c, err := eptrans.Compile(q, sig)
	if err != nil {
		return nil, err
	}
	plan := &partPlan{lib: len(q.Lib)}
	dedup := make(map[string]int)
	intern := func(pc partComponent) int {
		if i, ok := dedup[pc.query]; ok {
			return i
		}
		dedup[pc.query] = len(plan.comps)
		plan.comps = append(plan.comps, pc)
		return len(plan.comps) - 1
	}
	for _, t := range c.Minus {
		comps, isoFree, needElem, err := decompose(t.Formula)
		if err != nil {
			return nil, err
		}
		pt := partTerm{coeff: new(big.Int).Set(t.Coeff), isoFree: isoFree, needElem: needElem}
		for _, pc := range comps {
			pt.comps = append(pt.comps, intern(pc))
		}
		plan.terms = append(plan.terms, pt)
	}
	for _, th := range c.Sentences {
		comps, _, _, err := decompose(th)
		if err != nil {
			return nil, err
		}
		// Any element of the disjunct (isolated or not) needs an image,
		// so a non-empty disjunct cannot hold on an empty domain.
		ps := partSentence{needElem: th.A.Size() > 0}
		for _, pc := range comps {
			ps.comps = append(ps.comps, intern(pc))
		}
		plan.sentences = append(plan.sentences, ps)
	}
	return plan, nil
}

// decompose splits a pp-term into the connected components of its
// Gaifman graph, rendered as component queries, plus the isolated-
// variable bookkeeping (liberal count, quantified presence).
func decompose(p pp.PP) ([]partComponent, int, bool, error) {
	a := p.A
	n := a.Size()
	inS := make([]bool, n)
	for _, v := range p.S {
		inS[v] = true
	}
	// Union-find over elements; a tuple links all its positions.
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(x, y int) {
		rx, ry := find(x), find(y)
		if rx != ry {
			parent[ry] = rx
		}
	}
	inTuple := make([]bool, n)
	for _, r := range a.Signature().Rels() {
		a.ForEachTuple(r.Name, func(t []int) bool {
			for _, v := range t {
				inTuple[v] = true
				union(t[0], v)
			}
			return true
		})
	}
	isoFree, needElem := 0, false
	groups := make(map[int][]int)
	var roots []int
	for i := 0; i < n; i++ {
		if !inTuple[i] {
			if inS[i] {
				isoFree++
			} else {
				needElem = true
			}
			continue
		}
		r := find(i)
		if _, ok := groups[r]; !ok {
			roots = append(roots, r)
		}
		groups[r] = append(groups[r], i)
	}
	sort.Ints(roots)
	out := make([]partComponent, 0, len(roots))
	for _, r := range roots {
		pc, err := renderComponent(a, groups[r], inS)
		if err != nil {
			return nil, 0, false, err
		}
		out = append(out, pc)
	}
	return out, isoFree, needElem, nil
}

// renderComponent serializes one connected component back into query
// syntax over fresh variable names v<index>.  Components with no
// liberal variable promote their lowest variable into the head
// (satisfiability-by-counting; see partComponent.boolean).
func renderComponent(a *structure.Structure, elems []int, inS []bool) (partComponent, error) {
	inComp := make(map[int]bool, len(elems))
	for _, e := range elems {
		inComp[e] = true
	}
	var head, exist []int
	for _, e := range elems { // elems ascend by construction
		if inS[e] {
			head = append(head, e)
		} else {
			exist = append(exist, e)
		}
	}
	boolean := false
	if len(head) == 0 {
		// Fully quantified: promote the first variable.  The per-part
		// count then equals the number of elements extendable to a
		// homomorphism — positive exactly when the component holds.
		boolean = true
		head, exist = exist[:1], exist[1:]
	}
	v := func(e int) string { return fmt.Sprintf("v%d", e) }
	var atoms []string
	for _, r := range a.Signature().Rels() {
		a.ForEachTuple(r.Name, func(t []int) bool {
			if !inComp[t[0]] {
				return true
			}
			args := make([]string, len(t))
			for i, e := range t {
				args[i] = v(e)
			}
			atoms = append(atoms, fmt.Sprintf("%s(%s)", r.Name, strings.Join(args, ",")))
			return true
		})
	}
	if len(atoms) == 0 {
		return partComponent{}, fmt.Errorf("cluster: component with no atoms")
	}
	headNames := make([]string, len(head))
	for i, e := range head {
		headNames[i] = v(e)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "c(%s) := ", strings.Join(headNames, ","))
	if len(exist) > 0 {
		existNames := make([]string, len(exist))
		for i, e := range exist {
			existNames[i] = v(e)
		}
		fmt.Fprintf(&b, "exists %s . ", strings.Join(existNames, ", "))
	}
	b.WriteString(strings.Join(atoms, " & "))
	return partComponent{query: b.String(), boolean: boolean}, nil
}

// combine reassembles the logical count from the summed per-part
// component counts (compTotals[i] = Σ_parts count of plan.comps[i]) and
// the logical domain size.
func (pl *partPlan) combine(compTotals []*big.Int, totalSize int) *big.Int {
	sizeB := big.NewInt(int64(totalSize))
	for _, s := range pl.sentences {
		holds := !(s.needElem && totalSize == 0)
		for _, ci := range s.comps {
			if compTotals[ci].Sign() == 0 {
				holds = false
				break
			}
		}
		if holds {
			return new(big.Int).Exp(sizeB, big.NewInt(int64(pl.lib)), nil)
		}
	}
	total := new(big.Int)
	tmp := new(big.Int)
	for _, t := range pl.terms {
		if t.needElem && totalSize == 0 {
			continue
		}
		tmp.Exp(sizeB, big.NewInt(int64(t.isoFree)), nil)
		tmp.Mul(tmp, t.coeff)
		for _, ci := range t.comps {
			c := compTotals[ci]
			if pl.comps[ci].boolean {
				if c.Sign() == 0 {
					tmp.SetInt64(0)
					break
				}
				continue // satisfied: factor 1
			}
			tmp.Mul(tmp, c)
			if tmp.Sign() == 0 {
				break
			}
		}
		total.Add(total, tmp)
	}
	return total
}

// componentQueries lists the plan's deduplicated component query texts
// in scatter order (telemetry and tests).
func (pl *partPlan) componentQueries() []string {
	out := make([]string, len(pl.comps))
	for i, c := range pl.comps {
		out[i] = c.query
	}
	return out
}

// partitionElems splits a structure's elements into `parts` groups of
// whole Gaifman components, balancing tuple load greedily (largest
// component first onto the lightest part).  Groups may be empty when
// the structure has fewer components than parts.  Deterministic for a
// given structure.
func partitionElems(b *structure.Structure, parts int) [][]int {
	n := b.Size()
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for _, r := range b.Signature().Rels() {
		b.ForEachTuple(r.Name, func(t []int) bool {
			for _, v := range t {
				rx, ry := find(t[0]), find(v)
				if rx != ry {
					parent[ry] = rx
				}
			}
			return true
		})
	}
	tupleLoad := make([]int, n)
	for _, r := range b.Signature().Rels() {
		b.ForEachTuple(r.Name, func(t []int) bool {
			tupleLoad[find(t[0])]++
			return true
		})
	}
	type comp struct {
		elems  []int
		tuples int
	}
	byRoot := make(map[int]*comp)
	var order []int
	for i := 0; i < n; i++ {
		r := find(i)
		c, ok := byRoot[r]
		if !ok {
			c = &comp{}
			byRoot[r] = c
			order = append(order, r)
		}
		c.elems = append(c.elems, i)
	}
	for _, r := range order {
		byRoot[r].tuples = tupleLoad[r]
	}
	comps := make([]*comp, 0, len(order))
	for _, r := range order {
		comps = append(comps, byRoot[r])
	}
	sort.SliceStable(comps, func(i, j int) bool {
		if comps[i].tuples != comps[j].tuples {
			return comps[i].tuples > comps[j].tuples
		}
		if len(comps[i].elems) != len(comps[j].elems) {
			return len(comps[i].elems) > len(comps[j].elems)
		}
		return comps[i].elems[0] < comps[j].elems[0]
	})
	bins := make([][]int, parts)
	binTuples := make([]int, parts)
	binElems := make([]int, parts)
	for _, c := range comps {
		best := 0
		for i := 1; i < parts; i++ {
			if binTuples[i] < binTuples[best] ||
				(binTuples[i] == binTuples[best] && binElems[i] < binElems[best]) {
				best = i
			}
		}
		bins[best] = append(bins[best], c.elems...)
		binTuples[best] += c.tuples
		binElems[best] += len(c.elems)
	}
	for i := range bins {
		sort.Ints(bins[i])
	}
	return bins
}
