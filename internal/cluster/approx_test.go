package cluster

import (
	"context"
	"errors"
	"fmt"
	"math/big"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/serve"
	"repro/internal/workload"
)

const triQuery = "tri(x,y,z) := E(x,y) & E(y,z) & E(z,x)"

// erFacts renders an ER graph as a fact file.
func erFacts(t *testing.T, n int, p float64, seed int64) string {
	t.Helper()
	facts, err := workload.GraphStructure(workload.ER(n, p, seed)).FactsString()
	if err != nil {
		t.Fatal(err)
	}
	return facts
}

// TestClusterApproxRoundTrip drives mode=approx through the coordinator:
// the estimate schema survives routing, the estimate lands near the
// routed exact count, and a fixed seed is reproducible across requests.
func TestClusterApproxRoundTrip(t *testing.T) {
	f := startFleet(t, 3)
	_, cc := startCoordinator(t, f, 2)
	ctx := context.Background()

	if _, err := cc.CreateStructure(ctx, "g", erFacts(t, 40, 0.25, 3), nil); err != nil {
		t.Fatal(err)
	}
	exact, _, err := cc.Count(ctx, triQuery, "g")
	if err != nil {
		t.Fatal(err)
	}
	if exact.Sign() == 0 {
		t.Fatal("degenerate instance: exact count is zero")
	}

	est, resp, err := cc.CountApprox(ctx, triQuery, "g", 0.1, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Estimate != resp.Count || resp.Estimate == "" {
		t.Fatalf("estimate %q must mirror count %q through the router", resp.Estimate, resp.Count)
	}
	if resp.Case != "sharp-clique" && resp.Case != "clique" {
		t.Fatalf("routed case = %q, want a hard case", resp.Case)
	}
	if resp.Samples == 0 || resp.RelError <= 0 || resp.Confidence != 0.95 {
		t.Fatalf("routed approx telemetry missing: %+v", resp)
	}
	ef, _ := new(big.Float).SetInt(exact).Float64()
	gf, _ := new(big.Float).SetInt(est).Float64()
	if rel := (gf - ef) / ef; rel > 0.3 || rel < -0.3 {
		t.Fatalf("routed estimate %v too far from exact %v", est, exact)
	}

	req := serve.CountRequest{Query: triQuery, Structure: "g", Mode: "approx", Seed: 9}
	e1, _, err := cc.CountWith(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	e2, _, err := cc.CountWith(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if e1.Cmp(e2) != 0 {
		t.Fatalf("seeded routed estimate diverged: %v vs %v", e1, e2)
	}
}

// TestClusterApproxBatchArrays checks the scatter-gather batch path
// carries the per-structure approx arrays back through the coordinator.
func TestClusterApproxBatchArrays(t *testing.T) {
	f := startFleet(t, 3)
	_, cc := startCoordinator(t, f, 1)
	ctx := context.Background()

	names := []string{"b1", "b2", "b3", "b4"}
	for i, name := range names {
		if _, err := cc.CreateStructure(ctx, name, erFacts(t, 28+2*i, 0.25, int64(i+1)), nil); err != nil {
			t.Fatal(err)
		}
	}
	ests, resp, err := cc.CountBatchWith(ctx, serve.CountBatchRequest{
		Query: triQuery, Structures: names, Mode: "approx", Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(ests) != len(names) || len(resp.Estimates) != len(names) ||
		len(resp.RelErrors) != len(names) || len(resp.Confidences) != len(names) ||
		len(resp.Cases) != len(names) || len(resp.Samples) != len(names) {
		t.Fatalf("approx batch arrays misaligned: %+v", resp)
	}
	for i := range names {
		if resp.Estimates[i] != resp.Counts[i] {
			t.Fatalf("structure %d: estimate %q != count %q", i, resp.Estimates[i], resp.Counts[i])
		}
		if resp.Cases[i] == "" || resp.Samples[i] == 0 {
			t.Fatalf("structure %d: missing approx telemetry: case=%q samples=%d",
				i, resp.Cases[i], resp.Samples[i])
		}
		exact, _, err := cc.Count(ctx, triQuery, names[i])
		if err != nil {
			t.Fatal(err)
		}
		ef, _ := new(big.Float).SetInt(exact).Float64()
		gf, _ := new(big.Float).SetInt(ests[i]).Float64()
		if ef == 0 {
			continue
		}
		if rel := (gf - ef) / ef; rel > 0.4 || rel < -0.4 {
			t.Fatalf("structure %d: routed estimate %v too far from exact %v", i, ests[i], exact)
		}
	}
}

// TestClusterApproxFailover kills the replica an approx read is pinned
// to and checks the estimate fails over to the surviving replica — and,
// being seeded, reproduces the pre-failure estimate bit-for-bit.
func TestClusterApproxFailover(t *testing.T) {
	f := startFleet(t, 2)
	co, cc := startCoordinator(t, f, 2)
	ctx := context.Background()

	if _, err := cc.CreateStructure(ctx, "g", erFacts(t, 30, 0.3, 5), nil); err != nil {
		t.Fatal(err)
	}
	req := serve.CountRequest{Query: triQuery, Structure: "g", Mode: "approx", Seed: 21}
	v0, r0, err := cc.CountWith(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if r0.Samples == 0 {
		t.Fatalf("expected a sampled estimate before failover: %+v", r0)
	}

	owners, start := co.replicaAt(triQuery, "g")
	for i, url := range f.urls {
		if url == owners[start] {
			f.ts[i].Close()
		}
	}

	v1, r1, err := cc.CountWith(ctx, req)
	if err != nil {
		t.Fatalf("approx count after shard death: %v", err)
	}
	if v1.Cmp(v0) != 0 {
		t.Fatalf("failover estimate = %v, want the seeded %v", v1, v0)
	}
	if r1.Case != r0.Case || r1.Samples != r0.Samples {
		t.Fatalf("failover telemetry drifted: %+v vs %+v", r1, r0)
	}
}

// TestClusterHardExactAdmissionPassthrough runs shards with an exact
// admission limit and checks the typed 422 (with its trichotomy case)
// crosses the coordinator unchanged — and is NOT treated as a failover
// trigger, since every replica would reject identically.
func TestClusterHardExactAdmissionPassthrough(t *testing.T) {
	var urls []string
	for i := 0; i < 2; i++ {
		srv := serve.New(serve.Config{HardExactLimit: 5})
		ts := httptest.NewServer(srv.Handler())
		t.Cleanup(ts.Close)
		urls = append(urls, ts.URL)
	}
	co, err := New(Config{Shards: urls, Replicas: 2, VNodes: 32})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(co.Handler())
	t.Cleanup(ts.Close)
	cc := serve.NewClient(ts.URL, nil)
	ctx := context.Background()

	if _, err := cc.CreateStructure(ctx, "g", erFacts(t, 30, 0.3, 5), nil); err != nil {
		t.Fatal(err)
	}
	_, _, err = cc.Count(ctx, triQuery, "g")
	var ae *serve.APIError
	if !errors.As(err, &ae) {
		t.Fatalf("want routed *APIError, got %T: %v", err, err)
	}
	if ae.Status != http.StatusUnprocessableEntity {
		t.Fatalf("routed status = %d, want 422", ae.Status)
	}
	if ae.Case != "sharp-clique" && ae.Case != "clique" {
		t.Fatalf("routed rejection lost its case: %q", ae.Case)
	}

	// Approx mode crosses the same admission gate.
	if _, _, err := cc.CountApprox(ctx, triQuery, "g", 0.1, 0.05); err != nil {
		t.Fatalf("approx mode rejected through the router: %v", err)
	}
}

// TestClusterApproxPartitionedRejected checks the documented limit:
// approx mode on a partitioned structure is a 400, since the
// inclusion–exclusion recombination needs exact part counts.
func TestClusterApproxPartitionedRejected(t *testing.T) {
	f := startFleet(t, 3)
	_, cc := startCoordinator(t, f, 1)
	ctx := context.Background()

	var facts string
	for i := 0; i < 9; i++ {
		facts += fmt.Sprintf("E(a%d,b%d). ", i, i)
	}
	if _, err := cc.CreateStructureWith(ctx, serve.CreateStructureRequest{
		Name: "pg", Facts: facts, Partitions: 3,
	}); err != nil {
		t.Fatal(err)
	}

	var ae *serve.APIError
	_, _, err := cc.CountWith(ctx, serve.CountRequest{Query: triQuery, Structure: "pg", Mode: "approx"})
	if !errors.As(err, &ae) || ae.Status != http.StatusBadRequest {
		t.Fatalf("partitioned approx count: want 400, got %v", err)
	}
	_, _, err = cc.CountBatchWith(ctx, serve.CountBatchRequest{
		Query: triQuery, Structures: []string{"pg"}, Mode: "approx",
	})
	if !errors.As(err, &ae) || ae.Status != http.StatusBadRequest {
		t.Fatalf("partitioned approx batch: want 400, got %v", err)
	}
}
