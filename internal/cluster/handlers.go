package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/serve"
)

// The coordinator's HTTP layer.  It mounts the exact route set of a
// single-node serve.Server, so serve.Client (and every tool built on
// it) talks to a cluster without knowing it is one.

// routes registers the coordinator's handlers on its mux.
func (co *Coordinator) routes() {
	co.mux.HandleFunc("POST /structures", co.handleCreateStructure)
	co.mux.HandleFunc("GET /structures", co.handleListStructures)
	co.mux.HandleFunc("GET /structures/{name}", co.handleGetStructure)
	co.mux.HandleFunc("POST /structures/{name}/facts", co.handleAppendFacts)
	co.mux.HandleFunc("POST /count", co.handleCount)
	co.mux.HandleFunc("POST /countBatch", co.handleCountBatch)
	co.mux.HandleFunc("POST /subscriptions", co.handleSubscribe)
	co.mux.HandleFunc("GET /subscriptions", co.handleListSubscriptions)
	co.mux.HandleFunc("GET /subscriptions/{id}", co.handleSubscriptionCount)
	co.mux.HandleFunc("DELETE /subscriptions/{id}", co.handleUnsubscribe)
	co.mux.HandleFunc("GET /stats", co.handleStats)
	co.mux.HandleFunc("GET /healthz", co.handleHealthz)
}

// ---- request plumbing (mirrors serve's unexported helpers) ----

const maxRequestBytes = 64 << 20

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, serve.ErrorResponse{Error: fmt.Sprintf(format, args...)})
}

func decodeJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeError(w, http.StatusBadRequest, "invalid request body: %v", err)
		return false
	}
	return true
}

// statusError is a routed-request failure that already knows its HTTP
// status (validation failures, partitioned-name collisions).
type statusError struct {
	status int
	msg    string
}

func (e *statusError) Error() string { return e.msg }

// writeRoutedError maps a routing failure onto the response: a
// statusError carries its own status, an upstream serve.APIError passes
// through status and message unchanged (so the coordinator is
// transparent), and anything else — a transport failure after all
// replicas were tried — becomes 502.
func writeRoutedError(w http.ResponseWriter, err error) {
	var se *statusError
	if errors.As(err, &se) {
		writeError(w, se.status, "%s", se.msg)
		return
	}
	var ae *serve.APIError
	if errors.As(err, &ae) {
		if ae.Status == http.StatusServiceUnavailable {
			w.Header().Set("Retry-After", "1")
		}
		msg := ae.Msg
		if msg == "" {
			msg = ae.Error()
		}
		// Typed admission rejections keep their trichotomy case on the
		// way through, so cluster clients can switch to approx mode.
		writeJSON(w, ae.Status, serve.ErrorResponse{Error: msg, Case: ae.Case})
		return
	}
	writeError(w, http.StatusBadGateway, "%v", err)
}

// requestCtx bounds a routed counting request by the coordinator's
// deadline, optionally lowered by the request's timeout_ms.
func (co *Coordinator) requestCtx(r *http.Request, timeoutMillis int64) (context.Context, context.CancelFunc) {
	d := co.cfg.RequestTimeout
	if timeoutMillis > 0 {
		if td := time.Duration(timeoutMillis) * time.Millisecond; td < d {
			d = td
		}
	}
	return context.WithTimeout(r.Context(), d)
}

// ---- structures ----

func (co *Coordinator) handleCreateStructure(w http.ResponseWriter, r *http.Request) {
	var req serve.CreateStructureRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	if strings.Contains(req.Name, partSep) {
		writeError(w, http.StatusBadRequest, "structure name must not contain %q (reserved for partition parts)", partSep)
		return
	}
	if req.Partitions < 0 {
		writeError(w, http.StatusBadRequest, "partitions must be ≥ 0")
		return
	}
	if co.partitionedFor(req.Name) != nil {
		writeError(w, http.StatusConflict, "structure %q already exists", req.Name)
		return
	}
	if req.Partitions > 1 {
		info, err := co.createPartitioned(r.Context(), req)
		if err != nil {
			if errors.Is(err, errDuplicatePartitioned) {
				writeError(w, http.StatusConflict, "structure %q already exists", req.Name)
				return
			}
			var ae *serve.APIError
			if errors.As(err, &ae) {
				writeRoutedError(w, err)
				return
			}
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
		writeJSON(w, http.StatusCreated, info)
		return
	}
	req.Partitions = 0
	info, err := co.createOnOwners(r.Context(), req)
	if err != nil {
		writeRoutedError(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, info)
}

func (co *Coordinator) handleListStructures(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, serve.StructuresResponse{Structures: co.mergedStructures(r.Context())})
}

func (co *Coordinator) handleGetStructure(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if p := co.partitionedFor(name); p != nil {
		writeJSON(w, http.StatusOK, p.logicalInfo())
		return
	}
	owners := co.ring.Owners(name, co.cfg.Replicas)
	var lastErr error
	for _, node := range owners {
		info, err := co.client(node).Structure(r.Context(), name)
		if err == nil {
			writeJSON(w, http.StatusOK, info)
			return
		}
		lastErr = err
		if !failoverable(err) {
			break
		}
	}
	writeRoutedError(w, lastErr)
}

func (co *Coordinator) handleAppendFacts(w http.ResponseWriter, r *http.Request) {
	var req serve.AppendFactsRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	name := r.PathValue("name")
	if co.partitionedFor(name) != nil {
		writeError(w, http.StatusBadRequest,
			"partitioned structure %q is immutable: an append could join Gaifman components across parts and break the disjoint-union invariant the exact recombination relies on", name)
		return
	}
	if isPartName(name) {
		writeError(w, http.StatusBadRequest, "structure %q is an internal partition part", name)
		return
	}
	// The same idempotency id propagates the batch to every replica
	// (and across coordinator retries): the per-structure batch memo on
	// each shard makes the multi-replica apply exactly-once.
	id := req.BatchID
	if id == "" {
		id = co.genBatchID()
	}
	owners := co.ring.Owners(name, co.cfg.Replicas)
	var primary serve.StructureInfo
	for i, node := range owners {
		info, err := co.client(node).AppendFactsBatch(r.Context(), name, req.Facts, id)
		if err != nil {
			writeRoutedError(w, err)
			return
		}
		if i == 0 {
			primary = info
		}
	}
	// Echo what the client sent (empty when the id was coordinator-
	// minted), matching single-node response semantics.
	primary.BatchID = req.BatchID
	writeJSON(w, http.StatusOK, primary)
}

// ---- counting ----

func (co *Coordinator) handleCount(w http.ResponseWriter, r *http.Request) {
	var req serve.CountRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	ctx, cancel := co.requestCtx(r, req.TimeoutMillis)
	defer cancel()
	if p := co.partitionedFor(req.Structure); p != nil {
		if req.Mode == "approx" {
			writeError(w, http.StatusBadRequest,
				"approx mode is not supported on partitioned structures (inclusion–exclusion recombination needs exact part counts)")
			return
		}
		start := time.Now()
		v, err := co.partitionedCount(ctx, p, req.Query, req.Engine, req.TimeoutMillis)
		if err != nil {
			writeRoutedError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, serve.CountResponse{
			Count:     v.String(),
			ElapsedUS: time.Since(start).Microseconds(),
		})
		return
	}
	resp, err := co.countOne(ctx, req, "")
	if err != nil {
		writeRoutedError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (co *Coordinator) handleCountBatch(w http.ResponseWriter, r *http.Request) {
	var req serve.CountBatchRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	if len(req.Structures) == 0 {
		writeError(w, http.StatusBadRequest, "structures must not be empty")
		return
	}
	ctx, cancel := co.requestCtx(r, req.TimeoutMillis)
	defer cancel()
	start := time.Now()
	counts := make([]string, len(req.Structures))
	versions := make([]uint64, len(req.Structures))
	var plainIdx []int
	var partIdx []int
	for i, name := range req.Structures {
		if co.partitionedFor(name) != nil {
			partIdx = append(partIdx, i)
		} else {
			plainIdx = append(plainIdx, i)
		}
	}
	approxMode := req.Mode == "approx"
	if approxMode && len(partIdx) > 0 {
		writeError(w, http.StatusBadRequest,
			"approx mode is not supported on partitioned structures (inclusion–exclusion recombination needs exact part counts)")
		return
	}
	var estimates []string
	var relErrors []float64
	var confidences []float64
	var cases []string
	var samples []int
	if approxMode {
		estimates = make([]string, len(req.Structures))
		relErrors = make([]float64, len(req.Structures))
		confidences = make([]float64, len(req.Structures))
		cases = make([]string, len(req.Structures))
		samples = make([]int, len(req.Structures))
	}
	var wg sync.WaitGroup
	var errMu sync.Mutex
	var firstErr error
	setErr := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
	}
	if len(plainIdx) > 0 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			names := make([]string, len(plainIdx))
			for j, i := range plainIdx {
				names[j] = req.Structures[i]
			}
			base := req
			base.Structures = nil
			results, err := co.scatterBatch(ctx, base, names)
			if err != nil {
				setErr(err)
				return
			}
			for j, i := range plainIdx {
				counts[i] = results[j].count
				versions[i] = results[j].version
				if approxMode {
					estimates[i] = results[j].estimate
					relErrors[i] = results[j].relErr
					confidences[i] = results[j].confidence
					cases[i] = results[j].caseStr
					samples[i] = results[j].samples
				}
			}
		}()
	}
	for _, i := range partIdx {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			p := co.partitionedFor(req.Structures[i])
			v, err := co.partitionedCount(ctx, p, req.Query, req.Engine, req.TimeoutMillis)
			if err != nil {
				setErr(err)
				return
			}
			counts[i] = v.String()
		}(i)
	}
	wg.Wait()
	if firstErr != nil {
		writeRoutedError(w, firstErr)
		return
	}
	writeJSON(w, http.StatusOK, serve.CountBatchResponse{
		Counts:      counts,
		Versions:    versions,
		ElapsedUS:   time.Since(start).Microseconds(),
		Estimates:   estimates,
		RelErrors:   relErrors,
		Confidences: confidences,
		Cases:       cases,
		Samples:     samples,
	})
}

// ---- subscriptions ----

// encodeSubID prefixes an upstream subscription id with its shard's
// index ("s2~sub-7"), so later reads route straight back to the shard
// maintaining the count.
func encodeSubID(nodeIdx int, upstream string) string {
	return fmt.Sprintf("s%d~%s", nodeIdx, upstream)
}

// decodeSubID splits a cluster subscription id into shard node and
// upstream id.
func (co *Coordinator) decodeSubID(id string) (node, upstream string, err error) {
	rest, ok := strings.CutPrefix(id, "s")
	if ok {
		if idxStr, up, ok2 := strings.Cut(rest, "~"); ok2 {
			if idx, aerr := strconv.Atoi(idxStr); aerr == nil && idx >= 0 && idx < len(co.cfg.Shards) {
				return co.cfg.Shards[idx], up, nil
			}
		}
	}
	return "", "", fmt.Errorf("unknown subscription %q", id)
}

func (co *Coordinator) handleSubscribe(w http.ResponseWriter, r *http.Request) {
	var req serve.SubscribeRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	if co.partitionedFor(req.Structure) != nil {
		writeError(w, http.StatusBadRequest,
			"subscriptions are not supported on partitioned structures (they are immutable; a plain /count is already exact)")
		return
	}
	// Subscriptions live on the primary owner: the maintained count and
	// its delta state stay on one shard.
	primary := co.ring.Owners(req.Structure, co.cfg.Replicas)[0]
	info, err := co.client(primary).SubscribeWith(r.Context(), req)
	if err != nil {
		writeRoutedError(w, err)
		return
	}
	info.ID = encodeSubID(co.nodeIdx[primary], info.ID)
	writeJSON(w, http.StatusCreated, info)
}

func (co *Coordinator) handleSubscriptionCount(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	node, upstream, err := co.decodeSubID(id)
	if err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	_, info, err := co.client(node).SubscriptionCount(r.Context(), upstream)
	if err != nil {
		writeRoutedError(w, err)
		return
	}
	info.ID = id
	writeJSON(w, http.StatusOK, info)
}

func (co *Coordinator) handleListSubscriptions(w http.ResponseWriter, r *http.Request) {
	lists := make([][]serve.SubscriptionInfo, len(co.cfg.Shards))
	var wg sync.WaitGroup
	for i, node := range co.cfg.Shards {
		wg.Add(1)
		go func(i int, node string) {
			defer wg.Done()
			subs, err := co.client(node).Subscriptions(r.Context())
			if err != nil {
				return // degraded listing, like /structures
			}
			for j := range subs {
				subs[j].ID = encodeSubID(i, subs[j].ID)
			}
			lists[i] = subs
		}(i, node)
	}
	wg.Wait()
	var out []serve.SubscriptionInfo
	for _, l := range lists {
		out = append(out, l...)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].ID < out[b].ID })
	writeJSON(w, http.StatusOK, serve.SubscriptionsResponse{Subscriptions: out})
}

func (co *Coordinator) handleUnsubscribe(w http.ResponseWriter, r *http.Request) {
	node, upstream, err := co.decodeSubID(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	if err := co.client(node).Unsubscribe(r.Context(), upstream); err != nil {
		writeRoutedError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
}

// ---- health ----

// handleHealthz fans the health check out to every shard: the cluster
// is ready only when every shard answers ready; otherwise 503 with a
// degraded state naming the live fraction, so load balancers keep
// traffic off a partially-up cluster while operators see how partial.
func (co *Coordinator) handleHealthz(w http.ResponseWriter, r *http.Request) {
	oks := make([]bool, len(co.cfg.Shards))
	var wg sync.WaitGroup
	for i, node := range co.cfg.Shards {
		wg.Add(1)
		go func(i int, node string) {
			defer wg.Done()
			oks[i] = co.client(node).Healthz(r.Context()) == nil
		}(i, node)
	}
	wg.Wait()
	up := 0
	for _, ok := range oks {
		if ok {
			up++
		}
	}
	if up == len(oks) {
		writeJSON(w, http.StatusOK, serve.HealthzResponse{OK: true, State: "ready"})
		return
	}
	w.Header().Set("Retry-After", "1")
	writeJSON(w, http.StatusServiceUnavailable, serve.HealthzResponse{
		OK:    false,
		State: fmt.Sprintf("degraded (%d/%d shards ready)", up, len(oks)),
	})
}
