package cluster

import (
	"fmt"
	"math/big"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/count"
	"repro/internal/parser"
	"repro/internal/structure"
	"repro/internal/workload"
)

// countDirect counts a query on one structure through the ordinary
// single-node pipeline — the ground truth the recombination must match
// bit-for-bit.
func countDirect(t *testing.T, src string, b *structure.Structure) *big.Int {
	t.Helper()
	q, err := parser.ParseQuery(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	c, err := core.NewCounter(q, b.Signature(), count.EngineFPT)
	if err != nil {
		t.Fatalf("compile %q: %v", src, err)
	}
	v, err := c.Count(b)
	if err != nil {
		t.Fatalf("count %q: %v", src, err)
	}
	return v
}

// recombinedCount runs the full partitioned pipeline in-process: split
// the structure into Gaifman-component parts, count every plan
// component on every part directly, and reassemble with combine.
func recombinedCount(t *testing.T, src string, b *structure.Structure, parts int) *big.Int {
	t.Helper()
	pl, err := buildPartitionPlan(src, b.Signature())
	if err != nil {
		t.Fatalf("plan %q: %v", src, err)
	}
	bins := partitionElems(b, parts)
	pbs := make([]*structure.Structure, len(bins))
	for i, bin := range bins {
		pbs[i], _ = b.Induced(bin)
	}
	totals := make([]*big.Int, len(pl.comps))
	for ci := range pl.comps {
		sum := new(big.Int)
		for _, pb := range pbs {
			// Empty bins are skipped, as the coordinator skips creating
			// empty parts: a connected component has no homomorphism into
			// an empty domain, so the part contributes 0.
			if pb.Size() == 0 {
				continue
			}
			sum.Add(sum, countDirect(t, pl.comps[ci].query, pb))
		}
		totals[ci] = sum
	}
	return pl.combine(totals, b.Size())
}

// multiComponentStructure builds a graph of `clusters` random clusters
// (edges only within a cluster) plus `isolated` tuple-less elements —
// several Gaifman components by construction, so a partition into
// `parts` bins genuinely spreads data.
func multiComponentStructure(seed int64, clusters, size int, p float64, isolated int) *structure.Structure {
	rng := rand.New(rand.NewSource(seed))
	s := structure.New(workload.EdgeSig())
	for c := 0; c < clusters; c++ {
		ids := make([]int, size)
		for i := range ids {
			ids[i] = s.EnsureElem(fmt.Sprintf("c%dn%d", c, i))
		}
		for i := 0; i < size; i++ {
			for j := 0; j < size; j++ {
				if rng.Float64() < p {
					_ = s.AddTuple("E", ids[i], ids[j])
				}
			}
		}
	}
	for k := 0; k < isolated; k++ {
		s.EnsureElem(fmt.Sprintf("iso%d", k))
	}
	return s
}

// partitionQueries is the differential battery: connected and
// disconnected pp-queries, a sentence, disjuncts with isolated liberal
// variables, a fully-quantified (boolean-promoted) component, and a
// random ep-query — every branch of the recombination law.
func partitionQueries() []string {
	return []string{
		workload.FreePathQuery(2).String(),
		workload.PathQuery(2).String(),
		workload.CliqueQuery(3).String(),
		workload.CliqueSentence(3).String(),
		workload.StarQuery(3).String(),
		"tri(x,y,z) := E(x,y) & E(y,z) & E(z,x)",
		"mix(x,y) := E(x,y) | E(x,x)",
		"boolcomp(x) := exists u, v . E(x,u) & E(v,v)",
		"twocomp(x,y) := exists u . E(x,u) & E(y,y)",
		workload.RandomEPQuery(workload.EdgeSig(), 2, 4, 2, 3, 11).String(),
	}
}

// TestPartitionElemsInvariants checks the split is a partition of the
// domain in whole Gaifman components: bins are disjoint, cover every
// element, and no tuple spans bins.
func TestPartitionElemsInvariants(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		b := workload.RandomStructure(workload.EdgeSig(), 10, 0.12, seed)
		for _, parts := range []int{1, 2, 3, 7} {
			bins := partitionElems(b, parts)
			if len(bins) != parts {
				t.Fatalf("got %d bins, want %d", len(bins), parts)
			}
			binOf := make([]int, b.Size())
			for i := range binOf {
				binOf[i] = -1
			}
			for bi, bin := range bins {
				for _, e := range bin {
					if binOf[e] != -1 {
						t.Fatalf("element %d in bins %d and %d", e, binOf[e], bi)
					}
					binOf[e] = bi
				}
			}
			for e, bi := range binOf {
				if bi == -1 {
					t.Fatalf("element %d in no bin", e)
				}
			}
			for _, r := range b.Signature().Rels() {
				b.ForEachTuple(r.Name, func(tu []int) bool {
					for _, v := range tu {
						if binOf[v] != binOf[tu[0]] {
							t.Fatalf("tuple %v spans bins %d and %d", tu, binOf[tu[0]], binOf[v])
						}
					}
					return true
				})
			}
		}
	}
}

// TestPartitionDifferential is the exactness proof by differential
// testing: for random structures (connected, multi-component, with
// isolated elements, empty) and every query in the battery, the
// recombined count over 1..5 parts is bit-identical to the single-
// structure count.
func TestPartitionDifferential(t *testing.T) {
	structs := []*structure.Structure{
		workload.RandomStructure(workload.EdgeSig(), 8, 0.15, 1),
		workload.RandomStructure(workload.EdgeSig(), 9, 0.25, 2),
		multiComponentStructure(3, 3, 4, 0.5, 2),
		multiComponentStructure(4, 4, 3, 0.7, 0),
	}
	for si, b := range structs {
		for _, src := range partitionQueries() {
			want := countDirect(t, src, b)
			for _, parts := range []int{1, 2, 3, 5} {
				got := recombinedCount(t, src, b, parts)
				if got.Cmp(want) != 0 {
					t.Fatalf("struct %d (%d elems), %d parts, query %q: recombined %v, direct %v",
						si, b.Size(), parts, src, got, want)
				}
			}
		}
	}
}

// TestPartitionPlanShape pins structural properties of plans: a
// disconnected-term query yields ≥ 2 components, fully-quantified
// components are boolean-promoted, and component queries are
// deduplicated across terms.
func TestPartitionPlanShape(t *testing.T) {
	sig := workload.EdgeSig()
	pl, err := buildPartitionPlan("twocomp(x,y) := exists u . E(x,u) & E(y,y)", sig)
	if err != nil {
		t.Fatal(err)
	}
	if len(pl.comps) < 2 {
		t.Fatalf("disconnected term produced %d components: %v", len(pl.comps), pl.componentQueries())
	}
	pl, err = buildPartitionPlan("b(x) := exists u, v . E(x,u) & E(v,v)", sig)
	if err != nil {
		t.Fatal(err)
	}
	hasBool := false
	for _, c := range pl.comps {
		if c.boolean {
			hasBool = true
		}
	}
	if !hasBool {
		t.Fatalf("fully-quantified component not boolean-promoted: %v", pl.componentQueries())
	}
	seen := map[string]bool{}
	for _, c := range pl.comps {
		if seen[c.query] {
			t.Fatalf("duplicate component query %q", c.query)
		}
		seen[c.query] = true
	}
}
