package cluster

import (
	"fmt"
	"testing"
)

// TestRingOwners pins the basic ring contract: Owner is Owners' head,
// Owners returns distinct nodes, and n clamps to the node count.
func TestRingOwners(t *testing.T) {
	nodes := []string{"n0", "n1", "n2", "n3", "n4"}
	r, err := NewRing(nodes, 32)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		key := fmt.Sprintf("structure-%d", i)
		owners := r.Owners(key, 3)
		if len(owners) != 3 {
			t.Fatalf("Owners(%q, 3) returned %d nodes", key, len(owners))
		}
		if owners[0] != r.Owner(key) {
			t.Fatalf("Owners(%q)[0] = %q, Owner = %q", key, owners[0], r.Owner(key))
		}
		seen := map[string]bool{}
		for _, o := range owners {
			if seen[o] {
				t.Fatalf("Owners(%q, 3) repeated node %q", key, o)
			}
			seen[o] = true
		}
		if got := r.Owners(key, 99); len(got) != len(nodes) {
			t.Fatalf("Owners(%q, 99) = %d nodes, want %d (clamped)", key, len(got), len(nodes))
		}
	}
}

// TestRingConfigErrors pins the constructor's validation.
func TestRingConfigErrors(t *testing.T) {
	if _, err := NewRing(nil, 8); err == nil {
		t.Fatal("empty node list accepted")
	}
	if _, err := NewRing([]string{"a", ""}, 8); err == nil {
		t.Fatal("empty node name accepted")
	}
	if _, err := NewRing([]string{"a", "a"}, 8); err == nil {
		t.Fatal("duplicate node accepted")
	}
}

// TestRingStabilityUnderGrowth is the consistent-hashing property test:
// adding one node to an N-node ring must (a) only ever move a key TO
// the new node — no key may shuffle between pre-existing nodes — and
// (b) move roughly the expected 1/(N+1) fraction, not more than double
// it.  Plain modulo hashing fails (a) catastrophically (it remaps
// ~N/(N+1) of all keys), which is exactly the failure mode the ring
// exists to prevent.
func TestRingStabilityUnderGrowth(t *testing.T) {
	for _, n := range []int{2, 4, 8} {
		nodes := make([]string, n)
		for i := range nodes {
			nodes[i] = fmt.Sprintf("http://shard%d:8080", i)
		}
		before, err := NewRing(nodes, 64)
		if err != nil {
			t.Fatal(err)
		}
		added := fmt.Sprintf("http://shard%d:8080", n)
		after, err := NewRing(append(append([]string(nil), nodes...), added), 64)
		if err != nil {
			t.Fatal(err)
		}
		const keys = 20000
		moved := 0
		for i := 0; i < keys; i++ {
			key := fmt.Sprintf("structure-%d", i)
			a, b := before.Owner(key), after.Owner(key)
			if a == b {
				continue
			}
			if b != added {
				t.Fatalf("n=%d: key %q moved %q → %q, but only moves to the added node %q are allowed",
					n, key, a, b, added)
			}
			moved++
		}
		expected := float64(keys) / float64(n+1)
		if f := float64(moved); f > 2*expected {
			t.Fatalf("n=%d: %d/%d keys remapped; expected ≈%.0f (≤ 2x tolerated)", n, moved, keys, expected)
		}
		if moved == 0 {
			t.Fatalf("n=%d: no key remapped to the added node — the node is unreachable", n)
		}
	}
}

// TestRingBalance sanity-checks the vnode load split: with 64 virtual
// nodes per shard no node should own a wildly disproportionate share.
func TestRingBalance(t *testing.T) {
	nodes := []string{"a", "b", "c", "d"}
	r, err := NewRing(nodes, 64)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	const keys = 20000
	for i := 0; i < keys; i++ {
		counts[r.Owner(fmt.Sprintf("key-%d", i))]++
	}
	for _, n := range nodes {
		share := float64(counts[n]) / keys
		if share < 0.08 || share > 0.50 {
			t.Fatalf("node %q owns %.1f%% of keys; vnode balance is off (%v)", n, 100*share, counts)
		}
	}
}
