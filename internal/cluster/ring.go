package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// The consistent-hash ring that maps structure names to shard nodes.
// Every node is projected onto the ring at VNodes pseudo-random points
// (virtual nodes); a name is owned by the first node point at or after
// its own hash, walking clockwise.  Virtual nodes smooth the load split
// and — the property the cluster relies on for membership changes —
// keep the mapping stable: adding one node to an N-node ring remaps an
// expected 1/(N+1) fraction of names and leaves everything else in
// place (property-tested in ring_test.go).

// ringPoint is one virtual node: a position on the 64-bit ring and the
// index of the owning node.
type ringPoint struct {
	hash uint64
	node int
}

// Ring is an immutable-after-build consistent-hash ring over a fixed
// node list.  Build with NewRing; membership changes build a new Ring
// (they are rare — the routing hot path is Owner/Owners, which is
// read-only and safe for concurrent use).
type Ring struct {
	nodes  []string
	vnodes int
	points []ringPoint
}

// NewRing builds a ring over the given nodes with vnodes virtual nodes
// each (≤ 0 selects 64).  Node names must be unique and non-empty.
func NewRing(nodes []string, vnodes int) (*Ring, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("cluster: ring needs at least one node")
	}
	if vnodes <= 0 {
		vnodes = 64
	}
	seen := make(map[string]bool, len(nodes))
	for _, n := range nodes {
		if n == "" {
			return nil, fmt.Errorf("cluster: empty node name")
		}
		if seen[n] {
			return nil, fmt.Errorf("cluster: duplicate node %q", n)
		}
		seen[n] = true
	}
	r := &Ring{nodes: append([]string(nil), nodes...), vnodes: vnodes}
	r.points = make([]ringPoint, 0, len(nodes)*vnodes)
	for i, n := range r.nodes {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{hash: ringHash(fmt.Sprintf("%s#%d", n, v)), node: i})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		// Deterministic tie-break so equal hashes (vanishingly rare)
		// cannot make ownership depend on sort stability.
		return r.points[a].node < r.points[b].node
	})
	return r, nil
}

// ringHash is the ring's point hash: FNV-64a finished with a
// splitmix64-style avalanche.  Raw FNV is too sequential for ring
// points — the vnode strings "n#0", "n#1", … differ only in their
// tail, and their FNV values land in correlated clusters (one node of
// four owned half the keyspace in testing); the finalizer restores the
// uniform spread consistent hashing assumes.
func ringHash(s string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(s))
	x := h.Sum64()
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// Nodes returns the ring's node list in construction order.
func (r *Ring) Nodes() []string { return append([]string(nil), r.nodes...) }

// VNodes returns the per-node virtual-node count.
func (r *Ring) VNodes() int { return r.vnodes }

// Owner returns the node owning the key: the first virtual node at or
// clockwise after the key's hash.
func (r *Ring) Owner(key string) string {
	return r.nodes[r.points[r.successor(key)].node]
}

// Owners returns up to n distinct nodes for the key, walking clockwise
// from its hash: the first is the primary owner, the rest are the
// replica set (stable under vnode collisions because duplicates are
// skipped).  n is clamped to the node count.
func (r *Ring) Owners(key string, n int) []string {
	if n <= 0 {
		n = 1
	}
	if n > len(r.nodes) {
		n = len(r.nodes)
	}
	out := make([]string, 0, n)
	seen := make(map[int]bool, n)
	for i, at := 0, r.successor(key); len(out) < n && i < len(r.points); i, at = i+1, (at+1)%len(r.points) {
		nd := r.points[at].node
		if seen[nd] {
			continue
		}
		seen[nd] = true
		out = append(out, r.nodes[nd])
	}
	return out
}

// successor locates the first ring point at or after the key's hash
// (wrapping at the top of the ring).
func (r *Ring) successor(key string) int {
	h := ringHash(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		return 0
	}
	return i
}
