package cluster

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"math/big"
	"net"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/parser"
	"repro/internal/serve"
	"repro/internal/structure"
)

// Config tunes a cluster Coordinator.
type Config struct {
	// Shards are the shard nodes' base URLs ("http://10.0.0.1:8080").
	// At least one; order is the stable node identity the ring hashes.
	Shards []string
	// Replicas is the replication factor R: structures are created on R
	// distinct ring successors and reads fail over among them (≤ 0 or
	// > len(Shards) clamps into [1, len(Shards)]).
	Replicas int
	// VNodes is the ring's virtual-node count per shard (≤ 0 = 64).
	VNodes int
	// MaxIdleConnsPerHost sizes the shared transport's keep-alive pool
	// per shard (≤ 0 = 32) — the scatter-gather fan-out knob.
	MaxIdleConnsPerHost int
	// Retry is the per-shard client retry policy applied to idempotent
	// calls before the coordinator fails over to another replica
	// (zero value = 2 attempts, 25ms base, 250ms cap).
	Retry serve.RetryPolicy
	// RequestTimeout bounds routed counting requests (≤ 0 = 30s);
	// request timeout_ms can lower it, never raise it.
	RequestTimeout time.Duration
	// Addr is the coordinator's listen address (empty = ":0").
	Addr string
	// MaxPartitions caps partitioned creates (≤ 0 = 64).
	MaxPartitions int
	// HTTPClient overrides the shared transport (tests); nil builds one
	// from MaxIdleConnsPerHost.
	HTTPClient *http.Client
}

func (c Config) withDefaults() Config {
	if c.Replicas <= 0 {
		c.Replicas = 1
	}
	if c.Replicas > len(c.Shards) {
		c.Replicas = len(c.Shards)
	}
	if c.Retry.MaxAttempts == 0 {
		c.Retry = serve.RetryPolicy{MaxAttempts: 2, BaseDelay: 25 * time.Millisecond, MaxDelay: 250 * time.Millisecond}
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 30 * time.Second
	}
	if c.MaxPartitions <= 0 {
		c.MaxPartitions = 64
	}
	return c
}

// partSep separates a logical partitioned structure's name from its
// part index in the shard-resident part names ("users@p3").  Client-
// facing names must not contain it.
const partSep = "@p"

// partitioned is one logical partitioned structure the coordinator
// tracks: its part names (shard residency follows the ring) and the
// immutable logical metadata.
type partitioned struct {
	name   string
	parts  []string
	size   int
	tuples int
	sig    *structure.Signature
}

// planKey caches recombination plans per (query, signature).
type planKey struct {
	query string
	sig   string
}

// Coordinator is the cluster router: it speaks the same HTTP/JSON API
// as a single epserved node (serve.Client works against it unchanged)
// and fans requests out over the shard fleet — consistent-hash routing
// with replication for plain structures, exact inclusion–exclusion
// recombination for partitioned ones.  Create with New, then Start /
// Shutdown, or mount Handler.
type Coordinator struct {
	cfg     Config
	ring    *Ring
	clients map[string]*serve.Client
	nodeIdx map[string]int
	mux     *http.ServeMux
	started time.Time

	mu    sync.RWMutex
	parts map[string]*partitioned
	plans map[planKey]*partPlan

	scatters  atomic.Uint64
	failovers atomic.Uint64
	rerouted  atomic.Uint64

	batchPrefix string
	batchSeq    atomic.Uint64

	httpSrv  *http.Server
	listener net.Listener
}

// planCacheCap bounds the recombination-plan cache; reaching it wipes
// the cache wholesale (a memo: entries rebuild on demand).
const planCacheCap = 256

// New builds a Coordinator over the configured shard fleet.  It does
// not contact the shards; routing state is purely local (the ring).
func New(cfg Config) (*Coordinator, error) {
	cfg = cfg.withDefaults()
	ring, err := NewRing(cfg.Shards, cfg.VNodes)
	if err != nil {
		return nil, err
	}
	hc := cfg.HTTPClient
	if hc == nil {
		hc = serve.SharedTransport(cfg.MaxIdleConnsPerHost)
	}
	var rnd [6]byte
	if _, err := rand.Read(rnd[:]); err != nil {
		return nil, err
	}
	co := &Coordinator{
		cfg:         cfg,
		ring:        ring,
		clients:     make(map[string]*serve.Client, len(cfg.Shards)),
		nodeIdx:     make(map[string]int, len(cfg.Shards)),
		mux:         http.NewServeMux(),
		started:     time.Now(),
		parts:       make(map[string]*partitioned),
		plans:       make(map[planKey]*partPlan),
		batchPrefix: hex.EncodeToString(rnd[:]),
	}
	for i, s := range cfg.Shards {
		co.clients[s] = serve.NewClient(s, hc).WithRetry(cfg.Retry)
		co.nodeIdx[s] = i
	}
	co.routes()
	return co, nil
}

// client returns the pooled typed client of a shard node.
func (co *Coordinator) client(node string) *serve.Client { return co.clients[node] }

// Ring exposes the coordinator's hash ring (telemetry, tests).
func (co *Coordinator) Ring() *Ring { return co.ring }

// Replicas returns the effective replication factor (clamped to the
// shard count).
func (co *Coordinator) Replicas() int { return co.cfg.Replicas }

// Handler returns the coordinator's HTTP handler.
func (co *Coordinator) Handler() http.Handler { return co.mux }

// Start listens on cfg.Addr and serves in a background goroutine until
// Shutdown; Addr is valid once Start returns.
func (co *Coordinator) Start() error {
	addr := co.cfg.Addr
	if addr == "" {
		addr = ":0"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	co.listener = ln
	co.httpSrv = &http.Server{Handler: co.mux}
	go func() { _ = co.httpSrv.Serve(ln) }()
	return nil
}

// Addr returns the bound listen address after Start.
func (co *Coordinator) Addr() string {
	if co.listener == nil {
		return ""
	}
	return co.listener.Addr().String()
}

// Shutdown stops a Started coordinator: the listener closes and
// in-flight routed requests run to completion or ctx expires.  The
// shards are not touched — they have their own lifecycles.
func (co *Coordinator) Shutdown(ctx context.Context) error {
	if co.httpSrv == nil {
		return nil
	}
	return co.httpSrv.Shutdown(ctx)
}

// genBatchID mints a cluster-unique append idempotency id, used when a
// client appends without one: the same id propagates the batch to
// every replica, so the per-structure batch memos make the multi-
// replica apply exactly-once even under the coordinator's own retries.
func (co *Coordinator) genBatchID() string {
	return fmt.Sprintf("coord-%s-%d", co.batchPrefix, co.batchSeq.Add(1))
}

// partitionedFor resolves a logical partitioned structure, nil when
// the name is not partitioned.
func (co *Coordinator) partitionedFor(name string) *partitioned {
	co.mu.RLock()
	defer co.mu.RUnlock()
	return co.parts[name]
}

// ---- routing primitives ----

// failoverable reports whether a routed call's failure is worth
// retrying on another replica: transport-level errors (connection
// refused or dropped — the node is gone or restarting) and the
// transient statuses 503 (admission or graceful shutdown), 504
// (deadline) and 404 (replica missing the structure, e.g. a lagging
// create).  Semantic failures (400, 409, 422) fail identically on
// every replica and are returned as-is.
func failoverable(err error) bool {
	var ae *serve.APIError
	if errors.As(err, &ae) {
		switch ae.Status {
		case http.StatusServiceUnavailable, http.StatusGatewayTimeout, http.StatusNotFound:
			return true
		}
		return false
	}
	return true
}

// replicaAt picks the warm replica for (query, structure): the ring's
// owner list rotated by a query hash, so the same query on the same
// structure always lands on the same replica (its session memo stays
// warm) while distinct queries spread across the replica set.
func (co *Coordinator) replicaAt(query, name string) (owners []string, start int) {
	owners = co.ring.Owners(name, co.cfg.Replicas)
	start = int(ringHash(query) % uint64(len(owners)))
	return owners, start
}

// countOne routes one /count with warm-replica selection and failover:
// a failoverable error moves to the next replica in rotation; skip (if
// non-empty) is excluded up front — the group reroute path uses it to
// avoid a shard that just failed a batch.
func (co *Coordinator) countOne(ctx context.Context, req serve.CountRequest, skip string) (serve.CountResponse, error) {
	owners, start := co.replicaAt(req.Query, req.Structure)
	var lastErr error
	tried := 0
	for i := 0; i < len(owners); i++ {
		node := owners[(start+i)%len(owners)]
		if node == skip && len(owners) > 1 {
			continue
		}
		if tried > 0 {
			co.failovers.Add(1)
		}
		tried++
		_, resp, err := co.client(node).CountWith(ctx, req)
		if err == nil {
			return resp, nil
		}
		lastErr = err
		if !failoverable(err) || ctx.Err() != nil {
			return serve.CountResponse{}, err
		}
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("cluster: no replica available for %q", req.Structure)
	}
	return serve.CountResponse{}, lastErr
}

// groupResult is one structure's routed count within a scatter-gather
// batch.  The estimate block is populated in approx mode only.
type groupResult struct {
	count   string
	version uint64

	estimate   string
	relErr     float64
	confidence float64
	caseStr    string
	samples    int
}

// scatterBatch fans one query over many plain structures: structures
// group by their warm replica shard, each group runs as one upstream
// /countBatch, groups run concurrently, and results reassemble in
// request order.  base carries the query, engine, timeout, and the
// approx-mode knobs applied to every structure (base.Structures is
// ignored).  A shard-level failoverable failure (503 from a node
// draining, a dropped connection) does not fail the request: that
// group's structures reroute individually to surviving replicas.
func (co *Coordinator) scatterBatch(ctx context.Context, base serve.CountBatchRequest, names []string) ([]groupResult, error) {
	type group struct {
		node string
		idx  []int
	}
	groups := make(map[string]*group)
	var order []string
	for i, name := range names {
		owners, start := co.replicaAt(base.Query, name)
		node := owners[start]
		g, ok := groups[node]
		if !ok {
			g = &group{node: node}
			groups[node] = g
			order = append(order, node)
		}
		g.idx = append(g.idx, i)
	}
	co.scatters.Add(1)
	out := make([]groupResult, len(names))
	errs := make([]error, len(order))
	var wg sync.WaitGroup
	for gi, node := range order {
		g := groups[node]
		wg.Add(1)
		go func(gi int, g *group) {
			defer wg.Done()
			sub := make([]string, len(g.idx))
			for j, i := range g.idx {
				sub[j] = names[i]
			}
			req := base
			req.Structures = sub
			_, resp, err := co.client(g.node).CountBatchWith(ctx, req)
			if err == nil {
				for j, i := range g.idx {
					gr := groupResult{count: resp.Counts[j], version: resp.Versions[j]}
					if j < len(resp.Estimates) {
						gr.estimate = resp.Estimates[j]
						gr.relErr = resp.RelErrors[j]
						gr.confidence = resp.Confidences[j]
						gr.caseStr = resp.Cases[j]
						gr.samples = resp.Samples[j]
					}
					out[i] = gr
				}
				return
			}
			if !failoverable(err) || ctx.Err() != nil {
				errs[gi] = err
				return
			}
			// The shard failed the whole group (draining, refused,
			// dropped): reroute each structure to a surviving replica.
			co.rerouted.Add(1)
			for _, i := range g.idx {
				cresp, cerr := co.countOne(ctx, serve.CountRequest{
					Query: base.Query, Structure: names[i], Engine: base.Engine, TimeoutMillis: base.TimeoutMillis,
					Mode: base.Mode, Epsilon: base.Epsilon, Delta: base.Delta,
					MaxSamples: base.MaxSamples, Seed: base.Seed,
				}, g.node)
				if cerr != nil {
					errs[gi] = cerr
					return
				}
				out[i] = groupResult{
					count: cresp.Count, version: cresp.Version,
					estimate: cresp.Estimate, relErr: cresp.RelError,
					confidence: cresp.Confidence, caseStr: cresp.Case, samples: cresp.Samples,
				}
			}
		}(gi, g)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// ---- partitioned structures ----

// planFor resolves (building and caching on first use) the
// recombination plan of a query over a partitioned structure's
// signature.
func (co *Coordinator) planFor(query string, p *partitioned) (*partPlan, error) {
	key := planKey{query: query, sig: p.sig.String()}
	co.mu.RLock()
	pl := co.plans[key]
	co.mu.RUnlock()
	if pl != nil {
		return pl, nil
	}
	pl, err := buildPartitionPlan(query, p.sig)
	if err != nil {
		return nil, err
	}
	co.mu.Lock()
	if prev := co.plans[key]; prev != nil {
		pl = prev
	} else {
		if len(co.plans) >= planCacheCap {
			co.plans = make(map[planKey]*partPlan, planCacheCap)
		}
		co.plans[key] = pl
	}
	co.mu.Unlock()
	return pl, nil
}

// partitionedCount evaluates a query against a partitioned structure:
// every component query of the recombination plan scatters over all
// parts (riding the same grouped scatter-gather and failover as plain
// batches), per-part counts sum per component, and the plan reassembles
// the exact logical count.
func (co *Coordinator) partitionedCount(ctx context.Context, p *partitioned, query, engineName string, timeoutMillis int64) (*big.Int, error) {
	pl, err := co.planFor(query, p)
	if err != nil {
		return nil, err
	}
	totals := make([]*big.Int, len(pl.comps))
	errs := make([]error, len(pl.comps))
	var wg sync.WaitGroup
	for ci := range pl.comps {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			results, err := co.scatterBatch(ctx, serve.CountBatchRequest{
				Query: pl.comps[ci].query, Engine: engineName, TimeoutMillis: timeoutMillis,
			}, p.parts)
			if err != nil {
				errs[ci] = err
				return
			}
			sum := new(big.Int)
			var v big.Int
			for _, r := range results {
				if _, ok := v.SetString(r.count, 10); !ok {
					errs[ci] = fmt.Errorf("cluster: malformed part count %q", r.count)
					return
				}
				sum.Add(sum, &v)
			}
			totals[ci] = sum
		}(ci)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return pl.combine(totals, p.size), nil
}

// createOnOwners creates one (part or plain) structure on its R ring
// owners, primary first.  The first error aborts the walk; already-
// created replicas remain (a retried create dedups into 409s, which
// the caller may treat as success for parts).
func (co *Coordinator) createOnOwners(ctx context.Context, req serve.CreateStructureRequest) (serve.StructureInfo, error) {
	owners := co.ring.Owners(req.Name, co.cfg.Replicas)
	var primary serve.StructureInfo
	for i, node := range owners {
		info, err := co.client(node).CreateStructureWith(ctx, req)
		if err != nil {
			return serve.StructureInfo{}, err
		}
		if i == 0 {
			primary = info
		}
	}
	return primary, nil
}

// createPartitioned parses the structure on the coordinator, splits it
// into Gaifman-component parts, creates every part (with the explicit
// signature, so empty parts stay well-typed) on its ring owners, and
// registers the logical structure.  Partitioned structures are
// immutable after creation: appends could join components across
// parts, which would break the disjoint-union invariant the exact
// recombination rests on.
func (co *Coordinator) createPartitioned(ctx context.Context, req serve.CreateStructureRequest) (serve.StructureInfo, error) {
	if req.Partitions > co.cfg.MaxPartitions {
		return serve.StructureInfo{}, fmt.Errorf("cluster: %d partitions exceed the cap of %d", req.Partitions, co.cfg.MaxPartitions)
	}
	var sig *structure.Signature
	if len(req.Signature) > 0 {
		rels := make([]structure.RelSym, len(req.Signature))
		for i, rs := range req.Signature {
			rels[i] = structure.RelSym{Name: rs.Name, Arity: rs.Arity}
		}
		var err error
		sig, err = structure.NewSignature(rels...)
		if err != nil {
			return serve.StructureInfo{}, err
		}
	}
	b, err := parser.ParseStructure(req.Facts, sig)
	if err != nil {
		return serve.StructureInfo{}, err
	}
	spec := make([]serve.RelSpec, 0, len(b.Signature().Rels()))
	for _, r := range b.Signature().Rels() {
		spec = append(spec, serve.RelSpec{Name: r.Name, Arity: r.Arity})
	}
	if b.Size() == 0 {
		return serve.StructureInfo{}, fmt.Errorf("cluster: an empty structure cannot be partitioned")
	}
	bins := partitionElems(b, req.Partitions)
	p := &partitioned{name: req.Name, size: b.Size(), tuples: b.NumTuples(), sig: b.Signature()}
	for i, bin := range bins {
		// Fewer Gaifman components than requested partitions leaves some
		// bins empty; an empty part would be uncountable (the engine
		// refuses empty universes), so it simply is not created —
		// `partitions` is a ceiling, not a promise.
		if len(bin) == 0 {
			continue
		}
		part, _ := b.Induced(bin)
		facts, err := part.FactsString()
		if err != nil {
			return serve.StructureInfo{}, err
		}
		partName := fmt.Sprintf("%s%s%d", req.Name, partSep, i)
		if _, err := co.createOnOwners(ctx, serve.CreateStructureRequest{Name: partName, Facts: facts, Signature: spec}); err != nil {
			return serve.StructureInfo{}, err
		}
		p.parts = append(p.parts, partName)
	}
	co.mu.Lock()
	if _, dup := co.parts[req.Name]; dup {
		co.mu.Unlock()
		return serve.StructureInfo{}, errDuplicatePartitioned
	}
	co.parts[req.Name] = p
	co.mu.Unlock()
	return serve.StructureInfo{Name: req.Name, Size: p.size, Tuples: p.tuples}, nil
}

// errDuplicatePartitioned marks a partitioned-create name collision.
var errDuplicatePartitioned = errors.New("cluster: partitioned structure already exists")

// logicalInfo is the wire metadata of a partitioned structure (version
// 0: partitioned structures are immutable).
func (p *partitioned) logicalInfo() serve.StructureInfo {
	return serve.StructureInfo{Name: p.name, Size: p.size, Tuples: p.tuples}
}

// isPartName reports whether a shard-resident structure name is an
// internal partition part (hidden from cluster listings).
func isPartName(name string) bool { return strings.Contains(name, partSep) }

// mergedStructures builds the cluster's logical structure list: every
// shard's registry fanned in, part names hidden, replicas deduplicated
// (the ring primary's row wins), partitioned logical rows appended.
// Unreachable shards are skipped — listing degrades, it does not fail.
func (co *Coordinator) mergedStructures(ctx context.Context) []serve.StructureInfo {
	type shardList struct {
		node  string
		infos []serve.StructureInfo
	}
	lists := make([]shardList, len(co.cfg.Shards))
	var wg sync.WaitGroup
	for i, node := range co.cfg.Shards {
		wg.Add(1)
		go func(i int, node string) {
			defer wg.Done()
			infos, err := co.client(node).Structures(ctx)
			if err == nil {
				lists[i] = shardList{node: node, infos: infos}
			}
		}(i, node)
	}
	wg.Wait()
	byName := make(map[string]serve.StructureInfo)
	fromPrimary := make(map[string]bool)
	for _, l := range lists {
		for _, info := range l.infos {
			if isPartName(info.Name) {
				continue
			}
			primary := co.ring.Owner(info.Name) == l.node
			prev, ok := byName[info.Name]
			// Prefer the ring primary's row; among replicas keep the
			// freshest version (a replica may trail mid-append).
			if !ok || primary || (!fromPrimary[info.Name] && info.Version > prev.Version) {
				byName[info.Name] = info
				fromPrimary[info.Name] = primary
			}
		}
	}
	co.mu.RLock()
	for name, p := range co.parts {
		byName[name] = p.logicalInfo()
	}
	co.mu.RUnlock()
	names := make([]string, 0, len(byName))
	for n := range byName {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]serve.StructureInfo, 0, len(names))
	for _, n := range names {
		out = append(out, byName[n])
	}
	return out
}
