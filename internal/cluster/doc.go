// Package cluster turns a fleet of single-node epserved shards into
// one logical counting service.  A Coordinator speaks the exact
// HTTP/JSON API of a single node (serve.Client works against it
// unchanged) and routes behind it: structure names map to shard nodes
// by a consistent-hash ring with virtual nodes (membership changes
// remap only the expected 1/(N+1) fraction of names), structures are
// created on R ring successors, and reads pick the replica a query
// hash points at — the same query on the same structure always lands
// where its count memo and engine session are already warm — failing
// over along the replica set on transport errors, 503 and 504.
// Scatter-gather /countBatch groups structures by their chosen shard,
// runs the per-shard batches concurrently over one pooled transport,
// reassembles results in request order, and reroutes a failed group's
// structures individually to surviving replicas instead of failing
// the request.  Appends route primary-first to every replica under
// one idempotency batch id (coordinator-minted when the client sent
// none), so the shard-side batch memos make the multi-replica apply
// exactly-once.
//
// The paper-grounded piece is the partitioned structure: a create
// with partitions > 1 splits the structure's domain along connected
// components of its Gaifman graph into shard-resident parts — a
// disjoint union, no tuple spans parts.  Counting against the logical
// structure then follows the inclusion–exclusion pipeline of
// Chen–Mengel (PODS'16) one level up: each φ⁻af term's quantifier-free
// part decomposes into connected components; a connected component
// with a liberal variable maps entirely into one part, so its count
// over the union is the sum of its per-part counts; a fully
// quantified component contributes a satisfiability bit (nonzero
// somewhere); isolated liberal variables contribute |B|^k for the
// whole logical domain.  The coordinator scatters the component
// queries over the parts, sums per component, and recombines exactly
// — bit-identical to a single node holding the whole structure, which
// the differential tests assert.
package cluster
