package cluster

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sort"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/serve"
	"repro/internal/workload"
)

// fleet is N in-process shard servers behind real HTTP listeners.  Each
// shard's handler is wrapped with a drain switch: while set, counting
// endpoints answer 503 + Retry-After — the wire behavior of a node
// refusing work mid-graceful-shutdown — without taking the shard down.
type fleet struct {
	servers []*serve.Server
	ts      []*httptest.Server
	urls    []string
	drain   []*atomic.Bool
}

func startFleet(t *testing.T, n int) *fleet {
	t.Helper()
	f := &fleet{}
	for i := 0; i < n; i++ {
		srv := serve.New(serve.Config{})
		flag := &atomic.Bool{}
		inner := srv.Handler()
		ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if flag.Load() && (r.URL.Path == "/count" || r.URL.Path == "/countBatch") {
				w.Header().Set("Retry-After", "1")
				w.Header().Set("Content-Type", "application/json")
				w.WriteHeader(http.StatusServiceUnavailable)
				fmt.Fprintln(w, `{"error":"shutting down"}`)
				return
			}
			inner.ServeHTTP(w, r)
		}))
		t.Cleanup(ts.Close)
		f.servers = append(f.servers, srv)
		f.ts = append(f.ts, ts)
		f.urls = append(f.urls, ts.URL)
		f.drain = append(f.drain, flag)
	}
	return f
}

// startCoordinator builds a coordinator over the fleet and serves it
// over HTTP, returning the coordinator, a client speaking to it, and
// the coordinator's URL.  Retry is a single attempt so failover paths
// are exercised directly rather than masked by same-shard retries.
func startCoordinator(t *testing.T, f *fleet, replicas int) (*Coordinator, *serve.Client) {
	t.Helper()
	co, err := New(Config{
		Shards:   f.urls,
		Replicas: replicas,
		VNodes:   32,
		Retry:    serve.RetryPolicy{MaxAttempts: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(co.Handler())
	t.Cleanup(ts.Close)
	return co, serve.NewClient(ts.URL, nil)
}

// TestClusterDifferentialRandomized drives a 3-shard, 2-replica cluster
// and a plain single node through the same randomized interleaving of
// creates, appends, counts, batch counts and subscription reads, and
// requires every routed response — count AND version — to equal the
// single node's.  Run under -race this also hammers the coordinator's
// concurrent scatter machinery.
func TestClusterDifferentialRandomized(t *testing.T) {
	f := startFleet(t, 3)
	_, cc := startCoordinator(t, f, 2)

	ref := serve.New(serve.Config{})
	rts := httptest.NewServer(ref.Handler())
	t.Cleanup(rts.Close)
	rc := serve.NewClient(rts.URL, nil)

	ctx := context.Background()
	rng := rand.New(rand.NewSource(7))

	var names []string
	for i := 0; i < 5; i++ {
		b := workload.RandomStructure(workload.EdgeSig(), 8, 0.2, int64(i+1))
		facts, err := b.FactsString()
		if err != nil {
			t.Fatal(err)
		}
		name := fmt.Sprintf("g%d", i)
		ci, err := cc.CreateStructure(ctx, name, facts, nil)
		if err != nil {
			t.Fatal(err)
		}
		ri, err := rc.CreateStructure(ctx, name, facts, nil)
		if err != nil {
			t.Fatal(err)
		}
		if ci != ri {
			t.Fatalf("create %s: cluster %+v, single node %+v", name, ci, ri)
		}
		names = append(names, name)
	}

	queries := []string{
		workload.FreePathQuery(2).String(),
		workload.CliqueQuery(3).String(),
		workload.PathQuery(3).String(),
		"mix(x,y) := E(x,y) | E(x,x)",
	}

	type subPair struct{ clusterID, refID string }
	var subs []subPair
	batchSeq := 0
	for op := 0; op < 60; op++ {
		name := names[rng.Intn(len(names))]
		query := queries[rng.Intn(len(queries))]
		switch rng.Intn(5) {
		case 0: // append the same batch to both
			batchSeq++
			facts := fmt.Sprintf("E(e%d,e%d). E(e%d,x%d).",
				rng.Intn(8), rng.Intn(8), rng.Intn(8), batchSeq)
			id := fmt.Sprintf("batch-%d", batchSeq)
			ci, err := cc.AppendFactsBatch(ctx, name, facts, id)
			if err != nil {
				t.Fatal(err)
			}
			ri, err := rc.AppendFactsBatch(ctx, name, facts, id)
			if err != nil {
				t.Fatal(err)
			}
			if ci != ri {
				t.Fatalf("append %s: cluster %+v, single node %+v", name, ci, ri)
			}
		case 1: // single count
			cv, cresp, err := cc.Count(ctx, query, name)
			if err != nil {
				t.Fatal(err)
			}
			rv, rresp, err := rc.Count(ctx, query, name)
			if err != nil {
				t.Fatal(err)
			}
			if cv.Cmp(rv) != 0 || cresp.Version != rresp.Version {
				t.Fatalf("count %q on %s: cluster (%v, v%d), single node (%v, v%d)",
					query, name, cv, cresp.Version, rv, rresp.Version)
			}
		case 2: // scatter-gather batch over a random subset
			subset := append([]string(nil), names...)
			rng.Shuffle(len(subset), func(i, j int) { subset[i], subset[j] = subset[j], subset[i] })
			subset = subset[:1+rng.Intn(len(subset))]
			cvs, cresp, err := cc.CountBatch(ctx, query, subset)
			if err != nil {
				t.Fatal(err)
			}
			rvs, rresp, err := rc.CountBatch(ctx, query, subset)
			if err != nil {
				t.Fatal(err)
			}
			for i := range subset {
				if cvs[i].Cmp(rvs[i]) != 0 || cresp.Versions[i] != rresp.Versions[i] {
					t.Fatalf("batch %q on %v [%d]: cluster (%v, v%d), single node (%v, v%d)",
						query, subset, i, cvs[i], cresp.Versions[i], rvs[i], rresp.Versions[i])
				}
			}
		case 3: // register a subscription on both
			if len(subs) >= 4 {
				continue
			}
			ci, err := cc.Subscribe(ctx, query, name)
			if err != nil {
				t.Fatal(err)
			}
			ri, err := rc.Subscribe(ctx, query, name)
			if err != nil {
				t.Fatal(err)
			}
			subs = append(subs, subPair{clusterID: ci.ID, refID: ri.ID})
		case 4: // read a subscription's maintained count
			if len(subs) == 0 {
				continue
			}
			p := subs[rng.Intn(len(subs))]
			cv, cinfo, err := cc.SubscriptionCount(ctx, p.clusterID)
			if err != nil {
				t.Fatal(err)
			}
			rv, rinfo, err := rc.SubscriptionCount(ctx, p.refID)
			if err != nil {
				t.Fatal(err)
			}
			if cv.Cmp(rv) != 0 || cinfo.Version != rinfo.Version {
				t.Fatalf("subscription %s: cluster (%v, v%d), single node (%v, v%d)",
					p.clusterID, cv, cinfo.Version, rv, rinfo.Version)
			}
		}
	}

	// The merged structure listing must agree with the single node's.
	cinfos, err := cc.Structures(ctx)
	if err != nil {
		t.Fatal(err)
	}
	rinfos, err := rc.Structures(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(cinfos) != len(rinfos) {
		t.Fatalf("cluster lists %d structures, single node %d", len(cinfos), len(rinfos))
	}
	sort.Slice(cinfos, func(i, j int) bool { return cinfos[i].Name < cinfos[j].Name })
	sort.Slice(rinfos, func(i, j int) bool { return rinfos[i].Name < rinfos[j].Name })
	for i := range cinfos {
		if cinfos[i] != rinfos[i] {
			t.Fatalf("structure listing [%d]: cluster %+v, single node %+v", i, cinfos[i], rinfos[i])
		}
	}

	// Concurrent phase: hammer the coordinator's scatter paths from
	// several goroutines against a now-static cluster (meaningful under
	// -race for the router's shared maps and counters).
	want := make(map[string]map[string]string)
	for _, q := range queries {
		want[q] = map[string]string{}
		for _, n := range names {
			v, _, err := rc.Count(ctx, q, n)
			if err != nil {
				t.Fatal(err)
			}
			want[q][n] = v.String()
		}
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			grng := rand.New(rand.NewSource(int64(100 + g)))
			for i := 0; i < 15; i++ {
				q := queries[grng.Intn(len(queries))]
				if grng.Intn(2) == 0 {
					n := names[grng.Intn(len(names))]
					v, _, err := cc.Count(ctx, q, n)
					if err != nil {
						t.Error(err)
						return
					}
					if v.String() != want[q][n] {
						t.Errorf("concurrent count %q on %s = %v, want %s", q, n, v, want[q][n])
						return
					}
				} else {
					vs, _, err := cc.CountBatch(ctx, q, names)
					if err != nil {
						t.Error(err)
						return
					}
					for j, n := range names {
						if vs[j].String() != want[q][n] {
							t.Errorf("concurrent batch %q on %s = %v, want %s", q, n, vs[j], want[q][n])
							return
						}
					}
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestCountBatchReroutesDrainingShard is the failover regression test
// for the graceful-shutdown window: a shard that starts answering its
// counting endpoints with 503 + Retry-After (exactly what a node does
// while serve.Registry.Close drains) must not fail a scatter-gather
// /countBatch — the coordinator reroutes that shard's whole structure
// group to live replicas and the batch succeeds with correct counts.
func TestCountBatchReroutesDrainingShard(t *testing.T) {
	f := startFleet(t, 3)
	co, cc := startCoordinator(t, f, 2)

	ctx := context.Background()
	query := workload.FreePathQuery(2).String()
	var names []string
	for i := 0; i < 9; i++ {
		b := workload.RandomStructure(workload.EdgeSig(), 7, 0.25, int64(40+i))
		facts, err := b.FactsString()
		if err != nil {
			t.Fatal(err)
		}
		name := fmt.Sprintf("s%d", i)
		if _, err := cc.CreateStructure(ctx, name, facts, nil); err != nil {
			t.Fatal(err)
		}
		names = append(names, name)
	}
	before, _, err := cc.CountBatch(ctx, query, names)
	if err != nil {
		t.Fatal(err)
	}

	// Drain the shard the scatter would route structure 0's group to,
	// so at least one group is guaranteed to hit the 503 path.
	owners, start := co.replicaAt(query, names[0])
	victim := owners[start]
	for i, url := range f.urls {
		if url == victim {
			f.drain[i].Store(true)
			defer f.drain[i].Store(false)
		}
	}

	after, _, err := cc.CountBatch(ctx, query, names)
	if err != nil {
		t.Fatalf("countBatch with one shard draining: %v", err)
	}
	for i := range names {
		if after[i].Cmp(before[i]) != 0 {
			t.Fatalf("rerouted count for %s = %v, want %v", names[i], after[i], before[i])
		}
	}
	stats, err := cc.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Cluster == nil || stats.Cluster.Rerouted == 0 {
		t.Fatalf("expected a rerouted group in cluster stats, got %+v", stats.Cluster)
	}
}

// TestFailoverOnDeadShard kills a shard outright (connection refused)
// and checks reads fail over to the surviving replica while /healthz
// degrades to 503.
func TestFailoverOnDeadShard(t *testing.T) {
	f := startFleet(t, 2)
	co, cc := startCoordinator(t, f, 2)
	ctx := context.Background()

	b := workload.RandomStructure(workload.EdgeSig(), 8, 0.25, 99)
	facts, err := b.FactsString()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cc.CreateStructure(ctx, "g", facts, nil); err != nil {
		t.Fatal(err)
	}
	query := workload.FreePathQuery(2).String()
	v0, _, err := cc.Count(ctx, query, "g")
	if err != nil {
		t.Fatal(err)
	}

	// Kill the replica this query's reads are pinned to, so the next
	// count must fail over.
	owners, start := co.replicaAt(query, "g")
	for i, url := range f.urls {
		if url == owners[start] {
			f.ts[i].Close()
		}
	}

	v1, _, err := cc.Count(ctx, query, "g")
	if err != nil {
		t.Fatalf("count after shard death: %v", err)
	}
	if v1.Cmp(v0) != 0 {
		t.Fatalf("failover count = %v, want %v", v1, v0)
	}
	if _, err := cc.Structure(ctx, "g"); err != nil {
		t.Fatalf("structure metadata after shard death: %v", err)
	}
	if err := cc.Healthz(ctx); err == nil {
		t.Fatal("healthz reported ready with a dead shard")
	}
	stats, err := cc.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Cluster == nil || stats.Cluster.Failovers == 0 {
		t.Fatalf("expected failovers in cluster stats, got %+v", stats.Cluster)
	}
	healthy := 0
	for _, sh := range stats.Cluster.Shards {
		if sh.Healthy {
			healthy++
		}
	}
	if healthy != 1 {
		t.Fatalf("stats report %d healthy shards, want 1", healthy)
	}
}

// TestPartitionedStructureThroughCluster is the end-to-end partitioned
// differential: a multi-component structure created with partitions=3
// on the cluster must answer every battery query bit-identically to a
// single node holding the whole structure — including mixed batches —
// while hiding its parts, refusing appends, and rejecting duplicate
// and plain-server partitioned creates.
func TestPartitionedStructureThroughCluster(t *testing.T) {
	f := startFleet(t, 2)
	_, cc := startCoordinator(t, f, 2)

	ref := serve.New(serve.Config{})
	rts := httptest.NewServer(ref.Handler())
	t.Cleanup(rts.Close)
	rc := serve.NewClient(rts.URL, nil)
	ctx := context.Background()

	b := multiComponentStructure(21, 4, 4, 0.5, 2)
	facts, err := b.FactsString()
	if err != nil {
		t.Fatal(err)
	}
	pinfo, err := cc.CreateStructureWith(ctx, serve.CreateStructureRequest{
		Name: "big", Facts: facts, Partitions: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	rinfo, err := rc.CreateStructure(ctx, "big", facts, nil)
	if err != nil {
		t.Fatal(err)
	}
	if pinfo.Size != rinfo.Size || pinfo.Tuples != rinfo.Tuples {
		t.Fatalf("partitioned create metadata %+v, single node %+v", pinfo, rinfo)
	}

	plain := workload.RandomStructure(workload.EdgeSig(), 6, 0.3, 5)
	pfacts, err := plain.FactsString()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cc.CreateStructure(ctx, "plain", pfacts, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := rc.CreateStructure(ctx, "plain", pfacts, nil); err != nil {
		t.Fatal(err)
	}

	for _, query := range partitionQueries() {
		cv, _, err := cc.Count(ctx, query, "big")
		if err != nil {
			t.Fatalf("cluster count %q: %v", query, err)
		}
		rv, _, err := rc.Count(ctx, query, "big")
		if err != nil {
			t.Fatalf("single-node count %q: %v", query, err)
		}
		if cv.Cmp(rv) != 0 {
			t.Fatalf("partitioned count %q = %v, single node = %v", query, cv, rv)
		}
	}

	// A batch mixing a partitioned and a plain structure.
	query := workload.FreePathQuery(2).String()
	cvs, _, err := cc.CountBatch(ctx, query, []string{"big", "plain"})
	if err != nil {
		t.Fatal(err)
	}
	rvs, _, err := rc.CountBatch(ctx, query, []string{"big", "plain"})
	if err != nil {
		t.Fatal(err)
	}
	for i := range cvs {
		if cvs[i].Cmp(rvs[i]) != 0 {
			t.Fatalf("mixed batch [%d]: cluster %v, single node %v", i, cvs[i], rvs[i])
		}
	}

	// Parts stay hidden; the logical structure is listed.
	infos, err := cc.Structures(ctx)
	if err != nil {
		t.Fatal(err)
	}
	var listed []string
	for _, info := range infos {
		listed = append(listed, info.Name)
	}
	sort.Strings(listed)
	if fmt.Sprint(listed) != "[big plain]" {
		t.Fatalf("cluster listing %v, want [big plain]", listed)
	}
	got, err := cc.Structure(ctx, "big")
	if err != nil {
		t.Fatal(err)
	}
	if got.Size != rinfo.Size || got.Tuples != rinfo.Tuples {
		t.Fatalf("logical metadata %+v, want size %d tuples %d", got, rinfo.Size, rinfo.Tuples)
	}

	// Immutability and validation.
	assertStatus := func(err error, status int, what string) {
		t.Helper()
		var ae *serve.APIError
		if !errors.As(err, &ae) || ae.Status != status {
			t.Fatalf("%s: got %v, want HTTP %d", what, err, status)
		}
	}
	_, err = cc.AppendFacts(ctx, "big", "E(zz,zz).")
	assertStatus(err, http.StatusBadRequest, "append to partitioned structure")
	_, err = cc.Subscribe(ctx, query, "big")
	assertStatus(err, http.StatusBadRequest, "subscribe on partitioned structure")
	_, err = cc.CreateStructureWith(ctx, serve.CreateStructureRequest{Name: "big", Facts: facts, Partitions: 2})
	assertStatus(err, http.StatusConflict, "duplicate partitioned create")
	_, err = cc.CreateStructure(ctx, "bad@p0", pfacts, nil)
	assertStatus(err, http.StatusBadRequest, "reserved part name")
	shard := serve.NewClient(f.urls[0], nil)
	_, err = shard.CreateStructureWith(ctx, serve.CreateStructureRequest{Name: "x", Facts: pfacts, Partitions: 2})
	assertStatus(err, http.StatusBadRequest, "partitioned create on a plain shard")
}

// TestSubscriptionRoutingLifecycle walks a subscription end to end
// through the coordinator: register, list (shard-prefixed id), read
// across appends, unsubscribe.
func TestSubscriptionRoutingLifecycle(t *testing.T) {
	f := startFleet(t, 3)
	_, cc := startCoordinator(t, f, 2)
	ctx := context.Background()

	b := workload.RandomStructure(workload.EdgeSig(), 7, 0.2, 77)
	facts, err := b.FactsString()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cc.CreateStructure(ctx, "g", facts, nil); err != nil {
		t.Fatal(err)
	}
	query := workload.FreePathQuery(2).String()
	sub, err := cc.Subscribe(ctx, query, "g")
	if err != nil {
		t.Fatal(err)
	}
	v1, _, err := cc.SubscriptionCount(ctx, sub.ID)
	if err != nil {
		t.Fatal(err)
	}
	direct, _, err := cc.Count(ctx, query, "g")
	if err != nil {
		t.Fatal(err)
	}
	if v1.Cmp(direct) != 0 {
		t.Fatalf("subscription count %v, direct count %v", v1, direct)
	}
	if _, err := cc.AppendFactsBatch(ctx, "g", "E(e0,e6). E(e6,e1).", "sub-batch-1"); err != nil {
		t.Fatal(err)
	}
	v2, _, err := cc.SubscriptionCount(ctx, sub.ID)
	if err != nil {
		t.Fatal(err)
	}
	direct2, _, err := cc.Count(ctx, query, "g")
	if err != nil {
		t.Fatal(err)
	}
	if v2.Cmp(direct2) != 0 {
		t.Fatalf("post-append subscription count %v, direct count %v", v2, direct2)
	}
	subs, err := cc.Subscriptions(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(subs) != 1 || subs[0].ID != sub.ID {
		t.Fatalf("subscription listing %+v, want one entry with id %s", subs, sub.ID)
	}
	if err := cc.Unsubscribe(ctx, sub.ID); err != nil {
		t.Fatal(err)
	}
	if _, _, err := cc.SubscriptionCount(ctx, sub.ID); err == nil {
		t.Fatal("read of removed subscription succeeded")
	}
	if _, _, err := cc.SubscriptionCount(ctx, "nonsense"); err == nil {
		t.Fatal("read of malformed subscription id succeeded")
	}
}
