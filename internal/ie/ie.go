package ie

import (
	"fmt"
	"math/big"

	"repro/internal/pp"
	"repro/internal/structure"
	"repro/internal/term"
)

// Term is a signed pp-formula in an inclusion–exclusion expansion.
type Term struct {
	Formula pp.PP
	Coeff   *big.Int
	// FP is the canonical counting-class fingerprint of the formula
	// (term.Fingerprint); empty when canonical labeling exceeded its
	// budget.  Downstream layers key plan and count caches on it.
	FP string
	// Subset records one witnessing subset J of the original disjuncts
	// (indices) whose conjunction produced the representative formula.
	Subset []int
}

// MaxDisjuncts caps the 2^s inclusion–exclusion expansion.
const MaxDisjuncts = 20

// RawTerms returns the unmerged inclusion–exclusion expansion: for every
// non-empty J ⊆ [s], the conjunction ⋀_{j∈J} φ_j with coefficient
// (-1)^{|J|+1} (equation (1) in Section 5.3).
func RawTerms(disjuncts []pp.PP) ([]Term, error) {
	s := len(disjuncts)
	if s == 0 {
		return nil, nil
	}
	if s > MaxDisjuncts {
		return nil, fmt.Errorf("ie: %d disjuncts exceed the 2^s expansion cap of %d", s, MaxDisjuncts)
	}
	var out []Term
	for mask := 1; mask < 1<<s; mask++ {
		var subset []int
		var parts []pp.PP
		for j := 0; j < s; j++ {
			if mask&(1<<j) != 0 {
				subset = append(subset, j)
				parts = append(parts, disjuncts[j])
			}
		}
		conj, err := pp.Conjoin(parts...)
		if err != nil {
			return nil, err
		}
		coeff := big.NewInt(1)
		if len(subset)%2 == 0 {
			coeff.SetInt64(-1)
		}
		out = append(out, Term{Formula: conj, Coeff: coeff, Subset: subset})
	}
	return out, nil
}

// Merge combines counting-equivalent terms, summing coefficients, and
// drops terms whose coefficient cancels to zero — the simplification step
// of Proposition 5.16.  Each class is represented by the core of its
// first-seen formula (logically equivalent, hence count-preserving).
//
// Merge is MergeInto against a throwaway pool; callers that want the
// interning statistics (or to share the pool downstream) use MergeInto.
func Merge(terms []Term) ([]Term, error) {
	return MergeInto(newPool(), terms)
}

// MergeInto interns every term into the pool (which must be fresh) and
// returns the cancelled expansion: one Term per counting class with a
// non-zero merged coefficient, in first-seen order, carrying the class's
// canonical fingerprint.
//
// The pool's interning (term.Pool) realizes the classification this
// package needs: counting equivalence is renaming equivalence
// (Theorem 5.4), and renaming-equivalent formulas have cores isomorphic
// up to a renaming of the liberal variables (Theorem 2.3 after
// identifying the liberal sets), so the canonical fingerprint of the
// core is a complete class invariant — equivalent terms merge even when
// their raw universes differ by redundant quantified parts, and the
// output is pairwise non-counting-equivalent, the contract Lemma 5.18's
// recursive peeling depends on.  Terms exceeding the canonical-labeling
// budget are classified by the pool's pairwise Theorem 5.4 fallback.
func MergeInto(pool *term.Pool, terms []Term) ([]Term, error) {
	if pool.Stats().Raw != 0 {
		return nil, fmt.Errorf("ie: MergeInto requires a fresh pool")
	}
	subsets := make(map[int][]int)
	for _, t := range terms {
		idx, err := pool.Add(t.Formula, t.Coeff)
		if err != nil {
			return nil, err
		}
		if _, seen := subsets[idx]; !seen {
			subsets[idx] = append([]int(nil), t.Subset...)
		}
	}
	var out []Term
	for idx, e := range pool.Terms() {
		if e.Coeff.Sign() == 0 {
			continue
		}
		out = append(out, Term{
			Formula: e.Formula,
			Coeff:   new(big.Int).Set(e.Coeff),
			FP:      e.FP,
			Subset:  subsets[idx],
		})
	}
	return out, nil
}

// PhiStar computes φ* for an all-free disjunction: the cancelled
// inclusion–exclusion expansion of Proposition 5.16.
func PhiStar(disjuncts []pp.PP) ([]Term, error) {
	return PhiStarInto(newPool(), disjuncts)
}

// PhiStarInto is PhiStar interning through the supplied (fresh) pool, so
// the caller keeps the per-class statistics and fingerprints.
func PhiStarInto(pool *term.Pool, disjuncts []pp.PP) ([]Term, error) {
	raw, err := RawTerms(disjuncts)
	if err != nil {
		return nil, err
	}
	return MergeInto(pool, raw)
}

// newPool returns a pool honoring the package's test hook.
func newPool() *term.Pool {
	pool := term.NewPool()
	pool.DisableCanon = disableCanonForTest
	return pool
}

// CountFunc counts a pp-formula on a structure; the caller chooses the
// engine (decoupling ie from the counting package).
type CountFunc func(pp.PP, *structure.Structure) (*big.Int, error)

// Count evaluates Σ_i c_i·|φ*_i(B)| with the supplied pp counter.
func Count(terms []Term, b *structure.Structure, cnt CountFunc) (*big.Int, error) {
	total := new(big.Int)
	for _, t := range terms {
		v, err := cnt(t.Formula, b)
		if err != nil {
			return nil, err
		}
		total.Add(total, new(big.Int).Mul(t.Coeff, v))
	}
	return total, nil
}

// disableCanonForTest forces Merge onto the pool's invariant-key +
// pairwise Theorem 5.4 fallback path, so tests can verify both paths
// agree.
var disableCanonForTest bool
