// Package ie implements the inclusion–exclusion machinery of Section 5.3:
// expanding a disjunction of free pp-formulas into signed conjunction
// terms, and cancelling counting-equivalent terms to obtain φ*
// (Proposition 5.16, Examples 4.2 and 5.15).  For every structure B,
//
//	|φ(B)| = Σ_i  c_i · |φ*_i(B)|,
//
// with pairwise non-counting-equivalent φ*_i and non-zero integer c_i.
package ie

import (
	"fmt"
	"math/big"

	"repro/internal/pp"
	"repro/internal/structure"
)

// Term is a signed pp-formula in an inclusion–exclusion expansion.
type Term struct {
	Formula pp.PP
	Coeff   *big.Int
	// Subset records one witnessing subset J of the original disjuncts
	// (indices) whose conjunction produced the representative formula.
	Subset []int
}

// MaxDisjuncts caps the 2^s inclusion–exclusion expansion.
const MaxDisjuncts = 20

// RawTerms returns the unmerged inclusion–exclusion expansion: for every
// non-empty J ⊆ [s], the conjunction ⋀_{j∈J} φ_j with coefficient
// (-1)^{|J|+1} (equation (1) in Section 5.3).
func RawTerms(disjuncts []pp.PP) ([]Term, error) {
	s := len(disjuncts)
	if s == 0 {
		return nil, nil
	}
	if s > MaxDisjuncts {
		return nil, fmt.Errorf("ie: %d disjuncts exceed the 2^s expansion cap of %d", s, MaxDisjuncts)
	}
	var out []Term
	for mask := 1; mask < 1<<s; mask++ {
		var subset []int
		var parts []pp.PP
		for j := 0; j < s; j++ {
			if mask&(1<<j) != 0 {
				subset = append(subset, j)
				parts = append(parts, disjuncts[j])
			}
		}
		conj, err := pp.Conjoin(parts...)
		if err != nil {
			return nil, err
		}
		coeff := big.NewInt(1)
		if len(subset)%2 == 0 {
			coeff.SetInt64(-1)
		}
		out = append(out, Term{Formula: conj, Coeff: coeff, Subset: subset})
	}
	return out, nil
}

// Merge combines counting-equivalent terms, summing coefficients, and
// drops terms whose coefficient cancels to zero — the simplification step
// of Proposition 5.16.  Each class is represented by the core of its
// first-seen formula (logically equivalent, hence count-preserving).
//
// Terms are bucketed by the invariant key of their *core*: counting
// equivalence is renaming equivalence (Theorem 5.4), and renaming-
// equivalent formulas have cores isomorphic up to a renaming of the
// liberal variables (Theorem 2.3 after identifying the liberal sets), so
// equivalent terms always share a bucket even when their raw universes
// differ by redundant quantified parts.  This guarantees the output is
// pairwise non-counting-equivalent — the contract Lemma 5.18's recursive
// peeling depends on.
func Merge(terms []Term) ([]Term, error) {
	// Fast path: canonical labeling of the core is a complete invariant
	// for counting equivalence (pp.CanonicalKey), so classes are exact
	// hash buckets.  If the labeling budget is ever exceeded, fall back
	// to invariant-key bucketing with pairwise Theorem 5.4 tests.
	type bucket struct{ idxs []int }
	canonIdx := make(map[string]int)
	buckets := make(map[string]*bucket)
	var merged []Term
	for _, t := range terms {
		cored, err := t.Formula.Core()
		if err != nil {
			return nil, err
		}
		if canon, err := cored.CanonicalKey(); err == nil && !disableCanonForTest {
			if mi, ok := canonIdx[canon]; ok {
				merged[mi].Coeff = new(big.Int).Add(merged[mi].Coeff, t.Coeff)
			} else {
				canonIdx[canon] = len(merged)
				merged = append(merged, Term{
					Formula: cored,
					Coeff:   new(big.Int).Set(t.Coeff),
					Subset:  append([]int(nil), t.Subset...),
				})
			}
			continue
		}
		key := cored.InvariantKey()
		b := buckets[key]
		if b == nil {
			b = &bucket{}
			buckets[key] = b
		}
		matched := false
		for _, mi := range b.idxs {
			eq, err := pp.CountingEquivalent(merged[mi].Formula, cored)
			if err != nil {
				return nil, err
			}
			if eq {
				merged[mi].Coeff = new(big.Int).Add(merged[mi].Coeff, t.Coeff)
				matched = true
				break
			}
		}
		if !matched {
			b.idxs = append(b.idxs, len(merged))
			merged = append(merged, Term{
				Formula: cored,
				Coeff:   new(big.Int).Set(t.Coeff),
				Subset:  append([]int(nil), t.Subset...),
			})
		}
	}
	var out []Term
	for _, t := range merged {
		if t.Coeff.Sign() != 0 {
			out = append(out, t)
		}
	}
	return out, nil
}

// PhiStar computes φ* for an all-free disjunction: the cancelled
// inclusion–exclusion expansion of Proposition 5.16.
func PhiStar(disjuncts []pp.PP) ([]Term, error) {
	raw, err := RawTerms(disjuncts)
	if err != nil {
		return nil, err
	}
	return Merge(raw)
}

// CountFunc counts a pp-formula on a structure; the caller chooses the
// engine (decoupling ie from the counting package).
type CountFunc func(pp.PP, *structure.Structure) (*big.Int, error)

// Count evaluates Σ_i c_i·|φ*_i(B)| with the supplied pp counter.
func Count(terms []Term, b *structure.Structure, cnt CountFunc) (*big.Int, error) {
	total := new(big.Int)
	for _, t := range terms {
		v, err := cnt(t.Formula, b)
		if err != nil {
			return nil, err
		}
		total.Add(total, new(big.Int).Mul(t.Coeff, v))
	}
	return total, nil
}

// disableCanonForTest forces Merge onto the invariant-key + pairwise
// Theorem 5.4 fallback path, so tests can verify both paths agree.
var disableCanonForTest bool
