package ie_test

import (
	"math/big"
	"testing"

	"repro/internal/count"
	"repro/internal/ie"
	"repro/internal/logic"
	"repro/internal/parser"
	"repro/internal/pp"
	"repro/internal/structure"
	"repro/internal/workload"
)

func edgeSig() *structure.Signature { return workload.EdgeSig() }

func mustDisjunct(t *testing.T, sig *structure.Signature, lib []logic.Var, src string) pp.PP {
	t.Helper()
	q, err := parser.ParseQuery(src)
	if err != nil {
		t.Fatal(err)
	}
	ds := q.Disjuncts()
	if len(ds) != 1 {
		t.Fatalf("%q is not a single pp disjunct", src)
	}
	p, err := pp.FromDisjunct(sig, lib, ds[0])
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// example42 returns φ1, φ2, φ3 of Example 4.2 over V = {w,x,y,z}.
func example42(t *testing.T) []pp.PP {
	t.Helper()
	lib := []logic.Var{"w", "x", "y", "z"}
	sig := edgeSig()
	return []pp.PP{
		mustDisjunct(t, sig, lib, "p(w,x,y,z) := E(x,y) & E(y,z)"),
		mustDisjunct(t, sig, lib, "p(w,x,y,z) := E(z,w) & E(w,x)"),
		mustDisjunct(t, sig, lib, "p(w,x,y,z) := E(w,x) & E(x,y)"),
	}
}

func TestRawTermsCount(t *testing.T) {
	ds := example42(t)
	raw, err := ie.RawTerms(ds)
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) != 7 {
		t.Fatalf("raw terms = %d, want 2³-1 = 7", len(raw))
	}
	// Signs: |J| odd → +1, |J| even → -1.
	for _, term := range raw {
		want := int64(1)
		if len(term.Subset)%2 == 0 {
			want = -1
		}
		if term.Coeff.Int64() != want {
			t.Fatalf("subset %v coeff = %v, want %d", term.Subset, term.Coeff, want)
		}
	}
}

// Example 4.2 / 5.15: after cancellation, φ* = {3·φ1, -2·(φ1∧φ3)}.
func TestExample42Cancellation(t *testing.T) {
	ds := example42(t)
	star, err := ie.PhiStar(ds)
	if err != nil {
		t.Fatal(err)
	}
	if len(star) != 2 {
		for _, s := range star {
			t.Logf("term %v × %v", s.Coeff, s.Formula)
		}
		t.Fatalf("φ* has %d terms, want 2", len(star))
	}
	var got3, gotm2 bool
	for _, s := range star {
		switch s.Coeff.Int64() {
		case 3:
			got3 = true
			// Representative must be counting equivalent to φ1.
			eq, err := pp.CountingEquivalent(s.Formula, ds[0])
			if err != nil {
				t.Fatal(err)
			}
			if !eq {
				t.Fatal("coefficient-3 term should be φ1's class")
			}
		case -2:
			gotm2 = true
			// Representative is the 3-path class (φ1∧φ3).
			conj, err := pp.Conjoin(ds[0], ds[2])
			if err != nil {
				t.Fatal(err)
			}
			eq, err := pp.CountingEquivalent(s.Formula, conj)
			if err != nil {
				t.Fatal(err)
			}
			if !eq {
				t.Fatal("coefficient -2 term should be φ1∧φ3's class")
			}
		default:
			t.Fatalf("unexpected coefficient %v", s.Coeff)
		}
	}
	if !got3 || !gotm2 {
		t.Fatal("missing expected coefficients 3 and -2")
	}
}

// The cancelled terms must still compute |φ(B)| exactly.
func TestExample42CountMatchesUnion(t *testing.T) {
	ds := example42(t)
	star, err := ie.PhiStar(ds)
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(0); seed < 10; seed++ {
		b := workload.RandomStructure(edgeSig(), 4, 0.4, seed)
		want, err := count.EPUnion(ds, b)
		if err != nil {
			t.Fatal(err)
		}
		got, err := ie.Count(star, b, func(p pp.PP, s *structure.Structure) (*big.Int, error) {
			return count.PP(p, s, count.EngineFPT)
		})
		if err != nil {
			t.Fatal(err)
		}
		if got.Cmp(want) != 0 {
			t.Fatalf("seed %d: IE count %v != union %v", seed, got, want)
		}
	}
}

// Raw (uncancelled) inclusion–exclusion must agree with the cancelled one.
func TestRawEqualsMerged(t *testing.T) {
	ds := example42(t)
	raw, err := ie.RawTerms(ds)
	if err != nil {
		t.Fatal(err)
	}
	star, err := ie.Merge(raw)
	if err != nil {
		t.Fatal(err)
	}
	b := workload.RandomStructure(edgeSig(), 5, 0.3, 42)
	cnt := func(p pp.PP, s *structure.Structure) (*big.Int, error) {
		return count.PP(p, s, count.EngineProjection)
	}
	a, err := ie.Count(raw, b, cnt)
	if err != nil {
		t.Fatal(err)
	}
	c, err := ie.Count(star, b, cnt)
	if err != nil {
		t.Fatal(err)
	}
	if a.Cmp(c) != 0 {
		t.Fatalf("raw %v != merged %v", a, c)
	}
}

// Example 4.1's expansion: φ1, φ2 not equivalent, no cancellation: φ* has
// all three terms with coefficients +1, +1, -1.
func TestExample41Terms(t *testing.T) {
	lib := []logic.Var{"w", "x", "y", "z"}
	sig := edgeSig()
	ds := []pp.PP{
		mustDisjunct(t, sig, lib, "p(w,x,y,z) := E(x,y) & E(w,x)"),
		mustDisjunct(t, sig, lib, "p(w,x,y,z) := E(x,y) & E(y,z) & E(z,z)"),
	}
	star, err := ie.PhiStar(ds)
	if err != nil {
		t.Fatal(err)
	}
	if len(star) != 3 {
		t.Fatalf("φ* terms = %d, want 3", len(star))
	}
	sum := new(big.Int)
	for _, s := range star {
		sum.Add(sum, s.Coeff)
	}
	if sum.Int64() != 1 {
		t.Fatalf("coefficients should sum to 1 (|J| parity), got %v", sum)
	}
}

func TestMaxDisjunctsGuard(t *testing.T) {
	lib := []logic.Var{"x", "y"}
	sig := edgeSig()
	one := mustDisjunct(t, sig, lib, "p(x,y) := E(x,y)")
	many := make([]pp.PP, ie.MaxDisjuncts+1)
	for i := range many {
		many[i] = one
	}
	if _, err := ie.RawTerms(many); err == nil {
		t.Fatal("expansion cap not enforced")
	}
}

// Regression: counting-equivalent terms with different universe sizes
// (one carries a redundant quantified part the other lacks) must still
// merge — the bucketing is by the invariant key of the CORE.  Here
// ψ1 = ∃u.E(x,u) and ψ2 = E(x,x): the conjunction ψ1∧ψ2 is counting
// equivalent to ψ2 (the quantified u retracts onto x), so their +1/−1
// coefficients cancel and φ* = {ψ1}.
func TestMergeAcrossUniverseSizes(t *testing.T) {
	sig := edgeSig()
	lib := []logic.Var{"x"}
	psi1 := mustDisjunct(t, sig, lib, "p(x) := exists u. E(x,u)")
	psi2 := mustDisjunct(t, sig, lib, "p(x) := E(x,x)")
	star, err := ie.PhiStar([]pp.PP{psi1, psi2})
	if err != nil {
		t.Fatal(err)
	}
	if len(star) != 1 {
		for _, s := range star {
			t.Logf("term %v × %v", s.Coeff, s.Formula)
		}
		t.Fatalf("φ* terms = %d, want 1 (ψ2 and ψ1∧ψ2 must cancel)", len(star))
	}
	eq, err := pp.CountingEquivalent(star[0].Formula, psi1)
	if err != nil {
		t.Fatal(err)
	}
	if !eq || star[0].Coeff.Int64() != 1 {
		t.Fatalf("surviving term %v × %v should be +1·ψ1", star[0].Coeff, star[0].Formula)
	}
	// And the cancelled expansion still counts correctly.
	for seed := int64(0); seed < 6; seed++ {
		b := workload.RandomStructure(sig, 3, 0.4, seed)
		want, err := count.EPUnion([]pp.PP{psi1, psi2}, b)
		if err != nil {
			t.Fatal(err)
		}
		got, err := ie.Count(star, b, func(p pp.PP, s *structure.Structure) (*big.Int, error) {
			return count.PP(p, s, count.EngineFPT)
		})
		if err != nil {
			t.Fatal(err)
		}
		if got.Cmp(want) != 0 {
			t.Fatalf("seed %d: %v != %v", seed, got, want)
		}
	}
}

// The output of ie.Merge must be pairwise non-counting-equivalent — the
// contract the backward reduction's peeling relies on.
func TestMergeOutputPairwiseInequivalent(t *testing.T) {
	ds := example42(t)
	star, err := ie.PhiStar(ds)
	if err != nil {
		t.Fatal(err)
	}
	for i := range star {
		for j := i + 1; j < len(star); j++ {
			eq, err := pp.CountingEquivalent(star[i].Formula, star[j].Formula)
			if err != nil {
				t.Fatal(err)
			}
			if eq {
				t.Fatalf("terms %d and %d are counting equivalent after ie.Merge", i, j)
			}
		}
	}
}

func TestEmptyDisjuncts(t *testing.T) {
	star, err := ie.PhiStar(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(star) != 0 {
		t.Fatal("empty input should give empty φ*")
	}
	b := workload.RandomStructure(edgeSig(), 3, 0.5, 7)
	got, err := ie.Count(star, b, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.Sign() != 0 {
		t.Fatal("empty sum should be 0")
	}
}

// The canonical-key fast path and the pairwise-equivalence fallback of
// ie.Merge must produce identical expansions.
func TestMergeFallbackAgreesWithCanonical(t *testing.T) {
	ds := example42(t)
	raw, err := ie.RawTerms(ds)
	if err != nil {
		t.Fatal(err)
	}
	fast, err := ie.Merge(raw)
	if err != nil {
		t.Fatal(err)
	}
	ie.SetDisableCanonForTest(true)
	defer ie.SetDisableCanonForTest(false)
	slow, err := ie.Merge(raw)
	if err != nil {
		t.Fatal(err)
	}
	if len(fast) != len(slow) {
		t.Fatalf("paths disagree: %d vs %d terms", len(fast), len(slow))
	}
	for i := range fast {
		if fast[i].Coeff.Cmp(slow[i].Coeff) != 0 {
			t.Fatalf("term %d coefficient: %v vs %v", i, fast[i].Coeff, slow[i].Coeff)
		}
		eq, err := pp.CountingEquivalent(fast[i].Formula, slow[i].Formula)
		if err != nil {
			t.Fatal(err)
		}
		if !eq {
			t.Fatalf("term %d representatives not equivalent", i)
		}
	}
	// And the size-crossing regression must also hold on the slow path.
	sig := edgeSig()
	lib := []logic.Var{"x"}
	psi1 := mustDisjunct(t, sig, lib, "p(x) := exists u. E(x,u)")
	psi2 := mustDisjunct(t, sig, lib, "p(x) := E(x,x)")
	star, err := ie.PhiStar([]pp.PP{psi1, psi2})
	if err != nil {
		t.Fatal(err)
	}
	if len(star) != 1 {
		t.Fatalf("fallback path: φ* terms = %d, want 1", len(star))
	}
}
