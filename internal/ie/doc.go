// Package ie implements the inclusion–exclusion machinery of Section 5.3:
// expanding a disjunction of free pp-formulas into signed conjunction
// terms, and cancelling counting-equivalent terms to obtain φ*
// (Proposition 5.16, Examples 4.2 and 5.15).  For every structure B,
//
//	|φ(B)| = Σ_i  c_i · |φ*_i(B)|,
//
// with pairwise non-counting-equivalent φ*_i and non-zero integer c_i.
package ie
