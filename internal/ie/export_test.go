package ie

// SetDisableCanonForTest flips the package onto (or off) the pool's
// pairwise-equivalence fallback path.  Test-only hook.
func SetDisableCanonForTest(v bool) { disableCanonForTest = v }
