package term_test

import (
	"testing"

	"repro/internal/pp"
	"repro/internal/structure"
	"repro/internal/term"
	"repro/internal/workload"
)

// formulaFromBytes decodes a small pp-formula over E/2 from a fuzz
// payload: universe size, tuple list, and liberal-set bitmask, all
// bounded so the canonical labeling always stays far under budget.
func formulaFromBytes(data []byte) (pp.PP, []byte, bool) {
	if len(data) < 3 {
		return pp.PP{}, nil, false
	}
	n := 2 + int(data[0])%4 // 2..5 elements
	nt := 1 + int(data[1])%6
	sBits := data[2]
	data = data[3:]
	if len(data) < 2*nt {
		return pp.PP{}, nil, false
	}
	a := structure.New(workload.EdgeSig())
	for i := 0; i < n; i++ {
		a.EnsureElem("v" + string(rune('0'+i)))
	}
	for i := 0; i < nt; i++ {
		if err := a.AddTuple("E", int(data[2*i])%n, int(data[2*i+1])%n); err != nil {
			return pp.PP{}, nil, false
		}
	}
	data = data[2*nt:]
	var s []int
	for v := 0; v < n; v++ {
		if sBits&(1<<v) != 0 {
			s = append(s, v)
		}
	}
	p, err := pp.New(a, s)
	if err != nil {
		return pp.PP{}, nil, false
	}
	return p, data, true
}

// permFromBytes decodes a permutation of [0,n) (Fisher–Yates driven by
// the payload; missing bytes read as zero).
func permFromBytes(data []byte, n int) []int {
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	for i := n - 1; i > 0; i-- {
		var b byte
		if len(data) > 0 {
			b, data = data[0], data[1:]
		}
		j := int(b) % (i + 1)
		perm[i], perm[j] = perm[j], perm[i]
	}
	return perm
}

// applyPerm rebuilds the formula with every element index mapped through
// perm: an isomorphic copy, so its fingerprint must not change.
func applyPerm(p pp.PP, perm []int) (pp.PP, error) {
	a := structure.New(p.A.Signature())
	for i := 0; i < p.A.Size(); i++ {
		a.EnsureElem("w" + string(rune('0'+i)))
	}
	var addErr error
	for _, r := range p.A.Signature().Rels() {
		p.A.ForEachTuple(r.Name, func(t []int) bool {
			nt := make([]int, len(t))
			for j, v := range t {
				nt[j] = perm[v]
			}
			addErr = a.AddTuple(r.Name, nt...)
			return addErr == nil
		})
		if addErr != nil {
			return pp.PP{}, addErr
		}
	}
	var s []int
	for _, v := range p.S {
		s = append(s, perm[v])
	}
	return pp.New(a, s)
}

// FuzzFingerprintInvariance checks the canonical-labeling core of the
// interning layer: the fingerprint of a formula is invariant under every
// permutation of its element indices (variable renaming), and permuted
// copies are counting equivalent to the original.
func FuzzFingerprintInvariance(f *testing.F) {
	f.Add([]byte{3, 4, 0b101, 0, 1, 1, 2, 2, 0, 1, 3, 9, 4, 7})
	f.Add([]byte{0, 0, 0, 0, 0})
	f.Add([]byte{2, 2, 0b11, 0, 1, 1, 0, 2, 5})
	f.Add([]byte{5, 5, 0b10010, 1, 2, 3, 4, 0, 0, 2, 3, 4, 1, 8, 1, 6, 2})
	f.Fuzz(func(t *testing.T, data []byte) {
		p, rest, ok := formulaFromBytes(data)
		if !ok {
			t.Skip()
		}
		fp1, err := term.Fingerprint(p)
		if err != nil {
			t.Skip() // labeling budget exceeded: no fingerprint to compare
		}
		perm := permFromBytes(rest, p.A.Size())
		q, err := applyPerm(p, perm)
		if err != nil {
			t.Fatal(err)
		}
		fp2, err := term.Fingerprint(q)
		if err != nil {
			t.Fatalf("permuted copy exceeded the labeling budget the original stayed under: %v", err)
		}
		if fp1 != fp2 {
			t.Fatalf("fingerprint not invariant under permutation %v:\n%q\nvs\n%q", perm, fp1, fp2)
		}
		eq, err := pp.CountingEquivalent(p, q)
		if err != nil {
			t.Fatal(err)
		}
		if !eq {
			t.Fatalf("permuted copy not counting equivalent under %v", perm)
		}
	})
}
