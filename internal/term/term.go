package term

import (
	"fmt"
	"math/big"

	"repro/internal/pp"
)

// Fingerprint returns the canonical counting-class fingerprint of a
// pp-formula: the canonical key of its core.  Two formulas over the same
// signature receive equal fingerprints iff they are counting equivalent
// (property-tested against pp.CountingEquivalent).  Errors indicate the
// canonical-labeling budget was exceeded; callers should then fall back
// to pairwise equivalence tests.
func Fingerprint(p pp.PP) (string, error) {
	cored, err := p.Core()
	if err != nil {
		return "", err
	}
	return cored.CanonicalKey()
}

// Interned is one unique counting class in a Pool: the cored
// representative of its first-seen term, the canonical fingerprint, and
// the merged inclusion–exclusion coefficient.
type Interned struct {
	// Formula is the core of the first term interned into this entry
	// (logically equivalent to it, hence count-preserving).
	Formula pp.PP
	// FP is the canonical fingerprint of the class; empty when the
	// canonical-labeling budget was exceeded and the entry was placed by
	// the pairwise-equivalence fallback.
	FP string
	// Coeff is the merged coefficient Σ of the interned terms' coefficients.
	Coeff *big.Int
	// Raw is the number of raw terms merged into this entry.
	Raw int

	rawMerged int // raw terms absorbed at the pre-core stage
	fallback  int // raw terms placed by the pairwise-equivalence fallback
}

// Stats summarizes a pool's interning activity.  The JSON tags are the
// wire shape epserved's /stats endpoint serves.
type Stats struct {
	// Raw is the number of terms interned (Add calls).
	Raw int `json:"raw"`
	// RawMerged counts raw terms absorbed at the raw (pre-core) stage:
	// each saved the cost of a core computation.
	RawMerged int `json:"raw_merged"`
	// Unique is the number of distinct counting classes (entries).
	Unique int `json:"unique"`
	// Cancelled is the number of entries whose merged coefficient is
	// currently zero — classes dropped before any plan is built.
	Cancelled int `json:"cancelled"`
	// Fallback counts terms placed via the pairwise-equivalence fallback
	// because canonical labeling exceeded its budget.
	Fallback int `json:"fallback"`
}

// Pool interns pp-terms by canonical core, aggregating inclusion–
// exclusion coefficients per counting class.  The zero Pool is not
// usable; call NewPool.  A Pool is not safe for concurrent use (it is a
// compile-time object; compiled outputs are immutable and shareable).
type Pool struct {
	// DisableCanon forces every Add onto the invariant-key + pairwise
	// Theorem 5.4 fallback path.  Test hook: lets tests verify the two
	// paths agree.
	DisableCanon bool

	entries []*Interned
	byRawFP map[string]int // raw-formula canonical key → entry index
	byFP    map[string]int // cored canonical key → entry index
	buckets map[string][]int // cored invariant key → all entry indices

	// Raw-stage gating: canonical labeling of the (larger) un-cored
	// formula only runs when a second term shares the same cheap
	// isomorphism-invariant profile — dedup-light expansions never pay
	// for it.  rawSeen counts terms per profile; rawPending holds the
	// first-in-profile terms whose raw labeling was deferred.
	rawSeen    map[string]int
	rawPending map[string][]rawPendingEntry
}

type rawPendingEntry struct {
	f   pp.PP
	idx int
}

// NewPool returns an empty pool.
func NewPool() *Pool {
	return &Pool{
		byRawFP:    make(map[string]int),
		byFP:       make(map[string]int),
		buckets:    make(map[string][]int),
		rawSeen:    make(map[string]int),
		rawPending: make(map[string][]rawPendingEntry),
	}
}

// rawProfile is the cheap isomorphism-invariant bucket key gating the
// raw stage: pp.InvariantKey (universe size, per-relation tuple counts,
// sorted liberal/quantified degree sequences — all renaming-invariant).
// Isomorphic raw terms always share a profile; collisions merely
// trigger a canonical labeling.
func rawProfile(p pp.PP) string { return p.InvariantKey() }

// Add interns the formula with the given coefficient and returns the
// index of its counting class among Terms().  The coefficient is read,
// not retained.
func (pl *Pool) Add(f pp.PP, coeff *big.Int) (int, error) {
	// Raw stage: isomorphic raw terms share a class without being cored.
	// The labeling only runs once a profile twin exists; the first term
	// of a profile defers (rawPending) and is labeled retroactively.
	var rawKey, deferProfile string
	if !pl.DisableCanon {
		profile := rawProfile(f)
		if pl.rawSeen[profile] == 0 {
			deferProfile = profile
		} else {
			for _, p := range pl.rawPending[profile] {
				if k, err := p.f.CanonicalKey(); err == nil {
					pl.byRawFP[k] = p.idx
				}
			}
			delete(pl.rawPending, profile)
			if k, err := f.CanonicalKey(); err == nil {
				rawKey = k
				if i, ok := pl.byRawFP[rawKey]; ok {
					pl.rawSeen[profile]++
					pl.entries[i].rawMerged++
					pl.merge(i, coeff)
					return i, nil
				}
			}
		}
		pl.rawSeen[profile]++
	}
	// Cored stage: the complete counting-class fingerprint.
	cored, err := f.Core()
	if err != nil {
		return -1, err
	}
	idx := -1
	var fp string
	if !pl.DisableCanon {
		if k, err := cored.CanonicalKey(); err == nil {
			fp = k
			if i, ok := pl.byFP[fp]; ok {
				idx = i
			}
		}
	}
	if idx < 0 {
		ikey := cored.InvariantKey()
		// A fingerprint miss can still coincide with an entry that itself
		// missed canonical labeling (equivalent formulas need not exceed
		// the budget together), so fingerprinted terms are compared
		// against the bucket's fingerprint-less entries; fallback terms
		// are compared against every entry in the bucket.
		for _, i := range pl.buckets[ikey] {
			if fp != "" && pl.entries[i].FP != "" {
				continue // both fingerprinted: inequality already decided
			}
			eq, err := pp.CountingEquivalent(pl.entries[i].Formula, cored)
			if err != nil {
				return -1, err
			}
			if eq {
				idx = i
				break
			}
		}
		if idx < 0 {
			idx = len(pl.entries)
			pl.entries = append(pl.entries, &Interned{Formula: cored, FP: fp, Coeff: new(big.Int)})
			pl.buckets[ikey] = append(pl.buckets[ikey], idx)
			if fp != "" {
				pl.byFP[fp] = idx
			}
		} else if fp != "" && pl.entries[idx].FP == "" {
			// Learned the class's fingerprint after the fact.
			pl.entries[idx].FP = fp
			pl.byFP[fp] = idx
		}
		if fp == "" {
			pl.entries[idx].fallback++
		}
	}
	if rawKey != "" {
		pl.byRawFP[rawKey] = idx
	} else if deferProfile != "" {
		pl.rawPending[deferProfile] = append(pl.rawPending[deferProfile], rawPendingEntry{f: f, idx: idx})
	}
	pl.merge(idx, coeff)
	return idx, nil
}

func (pl *Pool) merge(i int, coeff *big.Int) {
	e := pl.entries[i]
	e.Coeff.Add(e.Coeff, coeff)
	e.Raw++
}

// Terms returns every counting class in first-seen order, including
// classes whose merged coefficient has cancelled to zero.  The returned
// entries are the pool's own (coefficients keep merging on further Add
// calls).
func (pl *Pool) Terms() []*Interned { return pl.entries }

// Live returns the counting classes with non-zero merged coefficient, in
// first-seen order.
func (pl *Pool) Live() []*Interned {
	out := make([]*Interned, 0, len(pl.entries))
	for _, e := range pl.entries {
		if e.Coeff.Sign() != 0 {
			out = append(out, e)
		}
	}
	return out
}

// String renders the stats in the canonical one-line form shared by the
// CLIs, Explain, and the experiment tables.
func (st Stats) String() string {
	return fmt.Sprintf("%d raw IE terms → %d unique cores (%d cancelled, %d merged pre-core, %d via fallback)",
		st.Raw, st.Unique, st.Cancelled, st.RawMerged, st.Fallback)
}

// Stats returns a snapshot of the pool's interning counters.
func (pl *Pool) Stats() Stats {
	st := Stats{Unique: len(pl.entries)}
	for _, e := range pl.entries {
		st.Raw += e.Raw
		st.RawMerged += e.rawMerged
		st.Fallback += e.fallback
		if e.Coeff.Sign() == 0 {
			st.Cancelled++
		}
	}
	return st
}
