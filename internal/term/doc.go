// Package term implements canonical pp-term interning: the shared
// front-end of the counting pipeline that collapses the inclusion–
// exclusion term explosion at compile time.
//
// By the counting equivalences of Section 5 (Theorem 5.4, with
// Theorem 2.3 after identifying the liberal sets), two pp-terms have
// identical counts on every structure exactly when their cores are
// isomorphic under a map carrying liberal variables onto liberal
// variables.  A canonical labeling of the (tiny, parameter-bounded) core
// therefore yields a complete fingerprint of a term's counting class:
// terms with equal fingerprints are interchangeable everywhere in the
// pipeline — they can share one merged inclusion–exclusion coefficient,
// one compiled engine plan, and one per-structure count.
//
// The Pool interns terms in two stages:
//
//  1. raw stage — the canonical key of the un-cored formula.  Raw
//     inclusion–exclusion terms that are outright isomorphic (the same
//     conjunction up to renaming, e.g. φ_J for symmetric subsets J)
//     merge here without paying for a core computation at all;
//  2. cored stage — the canonical key of the core, the complete
//     counting-class fingerprint.  Terms whose cores coincide merge
//     their coefficients; entries whose merged coefficient cancels to
//     zero are dropped before any plan is built.
//
// Canonical labeling carries a permutation budget; terms that exceed it
// fall back to invariant-key bucketing with pairwise Theorem 5.4
// equivalence tests (and carry an empty fingerprint downstream, which
// simply opts them out of the fingerprint-keyed caches).
package term
