package term_test

import (
	"math/big"
	"math/rand"
	"testing"

	"repro/internal/logic"
	"repro/internal/parser"
	"repro/internal/pp"
	"repro/internal/structure"
	"repro/internal/term"
	"repro/internal/workload"
)

func mustDisjunct(t *testing.T, sig *structure.Signature, lib []logic.Var, src string) pp.PP {
	t.Helper()
	q, err := parser.ParseQuery(src)
	if err != nil {
		t.Fatal(err)
	}
	ds := q.Disjuncts()
	if len(ds) != 1 {
		t.Fatalf("%q is not a single pp disjunct", src)
	}
	p, err := pp.FromDisjunct(sig, lib, ds[0])
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestPoolMergesAndCancels(t *testing.T) {
	sig := workload.EdgeSig()
	lib := []logic.Var{"x", "y"}
	p1 := mustDisjunct(t, sig, lib, "p(x,y) := exists u. E(x,u) & E(u,y)")
	// p2 carries a redundant quantified part (v retracts onto u), so it is
	// counting equivalent to p1 but NOT raw-isomorphic: it must merge at
	// the cored stage, not the raw stage.
	p2 := mustDisjunct(t, sig, lib, "p(x,y) := exists u, v. E(x,u) & E(u,y) & E(x,v)")
	pl := term.NewPool()
	i1, err := pl.Add(p1, big.NewInt(1))
	if err != nil {
		t.Fatal(err)
	}
	// The identical formula again (raw-stage merge) with a cancelling
	// coefficient.
	i2, err := pl.Add(p1, big.NewInt(-1))
	if err != nil {
		t.Fatal(err)
	}
	if i1 != i2 {
		t.Fatalf("identical formulas interned to distinct classes %d, %d", i1, i2)
	}
	i3, err := pl.Add(p2, big.NewInt(2))
	if err != nil {
		t.Fatal(err)
	}
	st := pl.Stats()
	if st.Raw != 3 {
		t.Fatalf("Raw = %d, want 3", st.Raw)
	}
	if st.RawMerged != 1 {
		t.Fatalf("RawMerged = %d, want 1 (second Add of p1 merges pre-core; p2 must not)", st.RawMerged)
	}
	if i3 != i1 {
		t.Fatalf("p2's core is the 2-path: must intern into p1's class (%d vs %d)", i3, i1)
	}
	if st.Unique != 1 {
		t.Fatalf("Unique = %d, want 1", st.Unique)
	}
	if st.Unique != len(pl.Terms()) {
		t.Fatalf("Unique = %d, entries = %d", st.Unique, len(pl.Terms()))
	}
	// Coefficients: class of p1 carries 1−1(+2 if p2 joined it).
	for _, e := range pl.Terms() {
		if e.Coeff.Sign() == 0 && e.Raw < 2 {
			t.Fatalf("zero coefficient on a singleton class")
		}
	}
	live := pl.Live()
	for _, e := range live {
		if e.Coeff.Sign() == 0 {
			t.Fatal("Live returned a cancelled class")
		}
	}
}

func TestPoolCancellationDropsClass(t *testing.T) {
	sig := workload.EdgeSig()
	lib := []logic.Var{"x"}
	p := mustDisjunct(t, sig, lib, "p(x) := E(x,x)")
	pl := term.NewPool()
	if _, err := pl.Add(p, big.NewInt(3)); err != nil {
		t.Fatal(err)
	}
	if _, err := pl.Add(p, big.NewInt(-3)); err != nil {
		t.Fatal(err)
	}
	st := pl.Stats()
	if st.Unique != 1 || st.Cancelled != 1 {
		t.Fatalf("stats = %+v, want Unique 1 Cancelled 1", st)
	}
	if len(pl.Live()) != 0 {
		t.Fatal("cancelled class must not be live")
	}
}

// The canonical path and the DisableCanon fallback must agree on the
// classes and merged coefficients.
func TestPoolFallbackAgreesWithCanonical(t *testing.T) {
	sig := workload.EdgeSig()
	lib := []logic.Var{"x", "y"}
	formulas := []pp.PP{
		mustDisjunct(t, sig, lib, "p(x,y) := E(x,y)"),
		mustDisjunct(t, sig, lib, "p(x,y) := E(y,x)"),
		mustDisjunct(t, sig, lib, "p(x,y) := exists u. E(x,u) & E(u,y)"),
		mustDisjunct(t, sig, lib, "p(x,y) := exists v. E(y,v) & E(v,x)"),
		mustDisjunct(t, sig, lib, "p(x,y) := E(x,y) & E(y,x)"),
		mustDisjunct(t, sig, lib, "p(x,y) := exists u. E(x,y) & E(u,u)"),
	}
	coeffs := []int64{1, -1, 2, 2, -3, 1}
	fast, slow := term.NewPool(), term.NewPool()
	slow.DisableCanon = true
	for i, f := range formulas {
		if _, err := fast.Add(f, big.NewInt(coeffs[i])); err != nil {
			t.Fatal(err)
		}
		if _, err := slow.Add(f, big.NewInt(coeffs[i])); err != nil {
			t.Fatal(err)
		}
	}
	fl, sl := fast.Live(), slow.Live()
	if len(fl) != len(sl) {
		t.Fatalf("paths disagree: %d vs %d live classes", len(fl), len(sl))
	}
	for i := range fl {
		if fl[i].Coeff.Cmp(sl[i].Coeff) != 0 {
			t.Fatalf("class %d coefficient: %v vs %v", i, fl[i].Coeff, sl[i].Coeff)
		}
		eq, err := pp.CountingEquivalent(fl[i].Formula, sl[i].Formula)
		if err != nil {
			t.Fatal(err)
		}
		if !eq {
			t.Fatalf("class %d representatives not equivalent", i)
		}
	}
	if slow.Stats().Fallback != slow.Stats().Raw {
		t.Fatalf("DisableCanon pool should classify everything via fallback: %+v", slow.Stats())
	}
}

// randomFormula builds a deterministic pseudo-random pp-formula over E/2
// with n ∈ [2,5] elements.
func randomFormula(t *testing.T, rng *rand.Rand) pp.PP {
	t.Helper()
	sig := workload.EdgeSig()
	a := structure.New(sig)
	n := 2 + rng.Intn(4)
	for i := 0; i < n; i++ {
		a.EnsureElem("v" + string(rune('0'+i)))
	}
	tuples := 1 + rng.Intn(5)
	for i := 0; i < tuples; i++ {
		if err := a.AddTuple("E", rng.Intn(n), rng.Intn(n)); err != nil {
			t.Fatal(err)
		}
	}
	var s []int
	for v := 0; v < n; v++ {
		if rng.Intn(2) == 0 {
			s = append(s, v)
		}
	}
	p, err := pp.New(a, s)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// permuteFormula applies an element-index permutation to the formula:
// the result is isomorphic (liberal set carried along), hence counting
// equivalent.
func permuteFormula(t *testing.T, p pp.PP, perm []int) pp.PP {
	t.Helper()
	a := structure.New(p.A.Signature())
	n := p.A.Size()
	for i := 0; i < n; i++ {
		a.EnsureElem("w" + string(rune('0'+i)))
	}
	for _, r := range p.A.Signature().Rels() {
		var addErr error
		p.A.ForEachTuple(r.Name, func(tp []int) bool {
			nt := make([]int, len(tp))
			for j, v := range tp {
				nt[j] = perm[v]
			}
			addErr = a.AddTuple(r.Name, nt...)
			return addErr == nil
		})
		if addErr != nil {
			t.Fatal(addErr)
		}
	}
	var s []int
	for _, v := range p.S {
		s = append(s, perm[v])
	}
	q, err := pp.New(a, s)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

// Property: two pp-terms intern to the same fingerprint iff pp reports
// them counting-equivalent (Theorem 5.4 via canonical cores).
func TestFingerprintIffCountingEquivalent(t *testing.T) {
	rng := rand.New(rand.NewSource(20260729))
	var catalog []pp.PP
	for i := 0; i < 24; i++ {
		p := randomFormula(t, rng)
		catalog = append(catalog, p)
		// Guaranteed-positive pairs: an index-permuted copy.
		perm := rng.Perm(p.A.Size())
		catalog = append(catalog, permuteFormula(t, p, perm))
	}
	fps := make([]string, len(catalog))
	for i, p := range catalog {
		fp, err := term.Fingerprint(p)
		if err != nil {
			t.Fatalf("fingerprint budget exceeded on tiny formula %v: %v", p, err)
		}
		fps[i] = fp
	}
	for i := 0; i < len(catalog); i++ {
		for j := i + 1; j < len(catalog); j++ {
			eq, err := pp.CountingEquivalent(catalog[i], catalog[j])
			if err != nil {
				t.Fatal(err)
			}
			if eq != (fps[i] == fps[j]) {
				t.Fatalf("formulas %d (%v) and %d (%v): CountingEquivalent=%v but fingerprint equality=%v",
					i, catalog[i], j, catalog[j], eq, fps[i] == fps[j])
			}
		}
	}
}
