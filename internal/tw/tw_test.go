package tw

import (
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

func path(n int) *graph.Graph {
	g := graph.New(n)
	for i := 0; i+1 < n; i++ {
		g.AddEdge(i, i+1)
	}
	return g
}

func cycle(n int) *graph.Graph {
	g := path(n)
	g.AddEdge(n-1, 0)
	return g
}

func complete(n int) *graph.Graph {
	g := graph.New(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			g.AddEdge(i, j)
		}
	}
	return g
}

func grid(r, c int) *graph.Graph {
	g := graph.New(r * c)
	id := func(i, j int) int { return i*c + j }
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			if j+1 < c {
				g.AddEdge(id(i, j), id(i, j+1))
			}
			if i+1 < r {
				g.AddEdge(id(i, j), id(i+1, j))
			}
		}
	}
	return g
}

func TestTreewidthKnownValues(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
		want int
	}{
		{"empty-3", graph.New(3), 0},
		{"single", graph.New(1), 0},
		{"path-6", path(6), 1},
		{"cycle-5", cycle(5), 2},
		{"K4", complete(4), 3},
		{"K7", complete(7), 6},
		{"grid-3x3", grid(3, 3), 3},
		{"grid-2x4", grid(2, 4), 2},
	}
	for _, c := range cases {
		w, dec, exact := Treewidth(c.g)
		if !exact {
			t.Errorf("%s: expected exact result", c.name)
		}
		if w != c.want {
			t.Errorf("%s: treewidth = %d, want %d", c.name, w, c.want)
		}
		if err := dec.Validate(c.g); err != nil {
			t.Errorf("%s: invalid decomposition: %v", c.name, err)
		}
		if dec.Width() != w {
			t.Errorf("%s: decomposition width %d != reported %d", c.name, dec.Width(), w)
		}
	}
}

func TestHeuristicValid(t *testing.T) {
	for _, g := range []*graph.Graph{path(10), cycle(8), grid(3, 4), complete(6)} {
		dec := HeuristicDecomposition(g)
		if err := dec.Validate(g); err != nil {
			t.Fatalf("heuristic decomposition invalid: %v", err)
		}
	}
}

func TestLowerBoundMMD(t *testing.T) {
	if lb := LowerBoundMMD(complete(5)); lb != 4 {
		t.Fatalf("MMD(K5) = %d, want 4", lb)
	}
	if lb := LowerBoundMMD(path(7)); lb != 1 {
		t.Fatalf("MMD(path) = %d, want 1", lb)
	}
	if lb := LowerBoundMMD(cycle(6)); lb != 2 {
		t.Fatalf("MMD(cycle) = %d, want 2", lb)
	}
}

func TestValidateCatchesBadDecompositions(t *testing.T) {
	g := path(3)
	// Vertex missing.
	d := &Decomposition{Bags: [][]int{{0, 1}}, Parent: []int{-1}}
	if err := d.Validate(g); err == nil {
		t.Fatal("missing vertex not caught")
	}
	// Edge missing.
	d = &Decomposition{Bags: [][]int{{0, 1}, {2}}, Parent: []int{-1, 0}}
	if err := d.Validate(g); err == nil {
		t.Fatal("missing edge not caught")
	}
	// Disconnected occurrence of vertex 0.
	d = &Decomposition{Bags: [][]int{{0, 1}, {1, 2}, {0}}, Parent: []int{-1, 0, 1}}
	if err := d.Validate(g); err == nil {
		t.Fatal("disconnected vertex occurrences not caught")
	}
	// Two roots.
	d = &Decomposition{Bags: [][]int{{0, 1}, {1, 2}}, Parent: []int{-1, -1}}
	if err := d.Validate(g); err == nil {
		t.Fatal("multiple roots not caught")
	}
}

func TestDisconnectedGraph(t *testing.T) {
	g := graph.New(6)
	g.AddEdge(0, 1)
	g.AddEdge(3, 4)
	w, dec, exact := Treewidth(g)
	if w != 1 || !exact {
		t.Fatalf("tw = %d exact=%v, want 1 exact", w, exact)
	}
	if err := dec.Validate(g); err != nil {
		t.Fatalf("decomposition invalid: %v", err)
	}
}

// Property: on random graphs, the exact width is between the MMD lower
// bound and the min-fill upper bound, and its decomposition validates.
func TestTreewidthSandwichProperty(t *testing.T) {
	f := func(n uint8, seed int64) bool {
		size := int(n%7) + 2
		g := graph.New(size)
		s := seed
		for i := 0; i < size; i++ {
			for j := i + 1; j < size; j++ {
				s = s*2862933555777941757 + 3037000493
				if s%3 == 0 {
					g.AddEdge(i, j)
				}
			}
		}
		w, dec, exact := Treewidth(g)
		if !exact {
			return false
		}
		if err := dec.Validate(g); err != nil {
			return false
		}
		lb := LowerBoundMMD(g)
		ub := HeuristicDecomposition(g).Width()
		return lb <= w && w <= ub
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
