// Package tw computes tree decompositions and treewidth.  The paper's
// tractability and contraction conditions (Section 2.4) are stated in
// terms of the treewidth of query-derived graphs, which are tiny (their
// size is bounded by the parameter), so an exact branch-and-bound over
// elimination orders is affordable; greedy heuristics (min-fill,
// min-degree) provide upper bounds and decompositions for larger graphs,
// and MMD (maximum minimum degree) provides a lower bound.
package tw
