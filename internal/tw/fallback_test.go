package tw

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
)

// Beyond the exact-search cap the result must be flagged heuristic and
// the decomposition must still validate.
func TestHeuristicFallbackBeyondCap(t *testing.T) {
	n := exactLimit + 6
	rng := rand.New(rand.NewSource(5))
	g := graph.New(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < 0.2 {
				g.AddEdge(i, j)
			}
		}
	}
	w, dec, exact := Treewidth(g)
	if exact {
		t.Fatalf("graphs with %d > %d vertices must report heuristic widths", n, exactLimit)
	}
	if err := dec.Validate(g); err != nil {
		t.Fatalf("fallback decomposition invalid: %v", err)
	}
	if dec.Width() != w {
		t.Fatalf("width mismatch: %d vs %d", dec.Width(), w)
	}
	if w < LowerBoundMMD(g) {
		t.Fatalf("heuristic width %d below the MMD lower bound %d", w, LowerBoundMMD(g))
	}
}

// The elimination-order width search must respect the requested bound.
func TestElimOrderWidthBound(t *testing.T) {
	g := complete(5) // treewidth 4
	if _, ok := elimOrderWithWidth(g, 3); ok {
		t.Fatal("K5 must not admit a width-3 elimination order")
	}
	order, ok := elimOrderWithWidth(g, 4)
	if !ok {
		t.Fatal("K5 must admit a width-4 elimination order")
	}
	dec := FromEliminationOrder(g, order)
	if err := dec.Validate(g); err != nil {
		t.Fatal(err)
	}
	if dec.Width() != 4 {
		t.Fatalf("width = %d, want 4", dec.Width())
	}
}
