package tw

import (
	"fmt"
	"math/bits"
	"sort"

	"repro/internal/graph"
)

// Decomposition is a tree decomposition: bags of vertices connected by
// tree edges (parent[i] is the parent bag of bag i; parent[root] = -1).
type Decomposition struct {
	Bags   [][]int
	Parent []int
}

// Width returns the width of the decomposition (max bag size - 1).
func (d *Decomposition) Width() int {
	w := 0
	for _, b := range d.Bags {
		if len(b) > w {
			w = len(b)
		}
	}
	return w - 1
}

// Validate checks the three tree-decomposition conditions against g:
// every vertex is in some bag, every edge is inside some bag, and for each
// vertex the bags containing it form a connected subtree.
func (d *Decomposition) Validate(g *graph.Graph) error {
	if len(d.Bags) == 0 {
		return fmt.Errorf("tw: empty decomposition")
	}
	if len(d.Parent) != len(d.Bags) {
		return fmt.Errorf("tw: parent/bags length mismatch")
	}
	roots := 0
	for i, p := range d.Parent {
		if p == -1 {
			roots++
		} else if p < 0 || p >= len(d.Bags) || p == i {
			return fmt.Errorf("tw: bad parent %d for bag %d", p, i)
		}
	}
	if roots != 1 {
		return fmt.Errorf("tw: expected exactly one root, found %d", roots)
	}
	inBag := make([]map[int]bool, len(d.Bags))
	covered := make([]bool, g.N())
	for i, b := range d.Bags {
		inBag[i] = make(map[int]bool, len(b))
		for _, v := range b {
			if v < 0 || v >= g.N() {
				return fmt.Errorf("tw: bag %d contains out-of-range vertex %d", i, v)
			}
			inBag[i][v] = true
			covered[v] = true
		}
	}
	for v := 0; v < g.N(); v++ {
		if !covered[v] {
			return fmt.Errorf("tw: vertex %d in no bag", v)
		}
	}
	for v := 0; v < g.N(); v++ {
		for _, u := range g.Neighbors(v) {
			if u < v {
				continue
			}
			ok := false
			for i := range d.Bags {
				if inBag[i][v] && inBag[i][u] {
					ok = true
					break
				}
			}
			if !ok {
				return fmt.Errorf("tw: edge {%d,%d} in no bag", v, u)
			}
		}
	}
	// Connectivity: for each vertex, bags containing it must form a subtree.
	children := make([][]int, len(d.Bags))
	root := -1
	for i, p := range d.Parent {
		if p == -1 {
			root = i
		} else {
			children[p] = append(children[p], i)
		}
	}
	for v := 0; v < g.N(); v++ {
		// Count connected groups of bags containing v via one tree walk.
		groups := 0
		var walk func(i int, inGroup bool)
		walk = func(i int, inGroup bool) {
			has := inBag[i][v]
			if has && !inGroup {
				groups++
			}
			for _, c := range children[i] {
				walk(c, has)
			}
		}
		walk(root, false)
		if groups > 1 {
			return fmt.Errorf("tw: bags containing vertex %d are disconnected", v)
		}
	}
	return nil
}

// FromEliminationOrder builds a tree decomposition from an elimination
// order using the standard fill-in construction.  Bag i contains order[i]
// plus its higher-ordered neighbors in the fill graph; bag i's parent is
// the bag of the lowest-ordered vertex among those neighbors.
func FromEliminationOrder(g *graph.Graph, order []int) *Decomposition {
	n := g.N()
	if n == 0 {
		return &Decomposition{Bags: [][]int{{}}, Parent: []int{-1}}
	}
	pos := make([]int, n)
	for i, v := range order {
		pos[v] = i
	}
	// Fill graph: adjacency sets we mutate while eliminating.
	adj := make([]map[int]bool, n)
	for v := 0; v < n; v++ {
		adj[v] = make(map[int]bool)
		for _, u := range g.Neighbors(v) {
			adj[v][u] = true
		}
	}
	bags := make([][]int, n)
	bagOf := make([]int, n) // vertex -> index of its bag
	for i, v := range order {
		var later []int
		for u := range adj[v] {
			if pos[u] > i {
				later = append(later, u)
			}
		}
		sort.Ints(later)
		bag := append([]int{v}, later...)
		sort.Ints(bag)
		bags[i] = bag
		bagOf[v] = i
		// Connect later neighbors into a clique.
		for a := 0; a < len(later); a++ {
			for b := a + 1; b < len(later); b++ {
				adj[later[a]][later[b]] = true
				adj[later[b]][later[a]] = true
			}
		}
	}
	parent := make([]int, n)
	for i, v := range order {
		parent[i] = -1
		// Parent is the bag of the earliest-eliminated later neighbor.
		best := -1
		for _, u := range bags[i] {
			if u == v {
				continue
			}
			if best == -1 || pos[u] < pos[best] {
				best = u
			}
		}
		if best != -1 {
			parent[i] = bagOf[best]
		}
	}
	// Multiple roots arise for disconnected graphs; link extra roots to the
	// first root through an empty-intersection edge (still a valid tree
	// decomposition since shared vertices are none).
	firstRoot := -1
	for i := range parent {
		if parent[i] == -1 {
			if firstRoot == -1 {
				firstRoot = i
			} else {
				parent[i] = firstRoot
			}
		}
	}
	return &Decomposition{Bags: bags, Parent: parent}
}

// MinFillOrder returns an elimination order chosen greedily by minimum
// fill-in (ties broken by minimum degree, then index).
func MinFillOrder(g *graph.Graph) []int {
	n := g.N()
	adj := make([]map[int]bool, n)
	for v := 0; v < n; v++ {
		adj[v] = make(map[int]bool)
		for _, u := range g.Neighbors(v) {
			adj[v][u] = true
		}
	}
	alive := make([]bool, n)
	for i := range alive {
		alive[i] = true
	}
	order := make([]int, 0, n)
	for len(order) < n {
		best, bestFill, bestDeg := -1, 1<<30, 1<<30
		for v := 0; v < n; v++ {
			if !alive[v] {
				continue
			}
			var nbrs []int
			for u := range adj[v] {
				if alive[u] {
					nbrs = append(nbrs, u)
				}
			}
			fill := 0
			for a := 0; a < len(nbrs); a++ {
				for b := a + 1; b < len(nbrs); b++ {
					if !adj[nbrs[a]][nbrs[b]] {
						fill++
					}
				}
			}
			if fill < bestFill || (fill == bestFill && len(nbrs) < bestDeg) {
				best, bestFill, bestDeg = v, fill, len(nbrs)
			}
		}
		order = append(order, best)
		alive[best] = false
		var nbrs []int
		for u := range adj[best] {
			if alive[u] {
				nbrs = append(nbrs, u)
			}
		}
		for a := 0; a < len(nbrs); a++ {
			for b := a + 1; b < len(nbrs); b++ {
				adj[nbrs[a]][nbrs[b]] = true
				adj[nbrs[b]][nbrs[a]] = true
			}
		}
	}
	return order
}

// HeuristicDecomposition returns a min-fill tree decomposition.
func HeuristicDecomposition(g *graph.Graph) *Decomposition {
	return FromEliminationOrder(g, MinFillOrder(g))
}

// LowerBoundMMD returns the maximum-minimum-degree treewidth lower bound.
func LowerBoundMMD(g *graph.Graph) int {
	n := g.N()
	deg := make([]int, n)
	alive := make([]bool, n)
	adj := make([]map[int]bool, n)
	for v := 0; v < n; v++ {
		alive[v] = true
		adj[v] = make(map[int]bool)
		for _, u := range g.Neighbors(v) {
			adj[v][u] = true
		}
		deg[v] = len(adj[v])
	}
	lb, remaining := 0, n
	for remaining > 0 {
		best, bestDeg := -1, 1<<30
		for v := 0; v < n; v++ {
			if alive[v] && deg[v] < bestDeg {
				best, bestDeg = v, deg[v]
			}
		}
		if bestDeg > lb {
			lb = bestDeg
		}
		alive[best] = false
		remaining--
		for u := range adj[best] {
			if alive[u] {
				deg[u]--
			}
		}
	}
	return lb
}

// exactLimit caps the exact search; beyond it Treewidth falls back to the
// min-fill heuristic (query graphs never get close).
const exactLimit = 24

// Treewidth returns the treewidth of g together with a witnessing
// decomposition.  Exact for graphs with at most exactLimit vertices,
// min-fill upper bound beyond that (exact flag reports which).
func Treewidth(g *graph.Graph) (width int, dec *Decomposition, exact bool) {
	if g.N() == 0 {
		return -1, &Decomposition{Bags: [][]int{{}}, Parent: []int{-1}}, true
	}
	heur := HeuristicDecomposition(g)
	ub := heur.Width()
	if g.N() > exactLimit {
		return ub, heur, false
	}
	lb := LowerBoundMMD(g)
	if lb >= ub {
		return ub, heur, true
	}
	// Iterative tightening: test each candidate width k from lb upward.
	for k := lb; k < ub; k++ {
		if order, ok := elimOrderWithWidth(g, k); ok {
			return k, FromEliminationOrder(g, order), true
		}
	}
	return ub, heur, true
}

// elimOrderWithWidth searches for an elimination order of width ≤ k using
// depth-first search over vertex subsets with memoization (the QuickBB
// core).  Vertex sets are bitmasks, so this handles n ≤ exactLimit.
func elimOrderWithWidth(g *graph.Graph, k int) ([]int, bool) {
	n := g.N()
	type state = uint32
	full := state(1)<<n - 1
	baseAdj := make([]state, n)
	for v := 0; v < n; v++ {
		for _, u := range g.Neighbors(v) {
			baseAdj[v] |= 1 << u
		}
	}
	// In the eliminated-set model, the current degree of v given eliminated
	// set S is |reach(v, S)|: neighbors of v reachable through eliminated
	// vertices. This equals the fill-graph degree.
	reach := func(v int, elim state) state {
		seen := state(1 << v)
		frontier := baseAdj[v]
		var res state
		for frontier != 0 {
			u := bits.TrailingZeros32(uint32(frontier))
			frontier &^= 1 << u
			if seen&(1<<u) != 0 {
				continue
			}
			seen |= 1 << u
			if elim&(1<<u) != 0 {
				frontier |= baseAdj[u] &^ seen
			} else {
				res |= 1 << u
			}
		}
		return res
	}
	memoFail := make(map[state]bool)
	var rec func(elim state, order []int) ([]int, bool)
	rec = func(elim state, order []int) ([]int, bool) {
		if elim == full {
			return order, true
		}
		if memoFail[elim] {
			return nil, false
		}
		for v := 0; v < n; v++ {
			if elim&(1<<v) != 0 {
				continue
			}
			r := reach(v, elim)
			if bits.OnesCount32(uint32(r)) <= k {
				if res, ok := rec(elim|1<<v, append(order, v)); ok {
					return res, true
				}
			}
		}
		memoFail[elim] = true
		return nil, false
	}
	return rec(0, make([]int, 0, n))
}
