// Package classify operationalizes the trichotomy theorem (Theorem 3.2).
// For a pp-formula it measures the two quantities the classification is
// stated in: the treewidth of the core and the treewidth of the contract
// graph (Section 2.4).  For an ep-formula it first computes φ⁺
// (Theorem 3.1) and takes worst cases over its members.  For a
// parameterized query family it reports the growth of both widths, which
// is what distinguishes the three cases:
//
//	case 1 (FPT):            contract tw bounded and core tw bounded
//	case 2 (p-Clique-equiv): contract tw bounded, core tw unbounded
//	case 3 (p-#Clique-hard): contract tw unbounded
//
// The trichotomy is a statement about infinite classes; for finite inputs
// the package reports measured widths and the case a family generating
// them would fall into relative to supplied bounds.
package classify
