package classify

import (
	"sync"

	"repro/internal/pp"
)

// The classification memo: AnalyzeKeyed caches Reports per canonical
// counting-class fingerprint (term.Fingerprint).  Classification is
// treewidth-search heavy, so it must run once per interned term class,
// not once per Counter construction or per request.  Soundness mirrors
// the engine's fingerprint-keyed plan cache: equal fingerprints mean
// counting-equivalent (hence renaming-equivalent, Theorem 5.4) cored
// formulas, and renaming equivalence preserves the core graph, the
// contract graph, and the ∃-component structure — so one Report serves
// the whole class.
var (
	memoMu       sync.Mutex
	memo         = make(map[string]Report, memoCap)
	memoAnalyses uint64
	memoHits     uint64
)

// memoCap bounds the memo; on overflow the map is dropped wholesale
// (same policy as the engine plan caches — no LRU bookkeeping on the
// serving path).
const memoCap = 1024

// MemoStats reports the cumulative behavior of the classification memo:
// Analyses counts structural analyses actually performed through
// AnalyzeKeyed, Hits counts lookups served from the memo.
type MemoStats struct {
	Analyses uint64 `json:"analyses"`
	Hits     uint64 `json:"hits"`
}

// Stats returns the current classification-memo counters.
func Stats() MemoStats {
	memoMu.Lock()
	defer memoMu.Unlock()
	return MemoStats{Analyses: memoAnalyses, Hits: memoHits}
}

// AnalyzeKeyed measures an already-cored pp-formula, memoizing the
// Report under the canonical fingerprint fp.  The returned bool reports
// whether the Report came out of the memo.  An empty fp degrades to an
// unmemoized AnalyzeCored.
func AnalyzeKeyed(p pp.PP, fp string) (Report, bool) {
	if fp == "" {
		return AnalyzeCored(p), false
	}
	memoMu.Lock()
	if r, ok := memo[fp]; ok {
		memoHits++
		memoMu.Unlock()
		return r, true
	}
	memoMu.Unlock()
	r := AnalyzeCored(p)
	memoMu.Lock()
	memoAnalyses++
	if len(memo) >= memoCap {
		memo = make(map[string]Report, memoCap)
	}
	memo[fp] = r
	memoMu.Unlock()
	return r, false
}
