package classify

import (
	"fmt"

	"repro/internal/eptrans"
	"repro/internal/logic"
	"repro/internal/pp"
	"repro/internal/structure"
	"repro/internal/tw"
)

// Case is a trichotomy case of Theorem 3.2.
type Case int

const (
	// CaseFPT is case (1): the tractability condition holds.
	CaseFPT Case = iota + 1
	// CaseClique is case (2): only the contraction condition holds;
	// equivalent to p-Clique under counting FPT-reductions.
	CaseClique
	// CaseSharpClique is case (3): the contraction condition fails;
	// hard for p-#Clique.
	CaseSharpClique
)

func (c Case) String() string {
	switch c {
	case CaseFPT:
		return "case 1: FPT (tractability condition)"
	case CaseClique:
		return "case 2: p-Clique-interreducible (contraction condition only)"
	case CaseSharpClique:
		return "case 3: p-#Clique-hard"
	}
	return "unknown"
}

// Short returns the compact wire name of the case ("fpt", "clique",
// "sharp-clique"), used by the serving layer's response schema.
func (c Case) Short() string {
	switch c {
	case CaseFPT:
		return "fpt"
	case CaseClique:
		return "clique"
	case CaseSharpClique:
		return "sharp-clique"
	}
	return "unknown"
}

// Hard reports whether the case is one of the intractable regimes
// (cases 2/3), i.e. whether exact counting is not FPT under the
// bounds the case was computed against.
func (c Case) Hard() bool { return c == CaseClique || c == CaseSharpClique }

// Report carries the measured structural parameters of one pp-formula.
type Report struct {
	Formula pp.PP
	// Core is the cored formula (core of the augmented structure).
	Core pp.PP
	// CoreTreewidth is the treewidth of the core's graph.
	CoreTreewidth int
	// ContractTreewidth is the treewidth of contract(A,S).
	ContractTreewidth int
	// CoreExact / ContractExact report whether the widths are exact or
	// heuristic upper bounds (graphs beyond the exact-search cap).
	CoreExact     bool
	ContractExact bool
	// NumExistsComponents is the number of ∃-components of the core.
	NumExistsComponents int
	// MaxInterface is the largest ∃-component interface.
	MaxInterface int
}

// AnalyzePP measures one pp-formula.
func AnalyzePP(p pp.PP) (Report, error) {
	core, err := p.Core()
	if err != nil {
		return Report{}, err
	}
	return measure(p, core), nil
}

// AnalyzeCored measures a pp-formula that is already its own core (the
// interned φ⁻af terms of the counting pipeline are cored by
// construction), skipping the iterated-retraction core search.
func AnalyzeCored(p pp.PP) Report { return measure(p, p) }

func measure(p, core pp.PP) Report {
	r := Report{Formula: p, Core: core}
	g := core.Graph()
	r.CoreTreewidth, _, r.CoreExact = tw.Treewidth(g)
	cg, _ := pp.ContractGraph(core)
	r.ContractTreewidth, _, r.ContractExact = tw.Treewidth(cg)
	ecs := pp.ExistsComponents(core)
	r.NumExistsComponents = len(ecs)
	for _, ec := range ecs {
		if len(ec.Interface) > r.MaxInterface {
			r.MaxInterface = len(ec.Interface)
		}
	}
	return r
}

// CaseFor evaluates the trichotomy case of the measured formula against
// the width bounds (wCore, wContract) — the per-term analogue of
// ClassifyPPSet's verdict rule.
func (r Report) CaseFor(wCore, wContract int) Case {
	switch {
	case r.ContractTreewidth <= wContract && r.CoreTreewidth <= wCore:
		return CaseFPT
	case r.ContractTreewidth <= wContract:
		return CaseClique
	default:
		return CaseSharpClique
	}
}

// Verdict classifies a set of measured formulas against width bounds: a
// family whose members all satisfy contractTW ≤ wContract and coreTW ≤
// wCore satisfies the tractability condition with those constants.
type Verdict struct {
	Case              Case
	MaxCoreTW         int
	MaxContractTW     int
	Reports           []Report
	WCore, WContract  int
	AllWidthsExact    bool
	LimitingFormulaID int // index of a width-maximizing formula
}

func (v Verdict) String() string {
	return fmt.Sprintf("%v (max core tw %d vs bound %d, max contract tw %d vs bound %d)",
		v.Case, v.MaxCoreTW, v.WCore, v.MaxContractTW, v.WContract)
}

// ClassifyPPSet classifies a finite set of pp-formulas relative to the
// width bounds (wCore, wContract): the verdict is the Theorem 3.2 case of
// any family whose members stay within the measured maxima iff those
// maxima respect the bounds.
func ClassifyPPSet(pps []pp.PP, wCore, wContract int) (Verdict, error) {
	v := Verdict{WCore: wCore, WContract: wContract, AllWidthsExact: true, LimitingFormulaID: -1}
	for i, p := range pps {
		r, err := AnalyzePP(p)
		if err != nil {
			return Verdict{}, err
		}
		v.Reports = append(v.Reports, r)
		if r.CoreTreewidth > v.MaxCoreTW || r.ContractTreewidth > v.MaxContractTW {
			v.LimitingFormulaID = i
		}
		if r.CoreTreewidth > v.MaxCoreTW {
			v.MaxCoreTW = r.CoreTreewidth
		}
		if r.ContractTreewidth > v.MaxContractTW {
			v.MaxContractTW = r.ContractTreewidth
		}
		if !r.CoreExact || !r.ContractExact {
			v.AllWidthsExact = false
		}
	}
	switch {
	case v.MaxContractTW <= wContract && v.MaxCoreTW <= wCore:
		v.Case = CaseFPT
	case v.MaxContractTW <= wContract:
		v.Case = CaseClique
	default:
		v.Case = CaseSharpClique
	}
	return v, nil
}

// ClassifyEP compiles an ep-query to φ⁺ (Theorem 3.1) and classifies the
// members: by the equivalence theorem the query class inherits exactly the
// complexity of its φ⁺ (Theorem 3.2's proof).
func ClassifyEP(q logic.Query, sig *structure.Signature, wCore, wContract int) (Verdict, *eptrans.Compiled, error) {
	c, err := eptrans.Compile(q, sig)
	if err != nil {
		return Verdict{}, nil, err
	}
	v, err := ClassifyPPSet(c.Plus, wCore, wContract)
	if err != nil {
		return Verdict{}, nil, err
	}
	return v, c, nil
}

// FamilyPoint is one sample of a parameterized family analysis.
type FamilyPoint struct {
	K          int
	CoreTW     int
	ContractTW int
}

// Trend summarizes how a width grows along a family.
type Trend int

const (
	// TrendBounded: the width is constant over the sampled tail.
	TrendBounded Trend = iota
	// TrendGrowing: the width increases along the samples.
	TrendGrowing
)

func (t Trend) String() string {
	if t == TrendBounded {
		return "bounded"
	}
	return "growing"
}

// FamilyVerdict reports the measured growth of both widths along a
// parameterized family and the trichotomy case the observed trends imply
// (assuming the trends continue, which for the built-in families is a
// theorem-level fact noted in their documentation).
type FamilyVerdict struct {
	Points        []FamilyPoint
	CoreTrend     Trend
	ContractTrend Trend
	ImpliedCase   Case
}

// AnalyzeFamily measures gen(k) for each k in ks.  gen must return the
// ep-query for parameter k; widths are taken as the maximum over the φ⁺
// members.
func AnalyzeFamily(gen func(k int) logic.Query, sig *structure.Signature, ks []int) (FamilyVerdict, error) {
	var fv FamilyVerdict
	for _, k := range ks {
		v, _, err := ClassifyEP(gen(k), sig, 0, 0)
		if err != nil {
			return FamilyVerdict{}, err
		}
		fv.Points = append(fv.Points, FamilyPoint{K: k, CoreTW: v.MaxCoreTW, ContractTW: v.MaxContractTW})
	}
	fv.CoreTrend = trendOf(fv.Points, func(p FamilyPoint) int { return p.CoreTW })
	fv.ContractTrend = trendOf(fv.Points, func(p FamilyPoint) int { return p.ContractTW })
	switch {
	case fv.ContractTrend == TrendBounded && fv.CoreTrend == TrendBounded:
		fv.ImpliedCase = CaseFPT
	case fv.ContractTrend == TrendBounded:
		fv.ImpliedCase = CaseClique
	default:
		fv.ImpliedCase = CaseSharpClique
	}
	return fv, nil
}

func trendOf(pts []FamilyPoint, f func(FamilyPoint) int) Trend {
	if len(pts) < 2 {
		return TrendBounded
	}
	last := f(pts[len(pts)-1])
	prev := f(pts[len(pts)-2])
	if last > prev {
		return TrendGrowing
	}
	// Constant over the sampled tail (last two equal): check whether the
	// whole suffix after the first sample is flat.
	for i := 1; i < len(pts); i++ {
		if f(pts[i]) > f(pts[i-1]) && i == len(pts)-1 {
			return TrendGrowing
		}
	}
	return TrendBounded
}
