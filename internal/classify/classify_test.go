package classify

import (
	"testing"

	"repro/internal/logic"
	"repro/internal/pp"
	"repro/internal/structure"
	"repro/internal/workload"
)

func edgeSig() *structure.Signature { return workload.EdgeSig() }

func singlePP(t *testing.T, q logic.Query) pp.PP {
	t.Helper()
	ds := q.Disjuncts()
	if len(ds) != 1 {
		t.Fatalf("query %v is not primitive positive", q)
	}
	p, err := pp.FromDisjunct(edgeSig(), q.Lib, ds[0])
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestAnalyzePathQuery(t *testing.T) {
	// Path query: core tw 1, contract graph = single edge (tw 1).
	q := workload.PathQuery(4)
	v, _, err := ClassifyEP(q, edgeSig(), 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if v.Case != CaseFPT {
		t.Fatalf("path query case = %v, want FPT", v.Case)
	}
	if v.MaxCoreTW != 1 || v.MaxContractTW != 1 {
		t.Fatalf("path widths = (%d,%d), want (1,1)", v.MaxCoreTW, v.MaxContractTW)
	}
	if !v.AllWidthsExact {
		t.Fatal("small query widths should be exact")
	}
}

func TestAnalyzeCliqueSentence(t *testing.T) {
	// ∃-quantified k-clique: contract graph empty (tw ≤ 0), core = K_k.
	q := workload.CliqueSentence(4)
	v, _, err := ClassifyEP(q, edgeSig(), 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if v.Case != CaseClique {
		t.Fatalf("clique sentence case = %v, want CaseClique", v.Case)
	}
	if v.MaxCoreTW != 3 {
		t.Fatalf("K4 core tw = %d, want 3", v.MaxCoreTW)
	}
	if v.MaxContractTW > 0 {
		t.Fatalf("sentence contract tw = %d, want ≤ 0", v.MaxContractTW)
	}
}

func TestAnalyzeFreeClique(t *testing.T) {
	// Free k-clique: contract graph = K_k: case 3.
	q := workload.CliqueQuery(4)
	v, _, err := ClassifyEP(q, edgeSig(), 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if v.Case != CaseSharpClique {
		t.Fatalf("free clique case = %v, want CaseSharpClique", v.Case)
	}
	if v.MaxContractTW != 3 {
		t.Fatalf("free K4 contract tw = %d, want 3", v.MaxContractTW)
	}
}

func TestAnalyzeStarQuery(t *testing.T) {
	// Star with quantified center: the core is a star (tw 1) but the
	// contract graph is K_k: case 3 despite a tree-shaped query.
	q := workload.StarQuery(4)
	v, _, err := ClassifyEP(q, edgeSig(), 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if v.MaxCoreTW != 1 {
		t.Fatalf("star core tw = %d, want 1", v.MaxCoreTW)
	}
	if v.MaxContractTW != 3 {
		t.Fatalf("star contract tw = %d, want 3 (K4)", v.MaxContractTW)
	}
	if v.Case != CaseSharpClique {
		t.Fatalf("star case = %v, want CaseSharpClique", v.Case)
	}
}

func TestAnalyzePPReportFields(t *testing.T) {
	r, err := AnalyzePP(singlePP(t, workload.PathQuery(3)))
	if err != nil {
		t.Fatal(err)
	}
	if r.NumExistsComponents != 1 {
		t.Fatalf("∃-components = %d, want 1 (the quantified interior)", r.NumExistsComponents)
	}
	if r.MaxInterface != 2 {
		t.Fatalf("max interface = %d, want 2 ({s,t})", r.MaxInterface)
	}
	// Quantifier-free edge: no ∃-components.
	r, err = AnalyzePP(singlePP(t, workload.PathQuery(1)))
	if err != nil {
		t.Fatal(err)
	}
	if r.NumExistsComponents != 0 {
		t.Fatalf("edge query ∃-components = %d, want 0", r.NumExistsComponents)
	}
	if r.Core.A.Size() != 2 {
		t.Fatalf("edge core size = %d", r.Core.A.Size())
	}
}

func TestAnalyzeFamilyTrends(t *testing.T) {
	ks := []int{2, 3, 4, 5}
	// Path family: both widths bounded → case 1.
	fv, err := AnalyzeFamily(func(k int) logic.Query { return workload.PathQuery(k) }, edgeSig(), ks)
	if err != nil {
		t.Fatal(err)
	}
	if fv.ImpliedCase != CaseFPT {
		t.Fatalf("path family case = %v, want FPT", fv.ImpliedCase)
	}
	// Clique sentence family: core grows, contract bounded → case 2.
	fv, err = AnalyzeFamily(func(k int) logic.Query { return workload.CliqueSentence(k) }, edgeSig(), ks)
	if err != nil {
		t.Fatal(err)
	}
	if fv.ImpliedCase != CaseClique {
		t.Fatalf("clique sentence family case = %v, want CaseClique", fv.ImpliedCase)
	}
	if fv.CoreTrend != TrendGrowing {
		t.Fatal("clique sentence core width must grow")
	}
	// Free clique family: contract grows → case 3.
	fv, err = AnalyzeFamily(func(k int) logic.Query { return workload.CliqueQuery(k) }, edgeSig(), ks)
	if err != nil {
		t.Fatal(err)
	}
	if fv.ImpliedCase != CaseSharpClique {
		t.Fatalf("free clique family case = %v, want CaseSharpClique", fv.ImpliedCase)
	}
	if fv.ContractTrend != TrendGrowing {
		t.Fatal("free clique contract width must grow")
	}
}

func TestClassifyDisjunctionWorstCase(t *testing.T) {
	// A union of a path query and a free triangle: φ⁺ contains a term
	// with contract width 2, so the class is case 3 w.r.t. bound 1.
	pathQ := workload.PathQuery(2)
	triQ := workload.CliqueQuery(3)
	f := logic.Or{L: pathQ.F, R: renameToLib(triQ, []logic.Var{"s", "t", "r"})}
	q := logic.MustQuery("mix", []logic.Var{"s", "t", "r"}, f)
	v, _, err := ClassifyEP(q, edgeSig(), 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if v.Case != CaseSharpClique {
		t.Fatalf("mixed query case = %v, want CaseSharpClique", v.Case)
	}
}

// renameToLib rewrites a query's liberal variables to the given names.
func renameToLib(q logic.Query, lib []logic.Var) logic.Formula {
	f := q.F
	for i, v := range q.Lib {
		f = substVar(f, v, lib[i])
	}
	return f
}

func substVar(f logic.Formula, from, to logic.Var) logic.Formula {
	switch g := f.(type) {
	case logic.Atom:
		args := make([]logic.Var, len(g.Args))
		for i, v := range g.Args {
			if v == from {
				args[i] = to
			} else {
				args[i] = v
			}
		}
		return logic.Atom{Rel: g.Rel, Args: args}
	case logic.And:
		return logic.And{L: substVar(g.L, from, to), R: substVar(g.R, from, to)}
	case logic.Or:
		return logic.Or{L: substVar(g.L, from, to), R: substVar(g.R, from, to)}
	case logic.Exists:
		if g.V == from {
			return g
		}
		return logic.Exists{V: g.V, Body: substVar(g.Body, from, to)}
	default:
		return f
	}
}
