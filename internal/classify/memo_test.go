package classify

import (
	"fmt"
	"testing"

	"repro/internal/pp"
	"repro/internal/workload"
)

// TestAnalyzeKeyedMemoizes checks the memo contract directly: the first
// lookup under a fingerprint analyzes, every later lookup is a hit with
// the identical Report, and an empty fingerprint bypasses the memo.
func TestAnalyzeKeyedMemoizes(t *testing.T) {
	p, err := pp.New(workload.GraphStructure(workload.CompleteGraph(3)), []int{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	fp := fmt.Sprintf("memo-test-%p", t) // unique per run: never pre-seeded
	s0 := Stats()

	r1, hit := AnalyzeKeyed(p, fp)
	if hit {
		t.Fatal("first lookup reported a memo hit")
	}
	s1 := Stats()
	if s1.Analyses != s0.Analyses+1 || s1.Hits != s0.Hits {
		t.Fatalf("first lookup: stats %+v → %+v, want exactly one analysis", s0, s1)
	}

	for i := 0; i < 3; i++ {
		r2, hit := AnalyzeKeyed(p, fp)
		if !hit {
			t.Fatalf("lookup %d re-analyzed instead of hitting the memo", i+2)
		}
		if r2.CoreTreewidth != r1.CoreTreewidth || r2.ContractTreewidth != r1.ContractTreewidth ||
			r2.NumExistsComponents != r1.NumExistsComponents || r2.MaxInterface != r1.MaxInterface {
			t.Fatalf("memoized report drifted: %+v vs %+v", r2, r1)
		}
	}
	s2 := Stats()
	if s2.Analyses != s1.Analyses || s2.Hits != s1.Hits+3 {
		t.Fatalf("repeat lookups: stats %+v → %+v, want three hits and no analyses", s1, s2)
	}

	if _, hit := AnalyzeKeyed(p, ""); hit {
		t.Fatal("empty fingerprint must bypass the memo")
	}
	if s3 := Stats(); s3 != s2 {
		t.Fatalf("empty-fingerprint lookup touched the memo counters: %+v → %+v", s2, s3)
	}
}
