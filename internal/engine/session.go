package engine

import (
	"context"
	"errors"
	"hash/fnv"
	"math/big"
	"strconv"
	"sync"
	"sync/atomic"

	"repro/internal/hom"
	"repro/internal/structure"
)

// Session is the per-structure state of the counting pipeline: the
// structure's fingerprint (computed lazily, once), the materialized
// constraint tables, cached sentence checks, and cached semi-join prune
// results.  One session serves every φ⁻af term of a compiled query,
// repeated Count calls, and batched counting — each distinct constraint
// scheme is materialized against the structure exactly once.  Sessions
// are safe for concurrent use.
//
// The memo maps are keyed partly by compile-time pointers (component,
// sub-structure), so a long-lived session fed by endlessly recompiled
// plans would otherwise grow without bound; each map is wiped wholesale
// when it reaches sessionMemoCap (a memo, not a store — entries rebuild
// on demand).
type Session struct {
	B *structure.Structure

	version uint64
	snap    structure.Snapshot
	fpOnce  sync.Once
	fp      uint64

	// ar backs the session's table rows and prefix-index slots with
	// pooled chunks (arena.go).  pins is the reference count guarding
	// that memory: it starts at 1 (the registry's reference, dropped by
	// retire) and is incremented around every count's executor window
	// (acquirePin/releasePin).  When it reaches zero, freeArena wipes
	// the arena-referencing memos and returns the chunks to the pools.
	ar       *arena
	pins     atomic.Int64
	freeOnce sync.Once

	mu        sync.Mutex
	tables    map[tableKey]*tableEntry
	sentences map[*structure.Structure]bool
	pruned    map[*planComponent]*pruneEntry
	counts    map[countKey]*countEntry
	// prior holds the settled, advanceable counts adopted from the
	// structure's previous session (SessionFor carries them across a
	// version bump): instead of recomputing a warm fingerprint from
	// scratch, the delta executor advances its prior value by the rows
	// appended since (delta.go).  Priors live inside the session, so
	// LRU eviction of the session frees them with everything else.
	prior map[countKey]priorCount
}

// priorCount is one adopted count: its value, the snapshot of the
// structure extent it was computed at, and the plan's opaque
// advanceable state.  All fields are read-only once installed.
type priorCount struct {
	v     *big.Int
	snap  structure.Snapshot
	state any
}

// countKey identifies a memoized term count: the canonical counting-
// class fingerprint plus the engine it was evaluated with.  Counts are
// engine-independent in value, but keeping the engine in the key lets
// differential tests exercise engines side by side without cross-talk.
type countKey struct {
	fp   string
	name Name
}

// countEntry guards one memoized count: the installing caller drives the
// computation and closes ch when it finishes, duplicate requests wait on
// ch (or their own context — a deadlined waiter unblocks without the
// driver) while distinct fingerprints compute concurrently.  state is
// the plan's opaque advanceable state (nil for plans without delta
// support); done flips true only after a successful computation, so a
// concurrent settledCounts can adopt v/state safely (the atomic store
// orders the writes before any reader that observes done).
type countEntry struct {
	ch    chan struct{}
	v     *big.Int
	state any
	err   error
	done  atomic.Bool
}

// pruneEntry guards one component's bound execution plan: semi-join
// pre-pruning, per-node bind orders, and table prefix indexes are all
// deterministic per (component, session), so repeated counts reuse the
// bound plan instead of re-running the fixpoint and re-sorting
// constraints.
type pruneEntry struct {
	once  sync.Once
	ep    *execPlan
	empty bool
}

// tableEntry guards one table's materialization: the registry lock is
// only held to install the entry, so distinct tables build concurrently
// while duplicate requests wait on the entry's Once.
type tableEntry struct {
	once sync.Once
	t    *Table
}

// NewSession builds a fresh session for b.
func NewSession(b *structure.Structure) *Session {
	snap := b.Snapshot()
	s := &Session{
		B:         b,
		version:   snap.Version,
		snap:      snap,
		ar:        &arena{},
		tables:    make(map[tableKey]*tableEntry),
		sentences: make(map[*structure.Structure]bool),
		pruned:    make(map[*planComponent]*pruneEntry),
		counts:    make(map[countKey]*countEntry),
	}
	s.pins.Store(1) // the owner's reference, dropped by retire
	return s
}

// acquirePin takes a reference on the session's arena memory for the
// duration of an executor window (increment-if-positive, so a pin can
// never resurrect a session whose memory was already freed).  It returns
// false when the session has been retired and fully released: by then
// freeArena has completed — acquirePin blocks on it via the Once — the
// table/plan memos are wiped, and every rebuild falls back to plain heap
// allocation, so the caller proceeds unpinned and safely, just slower.
func (s *Session) acquirePin() bool {
	for {
		n := s.pins.Load()
		if n <= 0 {
			s.freeArena() // idempotent; waits until the chunks are back in the pools
			return false
		}
		if s.pins.CompareAndSwap(n, n+1) {
			return true
		}
	}
}

// releasePin drops a reference taken by acquirePin; the last release
// after retirement frees the arena.
func (s *Session) releasePin() {
	if s.pins.Add(-1) == 0 {
		s.freeArena()
	}
}

// retire drops the owner's reference: the registry calls it exactly once
// when the session leaves the cache (LRU eviction, stale replacement,
// ReleaseSession).  The arena is freed immediately if no count is in
// flight, otherwise by the last releasePin.
func (s *Session) retire() { s.releasePin() }

// freeArena wipes every memo that can reference arena memory (tables,
// bound plans) and returns the arena's chunks to the process pools.  The
// refcount protocol guarantees no executor window is open when it runs;
// any later use of the session rebuilds heap-backed state on demand.
func (s *Session) freeArena() {
	s.freeOnce.Do(func() {
		s.mu.Lock()
		s.tables = make(map[tableKey]*tableEntry)
		s.pruned = make(map[*planComponent]*pruneEntry)
		ar := s.ar
		s.ar = nil
		s.mu.Unlock()
		ar.free()
	})
}

// arenaFor returns the session's arena (nil after retirement, which
// makes every downstream allocation fall back to the heap).
func (s *Session) arenaFor() *arena {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ar
}

// CountMemo returns the session-cached count of the canonical counting
// class fp under engine name, computing it with f on first use.  One
// session counts each unique term at most once, no matter how many
// inclusion–exclusion terms, repeated counts, Counters, or batch workers
// ask for it — the per-(session, structure-version) count cache of the
// interned pipeline.  The returned value is shared: callers must treat
// it as read-only.  The bool reports a cache hit (the value may still be
// computed by a concurrent first caller; the Once serializes that).
func (s *Session) CountMemo(fp string, name Name, f func() (*big.Int, error)) (*big.Int, bool, error) {
	return s.countMemoState(nil, fp, name, func(*priorCount) (*big.Int, any, error) {
		v, err := f()
		return v, nil, err
	})
}

// countMemoHit is the allocation-free warm path of the count memo: it
// reports the settled value of (fp, name) without building closures or
// entries.  A miss (absent, still computing, or failed) falls through to
// the full countMemoState machinery.
func (s *Session) countMemoHit(fp string, name Name) (*big.Int, bool) {
	s.mu.Lock()
	e := s.counts[countKey{fp: fp, name: name}]
	s.mu.Unlock()
	if e != nil && e.done.Load() {
		return e.v, true
	}
	return nil, false
}

// countMemoState is CountMemo with prior-state threading: the compute
// function receives the count's adopted prior (value, snapshot, opaque
// advanceable state from the structure's previous session) when one
// exists, so a delta-capable plan can advance it instead of recounting;
// it returns the new value plus the state a future advance starts from.
//
// The installing caller becomes the driver; duplicate callers park on
// the entry.  A parked caller whose own ctx fires returns its ctx error
// immediately instead of riding out the driver's computation — a
// serving request's deadline bounds its wait even when another request
// owns the compute (nil ctx waits indefinitely).
func (s *Session) countMemoState(ctx context.Context, fp string, name Name, f func(prev *priorCount) (*big.Int, any, error)) (*big.Int, bool, error) {
	key := countKey{fp: fp, name: name}
	s.mu.Lock()
	e := s.counts[key]
	hit := e != nil
	if e == nil {
		if len(s.counts) >= sessionMemoCap {
			s.counts = make(map[countKey]*countEntry)
		}
		e = &countEntry{ch: make(chan struct{})}
		s.counts[key] = e
		s.mu.Unlock()
		// Driver path.  The prior is looked up here (not at install
		// time) so the computation sees the freshest adopted state.
		var prev *priorCount
		s.mu.Lock()
		if p, ok := s.prior[key]; ok {
			prev = &p
		}
		s.mu.Unlock()
		e.v, e.state, e.err = f(prev)
		if e.err == nil {
			e.done.Store(true)
		} else if errors.Is(e.err, context.Canceled) || errors.Is(e.err, context.DeadlineExceeded) {
			// A cancelled computation must not poison the memo: evict
			// the entry (if it is still ours) before releasing the
			// waiters, so their retries install a fresh entry.
			// CountKeyedCtx retries waiters whose own context is alive.
			s.mu.Lock()
			if s.counts[key] == e {
				delete(s.counts, key)
			}
			s.mu.Unlock()
		}
		close(e.ch)
		return e.v, hit, e.err
	}
	s.mu.Unlock()
	if ctx != nil {
		select {
		case <-e.ch:
		case <-ctx.Done():
			return nil, true, ctx.Err()
		}
	} else {
		<-e.ch
	}
	return e.v, hit, e.err
}

// Fingerprint returns the FNV-1a hash of the structure's universe and
// tuples, computed lazily on first use (a full pass over the structure)
// and cached for the session's lifetime.
func (s *Session) Fingerprint() uint64 {
	s.fpOnce.Do(func() { s.fp = fingerprint(s.B) })
	return s.fp
}

// Valid reports whether the structure is unchanged since the session was
// created (sessions must be discarded after mutation).
func (s *Session) Valid() bool { return s.B.Version() == s.version }

func fingerprint(b *structure.Structure) uint64 {
	h := fnv.New64a()
	var sz [8]byte
	for i, u := 0, uint64(b.Size()); i < 8; i++ {
		sz[i] = byte(u >> (8 * i))
	}
	h.Write(sz[:])
	// Hash column-major straight off the relation stores, flushing in
	// chunks: one Write per ~1k values instead of one per value.
	buf := make([]byte, 0, 4096)
	for _, r := range b.Signature().Rels() {
		h.Write([]byte(r.Name))
		rel := b.Rel(r.Name)
		for p := 0; p < r.Arity; p++ {
			for _, v := range rel.Col(p) {
				buf = append(buf, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
				if len(buf) >= 4096-4 {
					h.Write(buf)
					buf = buf[:0]
				}
			}
		}
		if len(buf) > 0 {
			h.Write(buf)
			buf = buf[:0]
		}
	}
	return h.Sum64()
}

// SentenceHolds reports whether sub maps homomorphically into the
// session's structure, caching the answer per sub-structure identity.
func (s *Session) SentenceHolds(sub *structure.Structure) bool {
	s.mu.Lock()
	ok, cached := s.sentences[sub]
	s.mu.Unlock()
	if cached {
		return ok
	}
	ok = hom.Exists(sub, s.B, hom.Options{})
	s.mu.Lock()
	if len(s.sentences) >= sessionMemoCap {
		s.sentences = make(map[*structure.Structure]bool)
	}
	s.sentences[sub] = ok
	s.mu.Unlock()
	return ok
}

// tableKey identifies a constraint scheme's materialization: atom tables
// by (relation, projection template), predicate tables by the identity of
// the ∃-component structure and its interface.  Two constraints with the
// same key have identical tables on any structure.
type tableKey struct {
	kind byte // 'a' atom, 'p' predicate
	rel  string
	sub  *structure.Structure
	enc  string
}

func makeTableKey(c *planConstraint) tableKey {
	if c.sub == nil {
		return tableKey{kind: 'a', rel: c.rel, enc: structure.TupleKey(c.atomTmpl, nil) + ";" + strconv.Itoa(len(c.scope))}
	}
	return tableKey{kind: 'p', sub: c.sub, enc: structure.TupleKey(c.iface, nil)}
}

// sessionMemoCap bounds each per-session memo map (tables, sentences,
// pruned results); reaching it wipes that map wholesale.
const sessionMemoCap = 1024

// execPlanFor returns the component's execution plan bound to this
// session's tables (or empty=true when pruning emptied some table): the
// semi-join pre-pruning pass, the per-node constraint bind orders, and
// the prefix indexes the steps probe, computed once per (component,
// session) and shared across repeated counts.  tables must be the
// component's session-materialized tables, which are deterministic here,
// so first-caller-wins is sound.
func (s *Session) execPlanFor(pc *planComponent, tables []*Table) (*execPlan, bool) {
	s.mu.Lock()
	e := s.pruned[pc]
	if e == nil {
		if len(s.pruned) >= sessionMemoCap {
			s.pruned = make(map[*planComponent]*pruneEntry)
		}
		e = &pruneEntry{}
		s.pruned[pc] = e
	}
	s.mu.Unlock()
	e.once.Do(func() {
		pruned, empty := semiJoinPrune(pc, tables, s.B.Size())
		if empty {
			e.empty = true
			return
		}
		e.ep = newExecPlan(pc, pruned, s.B.Size())
	})
	return e.ep, e.empty
}

// tableFor returns the materialized table of the constraint, building it
// on first use and sharing it afterwards.  Distinct constraints
// materialize concurrently; duplicate requests block only on their own
// table.
func (s *Session) tableFor(c *planConstraint) *Table {
	s.mu.Lock()
	e := s.tables[c.key]
	if e == nil {
		if len(s.tables) >= sessionMemoCap {
			s.tables = make(map[tableKey]*tableEntry)
		}
		e = &tableEntry{}
		s.tables[c.key] = e
	}
	s.mu.Unlock()
	e.once.Do(func() { e.t = s.materialize(c) })
	return e.t
}

func (s *Session) materialize(c *planConstraint) *Table {
	width := len(c.scope)
	t := newTable(width, s.B.Size(), s.arenaFor())
	if c.sub == nil {
		// Atom constraint: project B's relation through the template
		// directly off the columnar store into the table's flat row-major
		// cells, deduplicating projected rows with a packed-key tuple set
		// (no string keys, no [][]int materialization of the relation).
		rel := s.B.Rel(c.rel)
		n := rel.Len()
		if n == 0 {
			return t
		}
		cols := make([][]int32, len(c.atomTmpl))
		for j := range c.atomTmpl {
			cols[j] = rel.Col(j)
		}
		// Sized to the relation: projection only removes rows, so n bounds
		// the distinct count and bulk insertion never rehashes.
		dedup := structure.NewTupleSetSized(width, n)
		vals := make([]int, width)
		seen := make([]bool, width)
	rowLoop:
		for row := 0; row < n; row++ {
			for i := range seen {
				seen[i] = false
			}
			for j, si := range c.atomTmpl {
				u := int(cols[j][row])
				if seen[si] && vals[si] != u {
					continue rowLoop
				}
				vals[si] = u
				seen[si] = true
			}
			if dedup.Add(vals) {
				t.appendRow(vals)
			}
		}
		return t
	}
	// ∃-component predicate: the extendable interface assignments.  Each
	// distinct assignment is reported exactly once.
	hom.ForEachExtendable(c.sub, s.B, c.iface, hom.Options{}, func(vals []int) bool {
		t.appendRow(vals)
		return true
	})
	return t
}

// The session registry memoizes sessions per structure identity, keyed by
// pointer and validated by mutation version, so one-shot Plan.Count calls
// against a repeatedly used structure share materializations with every
// other caller.  At capacity the least-recently-used entries are evicted
// (an eighth of the cache at a time, so eviction is amortized): hot
// sessions keep their materialized tables under cap pressure.
const sessionCacheCap = 64

type sessionEntry struct {
	s   *Session
	use uint64 // registry clock at last SessionFor hit
}

var (
	sessionMu    sync.Mutex
	sessionClock uint64
	sessions     = make(map[*structure.Structure]*sessionEntry, sessionCacheCap)
)

// sessionEvictions counts sessions dropped by LRU cap pressure since
// process start (telemetry; see SessionStats).
var sessionEvictions atomic.Uint64

// evictSessionsLocked drops the least-recently-used entries until at
// least sessionCacheCap/8 slots are free.  Caller holds sessionMu.
func evictSessionsLocked() {
	target := sessionCacheCap - sessionCacheCap/8
	if target < 1 {
		target = 1
	}
	for len(sessions) >= target {
		var oldest *structure.Structure
		var oldestUse uint64
		for b, e := range sessions {
			if oldest == nil || e.use < oldestUse {
				oldest, oldestUse = b, e.use
			}
		}
		evicted := sessions[oldest].s
		delete(sessions, oldest)
		evicted.retire()
		sessionEvictions.Add(1)
	}
}

// SessionCacheStats is a snapshot of the process-wide session registry:
// how many structures currently hold a cached session (materialized
// constraint tables, bound exec plans, count memos), the registry's
// capacity, and how many sessions LRU pressure has evicted since
// process start.  Long-running services surface it next to
// core.Counter.Stats.
type SessionCacheStats struct {
	Sessions  int    `json:"sessions"`
	Cap       int    `json:"cap"`
	Evictions uint64 `json:"evictions"`
}

// SessionStats returns a consistent snapshot of the session registry's
// telemetry.  Safe for concurrent use.
func SessionStats() SessionCacheStats {
	sessionMu.Lock()
	n := len(sessions)
	sessionMu.Unlock()
	return SessionCacheStats{Sessions: n, Cap: sessionCacheCap, Evictions: sessionEvictions.Load()}
}

// SessionFor returns the cached session of b, creating (or replacing a
// stale) one as needed.  NewSession is cheap (fingerprinting and all
// materialization are lazy), so the whole lookup runs under the
// registry lock.
//
// Replacing a stale session carries its settled advanceable counts into
// the new one as priors (settledCounts), so a warm memo survives the
// version bump: the next keyed count advances the prior by the appended
// delta instead of recounting (delta.go).  Priors exist only inside the
// owning session — a session dropped by LRU pressure or ReleaseSession
// takes its priors with it, so advanceable memos never outlive their
// structure's registry entry.
func SessionFor(b *structure.Structure) *Session {
	v := b.Version()
	sessionMu.Lock()
	defer sessionMu.Unlock()
	sessionClock++
	if e := sessions[b]; e != nil {
		if e.s.version == v {
			e.use = sessionClock
			return e.s
		}
		ns := NewSession(b)
		if e.s.version < v {
			// Priors are advanceable only FORWARD: the delta path
			// reconciles "state at e.s.version" up to v by scanning the
			// rows appended in between.  A version that moved backwards
			// (the structure was rebuilt or replaced underneath us, e.g.
			// by recovery tooling) has no such delta, so the stale
			// session's counts are unusable — drop them.
			ns.prior = e.s.settledCounts()
		}
		sessions[b] = &sessionEntry{s: ns, use: sessionClock}
		e.s.retire()
		return ns
	}
	if len(sessions) >= sessionCacheCap {
		evictSessionsLocked()
	}
	ns := NewSession(b)
	sessions[b] = &sessionEntry{s: ns, use: sessionClock}
	return ns
}

// settledCounts collects the session's advanceable counts for adoption
// by its successor: every prior it never got around to refreshing, then
// every entry that finished successfully with delta state (stamped with
// this session's snapshot).  Entries without state cannot be advanced
// and are dropped.  Returns nil past the memo cap — a memo, not a
// store.
func (s *Session) settledCounts() map[countKey]priorCount {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[countKey]priorCount, len(s.prior)+len(s.counts))
	for k, p := range s.prior {
		out[k] = p
	}
	for k, e := range s.counts {
		if e.done.Load() && e.state != nil {
			out[k] = priorCount{v: e.v, snap: s.snap, state: e.state}
		}
	}
	if len(out) == 0 || len(out) > sessionMemoCap {
		return nil
	}
	return out
}

// ReleaseSession drops b's cached session (if any), releasing its
// materialized tables and returning its arena chunks to the process
// pools.  Long-lived processes that are done with a structure can call
// this instead of waiting for cap-triggered eviction.
func ReleaseSession(b *structure.Structure) {
	sessionMu.Lock()
	e := sessions[b]
	delete(sessions, b)
	sessionMu.Unlock()
	if e != nil {
		e.s.retire()
	}
}
