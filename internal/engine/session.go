package engine

import (
	"hash/fnv"
	"strconv"
	"sync"

	"repro/internal/hom"
	"repro/internal/structure"
)

// Session is the per-structure state of the counting pipeline: the
// structure's fingerprint (computed once), the materialized constraint
// tables, and cached sentence checks.  One session serves every φ⁻af term
// of a compiled query, repeated Count calls, and batched counting — each
// distinct constraint scheme is materialized against the structure
// exactly once.  Sessions are safe for concurrent use.
type Session struct {
	B *structure.Structure

	version uint64
	fp      uint64

	mu        sync.Mutex
	tables    map[tableKey]*tableEntry
	sentences map[*structure.Structure]bool
}

// tableEntry guards one table's materialization: the registry lock is
// only held to install the entry, so distinct tables build concurrently
// while duplicate requests wait on the entry's Once.
type tableEntry struct {
	once sync.Once
	t    *Table
}

// NewSession builds a fresh session for b, fingerprinting it once.
func NewSession(b *structure.Structure) *Session {
	return &Session{
		B:         b,
		version:   b.Version(),
		fp:        fingerprint(b),
		tables:    make(map[tableKey]*tableEntry),
		sentences: make(map[*structure.Structure]bool),
	}
}

// Fingerprint returns the FNV-1a hash of the structure's universe and
// tuples, computed once at session creation.
func (s *Session) Fingerprint() uint64 { return s.fp }

// Valid reports whether the structure is unchanged since the session was
// created (sessions must be discarded after mutation).
func (s *Session) Valid() bool { return s.B.Version() == s.version }

func fingerprint(b *structure.Structure) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	writeInt := func(v int) {
		u := uint64(v)
		for i := 0; i < 8; i++ {
			buf[i] = byte(u >> (8 * i))
		}
		h.Write(buf[:])
	}
	writeInt(b.Size())
	for _, r := range b.Signature().Rels() {
		h.Write([]byte(r.Name))
		for _, t := range b.Tuples(r.Name) {
			for _, v := range t {
				writeInt(v)
			}
		}
	}
	return h.Sum64()
}

// SentenceHolds reports whether sub maps homomorphically into the
// session's structure, caching the answer per sub-structure identity.
func (s *Session) SentenceHolds(sub *structure.Structure) bool {
	s.mu.Lock()
	ok, cached := s.sentences[sub]
	s.mu.Unlock()
	if cached {
		return ok
	}
	ok = hom.Exists(sub, s.B, hom.Options{})
	s.mu.Lock()
	s.sentences[sub] = ok
	s.mu.Unlock()
	return ok
}

// tableKey identifies a constraint scheme's materialization: atom tables
// by (relation, projection template), predicate tables by the identity of
// the ∃-component structure and its interface.  Two constraints with the
// same key have identical tables on any structure.
type tableKey struct {
	kind byte // 'a' atom, 'p' predicate
	rel  string
	sub  *structure.Structure
	enc  string
}

func makeTableKey(c *planConstraint) tableKey {
	if c.sub == nil {
		return tableKey{kind: 'a', rel: c.rel, enc: encodeInts(c.atomTmpl) + ";" + strconv.Itoa(len(c.scope))}
	}
	return tableKey{kind: 'p', sub: c.sub, enc: encodeInts(c.iface)}
}

func encodeInts(vals []int) string {
	buf := make([]byte, 0, 4*len(vals))
	for _, v := range vals {
		buf = append(buf, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
	}
	return string(buf)
}

// tableFor returns the materialized table of the constraint, building it
// on first use and sharing it afterwards.  Distinct constraints
// materialize concurrently; duplicate requests block only on their own
// table.
func (s *Session) tableFor(c *planConstraint) *Table {
	s.mu.Lock()
	e := s.tables[c.key]
	if e == nil {
		e = &tableEntry{}
		s.tables[c.key] = e
	}
	s.mu.Unlock()
	e.once.Do(func() { e.t = s.materialize(c) })
	return e.t
}

func (s *Session) materialize(c *planConstraint) *Table {
	t := &Table{}
	width := len(c.scope)
	if c.sub == nil {
		// Atom constraint: project B's relation through the template,
		// deduplicating rows (packed keys when they fit).
		codec := newKeyCodec(s.B.Size(), width)
		var seenPK map[uint64]bool
		var seenSK map[string]bool
		if codec.packed {
			seenPK = make(map[uint64]bool)
		} else {
			seenSK = make(map[string]bool)
		}
		var keyBuf []byte
		vals := make([]int, width)
		seen := make([]bool, width)
	tupleLoop:
		for _, u := range s.B.Tuples(c.rel) {
			for i := range seen {
				seen[i] = false
			}
			for j, si := range c.atomTmpl {
				if seen[si] && vals[si] != u[j] {
					continue tupleLoop
				}
				vals[si] = u[j]
				seen[si] = true
			}
			if codec.packed {
				k := codec.pack(vals)
				if seenPK[k] {
					continue
				}
				seenPK[k] = true
			} else {
				k := spillKey(vals, keyBuf)
				if seenSK[k] {
					continue
				}
				seenSK[k] = true
			}
			t.tuples = append(t.tuples, append([]int(nil), vals...))
		}
		return t
	}
	// ∃-component predicate: the extendable interface assignments.  Each
	// distinct assignment is reported exactly once.
	hom.ForEachExtendable(c.sub, s.B, c.iface, hom.Options{}, func(vals []int) bool {
		t.tuples = append(t.tuples, append([]int(nil), vals...))
		return true
	})
	return t
}

// The session registry memoizes sessions per structure identity, keyed by
// pointer and validated by mutation version, so one-shot Plan.Count calls
// against a repeatedly used structure share materializations with every
// other caller.
const sessionCacheCap = 64

var (
	sessionMu sync.Mutex
	sessions  = make(map[*structure.Structure]*Session, sessionCacheCap)
)

// SessionFor returns the cached session of b, creating (or replacing a
// stale) one as needed.
func SessionFor(b *structure.Structure) *Session {
	v := b.Version()
	sessionMu.Lock()
	s := sessions[b]
	if s == nil || s.version != v {
		sessionMu.Unlock()
		ns := NewSession(b) // fingerprinting outside the registry lock
		sessionMu.Lock()
		// Re-check: another goroutine may have installed a session while
		// the fingerprint was computed.
		if s = sessions[b]; s == nil || s.version != v {
			if len(sessions) >= sessionCacheCap {
				sessions = make(map[*structure.Structure]*Session, sessionCacheCap)
			}
			sessions[b] = ns
			s = ns
		}
	}
	sessionMu.Unlock()
	return s
}

// ReleaseSession drops b's cached session (if any), releasing its
// materialized tables.  Long-lived processes that are done with a
// structure can call this instead of waiting for cap-triggered eviction.
func ReleaseSession(b *structure.Structure) {
	sessionMu.Lock()
	delete(sessions, b)
	sessionMu.Unlock()
}
