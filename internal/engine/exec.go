package engine

import (
	"math"
	"math/big"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/structure"
)

// The executor runs the join-count dynamic program over a compiled
// component.  Node tables map bag assignments to the number of extensions
// over the subtree's variables; children merge by grouping on shared bag
// variables; bag assignments are enumerated by joining the local
// constraint tables smallest-first and free-enumerating locally
// unconstrained bag variables.
//
// Two representation choices make this the hot path's fast path:
//
//   - bag assignments are packed into uint64 keys (⌈log₂ |B|⌉ bits per
//     variable) whenever they fit, spilling to byte-string keys only for
//     wide bags;
//   - extension counts are int64 until an addition or multiplication
//     would overflow, then fall back to big.Int per entry.

// packedKeyBudget is the number of key bits available before the packed
// representation spills to strings.  It is a variable (not a constant)
// only so tests can force the spill path on small instances; it is
// atomic because the executor reads it from concurrent workers.
var packedKeyBudget atomic.Int64

func init() { packedKeyBudget.Store(64) }

// SetPackedKeyBudget overrides the packed-key bit budget and returns a
// restore function.  Test hook: forcing the budget to 0 routes every bag
// through the wide-bag spill path.  Restore re-installs the value seen
// at override time, so callers must not interleave override/restore
// pairs.
func SetPackedKeyBudget(bits int) (restore func()) {
	old := packedKeyBudget.Swap(int64(bits))
	return func() { packedKeyBudget.Store(old) }
}

// keyCodec packs fixed-width assignments of values in [0, domSize) into
// uint64 keys, or marks the width as spilled.
type keyCodec struct {
	bits   uint
	width  int
	packed bool
}

func newKeyCodec(domSize, width int) keyCodec {
	b := uint(bits.Len(uint(domSize - 1)))
	if b == 0 {
		b = 1
	}
	return keyCodec{bits: b, width: width, packed: int64(width)*int64(b) <= packedKeyBudget.Load()}
}

func (c keyCodec) pack(vals []int) uint64 {
	var k uint64
	for _, v := range vals {
		k = k<<c.bits | uint64(v)
	}
	return k
}

func (c keyCodec) unpack(key uint64, out []int) {
	mask := uint64(1)<<c.bits - 1
	for i := c.width - 1; i >= 0; i-- {
		out[i] = int(key & mask)
		key >>= c.bits
	}
}

// spillKey is the byte-string encoding used when a bag does not fit the
// packed budget: the shared structure.TupleKey codec.  buf is reused
// between calls; the returned string is a fresh allocation (it must be,
// to serve as a map key).
func spillKey(vals []int, buf []byte) string { return structure.TupleKey(vals, buf) }

func spillDecode(key string, out []int) { structure.TupleKeyDecode(key, out) }

// wnum is a non-negative extension count: int64 while it fits, big.Int
// after the first overflow.  The zero value is 0.
type wnum struct {
	lo int64    // valid iff b == nil
	b  *big.Int // nil in the fast path
}

func (w wnum) isZero() bool {
	if w.b != nil {
		return w.b.Sign() == 0
	}
	return w.lo == 0
}

func (w wnum) toBig() *big.Int {
	if w.b != nil {
		return w.b
	}
	return big.NewInt(w.lo)
}

// addInto accumulates w into acc (mutating acc, which the caller owns).
func (w wnum) addInto(acc *big.Int) {
	if w.b != nil {
		acc.Add(acc, w.b)
		return
	}
	var t big.Int
	t.SetInt64(w.lo)
	acc.Add(acc, &t)
}

func addW(a, b wnum) wnum {
	if a.b == nil && b.b == nil {
		s := a.lo + b.lo
		if s >= 0 { // both operands are non-negative: wrap ⇒ negative
			return wnum{lo: s}
		}
	}
	return wnum{b: new(big.Int).Add(a.toBig(), b.toBig())}
}

func mulW(a, b wnum) wnum {
	if a.b == nil && b.b == nil {
		hi, lo := bits.Mul64(uint64(a.lo), uint64(b.lo))
		if hi == 0 && lo <= math.MaxInt64 {
			return wnum{lo: int64(lo)}
		}
	}
	return wnum{b: new(big.Int).Mul(a.toBig(), b.toBig())}
}

// wmap is a keyed accumulator of wnums: packed (uint64 keys) or spilled
// (string keys), chosen by the codec.
type wmap struct {
	codec keyCodec
	pk    map[uint64]wnum
	sk    map[string]wnum
}

func newWmap(codec keyCodec) *wmap {
	m := &wmap{codec: codec}
	if codec.packed {
		m.pk = make(map[uint64]wnum)
	} else {
		m.sk = make(map[string]wnum)
	}
	return m
}

// add accumulates w at the key for vals.  buf is scratch for spill keys.
func (m *wmap) add(vals []int, w wnum, buf []byte) {
	if m.codec.packed {
		k := m.codec.pack(vals)
		m.pk[k] = addW(m.pk[k], w)
		return
	}
	k := spillKey(vals, buf)
	m.sk[k] = addW(m.sk[k], w)
}

// get looks up the weight at vals; ok reports presence.
func (m *wmap) get(vals []int, buf []byte) (wnum, bool) {
	if m.codec.packed {
		w, ok := m.pk[m.codec.pack(vals)]
		return w, ok
	}
	w, ok := m.sk[spillKey(vals, buf)]
	return w, ok
}

// forEach visits every (assignment, weight) pair, decoding keys into the
// supplied scratch slice (len == codec.width, reused between visits).
func (m *wmap) forEach(vals []int, fn func(vals []int, w wnum)) {
	if m.codec.packed {
		for k, w := range m.pk {
			m.codec.unpack(k, vals)
			fn(vals, w)
		}
		return
	}
	for k, w := range m.sk {
		spillDecode(k, vals)
		fn(vals, w)
	}
}

// Table is a materialized constraint: the set of allowed assignments over
// its scope (variable positions), deduplicated.  Tables are immutable
// once built and shared across plans via the Session.
type Table struct {
	tuples [][]int
}

// Len returns the number of distinct rows.
func (t *Table) Len() int { return len(t.tuples) }

// execScratch holds the per-call buffers of the executor, pooled across
// calls to keep the inner loop allocation-free.
type execScratch struct {
	assign   []int
	assigned []bool
	proj     []int
	vals     []int
	freeIdx  []int
	bound    []int // stack of bound bag positions across rec levels
	keyBuf   []byte
}

var scratchPool = sync.Pool{New: func() any { return &execScratch{} }}

func (sc *execScratch) ensure(width int) {
	if cap(sc.assign) < width {
		sc.assign = make([]int, width)
		sc.assigned = make([]bool, width)
		sc.proj = make([]int, width)
		sc.vals = make([]int, width)
		sc.freeIdx = make([]int, width)
		sc.keyBuf = make([]byte, 0, 8*width)
	}
	sc.bound = sc.bound[:0]
}

// joinCount runs the join-count DP over the compiled decomposition and
// returns the total number of assignments of the component's active
// variables (with multiplicities counting extensions of the quantified
// subtree variables — which are none at the root, so the total is exact).
func joinCount(pc *planComponent, tables []*Table, domSize int) *big.Int {
	dec := pc.dec
	sc := scratchPool.Get().(*execScratch)
	maxWidth := 0
	for _, bag := range dec.Bags {
		if len(bag) > maxWidth {
			maxWidth = len(bag)
		}
	}
	sc.ensure(maxWidth)
	defer scratchPool.Put(sc)

	type nodeTable struct {
		vars []int
		m    *wmap
	}
	memo := make([]*nodeTable, len(dec.Bags))

	var process func(ni int) *nodeTable
	process = func(ni int) *nodeTable {
		if memo[ni] != nil {
			return memo[ni]
		}
		bag := dec.Bags[ni]
		nt := &nodeTable{vars: bag, m: newWmap(newKeyCodec(domSize, len(bag)))}

		type childGroup struct {
			shared []int // indices into bag
			sums   *wmap
		}
		var groups []childGroup
		for _, c := range pc.children[ni] {
			ct := process(c)
			sharedBagIdx, sharedChildIdx := sharedPositions(bag, ct.vars)
			g := childGroup{shared: sharedBagIdx, sums: newWmap(newKeyCodec(domSize, len(sharedChildIdx)))}
			proj := make([]int, len(sharedChildIdx))
			vals := make([]int, len(ct.vars))
			ct.m.forEach(vals, func(vals []int, w wnum) {
				for i, ci := range sharedChildIdx {
					proj[i] = vals[ci]
				}
				g.sums.add(proj, w, sc.keyBuf)
			})
			groups = append(groups, g)
			memo[c] = nil // child table is folded in; free it for GC
		}

		cons := append([]int(nil), pc.consAt[ni]...)
		sort.Slice(cons, func(i, j int) bool {
			return tables[cons[i]].Len() < tables[cons[j]].Len()
		})
		bagPos := make(map[int]int, len(bag))
		for i, v := range bag {
			bagPos[v] = i
		}
		assign := sc.assign[:len(bag)]
		assigned := sc.assigned[:len(bag)]
		for i := range assigned {
			assigned[i] = false
		}

		emit := func() {
			weight := wnum{lo: 1}
			for _, g := range groups {
				proj := sc.proj[:len(g.shared)]
				for i, bi := range g.shared {
					proj[i] = assign[bi]
				}
				s, ok := g.sums.get(proj, sc.keyBuf)
				if !ok {
					return
				}
				weight = mulW(weight, s)
			}
			nt.m.add(assign, weight, sc.keyBuf)
		}

		var rec func(ci int)
		rec = func(ci int) {
			if ci == len(cons) {
				freeIdx := sc.freeIdx[:0]
				for i := range bag {
					if !assigned[i] {
						freeIdx = append(freeIdx, i)
					}
				}
				var fill func(k int)
				fill = func(k int) {
					if k == len(freeIdx) {
						emit()
						return
					}
					for v := 0; v < domSize; v++ {
						assign[freeIdx[k]] = v
						assigned[freeIdx[k]] = true
						fill(k + 1)
					}
					assigned[freeIdx[k]] = false
				}
				fill(0)
				return
			}
			t := tables[cons[ci]]
			scope := pc.constraints[cons[ci]].scope
		tupleLoop:
			for _, tup := range t.tuples {
				// sc.bound is a stack shared across rec levels: this level
				// pushes its bindings and pops back to base on exit.
				base := len(sc.bound)
				for j, s := range scope {
					bi := bagPos[s]
					if assigned[bi] {
						if assign[bi] != tup[j] {
							for _, u := range sc.bound[base:] {
								assigned[u] = false
							}
							sc.bound = sc.bound[:base]
							continue tupleLoop
						}
					} else {
						assign[bi] = tup[j]
						assigned[bi] = true
						sc.bound = append(sc.bound, bi)
					}
				}
				rec(ci + 1)
				for _, u := range sc.bound[base:] {
					assigned[u] = false
				}
				sc.bound = sc.bound[:base]
			}
		}
		rec(0)
		memo[ni] = nt
		return nt
	}

	rt := process(pc.root)
	total := new(big.Int)
	vals := sc.vals[:rt.m.codec.width]
	rt.m.forEach(vals, func(_ []int, w wnum) {
		w.addInto(total)
	})
	return total
}

// sharedPositions returns, for the variables common to bag and childVars,
// their indices in each.
func sharedPositions(bag, childVars []int) (bagIdx, childIdx []int) {
	pos := make(map[int]int, len(bag))
	for i, v := range bag {
		pos[v] = i
	}
	for j, v := range childVars {
		if i, ok := pos[v]; ok {
			bagIdx = append(bagIdx, i)
			childIdx = append(childIdx, j)
		}
	}
	return
}
