package engine

import (
	"math"
	"math/big"
	"math/bits"
	"sync"
	"sync/atomic"

	"repro/internal/structure"
)

// The executor runs the join-count dynamic program over a compiled
// component.  Node tables map bag assignments to the number of extensions
// over the subtree's variables; children merge by grouping on shared bag
// variables; bag assignments are enumerated by joining the local
// constraint tables along a precomputed bind order, probing each table's
// prefix index with the packed values of the already-bound part of its
// scope.
//
// The work is split across three moments:
//
//   - compile time (plan_fpt.go): per node, the scope→bag position maps,
//     the locally unconstrained ("free") bag positions, and the child
//     projection index pairs — everything derivable from the formula;
//   - bind time (newExecPlan, once per component and session): the
//     constraint bind order per node (smallest table first, then maximal
//     bound-prefix overlap), the bound/free split of every scope, and the
//     prefix hash indexes of the tables — everything derivable from the
//     formula plus the table sizes;
//   - run time (joinCount): pure index probes and map accumulation, with
//     independent subtrees of the decomposition processed concurrently on
//     a bounded worker pool and large pivot tables sharded row-wise into
//     per-worker accumulators merged with addW.
//
// Two representation choices make this the hot path's fast path:
//
//   - bag assignments are packed into uint64 keys (⌈log₂ |B|⌉ bits per
//     variable) whenever they fit, spilling to byte-string keys only for
//     wide bags;
//   - extension counts are int64 until an addition or multiplication
//     would overflow, then fall back to big.Int per entry.
//
// Parallel execution is bit-identical to serial execution: every merge is
// a sum of non-negative wnums, and a partial sum of non-negative terms
// overflows int64 only if the full sum does, so the packed/big
// representation of every entry — not just its value — is independent of
// merge order.

// packedKeyBudget is the number of key bits available before the packed
// representation spills to strings.  It is a variable (not a constant)
// only so tests can force the spill path on small instances; it is
// atomic because the executor reads it from concurrent workers.
var packedKeyBudget atomic.Int64

func init() { packedKeyBudget.Store(64) }

// SetPackedKeyBudget overrides the packed-key bit budget and returns a
// restore function.  Test hook: forcing the budget to 0 routes every bag
// through the wide-bag spill path.  Restore re-installs the value seen
// at override time, so callers must not interleave override/restore
// pairs.
func SetPackedKeyBudget(bits int) (restore func()) {
	old := packedKeyBudget.Swap(int64(bits))
	return func() { packedKeyBudget.Store(old) }
}

// parallelMinWork is the minimum total table size (rows summed over the
// component's constraint tables) before joinCount engages the parallel
// machinery at all; below it the DP runs strictly serially and pays zero
// synchronization.  Atomic so tests can force the parallel path on tiny
// instances.
var parallelMinWork atomic.Int64

// shardMinRows is the minimum pivot size (rows of a node's first table,
// or |B| for a purely free node) before the node's enumeration is
// sharded across workers.
var shardMinRows atomic.Int64

func init() {
	parallelMinWork.Store(2048)
	shardMinRows.Store(128)
}

// SetParallelThresholds overrides the parallel-DP engagement thresholds
// (test hook; lets differential tests force the concurrent path on
// instances small enough to cross-check against brute force).  Returns a
// restore function; callers must not interleave override/restore pairs.
func SetParallelThresholds(minWork, minShardRows int) (restore func()) {
	ow, os := parallelMinWork.Swap(int64(minWork)), shardMinRows.Swap(int64(minShardRows))
	return func() { parallelMinWork.Store(ow); shardMinRows.Store(os) }
}

// keyCodec packs fixed-width assignments of values in [0, domSize) into
// uint64 keys, or marks the width as spilled.
type keyCodec struct {
	bits   uint
	width  int
	packed bool
}

func newKeyCodec(domSize, width int) keyCodec {
	b := uint(bits.Len(uint(domSize - 1)))
	if b == 0 {
		b = 1
	}
	return keyCodec{bits: b, width: width, packed: int64(width)*int64(b) <= packedKeyBudget.Load()}
}

func (c keyCodec) pack(vals []int) uint64 {
	var k uint64
	for _, v := range vals {
		k = k<<c.bits | uint64(v)
	}
	return k
}

func (c keyCodec) unpack(key uint64, out []int) {
	mask := uint64(1)<<c.bits - 1
	for i := c.width - 1; i >= 0; i-- {
		out[i] = int(key & mask)
		key >>= c.bits
	}
}

// spillKey is the byte-string encoding used when a bag does not fit the
// packed budget: the shared structure.TupleKey codec.  buf is reused
// between calls; the returned string is a fresh allocation (it must be,
// to serve as a map key).
func spillKey(vals []int, buf []byte) string { return structure.TupleKey(vals, buf) }

func spillDecode(key string, out []int) { structure.TupleKeyDecode(key, out) }

// wnum is a non-negative extension count: int64 while it fits, big.Int
// after the first overflow.  The zero value is 0.
type wnum struct {
	lo int64    // valid iff b == nil
	b  *big.Int // nil in the fast path
}

func (w wnum) isZero() bool {
	if w.b != nil {
		return w.b.Sign() == 0
	}
	return w.lo == 0
}

func (w wnum) toBig() *big.Int {
	if w.b != nil {
		return w.b
	}
	return big.NewInt(w.lo)
}

// addInto accumulates w into acc (mutating acc, which the caller owns).
func (w wnum) addInto(acc *big.Int) {
	if w.b != nil {
		acc.Add(acc, w.b)
		return
	}
	var t big.Int
	t.SetInt64(w.lo)
	acc.Add(acc, &t)
}

func addW(a, b wnum) wnum {
	if a.b == nil && b.b == nil {
		s := a.lo + b.lo
		if s >= 0 { // both operands are non-negative: wrap ⇒ negative
			return wnum{lo: s}
		}
	}
	return wnum{b: new(big.Int).Add(a.toBig(), b.toBig())}
}

func mulW(a, b wnum) wnum {
	if a.b == nil && b.b == nil {
		hi, lo := bits.Mul64(uint64(a.lo), uint64(b.lo))
		if hi == 0 && lo <= math.MaxInt64 {
			return wnum{lo: int64(lo)}
		}
	}
	return wnum{b: new(big.Int).Mul(a.toBig(), b.toBig())}
}

// mix64 is the splitmix64 finalizer: the hash of packed uint64 keys for
// the open-addressing tables below.  Packed keys are dense in their low
// bits, so masking them directly would pile every probe into the bottom
// of the slot array; the finalizer spreads all 64 input bits over all 64
// output bits.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// nextPow2 returns the smallest power of two ≥ n (n ≥ 1).
func nextPow2(n int) int {
	return 1 << uint(bits.Len(uint(n-1)))
}

// wmap is a keyed accumulator of wnums: an open-addressing table with
// inline wnum values for packed (uint64) keys, a Go map for spilled
// (string) keys.  The open form replaces the previous map[uint64]wnum:
// key and weight live side by side in one 24-byte slot, so a linear
// probe on a splitmix64-hashed key touches one cache line per lookup in
// the common case, where the runtime map chased bucket pointers and
// tombstones.  Load is capped at 1/2 — the DP's inner loop is
// lookup-heavy with frequent misses, and an unsuccessful linear probe
// at 3/4 load costs ~3x the probes it does at 1/2.
//
// Slot encoding: a slot is empty iff its value isZero().  That encoding
// is sound because every stored weight is ≥ 1 (weights start at 1 and
// are products/sums of stored weights); add drops zero weights — the
// additive identity — outright to preserve it.
type wmap struct {
	codec keyCodec
	n     int
	mask  uint64
	slots []wslot
	dense []wnum
	sk    map[string]wnum
}

// wslot is one open-addressing slot: packed key plus inline weight.
type wslot struct {
	key uint64
	val wnum
}

// denseWmapCap bounds the key spaces stored as a flat array: dom^width
// packed keys index dense directly — no hash, no probe chain — while
// the array stays ≤ 1 MiB (65536 16-byte wnums).
const denseWmapCap = 1 << 16

func newWmap(codec keyCodec) *wmap { return newWmapSized(codec, 0) }

// newWmapSized presizes the accumulator for about n entries (0 = unknown).
func newWmapSized(codec keyCodec, n int) *wmap {
	m := &wmap{codec: codec}
	if codec.packed {
		if kb := codec.bits * uint(codec.width); kb <= 16 { // key space 1<<kb ≤ denseWmapCap
			m.dense = make([]wnum, 1<<kb)
			return m
		}
		capN := nextPow2(8 + 2*n) // ≤ 1/2 load at the hint
		m.slots = make([]wslot, capN)
		m.mask = uint64(capN - 1)
	} else {
		m.sk = make(map[string]wnum, n)
	}
	return m
}

// addPacked accumulates w at packed key k, growing at 1/2 load.
func (m *wmap) addPacked(k uint64, w wnum) {
	if w.isZero() {
		return // identity; also keeps the empty-slot encoding sound
	}
	if m.dense != nil {
		d := &m.dense[k]
		if d.isZero() {
			m.n++
		}
		*d = addW(*d, w)
		return
	}
	if (m.n+1)*2 > len(m.slots) {
		m.growPacked()
	}
	i := mix64(k) & m.mask
	for {
		s := &m.slots[i]
		if s.val.isZero() {
			s.key = k
			s.val = w
			m.n++
			return
		}
		if s.key == k {
			s.val = addW(s.val, w)
			return
		}
		i = (i + 1) & m.mask
	}
}

// growPacked doubles the slot array and reinserts every entry.
func (m *wmap) growPacked() {
	old := m.slots
	capN := 2 * len(old)
	m.slots = make([]wslot, capN)
	m.mask = uint64(capN - 1)
	for _, s := range old {
		if s.val.isZero() {
			continue
		}
		j := mix64(s.key) & m.mask
		for !m.slots[j].val.isZero() {
			j = (j + 1) & m.mask
		}
		m.slots[j] = s
	}
}

// add accumulates w at the key for vals.  buf is scratch for spill keys.
func (m *wmap) add(vals []int, w wnum, buf []byte) {
	if m.codec.packed {
		m.addPacked(m.codec.pack(vals), w)
		return
	}
	k := spillKey(vals, buf)
	m.sk[k] = addW(m.sk[k], w)
}

// get looks up the weight at vals; ok reports presence.
func (m *wmap) get(vals []int, buf []byte) (wnum, bool) {
	if m.codec.packed {
		k := m.codec.pack(vals)
		if m.dense != nil {
			v := m.dense[k]
			return v, !v.isZero()
		}
		i := mix64(k) & m.mask
		for {
			s := &m.slots[i]
			if s.val.isZero() {
				return wnum{}, false
			}
			if s.key == k {
				return s.val, true
			}
			i = (i + 1) & m.mask
		}
	}
	w, ok := m.sk[spillKey(vals, buf)]
	return w, ok
}

// merge folds every entry of o into m (same codec).  The merged values —
// including their int64/big.Int representation — are independent of
// merge order because all weights are non-negative.
func (m *wmap) merge(o *wmap) {
	if m.codec.packed {
		if o.dense != nil {
			for k, w := range o.dense {
				if !w.isZero() {
					m.addPacked(uint64(k), w)
				}
			}
			return
		}
		for _, s := range o.slots {
			if !s.val.isZero() {
				m.addPacked(s.key, s.val)
			}
		}
		return
	}
	for k, w := range o.sk {
		m.sk[k] = addW(m.sk[k], w)
	}
}

// forEach visits every (assignment, weight) pair, decoding keys into the
// supplied scratch slice (len == codec.width, reused between visits).
func (m *wmap) forEach(vals []int, fn func(vals []int, w wnum)) {
	if m.codec.packed {
		if m.dense != nil {
			for k, w := range m.dense {
				if w.isZero() {
					continue
				}
				m.codec.unpack(uint64(k), vals)
				fn(vals, w)
			}
			return
		}
		for _, s := range m.slots {
			if s.val.isZero() {
				continue
			}
			m.codec.unpack(s.key, vals)
			fn(vals, s.val)
		}
		return
	}
	for k, w := range m.sk {
		spillDecode(k, vals)
		fn(vals, w)
	}
}

// Table is a materialized constraint: the set of allowed assignments over
// its scope (variable positions), deduplicated, stored as flat row-major
// []int32 cells like the structure package's columnar relations.  Tables
// are immutable once built and shared across plans via the Session;
// prefix indexes (value-prefix → row ids) are built lazily per bound
// position subset and cached on the table (capped: see prefixIndex).
//
// Row cells and index arrays are carved from the owning session's arena
// (ar; nil falls back to the heap), so a session's whole table memory is
// a handful of pooled chunks that return to the pools on retirement.
type Table struct {
	width int
	n     int
	dom   int // domain size of the values (index key packing)
	flat  []int32
	ar    *arena // owning session's allocator; nil → heap

	mu    sync.Mutex
	idx   map[uint64]*tableIndex // bound-position bitmask → index
	clock uint64                 // probe tick for LRU eviction of idx
}

func newTable(width, dom int, ar *arena) *Table { return &Table{width: width, dom: dom, ar: ar} }

// Len returns the number of distinct rows.
func (t *Table) Len() int { return t.n }

// appendRow copies vals as a new row (the caller guarantees dedup).
func (t *Table) appendRow(vals []int) {
	if len(t.flat)+len(vals) > cap(t.flat) {
		t.grow(len(t.flat) + len(vals))
	}
	t.flat = t.flat[:len(t.flat)+len(vals)]
	base := len(t.flat) - len(vals)
	for i, v := range vals {
		t.flat[base+i] = int32(v)
	}
	t.n++
}

// grow moves flat to a slice of capacity ≥ need (geometric, arena-backed).
// Arena slices have no spare capacity — it would alias the next
// allocation — so growth is explicit rather than via append.
func (t *Table) grow(need int) {
	newCap := 2 * cap(t.flat)
	if newCap < 64 {
		newCap = 64
	}
	for newCap < need {
		newCap *= 2
	}
	nf := t.ar.allocI32(newCap)
	copy(nf, t.flat)
	t.flat = nf[:len(t.flat)]
}

// tableIndex is a hash index of a table keyed on the packed values of a
// fixed subset of its scope positions: probe(prefix) → row ids.
//
// For packed codecs it is an open-addressing CSR index sized once at
// build time (power-of-two slots, ≤ 0.7 load, no rehash ever): keys
// holds the packed prefixes, counts/starts describe each key's span in
// rows, and counts[i] == 0 marks slot i empty (every present key has at
// least one row).  A probe is a splitmix64 hash plus a linear scan of
// adjacent slots — one cache line in the common case — and returns a
// subslice of rows, allocation-free.  Wide prefixes that spill the
// packed budget keep the string-keyed map form.
type tableIndex struct {
	pos   []int // scope positions covered, ascending
	codec keyCodec

	mask   uint64
	keys   []uint64
	starts []int32
	counts []int32
	rows   []int32

	sk map[string][]int32 // spill form (codec.packed == false)

	lastUse uint64 // owning Table's clock at the last prefixIndex call
}

// probe returns the row ids whose prefix packs to key (nil if none).
func (ix *tableIndex) probe(key uint64) []int32 {
	i := mix64(key) & ix.mask
	for {
		c := ix.counts[i]
		if c == 0 {
			return nil
		}
		if ix.keys[i] == key {
			s := ix.starts[i]
			return ix.rows[s : s+c]
		}
		i = (i + 1) & ix.mask
	}
}

// slotFor returns the slot of key, claiming an empty one if absent
// (build-time helper; claimed slots get a nonzero count immediately).
func (ix *tableIndex) slotFor(key uint64) uint64 {
	i := mix64(key) & ix.mask
	for ix.counts[i] != 0 && ix.keys[i] != key {
		i = (i + 1) & ix.mask
	}
	ix.keys[i] = key
	return i
}

// tableIndexCacheCap bounds the per-table prefix-index cache.  A
// pathological workload binding the same table under many different
// bound-position subsets (e.g. ad-hoc queries over one large relation)
// would otherwise accumulate one index per subset for the life of the
// session; beyond the cap the least-recently-probed index is dropped.
// Plans already bound keep their direct *tableIndex pointers — eviction
// only stops the cache from handing the index to future binds.
const tableIndexCacheCap = 8

// prefixIndex returns (building and caching on first use) the index of t
// keyed on the given scope positions (ascending, len ≤ 64).  Safe for
// concurrent use; in practice it is called only at plan-bind time so run
// time probes never touch the mutex.
func (t *Table) prefixIndex(pos []int) *tableIndex {
	var mask uint64
	for _, j := range pos {
		mask |= 1 << uint(j)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.clock++
	if ix, ok := t.idx[mask]; ok {
		ix.lastUse = t.clock
		return ix
	}
	ix := &tableIndex{pos: append([]int(nil), pos...), codec: newKeyCodec(t.dom, len(pos)), lastUse: t.clock}
	vals := make([]int, len(pos))
	if ix.codec.packed {
		capN := t.n + (t.n*3+6)/7 // ≥ n/0.7: load factor ≤ 0.7, never rehashed
		if capN < 8 {
			capN = 8
		}
		capN = nextPow2(capN)
		ix.mask = uint64(capN - 1)
		ix.keys = t.ar.allocU64(capN)
		ix.starts = t.ar.allocI32(capN)
		ix.counts = t.ar.allocI32Zero(capN)
		ix.rows = t.ar.allocI32(t.n)
		// Pass 1: bucket cardinalities.
		for r := 0; r < t.n; r++ {
			base := r * t.width
			for i, j := range pos {
				vals[i] = int(t.flat[base+j])
			}
			ix.counts[ix.slotFor(ix.codec.pack(vals))]++
		}
		// Prefix-sum the spans, then fill using starts as the write
		// cursor and rewind it afterwards — no temporary cursor array.
		sum := int32(0)
		for i, c := range ix.counts {
			if c != 0 {
				ix.starts[i] = sum
				sum += c
			}
		}
		for r := 0; r < t.n; r++ {
			base := r * t.width
			for i, j := range pos {
				vals[i] = int(t.flat[base+j])
			}
			s := ix.slotFor(ix.codec.pack(vals))
			ix.rows[ix.starts[s]] = int32(r)
			ix.starts[s]++
		}
		for i, c := range ix.counts {
			if c != 0 {
				ix.starts[i] -= c
			}
		}
	} else {
		ix.sk = make(map[string][]int32, t.n)
		buf := make([]byte, 0, 8*len(pos))
		for r := 0; r < t.n; r++ {
			base := r * t.width
			for i, j := range pos {
				vals[i] = int(t.flat[base+j])
			}
			k := spillKey(vals, buf)
			ix.sk[k] = append(ix.sk[k], int32(r))
		}
	}
	if t.idx == nil {
		t.idx = make(map[uint64]*tableIndex)
	}
	if len(t.idx) >= tableIndexCacheCap {
		var lruMask uint64
		lruUse := t.clock + 1
		for m, e := range t.idx {
			if e.lastUse < lruUse {
				lruMask, lruUse = m, e.lastUse
			}
		}
		delete(t.idx, lruMask)
	}
	t.idx[mask] = ix
	return ix
}

// execStep is one constraint of a node in bind order: bind the rows of
// table (all of them for the pivot step, the prefix-index probe results
// otherwise) into the bag assignment.
type execStep struct {
	table *Table
	// idx is nil for the pivot step and for steps whose scope shares no
	// bound position (then every row is enumerated).
	idx      *tableIndex
	boundBag []int // bag positions supplying the probe key, aligned with idx.pos
	// freeScope/freeBag are the scope positions this step newly binds and
	// the bag positions they bind into.
	freeScope []int
	freeBag   []int
}

// execNode is a decomposition node bound to a session's tables.
type execNode struct {
	width   int
	steps   []execStep
	freePos []int // bag positions covered by no constraint at this node
}

// execPlan is a component bound to one session's (pruned) tables: bind
// orders chosen, prefix indexes built.  It is cached per (component,
// session) and reused by every subsequent count, so executing it does
// zero formula-dependent setup.
type execPlan struct {
	tables []*Table
	nodes  []execNode
	work   int // total table rows: parallel engagement estimate
}

// newExecPlan chooses the per-node bind orders for the given tables and
// builds the prefix indexes every non-pivot step probes.  Heuristic:
// smallest table first, then maximal bound-prefix overlap (ties: smaller
// table, then placement order).
func newExecPlan(pc *planComponent, tables []*Table, domSize int) *execPlan {
	ep := &execPlan{tables: tables, nodes: make([]execNode, len(pc.dec.Bags))}
	for _, t := range tables {
		ep.work += t.Len()
	}
	for ni, bag := range pc.dec.Bags {
		meta := &pc.nodes[ni]
		cons := pc.consAt[ni]
		en := &ep.nodes[ni]
		en.width = len(bag)
		en.freePos = meta.freePos
		if len(cons) == 0 {
			continue
		}
		bound := make([]bool, len(bag))
		used := make([]bool, len(cons))
		en.steps = make([]execStep, 0, len(cons))
		for len(en.steps) < len(cons) {
			best, bestOv, bestSz := -1, -1, -1
			for k := range cons {
				if used[k] {
					continue
				}
				ov := 0
				if len(en.steps) > 0 { // pivot choice is by size alone
					for _, bi := range meta.scopeBag[k] {
						if bound[bi] {
							ov++
						}
					}
				}
				sz := tables[cons[k]].Len()
				if best == -1 || ov > bestOv || (ov == bestOv && sz < bestSz) {
					best, bestOv, bestSz = k, ov, sz
				}
			}
			used[best] = true
			t := tables[cons[best]]
			st := execStep{table: t}
			var boundScope []int
			for j, bi := range meta.scopeBag[best] {
				if bound[bi] {
					boundScope = append(boundScope, j)
					st.boundBag = append(st.boundBag, bi)
				} else {
					st.freeScope = append(st.freeScope, j)
					st.freeBag = append(st.freeBag, bi)
				}
			}
			for _, bi := range st.freeBag {
				bound[bi] = true
			}
			// Scope widths beyond 64 cannot be mask-keyed; fall back to
			// row enumeration (unreachable for bag widths the packed and
			// spill key paths are designed for).
			if len(boundScope) > 0 && t.width <= 64 {
				st.idx = t.prefixIndex(boundScope)
			}
			en.steps = append(en.steps, st)
		}
	}
	return ep
}

// execScratch holds the per-worker buffers of the executor, pooled across
// calls to keep the inner loops allocation-free.
type execScratch struct {
	assign []int
	proj   []int
	vals   []int
	keyBuf []byte
	ops    int // cancellation-poll counter (see dpRun.cancelled)
}

var scratchPool = sync.Pool{New: func() any { return &execScratch{} }}

// ensure grows each buffer to at least width.  Every buffer's capacity is
// checked independently: pooled scratches cycle through plans of
// different widths, and a joint check on one buffer would leave the
// others — notably keyBuf, whose required capacity is 8×width bytes for
// spill keys — at a stale smaller capacity.
func (sc *execScratch) ensure(width int) {
	if cap(sc.assign) < width {
		sc.assign = make([]int, width)
	}
	if cap(sc.proj) < width {
		sc.proj = make([]int, width)
	}
	if cap(sc.vals) < width {
		sc.vals = make([]int, width)
	}
	if cap(sc.keyBuf) < 8*width {
		sc.keyBuf = make([]byte, 0, 8*width)
	}
}

// childGroup is one child's node table projected onto the bag positions
// it shares with the parent.
type childGroup struct {
	sharedBag []int // indices into the parent bag
	sums      *wmap // keyed by the shared projection
}

// dpRun is one joinCount execution: the compiled component, its bound
// plan, and the worker pool.  sem is nil for strictly serial runs; it
// holds workers-1 tokens otherwise, shared between subtree-level and
// shard-level parallelism.
type dpRun struct {
	pc   *planComponent
	ep   *execPlan
	dom  int
	maxW int
	sem  chan struct{}

	// done is the run's cancellation signal (nil when the caller's
	// context cannot fire; then every check below is a single nil
	// comparison).  aborted latches once any worker observes done, so
	// all shards and subtrees bail out at their next check; an aborted
	// run's partial result is discarded by joinCount.
	done    <-chan struct{}
	aborted atomic.Bool
}

// cancelCheckMask throttles cancellation polls: the done channel is
// consulted once per (mask+1) checks per scratch, keeping the poll off
// the executor's per-row fast path.
const cancelCheckMask = 4096 - 1

// cancelled reports whether the run should stop.  Checked at every
// pivot-row start and every emitted assignment, so both wide-and-
// shallow and narrow-and-deep enumerations observe cancellation within
// a bounded amount of work.
func (r *dpRun) cancelled(sc *execScratch) bool {
	if r.done == nil {
		return false
	}
	if r.aborted.Load() {
		return true
	}
	sc.ops++
	if sc.ops&cancelCheckMask != 0 {
		return false
	}
	select {
	case <-r.done:
		r.aborted.Store(true)
		return true
	default:
		return false
	}
}

func (r *dpRun) scratch() *execScratch {
	sc := scratchPool.Get().(*execScratch)
	sc.ensure(r.maxW)
	return sc
}

// joinCount runs the join-count DP over the bound plan and returns the
// total number of assignments of the component's active variables (with
// multiplicities counting extensions of the quantified subtree variables
// — which are none at the root, so the total is exact).  workers caps the
// concurrency; the result is bit-identical for every workers value.
//
// done (nil = never fires) is the cooperative cancellation signal: when
// it fires mid-run the partial result is discarded and aborted=true is
// returned; a run that completed before observing the signal returns its
// (correct, complete) total with aborted=false.
func joinCount(pc *planComponent, ep *execPlan, domSize, workers int, done <-chan struct{}) (total *big.Int, aborted bool) {
	maxW := 0
	for _, bag := range pc.dec.Bags {
		if len(bag) > maxW {
			maxW = len(bag)
		}
	}
	r := &dpRun{pc: pc, ep: ep, dom: domSize, maxW: maxW, done: done}
	if workers > 1 && int64(ep.work) >= parallelMinWork.Load() {
		r.sem = make(chan struct{}, workers-1)
	}
	root := r.process(pc.root, nil)
	if r.aborted.Load() {
		return nil, true
	}
	total = new(big.Int)
	vals := make([]int, root.codec.width)
	root.forEach(vals, func(_ []int, w wnum) {
		w.addInto(total)
	})
	return total, false
}

// projSize bounds the number of distinct keys of a projection onto w
// positions: dom^w, saturating at lim.  dom ≤ 1 covers the empty and
// singleton universes (at most one key either way).
func projSize(dom, w, lim int) int {
	if dom <= 1 || w == 0 {
		return 1
	}
	n := 1
	for i := 0; i < w; i++ {
		if n > lim/dom {
			return lim
		}
		n *= dom
	}
	if n > lim {
		return lim
	}
	return n
}

// process computes node ni's contribution, keyed directly on the bag
// positions proj (the positions ni shares with its parent; empty at the
// root, aggregating everything into one entry).  Emitting straight into
// the parent's key space fuses the DP's project-and-group step into the
// enumeration — no full-width node table is ever materialized.  Child
// subtrees run concurrently when the pool has capacity.
func (r *dpRun) process(ni int, proj []int) *wmap {
	children := r.pc.children[ni]
	meta := &r.pc.nodes[ni]
	groups := make([]*childGroup, len(children))
	if r.sem != nil && len(children) > 1 {
		var wg sync.WaitGroup
		for i := 1; i < len(children); i++ {
			select {
			case r.sem <- struct{}{}:
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					groups[i] = &childGroup{
						sharedBag: meta.groups[i].sharedBag,
						sums:      r.process(children[i], meta.groups[i].sharedChild),
					}
					<-r.sem
				}(i)
			default:
				groups[i] = &childGroup{
					sharedBag: meta.groups[i].sharedBag,
					sums:      r.process(children[i], meta.groups[i].sharedChild),
				}
			}
		}
		groups[0] = &childGroup{
			sharedBag: meta.groups[0].sharedBag,
			sums:      r.process(children[0], meta.groups[0].sharedChild),
		}
		wg.Wait()
	} else {
		for i, c := range children {
			groups[i] = &childGroup{
				sharedBag: meta.groups[i].sharedBag,
				sums:      r.process(c, meta.groups[i].sharedChild),
			}
		}
	}

	en := &r.ep.nodes[ni]
	hint := projSize(r.dom, len(proj), en.pivotSize(r.dom))
	out := newWmapSized(newKeyCodec(r.dom, len(proj)), hint)
	r.enumerate(en, groups, out, proj)
	return out
}

// pivotSize is the sharding range of a node: the pivot table's row count,
// or the domain size when the node has no constraints (then the first
// free variable's values are sharded).
func (en *execNode) pivotSize(domSize int) int {
	if len(en.steps) > 0 {
		return en.steps[0].table.n
	}
	if len(en.freePos) > 0 {
		return domSize
	}
	return 1
}

// enumerate fills out with node en's contributions keyed on outProj,
// sharding the pivot range across workers when the pool has capacity and
// the range is large enough to amortize the merge.
func (r *dpRun) enumerate(en *execNode, groups []*childGroup, out *wmap, outProj []int) {
	ready := groupReadiness(en, groups)
	pivotN := en.pivotSize(r.dom)
	extra := 0
	if r.sem != nil && int64(pivotN) >= shardMinRows.Load() {
	acquire:
		for extra < cap(r.sem) && extra+1 < pivotN {
			select {
			case r.sem <- struct{}{}:
				extra++
			default:
				break acquire
			}
		}
	}
	if extra == 0 {
		sc := r.scratch()
		r.enumRange(en, ready, out, outProj, sc, 0, pivotN)
		scratchPool.Put(sc)
		return
	}
	shards := extra + 1
	chunk := (pivotN + shards - 1) / shards
	parts := make([]*wmap, shards)
	var wg sync.WaitGroup
	for s := 1; s < shards; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			defer func() { <-r.sem }()
			lo, hi := s*chunk, (s+1)*chunk
			if hi > pivotN {
				hi = pivotN
			}
			m := newWmap(out.codec)
			sc := r.scratch()
			r.enumRange(en, ready, m, outProj, sc, lo, hi)
			scratchPool.Put(sc)
			parts[s] = m
		}(s)
	}
	sc := r.scratch()
	r.enumRange(en, ready, out, outProj, sc, 0, chunk)
	scratchPool.Put(sc)
	wg.Wait()
	for s := 1; s < shards; s++ {
		out.merge(parts[s])
	}
}

// groupReadiness schedules each child-group lookup at the earliest bind
// depth where all of its shared bag positions are set.  Depth 0 is
// before any binder runs; depth si+1 is after step si binds its free
// scope; depth len(steps)+k+1 is after free variable k is assigned.
// Hoisting the lookups out of the deeper loops both deduplicates them
// (one probe per distinct shared-prefix binding instead of one per full
// assignment) and prunes the entire subtree on a zero factor.
func groupReadiness(en *execNode, groups []*childGroup) [][]*childGroup {
	nSteps := len(en.steps)
	depths := nSteps + len(en.freePos) + 1
	boundAt := make([]int, en.width)
	for si := range en.steps {
		for _, bi := range en.steps[si].freeBag {
			boundAt[bi] = si + 1
		}
	}
	for k, bi := range en.freePos {
		boundAt[bi] = nSteps + k + 1
	}
	ready := make([][]*childGroup, depths)
	for _, g := range groups {
		d := 0
		for _, bi := range g.sharedBag {
			if boundAt[bi] > d {
				d = boundAt[bi]
			}
		}
		ready[d] = append(ready[d], g)
	}
	return ready
}

// enumRange enumerates the node's bag assignments with the pivot range
// restricted to [lo, hi): rows of the pivot table, or values of the first
// free variable for constraint-less nodes.  Bind orders are fixed at plan
// bind, so no assigned-flag bookkeeping or rollback happens here — every
// bag position is written by exactly one binder before any deeper read.
// Child-group factors are multiplied into the running weight at their
// readiness depth (see groupReadiness); a missing factor abandons the
// subtree before any deeper binder runs.
func (r *dpRun) enumRange(en *execNode, ready [][]*childGroup, m *wmap, outProj []int, sc *execScratch, lo, hi int) {
	assign := sc.assign[:en.width]
	// applyReady folds the factors scheduled at depth d into w; ok=false
	// means some factor is zero and the subtree contributes nothing.
	applyReady := func(d int, w wnum) (wnum, bool) {
		for _, g := range ready[d] {
			proj := sc.proj[:len(g.sharedBag)]
			for i, bi := range g.sharedBag {
				proj[i] = assign[bi]
			}
			s, ok := g.sums.get(proj, sc.keyBuf)
			if !ok {
				return w, false
			}
			w = mulW(w, s)
		}
		return w, true
	}
	emit := func(w wnum) {
		if r.cancelled(sc) {
			return
		}
		pv := sc.proj[:len(outProj)]
		for i, bi := range outProj {
			pv[i] = assign[bi]
		}
		m.add(pv, w, sc.keyBuf)
	}
	nSteps := len(en.steps)
	free := en.freePos
	var fill func(k int, w wnum)
	fill = func(k int, w wnum) {
		if k == len(free) {
			emit(w)
			return
		}
		loK, hiK := 0, r.dom
		pivot := nSteps == 0 && k == 0
		if pivot {
			loK, hiK = lo, hi
		}
		for v := loK; v < hiK; v++ {
			if pivot && r.cancelled(sc) {
				return
			}
			assign[free[k]] = v
			if wv, ok := applyReady(nSteps+k+1, w); ok {
				fill(k+1, wv)
			}
		}
	}
	var recStep func(si int, w wnum)
	recStep = func(si int, w wnum) {
		if si == nSteps {
			fill(0, w)
			return
		}
		st := &en.steps[si]
		t := st.table
		if st.idx == nil {
			rlo, rhi := 0, t.n
			if si == 0 {
				rlo, rhi = lo, hi
			}
			for row := rlo; row < rhi; row++ {
				if si == 0 && r.cancelled(sc) {
					return
				}
				base := row * t.width
				for i, j := range st.freeScope {
					assign[st.freeBag[i]] = int(t.flat[base+j])
				}
				if wv, ok := applyReady(si+1, w); ok {
					recStep(si+1, wv)
				}
			}
			return
		}
		vals := sc.vals[:len(st.boundBag)]
		for i, bi := range st.boundBag {
			vals[i] = assign[bi]
		}
		var rows []int32
		if st.idx.codec.packed {
			rows = st.idx.probe(st.idx.codec.pack(vals))
		} else {
			rows = st.idx.sk[spillKey(vals, sc.keyBuf)]
		}
		for _, row := range rows {
			base := int(row) * t.width
			for i, j := range st.freeScope {
				assign[st.freeBag[i]] = int(t.flat[base+j])
			}
			if wv, ok := applyReady(si+1, w); ok {
				recStep(si+1, wv)
			}
		}
	}
	if w0, ok := applyReady(0, wnum{lo: 1}); ok {
		recStep(0, w0)
	}
}

// sharedPositions returns, for the variables common to bag and childVars
// (both sorted ascending), their indices in each.
func sharedPositions(bag, childVars []int) (bagIdx, childIdx []int) {
	i, j := 0, 0
	for i < len(bag) && j < len(childVars) {
		switch {
		case bag[i] < childVars[j]:
			i++
		case bag[i] > childVars[j]:
			j++
		default:
			bagIdx = append(bagIdx, i)
			childIdx = append(childIdx, j)
			i++
			j++
		}
	}
	return
}
