package engine

import (
	"repro/internal/approx"
	"repro/internal/pp"
)

// PlanApprox compiles the approximate-counting plan for a pp-formula:
// the sampling-based estimator of internal/approx, with the Gaifman
// component split done once here at compile time.  It is the routing
// target for terms whose trichotomy classification lands in the hard
// regime (cases 2/3), where no exact engine Name is fixed-parameter
// tractable.  The returned estimator is immutable and safe for
// concurrent Count calls; per-call (ε, δ) targets and seeds are supplied
// through approx.Params.
func PlanApprox(p pp.PP) *approx.Estimator { return approx.New(p) }
