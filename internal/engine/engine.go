package engine

import (
	"context"
	"errors"
	"fmt"
	"math/big"
	"sync"

	"repro/internal/pp"
	"repro/internal/structure"
)

// Name identifies a counting engine.
type Name int

const (
	// Auto picks an engine automatically (currently the FPT engine).
	Auto Name = iota
	// Brute enumerates all |B|^|S| liberal assignments (reference).
	Brute
	// Projection factorizes over components and enumerates extendable
	// liberal assignments by backtracking with propagation.
	Projection
	// FPT runs the Theorem 2.11 pipeline: core, ∃-component predicates,
	// join-count DP over a contract-graph tree decomposition.
	FPT
	// FPTNoCore is FPT without the core step (ablation A1).
	FPTNoCore
)

func (n Name) String() string {
	switch n {
	case Auto:
		return "auto"
	case Brute:
		return "brute"
	case Projection:
		return "projection"
	case FPT:
		return "fpt"
	case FPTNoCore:
		return "fpt-nocore"
	}
	return "unknown"
}

// ParseName resolves an engine name as used by the CLIs.
func ParseName(s string) (Name, error) {
	switch s {
	case "auto":
		return Auto, nil
	case "fpt":
		return FPT, nil
	case "fpt-nocore":
		return FPTNoCore, nil
	case "projection", "proj":
		return Projection, nil
	case "brute":
		return Brute, nil
	}
	return 0, fmt.Errorf("engine: unknown engine %q (want auto, fpt, fpt-nocore, projection or brute)", s)
}

// Names lists every engine, in declaration order.
func Names() []Name { return []Name{Auto, Brute, Projection, FPT, FPTNoCore} }

// Plan is a pp-formula compiled for a fixed engine: all formula-dependent
// work (cores, ∃-components, tree decompositions, constraint schemes) is
// done at compile time, so Count only performs structure-dependent work.
// Plans are immutable after compilation and safe for concurrent use.
type Plan interface {
	// Engine returns the engine the plan was compiled for.
	Engine() Name
	// Formula returns the compiled pp-formula.
	Formula() pp.PP
	// Count executes the plan against a structure, using a shared Session
	// for the structure-dependent materializations.
	Count(b *structure.Structure) (*big.Int, error)
	// CountIn executes the plan inside an existing session (the structure
	// is the session's); materialized tables are reused and extended.
	CountIn(s *Session) (*big.Int, error)
}

// CountInWorkers runs the plan inside a session with its executor-level
// parallelism capped at workers (≤ 0 means the process default; see
// EffectiveWorkers).  Plans without intra-plan parallelism (brute,
// projection) ignore the knob.  Counts are bit-identical for every
// workers value.
func CountInWorkers(pl Plan, s *Session, workers int) (*big.Int, error) {
	if wp, ok := pl.(interface {
		CountInWorkers(*Session, int) (*big.Int, error)
	}); ok {
		return wp.CountInWorkers(s, workers)
	}
	return pl.CountIn(s)
}

// CountInCtx is CountInWorkers under a context: plans that support
// cooperative cancellation (all built-in engines do) poll ctx while
// executing and return its error once it fires, discarding partial
// work.  A ctx that can never be cancelled adds zero overhead — the
// executor's polling engages only when ctx.Done() is non-nil.
// Cancellation is cooperative and approximate: a count that completes
// just as ctx fires may still be returned.
func CountInCtx(ctx context.Context, pl Plan, s *Session, workers int) (*big.Int, error) {
	if ctx == nil || ctx.Done() == nil {
		return CountInWorkers(pl, s, workers)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if cp, ok := pl.(interface {
		CountInCtx(context.Context, *Session, int) (*big.Int, error)
	}); ok {
		return cp.CountInCtx(ctx, s, workers)
	}
	return CountInWorkers(pl, s, workers)
}

// CountKeyed executes the plan inside the session with the executor
// budget capped at workers (≤ 0 = process default), memoizing the
// result under the canonical counting-class fingerprint when one is
// present (fp != ""): each unique class executes at most once per
// (session, structure-version), no matter how many terms, repeated
// counts, Counters, or batch workers ask.  The bool reports a memo hit
// (always false for fp == "").  The returned value is shared — callers
// must treat it as read-only.
func CountKeyed(pl Plan, fp string, s *Session, workers int) (*big.Int, bool, error) {
	return CountKeyedCtx(context.Background(), pl, fp, s, workers)
}

// CountKeyedCtx is CountKeyed under a context.  A memo entry whose
// computation ended in a cancellation error is evicted immediately
// (CountMemo), so one cancelled request never poisons the fingerprint's
// count for later callers.  A caller that parked on another request's
// computation and received that request's cancellation error retries
// while its own context is still alive — a short-deadline client must
// never surface its timeout to a concurrent client with a healthy
// deadline.  Each retry lands on a fresh entry (the cancelled one was
// evicted) computed under a live context, so the loop terminates once
// this caller either computes the count itself or its own ctx fires.
// A keyed count against a delta-capable plan (deltaPlan, currently the
// FPT family) is maintained incrementally across append batches: when
// the session adopted a prior for the fingerprint from the structure's
// previous version, the plan advances it by the appended delta instead
// of recounting, and every successful count leaves behind the state the
// next advance starts from (delta.go).
func CountKeyedCtx(ctx context.Context, pl Plan, fp string, s *Session, workers int) (*big.Int, bool, error) {
	if fp == "" {
		v, err := CountInCtx(ctx, pl, s, workers)
		return v, false, err
	}
	// Memo-warm fast path: a settled fingerprint returns its shared value
	// with zero allocations — no compute closure is ever built.
	if v, ok := s.countMemoHit(fp, pl.Engine()); ok {
		return v, true, nil
	}
	dp, _ := pl.(deltaPlan)
	for {
		v, hit, err := s.countMemoState(ctx, fp, pl.Engine(), func(prev *priorCount) (*big.Int, any, error) {
			if dp == nil {
				v, err := CountInCtx(ctx, pl, s, workers)
				return v, nil, err
			}
			if prev != nil {
				if v, st, ok, err := dp.countAdvanceIn(ctx, s, workers, *prev); ok || err != nil {
					return v, st, err
				}
			}
			return dp.countStateIn(ctx, s, workers)
		})
		if err != nil && isCancellation(err) && (ctx == nil || ctx.Err() == nil) {
			continue
		}
		return v, hit, err
	}
}

// deltaPlan is the optional plan capability behind incremental count
// maintenance: a full count that captures advanceable state, and an
// advance that rolls a prior count forward across an append delta
// (ok=false: not applicable, caller recounts).
type deltaPlan interface {
	countStateIn(ctx context.Context, s *Session, workers int) (*big.Int, any, error)
	countAdvanceIn(ctx context.Context, s *Session, workers int, prev priorCount) (*big.Int, any, bool, error)
}

// isCancellation reports whether err stems from a context firing.
func isCancellation(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// Compile builds a plan for the formula under the named engine.  Results
// are memoized per (formula structure identity, structure version, liberal
// set, engine), so hot one-shot paths that re-count the same compiled
// formula do not pay recompilation.
func Compile(p pp.PP, name Name) (Plan, error) {
	if key, ok := planCacheKeyFor(p, name); ok {
		planCacheMu.Lock()
		cached := planCache[key]
		planCacheMu.Unlock()
		if cached != nil {
			return cached, nil
		}
		pl, err := compile(p, name)
		if err != nil {
			return nil, err
		}
		planCacheMu.Lock()
		if len(planCache) >= planCacheCap {
			// Cheap wholesale eviction: the cache is a memo, not a store.
			planCache = make(map[planCacheKey]Plan, planCacheCap)
		}
		planCache[key] = pl
		planCacheMu.Unlock()
		return pl, nil
	}
	return compile(p, name)
}

// CompileKeyed is Compile with an optional canonical counting-class
// fingerprint (term.Fingerprint, threaded through ie.Term.FP): plans are
// additionally cached per (fingerprint, engine), so pointer-distinct but
// counting-equivalent formulas — across inclusion–exclusion terms,
// Counters, and batches — share one compiled plan.  This is sound by
// Theorem 5.4: counting-equivalent formulas have identical counts on
// every structure, so a plan compiled from any representative of the
// class counts for all of them.  The returned bool reports whether the
// plan came out of the fingerprint cache.  An empty fp degrades to
// Compile.
func CompileKeyed(p pp.PP, fp string, name Name) (Plan, bool, error) {
	if fp == "" {
		pl, err := Compile(p, name)
		return pl, false, err
	}
	key := fpPlanKey{fp: fp, name: name}
	planCacheMu.Lock()
	cached := fpPlanCache[key]
	planCacheMu.Unlock()
	if cached != nil {
		return cached, true, nil
	}
	pl, err := Compile(p, name) // also feeds the pointer-keyed memo
	if err != nil {
		return nil, false, err
	}
	planCacheMu.Lock()
	if len(fpPlanCache) >= planCacheCap {
		fpPlanCache = make(map[fpPlanKey]Plan, planCacheCap)
	}
	fpPlanCache[key] = pl
	planCacheMu.Unlock()
	return pl, false, nil
}

// fpPlanKey identifies a compiled counting class: canonical fingerprints
// embed the full relational schema and the liberal-set coloring, so equal
// keys imply interchangeable plans.
type fpPlanKey struct {
	fp   string
	name Name
}

var fpPlanCache = make(map[fpPlanKey]Plan, planCacheCap)

func compile(p pp.PP, name Name) (Plan, error) {
	switch name {
	case Brute:
		return &brutePlan{p: p}, nil
	case Projection:
		return newProjectionPlan(p), nil
	case FPT, Auto:
		return newFPTPlan(p, name, true)
	case FPTNoCore:
		return newFPTPlan(p, name, false)
	}
	return nil, fmt.Errorf("engine: unknown engine %d", name)
}

// planCacheKey identifies a compiled formula: the structure pointer plus
// its mutation version (stale entries simply miss), the liberal set, and
// the engine.
type planCacheKey struct {
	a       *structure.Structure
	version uint64
	libs    string
	name    Name
}

const planCacheCap = 256

var (
	planCacheMu sync.Mutex
	planCache   = make(map[planCacheKey]Plan, planCacheCap)
)

func planCacheKeyFor(p pp.PP, name Name) (planCacheKey, bool) {
	if p.A == nil {
		return planCacheKey{}, false
	}
	// S is a sorted list of small ints; a compact byte encoding is an
	// adequate identity.
	buf := make([]byte, 0, 2*len(p.S))
	for _, v := range p.S {
		if v > 0xffff {
			return planCacheKey{}, false
		}
		buf = append(buf, byte(v), byte(v>>8))
	}
	return planCacheKey{a: p.A, version: p.A.Version(), libs: string(buf), name: name}, true
}
