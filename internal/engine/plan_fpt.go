package engine

import (
	"context"
	"fmt"
	"math/big"
	"sort"

	"repro/internal/graph"
	"repro/internal/pp"
	"repro/internal/structure"
	"repro/internal/tw"
)

// fptPlan is the compiled form of the Theorem 2.11 counting algorithm for
// a fixed pp-formula: everything that depends only on the formula — the
// core, its components, the ∃-components with their interfaces, the
// contract-graph tree decompositions, the constraint-to-bag assignment
// and the per-node scope/projection position maps — is computed once, so
// that repeated counts against different structures only materialize the
// structure-dependent predicate tables (cached in the Session), bind the
// per-node constraint orders to the table sizes (cached per component and
// session), and run the join-count DP (exec.go).
type fptPlan struct {
	name  Name
	p     pp.PP
	sig   *structure.Signature
	comps []*planComponent

	// deltaOK marks the plan as delta-maintainable (delta.go): every
	// component is a quantifier-free join over atom constraints — no
	// sentence components, no extra sentence checks, no ∃-component
	// predicate tables.  Only then is each component's join value a pure
	// function of its constraint tables, which is what the telescoped
	// delta-join advance relies on.
	deltaOK bool
}

// planConstraint is a constraint scheme over liberal positions of one
// component: either an atom entirely on liberal variables, or an
// ∃-component predicate.
type planConstraint struct {
	scope []int // positions into the component's active variables
	// Atom constraint:
	rel      string
	atomTmpl []int // for atoms: position-in-scope per argument (repeats kept)
	// Predicate constraint:
	sub   *structure.Structure // ∃-component structure (nil for atoms)
	iface []int                // projection elements inside sub, aligned with scope

	// key identifies the materialized table of this constraint within a
	// Session, enabling sharing across plans and repeated counts.
	key tableKey
}

// groupMeta is the compile-time part of one parent–child merge: the
// positions the child's bag shares with the parent's, in each.
type groupMeta struct {
	child       int
	sharedBag   []int // indices into the parent bag
	sharedChild []int // indices into the child bag
}

// nodeMeta is the compile-time description of one decomposition node:
// where each local constraint's scope lands in the bag, which bag
// positions no local constraint covers, and the child merge projections.
// All of it used to be recomputed inside every joinCount call.
type nodeMeta struct {
	scopeBag [][]int // aligned with consAt[node]: scope position j → bag index
	freePos  []int   // bag positions covered by no constraint at this node
	groups   []groupMeta
}

type planComponent struct {
	// sentence components: check hom existence of structureOnly.
	sentence      bool
	structureOnly *structure.Structure
	// extraSentences are quantified parts with empty interfaces inside a
	// liberal component (possible without coring): pure existence checks.
	extraSentences []*structure.Structure

	// liberal components:
	nActive     int // number of constraint-covered liberal positions
	freeVars    int // liberal positions covered by no constraint: factor |B| each
	constraints []planConstraint
	dec         *tw.Decomposition
	consAt      [][]int // node -> constraint indices
	children    [][]int
	nodes       []nodeMeta
	root        int
}

// newFPTPlan compiles a counting plan.  useCore selects whether the
// formula is replaced by its core first (always sound; FPTNoCore skips
// it).
func newFPTPlan(p pp.PP, name Name, useCore bool) (*fptPlan, error) {
	d := p
	if useCore {
		var err error
		d, err = p.Core()
		if err != nil {
			return nil, err
		}
	}
	plan := &fptPlan{name: name, p: p, sig: p.A.Signature()}
	for _, comp := range d.Components() {
		pc, err := compileComponent(comp)
		if err != nil {
			return nil, err
		}
		plan.comps = append(plan.comps, pc)
	}
	plan.deltaOK = deltaMaintainable(plan.comps)
	return plan, nil
}

func compileComponent(comp pp.PP) (*planComponent, error) {
	if len(comp.S) == 0 {
		return &planComponent{sentence: true, structureOnly: comp.A}, nil
	}
	posOf := make(map[int]int, len(comp.S))
	for i, v := range comp.S {
		posOf[v] = i
	}
	inS := make(map[int]bool, len(comp.S))
	for _, v := range comp.S {
		inS[v] = true
	}
	var cons []planConstraint

	// (a) atoms entirely on liberal variables.  One sorted-dedup scratch
	// buffer serves every atom; position-in-scope lookups are binary
	// searches on the sorted scope instead of a throwaway map per atom.
	var scopeBuf []int
	for _, r := range comp.A.Signature().Rels() {
		comp.A.ForEachTuple(r.Name, func(t []int) bool {
			for _, v := range t {
				if !inS[v] {
					return true
				}
			}
			scopeBuf = scopeBuf[:0]
			for _, v := range t {
				scopeBuf = append(scopeBuf, posOf[v])
			}
			sort.Ints(scopeBuf)
			scope := make([]int, 0, len(scopeBuf))
			for i, s := range scopeBuf {
				if i == 0 || s != scopeBuf[i-1] {
					scope = append(scope, s)
				}
			}
			tmpl := make([]int, len(t))
			for j, v := range t {
				tmpl[j] = sort.SearchInts(scope, posOf[v])
			}
			cons = append(cons, planConstraint{scope: scope, rel: r.Name, atomTmpl: tmpl})
			return true
		})
	}

	// (b) ∃-component predicates.  ExistsComponents expects the cored
	// formula per the paper's definition, but the decomposition of the
	// extension condition is sound for any formula.
	sentences := []*structure.Structure{}
	for _, ec := range pp.ExistsComponents(comp) {
		sub, old2new := comp.A.Induced(ec.Vertices)
		iface := make([]int, len(ec.Interface))
		scope := make([]int, len(ec.Interface))
		for i, v := range ec.Interface {
			iface[i] = old2new[v]
			scope[i] = posOf[v]
		}
		perm := make([]int, len(scope))
		for i := range perm {
			perm[i] = i
		}
		sort.Slice(perm, func(i, j int) bool { return scope[perm[i]] < scope[perm[j]] })
		sortedScope := make([]int, len(scope))
		sortedIface := make([]int, len(iface))
		for i, pi := range perm {
			sortedScope[i] = scope[pi]
			sortedIface[i] = iface[pi]
		}
		if len(sortedScope) == 0 {
			sentences = append(sentences, sub)
			continue
		}
		cons = append(cons, planConstraint{scope: sortedScope, sub: sub, iface: sortedIface})
	}

	// Re-index to active (constraint-covered) variables.
	covered := make([]bool, len(comp.S))
	for _, c := range cons {
		for _, s := range c.scope {
			covered[s] = true
		}
	}
	oldToNew := make([]int, len(comp.S))
	nActive, free := 0, 0
	for s := range covered {
		if covered[s] {
			oldToNew[s] = nActive
			nActive++
		} else {
			oldToNew[s] = -1
			free++
		}
	}
	for i := range cons {
		for j, s := range cons[i].scope {
			cons[i].scope[j] = oldToNew[s]
		}
		cons[i].key = makeTableKey(&cons[i])
	}

	pc := &planComponent{
		nActive:     nActive,
		freeVars:    free,
		constraints: cons,
	}
	// Quantified-only parts with empty interfaces behave as sentence
	// sub-checks: treat each as an extra sentence component.
	pc.extraSentences = append(pc.extraSentences, sentences...)
	if nActive > 0 {
		cg := graph.New(nActive)
		for _, c := range cons {
			cg.AddClique(c.scope)
		}
		_, dec, _ := tw.Treewidth(cg)
		pc.dec = dec
		pc.consAt = make([][]int, len(dec.Bags))
		for ci, c := range cons {
			placed := false
			for ni, bag := range dec.Bags {
				if containsAll(bag, c.scope) {
					pc.consAt[ni] = append(pc.consAt[ni], ci)
					placed = true
					break
				}
			}
			if !placed {
				return nil, fmt.Errorf("engine: constraint scope %v fits in no bag", c.scope)
			}
		}
		pc.children = make([][]int, len(dec.Bags))
		pc.root = -1
		for i, p := range dec.Parent {
			if p == -1 {
				pc.root = i
			} else {
				pc.children[p] = append(pc.children[p], i)
			}
		}
		pc.compileNodes()
	}
	return pc, nil
}

// compileNodes precomputes the per-node executor metadata (scope→bag
// position maps, free bag positions, child merge projections) so that
// binding and executing a plan does zero formula-dependent setup.  Bags
// are sorted, so position lookups are binary searches and shared
// positions come from linear merges.
func (pc *planComponent) compileNodes() {
	pc.nodes = make([]nodeMeta, len(pc.dec.Bags))
	for ni, bag := range pc.dec.Bags {
		nm := &pc.nodes[ni]
		covered := make([]bool, len(bag))
		nm.scopeBag = make([][]int, len(pc.consAt[ni]))
		for k, ci := range pc.consAt[ni] {
			scope := pc.constraints[ci].scope
			sb := make([]int, len(scope))
			for j, v := range scope {
				bi := sort.SearchInts(bag, v) // containsAll guaranteed the hit
				sb[j] = bi
				covered[bi] = true
			}
			nm.scopeBag[k] = sb
		}
		for i := range bag {
			if !covered[i] {
				nm.freePos = append(nm.freePos, i)
			}
		}
		for _, c := range pc.children[ni] {
			sb, sc := sharedPositions(bag, pc.dec.Bags[c])
			nm.groups = append(nm.groups, groupMeta{child: c, sharedBag: sb, sharedChild: sc})
		}
	}
}

func (pl *fptPlan) Engine() Name   { return pl.name }
func (pl *fptPlan) Formula() pp.PP { return pl.p }

// Count executes the plan against a structure via an ephemeral or cached
// session (see SessionFor).
func (pl *fptPlan) Count(b *structure.Structure) (*big.Int, error) {
	if err := b.Validate(); err != nil {
		return nil, err
	}
	return pl.CountIn(SessionFor(b))
}

// CountIn executes the plan inside a session with the process-default
// worker budget, reusing any constraint tables already materialized
// there.
func (pl *fptPlan) CountIn(s *Session) (*big.Int, error) {
	return pl.CountInWorkers(s, 0)
}

// CountInWorkers is CountIn with the executor's intra-plan parallelism
// capped at workers (≤ 0 means the process default: EPCQ_WORKERS, else
// GOMAXPROCS).  The count is bit-identical for every workers value.
func (pl *fptPlan) CountInWorkers(s *Session, workers int) (*big.Int, error) {
	return pl.countIn(nil, s, workers)
}

// CountInCtx is CountInWorkers under a context: the join-count DP polls
// ctx at pivot-row and emission granularity and aborts with ctx's error
// once it fires (partial work discarded).  Sentence checks and table
// materialization are not interruptible; cancellation latency is
// bounded by the largest of those steps.
func (pl *fptPlan) CountInCtx(ctx context.Context, s *Session, workers int) (*big.Int, error) {
	return pl.countIn(ctx, s, workers)
}

// countIn is the shared implementation; ctx may be nil (never cancels).
// The whole count runs under a session pin: the tables and prefix
// indexes it reads live in the session's arena, and the pin keeps those
// chunks out of the recycling pools until the executor window closes.
func (pl *fptPlan) countIn(ctx context.Context, s *Session, workers int) (*big.Int, error) {
	if s.acquirePin() {
		defer s.releasePin()
	}
	b := s.B
	if !pl.sig.Equal(b.Signature()) {
		return nil, errSignature(pl.p, b)
	}
	workers = EffectiveWorkers(workers)
	total := big.NewInt(1)
	for _, pc := range pl.comps {
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		f, err := pc.count(ctx, s, workers)
		if err != nil {
			return nil, err
		}
		if f.Sign() == 0 {
			return new(big.Int), nil
		}
		total.Mul(total, f)
	}
	return total, nil
}

func (pc *planComponent) count(ctx context.Context, s *Session, workers int) (*big.Int, error) {
	if pc.sentence {
		if s.SentenceHolds(pc.structureOnly) {
			return big.NewInt(1), nil
		}
		return new(big.Int), nil
	}
	for _, sub := range pc.extraSentences {
		if !s.SentenceHolds(sub) {
			return new(big.Int), nil
		}
	}
	result := structure.PowerSize(s.B, pc.freeVars)
	if pc.nActive == 0 {
		return result, nil
	}
	joined, _, err := pc.joinState(ctx, s, workers)
	if err != nil {
		return nil, err
	}
	result.Mul(result, joined)
	return result, nil
}

// joinState computes the component's join count over the session's
// materialized constraint tables and reports, per constraint, those
// tables' row counts — the cut points a later delta advance splits the
// next version's tables at (delta.go).  For a constraint-free component
// the join is the neutral 1 with no lens.
func (pc *planComponent) joinState(ctx context.Context, s *Session, workers int) (*big.Int, []int, error) {
	if pc.nActive == 0 {
		return big.NewInt(1), nil, nil
	}
	tables := make([]*Table, len(pc.constraints))
	lens := make([]int, len(pc.constraints))
	for ci := range pc.constraints {
		tables[ci] = s.tableFor(&pc.constraints[ci])
		lens[ci] = tables[ci].Len()
	}
	// Bind the component to this session's tables: semi-join pre-pruning,
	// per-node bind orders, prefix indexes — computed once per
	// (component, session) and cached thereafter.
	ep, empty := s.execPlanFor(pc, tables)
	if empty {
		return new(big.Int), lens, nil
	}
	var done <-chan struct{}
	if ctx != nil {
		done = ctx.Done()
	}
	joined, aborted := joinCount(pc, ep, s.B.Size(), workers, done)
	if aborted {
		return nil, nil, ctxAbortErr(ctx)
	}
	return joined, lens, nil
}

// ctxAbortErr maps an executor abort back to the context's error,
// defaulting to context.Canceled in the (unreachable in practice) case
// where the context reports none.
func ctxAbortErr(ctx context.Context) error {
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return err
		}
	}
	return context.Canceled
}

func errSignature(p pp.PP, b *structure.Structure) error {
	return fmt.Errorf("engine: plan signature %v differs from structure signature %v",
		p.A.Signature(), b.Signature())
}

// containsAll reports whether the sorted set contains every element of
// the sorted subset (both ascending, distinct).
func containsAll(set, subset []int) bool {
	i := 0
	for _, v := range subset {
		for i < len(set) && set[i] < v {
			i++
		}
		if i == len(set) || set[i] != v {
			return false
		}
		i++
	}
	return true
}
