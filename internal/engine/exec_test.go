package engine

import (
	"fmt"
	"math/big"
	"os"
	"runtime"
	"testing"
	"time"

	"repro/internal/pp"
	"repro/internal/structure"
	"repro/internal/workload"
)

// ensure must grow every buffer independently: pooled scratches cycle
// through plans of different widths, and keyBuf in particular needs
// 8×width bytes for spill keys regardless of what width the scratch was
// first sized for.
func TestScratchEnsureGrowsEachBufferIndependently(t *testing.T) {
	sc := &execScratch{}
	sc.ensure(2)
	if cap(sc.keyBuf) < 16 {
		t.Fatalf("keyBuf cap after ensure(2) = %d, want >= 16", cap(sc.keyBuf))
	}
	// Simulate a scratch whose assign buffer is wide but whose keyBuf is
	// stale-small (the pre-fix state after mixed-width pool reuse).
	sc2 := &execScratch{assign: make([]int, 16), proj: make([]int, 16), vals: make([]int, 16)}
	sc2.ensure(16)
	if cap(sc2.keyBuf) < 128 {
		t.Fatalf("keyBuf cap after ensure(16) = %d, want >= 128 (stale capacity kept)", cap(sc2.keyBuf))
	}
	// Shrinking width must not shrink anything.
	sc2.ensure(2)
	if cap(sc2.assign) < 16 || cap(sc2.keyBuf) < 128 {
		t.Fatal("ensure with a smaller width shrank a buffer")
	}
}

// Force pool reuse across widths with the spill path active: counting a
// wide-bag formula then a narrow one (and back) through the same pooled
// scratches must agree with the packed path on every instance.
func TestScratchPoolReuseAcrossWidthsWithSpill(t *testing.T) {
	sig := workload.EdgeSig()
	queries := []string{
		"q(a,b,c,d,e) := E(a,b) & E(b,c) & E(c,d) & E(d,e)", // wide bags
		"q(x,y) := E(x,y) & E(y,x)",                         // narrow bags
		"q(w,x,y,z) := E(w,x) & E(x,y) & E(y,z) & E(z,w)",   // wide again
	}
	for seed := int64(0); seed < 4; seed++ {
		b := workload.RandomStructure(sig, 7, 0.35, seed)
		var packed []*big.Int
		for _, src := range queries {
			pl, err := Compile(compilePP(t, sig, src), FPTNoCore)
			if err != nil {
				t.Fatal(err)
			}
			v, err := pl.Count(b)
			if err != nil {
				t.Fatal(err)
			}
			packed = append(packed, v)
		}
		restore := SetPackedKeyBudget(0)
		for i, src := range queries {
			pl, err := Compile(compilePP(t, sig, src), FPTNoCore)
			if err != nil {
				restore()
				t.Fatal(err)
			}
			// Fresh session: the cached exec plan of the packed run was
			// built under the packed budget; the spill path needs its own.
			v, err := pl.CountIn(NewSession(b))
			if err != nil {
				restore()
				t.Fatal(err)
			}
			if v.Cmp(packed[i]) != 0 {
				restore()
				t.Fatalf("seed %d query %q: spill %v != packed %v", seed, src, v, packed[i])
			}
		}
		restore()
	}
}

// The parallel DP (subtree workers + pivot sharding) must agree with the
// strictly serial path on randomized instances, with the thresholds
// forced down so the concurrent machinery engages on instances small
// enough to cross-check against the brute-force reference.
func TestParallelJoinCountMatchesSerialAndBrute(t *testing.T) {
	restore := SetParallelThresholds(1, 1)
	defer restore()
	sig := workload.EdgeSig()
	queries := []string{
		"q(s,t) := exists u, v. E(s,u) & E(u,v) & E(v,t)",
		"q(a,b,c,d) := E(a,b) & E(b,c) & E(c,d)",
		"q(x,y,z) := E(x,y) & E(y,z) & E(z,x)",
		"q(a,b,c,d) := E(a,b) & E(c,d)",
		"q(x) := E(x,x) & (exists s, u. E(s,u) & E(u,s))",
	}
	for _, src := range queries {
		p := compilePP(t, sig, src)
		ref, err := Compile(p, Brute)
		if err != nil {
			t.Fatal(err)
		}
		pl, err := Compile(p, FPT)
		if err != nil {
			t.Fatal(err)
		}
		for seed := int64(0); seed < 6; seed++ {
			b := workload.RandomStructure(sig, 5, 0.35, seed)
			want, err := ref.Count(b)
			if err != nil {
				t.Fatal(err)
			}
			s := SessionFor(b)
			serial, err := pl.(*fptPlan).CountInWorkers(s, 1)
			if err != nil {
				t.Fatal(err)
			}
			par, err := pl.(*fptPlan).CountInWorkers(s, 8)
			if err != nil {
				t.Fatal(err)
			}
			if serial.Cmp(want) != 0 || par.Cmp(want) != 0 {
				t.Fatalf("%s seed %d: serial %v, parallel %v, brute %v", src, seed, serial, par, want)
			}
		}
	}
}

// Parallel execution must stay bit-identical through the big.Int
// overflow fallback: hom(P_12, K_41^loop) = 41^13 > MaxInt64, counted
// with 1 and 8 workers and forced-low thresholds.
func TestParallelOverflowMatchesSerial(t *testing.T) {
	restore := SetParallelThresholds(1, 1)
	defer restore()
	const n, edges = 41, 12
	b := structure.New(workload.EdgeSig())
	for i := 0; i < n; i++ {
		if _, err := b.AddElem(fmt.Sprintf("v%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if err := b.AddTuple("E", i, j); err != nil {
				t.Fatal(err)
			}
		}
	}
	a := structure.New(workload.EdgeSig())
	all := make([]int, edges+1)
	for i := range all {
		v, err := a.AddElem(fmt.Sprintf("x%d", i))
		if err != nil {
			t.Fatal(err)
		}
		all[i] = v
	}
	for i := 0; i < edges; i++ {
		if err := a.AddTuple("E", i, i+1); err != nil {
			t.Fatal(err)
		}
	}
	p, err := pp.New(a, all)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := Compile(p, FPTNoCore)
	if err != nil {
		t.Fatal(err)
	}
	s := SessionFor(b)
	serial, err := pl.(*fptPlan).CountInWorkers(s, 1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := pl.(*fptPlan).CountInWorkers(s, 8)
	if err != nil {
		t.Fatal(err)
	}
	want := new(big.Int).Exp(big.NewInt(n), big.NewInt(edges+1), nil)
	if serial.Cmp(want) != 0 || par.Cmp(want) != 0 {
		t.Fatalf("serial %v, parallel %v, want %v", serial, par, want)
	}
	if par.IsInt64() {
		t.Fatal("instance too small to force the big.Int fallback")
	}
}

// Table prefix indexes: probing must return exactly the rows whose bound
// positions match, under both the packed and spilled codecs.
func TestTablePrefixIndex(t *testing.T) {
	tb := newTable(3, 5, nil)
	rows := [][]int{{0, 1, 2}, {0, 1, 3}, {1, 1, 2}, {4, 0, 0}}
	for _, r := range rows {
		tb.appendRow(r)
	}
	check := func() {
		ix := tb.prefixIndex([]int{0, 1})
		probe := func(vals []int) []int32 {
			if ix.codec.packed {
				return ix.probe(ix.codec.pack(vals))
			}
			return ix.sk[spillKey(vals, nil)]
		}
		if got := probe([]int{0, 1}); len(got) != 2 || got[0] != 0 || got[1] != 1 {
			t.Fatalf("probe(0,1) = %v, want [0 1]", got)
		}
		if got := probe([]int{4, 0}); len(got) != 1 || got[0] != 3 {
			t.Fatalf("probe(4,0) = %v, want [3]", got)
		}
		if got := probe([]int{2, 2}); len(got) != 0 {
			t.Fatalf("probe(2,2) = %v, want empty", got)
		}
	}
	check()
	// Spilled codec: fresh table (the index cache is keyed per table).
	restore := SetPackedKeyBudget(0)
	defer restore()
	tb = newTable(3, 5, nil)
	for _, r := range rows {
		tb.appendRow(r)
	}
	check()
}

// Counting against an empty-universe structure through the exported
// CountIn/NewSession path (which skips Validate) must return 0, not
// panic (regression: projSize divided by the domain size).
func TestCountInEmptyUniverse(t *testing.T) {
	sig := workload.EdgeSig()
	pl, err := Compile(compilePP(t, sig, "q(a,b,c,d) := E(a,b) & E(b,c) & E(c,d)"), FPTNoCore)
	if err != nil {
		t.Fatal(err)
	}
	got, err := pl.CountIn(NewSession(structure.New(sig)))
	if err != nil {
		t.Fatal(err)
	}
	if got.Sign() != 0 {
		t.Fatalf("count on empty universe = %v, want 0", got)
	}
}

func TestWorkersKnob(t *testing.T) {
	if EffectiveWorkers(3) != 3 {
		t.Fatal("explicit workers must win")
	}
	restore := SetDefaultWorkers(2)
	if DefaultWorkers() != 2 || EffectiveWorkers(0) != 2 {
		restore()
		t.Fatal("SetDefaultWorkers not effective")
	}
	restore()
	if DefaultWorkers() < 1 {
		t.Fatal("default workers must be positive")
	}
	restore = SetDefaultWorkers(0)
	if DefaultWorkers() != runtime.GOMAXPROCS(0) {
		restore()
		t.Fatal("SetDefaultWorkers(0) must restore the GOMAXPROCS default")
	}
	restore()
}

// Bench-smoke regression guard (CI: make bench-smoke): on a medium
// multi-bag instance the parallel executor must not run more than 2x
// slower than the serial one — a same-machine relative bound that
// catches synchronization regressions without depending on absolute CI
// speed.  Gated behind EPCQ_BENCH_SMOKE so the normal test run stays
// fast.
func TestBenchSmokeParallelNoRegression(t *testing.T) {
	if os.Getenv("EPCQ_BENCH_SMOKE") == "" {
		t.Skip("set EPCQ_BENCH_SMOKE=1 to run the bench smoke guard")
	}
	sig := workload.EdgeSig()
	a := structure.New(sig)
	const k = 8
	all := make([]int, k+1)
	for i := range all {
		v, err := a.AddElem(fmt.Sprintf("x%d", i))
		if err != nil {
			t.Fatal(err)
		}
		all[i] = v
	}
	for i := 0; i < k; i++ {
		if err := a.AddTuple("E", i, i+1); err != nil {
			t.Fatal(err)
		}
	}
	p, err := pp.New(a, all)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := Compile(p, FPTNoCore)
	if err != nil {
		t.Fatal(err)
	}
	b := workload.GraphStructure(workload.ER(300, 5.0/300, 7))
	s := SessionFor(b)
	fpt := pl.(*fptPlan)
	if _, err := fpt.CountInWorkers(s, 1); err != nil { // warm tables + plan
		t.Fatal(err)
	}
	measure := func(workers int) time.Duration {
		best := time.Duration(1<<63 - 1)
		for r := 0; r < 3; r++ {
			start := time.Now()
			if _, err := fpt.CountInWorkers(s, workers); err != nil {
				t.Fatal(err)
			}
			if d := time.Since(start); d < best {
				best = d
			}
		}
		return best
	}
	serial := measure(1)
	par := measure(0)
	t.Logf("bench smoke: serial %v, parallel %v (%d cores)", serial, par, runtime.GOMAXPROCS(0))
	if par > 2*serial+2*time.Millisecond {
		t.Fatalf("parallel executor regressed: %v > 2x serial %v", par, serial)
	}
}
