package engine

import (
	"math/rand"
	"testing"
)

// chainComponent is a path-query shape for exercising semiJoinPrune
// directly: nvars active variables joined by nvars-1 binary constraints
// E(x_i, x_{i+1}).
func chainComponent(nvars int) *planComponent {
	pc := &planComponent{nActive: nvars}
	for i := 0; i < nvars-1; i++ {
		pc.constraints = append(pc.constraints, planConstraint{scope: []int{i, i + 1}})
	}
	return pc
}

// layeredEdgeTable fills one table per chain constraint with the edges
// of a dense layered DAG (width vertices per layer, deg out-edges into
// the next layer).  All tables share the edge set but are distinct
// copies, as session materialization would produce.
func layeredEdgeTables(k, layers, width, deg int, seed int64, ar *arena) ([]*Table, int) {
	dom := layers * width
	rng := rand.New(rand.NewSource(seed))
	var edges [][2]int
	seen := make(map[[2]int]bool)
	for l := 0; l < layers-1; l++ {
		for j := 0; j < width; j++ {
			u := l*width + j
			for d := 0; d < deg; d++ {
				e := [2]int{u, (l+1)*width + rng.Intn(width)}
				if !seen[e] {
					seen[e] = true
					edges = append(edges, e)
				}
			}
		}
	}
	tables := make([]*Table, k)
	for ci := range tables {
		t := newTable(2, dom, ar)
		for _, e := range edges {
			t.appendRow(e[:])
		}
		tables[ci] = t
	}
	return tables, dom
}

// tableRows flattens a table into comparable row slices.
func tableRows(t *Table) [][2]int32 {
	rows := make([][2]int32, t.n)
	for r := 0; r < t.n; r++ {
		rows[r] = [2]int32{t.flat[2*r], t.flat[2*r+1]}
	}
	return rows
}

// The AC-4 worklist strategy must land on exactly the tables the
// rescanning fallback reaches when the fallback is run to convergence:
// both compute the same arc-consistency fixpoint, differing only in how
// supports are kept current.  Against the fallback at its default round
// cap, AC-4 may only prune more, never less.
func TestSemiJoinPruneAC4MatchesRescanFallback(t *testing.T) {
	shapes := []struct {
		nvars, layers, width, deg int
		seed                      int64
	}{
		{5, 3, 20, 4, 1},   // shallow: prune empties (no 4-edge walk in 3 layers)
		{9, 12, 24, 4, 2},  // deep: boundary trickle, survivors remain
		{4, 6, 16, 3, 3},   // short chain on a mid-depth target
		{7, 4, 40, 6, 4},   // empties at the round cap
		{16, 20, 16, 3, 5}, // cascade deeper than the default round cap
	}
	defer func(oldCells, oldRounds int) {
		pruneMaxCntCells, pruneMaxRounds = oldCells, oldRounds
	}(pruneMaxCntCells, pruneMaxRounds)
	for _, sh := range shapes {
		pc := chainComponent(sh.nvars)
		tables, dom := layeredEdgeTables(sh.nvars-1, sh.layers, sh.width, sh.deg, sh.seed, &arena{})

		pruneMaxCntCells = 1 << 22
		gotAC4, emptyAC4 := semiJoinPrune(pc, tables, dom)
		pruneMaxCntCells = 0  // force the rescanning fallback...
		pruneMaxRounds = 1024 // ...run to convergence
		gotScan, emptyScan := semiJoinPrune(pc, tables, dom)

		if emptyAC4 != emptyScan {
			t.Fatalf("shape %+v: AC-4 empty=%v, converged fallback empty=%v", sh, emptyAC4, emptyScan)
		}
		if !emptyAC4 {
			if len(gotAC4) != len(gotScan) {
				t.Fatalf("shape %+v: table count %d vs %d", sh, len(gotAC4), len(gotScan))
			}
			for ci := range gotAC4 {
				ri, rs := tableRows(gotAC4[ci]), tableRows(gotScan[ci])
				if len(ri) != len(rs) {
					t.Fatalf("shape %+v table %d: %d rows vs %d", sh, ci, len(ri), len(rs))
				}
				for r := range ri {
					if ri[r] != rs[r] {
						t.Fatalf("shape %+v table %d row %d: %v vs %v", sh, ci, r, ri[r], rs[r])
					}
				}
			}
		}

		// Subset law vs the capped fallback: AC-4 keeps no row the
		// capped fixpoint would have dropped.
		pruneMaxRounds = 4
		gotCap, emptyCap := semiJoinPrune(pc, tables, dom)
		if emptyCap && !emptyAC4 {
			t.Fatalf("shape %+v: capped fallback emptied but AC-4 did not", sh)
		}
		if emptyAC4 || emptyCap {
			continue
		}
		for ci := range gotAC4 {
			keep := make(map[[2]int32]bool, gotCap[ci].n)
			for _, row := range tableRows(gotCap[ci]) {
				keep[row] = true
			}
			for _, row := range tableRows(gotAC4[ci]) {
				if !keep[row] {
					t.Fatalf("shape %+v table %d: AC-4 kept row %v the capped fallback dropped", sh, ci, row)
				}
			}
		}
	}
}

// The shapes above must exercise both fixpoint outcomes; pin them so a
// workload change cannot silently turn the test one-sided.
func TestSemiJoinPruneShapesCoverBothOutcomes(t *testing.T) {
	pcE := chainComponent(5)
	tE, domE := layeredEdgeTables(4, 3, 20, 4, 1, &arena{})
	if _, empty := semiJoinPrune(pcE, tE, domE); !empty {
		t.Error("5-var chain on a 3-layer DAG should prune to empty")
	}
	pcS := chainComponent(9)
	tS, domS := layeredEdgeTables(8, 12, 24, 4, 2, &arena{})
	out, empty := semiJoinPrune(pcS, tS, domS)
	if empty {
		t.Fatal("9-var chain on a 12-layer DAG has walks; must not empty")
	}
	if out[0].n >= tS[0].n {
		t.Error("deep-DAG shape should still trim boundary rows")
	}
}
