package engine

import (
	"fmt"
	"math"
	"math/big"
	"testing"

	"repro/internal/parser"
	"repro/internal/pp"
	"repro/internal/structure"
	"repro/internal/workload"
)

func compilePP(t *testing.T, sig *structure.Signature, src string) pp.PP {
	t.Helper()
	q, err := parser.ParseQuery(src)
	if err != nil {
		t.Fatal(err)
	}
	p, err := pp.FromDisjunct(sig, q.Lib, q.Disjuncts()[0])
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// All five engines are Plans behind the same interface and must agree
// with the brute reference on random structures.
func TestAllEnginesAgreeViaPlanInterface(t *testing.T) {
	sig := workload.EdgeSig()
	queries := []string{
		"q(s,t) := exists u, v. E(s,u) & E(u,v) & E(v,t)",
		"q(x) := exists u, w. E(x,u) & E(x,w)",
		"q(x,y,z) := E(x,y) & E(z,z)",
		"q(x) := E(x,x) & (exists a, b. E(a,b) & E(b,a))",
	}
	for _, src := range queries {
		p := compilePP(t, sig, src)
		ref, err := Compile(p, Brute)
		if err != nil {
			t.Fatal(err)
		}
		for seed := int64(0); seed < 6; seed++ {
			b := workload.RandomStructure(sig, 4, 0.35, seed)
			want, err := ref.Count(b)
			if err != nil {
				t.Fatal(err)
			}
			for _, name := range Names() {
				pl, err := Compile(p, name)
				if err != nil {
					t.Fatalf("%s: compile %v: %v", src, name, err)
				}
				if pl.Engine() != name {
					t.Fatalf("plan engine = %v, want %v", pl.Engine(), name)
				}
				got, err := pl.Count(b)
				if err != nil {
					t.Fatalf("%s engine %v: %v", src, name, err)
				}
				if got.Cmp(want) != 0 {
					t.Fatalf("%s engine %v seed %d: %v != %v", src, name, seed, got, want)
				}
			}
		}
	}
}

// The packed-uint64 and wide-bag spill paths must produce identical
// counts: force the spill path by shrinking the key budget to zero.
func TestPackedAndSpillKeysAgree(t *testing.T) {
	sig := workload.EdgeSig()
	queries := []string{
		"q(w,x,y,z) := E(w,x) & E(x,y) & E(y,z)",
		"q(x,y,z) := E(x,y) & E(y,z) & E(z,x)",
		"q(x,y) := exists u. E(x,u) & E(u,y)",
	}
	for _, src := range queries {
		p := compilePP(t, sig, src)
		for seed := int64(0); seed < 6; seed++ {
			b := workload.RandomStructure(sig, 9, 0.3, seed)
			pl, err := Compile(p, FPT)
			if err != nil {
				t.Fatal(err)
			}
			packed, err := pl.Count(b)
			if err != nil {
				t.Fatal(err)
			}
			restore := SetPackedKeyBudget(0)
			spilled, err := pl.Count(b)
			restore()
			if err != nil {
				t.Fatal(err)
			}
			if packed.Cmp(spilled) != 0 {
				t.Fatalf("%s seed %d: packed %v != spilled %v", src, seed, packed, spilled)
			}
		}
	}
}

func TestKeyCodecRoundTrip(t *testing.T) {
	for _, domSize := range []int{1, 2, 3, 17, 1000} {
		for width := 0; width <= 6; width++ {
			c := newKeyCodec(domSize, width)
			vals := make([]int, width)
			for i := range vals {
				vals[i] = (i * 7919) % domSize
			}
			if !c.packed {
				continue
			}
			out := make([]int, width)
			c.unpack(c.pack(vals), out)
			for i := range vals {
				if out[i] != vals[i] {
					t.Fatalf("domSize %d width %d: round trip %v != %v", domSize, width, out, vals)
				}
			}
		}
	}
}

// wnum must transparently fall back to big.Int on overflow.
func TestWnumOverflow(t *testing.T) {
	half := wnum{lo: math.MaxInt64/2 + 1}
	sum := addW(half, half)
	if sum.b == nil {
		t.Fatal("int64 addition overflow not detected")
	}
	want := new(big.Int).Add(big.NewInt(math.MaxInt64/2+1), big.NewInt(math.MaxInt64/2+1))
	if sum.toBig().Cmp(want) != 0 {
		t.Fatalf("overflowed sum = %v, want %v", sum.toBig(), want)
	}

	big3 := wnum{lo: 1 << 32}
	prod := mulW(big3, big3)
	if prod.b == nil {
		t.Fatal("int64 multiplication overflow not detected")
	}
	wantP := new(big.Int).Lsh(big.NewInt(1), 64)
	if prod.toBig().Cmp(wantP) != 0 {
		t.Fatalf("overflowed product = %v, want %v", prod.toBig(), wantP)
	}

	// In-range arithmetic stays on the fast path.
	s := addW(wnum{lo: 40}, wnum{lo: 2})
	m := mulW(s, wnum{lo: 100})
	if s.b != nil || m.b != nil || m.lo != 4200 {
		t.Fatalf("fast path: got %+v, %+v", s, m)
	}
	// Mixed-mode arithmetic is exact.
	mixed := mulW(prod, wnum{lo: 3})
	wantM := new(big.Int).Mul(wantP, big.NewInt(3))
	if mixed.toBig().Cmp(wantM) != 0 {
		t.Fatalf("mixed product = %v, want %v", mixed.toBig(), wantM)
	}
}

// End-to-end overflow: counting homomorphisms of a long path into a
// large complete graph with loops exceeds int64 inside the DP and must
// still be exact.  hom(P_k, K_n^loop) = n^(k+1).
func TestExecutorBigIntFallbackEndToEnd(t *testing.T) {
	const n, edges = 41, 12 // 41^13 ≈ 2^69.6 > MaxInt64
	b := structure.New(workload.EdgeSig())
	for i := 0; i < n; i++ {
		if _, err := b.AddElem(fmt.Sprintf("v%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if err := b.AddTuple("E", i, j); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Path with every variable liberal: the count is the number of
	// homomorphisms.
	a := structure.New(workload.EdgeSig())
	all := make([]int, edges+1)
	for i := range all {
		v, err := a.AddElem(fmt.Sprintf("x%d", i))
		if err != nil {
			t.Fatal(err)
		}
		all[i] = v
	}
	for i := 0; i < edges; i++ {
		if err := a.AddTuple("E", i, i+1); err != nil {
			t.Fatal(err)
		}
	}
	p, err := pp.New(a, all)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := Compile(p, FPTNoCore)
	if err != nil {
		t.Fatal(err)
	}
	got, err := pl.Count(b)
	if err != nil {
		t.Fatal(err)
	}
	want := new(big.Int).Exp(big.NewInt(n), big.NewInt(edges+1), nil)
	if got.Cmp(want) != 0 {
		t.Fatalf("hom(P_%d, K_%d^loop) = %v, want %v", edges, n, got, want)
	}
	if got.IsInt64() {
		t.Fatalf("test is too small to force the big.Int fallback: %v", got)
	}
}

// Sessions share materialized tables across plans and repeated counts,
// and are invalidated by structure mutation.
func TestSessionReuseAndInvalidation(t *testing.T) {
	sig := workload.EdgeSig()
	p := compilePP(t, sig, "q(x,y) := E(x,y)")
	b := workload.RandomStructure(sig, 5, 0.4, 1)

	s1 := SessionFor(b)
	if s2 := SessionFor(b); s2 != s1 {
		t.Fatal("unchanged structure must reuse its session")
	}
	pl, err := Compile(p, FPT)
	if err != nil {
		t.Fatal(err)
	}
	before, err := pl.CountIn(s1)
	if err != nil {
		t.Fatal(err)
	}
	if len(s1.tables) == 0 {
		t.Fatal("counting materialized no tables in the session")
	}
	fp1 := s1.Fingerprint()
	if !s1.Valid() {
		t.Fatal("session should be valid before mutation")
	}

	// Mutate: the session registry must hand out a fresh session and the
	// count must change accordingly.
	if err := b.AddTuple("E", 0, 0); err != nil {
		t.Fatal(err)
	}
	if s1.Valid() {
		t.Fatal("session should be stale after mutation")
	}
	s3 := SessionFor(b)
	if s3 == s1 {
		t.Fatal("stale session must be replaced")
	}
	if s3.Fingerprint() == fp1 {
		t.Fatal("fingerprint should change when tuples change")
	}
	after, err := pl.CountIn(s3)
	if err != nil {
		t.Fatal(err)
	}
	wantAfter := new(big.Int).Add(before, big.NewInt(1))
	if after.Cmp(wantAfter) != 0 {
		t.Fatalf("count after adding a loop = %v, want %v", after, wantAfter)
	}

	// Explicit release drops the cached session.
	ReleaseSession(b)
	if s4 := SessionFor(b); s4 == s3 {
		t.Fatal("ReleaseSession must evict the cached session")
	}
}

func TestRunBounded(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 64} {
		got := make([]int, 100)
		err := RunBounded(len(got), workers, func(i int) error {
			got[i] = i + 1
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range got {
			if v != i+1 {
				t.Fatalf("workers=%d: index %d not executed", workers, i)
			}
		}
	}
	wantErr := fmt.Errorf("boom")
	err := RunBounded(50, 4, func(i int) error {
		if i == 7 {
			return wantErr
		}
		return nil
	})
	if err != wantErr {
		t.Fatalf("err = %v, want %v", err, wantErr)
	}
}

func TestParseNameRoundTrip(t *testing.T) {
	for _, n := range Names() {
		got, err := ParseName(n.String())
		if err != nil || got != n {
			t.Fatalf("ParseName(%q) = %v, %v", n.String(), got, err)
		}
	}
	if _, err := ParseName("quantum"); err == nil {
		t.Fatal("unknown engine should fail")
	}
}
