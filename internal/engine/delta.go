package engine

import (
	"context"
	"math/big"
	"sync/atomic"

	"repro/internal/structure"
)

// Incremental count maintenance: advance a memoized FPT count across an
// append batch instead of recounting from scratch.
//
// The FPT plan's per-component value factorizes as |B|^free × J, where
// J is the join count over the component's constraint tables and is a
// pure function of those tables (every active variable is covered by a
// constraint somewhere in the decomposition, so locally-free bag
// positions are always filtered through the merges toward their
// constraint's node — growing the universe without touching the tables
// leaves J unchanged).  Structures are append-only, so between two
// versions each table satisfies newT = oldT ⊎ ΔT with ΔT the projected
// rows first seen in the appended tuple range.  J is multilinear in the
// row-membership indicators, so the standard telescoped delta-join
// identity is exact — no inclusion–exclusion over overlaps is needed:
//
//	J(new₁..newₖ) − J(old₁..oldₖ) = Σᵢ J(new₁..newᵢ₋₁, Δᵢ, oldᵢ₊₁..oldₖ)
//
// Each summand pins one constraint to its (typically tiny) delta table
// and reuses the existing bind-order/prefix-index executor, whose
// smallest-table-first heuristic makes Δᵢ the pivot.  Cost per advance
// is the delta joins plus view indexing, not a fresh full DP.
//
// The split itself is free: session tables are materialized by scanning
// relation rows in insertion order with first-sighting dedup, so the
// old version's table is exactly the row prefix of the new version's
// table, and ΔT the suffix.  A memoized count therefore only needs to
// remember, per constraint, the table row count at its version
// (fptDeltaState.lens) — old and delta tables are zero-copy prefix and
// suffix views over the new session's tables.
//
// The delta path applies only to delta-maintainable plans (fptPlan.
// deltaOK: quantifier-free joins over atom constraints; sentence checks
// and ∃-component predicate tables are not pure functions of appended
// rows) and only while the batch is small relative to the structure
// (SetDeltaThresholds); everything else falls back to a full recount,
// which is always sound.

// deltaMaintainable reports whether every component of a compiled plan
// is a quantifier-free join over atom constraints — the shape the
// telescoped delta-join advance handles.
func deltaMaintainable(comps []*planComponent) bool {
	for _, pc := range comps {
		if pc.sentence || len(pc.extraSentences) > 0 {
			return false
		}
		for i := range pc.constraints {
			if pc.constraints[i].sub != nil {
				return false
			}
		}
	}
	return true
}

// deltaDisabled turns the delta path off process-wide (the baseline
// the benchmarks and differential tests compare against).
var deltaDisabled atomic.Bool

// deltaMinRows and deltaMaxPct gate when an advance is attempted: a
// batch of at most deltaMinRows appended tuples always takes the delta
// path; a larger one only while appended·100 ≤ deltaMaxPct·total.
// Beyond that the delta joins approach the cost of the full DP and a
// recount re-anchors the state.
var (
	deltaMinRows atomic.Int64
	deltaMaxPct  atomic.Int64
)

func init() {
	deltaMinRows.Store(256)
	deltaMaxPct.Store(50)
}

// SetDeltaEnabled switches incremental count maintenance on or off
// process-wide (it defaults to on).  Returns a restore function;
// callers must not interleave override/restore pairs.  Disabling makes
// every keyed count a full recount — the baseline side of the
// delta-vs-recount benchmarks.
func SetDeltaEnabled(on bool) (restore func()) {
	old := deltaDisabled.Swap(!on)
	return func() { deltaDisabled.Store(old) }
}

// SetDeltaThresholds overrides the advance gate: batches of at most
// minRows appended tuples always advance; larger ones only while
// appended·100 ≤ maxPercent·total tuples.  Test hook (force or starve
// the delta path); returns a restore function; callers must not
// interleave override/restore pairs.
func SetDeltaThresholds(minRows, maxPercent int) (restore func()) {
	om, op := deltaMinRows.Swap(int64(minRows)), deltaMaxPct.Swap(int64(maxPercent))
	return func() { deltaMinRows.Store(om); deltaMaxPct.Store(op) }
}

// deltaAdvances counts memoized counts advanced by the delta path;
// deltaFullRecounts counts advances that fell back to a full recount
// at the threshold gate (telemetry; see DeltaStats).
var (
	deltaAdvances     atomic.Uint64
	deltaFullRecounts atomic.Uint64
)

// DeltaCounters is a snapshot of the incremental-maintenance telemetry:
// how many memoized counts were advanced across a version bump by the
// delta path, and how many advance opportunities fell back to a full
// recount at the threshold gate.  Advances elsewhere impossible (cold
// memos, non-maintainable plans) appear in neither counter.
type DeltaCounters struct {
	Advances     uint64 `json:"advances"`
	FullRecounts uint64 `json:"full_recounts"`
}

// DeltaStats returns the process-wide incremental-maintenance counters.
// Safe for concurrent use.
func DeltaStats() DeltaCounters {
	return DeltaCounters{Advances: deltaAdvances.Load(), FullRecounts: deltaFullRecounts.Load()}
}

// fptDeltaState is the advanceable part of a memoized FPT count: the
// per-component join values and, per constraint, the session-table row
// counts at the version the count was computed — the cut points the
// next advance's prefix/suffix views split at.  The joins are shared
// read-only big.Ints; an advance always allocates fresh ones.
type fptDeltaState struct {
	plan  *fptPlan
	joins []*big.Int // per component; the neutral 1 when nActive == 0
	lens  [][]int    // per component, per constraint; nil when nActive == 0
}

// countStateIn is the full count that additionally captures the
// advanceable state for delta-maintainable plans.  Unlike countIn it
// does not early-exit on a zero component factor: every component's
// join value must land in the state.
func (pl *fptPlan) countStateIn(ctx context.Context, s *Session, workers int) (*big.Int, any, error) {
	if !pl.deltaOK || deltaDisabled.Load() {
		v, err := pl.countIn(ctx, s, workers)
		return v, nil, err
	}
	if s.acquirePin() {
		defer s.releasePin()
	}
	if !pl.sig.Equal(s.B.Signature()) {
		return nil, nil, errSignature(pl.p, s.B)
	}
	workers = EffectiveWorkers(workers)
	st := &fptDeltaState{
		plan:  pl,
		joins: make([]*big.Int, len(pl.comps)),
		lens:  make([][]int, len(pl.comps)),
	}
	total := big.NewInt(1)
	for ci, pc := range pl.comps {
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				return nil, nil, err
			}
		}
		j, lens, err := pc.joinState(ctx, s, workers)
		if err != nil {
			return nil, nil, err
		}
		st.joins[ci] = j
		st.lens[ci] = lens
		f := structure.PowerSize(s.B, pc.freeVars)
		f.Mul(f, j)
		total.Mul(total, f)
	}
	return total, st, nil
}

// countAdvanceIn advances a previously memoized count to the session's
// version by telescoped delta-joins.  ok=false with a nil error means
// the delta path does not apply (plan not maintainable or disabled,
// foreign or future state, batch over threshold) and the caller should
// full-recount; a non-nil error (cancellation) is terminal either way.
func (pl *fptPlan) countAdvanceIn(ctx context.Context, s *Session, workers int, prev priorCount) (*big.Int, any, bool, error) {
	if !pl.deltaOK || deltaDisabled.Load() {
		return nil, nil, false, nil
	}
	st, isState := prev.state.(*fptDeltaState)
	if !isState || st.plan != pl || len(st.joins) != len(pl.comps) {
		return nil, nil, false, nil
	}
	if !pl.sig.Equal(s.B.Signature()) {
		return nil, nil, false, nil
	}
	if s.acquirePin() {
		defer s.releasePin()
	}
	dv, ok := s.B.DeltaSince(prev.snap)
	if !ok {
		return nil, nil, false, nil
	}
	if added := int64(dv.TuplesAdded()); added > deltaMinRows.Load() &&
		added*100 > deltaMaxPct.Load()*int64(s.B.NumTuples()) {
		deltaFullRecounts.Add(1)
		return nil, nil, false, nil
	}
	workers = EffectiveWorkers(workers)
	ns := &fptDeltaState{
		plan:  pl,
		joins: make([]*big.Int, len(pl.comps)),
		lens:  make([][]int, len(pl.comps)),
	}
	total := big.NewInt(1)
	for ci, pc := range pl.comps {
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				return nil, nil, true, err
			}
		}
		j, lens, ok, err := pc.advanceJoin(ctx, s, workers, dv, st.joins[ci], st.lens[ci])
		if err != nil {
			return nil, nil, true, err
		}
		if !ok {
			return nil, nil, false, nil
		}
		ns.joins[ci] = j
		ns.lens[ci] = lens
		f := structure.PowerSize(s.B, pc.freeVars)
		f.Mul(f, j)
		total.Mul(total, f)
	}
	deltaAdvances.Add(1)
	return total, ns, true, nil
}

// advanceJoin computes the component's join count at the session's
// version from its value at an earlier version: new J = old J + one
// telescoped delta-join per constraint whose table grew.  oldJ is
// treated as read-only; the result is freshly allocated (or oldJ
// itself when nothing this component reads grew).
func (pc *planComponent) advanceJoin(ctx context.Context, s *Session, workers int, dv structure.DeltaView, oldJ *big.Int, oldLens []int) (*big.Int, []int, bool, error) {
	if pc.nActive == 0 {
		return big.NewInt(1), nil, true, nil
	}
	if oldJ == nil || len(oldLens) != len(pc.constraints) {
		return nil, nil, false, nil
	}
	grew := false
	for i := range pc.constraints {
		if dv.NewRows(pc.constraints[i].rel) > 0 {
			grew = true
			break
		}
	}
	if !grew {
		// No relation this component projects from gained rows: its
		// tables, and hence its join value, are unchanged.
		return oldJ, oldLens, true, nil
	}
	k := len(pc.constraints)
	newT := make([]*Table, k)
	lens := make([]int, k)
	for i := range pc.constraints {
		newT[i] = s.tableFor(&pc.constraints[i])
		lens[i] = newT[i].Len()
		if oldLens[i] > lens[i] {
			return nil, nil, false, nil // not a prefix: state is not from this history
		}
	}
	// Split each table at its old row count.  Materialization scans
	// relation rows in insertion order with first-sighting dedup, and
	// relations are append-only, so the old version's table is exactly
	// the row prefix of the new one and ΔT the suffix — both zero-copy
	// views.  Constraints sharing a table key share one view pair so
	// the views' prefix indexes are shared within the advance too.
	oldV := make([]*Table, k)
	delV := make([]*Table, k)
	views := make(map[tableKey][2]*Table, k)
	for i := range pc.constraints {
		key := pc.constraints[i].key
		if v, hit := views[key]; hit {
			oldV[i], delV[i] = v[0], v[1]
			continue
		}
		o, d := prefixView(newT[i], oldLens[i]), suffixView(newT[i], oldLens[i])
		views[key] = [2]*Table{o, d}
		oldV[i], delV[i] = o, d
	}
	var done <-chan struct{}
	if ctx != nil {
		done = ctx.Done()
	}
	delta := new(big.Int)
	mixed := make([]*Table, k)
	for i := 0; i < k; i++ {
		if delV[i].Len() == 0 {
			continue
		}
		for j := 0; j < i; j++ {
			mixed[j] = newT[j]
		}
		mixed[i] = delV[i]
		for j := i + 1; j < k; j++ {
			mixed[j] = oldV[j]
		}
		run, empty := semiJoinPrune(pc, mixed, s.B.Size())
		if empty {
			continue
		}
		ep := newExecPlan(pc, run, s.B.Size())
		j, aborted := joinCount(pc, ep, s.B.Size(), workers, done)
		if aborted {
			return nil, nil, true, ctxAbortErr(ctx)
		}
		delta.Add(delta, j)
	}
	return new(big.Int).Add(oldJ, delta), lens, true, nil
}

// prefixView returns a read-only view of t's first n rows, sharing the
// row storage (sound because session tables are never appended to after
// materialization).  The view has its own index cache.
func prefixView(t *Table, n int) *Table {
	return &Table{width: t.width, n: n, dom: t.dom, flat: t.flat[:n*t.width], ar: t.ar}
}

// suffixView returns a read-only view of t's rows from row `from` on,
// sharing the row storage.  Views inherit the parent's arena so their
// prefix indexes are chunk-backed too (an advance runs under the
// session pin, so the chunks outlive every view built on them).
func suffixView(t *Table, from int) *Table {
	return &Table{width: t.width, n: t.n - from, dom: t.dom, flat: t.flat[from*t.width:], ar: t.ar}
}
