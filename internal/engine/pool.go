package engine

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// RunBounded executes fn(0)…fn(n-1) on a bounded pool of goroutines
// (workers ≤ 0 means GOMAXPROCS).  Once any call errors, no further
// indices are started; the first error (by index order of observation) is
// returned after all in-flight calls finish.  Replaces the
// goroutine-per-task fan-out previously used for φ⁻af terms.
func RunBounded(n, workers int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		next    atomic.Int64
		failed  atomic.Bool
		errOnce sync.Once
		firstEr error
		wg      sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || failed.Load() {
					return
				}
				if err := fn(i); err != nil {
					errOnce.Do(func() { firstEr = err })
					failed.Store(true)
					return
				}
			}
		}()
	}
	wg.Wait()
	return firstEr
}
