package engine

import (
	"context"
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
)

// defaultWorkers is the process-wide worker budget used whenever a
// caller does not pass an explicit count: 0 means "GOMAXPROCS at call
// time".  It is initialized from the EPCQ_WORKERS environment variable
// and adjustable via SetDefaultWorkers; every parallel surface — the
// join-count DP's subtree/shard workers, Counter.CountParallel's term
// fan-out, and CountBatch's structure fan-out — resolves its budget
// through EffectiveWorkers.
var defaultWorkers atomic.Int64

func init() {
	if s := os.Getenv("EPCQ_WORKERS"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			defaultWorkers.Store(int64(n))
		}
	}
}

// DefaultWorkers returns the process-default worker count: EPCQ_WORKERS
// if set (and positive), else GOMAXPROCS.
func DefaultWorkers() int {
	if n := defaultWorkers.Load(); n > 0 {
		return int(n)
	}
	return runtime.GOMAXPROCS(0)
}

// SetDefaultWorkers overrides the process-default worker count (n ≤ 0
// restores the GOMAXPROCS default) and returns a function restoring the
// previous value.  Callers must not interleave override/restore pairs.
func SetDefaultWorkers(n int) (restore func()) {
	if n < 0 {
		n = 0
	}
	old := defaultWorkers.Swap(int64(n))
	return func() { defaultWorkers.Store(old) }
}

// EffectiveWorkers resolves a requested worker count: n > 0 is taken as
// given, n ≤ 0 resolves to the process default (EPCQ_WORKERS, else
// GOMAXPROCS).
func EffectiveWorkers(n int) int {
	if n > 0 {
		return n
	}
	return DefaultWorkers()
}

// RunBounded executes fn(0)…fn(n-1) on a bounded pool of goroutines
// (workers ≤ 0 means the process default; see EffectiveWorkers).  Once
// any call errors, no further indices are started; the first error (by
// index order of observation) is returned after all in-flight calls
// finish.  Replaces the goroutine-per-task fan-out previously used for
// φ⁻af terms.
func RunBounded(n, workers int, fn func(i int) error) error {
	return RunBoundedCtx(context.Background(), n, workers, fn)
}

// RunBoundedCtx is RunBounded under a context: once ctx is done, no
// further indices are started (in-flight calls finish; fn is expected to
// observe ctx itself if its unit of work is long) and the context's
// error is returned unless an fn error happened first.
func RunBoundedCtx(ctx context.Context, n, workers int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	workers = EffectiveWorkers(workers)
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		next      atomic.Int64
		failed    atomic.Bool
		cancelled atomic.Bool
		errOnce   sync.Once
		firstEr   error
		wg        sync.WaitGroup
	)
	done := ctx.Done()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || failed.Load() {
					return
				}
				if done != nil {
					select {
					case <-done:
						cancelled.Store(true)
						failed.Store(true)
						return
					default:
					}
				}
				if err := fn(i); err != nil {
					errOnce.Do(func() { firstEr = err })
					failed.Store(true)
					return
				}
			}
		}()
	}
	wg.Wait()
	if firstEr != nil {
		return firstEr
	}
	if cancelled.Load() {
		return ctx.Err()
	}
	return nil
}
