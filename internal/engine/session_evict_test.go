package engine

import (
	"math/big"
	"testing"

	"repro/internal/structure"
	"repro/internal/workload"
)

// A hot session must survive cap pressure: the registry evicts
// least-recently-used entries, not the whole map.
func TestSessionForKeepsHotSessionUnderCapPressure(t *testing.T) {
	sig := workload.EdgeSig()
	hot := workload.RandomStructure(sig, 5, 0.4, 1)
	hotSession := SessionFor(hot)
	for i := 0; i < 3*sessionCacheCap; i++ {
		cold := workload.RandomStructure(sig, 4, 0.4, int64(i+100))
		SessionFor(cold)
		if SessionFor(hot) != hotSession {
			t.Fatalf("hot session evicted after %d cold inserts", i+1)
		}
	}
	sessionMu.Lock()
	n := len(sessions)
	sessionMu.Unlock()
	if n > sessionCacheCap {
		t.Fatalf("registry grew past cap: %d > %d", n, sessionCacheCap)
	}
}

func TestSessionForReplacesStaleSession(t *testing.T) {
	sig := workload.EdgeSig()
	b := structure.New(sig)
	b.EnsureElem("a")
	b.EnsureElem("b")
	if err := b.AddTuple("E", 0, 1); err != nil {
		t.Fatal(err)
	}
	s1 := SessionFor(b)
	if err := b.AddTuple("E", 1, 0); err != nil {
		t.Fatal(err)
	}
	s2 := SessionFor(b)
	if s1 == s2 {
		t.Fatal("stale session not replaced after mutation")
	}
	if !s2.Valid() || s1.Valid() {
		t.Fatal("validity flags wrong after mutation")
	}
	ReleaseSession(b)
}

// Semi-join pruning must not change the DP's count, only shrink its
// inputs.  Structures are large enough that tables clear pruneMinRows.
func TestSemiJoinPrunePreservesJoinCount(t *testing.T) {
	sig := workload.EdgeSig()
	p := compilePP(t, sig, "q(a,b,c,d) := E(a,b) & E(b,c) & E(c,d)")
	pl, err := Compile(p, FPTNoCore)
	if err != nil {
		t.Fatal(err)
	}
	fpt := pl.(*fptPlan)
	for seed := int64(0); seed < 5; seed++ {
		bs := workload.RandomStructure(sig, 25, 0.12, seed)
		s := NewSession(bs)
		for _, pc := range fpt.comps {
			if pc.sentence || pc.nActive == 0 {
				continue
			}
			tables := make([]*Table, len(pc.constraints))
			total := 0
			for ci := range pc.constraints {
				tables[ci] = s.tableFor(&pc.constraints[ci])
				total += tables[ci].Len()
			}
			want, _ := joinCount(pc, newExecPlan(pc, tables, bs.Size()), bs.Size(), 1, nil)
			pruned, empty := semiJoinPrune(pc, tables, bs.Size())
			var got *big.Int
			if empty {
				got = new(big.Int)
			} else {
				got, _ = joinCount(pc, newExecPlan(pc, pruned, bs.Size()), bs.Size(), 1, nil)
			}
			if want.Cmp(got) != 0 {
				t.Fatalf("seed %d: pruned count %v != unpruned %v", seed, got, want)
			}
			prunedTotal := 0
			for _, pt := range pruned {
				prunedTotal += pt.Len()
			}
			if prunedTotal > total {
				t.Fatalf("seed %d: pruning grew tables (%d > %d)", seed, prunedTotal, total)
			}
			// The shared session tables must be untouched.
			for ci := range pc.constraints {
				if s.tableFor(&pc.constraints[ci]).Len() != tables[ci].Len() {
					t.Fatalf("seed %d: session table %d mutated by pruning", seed, ci)
				}
			}
		}
	}
}

// The FPT count path must never fall back to the deprecated Tuples
// full-materialization shim: materialization projects off columns, hom
// candidate generation walks posting lists/columns.
func TestFPTCountPerformsZeroFullScans(t *testing.T) {
	sig := workload.EdgeSig()
	queries := []string{
		"q(a,b,c,d) := E(a,b) & E(b,c) & E(c,d)",
		"q(a,b) := exists u, v. E(a,u) & E(u,v) & E(v,b)",
		"q(x) := E(x,x) & (exists s, t. E(s,t) & E(t,s))",
	}
	for _, src := range queries {
		p := compilePP(t, sig, src)
		for _, name := range []Name{FPT, FPTNoCore, Projection} {
			pl, err := Compile(p, name)
			if err != nil {
				t.Fatal(err)
			}
			bs := workload.RandomStructure(sig, 15, 0.2, 3)
			s := NewSession(bs)
			before := structure.FullScanCount()
			if _, err := pl.CountIn(s); err != nil {
				t.Fatal(err)
			}
			if d := structure.FullScanCount() - before; d != 0 {
				t.Errorf("%s engine %v: %d full-relation scans during count, want 0", src, name, d)
			}
		}
	}
}
